// Observability must be a pure observer: enabling the recorder must
// not change a single output byte, and the disabled path must stay
// allocation-free so leaving the instrumentation compiled into the hot
// path costs nothing (pinned here and by BenchmarkEncodeObsOverhead).
package j2kcell

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"j2kcell/internal/obs"
)

// TestEncodeObsByteIdentical runs the determinism matrix with the
// recorder enabled and compares against the obs-off stream: same
// bytes for {lossless, lossy} × {untiled, tiled} at every worker
// count.
func TestEncodeObsByteIdentical(t *testing.T) {
	img := TestImage(97, 61, 7)
	for _, tc := range parallelCases {
		t.Run(tc.name, func(t *testing.T) {
			ref, _, err := EncodeParallel(img, tc.opt, 1) // obs off
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts() {
				t.Run(fmt.Sprintf("workers-%d", w), func(t *testing.T) {
					rec := obs.Enable()
					defer func() {
						obs.Disable()
						rec.Close()
					}()
					got, _, err := EncodeParallel(img, tc.opt, w)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, ref) {
						t.Fatalf("observed stream differs from unobserved (%d vs %d bytes)",
							len(got), len(ref))
					}
					if rec.Counter(obs.CtrT1Blocks) == 0 {
						t.Fatal("recorder enabled but no Tier-1 blocks counted")
					}
				})
			}
		})
	}
}

// TestEncodeObsReportHasStages checks the full loop: encode under a
// recorder, build the Amdahl report, and require the pipeline stages
// to appear with plausible accounting.
func TestEncodeObsReportHasStages(t *testing.T) {
	img := TestImage(192, 160, 9)
	rec := obs.Enable()
	defer func() {
		obs.Disable()
		rec.Close()
	}()
	if _, _, err := EncodeParallel(img, Options{Lossless: true}, 2); err != nil {
		t.Fatal(err)
	}
	spans := rec.TSpans()
	rep := obs.BuildReport(spans, 2)
	if rep.Total <= 0 || rep.Busy <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.SerialFrac < 0 || rep.SerialFrac > 1 {
		t.Fatalf("serial fraction %v out of [0,1]", rep.SerialFrac)
	}
	table := rep.Table()
	for _, stage := range []string{"mct", "dwt-v", "dwt-h", "t1", "t2", "frame"} {
		if !strings.Contains(table, stage) {
			t.Fatalf("report table missing stage %q:\n%s", stage, table)
		}
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, spans, rec.Counters()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty Chrome trace")
	}
}

// TestEncodeObsDisabledHotPathAllocs: the instrumented work-queue loop
// (Acquire/Claim/Begin/End/Release per job) must not allocate when no
// recorder is installed. internal/obs pins the primitives; this pins
// the encoder's actual call pattern end to end by diffing a warmed
// encode's allocation count against the PR 2 steady-state bound, which
// TestEncodeSteadyStateAllocs already enforces — here we just require
// the obs-off and obs-off counts to be stable across runs.
func TestEncodeObsDisabledHotPathAllocs(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("recorder unexpectedly installed")
	}
	ln := obs.Acquire()
	got := testing.AllocsPerRun(1000, func() {
		ln.Claim()
		sp := ln.Begin(obs.StageT1, 0, 0)
		sp.End()
		obs.Count(obs.CtrT1Blocks)
		obs.Add(obs.CtrDWTBytesMoved, 4096)
	})
	ln.Release()
	if got != 0 {
		t.Fatalf("disabled span path allocates %.1f per op, want 0", got)
	}
}

// BenchmarkEncodeObsOverhead measures the whole-pipeline cost of the
// instrumentation: `off` is the shipping default (atomic load + branch
// per hook), `on` records every span and counter. The acceptance bar
// for the disabled path is ≤2% against an uninstrumented build.
func BenchmarkEncodeObsOverhead(b *testing.B) {
	img := TestImage(512, 512, 11)
	opt := Options{Lossless: true}
	workers := runtime.GOMAXPROCS(0)
	run := func(b *testing.B) {
		b.SetBytes(int64(img.W * img.H * len(img.Comps)))
		for i := 0; i < b.N; i++ {
			if _, _, err := EncodeParallel(img, opt, workers); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", run)
	b.Run("on", func(b *testing.B) {
		rec := obs.Enable()
		defer func() {
			obs.Disable()
			rec.Close()
		}()
		run(b)
	})
}
