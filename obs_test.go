// Observability must be a pure observer: enabling the recorder must
// not change a single output byte, and the disabled path must stay
// allocation-free so leaving the instrumentation compiled into the hot
// path costs nothing (pinned here and by BenchmarkEncodeObsOverhead).
package j2kcell

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"j2kcell/internal/obs"
)

// TestEncodeObsByteIdentical runs the determinism matrix with the
// recorder enabled and compares against the obs-off stream: same
// bytes for {lossless, lossy} × {untiled, tiled} at every worker
// count.
func TestEncodeObsByteIdentical(t *testing.T) {
	img := TestImage(97, 61, 7)
	for _, tc := range parallelCases {
		t.Run(tc.name, func(t *testing.T) {
			ref, _, err := EncodeParallel(img, tc.opt, 1) // obs off
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts() {
				t.Run(fmt.Sprintf("workers-%d", w), func(t *testing.T) {
					rec := obs.Enable()
					defer func() {
						obs.Disable()
						rec.Close()
					}()
					got, _, err := EncodeParallel(img, tc.opt, w)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, ref) {
						t.Fatalf("observed stream differs from unobserved (%d vs %d bytes)",
							len(got), len(ref))
					}
					if rec.Counter(obs.CtrT1Blocks) == 0 {
						t.Fatal("recorder enabled but no Tier-1 blocks counted")
					}
				})
			}
		})
	}
}

// TestEncodeObsReportHasStages checks the full loop: encode under a
// recorder, build the Amdahl report, and require the pipeline stages
// to appear with plausible accounting.
func TestEncodeObsReportHasStages(t *testing.T) {
	img := TestImage(192, 160, 9)
	rec := obs.Enable()
	defer func() {
		obs.Disable()
		rec.Close()
	}()
	if _, _, err := EncodeParallel(img, Options{Lossless: true}, 2); err != nil {
		t.Fatal(err)
	}
	spans := rec.TSpans()
	rep := obs.BuildReport(spans, 2)
	if rep.Total <= 0 || rep.Busy <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.SerialFrac < 0 || rep.SerialFrac > 1 {
		t.Fatalf("serial fraction %v out of [0,1]", rep.SerialFrac)
	}
	table := rep.Table()
	for _, stage := range []string{"mct", "dwt-v", "dwt-h", "t1", "t2", "frame"} {
		if !strings.Contains(table, stage) {
			t.Fatalf("report table missing stage %q:\n%s", stage, table)
		}
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, spans, rec.Counters()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty Chrome trace")
	}
}

// TestEncodeObsDisabledHotPathAllocs: the instrumented work-queue loop
// (Acquire/Claim/Begin/End/Release per job) must not allocate when no
// recorder is installed. internal/obs pins the primitives; this pins
// the encoder's actual call pattern end to end by diffing a warmed
// encode's allocation count against the PR 2 steady-state bound, which
// TestEncodeSteadyStateAllocs already enforces — here we just require
// the obs-off and obs-off counts to be stable across runs.
func TestEncodeObsDisabledHotPathAllocs(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("recorder unexpectedly installed")
	}
	ln := obs.Acquire()
	got := testing.AllocsPerRun(1000, func() {
		ln.Claim()
		sp := ln.Begin(obs.StageT1, 0, 0)
		sp.End()
		obs.Count(obs.CtrT1Blocks)
		obs.Add(obs.CtrDWTBytesMoved, 4096)
	})
	ln.Release()
	if got != 0 {
		t.Fatalf("disabled span path allocates %.1f per op, want 0", got)
	}
}

// TestEncodeObsConcurrentAttribution is the contract of the
// context-scoped recorders: concurrent encodes and decodes, each
// under its own obs.WithOperation, must get distinct trace IDs,
// disjoint span sets (no decode stage ever lands in an encode op's
// recorder or vice versa), correct per-op class counts, and the
// aggregate registry must show exactly the rolled-up totals. Runs
// under -race in CI (matched by the TestEncodeObs pattern).
func TestEncodeObsConcurrentAttribution(t *testing.T) {
	prev := obs.SwapAggregate(nil)
	defer obs.SwapAggregate(prev)

	img := TestImage(128, 96, 5)
	stream, _, err := Encode(img, Options{Lossless: true}) // unobserved input
	if err != nil {
		t.Fatal(err)
	}

	const per = 3
	encOps := make([]*obs.Op, per)
	decOps := make([]*obs.Op, per)
	errc := make(chan error, 2*per)
	var wg sync.WaitGroup
	for i := 0; i < per; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			ctx, op := obs.WithOperation(context.Background(), "encode")
			encOps[i] = op
			_, _, err := EncodeParallelContext(ctx, img, Options{Lossless: true}, 2)
			op.Finish()
			if err != nil {
				errc <- err
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			ctx, op := obs.WithOperation(context.Background(), "decode")
			decOps[i] = op
			_, err := DecodeWithContext(ctx, stream, DecodeOptions{Workers: 2})
			op.Finish()
			if err != nil {
				errc <- err
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	ids := map[string]bool{}
	for _, op := range append(append([]*obs.Op{}, encOps...), decOps...) {
		if op.TraceID() == "" || ids[op.TraceID()] {
			t.Fatalf("trace ID %q empty or duplicated", op.TraceID())
		}
		ids[op.TraceID()] = true
	}

	decStages := map[obs.Stage]bool{
		obs.StageZero: true, obs.StageDeq: true, obs.StageIDWTVert: true,
		obs.StageIDWTHorz: true, obs.StageIMCT: true, obs.StageDecode: true,
	}
	encStages := map[obs.Stage]bool{
		obs.StageMCT: true, obs.StageDWTVert: true, obs.StageDWTHorz: true,
		obs.StageRate: true, obs.StageFrame: true, obs.StageEncode: true,
	}
	encClass := obs.ClassOf(false, false, false, false)
	decClass := obs.ClassOf(true, false, false, false)

	for i, op := range encOps {
		rec := op.Recorder()
		spans := rec.TSpans()
		if len(spans) == 0 {
			t.Fatalf("encode op %d recorded no spans", i)
		}
		for _, sp := range spans {
			if decStages[sp.Stage] {
				t.Fatalf("encode op %d leaked decode-stage span %q", i, sp.Name)
			}
		}
		if rec.Counter(obs.CtrT1Blocks) == 0 {
			t.Fatalf("encode op %d counted no Tier-1 blocks", i)
		}
		if rec.Counter(obs.CtrDecodeParts) != 0 || rec.Counter(obs.CtrDecodeSingles) != 0 {
			t.Fatalf("encode op %d leaked decode partition counters", i)
		}
		if rec.OpCount(encClass) != 1 || rec.OpCount(decClass) != 0 {
			t.Fatalf("encode op %d class counts: enc=%d dec=%d",
				i, rec.OpCount(encClass), rec.OpCount(decClass))
		}
	}
	for i, op := range decOps {
		rec := op.Recorder()
		spans := rec.TSpans()
		if len(spans) == 0 {
			t.Fatalf("decode op %d recorded no spans", i)
		}
		for _, sp := range spans {
			if encStages[sp.Stage] {
				t.Fatalf("decode op %d leaked encode-stage span %q", i, sp.Name)
			}
		}
		if rec.Counter(obs.CtrDecodeParts)+rec.Counter(obs.CtrDecodeSingles) == 0 {
			t.Fatalf("decode op %d formed no Tier-1 partitions", i)
		}
		if rec.Counter(obs.CtrT1Blocks) != 0 {
			t.Fatalf("decode op %d leaked encode-side block counter", i)
		}
		if rec.OpCount(decClass) != 1 || rec.OpCount(encClass) != 0 {
			t.Fatalf("decode op %d class counts: dec=%d enc=%d",
				i, rec.OpCount(decClass), rec.OpCount(encClass))
		}
	}

	reg := obs.Aggregate()
	if reg.Ops(encClass) != per || reg.Ops(decClass) != per || reg.OpsTotal() != 2*per {
		t.Fatalf("aggregate ops: enc=%d dec=%d total=%d, want %d/%d/%d",
			reg.Ops(encClass), reg.Ops(decClass), reg.OpsTotal(), per, per, 2*per)
	}
	if reg.OpsActive() != 0 {
		t.Fatalf("operations still active after all Finish: %d", reg.OpsActive())
	}
	if reg.OpErrors() != 0 {
		t.Fatalf("aggregate op errors: %d", reg.OpErrors())
	}
}

// TestEncodeObsDisabledContextPathAllocs pins the context-threaded
// disabled path after the per-operation refactor: resolving the
// recorder from a context with no operation attached, plus every
// nil-recorder hook the codec calls (lane spans, counters, SLO
// recording), must stay allocation-free.
func TestEncodeObsDisabledContextPathAllocs(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("ambient recorder unexpectedly installed")
	}
	ctx := context.Background()
	if obs.Current(ctx) != nil {
		t.Fatal("Current on a plain context should be nil")
	}
	got := testing.AllocsPerRun(1000, func() {
		rec := obs.Current(ctx)
		ln := rec.Acquire()
		ln.Claim()
		sp := ln.Begin(obs.StageT1, 0, 0)
		sp.End()
		ln.Release()
		rec.Add(obs.CtrT1Blocks, 1)
		rec.OpDone(obs.ClassOf(false, false, false, false), 0)
		rec.OpFailed()
	})
	if got != 0 {
		t.Fatalf("obs-disabled context path allocates %.1f per op, want 0", got)
	}
}

// BenchmarkEncodeObsOverhead measures the whole-pipeline cost of the
// instrumentation: `off` is the shipping default (atomic load + branch
// per hook), `on` records every span and counter. The acceptance bar
// for the disabled path is ≤2% against an uninstrumented build.
func BenchmarkEncodeObsOverhead(b *testing.B) {
	img := TestImage(512, 512, 11)
	opt := Options{Lossless: true}
	workers := runtime.GOMAXPROCS(0)
	run := func(b *testing.B) {
		b.SetBytes(int64(img.W * img.H * len(img.Comps)))
		for i := 0; i < b.N; i++ {
			if _, _, err := EncodeParallel(img, opt, workers); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", run)
	b.Run("on", func(b *testing.B) {
		rec := obs.Enable()
		defer func() {
			obs.Disable()
			rec.Close()
		}()
		run(b)
	})
	// per-op: a fresh context-scoped recorder per encode — the
	// server-style cost (WithOperation + roll-up into the aggregate on
	// Finish) rather than one long-lived ambient recorder.
	b.Run("per-op", func(b *testing.B) {
		b.SetBytes(int64(img.W * img.H * len(img.Comps)))
		for i := 0; i < b.N; i++ {
			ctx, op := obs.WithOperation(context.Background(), "bench")
			if _, _, err := EncodeParallelContext(ctx, img, opt, workers); err != nil {
				b.Fatal(err)
			}
			op.Finish()
		}
	})
}
