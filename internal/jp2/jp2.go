// Package jp2 wraps raw JPEG2000 codestreams in the JP2 file container
// (ISO/IEC 15444-1 Annex I): a signature box, a file-type box, a header
// box carrying image geometry and color space, and the contiguous
// codestream box. Wrapping is what turns a .j2c codestream into a .jp2
// file.
package jp2

import (
	"encoding/binary"
	"fmt"
)

// Box type four-character codes.
const (
	typeSignature = "jP\x20\x20"
	typeFileType  = "ftyp"
	typeHeader    = "jp2h"
	typeImageHdr  = "ihdr"
	typeColorSpec = "colr"
	typeCodestrm  = "jp2c"
)

// signature is the fixed content of the jP box.
var signature = []byte{0x0D, 0x0A, 0x87, 0x0A}

// Info is the geometry the container duplicates from the codestream.
type Info struct {
	W, H  int
	NComp int
	Depth int
	SRGB  bool // true: sRGB colorspace; false: greyscale
}

// box appends one box (4-byte length + 4-char type + payload).
func box(out []byte, typ string, payload []byte) []byte {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(8+len(payload)))
	out = append(out, l[:]...)
	out = append(out, typ...)
	return append(out, payload...)
}

// Wrap embeds a codestream in a JP2 container.
func Wrap(info Info, codestream []byte) []byte {
	var out []byte
	out = box(out, typeSignature, signature)

	ftyp := append([]byte("jp2 "), 0, 0, 0, 0) // brand + minor version
	ftyp = append(ftyp, "jp2 "...)             // compatibility list
	out = box(out, typeFileType, ftyp)

	ihdr := make([]byte, 14)
	binary.BigEndian.PutUint32(ihdr[0:], uint32(info.H))
	binary.BigEndian.PutUint32(ihdr[4:], uint32(info.W))
	binary.BigEndian.PutUint16(ihdr[8:], uint16(info.NComp))
	ihdr[10] = byte(info.Depth - 1) // BPC: depth-1, unsigned
	ihdr[11] = 7                    // compression type: JPEG2000
	// ihdr[12] UnkC, ihdr[13] IPR left zero.

	colr := []byte{1, 0, 0} // method 1 (enumerated), precedence, approx
	cs := uint32(17)        // greyscale
	if info.SRGB {
		cs = 16 // sRGB
	}
	var csb [4]byte
	binary.BigEndian.PutUint32(csb[:], cs)
	colr = append(colr, csb[:]...)

	var hdr []byte
	hdr = box(hdr, typeImageHdr, ihdr)
	hdr = box(hdr, typeColorSpec, colr)
	out = box(out, typeHeader, hdr)

	return box(out, typeCodestrm, codestream)
}

// Unwrap extracts the codestream and header info from a JP2 container.
func Unwrap(data []byte) (Info, []byte, error) {
	var info Info
	var stream []byte
	sawSig, sawHdr := false, false
	pos := 0
	for pos < len(data) {
		if pos+8 > len(data) {
			return info, nil, fmt.Errorf("jp2: truncated box header at %d", pos)
		}
		l := int(binary.BigEndian.Uint32(data[pos:]))
		typ := string(data[pos+4 : pos+8])
		if l == 0 { // box extends to end of file
			l = len(data) - pos
		}
		if l < 8 || pos+l > len(data) {
			return info, nil, fmt.Errorf("jp2: bad box length %d for %q at %d", l, typ, pos)
		}
		payload := data[pos+8 : pos+l]
		switch typ {
		case typeSignature:
			if string(payload) != string(signature) {
				return info, nil, fmt.Errorf("jp2: bad signature box")
			}
			sawSig = true
		case typeHeader:
			if err := parseHeader(payload, &info); err != nil {
				return info, nil, err
			}
			sawHdr = true
		case typeCodestrm:
			stream = payload
		}
		pos += l
	}
	if !sawSig {
		return info, nil, fmt.Errorf("jp2: missing signature box")
	}
	if !sawHdr {
		return info, nil, fmt.Errorf("jp2: missing jp2h box")
	}
	if stream == nil {
		return info, nil, fmt.Errorf("jp2: missing codestream box")
	}
	return info, stream, nil
}

func parseHeader(payload []byte, info *Info) error {
	pos := 0
	for pos < len(payload) {
		if pos+8 > len(payload) {
			return fmt.Errorf("jp2: truncated header sub-box")
		}
		l := int(binary.BigEndian.Uint32(payload[pos:]))
		typ := string(payload[pos+4 : pos+8])
		if l < 8 || pos+l > len(payload) {
			return fmt.Errorf("jp2: bad sub-box length %d", l)
		}
		body := payload[pos+8 : pos+l]
		switch typ {
		case typeImageHdr:
			if len(body) < 12 {
				return fmt.Errorf("jp2: ihdr too short")
			}
			info.H = int(binary.BigEndian.Uint32(body[0:]))
			info.W = int(binary.BigEndian.Uint32(body[4:]))
			info.NComp = int(binary.BigEndian.Uint16(body[8:]))
			info.Depth = int(body[10]) + 1
			if body[11] != 7 {
				return fmt.Errorf("jp2: compression type %d is not JPEG2000", body[11])
			}
		case typeColorSpec:
			if len(body) >= 7 && body[0] == 1 {
				info.SRGB = binary.BigEndian.Uint32(body[3:]) == 16
			}
		}
		pos += l
	}
	if info.W == 0 || info.H == 0 {
		return fmt.Errorf("jp2: jp2h lacks ihdr")
	}
	return nil
}

// IsJP2 reports whether data begins with the JP2 signature box.
func IsJP2(data []byte) bool {
	return len(data) >= 12 &&
		binary.BigEndian.Uint32(data) == 12 &&
		string(data[4:8]) == typeSignature &&
		string(data[8:12]) == string(signature)
}
