package jp2

import (
	"strings"
	"testing"
)

func sample() (Info, []byte) {
	return Info{W: 640, H: 480, NComp: 3, Depth: 8, SRGB: true}, []byte{0xFF, 0x4F, 1, 2, 3, 0xFF, 0xD9}
}

func TestWrapUnwrapRoundTrip(t *testing.T) {
	info, cs := sample()
	data := Wrap(info, cs)
	if !IsJP2(data) {
		t.Fatal("wrapped file lacks JP2 signature")
	}
	got, stream, err := Unwrap(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != info {
		t.Fatalf("info: %+v vs %+v", got, info)
	}
	if string(stream) != string(cs) {
		t.Fatal("codestream changed")
	}
}

func TestGrayscaleColorspace(t *testing.T) {
	info := Info{W: 10, H: 10, NComp: 1, Depth: 12, SRGB: false}
	got, _, err := Unwrap(Wrap(info, []byte{1}))
	if err != nil {
		t.Fatal(err)
	}
	if got.SRGB || got.Depth != 12 {
		t.Fatalf("got %+v", got)
	}
}

func TestIsJP2RejectsRaw(t *testing.T) {
	if IsJP2([]byte{0xFF, 0x4F, 0xFF, 0x51}) {
		t.Fatal("raw codestream misdetected as JP2")
	}
	if IsJP2(nil) {
		t.Fatal("nil misdetected")
	}
}

func TestUnwrapErrors(t *testing.T) {
	info, cs := sample()
	good := Wrap(info, cs)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated", good[:10]},
		{"truncated mid-box", good[:len(good)-3]},
		{"no signature", good[12:]},
	}
	for _, c := range cases {
		if _, _, err := Unwrap(c.data); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Corrupt signature content.
	bad := append([]byte(nil), good...)
	bad[8] = 0
	if _, _, err := Unwrap(bad); err == nil {
		t.Error("bad signature accepted")
	}
	// Missing codestream box: signature + ftyp + header only.
	hdrOnly := good[:len(good)-(8+len(cs))]
	if _, _, err := Unwrap(hdrOnly); err == nil || !strings.Contains(err.Error(), "codestream") {
		t.Errorf("missing codestream: %v", err)
	}
}

func TestZeroLengthBoxExtendsToEOF(t *testing.T) {
	info, cs := sample()
	data := Wrap(info, cs)
	// Rewrite the final jp2c box length to 0 (extends to EOF).
	// Find it: last box starts at len(data) - (8+len(cs)).
	off := len(data) - (8 + len(cs))
	data[off], data[off+1], data[off+2], data[off+3] = 0, 0, 0, 0
	_, stream, err := Unwrap(data)
	if err != nil {
		t.Fatal(err)
	}
	if string(stream) != string(cs) {
		t.Fatal("EOF-extended box mishandled")
	}
}
