package codec

import (
	"fmt"

	"j2kcell/internal/codestream"
	"j2kcell/internal/dwt"
	"j2kcell/internal/jp2"
	"j2kcell/internal/t2"
)

// PacketInfo describes one packet's position and size in a codestream.
type PacketInfo struct {
	Layer, Res, Comp int
	Offset, Bytes    int // within the tile body
	Blocks           int // code blocks contributing
}

// StreamInfo is the parsed structure of a codestream, without any
// Tier-1 decoding.
type StreamInfo struct {
	Header  *codestream.Header
	Packets []PacketInfo
}

// BytesAtResolution sums packet bytes for resolutions <= r: the stream
// prefix a resolution-progressive (RLCP) decoder would need.
func (s *StreamInfo) BytesAtResolution(r int) int {
	n := 0
	for _, p := range s.Packets {
		if p.Res <= r {
			n += p.Bytes
		}
	}
	return n
}

// BytesAtLayer sums packet bytes for layers < l.
func (s *StreamInfo) BytesAtLayer(l int) int {
	n := 0
	for _, p := range s.Packets {
		if p.Layer < l {
			n += p.Bytes
		}
	}
	return n
}

// Inspect parses a codestream's headers and packet structure without
// decoding any coefficient data.
func Inspect(data []byte) (*StreamInfo, error) {
	if jp2.IsJP2(data) {
		_, cs, err := jp2.Unwrap(data)
		if err != nil {
			return nil, err
		}
		data = cs
	}
	h, body, err := codestream.Decode(data)
	if err != nil {
		return nil, err
	}
	bands := dwt.Layout(h.W, h.H, h.Levels)
	style := t2.SegSingle
	if h.TermAll {
		style = t2.SegTermAll
	}
	type key struct{ c, b int }
	precincts := map[key]*t2.Precinct{}
	for c := 0; c < h.NComp; c++ {
		for bi, band := range bands {
			gw := (band.W + h.CBW - 1) / h.CBW
			gh := (band.H + h.CBH - 1) / h.CBH
			precincts[key{c, bi}] = t2.NewPrecinct(gw, gh)
		}
	}
	info := &StreamInfo{Header: h}
	off := 0
	for _, lrc := range PacketOrder(Progression(h.Progression), h.Layers, h.Levels, h.NComp) {
		l, r, c := lrc[0], lrc[1], lrc[2]
		var pkt []*t2.Precinct
		for _, bi := range ResBands(h.Levels, r) {
			pkt = append(pkt, precincts[key{c, bi}])
		}
		if h.SOPMarkers {
			at := findSOP(body, off)
			if at < 0 {
				break
			}
			off = at + 6
		}
		n, err := t2.DecodePacketEPH(body[off:], pkt, l, style, h.SOPMarkers)
		if err != nil {
			return nil, fmt.Errorf("codec: inspect packet l=%d r=%d c=%d: %w", l, r, c, err)
		}
		nblocks := 0
		for _, p := range pkt {
			for _, b := range p.Blocks {
				if b != nil && b.NumPasses > 0 {
					nblocks++
				}
			}
		}
		info.Packets = append(info.Packets, PacketInfo{
			Layer: l, Res: r, Comp: c, Offset: off, Bytes: n, Blocks: nblocks,
		})
		off += n
	}
	return info, nil
}
