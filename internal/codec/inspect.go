package codec

import (
	"fmt"

	"j2kcell/internal/codestream"
	"j2kcell/internal/dwt"
	"j2kcell/internal/jp2"
	"j2kcell/internal/t2"
)

// PacketInfo describes one packet's position and size in a codestream.
type PacketInfo struct {
	Layer, Res, Comp int
	Offset, Bytes    int // within the tile body
	DataBytes        int // MQ-coded block bytes (Bytes − DataBytes = packet header)
	Blocks           int // code blocks contributing
}

// BandStat aggregates one subband's share of the stream: MQ-coded
// bytes and contributing block count summed over every layer.
type BandStat struct {
	Comp   int
	Band   dwt.Band
	Bytes  int
	Blocks int
}

// MarkerInfo is one marker segment of the codestream framing.
type MarkerInfo struct {
	Name   string
	Offset int
	Len    int // marker + segment bytes (tile-part body excluded for SOT)
}

// StreamInfo is the parsed structure of a codestream, without any
// Tier-1 decoding.
type StreamInfo struct {
	Header  *codestream.Header
	Packets []PacketInfo
	Bands   []BandStat   // per component × subband, first tile
	Markers []MarkerInfo // framing segments, in stream order
}

// BytesAtResolution sums packet bytes for resolutions <= r: the stream
// prefix a resolution-progressive (RLCP) decoder would need.
func (s *StreamInfo) BytesAtResolution(r int) int {
	n := 0
	for _, p := range s.Packets {
		if p.Res <= r {
			n += p.Bytes
		}
	}
	return n
}

// BytesAtLayer sums packet bytes for layers < l.
func (s *StreamInfo) BytesAtLayer(l int) int {
	n := 0
	for _, p := range s.Packets {
		if p.Layer < l {
			n += p.Bytes
		}
	}
	return n
}

// HeaderOverhead sums the packet-header bytes across every packet —
// the Tier-2 signaling cost on top of the MQ-coded block data.
func (s *StreamInfo) HeaderOverhead() int {
	n := 0
	for _, p := range s.Packets {
		n += p.Bytes - p.DataBytes
	}
	return n
}

// markerNames maps the codes this codec emits to display names.
var markerNames = map[int]string{
	codestream.SOC: "SOC", codestream.SIZ: "SIZ", codestream.COD: "COD",
	codestream.QCD: "QCD", codestream.SOT: "SOT", codestream.SOP: "SOP",
	codestream.SOD: "SOD", codestream.EOC: "EOC",
}

// scanMarkers walks the framing of a raw codestream: the main-header
// marker segments, each tile-part's SOT/SOD wrapper (skipping the
// packet body via Psot), and the EOC trailer.
func scanMarkers(data []byte) ([]MarkerInfo, error) {
	var out []MarkerInfo
	pos := 0
	rd16 := func(at int) int { return int(data[at])<<8 | int(data[at+1]) }
	for pos+2 <= len(data) {
		m := rd16(pos)
		name, ok := markerNames[m]
		if !ok {
			return nil, fmt.Errorf("codec: unexpected marker %#x at %d", m, pos)
		}
		switch m {
		case codestream.SOC, codestream.SOD:
			out = append(out, MarkerInfo{Name: name, Offset: pos, Len: 2})
			pos += 2
		case codestream.EOC:
			out = append(out, MarkerInfo{Name: name, Offset: pos, Len: 2})
			return out, nil
		case codestream.SOT:
			if pos+12 > len(data) {
				return nil, fmt.Errorf("codec: truncated SOT at %d", pos)
			}
			seg := rd16(pos + 2)
			psot := int(uint32(rd16(pos+6))<<16 | uint32(rd16(pos+8)))
			out = append(out, MarkerInfo{Name: name, Offset: pos, Len: 2 + seg})
			// SOD + body are inside Psot; report SOD, then skip the body.
			sod := pos + 2 + seg
			if sod+2 > len(data) || rd16(sod) != codestream.SOD {
				return nil, fmt.Errorf("codec: missing SOD at %d", sod)
			}
			out = append(out, MarkerInfo{Name: "SOD", Offset: sod, Len: 2})
			pos += psot
			if psot <= 0 || pos > len(data) {
				return nil, fmt.Errorf("codec: bad Psot %d", psot)
			}
		default: // fixed-length marker segments: SIZ, COD, QCD
			if pos+4 > len(data) {
				return nil, fmt.Errorf("codec: truncated segment at %d", pos)
			}
			seg := rd16(pos + 2)
			out = append(out, MarkerInfo{Name: name, Offset: pos, Len: 2 + seg})
			pos += 2 + seg
		}
	}
	return nil, fmt.Errorf("codec: codestream ended without EOC")
}

// Inspect parses a codestream's headers and packet structure without
// decoding any coefficient data.
func Inspect(data []byte) (*StreamInfo, error) {
	return InspectLimits(data, DefaultLimits())
}

// InspectLimits is Inspect with caller-supplied header limits; a
// malformed or limit-exceeding stream surfaces as *FormatError.
func InspectLimits(data []byte, lim Limits) (*StreamInfo, error) {
	if jp2.IsJP2(data) {
		_, cs, err := jp2.Unwrap(data)
		if err != nil {
			return nil, formatErr(err)
		}
		data = cs
	}
	h, bodies, err := codestream.DecodeTilesLimits(data, lim)
	if err != nil {
		return nil, formatErr(err)
	}
	body := bodies[0]
	bands := dwt.Layout(h.W, h.H, h.Levels)
	style := t2.SegSingle
	if h.TermAll || h.HT {
		style = t2.SegTermAll
	}
	type key struct{ c, b int }
	precincts := map[key]*t2.Precinct{}
	for c := 0; c < h.NComp; c++ {
		for bi, band := range bands {
			gw := (band.W + h.CBW - 1) / h.CBW
			gh := (band.H + h.CBH - 1) / h.CBH
			precincts[key{c, bi}] = t2.NewPrecinct(gw, gh)
		}
	}
	info := &StreamInfo{Header: h}
	if info.Markers, err = scanMarkers(data); err != nil {
		return nil, err
	}
	bandStats := make([]BandStat, h.NComp*len(bands))
	for c := 0; c < h.NComp; c++ {
		for bi, band := range bands {
			bandStats[c*len(bands)+bi] = BandStat{Comp: c, Band: band}
		}
	}
	off := 0
	order := PacketOrder(Progression(h.Progression), h.Layers, h.Levels, h.NComp)
	for pi, lrc := range order {
		l, r, c := lrc[0], lrc[1], lrc[2]
		resBands := ResBands(h.Levels, r)
		var pkt []*t2.Precinct
		for _, bi := range resBands {
			pkt = append(pkt, precincts[key{c, bi}])
		}
		if h.SOPMarkers {
			at, _ := findSOP(body, off, pi)
			if at < 0 {
				break
			}
			off = at + 6
		}
		n, err := t2.DecodePacketEPH(body[off:], pkt, l, style, h.SOPMarkers)
		if err != nil {
			return nil, fmt.Errorf("codec: inspect packet l=%d r=%d c=%d: %w", l, r, c, err)
		}
		nblocks, ndata := 0, 0
		for pi, p := range pkt {
			st := &bandStats[c*len(bands)+resBands[pi]]
			for _, b := range p.Blocks {
				if b != nil && b.NumPasses > 0 {
					nblocks++
					st.Blocks++
					st.Bytes += len(b.Data)
					ndata += len(b.Data)
				}
			}
		}
		info.Packets = append(info.Packets, PacketInfo{
			Layer: l, Res: r, Comp: c, Offset: off, Bytes: n,
			DataBytes: ndata, Blocks: nblocks,
		})
		off += n
	}
	info.Bands = bandStats
	return info, nil
}
