package codec

import (
	"math"
	"testing"

	"j2kcell/internal/imgmodel"
	"j2kcell/internal/workload"
)

func TestLosslessRoundTripExact(t *testing.T) {
	for _, size := range []struct{ w, h int }{{64, 64}, {100, 70}, {33, 129}, {257, 64}} {
		img := workload.Dial(size.w, size.h, 7, 5)
		res, err := Encode(img, Options{Lossless: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(res.Data)
		if err != nil {
			t.Fatalf("%dx%d: decode: %v", size.w, size.h, err)
		}
		if !img.Equal(got) {
			t.Fatalf("%dx%d: lossless round trip not bit exact", size.w, size.h)
		}
	}
}

func TestLosslessCompresses(t *testing.T) {
	img := workload.Dial(256, 256, 3, 4)
	res, err := Encode(img, Options{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	raw := 256 * 256 * 3
	if len(res.Data) >= raw {
		t.Fatalf("lossless output %d >= raw %d", len(res.Data), raw)
	}
	ratio := float64(raw) / float64(len(res.Data))
	if ratio < 1.3 {
		t.Fatalf("compression ratio %.2f too weak for a natural image", ratio)
	}
}

func TestLossyHighQuality(t *testing.T) {
	img := workload.Dial(128, 128, 11, 3)
	res, err := Encode(img, Options{Lossless: false})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if psnr := img.PSNR(got); psnr < 38 {
		t.Fatalf("unconstrained lossy PSNR %.1f dB < 38", psnr)
	}
}

func TestLossyRateControlHitsTarget(t *testing.T) {
	img := workload.Dial(256, 256, 5, 5)
	raw := 256 * 256 * 3
	for _, r := range []float64{0.05, 0.1, 0.25} {
		res, err := Encode(img, Options{Lossless: false, Rate: r})
		if err != nil {
			t.Fatal(err)
		}
		budget := int(r * float64(raw))
		if len(res.Data) > budget {
			t.Fatalf("rate %.2f: output %d exceeds budget %d", r, len(res.Data), budget)
		}
		if len(res.Data) < budget/2 {
			t.Fatalf("rate %.2f: output %d uses under half the budget %d", r, len(res.Data), budget)
		}
		got, err := Decode(res.Data)
		if err != nil {
			t.Fatalf("rate %.2f: decode: %v", r, err)
		}
		psnr := img.PSNR(got)
		if psnr < 25 {
			t.Fatalf("rate %.2f: PSNR %.1f dB too low", r, psnr)
		}
	}
}

func TestLossyQualityMonotoneInRate(t *testing.T) {
	img := workload.Dial(192, 192, 9, 4)
	last := 0.0
	for _, r := range []float64{0.03, 0.1, 0.4} {
		res, err := Encode(img, Options{Lossless: false, Rate: r})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(res.Data)
		if err != nil {
			t.Fatal(err)
		}
		psnr := img.PSNR(got)
		if psnr < last-0.2 {
			t.Fatalf("PSNR fell from %.2f to %.2f as rate rose to %.2f", last, psnr, r)
		}
		last = psnr
	}
}

func TestGrayscaleSingleComponent(t *testing.T) {
	img := imgmodel.NewImage(80, 60, 1, 8)
	rng := workload.NewRNG(4)
	for y := 0; y < 60; y++ {
		row := img.Comps[0].Row(y)
		for x := range row {
			row[x] = int32((x*3+y*2)%256/2 + rng.Intn(4))
		}
	}
	res, err := Encode(img, Options{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("grayscale lossless round trip failed")
	}
}

func TestSmallImages(t *testing.T) {
	for _, s := range []struct{ w, h int }{{1, 1}, {2, 2}, {5, 1}, {1, 9}, {8, 8}} {
		img := workload.Noise(s.w, s.h, 3)
		res, err := Encode(img, Options{Lossless: true})
		if err != nil {
			t.Fatalf("%dx%d: %v", s.w, s.h, err)
		}
		got, err := Decode(res.Data)
		if err != nil {
			t.Fatalf("%dx%d: decode: %v", s.w, s.h, err)
		}
		if !img.Equal(got) {
			t.Fatalf("%dx%d: round trip failed", s.w, s.h)
		}
	}
}

func TestCodeBlockSizes(t *testing.T) {
	img := workload.Dial(130, 130, 2, 3)
	for _, cb := range []int{16, 32, 64} {
		res, err := Encode(img, Options{Lossless: true, CBW: cb, CBH: cb})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(res.Data)
		if err != nil {
			t.Fatalf("cb=%d: %v", cb, err)
		}
		if !img.Equal(got) {
			t.Fatalf("cb=%d: round trip failed", cb)
		}
	}
}

func TestDecompositionLevels(t *testing.T) {
	img := workload.Dial(96, 96, 8, 3)
	for _, lv := range []int{0, 1, 3, 6} {
		opt := Options{Lossless: true, Levels: lv}
		if lv == 0 {
			continue // 0 means default; tested elsewhere
		}
		res, err := Encode(img, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(res.Data)
		if err != nil {
			t.Fatalf("levels=%d: %v", lv, err)
		}
		if !img.Equal(got) {
			t.Fatalf("levels=%d: round trip failed", lv)
		}
	}
}

func TestNoiseVsDialCompressibility(t *testing.T) {
	dial := workload.Dial(128, 128, 1, 3)
	noise := workload.Noise(128, 128, 1)
	rd, _ := Encode(dial, Options{Lossless: true})
	rn, _ := Encode(noise, Options{Lossless: true})
	if len(rd.Data) >= len(rn.Data) {
		t.Fatalf("dial (%d B) should compress better than noise (%d B)", len(rd.Data), len(rn.Data))
	}
}

func TestStatsPopulated(t *testing.T) {
	img := workload.Dial(128, 96, 6, 4)
	res, err := Encode(img, Options{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Samples != 128*96*3 || s.Blocks == 0 || s.T1Scanned == 0 || s.T1Coded == 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.KeptPasses != s.TotalPasses {
		t.Fatal("lossless must keep all passes")
	}
	if s.HeaderBytes <= 0 || s.BodyBytes <= 0 || s.HeaderBytes+s.BodyBytes != len(res.Data) {
		t.Fatalf("byte accounting: header %d body %d total %d", s.HeaderBytes, s.BodyBytes, len(res.Data))
	}
}

func TestRateControlKeepsFewerPasses(t *testing.T) {
	img := workload.Dial(256, 256, 13, 6)
	full, err := Encode(img, Options{Lossless: false})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Encode(img, Options{Lossless: false, Rate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Stats.KeptPasses >= full.Stats.KeptPasses {
		t.Fatalf("rate control kept %d of %d passes", tight.Stats.KeptPasses, full.Stats.KeptPasses)
	}
}

func TestEncodeRejectsBadImages(t *testing.T) {
	bad := &imgmodel.Image{W: 4, H: 4, Depth: 8}
	if _, err := Encode(bad, Options{}); err == nil {
		t.Fatal("image without components accepted")
	}
	img := imgmodel.NewImage(4, 4, 2, 8)
	img.Comps[1] = imgmodel.NewPlane(3, 4)
	img.Comps[1].W = 3
	if _, err := Encode(img, Options{}); err == nil {
		t.Fatal("mismatched component accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted")
	}
	img := workload.Dial(32, 32, 1, 0)
	res, _ := Encode(img, Options{Lossless: true})
	if _, err := Decode(res.Data[:len(res.Data)/2]); err == nil {
		t.Fatal("truncated codestream accepted")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	img := workload.Dial(100, 100, 2, 5)
	a, _ := Encode(img, Options{Lossless: true})
	b, _ := Encode(img, Options{Lossless: true})
	if string(a.Data) != string(b.Data) {
		t.Fatal("encoder not deterministic")
	}
	c, _ := Encode(img, Options{Lossless: false, Rate: 0.1})
	d, _ := Encode(img, Options{Lossless: false, Rate: 0.1})
	if string(c.Data) != string(d.Data) {
		t.Fatal("lossy encoder not deterministic")
	}
}

func TestPSNRFiniteForLossy(t *testing.T) {
	img := workload.Dial(64, 64, 1, 6)
	res, _ := Encode(img, Options{Lossless: false, Rate: 0.2})
	got, err := Decode(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if p := img.PSNR(got); math.IsInf(p, 1) || p < 20 {
		t.Fatalf("lossy PSNR %v implausible", p)
	}
}

func TestMultiLayerEncodeDecode(t *testing.T) {
	img := workload.Dial(256, 256, 5, 5)
	raw := 256 * 256 * 3
	rates := []float64{0.02, 0.1, 0.4}
	res, err := Encode(img, Options{LayerRates: rates})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LayerKeep) != 3 {
		t.Fatalf("layer keeps: %d", len(res.LayerKeep))
	}
	// Total stream respects the final budget.
	if len(res.Data) > int(rates[2]*float64(raw)) {
		t.Fatalf("stream %d exceeds final budget", len(res.Data))
	}
	// Full decode works and beats the single-layer 0.02 quality.
	full, err := Decode(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	psnrFull := img.PSNR(full)
	if psnrFull < 35 {
		t.Fatalf("full multi-layer PSNR %.1f too low", psnrFull)
	}
	// Layer-progressive decode: quality must increase with layers.
	last := 0.0
	for l := 1; l <= 3; l++ {
		got, err := DecodeWith(res.Data, DecodeOptions{MaxLayers: l})
		if err != nil {
			t.Fatalf("layers=%d: %v", l, err)
		}
		p := img.PSNR(got)
		if p < last-0.01 {
			t.Fatalf("PSNR fell from %.2f to %.2f at %d layers", last, p, l)
		}
		last = p
	}
	if last != psnrFull {
		t.Fatalf("all-layers decode %.2f != full decode %.2f", last, psnrFull)
	}
}

func TestMultiLayerLayersAreEmbedded(t *testing.T) {
	img := workload.Dial(192, 192, 8, 5)
	res, err := Encode(img, Options{LayerRates: []float64{0.05, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Blocks {
		if res.LayerKeep[0][i] > res.LayerKeep[1][i] {
			t.Fatal("layer selections not nested")
		}
	}
	// First layer's quality roughly matches a single-layer encode at
	// the same rate.
	one, err := Encode(img, Options{Rate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	gotOne, _ := Decode(one.Data)
	gotL1, err := DecodeWith(res.Data, DecodeOptions{MaxLayers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p1, pL := img.PSNR(gotOne), img.PSNR(gotL1)
	if pL < p1-2 {
		t.Fatalf("layer-1 PSNR %.2f far below single-layer %.2f", pL, p1)
	}
}

func TestReducedResolutionDecode(t *testing.T) {
	img := workload.Dial(256, 192, 4, 4)
	for _, opt := range []Options{{Lossless: true}, {Rate: 0.3}} {
		res, err := Encode(img, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, discard := range []int{1, 2, 3} {
			got, err := DecodeWith(res.Data, DecodeOptions{DiscardLevels: discard})
			if err != nil {
				t.Fatalf("discard=%d: %v", discard, err)
			}
			w, h := 256, 192
			for i := 0; i < discard; i++ {
				w, h = (w+1)/2, (h+1)/2
			}
			if got.W != w || got.H != h {
				t.Fatalf("discard=%d: got %dx%d, want %dx%d", discard, got.W, got.H, w, h)
			}
			// The reduced image must resemble a downscale of the
			// original: compare against a simple box downscale.
			var se, n float64
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					sy, sx := y<<uint(discard), x<<uint(discard)
					if sy >= 192 {
						sy = 191
					}
					if sx >= 256 {
						sx = 255
					}
					d := float64(got.Comps[0].At(y, x) - img.Comps[0].At(sy, sx))
					se += d * d
					n++
				}
			}
			rmse := se / n
			if rmse > 3000 {
				t.Fatalf("discard=%d: reduced image unrelated to source (MSE %.0f)", discard, rmse)
			}
		}
	}
}

func TestDecodeWithZeroOptionsEqualsDecode(t *testing.T) {
	img := workload.Dial(96, 96, 2, 4)
	res, _ := Encode(img, Options{Lossless: true})
	a, err := Decode(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeWith(res.Data, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("DecodeWith{} differs from Decode")
	}
}

func TestRLCPProgressionRoundTrip(t *testing.T) {
	img := workload.Dial(200, 150, 6, 4)
	for _, opt := range []Options{
		{Lossless: true, Progression: RLCP},
		{Rate: 0.15, Progression: RLCP},
		{LayerRates: []float64{0.05, 0.3}, Progression: RLCP},
	} {
		res, err := Encode(img, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(res.Data)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if opt.Lossless {
			if !img.Equal(got) {
				t.Fatal("RLCP lossless round trip failed")
			}
		} else if img.PSNR(got) < 28 {
			t.Fatalf("RLCP lossy PSNR %.1f", img.PSNR(got))
		}
	}
}

func TestProgressionOrderContents(t *testing.T) {
	lrcp := PacketOrder(LRCP, 2, 1, 3)
	rlcp := PacketOrder(RLCP, 2, 1, 3)
	if len(lrcp) != 12 || len(rlcp) != 12 {
		t.Fatalf("order lengths %d %d", len(lrcp), len(rlcp))
	}
	if lrcp[0] != [3]int{0, 0, 0} || lrcp[3] != [3]int{0, 1, 0} {
		t.Fatalf("LRCP order: %v", lrcp[:6])
	}
	if rlcp[3] != [3]int{1, 0, 0} {
		t.Fatalf("RLCP order: %v", rlcp[:6])
	}
	// Both must enumerate the same set.
	seen := map[[3]int]bool{}
	for _, v := range lrcp {
		seen[v] = true
	}
	for _, v := range rlcp {
		if !seen[v] {
			t.Fatalf("RLCP emits %v not in LRCP", v)
		}
	}
}

func TestRLCPEnablesPrefixThumbnails(t *testing.T) {
	// Under RLCP all packets of coarse resolutions come first, so a
	// reduced-resolution decode touches only a stream prefix. We check
	// the semantic part: reduced decode equals the LRCP one.
	img := workload.Dial(128, 128, 2, 4)
	a, err := Encode(img, Options{Rate: 0.3, Progression: LRCP})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(img, Options{Rate: 0.3, Progression: RLCP})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := DecodeWith(a.Data, DecodeOptions{DiscardLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := DecodeWith(b.Data, DecodeOptions{DiscardLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ra.Equal(rb) {
		t.Fatal("progression order changed decoded content")
	}
}

func TestInspectStructure(t *testing.T) {
	img := workload.Dial(160, 120, 3, 4)
	res, err := Encode(img, Options{LayerRates: []float64{0.05, 0.2}, Progression: RLCP})
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	h := info.Header
	wantPkts := h.Layers * (h.Levels + 1) * h.NComp
	if len(info.Packets) != wantPkts {
		t.Fatalf("packets %d, want %d", len(info.Packets), wantPkts)
	}
	// Packet bytes must tile the body exactly.
	total := 0
	for i, p := range info.Packets {
		if p.Bytes <= 0 {
			t.Fatalf("packet %d empty", i)
		}
		if p.Offset != total {
			t.Fatalf("packet %d offset %d, want %d", i, p.Offset, total)
		}
		total += p.Bytes
	}
	if total != res.Stats.BodyBytes {
		t.Fatalf("packets cover %d of %d body bytes", total, res.Stats.BodyBytes)
	}
	// RLCP: resolution must be nondecreasing along the stream.
	for i := 1; i < len(info.Packets); i++ {
		if info.Packets[i].Res < info.Packets[i-1].Res {
			t.Fatal("RLCP stream not resolution-ordered")
		}
	}
	// Prefix accessors are monotone.
	if info.BytesAtResolution(0) >= info.BytesAtResolution(h.Levels) {
		t.Fatal("resolution prefixes not increasing")
	}
	if info.BytesAtLayer(1) >= info.BytesAtLayer(2) {
		t.Fatal("layer prefixes not increasing")
	}
	// Band stats: the per-subband data bytes plus the per-packet header
	// overhead must tile the body exactly.
	bandTotal := 0
	for _, b := range info.Bands {
		if b.Bytes < 0 {
			t.Fatalf("negative band bytes: %+v", b)
		}
		bandTotal += b.Bytes
	}
	if len(info.Bands) != h.NComp*(3*h.Levels+1) {
		t.Fatalf("bands %d, want %d", len(info.Bands), h.NComp*(3*h.Levels+1))
	}
	if bandTotal+info.HeaderOverhead() != total {
		t.Fatalf("bands %d + headers %d != body %d",
			bandTotal, info.HeaderOverhead(), total)
	}
	// Marker walk: starts SOC, ends EOC, and the framing total matches
	// the non-body bytes of the stream.
	if info.Markers[0].Name != "SOC" || info.Markers[len(info.Markers)-1].Name != "EOC" {
		t.Fatalf("marker walk: %+v", info.Markers)
	}
	framing := 0
	for _, m := range info.Markers {
		framing += m.Len
	}
	if framing != len(res.Data)-res.Stats.BodyBytes {
		t.Fatalf("framing %d, want %d", framing, len(res.Data)-res.Stats.BodyBytes)
	}
}

func TestTileGrid(t *testing.T) {
	g := TileGrid(100, 60, 40, 32)
	if len(g) != 3*2 {
		t.Fatalf("grid %v", g)
	}
	if g[2] != (Rect{X0: 80, Y0: 0, W: 20, H: 32}) {
		t.Fatalf("edge tile %+v", g[2])
	}
	if g[5] != (Rect{X0: 80, Y0: 32, W: 20, H: 28}) {
		t.Fatalf("corner tile %+v", g[5])
	}
	area := 0
	for _, r := range g {
		area += r.W * r.H
	}
	if area != 100*60 {
		t.Fatalf("tiles cover %d", area)
	}
}

func TestTiledLosslessRoundTrip(t *testing.T) {
	img := workload.Dial(200, 150, 3, 5)
	for _, tile := range []struct{ w, h int }{{64, 64}, {128, 128}, {200, 150}, {70, 40}} {
		res, err := Encode(img, Options{Lossless: true, TileW: tile.w, TileH: tile.h})
		if err != nil {
			t.Fatalf("tile %dx%d: %v", tile.w, tile.h, err)
		}
		got, err := Decode(res.Data)
		if err != nil {
			t.Fatalf("tile %dx%d: decode: %v", tile.w, tile.h, err)
		}
		if !img.Equal(got) {
			t.Fatalf("tile %dx%d: round trip not exact", tile.w, tile.h)
		}
	}
}

func TestTiledLossyGlobalRateControl(t *testing.T) {
	img := workload.Dial(256, 256, 7, 5)
	raw := 256 * 256 * 3
	res, err := Encode(img, Options{Rate: 0.1, TileW: 128, TileH: 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) > int(0.1*float64(raw)) {
		t.Fatalf("tiled stream %d over budget", len(res.Data))
	}
	got, err := Decode(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if p := img.PSNR(got); p < 28 {
		t.Fatalf("tiled lossy PSNR %.1f", p)
	}
}

func TestTiledParallelMatchesSerial(t *testing.T) {
	img := workload.Dial(200, 200, 2, 5)
	opt := Options{Rate: 0.2, TileW: 64, TileH: 64}
	a, err := EncodeTiled(img, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeTiled(img, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Data) != string(b.Data) {
		t.Fatal("tile workers changed output bytes")
	}
}

func TestTiledReducedResolution(t *testing.T) {
	img := workload.Dial(256, 128, 9, 4)
	res, err := Encode(img, Options{Lossless: true, TileW: 128, TileH: 64})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWith(res.Data, DecodeOptions{DiscardLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 64 || got.H != 32 {
		t.Fatalf("reduced tiled decode %dx%d", got.W, got.H)
	}
	// Indivisible tile size must be rejected, not garbled.
	res2, err := Encode(img, Options{Lossless: true, TileW: 100, TileH: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeWith(res2.Data, DecodeOptions{DiscardLevels: 2}); err == nil {
		t.Fatal("indivisible reduced tiled decode accepted")
	}
}

func TestTiledMultiLayer(t *testing.T) {
	img := workload.Dial(192, 192, 11, 5)
	res, err := Encode(img, Options{LayerRates: []float64{0.05, 0.25}, TileW: 96, TileH: 96})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := DecodeWith(res.Data, DecodeOptions{MaxLayers: 1})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := DecodeWith(res.Data, DecodeOptions{MaxLayers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if img.PSNR(l2) <= img.PSNR(l1) {
		t.Fatal("tiled layers not progressive")
	}
}

func TestTiledVsUntiledQuality(t *testing.T) {
	// Tiling costs some efficiency but must stay in the same ballpark.
	img := workload.Dial(256, 256, 1, 5)
	u, err := Encode(img, Options{Rate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Encode(img, Options{Rate: 0.1, TileW: 64, TileH: 64})
	if err != nil {
		t.Fatal(err)
	}
	gu, _ := Decode(u.Data)
	gt, err := Decode(tl.Data)
	if err != nil {
		t.Fatal(err)
	}
	pu, pt := img.PSNR(gu), img.PSNR(gt)
	if pt < pu-3 {
		t.Fatalf("tiled PSNR %.2f far below untiled %.2f", pt, pu)
	}
}

func TestRegionDecodeExact(t *testing.T) {
	img := workload.Dial(256, 192, 15, 5)
	for _, opt := range []Options{{Lossless: true}, {Rate: 0.15}} {
		res, err := Encode(img, opt)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Decode(res.Data)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []Rect{
			{X0: 0, Y0: 0, W: 32, H: 32},
			{X0: 100, Y0: 70, W: 80, H: 50},
			{X0: 200, Y0: 150, W: 56, H: 42}, // bottom-right corner
			{X0: 0, Y0: 0, W: 256, H: 192},   // whole image
		} {
			got, err := DecodeWith(res.Data, DecodeOptions{Region: r})
			if err != nil {
				t.Fatalf("region %+v: %v", r, err)
			}
			if got.W != r.W || got.H != r.H {
				t.Fatalf("region %+v: got %dx%d", r, got.W, got.H)
			}
			want := full.SubImage(r.X0, r.Y0, r.W, r.H)
			if !got.Equal(want) {
				t.Fatalf("lossless=%v region %+v: window decode differs from full-decode crop", opt.Lossless, r)
			}
		}
	}
}

func TestRegionDecodeTiled(t *testing.T) {
	img := workload.Dial(200, 200, 3, 5)
	res, err := Encode(img, Options{Lossless: true, TileW: 64, TileH: 64})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decode(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	// A window straddling four tiles.
	r := Rect{X0: 50, Y0: 50, W: 30, H: 90}
	got, err := DecodeWith(res.Data, DecodeOptions{Region: r})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(full.SubImage(r.X0, r.Y0, r.W, r.H)) {
		t.Fatal("tiled window decode differs from crop")
	}
}

func TestRegionDecodeValidation(t *testing.T) {
	img := workload.Dial(64, 64, 1, 3)
	res, _ := Encode(img, Options{Lossless: true})
	if _, err := DecodeWith(res.Data, DecodeOptions{Region: Rect{X0: 60, Y0: 0, W: 10, H: 10}}); err == nil {
		t.Fatal("out-of-bounds region accepted")
	}
	if _, err := DecodeWith(res.Data, DecodeOptions{Region: Rect{W: 8, H: 8}, DiscardLevels: 1}); err == nil {
		t.Fatal("region + discard accepted")
	}
}

func TestSixteenBitDepthRoundTrip(t *testing.T) {
	// Medical/astronomy-style 16-bit imagery must survive the
	// reversible path bit-exactly.
	img := imgmodel.NewImage(96, 64, 1, 16)
	rng := workload.NewRNG(21)
	for y := 0; y < 64; y++ {
		row := img.Comps[0].Row(y)
		for x := range row {
			row[x] = int32(x*400+y*150) % 65536
			if rng.Intn(3) == 0 {
				row[x] = int32(rng.Intn(65536))
			}
		}
	}
	res, err := Encode(img, Options{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Depth != 16 || !img.Equal(got) {
		t.Fatal("16-bit lossless round trip failed")
	}

	// Lossy 16-bit: decent PSNR at 8:1.
	lossy, err := Encode(img, Options{Rate: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(lossy.Data)
	if err != nil {
		t.Fatal(err)
	}
	if p := img.PSNR(back); p < 20 {
		t.Fatalf("16-bit lossy PSNR %.1f", p)
	}
}

func TestTwelveBitRGBRoundTrip(t *testing.T) {
	img := imgmodel.NewImage(48, 48, 3, 12)
	rng := workload.NewRNG(31)
	for _, p := range img.Comps {
		for y := 0; y < 48; y++ {
			row := p.Row(y)
			for x := range row {
				row[x] = int32(rng.Intn(4096))
			}
		}
	}
	res, err := Encode(img, Options{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("12-bit RGB (RCT path) round trip failed")
	}
}

func TestParallelDecodeIdentical(t *testing.T) {
	img := workload.Dial(256, 192, 12, 5)
	for _, opt := range []Options{{Lossless: true}, {Rate: 0.1}, {Lossless: true, TileW: 96, TileH: 96}} {
		res, err := Encode(img, opt)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := Decode(res.Data)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4, 8} {
			par, err := DecodeWith(res.Data, DecodeOptions{Workers: w})
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			if !par.Equal(serial) {
				t.Fatalf("workers=%d: parallel decode differs", w)
			}
		}
	}
}

func TestParallelDecodeSurfacesErrors(t *testing.T) {
	img := workload.Dial(64, 64, 1, 3)
	res, _ := Encode(img, Options{Rate: 0.2})
	// Corrupt a segment length deep in the body so Tier-1 sees
	// inconsistent data but the packet parse succeeds; whether decode
	// errors or not, it must not panic with workers.
	data := append([]byte(nil), res.Data...)
	if len(data) > 200 {
		data[len(data)-50] ^= 0xFF
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parallel decode panicked: %v", r)
			}
		}()
		_, _ = DecodeWith(data, DecodeOptions{Workers: 4})
	}()
}

// TestPropRandomImagesAndOptions is the catch-all: random geometries
// and random option sets must round trip (bit exact when lossless,
// decodable and budget-respecting when lossy).
func TestPropRandomImagesAndOptions(t *testing.T) {
	rng := workload.NewRNG(12345)
	for trial := 0; trial < 30; trial++ {
		w := rng.Intn(120) + 1
		h := rng.Intn(120) + 1
		ncomp := []int{1, 3}[rng.Intn(2)]
		img := imgmodel.NewImage(w, h, ncomp, 8)
		for _, p := range img.Comps {
			for y := 0; y < h; y++ {
				row := p.Row(y)
				for x := range row {
					row[x] = int32(rng.Intn(256))
				}
			}
		}
		opt := Options{
			Lossless: rng.Intn(2) == 0,
			Levels:   rng.Intn(6),
			CBW:      []int{16, 32, 64}[rng.Intn(3)],
			CBH:      []int{16, 32, 64}[rng.Intn(3)],
		}
		if !opt.Lossless && rng.Intn(2) == 0 {
			opt.Rate = 0.1 + rng.Float()*0.4
		}
		if rng.Intn(3) == 0 {
			opt.Progression = RLCP
		}
		if rng.Intn(4) == 0 && w > 16 && h > 16 {
			opt.TileW = w/2 + 1
			opt.TileH = h/2 + 1
		}
		res, err := Encode(img, opt)
		if err != nil {
			t.Fatalf("trial %d (%dx%dx%d %+v): encode: %v", trial, w, h, ncomp, opt, err)
		}
		got, err := Decode(res.Data)
		if err != nil {
			t.Fatalf("trial %d (%dx%dx%d %+v): decode: %v", trial, w, h, ncomp, opt, err)
		}
		if opt.Lossless {
			if !img.Equal(got) {
				t.Fatalf("trial %d (%dx%dx%d %+v): lossless mismatch", trial, w, h, ncomp, opt)
			}
		} else if opt.Rate > 0 {
			budget := int(opt.Rate * float64(w*h*ncomp))
			if len(res.Data) > budget && budget > 400 {
				t.Fatalf("trial %d: %d bytes over budget %d", trial, len(res.Data), budget)
			}
		}
	}
}

func TestVisualWeightingShiftsBytes(t *testing.T) {
	img := workload.Dial(256, 256, 17, 6)
	plain, err := Encode(img, Options{Rate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	vis, err := Encode(img, Options{Rate: 0.05, VisualWeighting: true})
	if err != nil {
		t.Fatal(err)
	}
	// Count kept passes in the finest HH band vs the coarse bands.
	passesIn := func(res *Result, fine bool) int {
		n := 0
		for i, j := range res.Jobs {
			isFine := j.Band.Orient != 0 && j.Band.Level == 1
			if isFine == fine {
				n += res.Keep[i]
			}
		}
		return n
	}
	if passesIn(vis, true) >= passesIn(plain, true) {
		t.Fatalf("visual weighting kept %d fine-band passes vs %d plain",
			passesIn(vis, true), passesIn(plain, true))
	}
	if passesIn(vis, false) <= passesIn(plain, false) {
		t.Fatal("visual weighting should reinvest bytes in coarse bands")
	}
	// Both decode; weighted stream has (slightly) lower plain PSNR by
	// construction — it optimizes a different metric.
	gv, err := Decode(vis.Data)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := Decode(plain.Data)
	if err != nil {
		t.Fatal(err)
	}
	if img.PSNR(gv) > img.PSNR(gp)+0.1 {
		t.Fatal("weighted stream should not beat MSE-optimal on PSNR")
	}
	if img.PSNR(gv) < img.PSNR(gp)-6 {
		t.Fatalf("weighted PSNR collapsed: %.1f vs %.1f", img.PSNR(gv), img.PSNR(gp))
	}
}

func TestVisualWeightingLosslessUnaffected(t *testing.T) {
	img := workload.Dial(96, 96, 4, 3)
	a, _ := Encode(img, Options{Lossless: true})
	b, _ := Encode(img, Options{Lossless: true, VisualWeighting: true})
	if string(a.Data) != string(b.Data) {
		t.Fatal("visual weighting must not touch the lossless path")
	}
}

func TestResilienceRoundTripClean(t *testing.T) {
	img := workload.Dial(160, 120, 19, 4)
	res, err := Encode(img, Options{Lossless: true, Resilience: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("resilient stream not bit exact when undamaged")
	}
	if _, err := Inspect(res.Data); err != nil {
		t.Fatalf("inspect on resilient stream: %v", err)
	}
}

func TestResilienceSurvivesPacketCorruption(t *testing.T) {
	img := workload.Dial(192, 192, 23, 5)
	res, err := Encode(img, Options{Rate: 0.3, Resilience: true})
	if err != nil {
		t.Fatal(err)
	}
	// Find the third SOP marker in the stream and trash the packet
	// header bytes right after it.
	data := append([]byte(nil), res.Data...)
	seen := 0
	for i := 0; i+8 < len(data); i++ {
		if data[i] == 0xFF && data[i+1] == 0x91 && data[i+2] == 0 && data[i+3] == 4 {
			seen++
			if seen == 3 {
				for j := i + 6; j < i+14 && j < len(data); j++ {
					data[j] = 0x55
				}
				break
			}
		}
	}
	if seen < 3 {
		t.Fatal("stream has no SOP markers")
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("resilient decode failed outright: %v", err)
	}
	if p := img.PSNR(got); p < 12 {
		t.Fatalf("recovered image unusable: %.1f dB", p)
	}

	// The same stream without resilience must not silently succeed
	// with the identical corruption pattern applied to its body.
	plain, err := Encode(img, Options{Rate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	pd := append([]byte(nil), plain.Data...)
	// Corrupt the start of the third packet's header region (no
	// markers to find, so corrupt at a similar relative offset).
	off := len(pd) / 3
	for j := off; j < off+8; j++ {
		pd[j] = 0x55
	}
	if dec, err := Decode(pd); err == nil {
		// Decoding may still "succeed" (MQ absorbs garbage), but then
		// the reconstruction must be degraded rather than silently
		// perfect.
		if img.PSNR(dec) > 60 {
			t.Fatal("corruption had no effect on non-resilient stream?")
		}
	}
}

func TestResilienceDetectsHeaderCorruptionViaEPH(t *testing.T) {
	// With SOP+EPH, a corrupted packet header fails the EPH check and
	// the packet is dropped at a marker boundary instead of the body
	// bytes being misattributed.
	img := workload.Dial(128, 128, 29, 5)
	res, err := Encode(img, Options{Rate: 0.3, Resilience: true})
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Header == nil || !info.Header.SOPMarkers {
		t.Fatal("resilient header flag lost")
	}
	got, err := Decode(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if img.PSNR(got) < 25 {
		t.Fatal("clean resilient stream degraded")
	}
}
