package codec

import (
	"testing"

	"j2kcell/internal/workload"
)

// mutate returns a copy of data with n deterministic corruptions.
func mutate(rng *workload.RNG, data []byte, n int) []byte {
	out := append([]byte(nil), data...)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0: // flip a byte
			out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
		case 1: // zero a run
			p := rng.Intn(len(out))
			for j := p; j < p+8 && j < len(out); j++ {
				out[j] = 0
			}
		case 2: // set a run to 0xFF (marker bait)
			p := rng.Intn(len(out))
			for j := p; j < p+4 && j < len(out); j++ {
				out[j] = 0xFF
			}
		}
	}
	return out
}

// TestDecoderNeverPanicsOnCorruptStreams feeds hundreds of mutated
// codestreams through the decoder. Errors are expected (and frequent);
// panics are defects.
func TestDecoderNeverPanicsOnCorruptStreams(t *testing.T) {
	imgs := []struct {
		name string
		opt  Options
	}{
		{"lossless", Options{Lossless: true}},
		{"lossy", Options{Rate: 0.1}},
		{"layers", Options{LayerRates: []float64{0.05, 0.2}}},
	}
	src := workload.Dial(96, 96, 9, 5)
	for _, tc := range imgs {
		res, err := Encode(src, tc.opt)
		if err != nil {
			t.Fatal(err)
		}
		rng := workload.NewRNG(77)
		for trial := 0; trial < 150; trial++ {
			data := mutate(rng, res.Data, rng.Intn(6)+1)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s trial %d: decoder panicked: %v", tc.name, trial, r)
					}
				}()
				img, err := Decode(data)
				_ = img
				_ = err // errors are fine; panics are not
			}()
		}
	}
}

// TestDecoderNeverPanicsOnTruncation truncates at every length class.
func TestDecoderNeverPanicsOnTruncation(t *testing.T) {
	src := workload.Dial(64, 64, 3, 5)
	res, err := Encode(src, Options{LayerRates: []float64{0.1, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(res.Data); n += 7 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("truncation at %d: panic: %v", n, r)
				}
			}()
			_, _ = Decode(res.Data[:n])
		}()
	}
}

// TestDecoderNeverPanicsOnRandomBytes tries pure garbage with valid
// magic so parsing proceeds past the first check.
func TestDecoderNeverPanicsOnRandomBytes(t *testing.T) {
	rng := workload.NewRNG(5)
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(500) + 4
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		data[0], data[1] = 0xFF, 0x4F // SOC
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			_, _ = Decode(data)
		}()
	}
}
