package codec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"j2kcell/internal/codestream"
	"j2kcell/internal/dwt"
	"j2kcell/internal/imgmodel"
	"j2kcell/internal/jp2"
	"j2kcell/internal/mct"
	"j2kcell/internal/obs"
	"j2kcell/internal/quant"
	"j2kcell/internal/t1"
	"j2kcell/internal/t2"
)

// Decode reconstructs an image from a codestream produced by Encode
// (or by the parallel encoders, whose output is byte-identical).
func Decode(data []byte) (*imgmodel.Image, error) {
	return DecodeWith(data, DecodeOptions{})
}

// DecodeOptions selects progressive decoding subsets.
type DecodeOptions struct {
	// MaxLayers decodes only the first n quality layers (0 = all):
	// quality-progressive reconstruction at a lower rate.
	MaxLayers int
	// DiscardLevels drops the finest n resolution levels (0 = full
	// size): resolution-progressive reconstruction of a
	// ceil(w/2^n) × ceil(h/2^n) image without decoding the fine bands.
	DiscardLevels int
	// Region, when non-zero, decodes only the code blocks whose wavelet
	// support influences the given image window and returns just that
	// window — JPEG2000's random spatial access. Tier-1, the dominant
	// decode cost, is skipped for every other block. Not combinable
	// with DiscardLevels.
	Region Rect
	// Workers > 1 runs the full inverse chain — Tier-1 block decoding,
	// dequantization, the multi-level inverse DWT and the inverse
	// MCT/level shift — across a goroutine pool, draining the same
	// atomic work queue the encoder's stages use. Output is
	// bit-identical to the serial decode for every worker count.
	Workers int
	// Limits bounds what the main header may declare (dimensions,
	// components, levels, tiles, total pixel budget), enforced before
	// any plane or tile table is allocated. Nil applies DefaultLimits;
	// point at a zero Limits{} to disable limiting.
	Limits *Limits
	// BestEffort decodes damaged streams as far as possible instead of
	// failing on the first error: detection failures discard only the
	// affected code block, packet, or tile-part (concealed as zero
	// coefficients), and the decode resynchronizes on SOP/SOT markers.
	// DecodeWithOptions then never reports stream damage as an error;
	// use DecodeResilient to also receive the DamageReport saying what
	// was lost.
	BestEffort bool
}

// limits resolves the effective header limits.
func (d DecodeOptions) limits() Limits {
	if d.Limits != nil {
		return *d.Limits
	}
	return DefaultLimits()
}

// sopSeqWindow bounds how far ahead of the expected packet index a
// candidate SOP's Nsop may point and still be accepted as genuine. The
// FF 91 00 04 prefix is only four bytes, so packet bodies produce fake
// candidates at random; requiring the 16-bit sequence number to land in
// a small forward window rejects them (a fake passes with probability
// window/2^16 per candidate) while still resyncing across long damaged
// runs of packets.
const sopSeqWindow = 512

// findSOP scans body from `from` for an SOP marker whose Nsop falls in
// [expect, expect+sopSeqWindow) mod 2^16 and returns its offset and the
// absolute packet index it names (>= expect). Returns (-1, 0) when no
// acceptable marker remains.
func findSOP(body []byte, from, expect int) (int, int) {
	for i := from; i+6 <= len(body); i++ {
		if body[i] != 0xFF || body[i+1] != 0x91 || body[i+2] != 0x00 || body[i+3] != 0x04 {
			continue
		}
		seq := int(body[i+4])<<8 | int(body[i+5])
		if d := (seq - expect) & 0xFFFF; d < sopSeqWindow {
			return i, expect + d
		}
	}
	return -1, 0
}

// regionSet reports whether a window was requested.
func (d DecodeOptions) regionSet() bool { return d.Region.W > 0 && d.Region.H > 0 }

// regionMargin is the per-side expansion, in band coordinates, that
// guarantees every coefficient whose synthesis support touches the
// window is decoded: each inverse lifting level widens dependence by at
// most two coefficients per side (9/7), and the geometric sum of the
// halved propagation is bounded by 4; one extra guards rounding.
const regionMargin = 5

// bandWindow maps an image-space window to the band-coordinate rect
// whose coefficients can influence it, for a band at the given level.
func bandWindow(r Rect, level int) Rect {
	x0 := (r.X0 >> uint(level)) - regionMargin
	y0 := (r.Y0 >> uint(level)) - regionMargin
	x1 := ((r.X0 + r.W - 1) >> uint(level)) + regionMargin
	y1 := ((r.Y0 + r.H - 1) >> uint(level)) + regionMargin
	return Rect{X0: x0, Y0: y0, W: x1 - x0 + 1, H: y1 - y0 + 1}
}

func rectsIntersect(a, b Rect) bool {
	return a.X0 < b.X0+b.W && b.X0 < a.X0+a.W && a.Y0 < b.Y0+b.H && b.Y0 < a.Y0+a.H
}

// blockAcc accumulates one code block's contributions across layers.
type blockAcc struct {
	zbp      int
	passes   int
	segLens  []int
	data     []byte
	included bool
}

// DecodeWith reconstructs an image, optionally truncating the quality
// or resolution progression.
func DecodeWith(data []byte, dopt DecodeOptions) (*imgmodel.Image, error) {
	return DecodeWithContext(context.Background(), data, dopt)
}

// DecodeContext is Decode bound to a context: cancellation stops the
// decode between packets and Tier-1 block jobs and returns ctx.Err()
// unwrapped.
func DecodeContext(ctx context.Context, data []byte) (*imgmodel.Image, error) {
	return DecodeWithContext(ctx, data, DecodeOptions{})
}

// DecodeWithContext is DecodeWith bound to a context. Malformed or
// limit-exceeding input surfaces as *FormatError, a contained worker
// panic as *FaultError, and cancellation as ctx.Err() unwrapped.
func DecodeWithContext(ctx context.Context, data []byte, dopt DecodeOptions) (img *imgmodel.Image, err error) {
	if dopt.BestEffort {
		// The resilient path carries its own SLO envelope, admission and
		// fault containment; stream damage lands in the (discarded here)
		// report, never in err.
		img, _, err := DecodeResilientContext(ctx, data, dopt)
		return img, err
	}
	rec := obs.Current(ctx)
	// SLO envelope. The operation class (lossless/tiled/HT bits) is only
	// known once the main header parses, so it is latched below;
	// registered before containAPIFault (LIFO) so a contained panic is
	// already an error when the outcome is observed.
	var start time.Time
	if rec != nil {
		start = time.Now()
	}
	var cls obs.OpClass
	clsKnown := false
	defer func() {
		if rec == nil {
			return
		}
		if err != nil {
			rec.OpFailed()
			return
		}
		if clsKnown {
			rec.OpDone(cls, time.Since(start))
		}
	}()
	defer containAPIFault(rec, "decode", &err)
	if ctx == nil {
		ctx = context.Background()
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	// Admission control (DESIGN.md §12): multi-worker decodes hold one
	// shared-scheduler slot from header parse to the last inverse stage;
	// a full admission queue fails fast with ErrOverloaded.
	release, aerr := admitOp(ctx, dopt.Workers, rec)
	if aerr != nil {
		return nil, aerr
	}
	defer release()
	// Whole-decode envelope span (coordinator lane), the decode-side
	// mirror of EncodeParallel's StageEncode envelope: per-stage busy
	// time nests under it in the Amdahl report and trace.
	ln := rec.Acquire()
	total := ln.Begin(obs.StageDecode, 0, 0)
	defer ln.Release()
	defer total.End()
	if jp2.IsJP2(data) {
		_, cs, err := jp2.Unwrap(data)
		if err != nil {
			return nil, formatErr(err)
		}
		data = cs
	}
	h, bodies, err := codestream.DecodeTilesLimits(data, dopt.limits())
	if err != nil {
		return nil, formatErr(err)
	}
	if dopt.regionSet() {
		if dopt.DiscardLevels != 0 {
			return nil, fmt.Errorf("codec: Region cannot be combined with DiscardLevels")
		}
		r := dopt.Region
		if r.X0 < 0 || r.Y0 < 0 || r.X0+r.W > h.W || r.Y0+r.H > h.H {
			return nil, fmt.Errorf("codec: region %+v outside %dx%d image", r, h.W, h.H)
		}
	}
	tiled := len(bodies) > 1 || h.TileW < h.W || h.TileH < h.H
	cls = obs.ClassOf(true, !h.Lossless, tiled, h.HT)
	clsKnown = true
	if tiled {
		return decodeTiled(ctx, h, bodies, dopt)
	}
	tile, err := decodeTile(ctx, h, h.W, h.H, bodies[0], dopt, nil)
	if err != nil || !dopt.regionSet() {
		return tile, err
	}
	r := dopt.Region
	return tile.SubImage(r.X0, r.Y0, r.W, r.H), nil
}

// decodeTile reconstructs one tile of tw×th samples from its packet
// body. The pipeline bound to ctx carries both the Tier-1 worker pool
// and the cancellation checks of the packet-parse loop. A non-nil dmg
// switches the tile to best-effort mode: packet parse failures, Tier-1
// detection failures and contained worker faults are demoted to
// localized concealment recorded in dmg instead of failing the tile.
func decodeTile(ctx context.Context, h *codestream.Header, tw, th int, body []byte, dopt DecodeOptions, dmg *tileDamage) (*imgmodel.Image, error) {
	p := NewPipelineContext(ctx, dopt.Workers)
	defer p.Close()
	bands := dwt.Layout(tw, th, h.Levels)
	mode := t1.ModeSingle
	style := t2.SegSingle
	switch {
	case h.HT:
		// Both HT variants parse identically: per-pass segment lengths
		// in the packet header, mode dispatch inside t1.Decode.
		mode, style = t1.ModeHT, t2.SegTermAll
	case h.TermAll:
		mode, style = t1.ModeTermAll, t2.SegTermAll
	}
	if h.SegSym {
		// The encoder closed every cleanup pass with the 1010 sentinel;
		// the MQ decoder must consume (and verify) it to stay in sync.
		mode = mode.WithSegSym()
	}
	maxLayers := h.Layers
	if dopt.MaxLayers > 0 && dopt.MaxLayers < maxLayers {
		maxLayers = dopt.MaxLayers
	}
	discard := dopt.DiscardLevels
	if discard < 0 {
		discard = 0
	}
	if discard > h.Levels {
		discard = h.Levels
	}
	keepRes := h.Levels - discard // decode resolutions 0..keepRes

	// Parse all packets in progression order, accumulating per-block state.
	// Precinct coding state persists across layers per (comp, band).
	type key struct{ c, b int }
	precincts := map[key]*t2.Precinct{}
	accs := map[key][]*blockAcc{}
	for c := 0; c < h.NComp; c++ {
		for bi, band := range bands {
			gw := (band.W + h.CBW - 1) / h.CBW
			gh := (band.H + h.CBH - 1) / h.CBH
			precincts[key{c, bi}] = t2.NewPrecinct(gw, gh)
			accs[key{c, bi}] = make([]*blockAcc, gw*gh)
		}
	}

	order := PacketOrder(Progression(h.Progression), h.Layers, h.Levels, h.NComp)
	if dmg != nil {
		dmg.totalPackets = len(order)
	}
	off := 0
	skipTo := 0 // packets below this index were lost to a resync jump
	for pi := 0; pi < len(order); pi++ {
		if p.stopped() {
			return nil, p.Err()
		}
		if pi < skipTo {
			// A resync landed on a later packet's SOP: this packet's
			// data never arrived (or was unparsable); its blocks simply
			// get no contribution from this layer.
			if dmg != nil {
				dmg.lostPackets++
			}
			continue
		}
		l, r, c := order[pi][0], order[pi][1], order[pi][2]
		resBands := ResBands(h.Levels, r)
		var pkt []*t2.Precinct
		for _, bi := range resBands {
			pkt = append(pkt, precincts[key{c, bi}])
		}
		if h.SOPMarkers {
			// Each packet is prefixed FF 91 00 04 seq16. The sequence
			// number is validated against the expected packet index, so
			// a fake FF 91 inside packet-body data cannot hijack the
			// resync (see findSOP).
			at, idx := findSOP(body, off, pi)
			if at < 0 {
				// No acceptable marker remains: the tail is gone.
				if dmg != nil {
					dmg.lostPackets += len(order) - pi
					dmg.truncated = true
				}
				break
			}
			if idx > pi {
				// The stream jumps ahead: packets pi..idx-1 are missing.
				// Leave the marker in place and let the loop skip to it
				// so precinct state stays aligned with packet indices.
				skipTo = idx
				if dmg != nil {
					dmg.resyncs++
				}
				pi--
				continue
			}
			off = at + 6
		}
		n, err := t2.DecodePacketEPH(body[off:], pkt, l, style, h.SOPMarkers)
		if err != nil {
			// Damaged packet: drop its contributions and clear any
			// partially parsed state.
			for _, p := range pkt {
				for i := range p.Blocks {
					if p.Blocks[i] != nil {
						p.Blocks[i].NumPasses = 0
					}
				}
			}
			if h.SOPMarkers {
				// Resync: scan for the next packet's marker (this one's
				// SOP is already consumed, so expect pi+1 onward).
				if dmg != nil {
					dmg.lostPackets++
					dmg.resyncs++
				}
				if at, _ := findSOP(body, off, pi+1); at >= 0 {
					off = at
				} else {
					off = len(body)
				}
				continue
			}
			if dmg != nil {
				// Without resync markers the packet boundary is lost, so
				// everything from here on is undecodable — but every
				// fully received packet before it is already banked.
				dmg.lostPackets += len(order) - pi
				dmg.truncated = true
				break
			}
			return nil, formatErrf(err, "packet l=%d r=%d c=%d", l, r, c)
		}
		off += n
		if dmg != nil {
			dmg.salvaged += int64(n)
			if h.SOPMarkers {
				dmg.salvaged += 6
			}
		}
		if l >= maxLayers || r > keepRes {
			continue // parsed for position, contents discarded
		}
		for _, bi := range resBands {
			p := precincts[key{c, bi}]
			acc := accs[key{c, bi}]
			for i, blk := range p.Blocks {
				if blk == nil || blk.NumPasses == 0 {
					continue
				}
				a := acc[i]
				if a == nil {
					a = &blockAcc{zbp: blk.ZeroBP, included: true}
					acc[i] = a
				}
				a.passes += blk.NumPasses
				for _, s := range blk.Segments {
					a.segLens = append(a.segLens, s.Len)
				}
				a.data = append(a.data, blk.Data...)
			}
		}
	}

	// Tier-1 decode every accumulated block into pooled coefficient
	// planes, skipping blocks whose synthesis support cannot touch a
	// requested region. Pooled planes arrive dirty, so a stripe-parallel
	// zero stage runs first: regions no included block covers must read
	// as zero coefficients. Blocks write disjoint plane regions, so they
	// decode independently — serially or across the worker pool.
	planes := make([]*imgmodel.Plane, h.NComp)
	for c := range planes {
		planes[c] = imgmodel.GetPlaneObs(tw, th, p.rec)
	}
	p.ZeroPlanes(planes)
	var tasks []blockTask
	for c := 0; c < h.NComp; c++ {
		for bi, band := range bands {
			if band.W == 0 || band.H == 0 {
				continue
			}
			var want Rect
			if dopt.regionSet() {
				want = bandWindow(dopt.Region, band.Level)
			}
			gw := (band.W + h.CBW - 1) / h.CBW
			for i, a := range accs[key{c, bi}] {
				if a == nil {
					continue
				}
				gx, gy := i%gw, i/gw
				if dopt.regionSet() {
					blk := Rect{X0: gx * h.CBW, Y0: gy * h.CBH, W: h.CBW, H: h.CBH}
					if !rectsIntersect(blk, want) {
						continue
					}
				}
				bw := h.CBW
				if (gx+1)*h.CBW > band.W {
					bw = band.W - gx*h.CBW
				}
				bh := h.CBH
				if (gy+1)*h.CBH > band.H {
					bh = band.H - gy*h.CBH
				}
				// A corrupt zero-bitplane count can exceed the band's M_b;
				// clamp so Tier-1 sees a sane (empty) block instead of a
				// negative bit-plane count.
				numBPS := h.Mb[c][bi] - a.zbp
				if numBPS < 0 {
					numBPS = 0
				}
				tasks = append(tasks, blockTask{
					acc: a, orient: band.Orient, numBPS: numBPS,
					x0: band.X0 + gx*h.CBW, y0: band.Y0 + gy*h.CBH,
					bw: bw, bh: bh, plane: planes[c], c: c, bi: bi, gx: gx, gy: gy,
				})
			}
		}
	}
	decodeOne := func(tk blockTask) error {
		pl := tk.plane
		err := t1.DecodeObs(p.rec, pl.Data[tk.y0*pl.Stride+tk.x0:], tk.bw, tk.bh, pl.Stride,
			tk.orient, mode, tk.numBPS, tk.acc.passes, tk.acc.data, tk.acc.segLens)
		if err != nil {
			return formatErrf(err, "block c=%d band=%d (%d,%d)", tk.c, tk.bi, tk.gx, tk.gy)
		}
		return nil
	}
	// Tier-1 decoding drains the same atomic work queue as the encode
	// pipeline, but in dynamically-sized jobs: partitions built from the
	// per-block coded byte counts T2 parsing just measured, so cheap
	// blocks coalesce and expensive blocks run alone (see
	// partitionDecodeTasks). Partitions cover disjoint task ranges and
	// blocks write disjoint plane regions, so the split never changes
	// output. A fault or cancellation outranks the per-block parse
	// errors (partitions after the stop never ran, so their slots are
	// nil, not failures); partitions are contiguous in task order, so
	// the first non-nil slot is still the earliest failing block.
	parts, partCost := partitionDecodeTasks(p.rec, tasks, p.workers, decodeCostFor(mode))
	st := obs.StageT1
	if mode.IsHT() {
		st = obs.StageT1HT
	}
	if dmg != nil {
		dmg.totalBlocks = len(tasks)
		if err := decodeBlocksBestEffort(p, st, h, bands, tw, th, tasks, parts, partCost, decodeOne, dmg); err != nil {
			putPlanes(planes)
			return nil, err
		}
	} else {
		errs := make([]error, len(parts))
		p.runCost(st, 0, len(parts), partCost, func(i int) {
			for t := parts[i].lo; t < parts[i].hi; t++ {
				if err := decodeOne(tasks[t]); err != nil {
					errs[i] = err
					return
				}
			}
		})
		if perr := p.Err(); perr != nil {
			putPlanes(planes)
			return nil, perr
		}
		for _, err := range errs {
			if err != nil {
				putPlanes(planes)
				return nil, err
			}
		}
	}

	if discard == 0 {
		return reconstruct(p, h, bands, planes, tw, th)
	}
	img, err := reconstructReduced(h, bands, planes, tw, th, discard)
	putPlanes(planes)
	return img, err
}

// decodeBlocksBestEffort drains the Tier-1 partitions with per-block
// damage demotion. Two failure classes are contained here:
//
//   - Detection failures (MQ segmentation-symbol mismatch, HT trailer
//     inconsistency, malformed segments): decodeOne returns an error,
//     the worker conceals that block as zero coefficients, records the
//     loss, and the partition continues with its next block.
//   - Worker faults (a panic inside Tier-1, or an injected fault): the
//     pipeline's first-error latch holds a *FaultError naming the
//     partition; the coordinator conceals the single block that
//     partition was positioned on, clears the latch, and reruns — done
//     partitions exit immediately, so only remaining work repeats.
//
// Context cancellation and non-fault pipeline errors still fail the
// tile. Partitions own disjoint task ranges writing disjoint plane
// regions, so concealment never races with live decoding.
func decodeBlocksBestEffort(p *Pipeline, st obs.Stage, h *codestream.Header, bands []dwt.Band, tw, th int,
	tasks []blockTask, parts []decodePart, partCost int64, decodeOne func(blockTask) error, dmg *tileDamage) error {
	conceal := func(t int, cause string) {
		tk := tasks[t]
		pl := tk.plane
		for y := tk.y0; y < tk.y0+tk.bh; y++ {
			row := pl.Data[y*pl.Stride+tk.x0 : y*pl.Stride+tk.x0+tk.bw]
			for i := range row {
				row[i] = 0
			}
		}
		dmg.lost = append(dmg.lost, BlockLoss{
			Comp: tk.c, Band: tk.bi, GX: tk.gx, GY: tk.gy,
			Region: lostRegion(bands[tk.bi].Level, tk.gx, tk.gy, h.CBW, h.CBH, tw, th),
			Cause:  cause,
		})
	}
	// next[i] is partition i's progress cursor. Within one run only the
	// worker holding partition i advances it, and runCost's completion
	// orders every access across reruns.
	next := make([]int, len(parts))
	for i := range parts {
		next[i] = parts[i].lo
	}
	var mu sync.Mutex // serializes loss recording across workers
	// Each rerun either finishes or handles one fault, and a fault
	// demotes at most one block, so tasks+parts bounds any terminating
	// sequence; the slack absorbs faults that land on done partitions.
	for attempt := 0; attempt <= len(tasks)+len(parts)+4; attempt++ {
		p.runCost(st, 0, len(parts), partCost, func(i int) {
			for next[i] < parts[i].hi {
				t := next[i]
				if err := decodeOne(tasks[t]); err != nil {
					mu.Lock()
					conceal(t, err.Error())
					mu.Unlock()
				}
				next[i] = t + 1
			}
		})
		perr := p.Err()
		if perr == nil {
			return nil
		}
		var fe *FaultError
		if !errors.As(perr, &fe) || p.Context().Err() != nil {
			return perr // cancellation or a non-fault pipeline error
		}
		// An injected fault fires before the job body and a panic fires
		// inside it; either way the victim is the block the faulted
		// partition is positioned on.
		if j := fe.Job; j >= 0 && j < len(parts) && next[j] < parts[j].hi {
			conceal(next[j], fmt.Sprintf("contained fault in stage %s", fe.Stage))
			next[j]++
		}
		dmg.faults = append(dmg.faults, FaultRef{Stage: fe.Stage, Lane: fe.Lane, Job: fe.Job})
		p.clearFault()
	}
	// A fault storm outlasted the demotion budget: abandon the rest.
	for i := range parts {
		for ; next[i] < parts[i].hi; next[i]++ {
			conceal(next[i], "abandoned after repeated faults")
		}
	}
	p.clearFault()
	return nil
}

// blockTask is one accumulated code block awaiting Tier-1 decode.
type blockTask struct {
	acc    *blockAcc
	orient dwt.Orient
	numBPS int
	x0, y0 int
	bw, bh int
	plane  *imgmodel.Plane
	c, bi  int
	gx, gy int
}

// putPlanes recycles a tile's pooled coefficient planes. Callers only
// release after the pipeline's run calls have returned, so no worker
// still references the backing arrays.
func putPlanes(planes []*imgmodel.Plane) {
	for _, pl := range planes {
		imgmodel.PutPlane(pl)
	}
}

// reconstruct runs the full-size inverse transforms for one tile
// through the stage pipeline: dequantization, the multi-level inverse
// DWT and the fused inverse MCT + clamp drain the same work queue
// Tier-1 did, and the pooled planes are recycled as each stage finishes
// with them. Bit-identical to running dwt.Inverse53/97 and the serial
// MCT helpers per plane.
func reconstruct(p *Pipeline, h *codestream.Header, bands []dwt.Band, planes []*imgmodel.Plane, tw, th int) (*imgmodel.Image, error) {
	img := imgmodel.NewImage(tw, th, h.NComp, h.Depth)
	if h.Lossless {
		p.IDWT53(planes, h.Levels, 0)
		p.InverseMCTInt(img, planes, h)
		putPlanes(planes)
		if err := p.Err(); err != nil {
			return nil, err
		}
		return img, nil
	}
	fplanes := p.Dequantize(h, bands, planes)
	putPlanes(planes)
	p.IDWT97(fplanes, h.Levels, 0)
	p.InverseMCTFloat(img, fplanes, h)
	for _, fp := range fplanes {
		imgmodel.PutFPlane(fp)
	}
	if err := p.Err(); err != nil {
		return nil, err
	}
	return img, nil
}

// reconstructReduced inverse-transforms only the kept resolutions: the
// LL plane of the discarded levels becomes the output image.
func reconstructReduced(h *codestream.Header, bands []dwt.Band, planes []*imgmodel.Plane, tw, th, discard int) (*imgmodel.Image, error) {
	rw, rh := tw, th
	for i := 0; i < discard; i++ {
		rw, rh = (rw+1)/2, (rh+1)/2
	}
	img := imgmodel.NewImage(rw, rh, h.NComp, h.Depth)
	if h.Lossless {
		for c, p := range planes {
			// Invert levels discard..Levels-1 only, then crop the LL.
			invertUpper53(p, tw, th, h.Levels, discard)
			for y := 0; y < rh; y++ {
				copy(img.Comps[c].Row(y), p.Row(y)[:rw])
			}
		}
		inverseMCTInt(img, h)
		return img, nil
	}
	fplanes := dequantize(h, bands, planes, tw, th, discard)
	red := make([]*imgmodel.FPlane, len(fplanes))
	for c, fp := range fplanes {
		invertUpper97(fp, tw, th, h.Levels, discard)
		r := imgmodel.NewFPlane(rw, rh)
		for y := 0; y < rh; y++ {
			copy(r.Row(y), fp.Row(y)[:rw])
		}
		red[c] = r
	}
	inverseMCTFloat(img, red, h)
	return img, nil
}

// invertUpper53 undoes the coarsest levels only (levels-1 .. discard),
// leaving the top-left region holding the reduced-resolution image.
func invertUpper53(p *imgmodel.Plane, w, h, levels, discard int) {
	dwt.InverseLevels53(p.Data, w, h, p.Stride, levels, discard)
}

// invertUpper97 is the float analogue.
func invertUpper97(p *imgmodel.FPlane, w, h, levels, discard int) {
	dwt.InverseLevels97(p.Data, w, h, p.Stride, levels, discard)
}

// dequantize converts quantizer indices back to coefficients for all
// bands at resolutions surviving `discard` (others stay zero and are
// never read).
func dequantize(h *codestream.Header, bands []dwt.Band, planes []*imgmodel.Plane, w, hh int, _ ...int) []*imgmodel.FPlane {
	fplanes := make([]*imgmodel.FPlane, len(planes))
	for c, p := range planes {
		fp := imgmodel.NewFPlane(w, hh)
		for _, b := range bands {
			if b.W == 0 || b.H == 0 {
				continue
			}
			delta := float32(quant.StepFor(h.BaseDelta, h.Levels, b.Orient, b.Level))
			for y := b.Y0; y < b.Y0+b.H; y++ {
				quant.DequantizeRow(fp.Data[y*fp.Stride+b.X0:][:b.W], p.Data[y*p.Stride+b.X0:][:b.W], delta)
			}
		}
		fplanes[c] = fp
	}
	return fplanes
}

// inverseMCTInt finishes the reversible path: inverse RCT or unshift.
func inverseMCTInt(img *imgmodel.Image, h *codestream.Header) {
	for y := 0; y < img.H; y++ {
		if h.UseMCT && h.NComp == 3 {
			mct.InverseRCTRow(img.Comps[0].Row(y), img.Comps[1].Row(y), img.Comps[2].Row(y), h.Depth)
		} else {
			for c := range img.Comps {
				mct.UnshiftRow(img.Comps[c].Row(y), h.Depth)
			}
		}
	}
	clampImage(img, h.Depth)
}

// inverseMCTFloat finishes the irreversible path: inverse ICT (or
// unshift), rounding and clamping.
func inverseMCTFloat(img *imgmodel.Image, fplanes []*imgmodel.FPlane, h *codestream.Header) {
	off := float32(int32(1) << (h.Depth - 1))
	for y := 0; y < img.H; y++ {
		if h.UseMCT && h.NComp == 3 {
			mct.InverseICTRow(fplanes[0].Row(y), fplanes[1].Row(y), fplanes[2].Row(y),
				img.Comps[0].Row(y), img.Comps[1].Row(y), img.Comps[2].Row(y), h.Depth)
		} else {
			for c := range img.Comps {
				src, dst := fplanes[c].Row(y), img.Comps[c].Row(y)
				for i := range src {
					v := src[i] + off
					if v >= 0 {
						dst[i] = int32(v + 0.5)
					} else {
						dst[i] = -int32(-v + 0.5)
					}
				}
			}
		}
	}
	clampImage(img, h.Depth)
}

func clampImage(img *imgmodel.Image, depth int) {
	maxv := int32(1)<<depth - 1
	for _, p := range img.Comps {
		for y := 0; y < p.H; y++ {
			row := p.Row(y)
			for i, v := range row {
				if v < 0 {
					row[i] = 0
				} else if v > maxv {
					row[i] = maxv
				}
			}
		}
	}
}
