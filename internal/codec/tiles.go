package codec

import (
	"context"
	"fmt"
	"time"

	"j2kcell/internal/codestream"
	"j2kcell/internal/imgmodel"
	"j2kcell/internal/obs"
	"j2kcell/internal/rate"
	"j2kcell/internal/t1"
)

// Rect is one tile's placement within the image.
type Rect struct {
	X0, Y0, W, H int
}

// TileGrid returns the tile rectangles in raster order for an image
// split into tw×th tiles anchored at the origin (edge tiles shrink).
func TileGrid(w, h, tw, th int) []Rect {
	var out []Rect
	for y := 0; y < h; y += th {
		hh := th
		if y+hh > h {
			hh = h - y
		}
		for x := 0; x < w; x += tw {
			ww := tw
			if x+ww > w {
				ww = w - x
			}
			out = append(out, Rect{X0: x, Y0: y, W: ww, H: hh})
		}
	}
	return out
}

// tileCoded is one tile's Tier-1 output awaiting global rate control.
type tileCoded struct {
	rect   Rect
	img    *imgmodel.Image
	jobs   []BlockJob
	blocks []*t1.Block
	rd     []rate.BlockRD // ladders + hulls, rate-constrained encodes only
}

// EncodeTiled compresses img as a multi-tile codestream: each tile is
// transformed and Tier-1 coded independently (optionally across a
// worker pool), PCRD allocates the byte budget globally across every
// tile's blocks, and each tile's packets form its own tile-part.
func EncodeTiled(img *imgmodel.Image, opt Options, workers int) (*Result, error) {
	return EncodeTiledContext(context.Background(), img, opt, workers)
}

// EncodeTiledContext is EncodeTiled bound to a context. Cancellation
// stops the tile queue between tiles (and inside each tile's transform
// stages, which share the same context), worker panics are contained
// into *FaultError, and every tile's pooled planes are released on
// both paths.
func EncodeTiledContext(ctx context.Context, img *imgmodel.Image, opt Options, workers int) (res *Result, err error) {
	rec := obs.Current(ctx)
	// SLO envelope; registered before containAPIFault (LIFO) so a
	// contained panic is already an error when it observes the outcome.
	var start time.Time
	if rec != nil {
		start = time.Now()
	}
	defer func() {
		if rec == nil {
			return
		}
		if err != nil {
			rec.OpFailed()
			return
		}
		rec.OpDone(obs.ClassOf(false, !opt.Lossless, true, opt.HT), time.Since(start))
	}()
	defer containAPIFault(rec, "tile", &err)
	if err := validateImage(img); err != nil {
		return nil, err
	}
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
	}
	opt = opt.WithDefaults(img.W, img.H)
	if opt.TileW <= 0 || opt.TileH <= 0 {
		return nil, fmt.Errorf("codec: EncodeTiled needs positive tile dimensions")
	}
	ncomp := len(img.Comps)
	mode := opt.Mode()
	rates := opt.layerRates()
	constrained := !opt.Lossless && rates != nil
	grid := TileGrid(img.W, img.H, opt.TileW, opt.TileH)
	tiles := make([]*tileCoded, len(grid))

	// Admission control (DESIGN.md §12): one slot per operation,
	// held across the tile queue and the sequential finish.
	release, aerr := admitOp(ctx, workers, rec)
	if aerr != nil {
		return nil, aerr
	}
	defer release()

	// Whole-encode envelope span (coordinator lane), as in
	// EncodeParallel; the same lane carries the sequential finish spans.
	ln := rec.Acquire()
	total := ln.Begin(obs.StageEncode, 0, 0)
	defer ln.Release()
	defer total.End()
	warmGains(opt, rec)

	// Transform and Tier-1 code every tile through the shared work
	// queue (tiles are fully independent), recycling each tile's
	// coefficient planes once its blocks are coded. Rate-constrained
	// encodes also build each block's R-D ladder and convex hull here,
	// inside the parallel stage.
	p := NewPipelineContext(ctx, workers)
	defer p.Close()
	p.run(obs.StageTile, 0, len(grid), func(i int) {
		r := grid[i]
		sub := img.SubImage(r.X0, r.Y0, r.W, r.H)
		// The per-tile transform runs inline on a single-worker inner
		// pipeline bound to the same context, so its stage faults and
		// cancellation propagate to the tile queue's latch.
		planes, terr := ForwardTransformPipeline(NewPipelineContext(p.Context(), 1), sub, opt)
		if terr != nil {
			p.Fail(terr)
			return
		}
		_, jobs := PlanBlocks(r.W, r.H, ncomp, opt)
		blocks := make([]*t1.Block, len(jobs))
		var rd []rate.BlockRD
		if constrained {
			rd = make([]rate.BlockRD, len(jobs))
		}
		// The tile job is an envelope span; the Tier-1 block loop gets
		// its own lane and span so the per-stage breakdown still sees
		// tiled Tier-1 time (the transform stages are covered by the
		// inner pipeline's own spans inside ForwardTransform).
		tln := rec.Acquire()
		sp := tln.Begin(tier1Stage(mode), 0, int32(i))
		for bi, j := range jobs {
			p := planes[j.Comp]
			blocks[bi] = t1.EncodeObs(rec, p.Data[j.Y0*p.Stride+j.X0:], j.W, j.H, p.Stride,
				j.Band.Orient, mode, j.Gain)
			if constrained {
				rd[bi] = LadderOf(blocks[bi])
				rd[bi].ComputeHullObs(rec)
			}
		}
		sp.End()
		tln.Release()
		for _, p := range planes {
			imgmodel.PutPlane(p)
		}
		tiles[i] = &tileCoded{rect: r, img: sub, jobs: jobs, blocks: blocks, rd: rd}
	})
	// A contained fault or cancellation leaves some tiles nil; surface
	// the first error before the merge would dereference them.
	if perr := p.Err(); perr != nil {
		return nil, perr
	}

	// Global M_b and global rate allocation across all tiles' blocks.
	nbands := 3*opt.Levels + 1
	var mb [][]int
	var allBlocks []*t1.Block
	var allJobs []BlockJob
	var allRD []rate.BlockRD
	bounds := make([]int, 0, len(tiles)+1)
	for _, t := range tiles {
		bounds = append(bounds, len(allBlocks))
		mb = MergeMb(mb, ComputeMb(ncomp, nbands, t.jobs, t.blocks))
		allBlocks = append(allBlocks, t.blocks...)
		allJobs = append(allJobs, t.jobs...)
		allRD = append(allRD, t.rd...)
	}
	bounds = append(bounds, len(allBlocks))
	build := func(keeps [][]int) ([]byte, int) {
		sp := ln.Begin(obs.StageT2, 0, 0)
		bodies := make([][]byte, len(tiles))
		bodyTotal := 0
		for i, t := range tiles {
			lo, hi := bounds[i], bounds[i+1]
			tileKeeps := make([][]int, len(keeps))
			for l := range keeps {
				tileKeeps[l] = keeps[l][lo:hi]
			}
			bodies[i], _ = AssemblePackets(t.rect.W, t.rect.H, ncomp, opt, t.jobs, t.blocks, tileKeeps, mb)
			bodyTotal += len(bodies[i])
		}
		head := &codestream.Header{
			W: img.W, H: img.H, NComp: ncomp, Depth: img.Depth,
			Levels: opt.Levels, CBW: opt.CBW, CBH: opt.CBH,
			TileW: opt.TileW, TileH: opt.TileH,
			Layers: len(keeps), Progression: int(opt.Progression),
			SOPMarkers: opt.Resilience,
			Lossless:   opt.Lossless, UseMCT: ncomp == 3,
			TermAll: mode.Base() == t1.ModeTermAll, SegSym: mode.SegSym(),
			HT: opt.HT, BaseDelta: opt.BaseDelta, Mb: mb,
		}
		sp.End()
		sp = ln.Begin(obs.StageFrame, 0, 0)
		data := codestream.EncodeTiles(head, bodies)
		sp.End()
		return data, bodyTotal
	}

	keeps := [][]int{FullKeep(allBlocks)}
	if constrained {
		sp := ln.Begin(obs.StageRate, 0, 0)
		keeps = allocateLayersRD(rec, allRD, img, opt, rates, 0, workers)
		sp.End()
	}
	data, bodyTotal := build(keeps)
	if constrained {
		target := int(rates[len(rates)-1] * float64(img.W*img.H*ncomp*img.Depth/8))
		retry := int32(1)
		for extra := 16; len(data) > target && extra < target; extra *= 2 {
			sp := ln.Begin(obs.StageRate, 0, retry)
			keeps = allocateLayersRD(rec, allRD, img, opt, rates, len(data)-target+extra, workers)
			sp.End()
			retry++
			data, bodyTotal = build(keeps)
		}
	}

	keep := keeps[len(keeps)-1]
	res = &Result{Data: data, Jobs: allJobs, Blocks: allBlocks, Keep: keep, LayerKeep: keeps}
	res.Stats = buildStats(img, allJobs, allBlocks, keep, len(data)-bodyTotal, bodyTotal)
	return res, nil
}

// decodeTiled reassembles a multi-tile stream. Tiles are fully
// independent and write disjoint regions of the output image, so they
// drain the same atomic work queue the tiled encoder uses (each tile's
// own stages then run inline on a single-worker inner pipeline, as on
// the encode side). Context errors and contained faults pass through
// unwrapped via the queue's fault latch; per-tile parse failures gain
// the tile index, earliest tile first.
func decodeTiled(ctx context.Context, h *codestream.Header, bodies [][]byte, dopt DecodeOptions) (*imgmodel.Image, error) {
	grid := TileGrid(h.W, h.H, h.TileW, h.TileH)
	if len(bodies) != len(grid) {
		return nil, fmt.Errorf("codec: %d tile parts for a %d-tile grid", len(bodies), len(grid))
	}
	discard := dopt.DiscardLevels
	if discard < 0 {
		discard = 0
	}
	if discard > h.Levels {
		discard = h.Levels
	}
	scale := 1 << uint(discard)
	if discard > 0 && (h.TileW%scale != 0 || h.TileH%scale != 0) {
		return nil, fmt.Errorf("codec: reduced decode of tiled stream needs tile size divisible by 2^%d", discard)
	}
	p := NewPipelineContext(ctx, dopt.Workers)
	defer p.Close()
	td := dopt
	td.Workers = 1 // tiles are the parallel unit; inner stages run inline
	terrs := make([]error, len(grid))
	firstTileErr := func() error {
		for i, err := range terrs {
			if err != nil {
				return formatErrf(err, "tile %d", i)
			}
		}
		return nil
	}
	if dopt.regionSet() {
		// Window decode: only tiles intersecting the region are decoded
		// at all; each contributes its cropped overlap.
		reg := dopt.Region
		out := imgmodel.NewImage(reg.W, reg.H, h.NComp, h.Depth)
		p.run(obs.StageTile, 0, len(grid), func(i int) {
			r := grid[i]
			tileRect := Rect{X0: r.X0, Y0: r.Y0, W: r.W, H: r.H}
			if !rectsIntersect(tileRect, reg) {
				return
			}
			lo := Rect{ // overlap in tile-local coordinates
				X0: maxI(reg.X0-r.X0, 0),
				Y0: maxI(reg.Y0-r.Y0, 0),
			}
			lo.W = minI(reg.X0+reg.W, r.X0+r.W) - (r.X0 + lo.X0)
			lo.H = minI(reg.Y0+reg.H, r.Y0+r.H) - (r.Y0 + lo.Y0)
			tdi := td
			tdi.Region = lo
			tile, err := decodeTile(p.Context(), h, r.W, r.H, bodies[i], tdi, nil)
			if err != nil {
				if passthrough(err) {
					p.Fail(err)
				} else {
					terrs[i] = err
				}
				return
			}
			crop := tile.SubImage(lo.X0, lo.Y0, lo.W, lo.H)
			out.Insert(crop, r.X0+lo.X0-reg.X0, r.Y0+lo.Y0-reg.Y0)
		})
		if perr := p.Err(); perr != nil {
			return nil, perr
		}
		if err := firstTileErr(); err != nil {
			return nil, err
		}
		return out, nil
	}
	rw := (h.W + scale - 1) / scale
	rh := (h.H + scale - 1) / scale
	out := imgmodel.NewImage(rw, rh, h.NComp, h.Depth)
	p.run(obs.StageTile, 0, len(grid), func(i int) {
		r := grid[i]
		tile, err := decodeTile(p.Context(), h, r.W, r.H, bodies[i], td, nil)
		if err != nil {
			if passthrough(err) {
				p.Fail(err)
			} else {
				terrs[i] = err
			}
			return
		}
		out.Insert(tile, r.X0/scale, r.Y0/scale)
	})
	if perr := p.Err(); perr != nil {
		return nil, perr
	}
	if err := firstTileErr(); err != nil {
		return nil, err
	}
	return out, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
