// Shared process-wide worker pool with per-operation lanes, fair
// scheduling, and admission control (DESIGN.md §12).
//
// The paper keeps a fixed set of hardware workers (the SPEs) saturated
// by one global work queue; the per-call Pipeline honors that *within*
// one operation but not across operations — every concurrent encode or
// decode used to spin up its own `workers` goroutines, so a server
// running c operations oversubscribed GOMAXPROCS with c×workers
// goroutines. The Scheduler restores the paper's shape process-wide:
// one pool of ~GOMAXPROCS workers multiplexes the job streams (lanes)
// of all in-flight operations.
//
// Key invariants:
//
//   - Byte identity: a lane's stage is the same atomically-claimed job
//     queue run() always used; only the identity of the goroutines
//     draining it changes. Stage barriers and job bodies are untouched,
//     so per-operation output is byte-identical to the per-call path at
//     every pool width (DESIGN.md §5, extended pool-wide in §12).
//   - No cross-op stalls: pool workers never block on a lane. A
//     canceled or faulted operation flips its own pipeline's stop latch;
//     its remaining claims drain to no-ops and its stage closes, while
//     sibling lanes keep being served.
//   - Liveness without the pool: the goroutine that submits a stage
//     also drains it, so every operation always has at least one
//     dedicated executor even when pool workers are busy elsewhere, and
//     the pool can never deadlock an operation.
//   - Bounded goroutines: pool workers spawn when the first lane opens
//     and exit when the last lane closes, so an idle process holds zero
//     scheduler goroutines (the fault-matrix leak pins stay valid).
package codec

import (
	"context"
	"errors"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"j2kcell/internal/obs"
)

// ErrOverloaded is returned by the encode/decode entry points when the
// shared scheduler's admission queue is full: the process already runs
// MaxActive operations and MaxQueue more are waiting. The operation was
// not started; callers should shed load or retry with backoff.
var ErrOverloaded = errors.New("codec: scheduler overloaded: admission queue full")

// schedCtxKey carries an explicit scheduler binding on a context. The
// stored value may be a nil *Scheduler, which means "per-call pools" —
// distinct from an absent key, which means "use the process default".
type schedCtxKey struct{}

// WithScheduler binds every operation started under ctx to s. Passing
// nil selects per-call worker pools (the pre-scheduler behavior).
func WithScheduler(ctx context.Context, s *Scheduler) context.Context {
	return context.WithValue(ctx, schedCtxKey{}, s)
}

// WithPerCallPool opts operations under ctx out of the shared
// scheduler: each pipeline spawns its own worker goroutines, as before
// the shared pool existed. Benchmarks use it to A/B the two modes.
func WithPerCallPool(ctx context.Context) context.Context {
	return WithScheduler(ctx, nil)
}

// schedulerFor resolves the scheduler for an operation: an explicit
// context binding wins (possibly nil = per-call), otherwise the process
// default unless J2K_PERCALL=1. Single-worker pipelines never touch
// the scheduler — their stages run inline.
func schedulerFor(ctx context.Context, workers int) *Scheduler {
	if workers <= 1 || ctx == nil {
		return nil
	}
	if v, ok := ctx.Value(schedCtxKey{}).(*Scheduler); ok {
		return v
	}
	if perCallEnv {
		return nil
	}
	return DefaultScheduler()
}

// SchedPolicy selects how pool workers pick the next lane to serve.
type SchedPolicy int

const (
	// SchedRoundRobin rotates over runnable lanes, one claim batch per
	// visit — every lane gets pool capacity in turn regardless of size.
	SchedRoundRobin SchedPolicy = iota
	// SchedWeighted prefers the runnable lane with the least modeled
	// remaining work (shortest-remaining-first over the PR 6/PR 7 decode
	// cost model, job count where no model applies), which bounds small
	// operations' latency under a heavy mix.
	SchedWeighted
)

// SchedConfig configures a Scheduler. Zero fields take defaults:
// Workers = GOMAXPROCS, MaxActive = 8×Workers (min 8), MaxQueue =
// 4×MaxActive.
type SchedConfig struct {
	Workers   int         // pool width (goroutines when any lane is open)
	MaxActive int         // operations admitted concurrently
	MaxQueue  int         // operations waiting for admission before ErrOverloaded
	Policy    SchedPolicy // lane-selection policy for pool workers
}

// Scheduler is a process-wide pool of workers multiplexing the job
// streams of many concurrent operations. Operations enter through
// Admit (bounded queue, backpressure), open a lane per pipeline, and
// submit each stage to the pool; the submitting goroutine always helps
// drain its own stage, so the pool is shared extra capacity, never a
// dependency.
type Scheduler struct {
	width     int
	maxActive int
	maxQueue  int
	policy    SchedPolicy

	mu      sync.Mutex
	cond    *sync.Cond // pool workers wait here for runnable lanes
	lanes   []*schedLane
	rr      int // round-robin cursor over lanes
	spawned int // live pool workers

	active int            // admitted operations
	queue  []*admitWaiter // FIFO admission queue

	// Monotone counters and gauges for /metrics and Stats.
	lanesOpened  atomic.Int64
	laneSwitches atomic.Int64 // pool worker moved to a different lane
	poolClaims   atomic.Int64
	admitWaits   atomic.Int64
	admitRejects atomic.Int64
}

// NewScheduler builds a Scheduler from cfg (zero fields take the
// documented defaults). The pool spawns no goroutines until a lane
// opens.
func NewScheduler(cfg SchedConfig) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 8 * cfg.Workers
		if cfg.MaxActive < 8 {
			cfg.MaxActive = 8
		}
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxActive
	}
	s := &Scheduler{
		width:     cfg.Workers,
		maxActive: cfg.MaxActive,
		maxQueue:  cfg.MaxQueue,
		policy:    cfg.Policy,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

var (
	defaultSchedOnce sync.Once
	defaultSched     *Scheduler
	// J2K_PERCALL=1 restores the pre-scheduler behavior (each operation
	// spawns its own worker goroutines) process-wide; J2K_SCHED=weighted
	// flips the default pool to shortest-remaining-work lane selection.
	perCallEnv  = os.Getenv("J2K_PERCALL") == "1"
	weightedEnv = os.Getenv("J2K_SCHED") == "weighted"
)

// DefaultScheduler returns the process-wide shared scheduler,
// constructing it (and registering its /metrics gauges) on first use.
func DefaultScheduler() *Scheduler {
	defaultSchedOnce.Do(func() {
		pol := SchedRoundRobin
		if weightedEnv {
			pol = SchedWeighted
		}
		defaultSched = NewScheduler(SchedConfig{Policy: pol})
		defaultSched.registerMetrics()
	})
	return defaultSched
}

// registerMetrics exposes the scheduler's gauges and counters through
// the obs exposition (obs.RegisterMetrics dedupes by name, so only the
// first scheduler to register — the process default — is exported).
func (s *Scheduler) registerMetrics() {
	obs.RegisterMetrics(
		obs.ExternalMetric{Name: "j2k_scheduler_workers", Help: "Live shared-pool worker goroutines.", Type: "gauge",
			Read: func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return int64(s.spawned) }},
		obs.ExternalMetric{Name: "j2k_scheduler_lanes_open", Help: "Operation lanes currently open on the shared pool.", Type: "gauge",
			Read: func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return int64(len(s.lanes)) }},
		obs.ExternalMetric{Name: "j2k_scheduler_active_ops", Help: "Operations admitted and running.", Type: "gauge",
			Read: func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return int64(s.active) }},
		obs.ExternalMetric{Name: "j2k_scheduler_queue_depth", Help: "Operations waiting in the admission queue.", Type: "gauge",
			Read: func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return int64(len(s.queue)) }},
		obs.ExternalMetric{Name: "j2k_scheduler_lanes_opened_total", Help: "Lanes opened on the shared pool.", Type: "counter",
			Read: s.lanesOpened.Load},
		obs.ExternalMetric{Name: "j2k_scheduler_lane_switches_total", Help: "Pool worker moves between lanes (fairness rotations).", Type: "counter",
			Read: s.laneSwitches.Load},
		obs.ExternalMetric{Name: "j2k_scheduler_pool_claims_total", Help: "Jobs claimed by shared-pool workers across all lanes.", Type: "counter",
			Read: s.poolClaims.Load},
		obs.ExternalMetric{Name: "j2k_scheduler_admit_waits_total", Help: "Operations that waited in the admission queue.", Type: "counter",
			Read: s.admitWaits.Load},
		obs.ExternalMetric{Name: "j2k_scheduler_admit_rejects_total", Help: "Operations rejected with ErrOverloaded.", Type: "counter",
			Read: s.admitRejects.Load},
	)
}

// SchedStats is a snapshot of scheduler state for tests, the Amdahl
// report, and the j2kload summary line.
type SchedStats struct {
	Workers      int // configured pool width
	WorkersLive  int // pool goroutines currently running
	LanesOpen    int
	ActiveOps    int
	QueueDepth   int
	LanesOpened  int64
	LaneSwitches int64
	PoolClaims   int64
	AdmitWaits   int64
	AdmitRejects int64
}

// Stats returns a consistent snapshot of the scheduler's state.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	st := SchedStats{
		Workers:     s.width,
		WorkersLive: s.spawned,
		LanesOpen:   len(s.lanes),
		ActiveOps:   s.active,
		QueueDepth:  len(s.queue),
	}
	s.mu.Unlock()
	st.LanesOpened = s.lanesOpened.Load()
	st.LaneSwitches = s.laneSwitches.Load()
	st.PoolClaims = s.poolClaims.Load()
	st.AdmitWaits = s.admitWaits.Load()
	st.AdmitRejects = s.admitRejects.Load()
	return st
}

// ---------------------------------------------------------------------------
// Admission control

// admitWaiter is one operation parked in the admission queue. granted
// and canceled are guarded by the scheduler mutex and resolve the race
// between a slot handoff and a context cancellation: whichever side
// commits first under the lock wins, and a slot granted to an already-
// canceled waiter is passed on to the next one.
type admitWaiter struct {
	ch       chan struct{}
	granted  bool
	canceled bool
}

// Admit reserves an operation slot, blocking in a bounded FIFO queue
// when MaxActive operations are already running. It returns a release
// func the operation must call exactly once when it finishes (the
// entry points defer it). When the queue is full it fails fast with
// ErrOverloaded; when ctx is canceled while queued it returns ctx.Err().
// Queue wait is recorded as an "admit" stage span on the operation's
// recorder, so it lands in the per-op SLO histograms and the Amdahl
// report's serial window.
func (s *Scheduler) Admit(ctx context.Context, rec *obs.Recorder) (release func(), err error) {
	s.mu.Lock()
	if s.active < s.maxActive {
		s.active++
		s.mu.Unlock()
		return s.release, nil
	}
	if len(s.queue) >= s.maxQueue {
		s.mu.Unlock()
		s.admitRejects.Add(1)
		return nil, ErrOverloaded
	}
	w := &admitWaiter{ch: make(chan struct{})}
	s.queue = append(s.queue, w)
	s.mu.Unlock()

	s.admitWaits.Add(1)
	rec.Add(obs.CtrSchedAdmitWaits, 1)
	ln := rec.Acquire()
	sp := ln.Begin(obs.StageAdmit, 0, 0)
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-w.ch:
		sp.End()
		ln.Release()
		return s.release, nil
	case <-done:
		sp.End()
		ln.Release()
		s.mu.Lock()
		if w.granted {
			// The slot was handed over concurrently with cancellation;
			// give it back so the count stays balanced.
			s.mu.Unlock()
			s.release()
		} else {
			w.canceled = true
			// Splice the entry out eagerly so it stops holding queue
			// capacity against later arrivals.
			for i, q := range s.queue {
				if q == w {
					s.queue = append(s.queue[:i], s.queue[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
		}
		return nil, ctx.Err()
	}
}

// admitOp is the entry-point admission hook: resolve the operation's
// scheduler and reserve a slot on it. Operations without a scheduler
// (single worker, per-call mode) pass through untouched with a no-op
// release. The returned release must be called exactly once.
func admitOp(ctx context.Context, workers int, rec *obs.Recorder) (release func(), err error) {
	s := schedulerFor(ctx, workers)
	if s == nil {
		return func() {}, nil
	}
	return s.Admit(ctx, rec)
}

// release returns an operation slot, handing it to the first
// still-waiting queued operation if any.
func (s *Scheduler) release() {
	s.mu.Lock()
	for len(s.queue) > 0 {
		w := s.queue[0]
		s.queue = s.queue[1:]
		if w.canceled {
			continue
		}
		w.granted = true
		close(w.ch)
		s.mu.Unlock()
		return
	}
	s.active--
	s.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Lanes and stage runs

// schedLane is one operation's job stream on the pool. cur points at
// the stage currently submitted (nil between stages); it is guarded by
// the scheduler mutex. remaining is the modeled work left in the
// current stage, read lock-free by the weighted policy.
type schedLane struct {
	sch       *Scheduler
	cur       *stageRun // guarded by sch.mu
	remaining atomic.Int64
}

// openLane registers a new lane and makes sure the pool is at width
// (workers spawn lazily and exit when the last lane closes).
func (s *Scheduler) openLane() *schedLane {
	ln := &schedLane{sch: s}
	s.mu.Lock()
	s.lanes = append(s.lanes, ln)
	for s.spawned < s.width {
		s.spawned++
		go s.worker()
	}
	s.mu.Unlock()
	s.lanesOpened.Add(1)
	return ln
}

// closeLane removes the lane; when it was the last one the pool
// workers observe zero lanes and exit.
func (s *Scheduler) closeLane(ln *schedLane) {
	s.mu.Lock()
	for i, l := range s.lanes {
		if l == ln {
			s.lanes = append(s.lanes[:i], s.lanes[i+1:]...)
			break
		}
	}
	if s.rr >= len(s.lanes) {
		s.rr = 0
	}
	s.mu.Unlock()
	s.cond.Broadcast() // wake workers so they can exit or rebalance
}

// submit publishes sr as the lane's current stage and wakes the pool.
func (ln *schedLane) submit(sr *stageRun) {
	ln.remaining.Store(sr.cost)
	ln.sch.mu.Lock()
	ln.cur = sr
	ln.sch.mu.Unlock()
	ln.sch.cond.Broadcast()
}

// retire clears the lane's current stage if it is still sr (a pool
// worker may have observed exhaustion and cleared it already).
func (ln *schedLane) retire(sr *stageRun) {
	ln.sch.mu.Lock()
	if ln.cur == sr {
		ln.cur = nil
	}
	ln.sch.mu.Unlock()
}

// stageRun is one submitted stage: the same atomically-claimed job
// queue Pipeline.run always drained, packaged so that pool workers can
// share the drain. All claim/finish/close accounting lives in one
// packed atomic word so that "stage drained" (fin closes) can never
// race a late claim:
//
//	bits 0..30  claimed — jobs handed out
//	bit  31     closed  — pipeline stopped; no further claims succeed
//	bits 32..62 finished — jobs whose bodies returned
//
// fin closes exactly when no more claims can succeed AND every claimed
// job has finished; the submitter blocks on fin, preserving the stage
// barrier (and the safety of recycling pooled buffers after run).
type stageRun struct {
	p    *Pipeline
	st   obs.Stage
	arg  int32
	n    int64 // total jobs
	fn   func(int)
	cost int64 // modeled total stage work (job count when unmodeled)
	per  int64 // modeled work per job (cost / n, min 1)

	state   atomic.Int64
	running atomic.Int32 // pool executors inside fn (capped at p.workers-1)
	cap     int32
	finOnce sync.Once
	fin     chan struct{}
}

const (
	srClaimedMask = int64(1)<<31 - 1
	srClosedBit   = int64(1) << 31
	srFinShift    = 32
)

func newStageRun(p *Pipeline, st obs.Stage, arg int32, n int, cost int64, fn func(int)) *stageRun {
	if cost < int64(n) {
		cost = int64(n)
	}
	per := cost / int64(n)
	if per < 1 {
		per = 1
	}
	poolCap := int32(p.workers - 1)
	if int64(poolCap) > int64(n) {
		poolCap = int32(n)
	}
	return &stageRun{
		p: p, st: st, arg: arg, n: int64(n), fn: fn,
		cost: cost, per: per, cap: poolCap,
		fin: make(chan struct{}),
	}
}

// tryClaim hands out the next job index, or fails permanently when the
// stage is exhausted (all jobs claimed) or the pipeline stopped (the
// closed bit is set under the same CAS word, so no claim can succeed
// after a drain-completion was signaled).
func (sr *stageRun) tryClaim() (int, bool) {
	for {
		s := sr.state.Load()
		claimed := s & srClaimedMask
		if s&srClosedBit != 0 || claimed >= sr.n {
			return 0, false
		}
		if sr.p.stopped() {
			if sr.state.CompareAndSwap(s, s|srClosedBit) {
				sr.checkDrained()
				return 0, false
			}
			continue
		}
		if sr.state.CompareAndSwap(s, s+1) {
			return int(claimed), true
		}
	}
}

// finishJob marks one claimed job complete and closes fin when the
// stage has fully drained.
func (sr *stageRun) finishJob() {
	s := sr.state.Add(1 << srFinShift)
	sr.maybeClose(s)
}

// checkDrained re-evaluates drain completion from the current state —
// needed when the closed bit is set with zero jobs in flight, where no
// finishJob will run afterwards.
func (sr *stageRun) checkDrained() { sr.maybeClose(sr.state.Load()) }

func (sr *stageRun) maybeClose(s int64) {
	claimed := s & srClaimedMask
	if (s&srClosedBit != 0 || claimed >= sr.n) && s>>srFinShift == claimed {
		sr.finOnce.Do(func() { close(sr.fin) })
	}
}

// exhausted reports that no future claim on sr can succeed.
func (sr *stageRun) exhausted() bool {
	s := sr.state.Load()
	return s&srClosedBit != 0 || s&srClaimedMask >= sr.n
}

// poolClaim is tryClaim under the pool-concurrency cap (workers-1 pool
// executors, so an operation never exceeds its configured width even
// counting its own submitting goroutine). retire=true means the stage
// can never yield again and the worker should drop it from the lane.
func (sr *stageRun) poolClaim() (i int, ok, retire bool) {
	for {
		r := sr.running.Load()
		if r >= sr.cap {
			return 0, false, sr.exhausted()
		}
		if sr.running.CompareAndSwap(r, r+1) {
			break
		}
	}
	i, ok = sr.tryClaim()
	if !ok {
		sr.running.Add(-1)
		return 0, false, true
	}
	return i, true, false
}

// ---------------------------------------------------------------------------
// Pool workers

// worker is one pool goroutine: pick a runnable lane under the policy,
// execute one job from it, repeat; sleep when nothing is runnable, exit
// when no lanes are open. Workers never block on a lane's jobs — a
// stopped pipeline drains by failed claims — so one operation's fault
// or cancellation cannot wedge the pool.
func (s *Scheduler) worker() {
	var last *schedLane
	for {
		s.mu.Lock()
		for {
			if len(s.lanes) == 0 {
				s.spawned--
				s.mu.Unlock()
				return
			}
			ln, sr := s.pick()
			if sr != nil {
				s.mu.Unlock()
				if ln != last {
					if last != nil {
						s.laneSwitches.Add(1)
					}
					last = ln
				}
				s.exec(ln, sr)
				break
			}
			s.cond.Wait()
		}
	}
}

// pick selects the next runnable (lane, stage) under s.policy. Called
// with s.mu held. Lanes whose stage is exhausted are cleaned up in
// passing. Returns (nil, nil) when nothing is runnable.
func (s *Scheduler) pick() (*schedLane, *stageRun) {
	n := len(s.lanes)
	if n == 0 {
		return nil, nil
	}
	if s.policy == SchedWeighted {
		var best *schedLane
		var bestRem int64
		for _, ln := range s.lanes {
			sr := ln.cur
			if sr == nil {
				continue
			}
			if sr.exhausted() || sr.running.Load() >= sr.cap {
				if sr.exhausted() {
					ln.cur = nil
				}
				continue
			}
			rem := ln.remaining.Load()
			if best == nil || rem < bestRem {
				best, bestRem = ln, rem
			}
		}
		if best != nil {
			return best, best.cur
		}
		return nil, nil
	}
	// Round-robin: resume after the last served lane so pool capacity
	// rotates over all runnable lanes.
	for k := 0; k < n; k++ {
		idx := (s.rr + k) % n
		ln := s.lanes[idx]
		sr := ln.cur
		if sr == nil {
			continue
		}
		if sr.exhausted() {
			ln.cur = nil
			continue
		}
		if sr.running.Load() >= sr.cap {
			continue
		}
		s.rr = (idx + 1) % n
		return ln, sr
	}
	return nil, nil
}

// execLane maps an observability lane to the worker-lane coordinate
// carried by FaultError: the obs lane id when a recorder is attached,
// 0 otherwise (a nil lane reports -1, which would read as "missing").
func execLane(l *obs.Lane) int {
	if id := l.ID(); id >= 0 {
		return id
	}
	return 0
}

// exec claims and runs one job from sr on behalf of ln's operation.
// Spans and counters go to the operation's own recorder (sr.p.rec), so
// per-op attribution survives cross-lane execution.
func (s *Scheduler) exec(ln *schedLane, sr *stageRun) {
	i, ok, _ := sr.poolClaim()
	if !ok {
		return
	}
	s.poolClaims.Add(1)
	rec := sr.p.rec
	rec.Add(obs.CtrSchedPoolClaims, 1)
	ol := rec.Acquire()
	ol.Claim()
	sp := ol.Begin(sr.st, sr.arg, int32(i))
	sr.p.job(sr.st, sr.arg, execLane(ol), i, sr.fn)
	sp.End()
	ol.Release()
	ln.remaining.Add(-sr.per)
	sr.running.Add(-1)
	sr.finishJob()
	// Freeing the concurrency slot may make this stage runnable for a
	// sleeping sibling worker.
	if !sr.exhausted() {
		s.cond.Signal()
	}
}

// runShared drains one stage through the shared pool: publish it on the
// operation's lane, then have the submitting goroutine claim jobs like
// any worker until the queue is empty, and finally wait for in-flight
// pool jobs to finish (the stage barrier). The claim loop, job wrapper,
// and stop semantics are identical to the per-call path.
func (p *Pipeline) runShared(st obs.Stage, arg int32, n int, cost int64, fn func(int)) error {
	sr := newStageRun(p, st, arg, n, cost, fn)
	p.lane.submit(sr)
	rec := p.rec
	ln := rec.Acquire()
	for {
		i, ok := sr.tryClaim()
		if !ok {
			break
		}
		rec.Add(obs.CtrSchedSelfClaims, 1)
		ln.Claim()
		sp := ln.Begin(st, arg, int32(i))
		p.job(st, arg, execLane(ln), i, fn)
		sp.End()
		p.lane.remaining.Add(-sr.per)
		sr.finishJob()
	}
	ln.Release()
	sr.checkDrained()
	<-sr.fin
	p.lane.retire(sr)
	return p.Err()
}
