package codec

import (
	"j2kcell/internal/codestream"
	"j2kcell/internal/decomp"
	"j2kcell/internal/dwt"
	"j2kcell/internal/imgmodel"
	"j2kcell/internal/mct"
	"j2kcell/internal/obs"
	"j2kcell/internal/quant"
	"j2kcell/internal/t1"
)

// Decode-side pipeline stages. The inverse chain mirrors the encoder's
// stage decomposition through the same atomic work queue:
//
//	plane zeroing              — row stripes (pooled planes arrive dirty)
//	Tier-1 block decode        — dynamically-sized partitions of the
//	                             block list (see partitionDecodeTasks)
//	dequantization             — one job per (component × band)
//	multi-level inverse DWT    — horizontal: row stripes; vertical:
//	                             cache-line column groups; barrier per
//	                             phase and per level, levels walked
//	                             finest-last (the reverse of DWT53/97)
//	inverse MCT + clamp        — row stripes, fused with the plane→image
//	                             copy on the reversible path
//
// Every split is elementwise-independent, so the reconstructed pixels
// are bit-identical to the sequential decoder for every worker count,
// kernel set, and tiling — the decode half of the DESIGN.md §5
// invariant.

// ZeroPlanes clears pooled coefficient planes stripe-parallel. Planes
// from imgmodel.GetPlane carry arbitrary prior contents, and code-block
// regions a truncated or region-limited stream never includes must read
// as zero coefficients; the full padded stride is cleared so stride
// padding never leaks stale data downstream either.
func (p *Pipeline) ZeroPlanes(planes []*imgmodel.Plane) {
	if len(planes) == 0 {
		return
	}
	h := planes[0].H
	ns := stripes(h)
	p.run(obs.StageZero, 0, ns*len(planes), func(i int) {
		pl := planes[i/ns]
		y0, y1 := stripeBounds(i%ns, h)
		clear(pl.Data[y0*pl.Stride : y1*pl.Stride])
	})
}

// Dequantize converts quantizer indices back to coefficients, one job
// per (component, band), into pooled float planes. The subbands tile
// the plane, so every live sample of the pooled planes is written; the
// stride padding is never read by the inverse transforms.
func (p *Pipeline) Dequantize(h *codestream.Header, bands []dwt.Band, planes []*imgmodel.Plane) []*imgmodel.FPlane {
	w, hh := planes[0].W, planes[0].H
	fplanes := make([]*imgmodel.FPlane, len(planes))
	for c := range fplanes {
		fplanes[c] = imgmodel.GetFPlaneObs(w, hh, p.rec)
	}
	p.run(obs.StageDeq, 0, len(planes)*len(bands), func(i int) {
		c, b := i/len(bands), bands[i%len(bands)]
		if b.W == 0 || b.H == 0 {
			return
		}
		pl, fp := planes[c], fplanes[c]
		delta := float32(quant.StepFor(h.BaseDelta, h.Levels, b.Orient, b.Level))
		for y := b.Y0; y < b.Y0+b.H; y++ {
			quant.DequantizeRow(fp.Data[y*fp.Stride+b.X0:][:b.W], pl.Data[y*pl.Stride+b.X0:][:b.W], delta)
		}
	})
	return fplanes
}

// IDWT53 undoes reversible decomposition levels levels-1 down to stop
// over all planes: per level, horizontal inverse rows first, then the
// vertical inverse over column groups — the exact reverse of DWT53's
// phase order, with the same barriers. Bit-identical to
// dwt.InverseLevels53 on each plane.
func (p *Pipeline) IDWT53(planes []*imgmodel.Plane, levels, stop int) {
	w, h := planes[0].W, planes[0].H
	rec := p.rec
	for l := levels - 1; l >= stop; l-- {
		lw, lh := dwt.LevelDims(w, h, l)
		if lw <= 1 && lh <= 1 {
			continue
		}
		if lw > 1 {
			ns := stripes(lh)
			p.run(obs.StageIDWTHorz, int32(l), ns*len(planes), func(i int) {
				pl := planes[i/ns]
				y0, y1 := stripeBounds(i%ns, lh)
				tmp := getI32(lw, rec)
				dwt.InvHorizontal53Rows(pl.Data, lw, pl.Stride, y0, y1, *tmp)
				putI32(tmp)
				rec.Add(obs.CtrDWTBytesMoved, int64(y1-y0)*int64(lw)*8)
			})
		}
		if lh > 1 {
			chunks := decomp.Partition(lw, decomp.ChunkWidthFor(lw, p.workers), p.workers)
			nc := len(chunks)
			p.run(obs.StageIDWTVert, int32(l), nc*len(planes), func(i int) {
				pl, ch := planes[i/nc], chunks[i%nc]
				aux := getI32(dwt.AuxLen(ch.W, lh), rec)
				dwt.InvVertical53Stripe(pl.Data, ch.X0, ch.W, lh, pl.Stride, *aux)
				putI32(aux)
				rec.Add(obs.CtrDWTBytesMoved, int64(ch.W)*int64(lh)*8)
			})
		}
	}
}

// IDWT97 is the irreversible analogue of IDWT53; bit-identical to
// dwt.InverseLevels97 on each plane.
func (p *Pipeline) IDWT97(fplanes []*imgmodel.FPlane, levels, stop int) {
	w, h := fplanes[0].W, fplanes[0].H
	rec := p.rec
	for l := levels - 1; l >= stop; l-- {
		lw, lh := dwt.LevelDims(w, h, l)
		if lw <= 1 && lh <= 1 {
			continue
		}
		if lw > 1 {
			ns := stripes(lh)
			p.run(obs.StageIDWTHorz, int32(l), ns*len(fplanes), func(i int) {
				pl := fplanes[i/ns]
				y0, y1 := stripeBounds(i%ns, lh)
				tmp := getF32(lw, rec)
				dwt.InvHorizontal97Rows(pl.Data, lw, pl.Stride, y0, y1, *tmp)
				putF32(tmp)
				rec.Add(obs.CtrDWTBytesMoved, int64(y1-y0)*int64(lw)*8)
			})
		}
		if lh > 1 {
			chunks := decomp.Partition(lw, decomp.ChunkWidthFor(lw, p.workers), p.workers)
			nc := len(chunks)
			p.run(obs.StageIDWTVert, int32(l), nc*len(fplanes), func(i int) {
				pl, ch := fplanes[i/nc], chunks[i%nc]
				aux := getF32(dwt.AuxLen(ch.W, lh), rec)
				dwt.InvVertical97Stripe(pl.Data, ch.X0, ch.W, lh, pl.Stride, *aux)
				putF32(aux)
				rec.Add(obs.CtrDWTBytesMoved, int64(ch.W)*int64(lh)*8)
			})
		}
	}
}

// InverseMCTInt finishes the reversible path stripe-parallel: copy the
// synthesized planes into the image, apply the inverse RCT (or the
// plain unshift), and clamp — one fused pass per row stripe, the
// inverse of MCTInt.
func (p *Pipeline) InverseMCTInt(img *imgmodel.Image, planes []*imgmodel.Plane, h *codestream.Header) {
	w, hh := img.W, img.H
	useMCT := h.UseMCT && h.NComp == 3
	p.run(obs.StageIMCT, 0, stripes(hh), func(s int) {
		y0, y1 := stripeBounds(s, hh)
		for c, pl := range planes {
			dst := img.Comps[c]
			copy(dst.Data[y0*dst.Stride:y1*dst.Stride], pl.Data[y0*pl.Stride:y1*pl.Stride])
		}
		if useMCT {
			mct.InverseRCTRows(img.Comps[0].Data, img.Comps[1].Data, img.Comps[2].Data,
				w, img.Comps[0].Stride, y0, y1, h.Depth)
		} else {
			for c := range img.Comps {
				mct.UnshiftRows(img.Comps[c].Data, w, img.Comps[c].Stride, y0, y1, h.Depth)
			}
		}
		for c := range img.Comps {
			mct.ClampRows(img.Comps[c].Data, w, img.Comps[c].Stride, y0, y1, h.Depth)
		}
	})
}

// InverseMCTFloat finishes the irreversible path stripe-parallel:
// inverse ICT (or round-unshift) straight from the synthesized float
// planes into the image, then clamp — the inverse of MCTFloat.
func (p *Pipeline) InverseMCTFloat(img *imgmodel.Image, fplanes []*imgmodel.FPlane, h *codestream.Header) {
	w, hh := img.W, img.H
	useMCT := h.UseMCT && h.NComp == 3
	p.run(obs.StageIMCT, 0, stripes(hh), func(s int) {
		y0, y1 := stripeBounds(s, hh)
		if useMCT {
			mct.InverseICTRows(fplanes[0].Data, fplanes[1].Data, fplanes[2].Data,
				img.Comps[0].Data, img.Comps[1].Data, img.Comps[2].Data,
				w, fplanes[0].Stride, img.Comps[0].Stride, y0, y1, h.Depth)
		} else {
			for c := range img.Comps {
				mct.RoundShiftRows(fplanes[c].Data, img.Comps[c].Data,
					w, fplanes[c].Stride, img.Comps[c].Stride, y0, y1, h.Depth)
			}
		}
		for c := range img.Comps {
			mct.ClampRows(img.Comps[c].Data, w, img.Comps[c].Stride, y0, y1, h.Depth)
		}
	})
}

// blockCostFloor is the per-block fixed cost (coder-state init, scan
// setup) added to the scaled byte count when sizing Tier-1 decode
// partitions, in common time units calibrated against the MQ coder
// (one unit ≈ decoding one MQ-coded byte).
const blockCostFloor = 48

// t1CostModel prices one block decode for partition sizing. Different
// block coders have different fixed setup costs and per-byte decode
// rates, so the partitioner is parameterized rather than hardwired to
// MQ: cost = floor + codedBytes/byteDiv, both in the common units of
// blockCostFloor.
type t1CostModel struct {
	floor   int // fixed per-block cost (state init, scan setup)
	byteDiv int // coded bytes decoded per cost unit
}

var (
	// mqDecodeCost: serial arithmetic decoding, ~1 unit per byte.
	mqDecodeCost = t1CostModel{floor: blockCostFloor, byteDiv: 1}
	// htDecodeCost: the HT decoder moves bytes several times faster
	// than MQ (measured ~10× on dense blocks; 4 is the conservative
	// sparse-block figure) and its per-block setup is lighter — no MQ
	// context state to initialize.
	htDecodeCost = t1CostModel{floor: 16, byteDiv: 4}
)

// decodeCostFor selects the partition cost model for a Tier-1 mode.
func decodeCostFor(mode t1.Mode) t1CostModel {
	if mode.IsHT() {
		return htDecodeCost
	}
	return mqDecodeCost
}

func (m t1CostModel) of(t *blockTask) int { return m.floor + len(t.acc.data)/m.byteDiv }

// partitionDecodeTasks groups the block-decode tasks into contiguous
// work-queue jobs sized by modeled cost — the per-block coded byte
// counts T2 parsing just produced, priced by the active coder's cost
// model — instead of one fixed-size job per block. Cheap blocks
// (sparse high-frequency bands, heavily truncated layers) coalesce
// until a partition reaches the cost target (total/(workers*4), so
// claims stay frequent enough to balance); a block whose own cost
// exceeds the target becomes a singleton. The pass chain inside one
// block is strictly serial for both coders, so a single block is the
// finest split available — pass granularity is the floor. Because HT
// blocks are priced cheaper per byte, the same byte counts coalesce
// into fewer, larger partitions under the HT model, keeping per-job
// queue overhead proportional to actual decode time. Partition
// boundaries never change decoded pixels (blocks write disjoint plane
// regions); they only shape the queue's load balance. The modeled total
// cost is returned alongside the partitions so the shared scheduler's
// weighted policy can rank this stage's remaining work against other
// lanes (Pipeline.runCost).
func partitionDecodeTasks(rec *obs.Recorder, tasks []blockTask, workers int, model t1CostModel) ([]decodePart, int64) {
	if len(tasks) == 0 {
		return nil, 0
	}
	cost := func(t *blockTask) int { return model.of(t) }
	total := 0
	for i := range tasks {
		total += cost(&tasks[i])
	}
	target := total / (workers * 4)
	// One shared absolute minimum in common units — NOT scaled by the
	// model floor — so a cheap coder coalesces more blocks per job
	// rather than just lowering the bar.
	if target < 4*blockCostFloor {
		target = 4 * blockCostFloor
	}
	var parts []decodePart
	lo, acc := 0, 0
	for i := range tasks {
		c := cost(&tasks[i])
		if acc > 0 && acc+c > target {
			parts = append(parts, decodePart{lo: lo, hi: i})
			lo, acc = i, 0
		}
		acc += c
	}
	parts = append(parts, decodePart{lo: lo, hi: len(tasks)})
	if rec != nil {
		singles := int64(0)
		for _, pt := range parts {
			if pt.hi-pt.lo == 1 && cost(&tasks[pt.lo]) >= target {
				singles++
			}
		}
		rec.Add(obs.CtrDecodeParts, int64(len(parts)))
		rec.Add(obs.CtrDecodeSingles, singles)
	}
	return parts, int64(total)
}

// decodePart is one dynamically-sized Tier-1 decode job: the tasks in
// [lo, hi).
type decodePart struct{ lo, hi int }
