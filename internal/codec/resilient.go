package codec

import (
	"context"
	"errors"
	"fmt"
	"time"

	"j2kcell/internal/codestream"
	"j2kcell/internal/imgmodel"
	"j2kcell/internal/jp2"
	"j2kcell/internal/obs"
)

// DecodeResilient decodes a possibly damaged codestream as far as
// possible and reports what was lost. It is total: every input — valid,
// bit-flipped, truncated, or arbitrary bytes — yields an image and a
// DamageReport, never an error or a panic. An undamaged stream decodes
// pixel-identical to Decode with rep.Complete set; a damaged one keeps
// every recoverable tile, packet and code block, conceals the rest as
// zero coefficients, and maps the loss in the report. When even the
// main header is unusable the image is a 1×1 placeholder and
// rep.HeaderOK is false.
func DecodeResilient(data []byte, dopt DecodeOptions) (*imgmodel.Image, *DamageReport) {
	img, rep, err := DecodeResilientContext(context.Background(), data, dopt)
	if rep == nil {
		rep = &DamageReport{}
	}
	if err != nil {
		// The background context never cancels, so this is admission
		// pressure or a contained coordinator fault; fold it into the
		// report to keep the signature total.
		rep.Complete = false
		rep.Notes = append(rep.Notes, err.Error())
	}
	if img == nil {
		img = imgmodel.NewImage(1, 1, 1, 8)
	}
	return img, rep
}

// DecodeResilientContext is DecodeResilient bound to a context. Stream
// damage still never surfaces as an error; err is non-nil only for
// context cancellation and admission-control rejection (ErrOverloaded),
// in which case the image and report are nil.
func DecodeResilientContext(ctx context.Context, data []byte, dopt DecodeOptions) (img *imgmodel.Image, rep *DamageReport, err error) {
	rec := obs.Current(ctx)
	var start time.Time
	if rec != nil {
		start = time.Now()
	}
	// Header-level salvage failures still count as (resilient) decode
	// operations; the class gains the lossy/tiled/HT bits once known.
	cls := obs.ClassOf(true, false, false, false).Resilient()
	defer func() {
		if rec == nil {
			return
		}
		if err != nil {
			rec.OpFailed()
			return
		}
		rec.OpDone(cls, time.Since(start))
	}()
	defer containAPIFault(rec, "decode-resilient", &err)
	if ctx == nil {
		ctx = context.Background()
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, nil, cerr
	}
	release, aerr := admitOp(ctx, dopt.Workers, rec)
	if aerr != nil {
		return nil, nil, aerr
	}
	defer release()
	ln := rec.Acquire()
	total := ln.Begin(obs.StageDecode, 0, 0)
	defer ln.Release()
	defer total.End()

	rep = &DamageReport{HeaderOK: true}
	fail := func(note string) (*imgmodel.Image, *DamageReport, error) {
		rep.HeaderOK = false
		rep.Notes = append(rep.Notes, note)
		return imgmodel.NewImage(1, 1, 1, 8), rep, nil
	}
	if jp2.IsJP2(data) {
		_, cs, uerr := jp2.Unwrap(data)
		if uerr != nil {
			return fail(fmt.Sprintf("jp2 container unusable: %v", uerr))
		}
		data = cs
	}
	h, bodies, sinfo, herr := codestream.DecodeTilesSalvage(data, dopt.limits())
	if herr != nil {
		return fail(fmt.Sprintf("main header unusable: %v", herr))
	}
	grid := TileGrid(h.W, h.H, h.TileW, h.TileH)
	tiled := len(grid) > 1 || h.TileW < h.W || h.TileH < h.H
	cls = obs.ClassOf(true, !h.Lossless, tiled, h.HT).Resilient()
	rep.TotalTiles = len(grid)
	rep.Resyncs += sinfo.Resyncs
	rep.Truncated = sinfo.Truncated
	rep.TotalBytes = sinfo.BodyBytes

	// Progressive options the best-effort path cannot honor are ignored
	// and noted, never fatal: the caller asked for whatever is
	// recoverable, not for an error.
	if dopt.regionSet() {
		rep.Notes = append(rep.Notes, "Region not supported in best-effort decode; full image returned")
		dopt.Region = Rect{}
	}
	discard := dopt.DiscardLevels
	if discard < 0 {
		discard = 0
	}
	if discard > h.Levels {
		discard = h.Levels
	}
	scale := 1 << uint(discard)
	if discard > 0 && tiled && (h.TileW%scale != 0 || h.TileH%scale != 0) {
		rep.Notes = append(rep.Notes, fmt.Sprintf("DiscardLevels=%d ignored: tile size not divisible by %d", discard, scale))
		discard, scale = 0, 1
	}
	dopt.DiscardLevels = discard

	// Decode the declared grid tile by tile into a zeroed image: a tile
	// that is missing, undecodable, or faulted simply stays zero. The
	// retry loop demotes tile-stage faults the same way the Tier-1 loop
	// inside decodeTile demotes block-stage faults.
	rw := (h.W + scale - 1) / scale
	rh := (h.H + scale - 1) / scale
	out := imgmodel.NewImage(rw, rh, h.NComp, h.Depth)
	p := NewPipelineContext(ctx, dopt.Workers)
	defer p.Close()
	td := dopt
	if len(grid) > 1 {
		td.Workers = 1 // tiles are the parallel unit, as in decodeTiled
	}
	dmgs := make([]*tileDamage, len(grid))
	terrs := make([]error, len(grid))
	done := make([]bool, len(grid))
	for attempt := 0; attempt <= len(grid)+4; attempt++ {
		p.run(obs.StageTile, 0, len(grid), func(i int) {
			if done[i] {
				return
			}
			done[i] = true
			if bodies[i] == nil {
				return // missing tile-part: accounted below
			}
			dmg := &tileDamage{}
			dmgs[i] = dmg
			r := grid[i]
			tile, terr := decodeTile(p.Context(), h, r.W, r.H, bodies[i], td, dmg)
			if terr != nil {
				if p.Context().Err() != nil {
					p.Fail(terr)
				} else {
					terrs[i] = terr
				}
				return
			}
			out.Insert(tile, r.X0/scale, r.Y0/scale)
		})
		perr := p.Err()
		if perr == nil {
			break
		}
		var fe *FaultError
		if !errors.As(perr, &fe) || p.Context().Err() != nil {
			return nil, nil, perr
		}
		// A fault escaped a tile's own containment (or was injected at
		// the tile stage): demote it to whole-tile loss and resume.
		if fe.Job >= 0 && fe.Job < len(grid) && terrs[fe.Job] == nil {
			terrs[fe.Job] = perr
			done[fe.Job] = true
		} else {
			rep.Notes = append(rep.Notes, fmt.Sprintf("contained fault in stage %s", fe.Stage))
		}
		p.clearFault()
	}

	// Aggregate per-tile damage into the report. Regions are absolute
	// full-resolution image coordinates.
	ppt := len(PacketOrder(Progression(h.Progression), h.Layers, h.Levels, h.NComp))
	for i, r := range grid {
		dmg := dmgs[i]
		if dmg == nil {
			dmg = &tileDamage{}
		}
		if bodies[i] == nil {
			rep.MissingTiles++
			rep.TotalPackets += ppt
			rep.LostPackets += ppt
			rep.Tiles = append(rep.Tiles, TileDamage{
				Index: i, Missing: true, TotalPackets: ppt, LostPackets: ppt,
				Region: Rect{X0: r.X0, Y0: r.Y0, W: r.W, H: r.H},
			})
			continue
		}
		if terr := terrs[i]; terr != nil {
			// The whole tile is concealed: whatever its packet walk
			// salvaged never reached the image.
			rep.TotalPackets += dmg.totalPackets
			rep.LostPackets += dmg.totalPackets
			rep.TotalBlocks += dmg.totalBlocks
			rep.LostBlocks += dmg.totalBlocks
			rep.Resyncs += dmg.resyncs
			if dmg.truncated {
				rep.Truncated = true
			}
			t := TileDamage{
				Index: i, Truncated: dmg.truncated,
				TotalPackets: dmg.totalPackets, LostPackets: dmg.totalPackets,
				TotalBlocks: dmg.totalBlocks, Resyncs: dmg.resyncs,
				Region: Rect{X0: r.X0, Y0: r.Y0, W: r.W, H: r.H},
			}
			var fe *FaultError
			if errors.As(terr, &fe) {
				t.Faults = append(t.Faults, FaultRef{Stage: fe.Stage, Lane: fe.Lane, Job: fe.Job})
			}
			rep.Notes = append(rep.Notes, fmt.Sprintf("tile %d concealed: %v", i, terr))
			rep.Tiles = append(rep.Tiles, t)
			continue
		}
		rep.TotalPackets += dmg.totalPackets
		rep.LostPackets += dmg.lostPackets
		rep.TotalBlocks += dmg.totalBlocks
		rep.LostBlocks += len(dmg.lost)
		rep.Resyncs += dmg.resyncs
		rep.SalvagedBytes += dmg.salvaged
		if dmg.truncated {
			rep.Truncated = true
		}
		if !dmg.damaged() {
			continue
		}
		t := TileDamage{
			Index: i, Truncated: dmg.truncated,
			TotalPackets: dmg.totalPackets, LostPackets: dmg.lostPackets,
			TotalBlocks: dmg.totalBlocks, Resyncs: dmg.resyncs,
			LostBlocks: dmg.lost, Faults: dmg.faults,
		}
		for j := range t.LostBlocks {
			t.LostBlocks[j].Tile = i
			t.LostBlocks[j].Region.X0 += r.X0
			t.LostBlocks[j].Region.Y0 += r.Y0
			t.Region = unionRect(t.Region, t.LostBlocks[j].Region)
		}
		if t.Region.W == 0 && (t.LostPackets > 0 || t.Truncated) {
			// Packet loss without a block map (e.g. whole layers gone):
			// the worst case is the whole tile.
			t.Region = Rect{X0: r.X0, Y0: r.Y0, W: r.W, H: r.H}
		}
		rep.Tiles = append(rep.Tiles, t)
	}
	rep.Complete = rep.HeaderOK && !rep.Truncated && rep.Resyncs == 0 &&
		rep.MissingTiles == 0 && rep.LostPackets == 0 && rep.LostBlocks == 0 &&
		len(rep.Tiles) == 0 && len(rep.Notes) == 0
	rec.Add(obs.CtrResyncs, int64(rep.Resyncs))
	rec.Add(obs.CtrConcealedBlocks, int64(rep.LostBlocks))
	return out, rep, nil
}
