package codec

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"j2kcell/internal/faults"
	"j2kcell/internal/workload"
)

// goroutineCount waits for transient goroutines (GC, finished workers)
// to drain and returns a stable count; used to pin "no leak".
func goroutineCount() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(2 * time.Millisecond)
		m := runtime.NumGoroutine()
		if m <= n {
			return m
		}
		n = m
	}
	return n
}

// faultOp is one codec operation the injection matrix drives, with the
// stages its pipeline actually enters.
type faultOp struct {
	name   string
	stages []string
	run    func(workers int) error
}

// TestFaultInjectionMatrix arms a fault — panic and injected error —
// in every stage of every operation, at every worker width, and
// requires each run to fail cleanly with a *FaultError naming the
// armed stage: no escaped panic, no hang, no goroutine leak, and the
// pools still produce byte-identical output afterwards.
func TestFaultInjectionMatrix(t *testing.T) {
	img := workload.Dial(128, 128, 9, 4)
	losslessOpt := Options{Lossless: true}
	rateOpt := Options{Rate: 0.2}
	tiledOpt := Options{Rate: 0.3, TileW: 64, TileH: 64}

	htOpt := Options{Lossless: true, HT: true}
	htRateOpt := Options{Rate: 0.2, HT: true}

	base, err := Encode(img, losslessOpt)
	if err != nil {
		t.Fatal(err)
	}
	htSrc, err := Encode(img, htOpt)
	if err != nil {
		t.Fatal(err)
	}
	htRateSrc, err := Encode(img, htRateOpt)
	if err != nil {
		t.Fatal(err)
	}
	decSrc, err := Encode(img, rateOpt)
	if err != nil {
		t.Fatal(err)
	}
	tiledSrc, err := EncodeTiled(img, tiledOpt, 1)
	if err != nil {
		t.Fatal(err)
	}

	ops := []faultOp{
		{
			name:   "encode-lossless",
			stages: []string{"mct", "dwt-v", "dwt-h", "t1"},
			run: func(w int) error {
				_, err := EncodeParallel(img, losslessOpt, w)
				return err
			},
		},
		{
			name:   "encode-lossy-rate",
			stages: []string{"mct", "dwt-v", "dwt-h", "t1", "rate"},
			run: func(w int) error {
				_, err := EncodeParallel(img, rateOpt, w)
				return err
			},
		},
		{
			name:   "encode-tiled",
			stages: []string{"tile", "mct", "dwt-v", "dwt-h", "quant"},
			run: func(w int) error {
				_, err := EncodeParallel(img, tiledOpt, w)
				return err
			},
		},
		{
			name:   "decode-lossy",
			stages: []string{"zero", "t1", "deq", "idwt-h", "idwt-v", "imct"},
			run: func(w int) error {
				_, err := DecodeWith(decSrc.Data, DecodeOptions{Workers: w})
				return err
			},
		},
		{
			name:   "decode-lossless",
			stages: []string{"zero", "t1", "idwt-h", "idwt-v", "imct"},
			run: func(w int) error {
				_, err := DecodeWith(base.Data, DecodeOptions{Workers: w})
				return err
			},
		},
		{
			// HT Tier-1 runs under its own stage ("t1ht"), so the coder
			// swap carries its own fault injection point on both sides.
			name:   "encode-ht",
			stages: []string{"mct", "dwt-v", "dwt-h", "t1ht"},
			run: func(w int) error {
				_, err := EncodeParallel(img, htOpt, w)
				return err
			},
		},
		{
			name:   "encode-ht-rate",
			stages: []string{"t1ht", "rate"},
			run: func(w int) error {
				_, err := EncodeParallel(img, htRateOpt, w)
				return err
			},
		},
		{
			name:   "decode-ht",
			stages: []string{"zero", "t1ht", "idwt-h", "idwt-v", "imct"},
			run: func(w int) error {
				_, err := DecodeWith(htSrc.Data, DecodeOptions{Workers: w})
				return err
			},
		},
		{
			name:   "decode-ht-lossy",
			stages: []string{"t1ht", "deq"},
			run: func(w int) error {
				_, err := DecodeWith(htRateSrc.Data, DecodeOptions{Workers: w})
				return err
			},
		},
		{
			// Tiled decode: faults in the tile queue itself, and in the
			// inner per-tile stages (whose *FaultError must pass through
			// the tile queue's latch unwrapped).
			name:   "decode-tiled",
			stages: []string{"tile", "zero", "deq", "imct"},
			run: func(w int) error {
				_, err := DecodeWith(tiledSrc.Data, DecodeOptions{Workers: w})
				return err
			},
		},
	}

	before := goroutineCount()
	for _, op := range ops {
		for _, stage := range op.stages {
			for _, workers := range []int{1, 2, 8} {
				for _, mode := range []faults.Mode{faults.Panic, faults.Error} {
					name := fmt.Sprintf("%s/%s/w%d/mode%d", op.name, stage, workers, mode)
					faults.Arm(stage, 2, mode)
					err := op.run(workers)
					fired := faults.Fired()
					faults.Disarm()
					if fired != 1 {
						t.Fatalf("%s: fault fired %d times, want 1", name, fired)
					}
					var fe *FaultError
					if !errors.As(err, &fe) {
						t.Fatalf("%s: got %v (%T), want *FaultError", name, err, err)
					}
					if fe.Stage != stage {
						t.Fatalf("%s: FaultError.Stage = %q, want %q", name, fe.Stage, stage)
					}
				}
			}
		}
	}

	// Leak pin: every aborted run must have joined its workers.
	if after := goroutineCount(); after > before+2 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked: %d before, %d after\n%s",
			before, after, buf[:runtime.Stack(buf, true)])
	}

	// Pool-consistency pin: the pools that recycled through dozens of
	// aborted encodes must still serve byte-identical output.
	again, err := Encode(img, losslessOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base.Data, again.Data) {
		t.Fatal("encode output changed after fault matrix — pools corrupted")
	}
}

// TestBestEffortDemotesTier1Faults extends the fault matrix with the
// best-effort rows: a panic or injected error in one Tier-1 job must
// demote to the loss of exactly one code block — sibling blocks decode
// pixel-identical to the undamaged reference — with the fault's
// stage/lane/job coordinates carried into the damage report instead of
// being dropped at the first-error latch.
func TestBestEffortDemotesTier1Faults(t *testing.T) {
	img := workload.Dial(128, 128, 9, 4)
	res, err := Encode(img, Options{Lossless: true, Resilience: true, CBW: 16, CBH: 16})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Decode(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []faults.Mode{faults.Panic, faults.Error} {
		for _, workers := range []int{1, 2, 8} {
			name := fmt.Sprintf("t1/w%d/mode%d/best-effort", workers, mode)
			faults.Arm("t1", 2, mode)
			dec, rep := DecodeResilient(res.Data, DecodeOptions{Workers: workers})
			fired := faults.Fired()
			faults.Disarm()
			if fired != 1 {
				t.Fatalf("%s: fault fired %d times, want 1", name, fired)
			}
			if rep.LostBlocks != 1 {
				t.Fatalf("%s: %d blocks lost, want the single faulted one: %v", name, rep.LostBlocks, rep)
			}
			if len(rep.Tiles) != 1 {
				t.Fatalf("%s: %d damaged tiles, want 1", name, len(rep.Tiles))
			}
			td := rep.Tiles[0]
			if len(td.Faults) != 1 || td.Faults[0].Stage != "t1" || td.Faults[0].Job < 0 {
				t.Fatalf("%s: fault coordinates not propagated into report: %+v", name, td.Faults)
			}
			if rep.LostPackets != 0 || rep.Truncated {
				t.Fatalf("%s: unrelated damage reported: %v", name, rep)
			}
			// Sibling blocks: every pixel outside the lost block's
			// region matches the undamaged decode exactly.
			reg := td.Region
			if reg.W <= 0 || reg.H <= 0 {
				t.Fatalf("%s: lost block has empty region", name)
			}
			for c := range ref.Comps {
				for y := 0; y < ref.H; y++ {
					rrow, drow := ref.Comps[c].Row(y), dec.Comps[c].Row(y)
					for x := 0; x < ref.W; x++ {
						in := x >= reg.X0 && x < reg.X0+reg.W && y >= reg.Y0 && y < reg.Y0+reg.H
						if !in && rrow[x] != drow[x] {
							t.Fatalf("%s: sibling pixel (%d,%d,c%d) damaged outside region %+v",
								name, x, y, c, reg)
						}
					}
				}
			}
		}
	}
}

// TestFaultErrorCarriesCoordinates checks the located fields and the
// unwrap chain of both fault flavors.
func TestFaultErrorCarriesCoordinates(t *testing.T) {
	img := workload.Dial(96, 96, 3, 4)

	faults.Arm("t1", 3, faults.Error)
	_, err := EncodeParallel(img, Options{Lossless: true}, 2)
	faults.Disarm()
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want *FaultError", err)
	}
	if fe.Job < 0 || fe.Lane < 0 {
		t.Errorf("missing coordinates: lane=%d job=%d", fe.Lane, fe.Job)
	}
	var inj *faults.InjectedError
	if !errors.As(err, &inj) {
		t.Errorf("injected error not reachable via Unwrap: %v", err)
	}

	faults.Arm("dwt-h", 1, faults.Panic)
	_, err = EncodeParallel(img, Options{Lossless: true}, 2)
	faults.Disarm()
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want *FaultError", err)
	}
	if fe.Panic == nil || len(fe.Stack) == 0 {
		t.Errorf("panic fault lost its value or stack: %+v", fe)
	}
}

// TestSequentialEncodeContainsFaults pins the workers=1 inline path:
// containment does not depend on goroutines existing.
func TestSequentialEncodeContainsFaults(t *testing.T) {
	img := workload.Dial(64, 64, 2, 4)
	faults.Arm("mct", 1, faults.Panic)
	_, err := Encode(img, Options{Lossless: true})
	faults.Disarm()
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want *FaultError", err)
	}
	if fe.Stage != "mct" {
		t.Fatalf("Stage = %q, want mct", fe.Stage)
	}
}

// TestPoolsSurviveFaultedEncodes pins steady-state allocations: an
// encode aborted mid-stage returns its pooled planes, so allocations
// per encode stay in the same band afterwards.
func TestPoolsSurviveFaultedEncodes(t *testing.T) {
	img := workload.Dial(128, 128, 5, 4)
	opt := Options{Lossless: true}
	encode := func() {
		if _, err := EncodeParallel(img, opt, 2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		encode() // warm the plane and scratch pools
	}
	before := testing.AllocsPerRun(5, encode)

	for i := 0; i < 5; i++ {
		faults.Arm("t1", 1, faults.Panic)
		if _, err := EncodeParallel(img, opt, 2); err == nil {
			t.Fatal("faulted encode returned nil error")
		}
		faults.Disarm()
	}

	encode() // one refill pass after the aborts
	after := testing.AllocsPerRun(5, encode)
	// sync.Pool interplay with GC makes exact pins flaky; the defect
	// this guards against (planes never returned on the abort path)
	// would at least double the count.
	if after > before*2+200 {
		t.Errorf("allocations grew after faulted encodes: %.0f -> %.0f", before, after)
	}
}
