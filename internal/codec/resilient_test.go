package codec

import (
	"bytes"
	"testing"

	"j2kcell/internal/imgmodel"
	"j2kcell/internal/workload"
)

// resilientConfigs spans the coder × path × tiling matrix the
// corruption campaign and identity pins run over.
var resilientConfigs = []struct {
	name string
	opt  Options
}{
	{"mq-lossless", Options{Lossless: true, Resilience: true}},
	{"mq-lossy", Options{Rate: 0.2, Resilience: true}},
	{"mq-lossless-tiled", Options{Lossless: true, Resilience: true, TileW: 64, TileH: 64}},
	{"mq-lossy-tiled", Options{Rate: 0.25, Resilience: true, TileW: 64, TileH: 64}},
	{"ht-lossless", Options{Lossless: true, HT: true, Resilience: true}},
	{"ht-lossy", Options{Rate: 0.2, HT: true, Resilience: true}},
}

// TestFindSOPValidatesSequence pins the resync hardening: a fake
// FF 91 00 04 prefix inside packet-body data whose sequence field is
// outside the expected window must not capture the scan.
func TestFindSOPValidatesSequence(t *testing.T) {
	fake := []byte{0xAA, 0xFF, 0x91, 0x00, 0x04, 0x80, 0x00, 0xBB} // Nsop = 0x8000
	real := []byte{0xFF, 0x91, 0x00, 0x04, 0x00, 0x05, 0xCC}       // Nsop = 5
	body := append(append([]byte(nil), fake...), real...)

	at, idx := findSOP(body, 0, 3)
	if at != len(fake) || idx != 5 {
		t.Fatalf("findSOP locked onto the wrong marker: at=%d idx=%d, want at=%d idx=5", at, idx, len(fake))
	}
	// The fake marker IS acceptable when its sequence is the expected one.
	if at, idx = findSOP(body, 0, 0x7FF0); at != 1 || idx != 0x8000 {
		t.Fatalf("in-window marker rejected: at=%d idx=%d", at, idx)
	}
	// Wrap-around: expect near 2^16, marker sequence just past zero.
	wrap := []byte{0xFF, 0x91, 0x00, 0x04, 0x00, 0x02}
	if at, idx = findSOP(wrap, 0, 0xFFFE); at != 0 || idx != 0xFFFE+4 {
		t.Fatalf("mod-2^16 window broken: at=%d idx=%d", at, idx)
	}
	if at, _ = findSOP(fake, 0, 0); at != -1 {
		t.Fatalf("out-of-window fake accepted at %d", at)
	}
}

// TestResilientUndamagedIdentity pins that best-effort decoding of an
// intact stream is free: pixel-identical to Decode, a Complete report,
// and a 100%% salvage ratio — across both coders, both paths, and
// tiling.
func TestResilientUndamagedIdentity(t *testing.T) {
	src := workload.Dial(128, 128, 7, 5)
	for _, tc := range resilientConfigs {
		res, err := Encode(src, tc.opt)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		ref, err := Decode(res.Data)
		if err != nil {
			t.Fatalf("%s: plain decode of resilient stream: %v", tc.name, err)
		}
		img, rep := DecodeResilient(res.Data, DecodeOptions{})
		if !rep.Complete || rep.Damaged() {
			t.Fatalf("%s: undamaged stream reported damage: %v", tc.name, rep)
		}
		if rep.SalvagedRatio() != 1.0 {
			t.Fatalf("%s: salvaged ratio %v on intact stream (salvaged=%d total=%d)",
				tc.name, rep.SalvagedRatio(), rep.SalvagedBytes, rep.TotalBytes)
		}
		if !imagesEqual(img, ref) {
			t.Fatalf("%s: best-effort decode differs from plain decode on intact stream", tc.name)
		}
		// BestEffort through the standard options path must agree too.
		img2, err := DecodeWith(res.Data, DecodeOptions{BestEffort: true})
		if err != nil {
			t.Fatalf("%s: DecodeWith(BestEffort): %v", tc.name, err)
		}
		if !imagesEqual(img2, ref) {
			t.Fatalf("%s: BestEffort option path differs from plain decode", tc.name)
		}
	}
}

// bodyStart returns the offset just past the first SOD marker — the
// first byte of tile-part packet data.
func bodyStart(tb testing.TB, data []byte) int {
	at := bytes.Index(data, []byte{0xFF, 0x93})
	if at < 0 {
		tb.Fatal("no SOD marker in stream")
	}
	return at + 2
}

// TestResilientBlockLocality is the pinned locality guarantee: a
// corruption confined to one code block's coded segment loses only that
// block's reported region — every pixel outside it stays identical to
// the undamaged decode.
func TestResilientBlockLocality(t *testing.T) {
	src := workload.Dial(128, 128, 11, 5)
	// 16×16 code blocks keep one block's synthesis support well inside
	// the image, so containment is observable.
	res, err := Encode(src, Options{Lossless: true, Resilience: true, CBW: 16, CBH: 16})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Decode(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	start := bodyStart(t, res.Data)
	rng := workload.NewRNG(42)
	checked := 0
	for trial := 0; trial < 300 && checked < 5; trial++ {
		data := append([]byte(nil), res.Data...)
		pos := start + rng.Intn(len(data)-start-2)
		data[pos] ^= byte(1) << uint(rng.Intn(8))
		img, rep := DecodeResilient(data, DecodeOptions{})
		// Only the sharp case pins locality: exactly one block detected
		// bad, nothing else disturbed. (Flips landing in packet headers
		// or decoding without tripping detection take other paths.)
		if rep.LostBlocks != 1 || rep.LostPackets != 0 || rep.Resyncs != 0 ||
			rep.Truncated || len(rep.Notes) != 0 || len(rep.Tiles) != 1 {
			continue
		}
		reg := rep.Tiles[0].Region
		if reg.W <= 0 || reg.H <= 0 {
			t.Fatalf("trial %d: empty lost region %+v with a recorded loss", trial, reg)
		}
		if reg.W >= src.W && reg.H >= src.H {
			// A coarse-band block's support legitimately spans the whole
			// image; only fine-band losses demonstrate containment.
			continue
		}
		for c := range ref.Comps {
			for y := 0; y < ref.H; y++ {
				rrow, drow := ref.Comps[c].Row(y), img.Comps[c].Row(y)
				for x := 0; x < ref.W; x++ {
					if rrow[x] != drow[x] &&
						(x < reg.X0 || x >= reg.X0+reg.W || y < reg.Y0 || y >= reg.Y0+reg.H) {
						t.Fatalf("trial %d: pixel (%d,%d,c%d) damaged outside reported region %+v",
							trial, x, y, c, reg)
					}
				}
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no trial produced a single contained block loss — detection tools not working")
	}
}

// TestResilientTruncationAtPacketBoundaries pins the salvage guarantee:
// a stream cut at any packet boundary still recovers every fully
// received packet, with no block-level loss inside them and byte-exact
// salvage accounting.
func TestResilientTruncationAtPacketBoundaries(t *testing.T) {
	src := workload.Dial(96, 96, 3, 5)
	res, err := Encode(src, Options{Lossless: true, Resilience: true})
	if err != nil {
		t.Fatal(err)
	}
	start := bodyStart(t, res.Data)
	// Packet boundaries are exactly the (validated) SOP positions.
	var bounds []int
	off, pi := start, 0
	for {
		at, idx := findSOP(res.Data[start:], off-start, pi)
		if at < 0 {
			break
		}
		bounds = append(bounds, start+at)
		off = start + at + 6
		pi = idx + 1
	}
	total := len(bounds)
	if total < 4 {
		t.Fatalf("only %d packets found", total)
	}
	for k := 0; k <= total; k++ {
		cut := len(res.Data) - 2 // before EOC
		if k < total {
			cut = bounds[k]
		}
		img, rep := DecodeResilient(res.Data[:cut], DecodeOptions{})
		if img == nil {
			t.Fatalf("k=%d: nil image", k)
		}
		if got := rep.TotalPackets - rep.LostPackets; got != k {
			t.Fatalf("k=%d: recovered %d packets, want every fully-received one (%d)", k, got, k)
		}
		if rep.LostBlocks != 0 {
			t.Fatalf("k=%d: %d block losses inside fully-received packets", k, rep.LostBlocks)
		}
		if !rep.Truncated {
			t.Fatalf("k=%d: truncation not reported", k)
		}
		wantSalvaged := int64(cut - start)
		if rep.SalvagedBytes != wantSalvaged {
			t.Fatalf("k=%d: salvaged %d bytes, want %d", k, rep.SalvagedBytes, wantSalvaged)
		}
	}
}

// TestResilientCorruptionCampaign is the seeded campaign: bit flips and
// truncations across both coders, both paths, and tiling. Requirements:
// zero panics (any escape fails the test), internally consistent damage
// reports, and ≥90%% aggregate block recovery for single-bit flips in
// the coded payload.
func TestResilientCorruptionCampaign(t *testing.T) {
	src := workload.Dial(128, 128, 13, 5)
	const trials = 60
	for _, tc := range resilientConfigs {
		res, err := Encode(src, tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		_, baseRep := DecodeResilient(res.Data, DecodeOptions{})
		if !baseRep.Complete {
			t.Fatalf("%s: baseline not complete: %v", tc.name, baseRep)
		}
		baseBlocks := baseRep.TotalBlocks
		start := bodyStart(t, res.Data)
		rng := workload.NewRNG(1000 + uint32(len(tc.name)))
		var flipTrials, recovered, lostTotal int
		for trial := 0; trial < trials; trial++ {
			data := append([]byte(nil), res.Data...)
			flip := trial%3 != 2 // two flips for every truncation
			if flip {
				pos := start + rng.Intn(len(data)-start)
				data[pos] ^= byte(1) << uint(rng.Intn(8))
			} else {
				data = data[:start+rng.Intn(len(data)-start)]
			}
			var img *imgmodel.Image
			var rep *DamageReport
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s trial %d: best-effort decode panicked: %v", tc.name, trial, r)
					}
				}()
				img, rep = DecodeResilient(data, DecodeOptions{Workers: 1 + trial%4})
			}()
			if img == nil || rep == nil {
				t.Fatalf("%s trial %d: DecodeResilient not total", tc.name, trial)
			}
			// Report consistency.
			if rep.LostPackets > rep.TotalPackets {
				t.Fatalf("%s trial %d: lost %d of %d packets", tc.name, trial, rep.LostPackets, rep.TotalPackets)
			}
			if rep.LostBlocks > rep.TotalBlocks {
				t.Fatalf("%s trial %d: lost %d of %d blocks", tc.name, trial, rep.LostBlocks, rep.TotalBlocks)
			}
			if rep.SalvagedBytes > rep.TotalBytes {
				t.Fatalf("%s trial %d: salvaged %d > total %d", tc.name, trial, rep.SalvagedBytes, rep.TotalBytes)
			}
			var tileLost int
			for _, td := range rep.Tiles {
				if td.Index < 0 || td.Index >= rep.TotalTiles {
					t.Fatalf("%s trial %d: tile index %d out of range", tc.name, trial, td.Index)
				}
				tileLost += len(td.LostBlocks)
			}
			if tileLost > rep.LostBlocks {
				t.Fatalf("%s trial %d: tile maps list %d losses, report totals %d", tc.name, trial, tileLost, rep.LostBlocks)
			}
			if flip && rep.HeaderOK {
				flipTrials++
				recovered += rep.TotalBlocks - rep.LostBlocks
				lostTotal += baseBlocks - (rep.TotalBlocks - rep.LostBlocks)
			}
		}
		if flipTrials > 0 {
			frac := float64(recovered) / float64(flipTrials*baseBlocks)
			if frac < 0.90 {
				t.Errorf("%s: single-bit-flip block recovery %.1f%% < 90%% (%d lost across %d trials)",
					tc.name, frac*100, lostTotal, flipTrials)
			}
		}
	}
}

// TestResilientHeaderDamageIsTotal pins the floor of the salvage
// ladder: damage that destroys the main header still returns a
// placeholder image and a report, not an error.
func TestResilientHeaderDamageIsTotal(t *testing.T) {
	img, rep := DecodeResilient([]byte{0xFF, 0x4F, 0x00, 0x01}, DecodeOptions{})
	if img == nil || rep == nil {
		t.Fatal("not total on garbage")
	}
	if rep.HeaderOK {
		t.Fatal("HeaderOK on garbage")
	}
	if rep.Complete {
		t.Fatal("Complete on garbage")
	}
	img, rep = DecodeResilient(nil, DecodeOptions{})
	if img == nil || rep == nil || rep.HeaderOK {
		t.Fatal("not total on empty input")
	}
}

// TestResilientMissingTilePart deletes one whole tile-part from a tiled
// stream: the other tiles must decode pixel-identical and the report
// must map the missing tile.
func TestResilientMissingTilePart(t *testing.T) {
	src := workload.Dial(128, 128, 5, 5)
	res, err := Encode(src, Options{Lossless: true, Resilience: true, TileW: 64, TileH: 64})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Decode(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	// Tile-parts are SOT..(next SOT | EOC). Remove the second one.
	var sots []int
	for i := 0; i+1 < len(res.Data); i++ {
		if res.Data[i] == 0xFF && res.Data[i+1] == 0x90 {
			sots = append(sots, i)
		}
	}
	if len(sots) != 4 {
		t.Fatalf("expected 4 tile-parts, found %d", len(sots))
	}
	data := append([]byte(nil), res.Data[:sots[1]]...)
	data = append(data, res.Data[sots[2]:]...)
	img, rep := DecodeResilient(data, DecodeOptions{})
	if rep.MissingTiles != 1 {
		t.Fatalf("MissingTiles = %d, want 1: %v", rep.MissingTiles, rep)
	}
	if len(rep.Tiles) != 1 || !rep.Tiles[0].Missing || rep.Tiles[0].Index != 1 {
		t.Fatalf("missing tile not mapped: %+v", rep.Tiles)
	}
	reg := rep.Tiles[0].Region
	if reg != (Rect{X0: 64, Y0: 0, W: 64, H: 64}) {
		t.Fatalf("missing tile region %+v, want the tile rectangle", reg)
	}
	for c := range ref.Comps {
		for y := 0; y < ref.H; y++ {
			rrow, drow := ref.Comps[c].Row(y), img.Comps[c].Row(y)
			for x := 0; x < ref.W; x++ {
				in := x >= reg.X0 && x < reg.X0+reg.W && y >= reg.Y0 && y < reg.Y0+reg.H
				if !in && rrow[x] != drow[x] {
					t.Fatalf("pixel (%d,%d,c%d) damaged outside the missing tile", x, y, c)
				}
			}
		}
	}
}
