package codec

import (
	"context"

	"j2kcell/internal/codestream"
	"j2kcell/internal/dwt"
	"j2kcell/internal/imgmodel"
	"j2kcell/internal/obs"
	"j2kcell/internal/rate"
	"j2kcell/internal/t1"
	"j2kcell/internal/t2"
)

// ForwardTransform runs level shift + component transform + DWT
// (+ quantization on the lossy path) and returns the integer
// coefficient planes ready for Tier-1. It is the single-worker
// composition of the pipeline stages (pipeline.go), so it computes
// exactly what the stripe-parallel path computes; the test oracles for
// the parallel encoders compare against it. The returned planes come
// from the imgmodel plane pool; callers that are done with them may
// release them with imgmodel.PutPlane.
func ForwardTransform(img *imgmodel.Image, opt Options) []*imgmodel.Plane {
	planes, _ := ForwardTransformPipeline(NewPipeline(1), img, opt)
	return planes
}

// ForwardTransformPipeline is ForwardTransform on a caller-supplied
// pipeline, so a tiled encode can run each tile's transform under the
// outer pipeline's context and fault latch. On fault or cancellation
// it returns the pipeline's error with every pooled plane already
// released.
func ForwardTransformPipeline(p *Pipeline, img *imgmodel.Image, opt Options) ([]*imgmodel.Plane, error) {
	if opt.Lossless {
		planes := p.MCTInt(img, opt)
		p.DWT53(planes, opt)
		if err := p.Err(); err != nil {
			for _, pl := range planes {
				imgmodel.PutPlane(pl)
			}
			return nil, err
		}
		return planes, nil
	}
	fplanes := p.MCTFloat(img, opt)
	p.DWT97(fplanes, opt)
	planes := p.QuantizePlanes(fplanes, opt)
	for _, fp := range fplanes {
		imgmodel.PutFPlane(fp)
	}
	if err := p.Err(); err != nil {
		for _, pl := range planes {
			imgmodel.PutPlane(pl)
		}
		return nil, err
	}
	return planes, nil
}

// Encode compresses img into a complete JPEG2000 codestream. It is the
// one-worker instance of the stage pipeline, so EncodeParallel is
// byte-identical to it by construction.
func Encode(img *imgmodel.Image, opt Options) (*Result, error) {
	return EncodeParallel(img, opt, 1)
}

// EncodeContext is Encode bound to a context: cancellation stops the
// encode between work-queue jobs and returns ctx.Err() unwrapped.
func EncodeContext(ctx context.Context, img *imgmodel.Image, opt Options) (*Result, error) {
	return EncodeParallelContext(ctx, img, opt, 1)
}

// Finish performs everything downstream of Tier-1 — PCRD rate
// allocation, Tier-2 packet assembly, and codestream framing — given
// the coded blocks. The sequential encoder and the Cell-parallel
// encoder both call this, which is what makes their outputs
// byte-identical by construction.
func Finish(img *imgmodel.Image, opt Options, jobs []BlockJob, blocks []*t1.Block) *Result {
	return FinishRD(img, opt, jobs, blocks, nil, 1)
}

// FinishRD is Finish with two escape hatches for the parallel encoders:
// a pre-built R-D ladder set (rd[i] for blocks[i]; nil means build it
// here) whose hulls may already have been computed inside the Tier-1
// block jobs, and a worker count for the PCRD truncation scans. The
// result is byte-identical to Finish for every combination — hulls and
// selections are deterministic functions of the ladders.
func FinishRD(img *imgmodel.Image, opt Options, jobs []BlockJob, blocks []*t1.Block, rd []rate.BlockRD, workers int) *Result {
	return finishRD(obs.Active(), img, opt, jobs, blocks, rd, workers)
}

// finishRD is FinishRD recording against an explicit recorder: the
// pipelined entry points pass the operation recorder they resolved
// from the context, the public wrappers the ambient one.
func finishRD(rec *obs.Recorder, img *imgmodel.Image, opt Options, jobs []BlockJob, blocks []*t1.Block, rd []rate.BlockRD, workers int) *Result {
	opt = opt.WithDefaults(img.W, img.H)
	w, h := img.W, img.H
	ncomp := len(img.Comps)
	mode := opt.Mode()

	// The finish stages — PCRD rate control, Tier-2 assembly, framing —
	// run on this coordinator lane; in the Amdahl report they are the
	// sequential tail the paper measures in Table 2.
	ln := rec.Acquire()
	defer ln.Release()

	build := func(keeps [][]int) ([]byte, []byte) {
		sp := ln.Begin(obs.StageT2, 0, 0)
		body, mb := AssemblePackets(w, h, ncomp, opt, jobs, blocks, keeps, nil)
		sp.End()
		head := &codestream.Header{
			W: w, H: h, NComp: ncomp, Depth: img.Depth,
			Levels: opt.Levels, CBW: opt.CBW, CBH: opt.CBH,
			Layers: len(keeps), Progression: int(opt.Progression),
			SOPMarkers: opt.Resilience,
			Lossless:   opt.Lossless, UseMCT: ncomp == 3,
			TermAll: mode.Base() == t1.ModeTermAll, SegSym: mode.SegSym(),
			HT: opt.HT, BaseDelta: opt.BaseDelta, Mb: mb,
		}
		sp = ln.Begin(obs.StageFrame, 0, 0)
		data := codestream.Encode(head, body)
		sp.End()
		return data, body
	}

	rates := opt.layerRates()
	keeps := [][]int{FullKeep(blocks)}
	constrained := !opt.Lossless && rates != nil
	if constrained {
		if rd == nil {
			sp := ln.Begin(obs.StageHull, 0, 0)
			rd = BuildLadders(blocks)
			sp.End()
		}
		// The ladders (and their cached hulls) persist across the
		// overhead-retry loop, so hulls are computed at most once per
		// block per encode.
		sp := ln.Begin(obs.StageRate, 0, 0)
		keeps = allocateLayersRD(rec, rd, img, opt, rates, 0, workers)
		sp.End()
	}
	data, body := build(keeps)
	if constrained {
		// Header sizes are only known after assembly; if the initial
		// overhead estimate was short, shave the body budget and retry.
		target := int(rates[len(rates)-1] * float64(w*h*ncomp*img.Depth/8))
		retry := int32(1)
		for extra := 16; len(data) > target && extra < target; extra *= 2 {
			sp := ln.Begin(obs.StageRate, 0, retry)
			keeps = allocateLayersRD(rec, rd, img, opt, rates, len(data)-target+extra, workers)
			sp.End()
			retry++
			data, body = build(keeps)
		}
	}

	keep := keeps[len(keeps)-1]
	res := &Result{Data: data, Jobs: jobs, Blocks: blocks, Keep: keep, LayerKeep: keeps}
	res.Stats = buildStats(img, jobs, blocks, keep, len(data)-len(body), len(body))
	return res
}

// layerRates returns the cumulative per-layer rate targets, or nil when
// nothing constrains the stream.
func (o Options) layerRates() []float64 {
	if o.Lossless {
		return nil
	}
	if len(o.LayerRates) > 0 {
		return o.LayerRates
	}
	if o.Rate > 0 {
		return []float64{o.Rate}
	}
	return nil
}

// FullKeep keeps every pass of every block (lossless / no rate target).
func FullKeep(blocks []*t1.Block) []int {
	keep := make([]int, len(blocks))
	for i, b := range blocks {
		keep[i] = len(b.Passes)
	}
	return keep
}

// AllocatePasses runs PCRD-opt against the byte budget implied by
// opt.Rate, reserving an estimate for headers plus any extra deficit a
// previous assembly round measured.
func AllocatePasses(blocks []*t1.Block, jobs []BlockJob, img *imgmodel.Image, opt Options, extraOverhead int) []int {
	keeps := AllocateLayers(blocks, jobs, img, opt, []float64{opt.Rate}, extraOverhead)
	return keeps[0]
}

// LadderOf builds the rate-distortion ladder of one coded block:
// cumulative segment bytes and cumulative distortion reduction after
// each pass. The hull is left uncomputed; call ComputeHull (cheap,
// block-local) to fill it — the parallel pipelines do so inside the
// Tier-1 block job itself, moving the hull sweep off the sequential
// rate-control tail.
func LadderOf(b *t1.Block) rate.BlockRD {
	var rd rate.BlockRD
	if n := len(b.Passes); n > 0 {
		rd.Rates = make([]int, 0, n)
		rd.Dists = make([]float64, 0, n)
	}
	dist := 0.0
	for _, p := range b.Passes {
		dist += p.DistDelta
		rd.Rates = append(rd.Rates, p.CumLen)
		rd.Dists = append(rd.Dists, dist)
	}
	return rd
}

// BuildLadders builds every block's R-D ladder sequentially.
func BuildLadders(blocks []*t1.Block) []rate.BlockRD {
	rd := make([]rate.BlockRD, len(blocks))
	for i, b := range blocks {
		rd[i] = LadderOf(b)
	}
	return rd
}

// AllocateLayers runs PCRD-opt once per quality layer against the
// cumulative rate targets, returning per-layer cumulative pass counts
// (monotone per block, as layer l extends layer l-1).
func AllocateLayers(blocks []*t1.Block, jobs []BlockJob, img *imgmodel.Image, opt Options, cumRates []float64, extraOverhead int) [][]int {
	return allocateLayersRD(obs.Active(), BuildLadders(blocks), img, opt, cumRates, extraOverhead, 1)
}

// allocateLayersRD is the ladder-level core of AllocateLayers. The
// ladders' hulls are computed on first use (possibly already cached by
// the Tier-1 jobs) and reused across layers and overhead retries; the
// per-layer truncation search fans out over `workers`. Selections are
// identical for every worker count and hull provenance.
func allocateLayersRD(rec *obs.Recorder, rd []rate.BlockRD, img *imgmodel.Image, opt Options, cumRates []float64, extraOverhead, workers int) [][]int {
	raw := img.W * img.H * len(img.Comps) * img.Depth / 8
	final := cumRates[len(cumRates)-1]
	keeps := make([][]int, len(cumRates))
	var prev []int
	for l, r := range cumRates {
		if r <= 0 { // unconstrained final layer: keep everything
			full := make([]int, len(rd))
			for i := range rd {
				full[i] = len(rd[i].Rates)
			}
			keeps[l] = full
		} else {
			overhead := 128 + 3*len(rd)*(l+1)/len(cumRates)
			if final > 0 {
				overhead += int(float64(extraOverhead) * r / final)
			} else {
				overhead += extraOverhead
			}
			budget := int(r*float64(raw)) - overhead
			keeps[l] = rate.AllocateParallelObs(rec, rd, budget, workers)
		}
		// Layers are embedded: each extends the previous selection.
		if prev != nil {
			for i := range keeps[l] {
				if keeps[l][i] < prev[i] {
					keeps[l][i] = prev[i]
				}
			}
		}
		prev = keeps[l]
	}
	return keeps
}

// ComputeMb returns the per-component, per-band M_b table (maximum
// coded bit planes) for a block set.
func ComputeMb(ncomp, nbands int, jobs []BlockJob, blocks []*t1.Block) [][]int {
	mb := make([][]int, ncomp)
	for c := range mb {
		mb[c] = make([]int, nbands)
		for b := range mb[c] {
			mb[c][b] = 1
		}
	}
	for i, j := range jobs {
		if blocks[i].NumBPS > mb[j.Comp][j.BandIdx] {
			mb[j.Comp][j.BandIdx] = blocks[i].NumBPS
		}
	}
	return mb
}

// MergeMb folds b into a element-wise (maximum), for the global M_b
// table of a tiled stream.
func MergeMb(a, b [][]int) [][]int {
	if a == nil {
		out := make([][]int, len(b))
		for i := range b {
			out[i] = append([]int(nil), b[i]...)
		}
		return out
	}
	for c := range a {
		for i := range a[c] {
			if b[c][i] > a[c][i] {
				a[c][i] = b[c][i]
			}
		}
	}
	return a
}

// AssemblePackets builds the packet body for one tile in progression
// order and returns the M_b table used. keeps holds one cumulative
// pass selection per quality layer; mbIn, when non-nil, supplies a
// precomputed (global) M_b table — required for multi-tile streams,
// whose header carries a single table.
func AssemblePackets(w, h, ncomp int, opt Options, jobs []BlockJob, blocks []*t1.Block, keeps [][]int, mbIn [][]int) ([]byte, [][]int) {
	bands := dwt.Layout(w, h, opt.Levels)
	nlayers := len(keeps)
	finalKeep := keeps[nlayers-1]
	mb := mbIn
	if mb == nil {
		mb = ComputeMb(ncomp, len(bands), jobs, blocks)
	}

	// Group jobs by (comp, band) for precinct filling.
	type key struct{ c, b int }
	byBand := map[key][]int{}
	for i, j := range jobs {
		k := key{j.Comp, j.BandIdx}
		byBand[k] = append(byBand[k], i)
	}

	// HT blocks also carry per-pass segment lengths in the packet
	// headers: the cleanup/SigProp/MagRef byte streams are separately
	// terminated by construction, exactly like TermAll MQ segments.
	style := t2.SegSingle
	if m := opt.Mode(); m.Base() == t1.ModeTermAll || m.IsHT() {
		style = t2.SegTermAll
	}

	// Persistent precinct state per (comp, band) across layers.
	precincts := map[key]*t2.Precinct{}
	for c := 0; c < ncomp; c++ {
		for bi, band := range bands {
			gw := (band.W + opt.CBW - 1) / opt.CBW
			gh := (band.H + opt.CBH - 1) / opt.CBH
			p := t2.NewPrecinct(gw, gh)
			for _, ji := range byBand[key{c, bi}] {
				j, blk := jobs[ji], blocks[ji]
				if blk.NumBPS == 0 || finalKeep[ji] == 0 {
					continue
				}
				for l := 0; l < nlayers; l++ {
					if keeps[l][ji] > 0 {
						p.FirstIncl[j.GY*gw+j.GX] = int32(l)
						break
					}
				}
				p.ZeroBPs[j.GY*gw+j.GX] = int32(mb[c][bi] - blk.NumBPS)
			}
			precincts[key{c, bi}] = p
		}
	}

	var body []byte
	pktSeq := 0
	for _, lrc := range PacketOrder(opt.Progression, nlayers, opt.Levels, ncomp) {
		l, r, c := lrc[0], lrc[1], lrc[2]
		var pkt []*t2.Precinct
		for _, bi := range ResBands(opt.Levels, r) {
			band := bands[bi]
			p := precincts[key{c, bi}]
			for i := range p.Blocks {
				p.Blocks[i] = nil
			}
			gw := (band.W + opt.CBW - 1) / opt.CBW
			for _, ji := range byBand[key{c, bi}] {
				j, blk := jobs[ji], blocks[ji]
				kPrev := 0
				if l > 0 {
					kPrev = keeps[l-1][ji]
				}
				k := keeps[l][ji]
				if k == kPrev || blk.NumBPS == 0 {
					continue
				}
				contrib := &t2.BlockContrib{
					NumPasses: k - kPrev,
					ZeroBP:    mb[c][bi] - blk.NumBPS,
				}
				off := 0
				if kPrev > 0 {
					off = blk.Passes[kPrev-1].CumLen
				}
				contrib.Data = blk.Data[off:blk.Passes[k-1].CumLen]
				if style == t2.SegTermAll {
					for _, ps := range blk.Passes[kPrev:k] {
						contrib.Segments = append(contrib.Segments, t2.Segment{Passes: 1, Len: ps.SegLen})
					}
				} else {
					contrib.Segments = []t2.Segment{{Passes: k - kPrev, Len: len(contrib.Data)}}
				}
				p.Blocks[j.GY*gw+j.GX] = contrib
			}
			pkt = append(pkt, p)
		}
		if opt.Resilience {
			body = appendSOP(body, pktSeq)
			pktSeq++
		}
		body = append(body, t2.EncodePacketEPH(pkt, l, opt.Resilience)...)
	}
	return body, mb
}

// appendSOP emits the 6-byte start-of-packet marker segment.
func appendSOP(body []byte, seq int) []byte {
	return append(body, 0xFF, 0x91, 0x00, 0x04, byte(seq>>8), byte(seq))
}

func buildStats(img *imgmodel.Image, jobs []BlockJob, blocks []*t1.Block, keep []int, headerBytes, bodyBytes int) Stats {
	s := Stats{
		W: img.W, H: img.H, NComp: len(img.Comps),
		Samples:     img.W * img.H * len(img.Comps),
		HeaderBytes: headerBytes,
		BodyBytes:   bodyBytes,
	}
	for i, b := range blocks {
		if b.NumBPS > 0 {
			s.Blocks++
		}
		s.T1Scanned += int64(b.TotalScanned())
		s.T1Coded += int64(b.TotalCoded())
		s.TotalPasses += len(b.Passes)
		s.KeptPasses += keep[i]
	}
	return s
}
