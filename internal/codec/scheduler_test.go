package codec

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"j2kcell/internal/faults"
	"j2kcell/internal/imgmodel"
	"j2kcell/internal/obs"
	"j2kcell/internal/workload"
)

// waitGoroutinesBelow waits for exiting goroutines (pool workers after
// the last lane closes, canceled op workers) to drain, failing if the
// count stays above limit. Unlike goroutineCount it waits for a
// decrease, since scheduler workers exit asynchronously after Close.
func waitGoroutinesBelow(t *testing.T, limit int, what string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	n := runtime.NumGoroutine()
	for n > limit && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > limit {
		t.Errorf("%s: %d goroutines alive, want <= %d", what, n, limit)
	}
}

// TestSchedulerByteIdentityAcrossPoolWidths pins the DESIGN.md §12
// proof obligation: per-operation codestreams are pool-width
// independent. The same encode through shared pools of width 1, 2, and
// 8 — and through the per-call path — must be byte-identical to the
// sequential encoder, and decodes pixel-identical, under both
// scheduling policies.
func TestSchedulerByteIdentityAcrossPoolWidths(t *testing.T) {
	img := workload.Dial(160, 160, 21, 4)
	for _, opt := range []Options{
		{Lossless: true},
		{Rate: 0.25},
		{Lossless: true, HT: true},
		{Lossless: true, TileW: 96, TileH: 96},
	} {
		ref, err := Encode(img, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []SchedPolicy{SchedRoundRobin, SchedWeighted} {
			for _, width := range []int{1, 2, 8} {
				s := NewScheduler(SchedConfig{Workers: width, Policy: pol})
				ctx := WithScheduler(context.Background(), s)
				res, err := EncodeParallelContext(ctx, img, opt, 4)
				if err != nil {
					t.Fatalf("pool width %d policy %d: %v", width, pol, err)
				}
				if !bytes.Equal(res.Data, ref.Data) {
					t.Fatalf("opt %+v: codestream differs at pool width %d policy %d", opt, width, pol)
				}
				dec, err := DecodeWithContext(ctx, ref.Data, DecodeOptions{Workers: 4})
				if err != nil {
					t.Fatalf("decode pool width %d: %v", width, err)
				}
				seq, err := Decode(ref.Data)
				if err != nil {
					t.Fatal(err)
				}
				if !imagesEqual(dec, seq) {
					t.Fatalf("opt %+v: decode differs at pool width %d policy %d", opt, width, pol)
				}
			}
		}
		perCall, err := EncodeParallelContext(WithPerCallPool(context.Background()), img, opt, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(perCall.Data, ref.Data) {
			t.Fatalf("opt %+v: per-call codestream differs from sequential", opt)
		}
	}
}

// TestSchedulerConcurrentOpsByteIdentity runs many concurrent encodes
// and decodes on one narrow shared pool and requires every operation's
// output to match its solo reference — cross-lane execution by pool
// workers must never leak state between operations.
func TestSchedulerConcurrentOpsByteIdentity(t *testing.T) {
	s := NewScheduler(SchedConfig{Workers: 2})
	ctx := WithScheduler(context.Background(), s)

	opts := []Options{{Lossless: true}, {Rate: 0.3}, {Lossless: true, HT: true}, {Lossless: true, TileW: 64, TileH: 64}}
	var refs [4][]byte
	for i, opt := range opts {
		img := workload.Dial(128, 128, uint32(i+5), 4)
		ref, err := Encode(img, opt)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref.Data
	}

	var wg sync.WaitGroup
	errs := make([]error, 16)
	for k := 0; k < 16; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			i := k % 4
			img := workload.Dial(128, 128, uint32(i+5), 4)
			res, err := EncodeParallelContext(ctx, img, opts[i], 4)
			if err != nil {
				errs[k] = err
				return
			}
			if !bytes.Equal(res.Data, refs[i]) {
				errs[k] = errors.New("codestream differs under concurrent shared scheduling")
			}
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("op %d: %v", k, err)
		}
	}
}

// TestSchedulerTwoOpFaultIsolation is the PR 5 fault matrix made
// pool-wide: op A is canceled or hits an injected fault/panic while op
// B shares the same scheduler; B must complete byte-identical, A must
// fail with its own error, and no goroutines may leak (the concurrent
// two-op variant the CI race job runs).
func TestSchedulerTwoOpFaultIsolation(t *testing.T) {
	imgA := workload.Dial(192, 192, 77, 4)
	imgB := workload.Dial(128, 128, 13, 4)
	optB := Options{Lossless: true}
	refB, err := Encode(imgB, optB)
	if err != nil {
		t.Fatal(err)
	}

	// Each variant describes how op A is killed. The HT fault variants
	// arm the t1ht stage, which only op A (HT mode) enters, so the
	// injection deterministically targets A even though B runs
	// concurrently.
	variants := []struct {
		name string
		optA Options
		arm  func()
		kill func(cancel context.CancelFunc)
		want func(error) bool
	}{
		{
			name: "cancel",
			optA: Options{Lossless: true},
			kill: func(cancel context.CancelFunc) { time.Sleep(2 * time.Millisecond); cancel() },
			want: func(err error) bool { return errors.Is(err, context.Canceled) },
		},
		{
			name: "panic",
			optA: Options{Lossless: true, HT: true},
			arm:  func() { faults.Arm("t1ht", 2, faults.Panic) },
			want: func(err error) bool { var fe *FaultError; return errors.As(err, &fe) },
		},
		{
			name: "error",
			optA: Options{Lossless: true, HT: true},
			arm:  func() { faults.Arm("t1ht", 2, faults.Error) },
			want: func(err error) bool { var fe *FaultError; return errors.As(err, &fe) },
		},
	}

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			before := goroutineCount()
			s := NewScheduler(SchedConfig{Workers: 2})
			base := WithScheduler(context.Background(), s)
			if v.arm != nil {
				v.arm()
				defer faults.Disarm()
			}

			ctxA, cancelA := context.WithCancel(base)
			defer cancelA()
			var errA error
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, errA = EncodeParallelContext(ctxA, imgA, v.optA, 4)
			}()
			if v.kill != nil {
				v.kill(cancelA)
			}

			// Op B runs while A is dying; it must be untouched.
			resB, errB := EncodeParallelContext(base, imgB, optB, 4)
			wg.Wait()
			if errB != nil {
				t.Fatalf("sibling op failed: %v", errB)
			}
			if !bytes.Equal(resB.Data, refB.Data) {
				t.Fatal("sibling op output changed while op A was killed")
			}
			if errA == nil {
				// Cancellation can race completion on a fast box; a clean
				// finish is acceptable only for the cancel variant.
				if v.arm != nil {
					t.Fatal("op A finished despite armed fault")
				}
			} else if !v.want(errA) {
				t.Fatalf("op A failed with %v, want variant-typed error", errA)
			}
			// All lanes closed => pool workers exit; nothing may leak.
			waitGoroutinesBelow(t, before+2, "after two-op "+v.name)

			// The pool must still serve new operations cleanly.
			resB2, err := EncodeParallelContext(base, imgB, optB, 4)
			if err != nil || !bytes.Equal(resB2.Data, refB.Data) {
				t.Fatalf("pool wedged after %s: err=%v", v.name, err)
			}
		})
	}
}

// TestSchedulerFairnessUnderLoad pins the starvation bound: a long
// archival encode must not starve thumbnail operations sharing the
// pool. Thumbnail latencies are read back from their own operation
// recorders (the per-op SLO observations), and the p99 must stay well
// below the archival encode's wall time — a starved thumbnail would
// wait for the whole archival drain.
func TestSchedulerFairnessUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based fairness bound")
	}
	s := NewScheduler(SchedConfig{Workers: 2})
	base := WithScheduler(context.Background(), s)

	big := workload.Dial(512, 512, 3, 4)
	thumb := workload.Dial(64, 64, 4, 4)

	var archDur atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		start := time.Now()
		_, err := EncodeParallelContext(base, big, Options{Lossless: true, TileW: 128, TileH: 128}, 4)
		archDur.Store(int64(time.Since(start)))
		if err != nil {
			t.Error(err)
		}
	}()

	// Let the archival lane open and occupy the pool first.
	time.Sleep(5 * time.Millisecond)
	var thumbs []time.Duration
	for i := 0; i < 12; i++ {
		ctx, op := obs.WithOperation(base, "thumb")
		_, err := EncodeParallelContext(ctx, thumb, Options{Rate: 0.2}, 4)
		d := op.Duration()
		op.Finish()
		if err != nil {
			t.Fatal(err)
		}
		// The op recorder must have observed exactly this operation.
		if got := op.Recorder().OpCount(obs.ClassOf(false, true, false, false)); got != 1 {
			t.Fatalf("thumbnail op recorder counted %d ops, want 1", got)
		}
		thumbs = append(thumbs, d)
		if archDur.Load() != 0 && i >= 3 {
			break // archival finished; enough contended samples
		}
	}
	wg.Wait()

	sort.Slice(thumbs, func(i, j int) bool { return thumbs[i] < thumbs[j] })
	p99 := thumbs[len(thumbs)*99/100]
	arch := time.Duration(archDur.Load())
	// A starved thumbnail would block for the archival's remaining
	// drain (hundreds of ms); a fairly-scheduled one finishes orders of
	// magnitude sooner. The /2 bound is deliberately loose for CI noise.
	if p99 >= arch/2 {
		t.Errorf("thumbnail p99 %v not bounded under archival load (archival took %v)", p99, arch)
	}
}

// TestSchedulerAdmissionBackpressure pins the admission queue: slots
// fill, the queue bounds, the overflow rejects with ErrOverloaded, a
// queued operation records its wait in the admit-stage histogram, and
// cancellation while queued returns ctx.Err() without losing a slot.
func TestSchedulerAdmissionBackpressure(t *testing.T) {
	s := NewScheduler(SchedConfig{Workers: 2, MaxActive: 1, MaxQueue: 1})
	ctx := WithScheduler(context.Background(), s)
	img := workload.Dial(64, 64, 8, 4)

	// Hold the only active slot.
	release1, err := s.Admit(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the queue with a waiter.
	queued := make(chan error, 1)
	go func() {
		release2, err := s.Admit(context.Background(), nil)
		if err == nil {
			defer release2()
		}
		queued <- err
	}()
	// Wait until the waiter is actually parked in the queue.
	for i := 0; i < 1000 && s.Stats().QueueDepth == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.Stats().QueueDepth != 1 {
		t.Fatalf("queue depth %d, want 1", s.Stats().QueueDepth)
	}

	// Queue full: a real encode must shed with ErrOverloaded.
	if _, err := EncodeParallelContext(ctx, img, Options{Lossless: true}, 4); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	// And a decode entry point sheds the same way.
	ref, err := Encode(img, Options{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeWithContext(ctx, ref.Data, DecodeOptions{Workers: 4}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("decode got %v, want ErrOverloaded", err)
	}
	if got := s.Stats().AdmitRejects; got < 2 {
		t.Fatalf("admit rejects %d, want >= 2", got)
	}

	// Release the active slot: the first waiter gets it.
	release1()
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter got %v after release", err)
	}

	// Re-occupy the only active slot for the remaining checks.
	release3, err := s.Admit(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Cancellation while queued: returns ctx.Err, frees the queue slot.
	cctx, cancel := context.WithCancel(context.Background())
	cancelErr := make(chan error, 1)
	go func() {
		_, err := s.Admit(cctx, nil)
		cancelErr <- err
	}()
	for i := 0; i < 1000 && s.Stats().QueueDepth == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-cancelErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued+canceled Admit returned %v, want context.Canceled", err)
	}
	if got := s.Stats().QueueDepth; got != 0 {
		t.Fatalf("canceled waiter left queue depth %d, want 0", got)
	}
	// Queue-wait lands in the per-op SLO surface: run an op that has to
	// queue behind the held slot and check its recorder's admit-stage
	// histogram observed the wait.
	opCtx, op := obs.WithOperation(ctx, "queued-encode")
	done := make(chan error, 1)
	go func() {
		_, err := EncodeParallelContext(opCtx, img, Options{Lossless: true}, 4)
		done <- err
	}()
	for i := 0; i < 1000 && s.Stats().QueueDepth == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	release3()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	op.Finish()
	rec := op.Recorder()
	if got := rec.Counter(obs.CtrSchedAdmitWaits); got != 1 {
		t.Errorf("sched_admit_waits = %d, want 1", got)
	}
	if got := rec.Hist(obs.StageAdmit).Count(); got != 1 {
		t.Errorf("admit-stage histogram observed %d waits, want 1", got)
	}
}

// TestSchedulerGoroutineBound pins the whole point of the refactor:
// c concurrent operations at `workers` width hold the process at
// O(GOMAXPROCS + c) goroutines on the shared pool, not O(c×workers).
func TestSchedulerGoroutineBound(t *testing.T) {
	const (
		concOps   = 8
		opWorkers = 8
		poolWidth = 2
	)
	before := goroutineCount()
	s := NewScheduler(SchedConfig{Workers: poolWidth})
	ctx := WithScheduler(context.Background(), s)
	img := workload.Dial(160, 160, 31, 4)

	stop := make(chan struct{})
	var hwm atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				if g := int64(runtime.NumGoroutine()); g > hwm.Load() {
					hwm.Store(g)
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for k := 0; k < concOps; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := EncodeParallelContext(ctx, img, Options{Lossless: true}, opWorkers); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	close(stop)

	// Budget: baseline + one driver per op + the pool + sampler slack.
	limit := int64(before + concOps + poolWidth + 6)
	if got := hwm.Load(); got > limit {
		t.Errorf("goroutine high-water %d exceeds shared-pool bound %d (per-call would be ~%d)",
			got, limit, before+concOps*opWorkers)
	}
	waitGoroutinesBelow(t, before+2, "after bounded run")
}

// imagesEqual compares two decoded images sample-exactly.
func imagesEqual(a, b *imgmodel.Image) bool {
	if a.W != b.W || a.H != b.H || len(a.Comps) != len(b.Comps) {
		return false
	}
	for c := range a.Comps {
		pa, pb := a.Comps[c], b.Comps[c]
		for y := 0; y < pa.H; y++ {
			ra := pa.Data[y*pa.Stride : y*pa.Stride+pa.W]
			rb := pb.Data[y*pb.Stride : y*pb.Stride+pb.W]
			for x, v := range ra {
				if rb[x] != v {
					return false
				}
			}
		}
	}
	return true
}
