package codec

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"j2kcell/internal/workload"
)

// Golden stream digests: the encoder is fully deterministic, so any
// change to these hashes means the emitted format changed. If a change
// is intentional (e.g. a codestream extension), run the test with -v:
// it logs the new digests to paste in here.
var goldenStreams = map[string]string{
	"lossless-128":  "39bf683f8509187f6b24a14e81997912047990d47e2eb0bd6a68ab9d3593b42e",
	"lossy-0.1-128": "2fb1f2e55161201fccef7da4c7de9630db012cf42a1ce09a6b5ffa29177f9b69",
	"layers-128":    "40784986a01d266b6e66225ac4b872fc433556589a8d9640773e73251d7d0845",
	"tiled-64-128":  "dc994f16538ca8b1067d8646bf7e0abaf2b58a3700a0908c50341eb03c14a4c9",
	"rlcp-128":      "066ff6014518541cdf0debeec9c8d83c445317f3999ba1b64ee6bc4e87175346",
	"grayscale-16b": "0d290ea86d3cbfb8402f1d2ddd8c1c5c492146c0c2d7b96c3838e77b2cb8bda4",
}

func goldenImage() map[string]func() (*Result, error) {
	rgb := workload.Dial(128, 128, 777, 4)
	gray := workload.Dial(64, 64, 778, 4)
	g16 := gray.Clone()
	g16.Depth = 16
	g16.Comps = g16.Comps[:1]
	for y := 0; y < g16.H; y++ {
		row := g16.Comps[0].Row(y)
		for x := range row {
			row[x] <<= 8
		}
	}
	return map[string]func() (*Result, error){
		"lossless-128":  func() (*Result, error) { return Encode(rgb, Options{Lossless: true}) },
		"lossy-0.1-128": func() (*Result, error) { return Encode(rgb, Options{Rate: 0.1}) },
		"layers-128": func() (*Result, error) {
			return Encode(rgb, Options{LayerRates: []float64{0.05, 0.2}})
		},
		"tiled-64-128": func() (*Result, error) {
			return Encode(rgb, Options{Lossless: true, TileW: 64, TileH: 64})
		},
		"rlcp-128": func() (*Result, error) {
			return Encode(rgb, Options{Rate: 0.2, Progression: RLCP})
		},
		"grayscale-16b": func() (*Result, error) { return Encode(g16, Options{Lossless: true}) },
	}
}

// TestGoldenStreams pins the emitted byte streams. Because the decoder
// round-trips are verified elsewhere, this test exists purely to make
// format drift loud.
func TestGoldenStreams(t *testing.T) {
	for name, enc := range goldenImage() {
		res, err := enc()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sum := sha256.Sum256(res.Data)
		got := hex.EncodeToString(sum[:])
		want, ok := goldenStreams[name]
		if !ok {
			t.Fatalf("%s: no golden digest; add %q", name, got)
		}
		if got != want {
			t.Errorf("%s: stream digest changed:\n  got  %s\n  want %s\n(intentional format changes must update goldenStreams)", name, got, want)
		}
	}
}
