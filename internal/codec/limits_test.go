package codec

import (
	"errors"
	"testing"

	"j2kcell/internal/codestream"
	"j2kcell/internal/workload"
)

// bombStream builds a tiny, fully well-formed codestream whose SIZ
// declares a 2^20 × 2^20 image — a terabyte-scale pixel budget in a
// few hundred bytes.
func bombStream() []byte {
	mb := make([]int, 16)
	for i := range mb {
		mb[i] = 8
	}
	head := &codestream.Header{
		W: 1 << 20, H: 1 << 20, NComp: 1, Depth: 8,
		Levels: 5, CBW: 64, CBH: 64, Layers: 1,
		Lossless: true, Mb: [][]int{mb},
	}
	return codestream.Encode(head, nil)
}

// TestDecompressionBombRejectedBeforeAllocation pins the core defense:
// the gigapixel header dies in SIZ parsing with a typed *FormatError,
// before any plane or tile table is sized from it — measured by the
// allocation count of the failing decode staying trivial.
func TestDecompressionBombRejectedBeforeAllocation(t *testing.T) {
	data := bombStream()
	_, err := Decode(data)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v (%T), want *FormatError", err, err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		_, _ = Decode(data)
	})
	if allocs > 100 {
		t.Errorf("rejecting a bomb header cost %.0f allocations — limit check runs too late", allocs)
	}
}

// TestLimitsAxes exercises each Limits field against streams that
// violate only that axis.
func TestLimitsAxes(t *testing.T) {
	img := workload.Dial(64, 64, 3, 4)
	res, err := Encode(img, Options{Lossless: true, Levels: 5})
	if err != nil {
		t.Fatal(err)
	}
	tiledRes, err := Encode(img, Options{Lossless: true, TileW: 16, TileH: 16})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		lim  Limits
		data []byte
	}{
		{"width", Limits{MaxWidth: 32}, res.Data},
		{"height", Limits{MaxHeight: 32}, res.Data},
		{"components", Limits{MaxComponents: 2}, res.Data},
		{"levels", Limits{MaxLevels: 2}, res.Data},
		{"pixels", Limits{MaxPixels: 1000}, res.Data},
		{"tiles", Limits{MaxTiles: 8}, tiledRes.Data}, // 4×4 grid = 16 tiles
	}
	for _, tc := range cases {
		lim := tc.lim
		_, err := DecodeWith(tc.data, DecodeOptions{Limits: &lim})
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: got %v (%T), want *FormatError", tc.name, err, err)
		}
	}
	// The same streams decode fine under the defaults.
	if _, err := Decode(res.Data); err != nil {
		t.Errorf("default limits rejected a legitimate stream: %v", err)
	}
	if _, err := Decode(tiledRes.Data); err != nil {
		t.Errorf("default limits rejected a legitimate tiled stream: %v", err)
	}
}

// TestZeroLimitsDisableChecking pins the documented escape hatch: a
// zero Limits struct turns header limiting off (the stream then stands
// or falls on its actual contents).
func TestZeroLimitsDisableChecking(t *testing.T) {
	img := workload.Dial(48, 48, 1, 4)
	res, err := Encode(img, Options{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	var off Limits
	tight := Limits{MaxPixels: 10}
	if _, err := DecodeWith(res.Data, DecodeOptions{Limits: &tight}); err == nil {
		t.Fatal("tight limit accepted the stream")
	}
	if _, err := DecodeWith(res.Data, DecodeOptions{Limits: &off}); err != nil {
		t.Fatalf("zero Limits still rejected the stream: %v", err)
	}
}
