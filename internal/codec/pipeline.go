package codec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"j2kcell/internal/decomp"
	"j2kcell/internal/dwt"
	"j2kcell/internal/faults"
	"j2kcell/internal/imgmodel"
	"j2kcell/internal/mct"
	"j2kcell/internal/obs"
	"j2kcell/internal/quant"
	"j2kcell/internal/rate"
	"j2kcell/internal/simd"
	"j2kcell/internal/t1"
)

// Pipeline runs the native encode path as explicit stages over a shared
// worker pool, the Go analogue of the paper's whole-pipeline
// parallelization (Section 3):
//
//	merged level shift + MCT   — row stripes
//	multi-level DWT            — vertical: cache-line column groups
//	                             (decomp.Partition, §3.2); horizontal:
//	                             row stripes; barrier per level
//	quantization + Tier-1      — one fused block job per code block
//	                             through the shared work queue (§3.3)
//
// Every stage drains a single atomically-claimed job queue, so work
// distribution is self-balancing regardless of content. All stage
// splits are elementwise-independent (columns for vertical lifting,
// rows for horizontal filtering and MCT, disjoint block regions for
// quantization and Tier-1), so the emitted codestream is byte-identical
// to the sequential encoder for every worker count — the DESIGN.md §5
// invariant. Stripe, auxiliary, and plane buffers are recycled through
// sync.Pool arenas, keeping steady-state encode allocations
// near-constant.
//
// A Pipeline additionally carries the fault-containment and
// cancellation state of one encode or decode: a context checked
// between job claims, and a first-error latch filled by the per-job
// recover wrapper. Create one Pipeline per encode/decode; it is safe
// for its own worker goroutines but not for reuse across operations.
type Pipeline struct {
	workers int
	ctx     context.Context
	done    <-chan struct{} // ctx.Done(), cached (nil for Background)
	rec     *obs.Recorder   // resolved once: ctx op recorder, else ambient, else nil

	// Shared-scheduler binding (DESIGN.md §12): when sched is non-nil,
	// multi-worker stages are submitted to the process-wide pool on this
	// operation's lane instead of spawning private goroutines. lane is
	// opened lazily by the first such stage and closed by Close.
	sched *Scheduler
	lane  *schedLane

	aborted atomic.Bool // fast stop flag checked between job claims
	mu      sync.Mutex
	err     error // first stage fault or injected error
}

// NewPipeline returns a pipeline that runs its stages on up to
// `workers` goroutines (minimum 1; 1 means run inline), without
// cancellation (context.Background).
func NewPipeline(workers int) *Pipeline {
	return NewPipelineContext(context.Background(), workers)
}

// NewPipelineContext is NewPipeline bound to a context: the work-queue
// drain loops check ctx between jobs, so cancellation or a deadline
// stops the encode/decode within a bounded number of outstanding jobs
// (at most one per worker) and the operation returns ctx.Err().
func NewPipelineContext(ctx context.Context, workers int) *Pipeline {
	if workers < 1 {
		workers = 1
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Resolve the recorder once per operation: the context's per-op
	// recorder (obs.WithOperation) wins, else the ambient one; every
	// stage hook below then pays a plain nil check, not a context walk.
	return &Pipeline{
		workers: workers, ctx: ctx, done: ctx.Done(), rec: obs.Current(ctx),
		sched: schedulerFor(ctx, workers),
	}
}

// Close releases the pipeline's scheduler lane, if one was opened.
// Every function that creates a multi-worker pipeline defers it; a
// pipeline whose stages all ran inline closes as a no-op. Pool workers
// exit once the last lane in the process closes, so idle processes
// hold no scheduler goroutines.
func (p *Pipeline) Close() {
	if p.lane != nil {
		p.sched.closeLane(p.lane)
		p.lane = nil
	}
}

// Workers reports the pool width.
func (p *Pipeline) Workers() int { return p.workers }

// Context returns the context the pipeline was bound to.
func (p *Pipeline) Context() context.Context { return p.ctx }

// Fail records err as the pipeline's failure (first error wins) and
// stops further job claims. Safe from any worker.
func (p *Pipeline) Fail(err error) {
	if err == nil {
		return
	}
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	p.aborted.Store(true)
}

// Err returns the pipeline's failure: the first contained fault or
// injected error if one occurred, else the context's error (so a
// cancelled encode reports context.Canceled / DeadlineExceeded
// unwrapped), else nil.
func (p *Pipeline) Err() error {
	p.mu.Lock()
	err := p.err
	p.mu.Unlock()
	if err != nil {
		return err
	}
	return p.ctx.Err()
}

// clearFault resets the first-error latch and the abort flag so a
// best-effort stage can demote a contained fault to localized damage
// and resume draining. Callers must only invoke it between run calls
// (no workers in flight) — the resilient Tier-1 retry loop does, after
// concealing the faulted block.
func (p *Pipeline) clearFault() {
	p.mu.Lock()
	p.err = nil
	p.mu.Unlock()
	p.aborted.Store(false)
}

// stopped reports whether workers should stop claiming jobs: a stage
// fault was recorded or the context is done. It is the per-claim hot
// check — one atomic load plus a non-blocking channel poll (the poll
// compiles to a nil check for Background contexts).
func (p *Pipeline) stopped() bool {
	if p.aborted.Load() {
		return true
	}
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// job runs one queue job under fault containment: an injected fault
// (faults.Hit) fails the pipeline with its typed error, and a panic
// from the stage body is recovered into a *FaultError carrying the
// stage, worker lane, and job coordinates, counted on the obs
// fault_contained_panics counter. The job never propagates a panic to
// run's worker loop, so the WaitGroup always completes — no hang, no
// goroutine leak.
func (p *Pipeline) job(st obs.Stage, arg int32, lane, i int, fn func(int)) {
	defer func() {
		if r := recover(); r != nil {
			p.rec.Add(obs.CtrFaultPanics, 1)
			p.Fail(asFault(r, st.String(), lane, i, int(arg)))
		}
	}()
	if err := faults.Hit(st.String()); err != nil {
		p.Fail(&FaultError{Stage: st.String(), Lane: lane, Job: i, Arg: int(arg), Err: err})
		return
	}
	fn(i)
}

// stripeRows is the row granularity of the stripe-parallel stages:
// coarse enough to amortize queue claims, fine enough to balance.
const stripeRows = 64

// run drains n jobs through the shared work queue: one atomic cursor
// claimed by up to p.workers goroutines — the paper's load-balancing
// work queue, with the atomic increment standing in for the MFC atomic
// unit. With a single worker (or a single job) it runs inline.
//
// Every job is bracketed by an observability span (stage st, stage
// argument arg — e.g. the DWT level — and the job index) on the claiming
// worker's lane, and each claim is counted per lane; with observability
// disabled the extra work per job is a nil check.
//
// Each claim first checks the pipeline's stop state (contained fault or
// context cancellation), so an aborting drain completes within one
// outstanding job per worker, and every job body runs under the
// containment wrapper (Pipeline.job). run returns the pipeline's error
// so stages can short-circuit; a stopped pipeline drains subsequent
// run calls immediately.
func (p *Pipeline) run(st obs.Stage, arg int32, n int, fn func(i int)) error {
	return p.runCost(st, arg, n, int64(n), fn)
}

// runCost is run with an explicit modeled stage cost (arbitrary units,
// at least n): the shared scheduler's weighted policy uses it to prefer
// lanes with the least remaining work, so stages with strongly uneven
// job sizes (the partitioned Tier-1 decode) should pass their modeled
// total instead of the default job count. Cost never affects which jobs
// run or their order within a claim — only cross-lane preference — so
// it cannot change output.
func (p *Pipeline) runCost(st obs.Stage, arg int32, n int, cost int64, fn func(i int)) error {
	if n <= 0 || p.stopped() {
		return p.Err()
	}
	rec := p.rec
	rec.Add(obs.CtrQueueRuns, 1)
	rec.Add(obs.CtrQueueJobs, int64(n))
	nw := p.workers
	if nw > n {
		nw = n
	}
	if nw <= 1 {
		ln := rec.Acquire()
		for i := 0; i < n && !p.stopped(); i++ {
			ln.Claim()
			sp := ln.Begin(st, arg, int32(i))
			p.job(st, arg, 0, i, fn)
			sp.End()
		}
		ln.Release()
		return p.Err()
	}
	// Shared-pool path (DESIGN.md §12): publish the stage on this
	// operation's lane so pool workers can help drain it; the calling
	// goroutine drains too, so the stage completes even when the pool
	// is saturated elsewhere. Per-call goroutines below remain for
	// unscheduled pipelines (WithPerCallPool, J2K_PERCALL=1).
	if p.sched != nil {
		if p.lane == nil {
			p.lane = p.sched.openLane()
		}
		return p.runShared(st, arg, n, cost, fn)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func(w int) {
			defer wg.Done()
			ln := rec.Acquire()
			defer ln.Release()
			for !p.stopped() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				ln.Claim()
				sp := ln.Begin(st, arg, int32(i))
				p.job(st, arg, w, i, fn)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	return p.Err()
}

// Scratch pools for stripe-sized transients (DWT aux rows, horizontal
// line buffers, per-block quantizer output). Contents are unspecified;
// every user writes before reading.
var (
	i32Pool sync.Pool // *[]int32
	f32Pool sync.Pool // *[]float32
)

func getI32(n int, rec *obs.Recorder) *[]int32 {
	p, _ := i32Pool.Get().(*[]int32)
	if p == nil {
		rec.Add(obs.CtrPoolScratchMiss, 1)
		s := make([]int32, n)
		return &s
	}
	rec.Add(obs.CtrPoolScratchHit, 1)
	if cap(*p) < n {
		*p = make([]int32, n)
	} else {
		*p = (*p)[:n]
	}
	return p
}

func putI32(p *[]int32) { i32Pool.Put(p) }

func getF32(n int, rec *obs.Recorder) *[]float32 {
	p, _ := f32Pool.Get().(*[]float32)
	if p == nil {
		rec.Add(obs.CtrPoolScratchMiss, 1)
		s := make([]float32, n)
		return &s
	}
	rec.Add(obs.CtrPoolScratchHit, 1)
	if cap(*p) < n {
		*p = make([]float32, n)
	} else {
		*p = (*p)[:n]
	}
	return p
}

func putF32(p *[]float32) { f32Pool.Put(p) }

// stripes returns the number of stripeRows-high row stripes covering h.
func stripes(h int) int { return (h + stripeRows - 1) / stripeRows }

// stripeBounds returns the row range of stripe s, clamped to h.
func stripeBounds(s, h int) (int, int) {
	y0 := s * stripeRows
	y1 := y0 + stripeRows
	if y1 > h {
		y1 = h
	}
	return y0, y1
}

// MCTInt is the reversible first stage: copy the components into pooled
// working planes and apply the merged level shift + RCT (or the plain
// shift) stripe-parallel. The returned planes come from the imgmodel
// plane pool; the caller releases them with imgmodel.PutPlane once
// Tier-1 has consumed them.
func (p *Pipeline) MCTInt(img *imgmodel.Image, opt Options) []*imgmodel.Plane {
	w, h := img.W, img.H
	planes := make([]*imgmodel.Plane, len(img.Comps))
	for c := range planes {
		planes[c] = imgmodel.GetPlaneObs(w, h, p.rec)
	}
	useMCT := len(planes) == 3
	p.run(obs.StageMCT, 0, stripes(h), func(s int) {
		y0, y1 := stripeBounds(s, h)
		for c, pl := range planes {
			src := img.Comps[c]
			copy(pl.Data[y0*pl.Stride:y1*pl.Stride], src.Data[y0*src.Stride:y1*src.Stride])
		}
		if useMCT {
			mct.ForwardRCTRows(planes[0].Data, planes[1].Data, planes[2].Data,
				w, planes[0].Stride, y0, y1, img.Depth)
		} else {
			for _, pl := range planes {
				mct.LevelShiftRows(pl.Data, w, pl.Stride, y0, y1, img.Depth)
			}
		}
	})
	return planes
}

// MCTFloat is the irreversible first stage: merged level shift + ICT
// (or shift-to-float) into pooled float planes, stripe-parallel. The
// caller releases the planes with imgmodel.PutFPlane.
func (p *Pipeline) MCTFloat(img *imgmodel.Image, opt Options) []*imgmodel.FPlane {
	w, h := img.W, img.H
	fplanes := make([]*imgmodel.FPlane, len(img.Comps))
	for c := range fplanes {
		fplanes[c] = imgmodel.GetFPlaneObs(w, h, p.rec)
	}
	useMCT := len(fplanes) == 3
	p.run(obs.StageMCT, 0, stripes(h), func(s int) {
		y0, y1 := stripeBounds(s, h)
		if useMCT {
			mct.ForwardICTRows(
				img.Comps[0].Data, img.Comps[1].Data, img.Comps[2].Data,
				fplanes[0].Data, fplanes[1].Data, fplanes[2].Data,
				w, img.Comps[0].Stride, fplanes[0].Stride, y0, y1, img.Depth)
		} else {
			for c := range fplanes {
				mct.ShiftToFloatRows(img.Comps[c].Data, fplanes[c].Data,
					w, img.Comps[c].Stride, fplanes[c].Stride, y0, y1, img.Depth)
			}
		}
	})
	return fplanes
}

// dwtLevel describes the parallel split of one decomposition level:
// vertical jobs are (component × column group), horizontal jobs are
// (component × row stripe), with a barrier between the two phases and
// between levels (the vertical filter of level l+1 reads the LL rows
// the horizontal filter of level l wrote).
type dwtLevel struct {
	lw, lh int
	chunks []decomp.Chunk
}

// levelPlan computes the per-level geometry once per encode. Column
// groups follow the paper's tuning: cache-line multiples sized so each
// worker gets roughly one group per component per level.
func (p *Pipeline) levelPlan(w, h, levels int) []dwtLevel {
	var plan []dwtLevel
	for l := 0; l < levels; l++ {
		lw, lh := dwt.LevelDims(w, h, l)
		if lw <= 1 && lh <= 1 {
			break
		}
		lv := dwtLevel{lw: lw, lh: lh}
		if lh > 1 {
			lv.chunks = decomp.Partition(lw, decomp.ChunkWidthFor(lw, p.workers), p.workers)
		}
		plan = append(plan, lv)
	}
	return plan
}

// DWT53 runs the reversible multi-level transform over all components,
// column-group-parallel vertically and stripe-parallel horizontally.
// Bit-identical to dwt.Forward53 on each plane.
func (p *Pipeline) DWT53(planes []*imgmodel.Plane, opt Options) {
	w, h := planes[0].W, planes[0].H
	rec := p.rec
	for li, lv := range p.levelPlan(w, h, opt.Levels) {
		if lv.lh > 1 {
			nc := len(lv.chunks)
			p.run(obs.StageDWTVert, int32(li), nc*len(planes), func(i int) {
				pl, ch := planes[i/nc], lv.chunks[i%nc]
				aux := getI32(dwt.AuxLen(ch.W, lv.lh), rec)
				dwt.Vertical53Stripe(pl.Data, ch.X0, ch.W, lv.lh, pl.Stride, *aux)
				putI32(aux)
				rec.Add(obs.CtrDWTBytesMoved, int64(ch.W)*int64(lv.lh)*8)
			})
		}
		if lv.lw > 1 {
			ns := stripes(lv.lh)
			p.run(obs.StageDWTHorz, int32(li), ns*len(planes), func(i int) {
				pl := planes[i/ns]
				y0, y1 := stripeBounds(i%ns, lv.lh)
				tmp := getI32(lv.lw, rec)
				dwt.Horizontal53Rows(pl.Data, lv.lw, pl.Stride, y0, y1, *tmp)
				putI32(tmp)
				rec.Add(obs.CtrDWTBytesMoved, int64(y1-y0)*int64(lv.lw)*8)
			})
		}
	}
}

// DWT97 is the irreversible analogue of DWT53; bit-identical to
// dwt.Forward97 on each plane.
func (p *Pipeline) DWT97(fplanes []*imgmodel.FPlane, opt Options) {
	w, h := fplanes[0].W, fplanes[0].H
	rec := p.rec
	for li, lv := range p.levelPlan(w, h, opt.Levels) {
		if lv.lh > 1 {
			nc := len(lv.chunks)
			p.run(obs.StageDWTVert, int32(li), nc*len(fplanes), func(i int) {
				pl, ch := fplanes[i/nc], lv.chunks[i%nc]
				aux := getF32(dwt.AuxLen(ch.W, lv.lh), rec)
				dwt.Vertical97Stripe(pl.Data, ch.X0, ch.W, lv.lh, pl.Stride, *aux)
				putF32(aux)
				rec.Add(obs.CtrDWTBytesMoved, int64(ch.W)*int64(lv.lh)*8)
			})
		}
		if lv.lw > 1 {
			ns := stripes(lv.lh)
			p.run(obs.StageDWTHorz, int32(li), ns*len(fplanes), func(i int) {
				pl := fplanes[i/ns]
				y0, y1 := stripeBounds(i%ns, lv.lh)
				tmp := getF32(lv.lw, rec)
				dwt.Horizontal97Rows(pl.Data, lv.lw, pl.Stride, y0, y1, *tmp)
				putF32(tmp)
				rec.Add(obs.CtrDWTBytesMoved, int64(y1-y0)*int64(lv.lw)*8)
			})
		}
	}
}

// tier1Stage selects the observability stage for a Tier-1 mode: the HT
// coder runs under its own stage label ("t1ht"), which both separates
// the two coders' timings in reports and gives HT its own fault
// injection point (faults.Arm keys on the stage name).
func tier1Stage(mode t1.Mode) obs.Stage {
	if mode.IsHT() {
		return obs.StageT1HT
	}
	return obs.StageT1
}

// Tier1Int codes every block job from the reversible coefficient planes
// through the shared work queue. When rd is non-nil (rate-constrained
// encodes), each job also builds its block's R-D ladder and convex hull
// in rd[i], so the hull sweep rides the parallel stage instead of the
// sequential rate-control tail.
func (p *Pipeline) Tier1Int(planes []*imgmodel.Plane, jobs []BlockJob, mode t1.Mode, rd []rate.BlockRD) []*t1.Block {
	blocks := make([]*t1.Block, len(jobs))
	p.run(tier1Stage(mode), 0, len(jobs), func(i int) {
		j := jobs[i]
		pl := planes[j.Comp]
		blocks[i] = t1.EncodeObs(p.rec, pl.Data[j.Y0*pl.Stride+j.X0:], j.W, j.H, pl.Stride,
			j.Band.Orient, mode, j.Gain)
		if rd != nil {
			rd[i] = LadderOf(blocks[i])
			rd[i].ComputeHullObs(p.rec)
		}
	})
	return blocks
}

// Tier1Float fuses deadzone quantization into each Tier-1 block job:
// a job quantizes its own w×h region into pooled scratch and entropy
// codes it, so quantization and Tier-1 flow through the same queue
// (the paper's load-balancing scheme) with no intermediate full-size
// integer planes. Elementwise identical to quantize-then-code. As in
// Tier1Int, a non-nil rd gets each block's R-D ladder and hull filled
// inside its job.
func (p *Pipeline) Tier1Float(fplanes []*imgmodel.FPlane, jobs []BlockJob, opt Options, rd []rate.BlockRD) []*t1.Block {
	mode := opt.Mode()
	blocks := make([]*t1.Block, len(jobs))
	p.run(tier1Stage(mode), 0, len(jobs), func(i int) {
		j := jobs[i]
		fp := fplanes[j.Comp]
		delta := float32(quant.StepFor(opt.BaseDelta, opt.Levels, j.Band.Orient, j.Band.Level))
		buf := getI32(j.W*j.H, p.rec)
		quant.QuantizeBlock(*buf, j.W, fp.Data[j.Y0*fp.Stride+j.X0:], fp.Stride, j.W, j.H, delta)
		blocks[i] = t1.EncodeObs(p.rec, *buf, j.W, j.H, j.W, j.Band.Orient, mode, j.Gain)
		putI32(buf)
		if rd != nil {
			rd[i] = LadderOf(blocks[i])
			rd[i].ComputeHullObs(p.rec)
		}
	})
	return blocks
}

// QuantizePlanes materializes the quantized integer planes from the
// transformed float planes, band-row-parallel — used by the sequential
// ForwardTransform oracle (the parallel path fuses quantization into
// Tier1Float instead). Returned planes come from the plane pool.
func (p *Pipeline) QuantizePlanes(fplanes []*imgmodel.FPlane, opt Options) []*imgmodel.Plane {
	w, h := fplanes[0].W, fplanes[0].H
	bands := dwt.Layout(w, h, opt.Levels)
	planes := make([]*imgmodel.Plane, len(fplanes))
	for c := range planes {
		planes[c] = imgmodel.GetPlaneObs(w, h, p.rec)
	}
	// One job per (component, band); the subbands tile the plane, so
	// every live sample is written.
	p.run(obs.StageQuant, 0, len(planes)*len(bands), func(i int) {
		c, b := i/len(bands), bands[i%len(bands)]
		if b.W == 0 || b.H == 0 {
			return
		}
		pl, fp := planes[c], fplanes[c]
		delta := float32(quant.StepFor(opt.BaseDelta, opt.Levels, b.Orient, b.Level))
		for y := b.Y0; y < b.Y0+b.H; y++ {
			quant.QuantizeRow(pl.Data[y*pl.Stride+b.X0:][:b.W], fp.Data[y*fp.Stride+b.X0:][:b.W], delta)
		}
	})
	return planes
}

// EncodeParallel compresses img with the whole pipeline — MCT, DWT,
// quantization, Tier-1 — spread across `workers` goroutines, then the
// shared sequential Finish (rate control, Tier-2, framing). The output
// is byte-identical to Encode for every worker count. Tiled streams
// warmGains precomputes the synthesis-gain table the encode will need
// on the coordinator goroutine. Left lazy, the measurement fires under
// gainMu inside whichever worker touches it first, stalling the whole
// pool for its duration — a serialization the stage report surfaced.
func warmGains(opt Options, rec *obs.Recorder) {
	if opt.Lossless {
		dwt.WarmGainsObs(dwt.W53, opt.Levels, rec)
	} else {
		dwt.WarmGainsObs(dwt.W97, opt.Levels, rec)
	}
}

// parallelize across tiles instead (EncodeTiled).
func EncodeParallel(img *imgmodel.Image, opt Options, workers int) (*Result, error) {
	return EncodeParallelContext(context.Background(), img, opt, workers)
}

// EncodeParallelContext is EncodeParallel bound to a context: the stage
// work queues check ctx between job claims, so cancellation stops the
// encode within a bounded number of outstanding jobs (at most one per
// worker), releases all pooled buffers, and returns ctx.Err()
// unwrapped. A panic inside any stage worker is contained into a
// *FaultError instead of crossing the API.
func EncodeParallelContext(ctx context.Context, img *imgmodel.Image, opt Options, workers int) (res *Result, err error) {
	rec := obs.Current(ctx)
	// SLO envelope: registered before containAPIFault so it runs after
	// it (defers are LIFO) and sees the error a contained panic was
	// converted into. The tiled path delegates to EncodeTiledContext,
	// which records its own (tiled-class) observation — skipSLO keeps
	// the operation from being counted twice. time.Now is only read
	// when a recorder is attached, preserving the disabled fast path.
	var start time.Time
	skipSLO := rec == nil
	if rec != nil {
		start = time.Now()
	}
	defer func() {
		if skipSLO {
			return
		}
		if err != nil {
			rec.OpFailed()
			return
		}
		rec.OpDone(obs.ClassOf(false, !opt.Lossless, false, opt.HT), time.Since(start))
	}()
	defer containAPIFault(rec, "encode", &err)
	if err := validateImage(img); err != nil {
		return nil, err
	}
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
	}
	// Record which simd kernel set serves this encode; the counter shows
	// up in MetricsTable/expvar so a perf report can tell scalar, SSE2,
	// and AVX2 runs apart.
	if ctr, ok := obs.KernelCounter(simd.Kernel()); ok {
		rec.Add(ctr, 1)
	}
	if opt.TileW > 0 || opt.TileH > 0 {
		if opt.TileW <= 0 || opt.TileH <= 0 {
			return nil, fmt.Errorf("codec: both tile dimensions must be set")
		}
		skipSLO = true
		return EncodeTiledContext(ctx, img, opt, workers)
	}
	opt = opt.WithDefaults(img.W, img.H)
	// Admission control (DESIGN.md §12): under the shared scheduler the
	// operation holds a slot for its whole life; a full admission queue
	// fails fast with ErrOverloaded before any pipeline work starts.
	release, aerr := admitOp(ctx, workers, rec)
	if aerr != nil {
		return nil, aerr
	}
	defer release()
	p := NewPipelineContext(ctx, workers)
	defer p.Close()
	// Whole-encode envelope span on a coordinator lane: it defines the
	// Amdahl report's total window (and pins lane 0, so worker lanes
	// stay stable across stages).
	ln := rec.Acquire()
	total := ln.Begin(obs.StageEncode, 0, 0)
	defer ln.Release()
	defer total.End()
	warmGains(opt, rec)
	_, jobs := PlanBlocks(img.W, img.H, len(img.Comps), opt)
	// Rate-constrained encodes build each block's R-D ladder and convex
	// hull inside its Tier-1 job, leaving only the λ search sequential
	// (and even its truncation scans fan out inside FinishRD).
	var rd []rate.BlockRD
	if !opt.Lossless && opt.layerRates() != nil {
		rd = make([]rate.BlockRD, len(jobs))
	}
	var blocks []*t1.Block
	if opt.Lossless {
		planes := p.MCTInt(img, opt)
		p.DWT53(planes, opt)
		blocks = p.Tier1Int(planes, jobs, opt.Mode(), rd)
		for _, pl := range planes {
			imgmodel.PutPlane(pl)
		}
	} else {
		fplanes := p.MCTFloat(img, opt)
		p.DWT97(fplanes, opt)
		blocks = p.Tier1Float(fplanes, jobs, opt, rd)
		for _, fp := range fplanes {
			imgmodel.PutFPlane(fp)
		}
	}
	// Stage workers never leave a fault or cancellation behind silently:
	// the drain loops stop claiming, the pooled planes above are already
	// returned, and the first recorded error surfaces here before the
	// sequential finish would touch possibly-missing blocks.
	if perr := p.Err(); perr != nil {
		return nil, perr
	}
	return finishRD(p.rec, img, opt, jobs, blocks, rd, p.workers), nil
}
