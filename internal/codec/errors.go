// Error taxonomy of the codec (DESIGN.md §8). Three disjoint failure
// classes cross the public API:
//
//   - *FormatError — the input codestream is malformed, truncated, or
//     exceeds the decoder's resource Limits. Retrying cannot help;
//     reject the input.
//   - *FaultError — a worker goroutine panicked (or an injected fault
//     fired) inside a pipeline stage; the panic was contained, the
//     encode/decode failed cleanly, and the fault's stage, worker
//     lane, and job coordinates are attached. This signals a codec
//     bug, not bad input.
//   - context.Canceled / context.DeadlineExceeded — the caller's
//     context expired; returned unwrapped so errors.Is works.
package codec

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"j2kcell/internal/codestream"
	"j2kcell/internal/faults"
	"j2kcell/internal/obs"
)

// Limits bounds what the decoder accepts from an untrusted stream's
// main header; see codestream.Limits. The zero value disables
// limiting; DefaultLimits returns the bounds applied when
// DecodeOptions carries none.
type Limits = codestream.Limits

// DefaultLimits returns the decoder's default header limits.
func DefaultLimits() Limits { return codestream.DefaultLimits() }

// FaultError reports a panic contained inside a codec worker: the
// pipeline stage it escaped from, the worker lane and job index that
// were executing (for Tier-1 stages the job index is the code block's
// position in the canonical PlanBlocks order; for DWT stages Arg is
// the decomposition level, for tiled encodes the tile index), and
// either the recovered panic value with its stack or the injected
// error. The encode/decode that contained it has failed cleanly: no
// goroutine leaked, pooled buffers were returned, and the pools remain
// usable.
type FaultError struct {
	Stage string // pipeline stage name ("mct", "dwt-v", "t1", "rate", "tile", ...)
	Lane  int    // worker lane index (-1 when unknown / coordinator)
	Job   int    // job index within the stage (-1 when unknown)
	Arg   int    // stage argument: DWT level or tile index (0 otherwise)
	Panic any    // recovered panic value (nil for injected errors)
	Stack []byte // goroutine stack captured at recovery (nil for injected errors)
	Err   error  // underlying error for non-panic faults
}

func (e *FaultError) Error() string {
	loc := fmt.Sprintf("stage %s, lane %d, job %d", e.Stage, e.Lane, e.Job)
	if e.Panic != nil {
		return fmt.Sprintf("codec: contained panic in %s: %v", loc, e.Panic)
	}
	return fmt.Sprintf("codec: fault in %s: %v", loc, e.Err)
}

// Unwrap exposes the underlying injected error (nil for panics).
func (e *FaultError) Unwrap() error { return e.Err }

// asFault converts a recovered panic value into a *FaultError. Values
// that already carry fault context (*FaultError from a nested
// pipeline, *faults.Contained re-raised by a fan-out coordinator) keep
// their original stage and stack.
func asFault(r any, stage string, lane, job, arg int) *FaultError {
	switch v := r.(type) {
	case *FaultError:
		return v
	case *faults.Contained:
		return &FaultError{Stage: v.Stage, Lane: lane, Job: job, Arg: arg, Panic: v.Value, Stack: v.Stack}
	}
	return &FaultError{Stage: stage, Lane: lane, Job: job, Arg: arg, Panic: r, Stack: debug.Stack()}
}

// containAPIFault is the deferred recover wrapper of the public encode
// and decode entry points: any panic that escapes the per-job
// containment (the sequential finish tail, the PCRD fan-out re-raise)
// becomes a *FaultError instead of crossing the API. The contained
// panic is counted on the operation's recorder (nil-safe).
func containAPIFault(rec *obs.Recorder, stage string, err *error) {
	if r := recover(); r != nil {
		rec.Add(obs.CtrFaultPanics, 1)
		*err = asFault(r, stage, -1, -1, 0)
	}
}

// FormatError reports a malformed, truncated, or limit-exceeding
// codestream. The underlying parse error (from the codestream, t2, or
// t1 layers) is wrapped and reachable via errors.Unwrap.
type FormatError struct {
	Msg string // optional context ("tile 3", "packet l=0 r=1 c=2")
	Err error  // underlying parse or limit error
}

func (e *FormatError) Error() string {
	switch {
	case e.Msg != "" && e.Err != nil:
		return fmt.Sprintf("codec: invalid codestream: %s: %v", e.Msg, e.Err)
	case e.Err != nil:
		return fmt.Sprintf("codec: invalid codestream: %v", e.Err)
	}
	return "codec: invalid codestream: " + e.Msg
}

// Unwrap exposes the underlying parse error.
func (e *FormatError) Unwrap() error { return e.Err }

// passthrough reports whether err must cross the API without further
// wrapping: context errors (so errors.Is(err, context.Canceled) holds
// unwrapped at the call site) and contained faults (already fully
// located by stage/lane/job).
func passthrough(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var fe *FaultError
	return errors.As(err, &fe)
}

// formatErr wraps a parse-layer error as a *FormatError (idempotent;
// nil passes through).
func formatErr(err error) error {
	if err == nil {
		return nil
	}
	var fe *FormatError
	if errors.As(err, &fe) {
		return err
	}
	return &FormatError{Err: err}
}

// formatErrf is formatErr with positional context.
func formatErrf(err error, format string, args ...any) error {
	if err == nil {
		return nil
	}
	return &FormatError{Msg: fmt.Sprintf(format, args...), Err: err}
}
