// Package codec assembles the full JPEG2000 encoder and decoder
// pipelines from the stage packages (mct, dwt, quant, t1, rate, t2,
// codestream). This sequential implementation is the correctness
// oracle: the Cell-parallel encoder (internal/core) must produce
// byte-identical codestreams, and the decoder here verifies both.
package codec

import (
	"fmt"

	"j2kcell/internal/dwt"
	"j2kcell/internal/imgmodel"
	"j2kcell/internal/quant"
	"j2kcell/internal/t1"
)

// Options selects the coding path and its parameters.
type Options struct {
	// Lossless selects the reversible path (RCT + 5/3, no
	// quantization, no rate control) — JasPer's default mode in the
	// paper. Otherwise the irreversible path (ICT + 9/7 + deadzone
	// quantization) runs, optionally rate-controlled.
	Lossless bool
	// Levels is the number of DWT decompositions (default 5).
	Levels int
	// CBW, CBH are the code block dimensions (default 64×64, the
	// standard maximum; the Muta baseline uses 32×32).
	CBW, CBH int
	// Rate, for the lossy path, is the target compressed size as a
	// fraction of the raw image bytes (the paper encodes at 0.1).
	// Zero disables rate control.
	Rate float64
	// LayerRates, for the lossy path, requests multiple quality layers
	// at the given cumulative rate fractions (strictly increasing,
	// e.g. [0.02, 0.1, 0.5]); decoding a prefix of layers reconstructs
	// the image at the corresponding rate. When set it supersedes Rate
	// (the last entry is the total rate; 0 keeps everything in the
	// final layer).
	LayerRates []float64
	// BaseDelta is the image-domain quantizer step Δ0 (default 0.5).
	BaseDelta float64
	// Progression selects the packet ordering.
	Progression Progression
	// TileW, TileH split the image into independently coded tiles
	// (0 = one tile covering the image, the paper's configuration).
	// Tiling bounds encoder memory and adds a coarse parallel axis at
	// the cost of boundary artifacts at low rates.
	TileW, TileH int
	// Resilience enables the Part-1 error-resilience coding tools:
	// every packet is prefixed with an SOP resync marker (T.800 Scod
	// bit 1), and on the MQ path every coding pass is independently
	// terminated (TERMALL) and every cleanup pass closes with the 1010
	// segmentation symbol — so damage inside Tier-1 data is detected by
	// the decoder instead of decoding to silent garbage, and a
	// best-effort decode (DecodeResilient) can contain it to the
	// affected code block. The HT path already carries per-segment
	// trailers checked for consistency. Costs a few bytes per pass and
	// six per packet.
	Resilience bool
	// HT selects the high-throughput (Part 15 style) block coder for
	// Tier-1 instead of the MQ arithmetic coder. Lossless output stays
	// bit-exact; the constrained-lossy path gets three truncation
	// points per block (cleanup + two raw refinement passes) at a
	// small rate cost versus MQ. The choice is recorded in the
	// codestream capability bits, so decoding is automatic.
	HT bool
	// VisualWeighting applies contrast-sensitivity (CSF) weights to the
	// PCRD distortion estimates on the lossy path: the allocator then
	// spends bytes where the eye is most sensitive (low spatial
	// frequencies, luma) instead of minimizing plain MSE. The emitted
	// block bitstreams are unchanged; only truncation points move.
	VisualWeighting bool
}

// csfWeight returns the visual weight for a subband: 1.0 at the
// coarsest frequencies, falling for fine detail bands (values follow
// the widely used Daly-style table for ~1.7 screen heights viewing,
// as shipped in JasPer and Kakadu), with chroma discounted further.
func csfWeight(o dwt.Orient, level int, chroma bool) float64 {
	if o == dwt.LL {
		return 1.0
	}
	// Index by depth from the finest level (1 = finest).
	var w float64
	switch {
	case level <= 1:
		if o == dwt.HH {
			w = 0.30
		} else {
			w = 0.56
		}
	case level == 2:
		if o == dwt.HH {
			w = 0.59
		} else {
			w = 0.73
		}
	case level == 3:
		if o == dwt.HH {
			w = 0.82
		} else {
			w = 0.92
		}
	default:
		w = 1.0
	}
	if chroma {
		w *= 0.7
	}
	return w
}

// Progression is a packet ordering (T.800 progression order).
type Progression int

// Supported progression orders.
const (
	// LRCP iterates layer, resolution, component — quality progressive.
	LRCP Progression = iota
	// RLCP iterates resolution, layer, component — resolution
	// progressive: all data for a resolution arrives before any finer
	// one, so thumbnail decoding needs only a stream prefix.
	RLCP
)

// WithDefaults fills zero fields and clamps levels to the image size.
func (o Options) WithDefaults(w, h int) Options {
	if o.Levels == 0 {
		o.Levels = 5
	}
	if ml := dwt.MaxLevels(w, h); o.Levels > ml {
		o.Levels = ml
	}
	if o.CBW == 0 {
		o.CBW = 64
	}
	if o.CBH == 0 {
		o.CBH = 64
	}
	if o.BaseDelta == 0 {
		o.BaseDelta = quant.DefaultBaseDelta
	}
	return o
}

// Mode returns the Tier-1 termination style for these options:
// per-pass termination exactly when rate control will truncate, layer
// boundaries must be independently decodable, or the resilience tools
// need every pass to be a damage-containment boundary (in which case
// MQ blocks also code segmentation symbols).
func (o Options) Mode() t1.Mode {
	if o.HT {
		if !o.Lossless && (o.Rate > 0 || len(o.LayerRates) > 0) {
			return t1.ModeHTRefine
		}
		return t1.ModeHT
	}
	if o.Resilience {
		return t1.ModeTermAll.WithSegSym()
	}
	if !o.Lossless && (o.Rate > 0 || len(o.LayerRates) > 0) {
		return t1.ModeTermAll
	}
	return t1.ModeSingle
}

// NumLayers returns the number of quality layers these options emit.
func (o Options) NumLayers() int {
	if !o.Lossless && len(o.LayerRates) > 0 {
		return len(o.LayerRates)
	}
	return 1
}

// Filter returns the wavelet used by these options.
func (o Options) Filter() dwt.Filter {
	if o.Lossless {
		return dwt.W53
	}
	return dwt.W97
}

// BlockJob identifies one code block to be Tier-1 coded: its component,
// subband, grid position within the band, and absolute plane region.
type BlockJob struct {
	Comp    int
	BandIdx int
	Band    dwt.Band
	GX, GY  int // block grid coordinates within the band
	X0, Y0  int // absolute plane coordinates
	W, H    int
	Gain    float64
}

// PlanBlocks enumerates the subbands and code block jobs for a w×h
// image under opt, in the canonical order (component, band, raster).
// Every encoder variant in this repository plans with this function, so
// they all code exactly the same block set.
func PlanBlocks(w, h, ncomp int, opt Options) ([]dwt.Band, []BlockJob) {
	bands := dwt.Layout(w, h, opt.Levels)
	var jobs []BlockJob
	for c := 0; c < ncomp; c++ {
		for bi, b := range bands {
			if b.W == 0 || b.H == 0 {
				continue
			}
			gain := 1.0 // lossy: Δ_b = Δ0/g_b makes q-domain errors uniform
			if opt.Lossless {
				gain = dwt.BandGain(dwt.W53, opt.Levels, b.Orient, b.Level)
			} else if opt.VisualWeighting {
				gain = csfWeight(b.Orient, b.Level, c > 0)
			}
			for gy := 0; gy*opt.CBH < b.H; gy++ {
				for gx := 0; gx*opt.CBW < b.W; gx++ {
					bw := opt.CBW
					if (gx+1)*opt.CBW > b.W {
						bw = b.W - gx*opt.CBW
					}
					bh := opt.CBH
					if (gy+1)*opt.CBH > b.H {
						bh = b.H - gy*opt.CBH
					}
					jobs = append(jobs, BlockJob{
						Comp: c, BandIdx: bi, Band: b, GX: gx, GY: gy,
						X0: b.X0 + gx*opt.CBW, Y0: b.Y0 + gy*opt.CBH,
						W: bw, H: bh, Gain: gain,
					})
				}
			}
		}
	}
	return bands, jobs
}

// ResBands returns the band indices belonging to resolution r
// (0 = LL only; r >= 1 = the three detail bands of level levels-r+1),
// matching the dwt.Layout ordering.
func ResBands(levels, r int) []int {
	if r == 0 {
		return []int{0}
	}
	base := 1 + 3*(r-1)
	return []int{base, base + 1, base + 2}
}

// PacketOrder returns the (layer, resolution, component) triples in
// transmission order for a progression. Encoder and decoder iterate
// this exact sequence, which is what keeps the tag-tree and Lblock
// state synchronized.
func PacketOrder(prog Progression, layers, levels, ncomp int) [][3]int {
	var order [][3]int
	switch prog {
	case RLCP:
		for r := 0; r <= levels; r++ {
			for l := 0; l < layers; l++ {
				for c := 0; c < ncomp; c++ {
					order = append(order, [3]int{l, r, c})
				}
			}
		}
	default: // LRCP
		for l := 0; l < layers; l++ {
			for r := 0; r <= levels; r++ {
				for c := 0; c < ncomp; c++ {
					order = append(order, [3]int{l, r, c})
				}
			}
		}
	}
	return order
}

// Stats summarizes an encode for tests and the performance models.
type Stats struct {
	W, H, NComp int
	Samples     int   // W*H*NComp
	Blocks      int   // non-empty code blocks
	T1Scanned   int64 // coefficient visits across all coded passes
	T1Coded     int64 // MQ decisions across all coded passes
	TotalPasses int
	KeptPasses  int
	HeaderBytes int
	BodyBytes   int
}

// Result is a completed encode.
type Result struct {
	Data  []byte
	Stats Stats
	// Internals exposed for the performance harness and the parallel
	// encoders' verification paths.
	Jobs      []BlockJob
	Blocks    []*t1.Block
	Keep      []int   // final-layer cumulative pass selection
	LayerKeep [][]int // per-layer cumulative pass selections
}

func validateImage(img *imgmodel.Image) error {
	if img.W <= 0 || img.H <= 0 || len(img.Comps) == 0 {
		return fmt.Errorf("codec: empty image")
	}
	if img.Depth < 1 || img.Depth > 16 {
		return fmt.Errorf("codec: unsupported depth %d", img.Depth)
	}
	for _, p := range img.Comps {
		if p.W != img.W || p.H != img.H {
			return fmt.Errorf("codec: component geometry mismatch (subsampling unsupported)")
		}
	}
	return nil
}
