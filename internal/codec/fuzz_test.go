package codec

import (
	"errors"
	"testing"

	"j2kcell/internal/codestream"
	"j2kcell/internal/jp2"
	"j2kcell/internal/workload"
)

// fuzzLimits keeps fuzz inputs small: the fuzzer should spend its
// budget on parser states, not on decoding megapixel planes.
var fuzzLimits = Limits{
	MaxWidth: 1 << 12, MaxHeight: 1 << 12,
	MaxComponents: 8, MaxLevels: 10,
	MaxTiles: 64, MaxPixels: 1 << 22,
}

// fuzzSeeds returns valid codestreams (raw and JP2-wrapped) plus
// deterministic mutations of them, reusing the corruption operators of
// the corrupt-stream regression tests.
func fuzzSeeds(tb testing.TB) [][]byte {
	src := workload.Dial(48, 48, 5, 4)
	var seeds [][]byte
	rng := workload.NewRNG(123)
	for _, opt := range []Options{
		{Lossless: true},
		{Rate: 0.2},
		{LayerRates: []float64{0.05, 0.2}, Resilience: true},
		{Lossless: true, TileW: 32, TileH: 32},
		{Lossless: true, HT: true},
		{Rate: 0.2, HT: true},
	} {
		res, err := Encode(src, opt)
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, res.Data)
		seeds = append(seeds, jp2.Wrap(jp2.Info{W: 48, H: 48, NComp: 3, Depth: 4}, res.Data))
		for i := 0; i < 3; i++ {
			seeds = append(seeds, mutate(rng, res.Data, i+1))
		}
		if len(res.Data) > 40 {
			seeds = append(seeds, res.Data[:len(res.Data)/2], res.Data[:37])
		}
	}
	return seeds
}

// FuzzDecode drives the full decoder. Parse errors are expected; a
// panic, a hang, or a *FaultError (a panic the containment layer had
// to catch — i.e. an input-reachable codec bug) is a finding.
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := DecodeWith(data, DecodeOptions{Limits: &fuzzLimits})
		if err != nil {
			var fe *FaultError
			if errors.As(err, &fe) {
				t.Fatalf("input-reachable panic was only caught by containment: %v", err)
			}
			return
		}
		if img == nil || img.W <= 0 || img.H <= 0 {
			t.Fatalf("nil error but bogus image: %+v", img)
		}
	})
}

// FuzzDecodeResilient pins best-effort totality: arbitrary input must
// yield an image and a self-consistent damage report — never an error,
// a panic, or a hang.
func FuzzDecodeResilient(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		img, rep := DecodeResilient(data, DecodeOptions{Limits: &fuzzLimits})
		if img == nil || rep == nil {
			t.Fatal("DecodeResilient must be total")
		}
		if img.W <= 0 || img.H <= 0 || len(img.Comps) == 0 {
			t.Fatalf("bogus image: %dx%d", img.W, img.H)
		}
		if rep.SalvagedBytes > rep.TotalBytes {
			t.Fatalf("salvaged %d > total %d", rep.SalvagedBytes, rep.TotalBytes)
		}
		if rep.LostPackets > rep.TotalPackets || rep.LostBlocks > rep.TotalBlocks {
			t.Fatalf("inconsistent report: %+v", rep)
		}
		if rep.Complete && rep.HeaderOK {
			// A complete report promises identity with the strict path.
			strict, err := DecodeWith(data, DecodeOptions{Limits: &fuzzLimits})
			if err != nil {
				t.Fatalf("Complete report but strict decode fails: %v", err)
			}
			if !imagesEqual(img, strict) {
				t.Fatal("Complete report but images differ from strict decode")
			}
		}
	})
}

// FuzzDecodeHeaders targets the marker-segment parser alone, where
// most attacker-controlled arithmetic lives, with the limit checks in
// the loop.
func FuzzDecodeHeaders(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	lim := codestream.Limits(fuzzLimits)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, bodies, err := codestream.DecodeTilesLimits(data, lim)
		if err != nil {
			return
		}
		if h == nil || len(bodies) == 0 {
			t.Fatal("nil error but no header or bodies")
		}
		if h.W > lim.MaxWidth || h.H > lim.MaxHeight || h.NComp > lim.MaxComponents {
			t.Fatalf("accepted header exceeds limits: %dx%dx%d", h.W, h.H, h.NComp)
		}
	})
}
