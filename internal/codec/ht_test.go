package codec

import (
	"bytes"
	"fmt"
	"testing"

	"j2kcell/internal/codestream"
	"j2kcell/internal/imgmodel"
	"j2kcell/internal/t1"
	"j2kcell/internal/workload"
)

// gradientImage is a smooth diagonal ramp — the content HT's AZC/MEL
// run coding eats (long all-quiet quad rows in the detail bands).
func gradientImage(n int) *imgmodel.Image {
	img := imgmodel.NewImage(n, n, 3, 8)
	for c := 0; c < 3; c++ {
		for y := 0; y < n; y++ {
			row := img.Comps[c].Row(y)
			for x := 0; x < n; x++ {
				row[x] = int32((x*255/n + y*255/n + c*40) % 256)
			}
		}
	}
	return img
}

// noiseImage is full-amplitude white noise — every quad significant,
// the MagSgn-stream worst case.
func noiseImage(n int, seed uint32) *imgmodel.Image {
	img := imgmodel.NewImage(n, n, 3, 8)
	rng := workload.NewRNG(seed)
	for c := 0; c < 3; c++ {
		for y := 0; y < n; y++ {
			row := img.Comps[c].Row(y)
			for x := 0; x < n; x++ {
				row[x] = int32(rng.Intn(256))
			}
		}
	}
	return img
}

// TestHTLosslessMatrix: HT lossless encode → decode must be bit exact
// across image sizes, content statistics, and tiling — the PR 7
// acceptance matrix.
func TestHTLosslessMatrix(t *testing.T) {
	for _, n := range []int{16, 64, 128, 256} {
		for _, content := range []string{"gradient", "noise"} {
			for _, tiled := range []bool{false, true} {
				name := fmt.Sprintf("%s/%d/tiled=%v", content, n, tiled)
				t.Run(name, func(t *testing.T) {
					var img *imgmodel.Image
					if content == "gradient" {
						img = gradientImage(n)
					} else {
						img = noiseImage(n, uint32(n))
					}
					opt := Options{Lossless: true, HT: true}
					if tiled {
						opt.TileW, opt.TileH = (n+1)/2, (n*2+2)/3
					}
					res, err := Encode(img, opt)
					if err != nil {
						t.Fatal(err)
					}
					got, err := Decode(res.Data)
					if err != nil {
						t.Fatal(err)
					}
					if !img.Equal(got) {
						t.Fatal("HT lossless round trip not bit exact")
					}
				})
			}
		}
	}
}

// TestHTLosslessDialImage runs the natural-image workload through HT,
// untiled and tiled with non-multiple tile sizes.
func TestHTLosslessDialImage(t *testing.T) {
	img := workload.Dial(97, 61, 7, 5)
	for _, opt := range []Options{
		{Lossless: true, HT: true},
		{Lossless: true, HT: true, TileW: 48, TileH: 32},
	} {
		res, err := Encode(img, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(res.Data)
		if err != nil {
			t.Fatal(err)
		}
		if !img.Equal(got) {
			t.Fatalf("HT dial round trip not bit exact (opt %+v)", opt)
		}
	}
}

// TestHTLossyQuality: the unconstrained lossy HT path must land close
// to the MQ path in quality (same transforms and quantizer; only the
// block coder differs, and ModeHT codes quantizer indices exactly).
func TestHTLossyQuality(t *testing.T) {
	img := workload.Dial(128, 128, 11, 3)
	res, err := Encode(img, Options{Lossless: false, HT: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if psnr := img.PSNR(got); psnr < 38 {
		t.Fatalf("HT lossy PSNR %.1f dB < 38", psnr)
	}
}

// TestHTRateControl: the constrained path (ModeHTRefine, three
// truncation points per block) must respect the byte budget and still
// produce a usable image.
func TestHTRateControl(t *testing.T) {
	img := workload.Dial(256, 256, 5, 5)
	for _, r := range []float64{0.1, 0.3} {
		res, err := Encode(img, Options{Lossless: false, Rate: r, HT: true})
		if err != nil {
			t.Fatal(err)
		}
		budget := int(r * float64(256*256*3))
		if len(res.Data) > budget+2048 {
			t.Fatalf("rate %.2f: %d bytes over budget %d", r, len(res.Data), budget)
		}
		got, err := Decode(res.Data)
		if err != nil {
			t.Fatal(err)
		}
		if psnr := img.PSNR(got); psnr < 25 {
			t.Fatalf("rate %.2f: PSNR %.1f dB < 25", r, psnr)
		}
	}
}

// TestHTSignaledInCodestream pins the capability wiring: an HT stream
// parses back with h.HT set (that is what routes the decoder to the HT
// block coder), an MQ stream does not, and the two coders' outputs
// actually differ.
func TestHTSignaledInCodestream(t *testing.T) {
	img := workload.Dial(64, 64, 3, 4)
	ht, err := Encode(img, Options{Lossless: true, HT: true})
	if err != nil {
		t.Fatal(err)
	}
	mq, err := Encode(img, Options{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	hh, _, err := codestream.DecodeTiles(ht.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !hh.HT {
		t.Fatal("HT stream parsed without the HT capability bit")
	}
	hm, _, err := codestream.DecodeTiles(mq.Data)
	if err != nil {
		t.Fatal(err)
	}
	if hm.HT {
		t.Fatal("MQ stream parsed with the HT capability bit set")
	}
	if bytes.Equal(ht.Data, mq.Data) {
		t.Fatal("HT and MQ codestreams identical — coder switch had no effect")
	}
	// Rsiz must advertise the Part 15 capability (bytes 4..6 of the
	// stream are the SIZ marker+length; Rsiz is the payload's first
	// field at offset 6).
	if ht.Data[6]&0x40 == 0 {
		t.Fatal("HT stream Rsiz missing capability bit 14")
	}
}

// TestHTPartitionCostModel pins the per-coder decode partitioner
// asymmetry: the same byte counts coalesce into fewer, larger
// partitions under the HT cost model, because HT decodes bytes faster
// and so more blocks fit one queue claim.
func TestHTPartitionCostModel(t *testing.T) {
	mk := func(nbytes, n int) []blockTask {
		tasks := make([]blockTask, n)
		for i := range tasks {
			tasks[i] = blockTask{acc: &blockAcc{data: make([]byte, nbytes)}}
		}
		return tasks
	}
	// 64 tiny blocks of 16 coded bytes, 4 workers.
	//   MQ: 64 units/block, total 4096 → target 256 (above the 192
	//       clamp) → 4 blocks per claim → 16 partitions.
	//   HT: 20 units/block, total 1280 → raw target 80, clamped to the
	//       shared 192 minimum → 9 blocks per claim → 8 partitions.
	tiny := mk(16, 64)
	if parts, cost := partitionDecodeTasks(nil, tiny, 4, mqDecodeCost); len(parts) != 16 || cost != 4096 {
		t.Fatalf("MQ tiny-block partitions = %d (cost %d), want 16 (cost 4096)", len(parts), cost)
	}
	if parts, cost := partitionDecodeTasks(nil, tiny, 4, htDecodeCost); len(parts) != 8 || cost != 1280 {
		t.Fatalf("HT tiny-block partitions = %d (cost %d), want 8 (cost 1280)", len(parts), cost)
	}
	// A huge block must stay a singleton under both models.
	big := mk(1<<20, 1)
	for _, m := range []t1CostModel{mqDecodeCost, htDecodeCost} {
		if parts, _ := partitionDecodeTasks(nil, big, 4, m); len(parts) != 1 {
			t.Fatalf("single huge block split into %d parts", len(parts))
		}
	}
	// decodeCostFor routes by mode.
	if decodeCostFor(t1.ModeHT) != htDecodeCost || decodeCostFor(t1.ModeHTRefine) != htDecodeCost {
		t.Fatal("HT modes not priced with the HT cost model")
	}
	if decodeCostFor(t1.ModeSingle) != mqDecodeCost || decodeCostFor(t1.ModeTermAll) != mqDecodeCost {
		t.Fatal("MQ modes not priced with the MQ cost model")
	}
}

// TestHTLayeredDecode: HT layer truncation points must be decodable as
// prefixes, improving monotonically.
func TestHTLayeredDecode(t *testing.T) {
	img := workload.Dial(128, 128, 13, 4)
	res, err := Encode(img, Options{Lossless: false, LayerRates: []float64{0.05, 0.2, 0}, HT: true})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for l := 1; l <= 3; l++ {
		got, err := DecodeWith(res.Data, DecodeOptions{MaxLayers: l})
		if err != nil {
			t.Fatalf("layer %d: %v", l, err)
		}
		psnr := img.PSNR(got)
		if psnr < prev-0.01 {
			t.Fatalf("layer %d PSNR %.2f regressed from %.2f", l, psnr, prev)
		}
		prev = psnr
	}
	if prev < 30 {
		t.Fatalf("full-layer HT PSNR %.1f dB < 30", prev)
	}
}
