package codec

import (
	"fmt"
	"strings"
)

// DamageReport is the structured outcome of a best-effort decode: what
// was lost, where, and how much of the stream survived. It is returned
// alongside the image instead of an error — a service handling
// untrusted streams reads it to decide whether "99% of the image" is
// good enough to serve.
type DamageReport struct {
	// HeaderOK reports that the main header (SOC/SIZ/COD/QCD) parsed;
	// without it there is no geometry and the image is a placeholder.
	HeaderOK bool
	// Complete reports that no damage of any kind was observed — the
	// output is pixel-identical to a plain Decode of the same stream.
	Complete bool
	// Truncated reports that the stream ended before its framing did
	// (mid tile-part, mid packet walk, or missing EOC).
	Truncated bool

	TotalTiles   int // tiles in the grid the main header declares
	MissingTiles int // tiles whose tile-part never arrived (concealed whole)

	TotalPackets int // packets the progression order expects, all tiles
	LostPackets  int // packets skipped, unparsable, or never received

	TotalBlocks int // code blocks with Tier-1 contributions, all tiles
	LostBlocks  int // code blocks concealed as zero coefficients

	// Resyncs counts recovery jumps: SOP scans inside tile bodies plus
	// SOT scans across damaged tile-part framing.
	Resyncs int

	// SalvagedBytes / TotalBytes measure how much of the tile-part
	// payload that arrived was actually parsed into the image (marker
	// and main-header bytes are excluded from both).
	SalvagedBytes int64
	TotalBytes    int64

	// Tiles holds one entry per damaged tile (undamaged tiles are
	// omitted), in tile-index order.
	Tiles []TileDamage

	// Notes carries non-localized observations: ignored options,
	// header-level failures, contained faults outside Tier-1.
	Notes []string
}

// TileDamage is one tile's loss map.
type TileDamage struct {
	Index     int
	Missing   bool // tile-part never arrived; whole tile concealed
	Truncated bool // packet walk ended before the progression did

	TotalPackets int
	LostPackets  int
	TotalBlocks  int
	Resyncs      int

	// LostBlocks lists every concealed code block with its worst-case
	// affected region in absolute image coordinates.
	LostBlocks []BlockLoss

	// Faults lists contained worker faults demoted to block loss.
	Faults []FaultRef

	// Region is the union of all lost regions (the whole tile when
	// Missing), in absolute image coordinates. Zero when undamaged.
	Region Rect
}

// BlockLoss identifies one concealed code block.
type BlockLoss struct {
	Tile   int
	Comp   int
	Band   int // band index in dwt.Layout order
	GX, GY int // block grid position within the band
	// Region is the worst-case image region the loss can affect: the
	// block's band rectangle widened by the synthesis support margin
	// and scaled through the inverse DWT, in absolute image
	// coordinates.
	Region Rect
	Cause  string
}

// FaultRef is the stage/lane/job coordinate of a contained fault that
// was demoted to localized damage instead of failing the decode.
type FaultRef struct {
	Stage string
	Lane  int
	Job   int
}

// Damaged reports whether anything at all was lost.
func (r *DamageReport) Damaged() bool { return !r.Complete }

// SalvagedRatio returns SalvagedBytes/TotalBytes (1.0 for an empty
// total, so an undamaged stream always reads 1.0).
func (r *DamageReport) SalvagedRatio() float64 {
	if r.TotalBytes == 0 {
		return 1.0
	}
	return float64(r.SalvagedBytes) / float64(r.TotalBytes)
}

// String renders a one-paragraph operator summary.
func (r *DamageReport) String() string {
	if r == nil {
		return "damage: <nil>"
	}
	if !r.HeaderOK {
		return "damage: main header unusable; no image recovered"
	}
	if r.Complete {
		return "damage: none (stream decoded completely)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "damage: %d/%d blocks lost, %d/%d packets lost, %d/%d tiles missing, %d resyncs, %.1f%% of payload salvaged",
		r.LostBlocks, r.TotalBlocks, r.LostPackets, r.TotalPackets,
		r.MissingTiles, r.TotalTiles, r.Resyncs, 100*r.SalvagedRatio())
	if r.Truncated {
		b.WriteString(", truncated")
	}
	for _, n := range r.Notes {
		b.WriteString("; ")
		b.WriteString(n)
	}
	return b.String()
}

// tileDamage collects one tile's damage while decodeTile runs in
// best-effort mode. Tier-1 workers write disjoint partitions, and the
// coordinator serializes concealment recording, so no lock is needed
// beyond the one decodeTile's conceal path holds.
type tileDamage struct {
	totalPackets int
	lostPackets  int
	resyncs      int
	totalBlocks  int
	salvaged     int64 // packet bytes successfully parsed (incl. SOP)
	truncated    bool  // packet walk ended early
	lost         []BlockLoss
	faults       []FaultRef
}

func (d *tileDamage) damaged() bool {
	return d.lostPackets > 0 || d.resyncs > 0 || d.truncated || len(d.lost) > 0 || len(d.faults) > 0
}

// lostRegion maps a lost code block in a band at the given DWT level to
// the worst-case tile-local region its absence can affect: the block's
// band rectangle widened by the synthesis support margin on each side,
// scaled up through the inverse levels, clamped to the tile.
func lostRegion(level, gx, gy, cbw, cbh, tw, th int) Rect {
	x0 := (gx*cbw - regionMargin) << uint(level)
	y0 := (gy*cbh - regionMargin) << uint(level)
	x1 := ((gx+1)*cbw + regionMargin) << uint(level)
	y1 := ((gy+1)*cbh + regionMargin) << uint(level)
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > tw {
		x1 = tw
	}
	if y1 > th {
		y1 = th
	}
	if x1 < x0 {
		x1 = x0
	}
	if y1 < y0 {
		y1 = y0
	}
	return Rect{X0: x0, Y0: y0, W: x1 - x0, H: y1 - y0}
}

// unionRect returns the smallest rectangle covering both (either may be
// empty, meaning "nothing yet").
func unionRect(a, b Rect) Rect {
	if a.W == 0 || a.H == 0 {
		return b
	}
	if b.W == 0 || b.H == 0 {
		return a
	}
	x0, y0 := minI(a.X0, b.X0), minI(a.Y0, b.Y0)
	x1 := maxI(a.X0+a.W, b.X0+b.W)
	y1 := maxI(a.Y0+a.H, b.Y0+b.H)
	return Rect{X0: x0, Y0: y0, W: x1 - x0, H: y1 - y0}
}
