package codec

import (
	"context"
	"errors"
	"testing"
	"time"

	"j2kcell/internal/workload"
)

// TestPreCancelledContextReturnsImmediately pins the entry check: an
// already-cancelled context never starts stage work.
func TestPreCancelledContextReturnsImmediately(t *testing.T) {
	img := workload.Dial(64, 64, 3, 4)
	res, err := Encode(img, Options{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := EncodeParallelContext(ctx, img, Options{Lossless: true}, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("encode: got %v, want context.Canceled", err)
	}
	if _, err := EncodeTiledContext(ctx, img, Options{Lossless: true, TileW: 32, TileH: 32}, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("tiled encode: got %v, want context.Canceled", err)
	}
	if _, err := DecodeContext(ctx, res.Data); !errors.Is(err, context.Canceled) {
		t.Errorf("decode: got %v, want context.Canceled", err)
	}
}

// TestExpiredDeadlineReturnsDeadlineExceeded pins that deadline expiry
// surfaces unwrapped, distinguishable from plain cancellation.
func TestExpiredDeadlineReturnsDeadlineExceeded(t *testing.T) {
	img := workload.Dial(64, 64, 3, 4)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := EncodeParallelContext(ctx, img, Options{Lossless: true}, 2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestCancelMidEncodeStopsPromptly cancels while the stage pipeline is
// draining a large image and requires the encode to stop within a
// bounded wall-clock window (one outstanding job per worker), returning
// context.Canceled unwrapped and leaking no goroutines.
func TestCancelMidEncodeStopsPromptly(t *testing.T) {
	img := workload.Dial(1024, 1024, 7, 5)
	before := goroutineCount()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := EncodeParallelContext(ctx, img, Options{Lossless: true}, 4)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the pipeline start
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		// A fast machine may finish the whole encode before cancel
		// lands; that is not a containment failure.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled or nil", err)
		}
		if err == nil {
			t.Log("encode completed before cancellation landed")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled encode did not return")
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Errorf("cancelled encode took %v to unwind", waited)
	}
	if after := goroutineCount(); after > before+2 {
		t.Errorf("goroutines leaked after cancellation: %d -> %d", before, after)
	}
}

// TestCancelMidDecodeStopsPromptly is the decode-side analogue,
// exercising the cancellation points of every queue the inverse chain
// drains — the packet-parse loop, the dynamically-partitioned Tier-1
// stage, and the dequant/IDWT/inverse-MCT stages (and, in the tiled
// case, the tile queue wrapping them) — and pinning that the aborted
// pipeline joined all its workers: no goroutine outlives the decode.
func TestCancelMidDecodeStopsPromptly(t *testing.T) {
	img := workload.Dial(512, 512, 3, 5)
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"untiled", Options{Lossless: true}},
		{"tiled", Options{Lossless: true, TileW: 128, TileH: 128}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var data []byte
			if tc.opt.TileW > 0 {
				res, err := EncodeTiled(img, tc.opt, 1)
				if err != nil {
					t.Fatal(err)
				}
				data = res.Data
			} else {
				res, err := Encode(img, tc.opt)
				if err != nil {
					t.Fatal(err)
				}
				data = res.Data
			}
			before := goroutineCount()
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := DecodeWithContext(ctx, data, DecodeOptions{Workers: 4})
				done <- err
			}()
			time.Sleep(2 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Fatalf("got %v, want context.Canceled or nil", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("cancelled decode did not return")
			}
			if after := goroutineCount(); after > before+2 {
				t.Errorf("goroutines leaked after cancelled decode: %d -> %d", before, after)
			}
		})
	}
}

// TestContextlessPathUnchanged pins that the Background-bound wrappers
// still produce byte-identical output — the cancellation plumbing must
// not perturb the determinism invariant.
func TestContextlessPathUnchanged(t *testing.T) {
	img := workload.Dial(160, 120, 4, 4)
	opt := Options{Rate: 0.25}
	seq, err := Encode(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctxRes, err := EncodeParallelContext(context.Background(), img, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(seq.Data) != string(ctxRes.Data) {
		t.Fatal("context-bound encode diverged from sequential encode")
	}
}
