package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestDelayAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Spawn("p", 0, func(p *Proc) {
		p.Delay(100)
		at = p.Now()
	})
	end := e.Run()
	if at != 100 || end != 100 {
		t.Fatalf("got at=%d end=%d, want 100", at, end)
	}
}

func TestDelayZeroAndNegative(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", 0, func(p *Proc) {
		p.Delay(0)
		p.Delay(-5)
		if p.Now() != 0 {
			t.Errorf("zero/negative delay advanced clock to %d", p.Now())
		}
	})
	e.Run()
}

func TestSpawnAtFutureTime(t *testing.T) {
	e := NewEngine()
	var start Time
	e.Spawn("late", 42, func(p *Proc) { start = p.Now() })
	e.Run()
	if start != 42 {
		t.Fatalf("late proc started at %d, want 42", start)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		var trace []string
		e := NewEngine()
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), 0, func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Delay(10)
					trace = append(trace, fmt.Sprintf("p%d@%d", i, p.Now()))
				}
			})
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != 12 {
		t.Fatalf("trace length %d, want 12", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic schedule at %d: %q vs %q", i, a[i], b[i])
		}
	}
	// Same-time events must resolve in spawn order.
	if a[0] != "p0@10" || a[1] != "p1@10" {
		t.Fatalf("tie-break order wrong: %v", a[:4])
	}
}

func TestResourceSerializesTransfers(t *testing.T) {
	e := NewEngine()
	r := &Resource{Name: "bus", BytesPerCycle: 2, Latency: 5}
	var t1, t2 Time
	e.Spawn("a", 0, func(p *Proc) {
		p.Transfer(r, 100) // busy 50, +5 latency => done at 55
		t1 = p.Now()
	})
	e.Spawn("b", 0, func(p *Proc) {
		p.Transfer(r, 100) // server free at 50, so 50..100, +5 => 105
		t2 = p.Now()
	})
	e.Run()
	if t1 != 55 {
		t.Errorf("first transfer done at %d, want 55", t1)
	}
	if t2 != 105 {
		t.Errorf("second transfer done at %d, want 105", t2)
	}
	if r.TotalBytes != 200 || r.Transfers != 2 || r.BusyCycles != 100 {
		t.Errorf("accounting: bytes=%d transfers=%d busy=%d", r.TotalBytes, r.Transfers, r.BusyCycles)
	}
}

func TestResourcePipelining(t *testing.T) {
	// Two async transfers from one proc: second streams right behind the
	// first (bandwidth-limited), each pays latency once.
	e := NewEngine()
	r := &Resource{Name: "bus", BytesPerCycle: 1, Latency: 100}
	var done1, done2 Time
	e.Spawn("p", 0, func(p *Proc) {
		c1 := p.TransferAsync(r, 10)
		c2 := p.TransferAsync(r, 10)
		p.WaitFor(c1, c2)
		done1, done2 = c1.CompletedAt(), c2.CompletedAt()
	})
	e.Run()
	if done1 != 110 {
		t.Errorf("c1 at %d, want 110", done1)
	}
	if done2 != 120 { // not 220: latency overlaps with streaming
		t.Errorf("c2 at %d, want 120 (pipelined)", done2)
	}
}

func TestWaitForAlreadyDone(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", 0, func(p *Proc) {
		r := &Resource{Name: "x", BytesPerCycle: 1}
		c := p.TransferAsync(r, 4)
		p.Delay(1000)
		if !c.Done() {
			t.Error("completion should be done after long delay")
		}
		p.WaitFor(c) // must not block
		p.WaitFor(nil)
		if p.Now() != 1000 {
			t.Errorf("WaitFor on done completion advanced time to %d", p.Now())
		}
	})
	e.Run()
}

func TestMutexExclusionAndFIFO(t *testing.T) {
	e := NewEngine()
	m := &Mutex{}
	var order []string
	var inside int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), 0, func(p *Proc) {
			p.Lock(m)
			inside++
			if inside != 1 {
				t.Errorf("mutual exclusion violated: %d inside", inside)
			}
			order = append(order, p.Name())
			p.Delay(10)
			inside--
			p.Unlock(m)
		})
	}
	end := e.Run()
	if end != 30 {
		t.Errorf("end=%d, want 30 (serialized critical sections)", end)
	}
	want := []string{"w0", "w1", "w2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FIFO order violated: %v", order)
		}
	}
}

func TestUnlockUnlockedPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", 0, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Unlock of unlocked mutex did not panic")
			}
		}()
		p.Unlock(&Mutex{})
	})
	e.Run()
}

func TestBarrierReleasesTogether(t *testing.T) {
	e := NewEngine()
	b := &Barrier{N: 3}
	var times []Time
	for i := 0; i < 3; i++ {
		d := Time(10 * (i + 1))
		e.Spawn(fmt.Sprintf("p%d", i), 0, func(p *Proc) {
			p.Delay(d)
			p.Arrive(b)
			times = append(times, p.Now())
		})
	}
	e.Run()
	for _, tt := range times {
		if tt != 30 {
			t.Fatalf("barrier released at %v, want all at 30", times)
		}
	}
}

func TestBarrierOfOne(t *testing.T) {
	e := NewEngine()
	e.Spawn("solo", 0, func(p *Proc) {
		p.Arrive(&Barrier{N: 1})
		if p.Now() != 0 {
			t.Error("single-member barrier blocked")
		}
	})
	e.Run()
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("deadlocked engine did not panic")
		}
	}()
	e := NewEngine()
	m := &Mutex{}
	e.Spawn("a", 0, func(p *Proc) {
		p.Lock(m)
		p.Lock(m) // self-deadlock
	})
	e.Run()
}

func TestEngineAtThunks(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(5, func() { fired = append(fired, e.Now()) })
	e.At(3, func() { fired = append(fired, e.Now()) })
	e.Run()
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 5 {
		t.Fatalf("thunks fired at %v, want [3 5]", fired)
	}
}

// Property: time observed by a single process is monotonically
// non-decreasing over an arbitrary sequence of delays and transfers.
func TestPropTimeMonotone(t *testing.T) {
	f := func(ops []uint16) bool {
		if len(ops) > 200 {
			ops = ops[:200]
		}
		e := NewEngine()
		r := &Resource{Name: "bus", BytesPerCycle: 4, Latency: 7}
		ok := true
		e.Spawn("p", 0, func(p *Proc) {
			last := p.Now()
			for _, op := range ops {
				if op%2 == 0 {
					p.Delay(Time(op % 97))
				} else {
					p.Transfer(r, int64(op%511)+1)
				}
				if p.Now() < last {
					ok = false
				}
				last = p.Now()
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a bandwidth resource conserves bytes and its busy time
// equals ceil(bytes_i / rate) summed over transfers.
func TestPropResourceAccounting(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 100 {
			sizes = sizes[:100]
		}
		e := NewEngine()
		r := &Resource{Name: "bus", BytesPerCycle: 8, Latency: 3}
		var total int64
		var busy Time
		for _, s := range sizes {
			n := int64(s) + 1
			total += n
			busy += Time((n + 7) / 8)
		}
		e.Spawn("p", 0, func(p *Proc) {
			for _, s := range sizes {
				p.Transfer(r, int64(s)+1)
			}
		})
		e.Run()
		return r.TotalBytes == total && r.BusyCycles == busy && r.Transfers == int64(len(sizes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: back-to-back async transfers on a shared resource complete
// no earlier than bandwidth allows: completion_k >= sum(busy_1..k).
func TestPropBandwidthLowerBound(t *testing.T) {
	f := func(sizes []uint16, nprocs uint8) bool {
		np := int(nprocs%4) + 1
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		e := NewEngine()
		r := &Resource{Name: "bus", BytesPerCycle: 16, Latency: 11}
		var totalBusy Time
		for _, s := range sizes {
			totalBusy += Time((int64(s) + 15) / 16)
		}
		for i := 0; i < np; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), 0, func(p *Proc) {
				for j, s := range sizes {
					if j%np == i {
						p.Transfer(r, int64(s))
					}
				}
			})
		}
		end := e.Run()
		return end >= totalBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTwicePanics(t *testing.T) {
	e := NewEngine()
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	e.Run()
}

func TestUtilization(t *testing.T) {
	e := NewEngine()
	r := &Resource{Name: "bus", BytesPerCycle: 1, Latency: 0}
	e.Spawn("p", 0, func(p *Proc) {
		p.Transfer(r, 50)
		p.Delay(50)
	})
	end := e.Run()
	if u := r.Utilization(end); u != 0.5 {
		t.Fatalf("utilization %v, want 0.5", u)
	}
	if r.Utilization(0) != 0 {
		t.Fatal("utilization at zero time should be 0")
	}
}

func TestAtClampsPastTimes(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("p", 0, func(p *Proc) {
		p.Delay(100)
		p.Engine().At(50, func() { order = append(order, "past") }) // clamped to now
		p.Delay(10)
		order = append(order, "after")
	})
	e.Run()
	if len(order) != 2 || order[0] != "past" || order[1] != "after" {
		t.Fatalf("order: %v", order)
	}
}

func TestSpawnClampsPastStart(t *testing.T) {
	e := NewEngine()
	var started Time
	e.Spawn("a", 0, func(p *Proc) {
		p.Delay(40)
		p.Engine().Spawn("b", 10, func(q *Proc) { started = q.Now() })
	})
	e.Run()
	if started != 40 {
		t.Fatalf("late spawn started at %d, want clamped 40", started)
	}
}

func TestResourceZeroBandwidthPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", 0, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("zero-bandwidth resource accepted")
			}
		}()
		p.Transfer(&Resource{Name: "bad"}, 10)
	})
	e.Run()
}

func TestBarrierInvalidNPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", 0, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for N=0 barrier")
			}
		}()
		p.Arrive(&Barrier{})
	})
	e.Run()
}

func TestWhenDoneImmediateAndDeferred(t *testing.T) {
	e := NewEngine()
	var log []string
	e.Spawn("p", 0, func(p *Proc) {
		r := &Resource{Name: "r", BytesPerCycle: 1}
		c := p.TransferAsync(r, 10)
		p.Engine().WhenDone(c, func() { log = append(log, "deferred") })
		p.WaitFor(c)
		log = append(log, "woken")
		p.Engine().WhenDone(c, func() { log = append(log, "immediate") })
	})
	e.Run()
	want := []string{"deferred", "woken", "immediate"}
	for i := range want {
		if i >= len(log) || log[i] != want[i] {
			t.Fatalf("log: %v", log)
		}
	}
}

func TestProcNameAndEngineAccessors(t *testing.T) {
	e := NewEngine()
	e.Spawn("worker", 0, func(p *Proc) {
		if p.Name() != "worker" || p.Engine() != e {
			t.Error("accessors broken")
		}
	})
	e.Run()
}
