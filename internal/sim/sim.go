// Package sim provides a small deterministic discrete-event simulation
// engine used to model the Cell Broadband Engine in virtual time.
//
// The engine advances a virtual clock measured in processor cycles.
// Simulated activities run as processes (Proc): ordinary Go functions
// executing in their own goroutine, but scheduled cooperatively so that
// exactly one process runs at a time. A process blocks by delaying,
// transferring data through a shared Resource (a pipelined bandwidth
// server such as the off-chip memory interface), waiting on completions
// of asynchronous transfers, or locking a virtual mutex. Identical
// inputs always produce identical schedules: ties in the event queue are
// broken by a monotonically increasing sequence number.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in clock cycles.
type Time int64

// event is a scheduled engine action. Proc resumptions and completion
// thunks share one queue so that ordering between them is well defined.
type event struct {
	at  Time
	seq int64
	p   *Proc  // non-nil: resume this process
	fn  func() // non-nil: run this thunk inside the engine
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() *event  { return h[0] }
func (h eventHeap) Empty() bool   { return len(h) == 0 }
func (h eventHeap) MinTime() (Time, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// Engine owns the virtual clock and the event queue.
type Engine struct {
	now     Time
	seq     int64
	pq      eventHeap
	yield   chan struct{} // signalled by the running process when it blocks or ends
	running int           // processes that have been spawned and not yet finished
	started bool
}

// NewEngine returns an engine with an empty event queue at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

func (e *Engine) nextSeq() int64 { e.seq++; return e.seq }

func (e *Engine) schedule(ev *event) {
	ev.seq = e.nextSeq()
	heap.Push(&e.pq, ev)
}

// At schedules fn to run inside the engine at absolute time t.
// It may be called before Run or from within a running process.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.schedule(&event{at: t, fn: fn})
}

// Proc is a simulated process. All its methods must be called from the
// process's own function; they cooperatively yield to the engine.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	done   bool
}

// Name returns the label given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Spawn creates a process that will begin running fn at time `at`.
func (e *Engine) Spawn(name string, at Time, fn func(p *Proc)) *Proc {
	if at < e.now {
		at = e.now
	}
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.running++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		e.yield <- struct{}{}
	}()
	e.schedule(&event{at: at, p: p})
	return p
}

// resumeProc hands control to p and waits until it blocks or finishes.
func (e *Engine) resumeProc(p *Proc) {
	p.resume <- struct{}{}
	<-e.yield
	if p.done {
		e.running--
		p.done = false // consume the flag; a proc finishes exactly once
	}
}

// Run processes events until the queue is empty and all processes have
// finished. It returns the final virtual time. Run panics on deadlock
// (processes still running with no pending events).
func (e *Engine) Run() Time {
	// invariant: the simulator is driven by this repo's harness code only;
	// misuse of the Engine API is a programming error, never input-dependent.
	if e.started {
		panic("sim: Engine.Run called twice")
	}
	e.started = true
	for !e.pq.Empty() {
		ev := heap.Pop(&e.pq).(*event)
		e.now = ev.at
		if ev.p != nil {
			e.resumeProc(ev.p)
		} else {
			ev.fn()
		}
	}
	// invariant: a modeled deadlock means the simulated protocol itself is
	// wrong (a model bug); there is no input to reject, so fail loudly.
	if e.running != 0 {
		panic(fmt.Sprintf("sim: deadlock, %d process(es) blocked with no pending events", e.running))
	}
	return e.now
}

// block yields to the engine and sleeps until something resumes p.
func (p *Proc) block() {
	p.eng.yield <- struct{}{}
	<-p.resume
}

// wakeAt schedules p to resume at time t (from engine or process context).
func (p *Proc) wakeAt(t Time) {
	p.eng.schedule(&event{at: t, p: p})
}

// Delay advances the process's local view of time by d cycles.
// Negative delays are treated as zero.
func (p *Proc) Delay(d Time) {
	if d <= 0 {
		return
	}
	p.wakeAt(p.eng.now + d)
	p.block()
}

// Completion represents the future completion of an asynchronous
// operation such as a DMA transfer.
type Completion struct {
	done    bool
	at      Time
	waiters []*Proc
	thunks  []func()
}

// Done reports whether the operation has completed.
func (c *Completion) Done() bool { return c.done }

// CompletedAt returns the virtual time of completion (valid once Done).
func (c *Completion) CompletedAt() Time { return c.at }

func (c *Completion) complete(e *Engine) {
	c.done = true
	c.at = e.now
	for _, fn := range c.thunks {
		fn()
	}
	c.thunks = nil
	for _, w := range c.waiters {
		w.wakeAt(e.now)
	}
	c.waiters = nil
}

// WhenDone runs fn at the moment c completes (immediately if it already
// has). Thunks run before any blocked waiters resume, so data delivered
// by a thunk is visible to every process woken by the completion.
func (e *Engine) WhenDone(c *Completion, fn func()) {
	if c.done {
		fn()
		return
	}
	c.thunks = append(c.thunks, fn)
}

// CompleteAt arranges for c to complete at absolute virtual time t,
// waking all waiters. It may be called before Run or from a process.
func (e *Engine) CompleteAt(c *Completion, t Time) {
	e.At(t, func() { c.complete(e) })
}

// WaitFor blocks until every given completion is done. Completions are
// awaited in argument order, which keeps wake-ups deterministic.
func (p *Proc) WaitFor(cs ...*Completion) {
	for _, c := range cs {
		if c == nil || c.done {
			continue
		}
		c.waiters = append(c.waiters, p)
		p.block()
	}
}

// Resource models a pipelined bandwidth server: transfers are serialized
// through the server at BytesPerCycle, and each transfer additionally
// observes a fixed pipeline Latency between leaving the server and
// completing. This is the standard first-order model for a memory
// interface: back-to-back transfers stream at full bandwidth while each
// individual transfer still sees the access latency.
type Resource struct {
	Name          string
	BytesPerCycle float64
	Latency       Time

	nextFree   Time
	TotalBytes int64 // accounting: total payload moved
	BusyCycles Time  // accounting: cycles the server was occupied
	Transfers  int64 // accounting: number of transfers served
}

// busyFor returns the server occupancy for a payload of n bytes.
func (r *Resource) busyFor(n int64) Time {
	// invariant: resources are constructed from the calibrated machine
	// tables, which are validated positive at configuration time.
	if r.BytesPerCycle <= 0 {
		panic("sim: Resource with non-positive bandwidth")
	}
	return Time(math.Ceil(float64(n) / r.BytesPerCycle))
}

// TransferAsync enqueues a transfer of n bytes and returns its
// completion without blocking the calling process.
func (p *Proc) TransferAsync(r *Resource, n int64) *Completion {
	e := p.eng
	start := e.now
	if r.nextFree > start {
		start = r.nextFree
	}
	busy := r.busyFor(n)
	r.nextFree = start + busy
	r.TotalBytes += n
	r.BusyCycles += busy
	r.Transfers++
	c := &Completion{}
	e.CompleteAt(c, start+busy+r.Latency)
	return c
}

// Transfer moves n bytes through r, blocking until completion.
func (p *Proc) Transfer(r *Resource, n int64) {
	p.WaitFor(p.TransferAsync(r, n))
}

// Utilization reports the fraction of virtual time [0, total] during
// which the resource's server was busy.
func (r *Resource) Utilization(total Time) float64 {
	if total <= 0 {
		return 0
	}
	return float64(r.BusyCycles) / float64(total)
}

// Mutex is a virtual-time mutual exclusion lock with FIFO handoff.
type Mutex struct {
	locked bool
	queue  []*Proc
}

// Lock acquires m, blocking in virtual time while another process holds
// it. Handoff is FIFO, so lock acquisition order is deterministic.
func (p *Proc) Lock(m *Mutex) {
	if !m.locked {
		m.locked = true
		return
	}
	m.queue = append(m.queue, p)
	p.block() // woken holding the lock
}

// Unlock releases m, handing it to the longest-waiting process if any.
func (p *Proc) Unlock(m *Mutex) {
	// invariant: lock discipline of the modeled processes, mirroring
	// sync.Mutex semantics — an unlock-without-lock is a model bug.
	if !m.locked {
		panic("sim: Unlock of unlocked Mutex")
	}
	if len(m.queue) > 0 {
		next := m.queue[0]
		m.queue = m.queue[1:]
		next.wakeAt(p.eng.now) // lock stays held; ownership transfers
		return
	}
	m.locked = false
}

// Barrier blocks n processes until all have arrived, then releases them
// simultaneously in arrival order.
type Barrier struct {
	N       int
	waiting []*Proc
}

// Arrive joins the barrier. The last arriving process releases everyone.
func (p *Proc) Arrive(b *Barrier) {
	// invariant: barrier width is the configured worker count, validated
	// at machine configuration time.
	if b.N <= 0 {
		panic("sim: Barrier with non-positive N")
	}
	if len(b.waiting)+1 >= b.N {
		for _, w := range b.waiting {
			w.wakeAt(p.eng.now)
		}
		b.waiting = b.waiting[:0]
		return
	}
	b.waiting = append(b.waiting, p)
	p.block()
}
