package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets covers 1ns .. ~1099s in power-of-two buckets.
const histBuckets = 41

// Histogram is a lock-free power-of-two duration histogram: bucket i
// counts observations v with 2^(i-1) < v <= 2^i (bucket 0 counts v <=
// 1ns). Good to a factor of two, which is all a stage-imbalance view
// needs, at the cost of one atomic add per observation.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	if ns < 1 {
		ns = 1
	}
	// Bucket i holds 2^(i-1) < v <= 2^i, so exact powers of two land in
	// their own bucket.
	b := bits.Len64(uint64(ns - 1))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.sum.Add(ns)
}

// AddFrom merges another histogram's observations into h (bucket-wise
// atomic adds — the roll-up primitive recorders use when closing into
// the aggregate registry). Safe when o is concurrently observed; the
// merge is then a consistent-enough snapshot, exact once o quiesces.
func (h *Histogram) AddFrom(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.buckets {
		if v := o.buckets[i].Load(); v != 0 {
			h.buckets[i].Add(v)
		}
	}
	if v := o.sum.Load(); v != 0 {
		h.sum.Add(v)
	}
}

// Bucket returns the count in bucket i (0 <= i < NumHistBuckets).
func (h *Histogram) Bucket(i int) int64 {
	if h == nil {
		return 0
	}
	return h.buckets[i].Load()
}

// BucketBound returns the inclusive upper bound, in nanoseconds, of
// bucket i (observations v with BucketBound(i-1) < v <= BucketBound(i)).
func BucketBound(i int) int64 { return 1 << uint(i) }

// NumHistBuckets is the number of histogram buckets (1ns .. ~1099s in
// powers of two).
const NumHistBuckets = histBuckets

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the total observed nanoseconds.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) in
// nanoseconds: the top of the bucket where the q-th observation lands.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	want := int64(q * float64(total))
	if want < 1 {
		want = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= want {
			if i == 0 {
				return 1
			}
			return 1 << uint(i)
		}
	}
	return 1 << uint(histBuckets-1)
}

// String summarizes the histogram as count/mean/p50/p99.
func (h *Histogram) String() string {
	n := h.Count()
	if n == 0 {
		return "empty"
	}
	mean := time.Duration(h.Sum() / n)
	return fmt.Sprintf("n=%d mean=%v p50≤%v p99≤%v",
		n, mean, time.Duration(h.Quantile(0.5)), time.Duration(h.Quantile(0.99)))
}
