package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// StageStat is one row of the stage-breakdown report — the mirror of
// the paper's Table 2 (execution time per stage) with the concurrency
// columns the Cell version derived from per-SPE timing.
type StageStat struct {
	Name  string
	Wall  time.Duration // union of the stage's span intervals
	Busy  time.Duration // sum of span durations across lanes
	Par   float64       // Busy/Wall: average parallelism while active
	Spans int
}

// Report is the Amdahl view of one recorded encode: per-stage wall and
// busy time, the measured serial fraction, and the speedup bounds it
// implies. See DESIGN.md §6 for the exact semantics.
type Report struct {
	Total       time.Duration // whole-encode wall time
	Busy        time.Duration // total busy time across lanes (non-envelope)
	Serial      time.Duration // time with ≤1 lane active
	SerialFrac  float64       // Serial / Total
	Workers     int
	AchievedPar float64 // Busy / Total: effective parallelism
	AmdahlBound float64 // 1/(s + (1-s)/Workers)
	AmdahlLimit float64 // 1/s: bound at infinite workers
	Stages      []StageStat
}

// BuildReport derives the stage breakdown and Amdahl accounting from a
// span set. Envelope spans (whole-encode, whole-tile) define the total
// window but are excluded from busy and concurrency sums — they enclose
// the real work. workers is the configured pool width (used only for
// the finite Amdahl bound; pass 0 to use the number of tracks).
func BuildReport(spans []TSpan, workers int) *Report {
	r := &Report{Workers: workers}
	if len(spans) == 0 {
		return r
	}
	var work []TSpan // non-envelope spans
	for _, s := range spans {
		if !s.Stage.envelope() {
			work = append(work, s)
		}
	}
	lo, hi := Window(spans)
	r.Total = time.Duration(hi - lo)
	if r.Workers <= 0 {
		r.Workers = len(Tracks(work))
		if r.Workers == 0 {
			r.Workers = 1
		}
	}

	// Per-stage rows, in first-span order. Busy sums self time (nested
	// same-lane spans charge their enclosing span only for the
	// uncovered remainder), so r.Busy/Total never exceeds the lane
	// count.
	self := selfDurations(work)
	byRow := map[string][]int{}
	var order []string
	for i, s := range work {
		k := s.RowName()
		if _, ok := byRow[k]; !ok {
			order = append(order, k)
		}
		byRow[k] = append(byRow[k], i)
	}
	for _, k := range order {
		idx := byRow[k]
		var busy int64
		iv := make([][2]int64, 0, len(idx))
		for _, i := range idx {
			busy += self[i]
			iv = append(iv, [2]int64{work[i].Start, work[i].End})
		}
		wall := unionLen(iv)
		st := StageStat{
			Name: k, Wall: time.Duration(wall), Busy: time.Duration(busy),
			Spans: len(idx),
		}
		if wall > 0 {
			st.Par = float64(busy) / float64(wall)
		}
		r.Stages = append(r.Stages, st)
		r.Busy += st.Busy
	}

	r.Serial = time.Duration(serialTime(work, lo, hi))
	if r.Total > 0 {
		r.SerialFrac = float64(r.Serial) / float64(r.Total)
		r.AchievedPar = float64(r.Busy) / float64(r.Total)
	}
	s := r.SerialFrac
	if s < 1e-9 {
		s = 1e-9
	}
	r.AmdahlLimit = 1 / s
	r.AmdahlBound = 1 / (s + (1-s)/float64(r.Workers))
	return r
}

// Table renders the report as the human-readable stage-breakdown table
// behind `j2kenc --report`.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s %7s %7s %7s\n",
		"stage", "wall", "busy", "par", "%wall", "spans")
	for _, st := range r.Stages {
		frac := 0.0
		if r.Total > 0 {
			frac = 100 * float64(st.Wall) / float64(r.Total)
		}
		fmt.Fprintf(&b, "%-8s %12v %12v %6.2fx %6.1f%% %7d\n",
			st.Name, st.Wall.Round(time.Microsecond), st.Busy.Round(time.Microsecond),
			st.Par, frac, st.Spans)
	}
	fmt.Fprintf(&b, "total %v  busy %v  achieved parallelism %.2fx on %d workers\n",
		r.Total.Round(time.Microsecond), r.Busy.Round(time.Microsecond),
		r.AchievedPar, r.Workers)
	fmt.Fprintf(&b, "serial %v (%.1f%%)  Amdahl bound: %.2fx at %d workers, %.1fx at ∞\n",
		r.Serial.Round(time.Microsecond), 100*r.SerialFrac,
		r.AmdahlBound, r.Workers, r.AmdahlLimit)
	return b.String()
}

// sloTable renders the per-class operation latency quantile table
// shared by Registry.SLOTable and Recorder.SLOTable. get returns the
// class's histogram and completed-op count.
func sloTable(get func(OpClass) (*Histogram, int64)) string {
	var b strings.Builder
	rows := 0
	for c := OpClass(0); c < NumOpClasses; c++ {
		h, n := get(c)
		if n == 0 && h.Count() == 0 {
			continue
		}
		if rows == 0 {
			fmt.Fprintf(&b, "%-28s %6s %10s %10s %10s %10s\n",
				"class", "ops", "p50", "p95", "p99", "mean")
		}
		rows++
		cnt := h.Count()
		mean := time.Duration(0)
		if cnt > 0 {
			mean = time.Duration(h.Sum() / cnt)
		}
		fmt.Fprintf(&b, "%-28s %6d %10v %10v %10v %10v\n",
			c, n,
			time.Duration(h.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.95)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)).Round(time.Microsecond),
			mean.Round(time.Microsecond))
	}
	if rows == 0 {
		return "(no operations recorded)\n"
	}
	b.WriteString("quantiles are power-of-two bucket upper bounds\n")
	return b.String()
}

// SLOTable renders the registry's per-class operation latency
// quantiles — the process-lifetime SLO view.
func (g *Registry) SLOTable() string {
	return sloTable(func(c OpClass) (*Histogram, int64) {
		return g.SLO(c), g.Ops(c)
	})
}

// SLOTable renders this recorder's per-class operation latency
// quantiles (a single operation contributes one class; the ambient
// CLI recorder may accumulate several across a run).
func (r *Recorder) SLOTable() string {
	if r == nil {
		return "(observability disabled)\n"
	}
	return sloTable(func(c OpClass) (*Histogram, int64) {
		return r.SLOHist(c), r.OpCount(c)
	})
}

// MetricsTable renders the recorder's counters, per-lane claim counts,
// and per-stage latency summaries as aligned key/value text — the
// `-metrics` output and the human-readable face of the expvar snapshot.
func (r *Recorder) MetricsTable() string {
	if r == nil {
		return "(observability disabled)\n"
	}
	var b strings.Builder
	ctr := r.Counters()
	keys := make([]string, 0, len(ctr))
	for k := range ctr {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("counters:\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-20s %d\n", k, ctr[k])
	}
	if claims := r.LaneClaims(); len(claims) > 0 {
		b.WriteString("work-queue claims per lane:\n")
		for i, c := range claims {
			if c > 0 {
				fmt.Fprintf(&b, "  worker%-3d %d\n", i, c)
			}
		}
	}
	b.WriteString("stage latency:\n")
	for s := Stage(0); s < numStages; s++ {
		h := r.Hist(s)
		if h.Count() == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-8s %s\n", s, h)
	}
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(&b, "spans dropped: %d\n", d)
	}
	return b.String()
}
