package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Prometheus text exposition (format version 0.0.4) of the aggregate
// registry. The /metrics endpoint the j2k* commands serve calls
// WritePrometheus on every scrape; because the registry is monotone
// (recorders roll in on close, nothing ever resets), the exported
// counters and cumulative `le` histogram buckets have exactly the
// semantics Prometheus rate() and histogram_quantile() assume.
//
// Families:
//
//	j2k_<counter>_total                          counters (queue jobs, Tier-1 ops, pool hits, …)
//	j2k_operations_total{class=...}              completed operations per SLO class
//	j2k_operations_active                        gauge of in-flight operations
//	j2k_operation_errors_total                   operations finished with an error
//	j2k_op_duration_seconds{class=...}           whole-operation latency histograms (SLO)
//	j2k_stage_duration_seconds{stage=...}        per-stage span latency histograms
//	j2k_spans_dropped_total                      spans lost to lane-buffer overflow
func (g *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	// Counters, in declaration order (stable output for golden tests).
	for c := Counter(0); c < numCounters; c++ {
		name := "j2k_" + c.String() + "_total"
		fmt.Fprintf(bw, "# HELP %s Aggregate %s count.\n", name, strings.ReplaceAll(c.String(), "_", " "))
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		fmt.Fprintf(bw, "%s %d\n", name, g.Counter(c))
	}

	// Completed operations per class (only classes that occurred, so an
	// idle process exports an empty family rather than 16 zero series).
	fmt.Fprint(bw, "# HELP j2k_operations_total Completed operations by SLO class.\n")
	fmt.Fprint(bw, "# TYPE j2k_operations_total counter\n")
	for c := OpClass(0); c < NumOpClasses; c++ {
		if n := g.Ops(c); n > 0 {
			fmt.Fprintf(bw, "j2k_operations_total{class=%q} %d\n", escapeLabel(c.String()), n)
		}
	}

	fmt.Fprint(bw, "# HELP j2k_operations_active Operations currently in flight.\n")
	fmt.Fprint(bw, "# TYPE j2k_operations_active gauge\n")
	fmt.Fprintf(bw, "j2k_operations_active %d\n", g.OpsActive())

	fmt.Fprint(bw, "# HELP j2k_operation_errors_total Operations that finished with an error.\n")
	fmt.Fprint(bw, "# TYPE j2k_operation_errors_total counter\n")
	fmt.Fprintf(bw, "j2k_operation_errors_total %d\n", g.OpErrors())

	// SLO latency histograms by operation class.
	fmt.Fprint(bw, "# HELP j2k_op_duration_seconds Whole-operation latency by SLO class.\n")
	fmt.Fprint(bw, "# TYPE j2k_op_duration_seconds histogram\n")
	for c := OpClass(0); c < NumOpClasses; c++ {
		h := g.SLO(c)
		if h.Count() == 0 {
			continue
		}
		writeHistogram(bw, "j2k_op_duration_seconds", "class", c.String(), h)
	}

	// Per-stage span latency histograms.
	fmt.Fprint(bw, "# HELP j2k_stage_duration_seconds Pipeline stage span latency.\n")
	fmt.Fprint(bw, "# TYPE j2k_stage_duration_seconds histogram\n")
	for s := Stage(0); s < numStages; s++ {
		h := g.Hist(s)
		if h.Count() == 0 {
			continue
		}
		writeHistogram(bw, "j2k_stage_duration_seconds", "stage", s.String(), h)
	}

	fmt.Fprint(bw, "# HELP j2k_spans_dropped_total Spans lost to lane-buffer overflow.\n")
	fmt.Fprint(bw, "# TYPE j2k_spans_dropped_total counter\n")
	fmt.Fprintf(bw, "j2k_spans_dropped_total %d\n", g.Dropped())

	// Registered external metrics (scheduler gauges and the like),
	// sorted by name so the exposition stays deterministic regardless
	// of registration order.
	extMu.Lock()
	exts := make([]ExternalMetric, len(externals))
	copy(exts, externals)
	extMu.Unlock()
	sort.Slice(exts, func(i, j int) bool { return exts[i].Name < exts[j].Name })
	for _, m := range exts {
		fmt.Fprintf(bw, "# HELP %s %s\n", m.Name, m.Help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.Name, m.Type)
		fmt.Fprintf(bw, "%s %d\n", m.Name, m.Read())
	}

	return bw.Flush()
}

// ExternalMetric is a single-series metric owned by another package
// (e.g. the codec scheduler's lane and queue gauges) that /metrics
// should export alongside the registry. Read is called on every
// scrape and must be safe for concurrent use.
type ExternalMetric struct {
	Name string // full metric name, e.g. "j2k_scheduler_lanes_open"
	Help string
	Type string // "gauge" or "counter"
	Read func() int64
}

var (
	extMu     sync.Mutex
	externals []ExternalMetric
)

// RegisterMetrics adds external metrics to every subsequent
// WritePrometheus exposition. Metrics with a name already registered
// are ignored, so a process-wide singleton can register idempotently.
func RegisterMetrics(ms ...ExternalMetric) {
	extMu.Lock()
	defer extMu.Unlock()
	for _, m := range ms {
		dup := false
		for _, e := range externals {
			if e.Name == m.Name {
				dup = true
				break
			}
		}
		if !dup && m.Read != nil {
			externals = append(externals, m)
		}
	}
}

// writeHistogram emits one labeled histogram series: cumulative
// `le`-bucket lines (power-of-two bounds converted to seconds, empty
// buckets elided — a legal sparse exposition since each emitted bucket
// still carries the full cumulative count), the mandatory `+Inf`
// bucket, and the `_sum` / `_count` pair.
func writeHistogram(w io.Writer, name, labelKey, labelVal string, h *Histogram) {
	lv := escapeLabel(labelVal)
	var cum int64
	for i := 0; i < NumHistBuckets; i++ {
		n := h.Bucket(i)
		if n == 0 {
			continue
		}
		cum += n
		le := strconv.FormatFloat(float64(BucketBound(i))/1e9, 'g', -1, 64)
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, labelKey, lv, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, labelKey, lv, cum)
	sum := strconv.FormatFloat(float64(h.Sum())/1e9, 'g', -1, 64)
	fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", name, labelKey, lv, sum)
	fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, labelKey, lv, cum)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// PromSample is one parsed sample line of a text exposition.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsePrometheus is a minimal scraper for the text exposition format:
// it validates comment lines (# HELP / # TYPE with a known metric
// type) and parses every sample into name, labels, and value. The
// j2kload self-check and the exposition round-trip tests use it; it is
// not a general Prometheus client.
func ParsePrometheus(r io.Reader) ([]PromSample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var out []PromSample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("prom: line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("prom: line %d: TYPE needs a metric type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("prom: line %d: unknown metric type %q", lineNo, fields[3])
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSample parses `name{k="v",...} value` or `name value`.
func parseSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	// A timestamp after the value is legal; take the first field.
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` block starting at s[0] == '{',
// returning the index just past the closing brace.
func parseLabels(s string, into map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label without '='")
		}
		key := s[i : i+eq]
		if !validMetricName(key) {
			return 0, fmt.Errorf("invalid label name %q", key)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value not quoted")
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value")
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape")
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape \\%c", s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		into[key] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// validMetricName checks the exposition's [a-zA-Z_:][a-zA-Z0-9_:]*
// metric-name grammar (':' is reserved for recording rules but legal).
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// SortSamples orders samples by name then label signature (test helper
// for stable comparisons).
func SortSamples(samples []PromSample) {
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].Name != samples[j].Name {
			return samples[i].Name < samples[j].Name
		}
		return labelSig(samples[i].Labels) < labelSig(samples[j].Labels)
	})
}

func labelSig(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
		b.WriteByte(';')
	}
	return b.String()
}
