package obs

import (
	"expvar"
	"sync"
)

// PublishExpvar registers the observability snapshot under the expvar
// key "j2kcell" (visible at /debug/vars when an HTTP server with the
// expvar handler is running — j2kenc's -pprof flag starts one). The
// function reads the *current* recorder at each scrape, so it may be
// called before Enable and survives Enable/Disable cycles. Safe to call
// more than once.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("j2kcell", expvar.Func(func() any {
			r := Active()
			if r == nil {
				return map[string]any{"enabled": false}
			}
			return map[string]any{
				"enabled":       true,
				"counters":      r.Counters(),
				"lane_claims":   r.LaneClaims(),
				"spans_dropped": r.Dropped(),
			}
		}))
	})
}

var expvarOnce sync.Once
