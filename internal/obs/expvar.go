package obs

import (
	"expvar"
	"sync"
)

// PublishExpvar registers the observability snapshot under the expvar
// key "j2kcell" (visible at /debug/vars when an HTTP server with the
// expvar handler is running — the -pprof/-metrics flags start one).
// The snapshot reads the process-wide aggregate registry, not whichever
// recorder happens to be Active(): once multiple per-operation
// recorders exist, the registry is the only coherent whole-process
// view — the ambient recorder is just one operation among many (and
// usually nil in server-style processes). Safe to call more than once.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("j2kcell", expvar.Func(func() any {
			g := Aggregate()
			ops := map[string]int64{}
			for c := OpClass(0); c < NumOpClasses; c++ {
				if n := g.Ops(c); n > 0 {
					ops[c.String()] = n
				}
			}
			snap := map[string]any{
				"counters":      g.Counters(),
				"operations":    ops,
				"ops_total":     g.OpsTotal(),
				"ops_active":    g.OpsActive(),
				"op_errors":     g.OpErrors(),
				"spans_dropped": g.Dropped(),
			}
			// The ambient recorder's live (not yet rolled-up) view, when
			// one is installed — useful for the single-operation CLI path
			// where the registry stays empty until the run completes.
			if r := Active(); r != nil {
				snap["ambient"] = map[string]any{
					"counters":    r.Counters(),
					"lane_claims": r.LaneClaims(),
				}
			}
			return snap
		}))
	})
}

var expvarOnce sync.Once
