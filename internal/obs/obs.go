// Package obs is the encoder's observability layer: per-stage,
// per-worker spans, work-queue and coder counters, and duration
// histograms, recorded behind a single global sink that costs nearly
// nothing when disabled.
//
// The paper's core evidence is an execution-time breakdown per pipeline
// stage (Section 5, Table 2 / Figure 6) — it is how Kang & Bader found
// the sequential PCRD rate-control tail that flattens the Figure 5
// scaling curve, and how they proved the fused DWT beat the bandwidth
// wall. This package gives the Go port the same instruments: every
// pipeline stage (MCT, DWT per level and direction, quantization,
// Tier-1 block jobs, PCRD hull/search, Tier-2 assembly, framing)
// records spans into per-lane buffers that merge into a Chrome
// `chrome://tracing` timeline, an Amdahl report (serial fraction,
// speedup bound, achieved parallelism), and per-stage histograms;
// counters track the quantities the paper tables: work-queue jobs and
// per-worker claim counts, Tier-1 scan/decision ops and MQ
// renormalization chunks, bytes moved per DWT pass (the DMA-traffic
// analogue), and buffer-pool hit/miss rates.
//
// Design rule (pinned by TestObsDisabledSpanAllocs and
// BenchmarkEncodeObsOverhead): when no Recorder is active, every entry
// point reduces to an atomic pointer load and a branch — no time reads,
// no allocation, no atomic read-modify-write.
package obs

import (
	"context"
	"runtime/trace"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage for spans and histograms.
type Stage uint8

// Pipeline stages, in rough execution order.
const (
	StageMCT     Stage = iota // level shift + component transform (row stripes)
	StageDWTVert              // vertical lifting of one level (column groups)
	StageDWTHorz              // horizontal filtering of one level (row stripes)
	StageQuant                // standalone quantization (oracle path)
	StageT1                   // fused quantize + Tier-1 block job
	StageHull                 // R-D ladder + convex hull (when not fused into T1)
	StageRate                 // PCRD λ search (truncation-scan probes)
	StageT2                   // Tier-2 packet assembly
	StageFrame                // codestream framing
	StageCalib                // one-time synthesis-gain measurement (dwt.BandGain)
	StageTile                 // whole-tile job envelope (tiled encodes/decodes)
	StageEncode               // whole-encode envelope (coordinator lane)
	StageZero                 // decode: pooled-plane clearing (row stripes)
	StageDeq                  // decode: dequantization (per component × band)
	StageIDWTVert             // decode: vertical inverse lifting (column groups)
	StageIDWTHorz             // decode: horizontal inverse filtering (row stripes)
	StageIMCT                 // decode: inverse component transform + clamp (row stripes)
	StageDecode               // whole-decode envelope (coordinator lane)
	StageT1HT                 // Tier-1 block jobs through the HT (Part 15) coder
	StageAdmit                // scheduler admission-queue wait (coordinator lane)
	numStages
)

var stageNames = [numStages]string{
	"mct", "dwt-v", "dwt-h", "quant", "t1", "hull",
	"rate", "t2", "frame", "calib", "tile", "encode",
	"zero", "deq", "idwt-v", "idwt-h", "imct", "decode",
	"t1ht", "admit",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// envelope reports whether spans of this stage enclose other stages'
// spans (and so must not contribute to busy/concurrency accounting).
func (s Stage) envelope() bool { return s == StageTile || s == StageEncode || s == StageDecode }

// Counter identifies one global atomic counter.
type Counter uint8

// Counters. DWTBytesMoved is the Go analogue of the paper's DMA-traffic
// accounting: bytes read + written by the lifting kernels per pass
// (Section 3.2 prices the fused DWT by exactly this quantity).
const (
	CtrQueueRuns      Counter = iota // parallel work-queue drains
	CtrQueueJobs                     // jobs pushed through the queue
	CtrT1Blocks                      // code blocks entropy coded
	CtrT1Scanned                     // Tier-1 coefficients examined
	CtrT1Coded                       // Tier-1 MQ decisions coded
	CtrMQRenorms                     // MQ renormalization chunks (batched shifts)
	CtrDWTBytesMoved                 // bytes read+written by DWT lifting passes
	CtrPoolPlaneHit                  // plane arena reuse
	CtrPoolPlaneMiss                 // plane arena allocation
	CtrPoolScratchHit                // stripe/block scratch reuse
	CtrPoolScratchMiss               // stripe/block scratch allocation
	CtrPoolCoderHit                  // Tier-1 coder state reuse
	CtrPoolCoderMiss                 // Tier-1 coder state allocation
	CtrRateProbes                    // PCRD λ-bisection probes
	CtrHulls                         // convex hulls computed
	CtrKernelScalar                  // encodes run with the scalar kernel set
	CtrKernelSSE2                    // encodes run with the SSE2 kernel set
	CtrKernelAVX2                    // encodes run with the AVX2 kernel set
	CtrFaultPanics                   // worker panics contained into typed FaultErrors
	CtrDecodeParts                   // dynamic T1-decode partitions formed
	CtrDecodeSingles                 // expensive blocks isolated as singleton partitions
	CtrHTBlocks                      // code blocks coded by the HT (Part 15) coder
	CtrHTBytes                       // bytes emitted by the HT coder (all streams + trailers)
	CtrSchedSelfClaims               // shared-scheduler jobs claimed by the operation's own goroutine
	CtrSchedPoolClaims               // shared-scheduler jobs claimed by pool workers (cross-lane capacity)
	CtrSchedAdmitWaits               // operations that waited in the scheduler admission queue
	CtrResyncs                       // SOP/SOT resyncs performed by best-effort decodes
	CtrConcealedBlocks               // code blocks concealed as zeros by best-effort decodes
	numCounters
)

var counterNames = [numCounters]string{
	"queue_runs", "queue_jobs",
	"t1_blocks", "t1_scanned", "t1_coded", "mq_renorm_chunks",
	"dwt_bytes_moved",
	"pool_plane_hit", "pool_plane_miss",
	"pool_scratch_hit", "pool_scratch_miss",
	"pool_coder_hit", "pool_coder_miss",
	"rate_probes", "hulls",
	"kernel_scalar_encodes", "kernel_sse2_encodes", "kernel_avx2_encodes",
	"fault_contained_panics",
	"decode_t1_partitions", "decode_t1_singletons",
	"ht_blocks", "ht_bytes",
	"sched_self_claims", "sched_pool_claims", "sched_admit_waits",
	"resync", "concealed_blocks",
}

// KernelCounter maps a simd kernel-set name ("scalar", "sse2", "avx2")
// to its per-encode counter, so the codec can record which
// implementation served each encode without obs importing simd.
func KernelCounter(name string) (Counter, bool) {
	switch name {
	case "scalar":
		return CtrKernelScalar, true
	case "sse2":
		return CtrKernelSSE2, true
	case "avx2":
		return CtrKernelAVX2, true
	}
	return 0, false
}

func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "counter?"
}

// active is the ambient process-wide sink — the recorder the
// single-operation CLI path and legacy callers install with Enable.
// nil means no ambient recorder; recording calls that fall back to it
// are a load + branch. Concurrent operations should prefer
// WithOperation (op.go), which scopes a recorder to one context and
// wins over the ambient recorder in Current.
var active atomic.Pointer[Recorder]

// Active returns the ambient recorder, or nil when none is installed.
func Active() *Recorder { return active.Load() }

// Enabled reports whether an ambient recorder is installed.
func Enabled() bool { return active.Load() != nil }

// Enable installs a fresh recorder as the ambient sink and returns it.
// Its totals roll into the aggregate registry when Close is called.
func Enable() *Recorder {
	r := NewRecorder()
	active.Store(r)
	return r
}

// Disable removes the ambient sink and returns the recorder that was
// installed (nil if none). In-flight spans ending after Disable still
// land in that recorder's lanes — lanes hold their recorder.
func Disable() *Recorder {
	r := active.Load()
	active.Store(nil)
	return r
}

// Count adds 1 to a counter on the active recorder (no-op when
// disabled).
func Count(c Counter) { active.Load().Add(c, 1) }

// Add adds v to a counter on the active recorder (no-op when disabled).
func Add(c Counter, v int64) { active.Load().Add(c, v) }

// Acquire leases a lane from the active recorder; returns nil (a valid,
// zero-cost lane) when disabled.
func Acquire() *Lane { return active.Load().Acquire() }

// maxSpansPerLane bounds one lane's span buffer; past it, new spans are
// dropped and counted (a 3072²×3 encode records ~10k spans total, far
// below the cap).
const maxSpansPerLane = 1 << 15

// Recorder owns the lanes, counters, and histograms of one
// observability scope — one operation (WithOperation) or one ambient
// session (Enable). All methods are nil-receiver safe so callers can
// hold a possibly-nil *Recorder without branching.
type Recorder struct {
	epoch time.Time
	ctx   context.Context // carries the runtime/trace task for regions

	// Operation identity (empty for ambient recorders) and the
	// aggregate registry Close rolls this recorder's totals into.
	trace string
	kind  string
	reg   *Registry

	mu    sync.Mutex
	lanes []*Lane // every lane ever created, in id order
	free  []*Lane // released lanes (LIFO, so worker w usually keeps lane w)

	counters [numCounters]atomic.Int64
	hist     [numStages]Histogram
	slo      [NumOpClasses]Histogram // whole-operation latency by class
	ops      [NumOpClasses]atomic.Int64
	opErrors atomic.Int64
	dropped  atomic.Int64
	rolled   atomic.Bool // totals already merged into reg
	endTask  func()
}

// NewRecorder returns a recorder that is not yet installed as the
// ambient sink. Its totals roll into the aggregate registry on Close.
// When the Go execution tracer is running, the recorder opens a
// runtime/trace task so stage regions group under one encode in
// `go tool trace`.
func NewRecorder() *Recorder {
	r := &Recorder{epoch: time.Now(), ctx: context.Background(), reg: Aggregate()}
	if trace.IsEnabled() {
		ctx, task := trace.NewTask(r.ctx, "j2k-encode")
		r.ctx, r.endTask = ctx, task.End
	}
	return r
}

// TraceID returns the operation trace ID ("" for ambient recorders).
func (r *Recorder) TraceID() string {
	if r == nil {
		return ""
	}
	return r.trace
}

// Kind returns the operation kind label ("" for ambient recorders).
func (r *Recorder) Kind() string {
	if r == nil {
		return ""
	}
	return r.kind
}

// Close ends the recorder's runtime/trace task, if any, and rolls the
// recorder's counters, stage histograms, and SLO observations into the
// aggregate registry (exactly once — Close is idempotent). The
// recorder's own data remains readable: lanes, counters, and
// histograms are merged, not moved.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	if r.endTask != nil {
		r.endTask()
		r.endTask = nil
	}
	if r.reg != nil && r.rolled.CompareAndSwap(false, true) {
		r.reg.merge(r)
	}
}

// OpDone records one completed operation of the given class and its
// whole-operation latency — the SLO observation. Safe on nil.
func (r *Recorder) OpDone(c OpClass, d time.Duration) {
	if r == nil {
		return
	}
	r.ops[c].Add(1)
	r.slo[c].Observe(int64(d))
}

// OpFailed records one operation that finished with an error (its
// latency is not observed — a failed operation has no SLO latency).
// Safe on nil.
func (r *Recorder) OpFailed() {
	if r != nil {
		r.opErrors.Add(1)
	}
}

// SLOHist returns the recorder's whole-operation latency histogram for
// one class (nil when disabled).
func (r *Recorder) SLOHist(c OpClass) *Histogram {
	if r == nil {
		return nil
	}
	return &r.slo[c]
}

// OpCount returns the recorder's completed-operation count for one
// class.
func (r *Recorder) OpCount(c OpClass) int64 {
	if r == nil {
		return 0
	}
	return r.ops[c].Load()
}

// Add adds v to counter c. Safe on a nil recorder.
func (r *Recorder) Add(c Counter, v int64) {
	if r != nil {
		r.counters[c].Add(v)
	}
}

// Counter reads one counter.
func (r *Recorder) Counter(c Counter) int64 {
	if r == nil {
		return 0
	}
	return r.counters[c].Load()
}

// Hist returns the duration histogram of one stage (nil when disabled).
func (r *Recorder) Hist(s Stage) *Histogram {
	if r == nil {
		return nil
	}
	return &r.hist[s]
}

// Acquire leases a lane for the calling goroutine. Lanes are recycled
// LIFO, so a worker pool of stable width keeps stable lane ids — one
// timeline track per worker. Safe on a nil recorder (returns nil).
func (r *Recorder) Acquire() *Lane {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.free); n > 0 {
		l := r.free[n-1]
		r.free = r.free[:n-1]
		return l
	}
	l := &Lane{rec: r, id: len(r.lanes)}
	r.lanes = append(r.lanes, l)
	return l
}

// Release returns a lane to the recorder's free list. Safe on nil.
func (l *Lane) Release() {
	if l == nil {
		return
	}
	r := l.rec
	r.mu.Lock()
	r.free = append(r.free, l)
	r.mu.Unlock()
}

// Lane is a span buffer owned by exactly one goroutine at a time
// (between Acquire and Release). A nil *Lane is a valid disabled lane:
// Begin/End/Claim on it are branch-only no-ops.
type Lane struct {
	rec    *Recorder
	id     int
	spans  []spanRec
	claims int64 // work-queue jobs claimed by this lane
}

// ID returns the lane index (the timeline track).
func (l *Lane) ID() int {
	if l == nil {
		return -1
	}
	return l.id
}

// Claim counts one work-queue job claimed by this lane.
func (l *Lane) Claim() {
	if l != nil {
		l.claims++
	}
}

// spanRec is the compact in-buffer span record.
type spanRec struct {
	start, end int64 // ns since recorder epoch
	arg, idx   int32 // stage argument (e.g. DWT level) and job index
	stage      Stage
}

// Span is an in-flight span token returned by Begin. The zero Span
// (from a nil lane) is valid and End on it is a no-op.
type Span struct {
	ln    *Lane
	reg   *trace.Region
	start int64
	arg   int32
	idx   int32
	stage Stage
}

// Begin opens a span on the lane: stage, a stage argument (DWT level,
// tile index — whatever disambiguates), and the job index. On a nil
// lane it returns the zero Span without reading the clock.
func (l *Lane) Begin(stage Stage, arg, idx int32) Span {
	if l == nil {
		return Span{}
	}
	s := Span{ln: l, start: int64(time.Since(l.rec.epoch)), arg: arg, idx: idx, stage: stage}
	if trace.IsEnabled() {
		s.reg = trace.StartRegion(l.rec.ctx, stage.String())
	}
	return s
}

// End closes the span, appending it to the lane buffer and recording
// its duration in the stage histogram.
func (s Span) End() {
	l := s.ln
	if l == nil {
		return
	}
	if s.reg != nil {
		s.reg.End()
	}
	end := int64(time.Since(l.rec.epoch))
	if len(l.spans) >= maxSpansPerLane {
		l.rec.dropped.Add(1)
	} else {
		l.spans = append(l.spans, spanRec{start: s.start, end: end, arg: s.arg, idx: s.idx, stage: s.stage})
	}
	l.rec.hist[s.stage].Observe(end - s.start)
}

// Dropped reports how many spans overflowed lane buffers.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// LaneClaims returns the per-lane work-queue claim counts — the
// paper's per-SPE work-distribution view. Index is lane id.
func (r *Recorder) LaneClaims() []int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int64, len(r.lanes))
	for i, l := range r.lanes {
		out[i] = l.claims
	}
	return out
}

// Counters returns a name → value map of every non-zero counter.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	out := make(map[string]int64, numCounters)
	for c := Counter(0); c < numCounters; c++ {
		if v := r.counters[c].Load(); v != 0 {
			out[c.String()] = v
		}
	}
	return out
}

// TSpans flattens every lane's spans into exported timeline spans with
// nanosecond timestamps, one track per lane ("worker0", "worker1", …).
// Call it only after the instrumented work has finished (lanes are read
// unlocked; concurrent Begin/End would race).
func (r *Recorder) TSpans() []TSpan {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	lanes := append([]*Lane(nil), r.lanes...)
	r.mu.Unlock()
	var out []TSpan
	for _, l := range lanes {
		for _, s := range l.spans {
			out = append(out, TSpan{
				Track: "worker" + itoa(l.id),
				Name:  spanName(s.stage, s.arg, s.idx),
				Stage: s.stage,
				Start: s.start,
				End:   s.end,
			})
		}
	}
	return out
}

// spanName renders a stage plus its argument ("dwt-v L2", "tile 3").
func spanName(st Stage, arg, idx int32) string {
	switch st {
	case StageDWTVert, StageDWTHorz, StageIDWTVert, StageIDWTHorz:
		return st.String() + " L" + itoa(int(arg))
	case StageTile:
		return "tile " + itoa(int(idx))
	default:
		return st.String()
	}
}

// itoa is a minimal positive-int formatter (avoids strconv in the name
// path for readability only — this runs at export time, not encode
// time).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	if v < 0 {
		return "-" + itoa(-v)
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
