package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// Chrome trace event format (the `chrome://tracing` / Perfetto JSON
// schema): complete events ("ph":"X") with microsecond timestamps, one
// thread per track, plus thread-name metadata events so the UI labels
// each worker lane.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the spans (nanosecond timestamps) as a
// Chrome trace JSON document. counters, when non-nil, is attached as
// process metadata so the exported file carries the run's aggregate
// numbers too.
func WriteChromeTrace(w io.Writer, spans []TSpan, counters map[string]int64) error {
	tids := map[string]int{}
	var events []chromeEvent
	args := map[string]any{"name": "j2kcell encode"}
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Args: args,
	})
	if len(counters) > 0 {
		meta := map[string]any{}
		for k, v := range counters {
			meta[k] = v
		}
		events = append(events, chromeEvent{
			Name: "counters", Ph: "M", Pid: 1, Args: meta,
		})
	}
	for _, track := range Tracks(spans) {
		tid := len(tids)
		tids[track] = tid
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": track},
		})
	}
	ordered := append([]TSpan(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Start < ordered[j].Start })
	for _, s := range ordered {
		events = append(events, chromeEvent{
			Name: s.Name, Cat: "stage", Ph: "X", Pid: 1, Tid: tids[s.Track],
			Ts: float64(s.Start) / 1e3, Dur: float64(s.End-s.Start) / 1e3,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteChromeTraceFile writes the Chrome trace to a file path.
func WriteChromeTraceFile(path string, spans []TSpan, counters map[string]int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, spans, counters); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
