package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// Chrome trace event format (the `chrome://tracing` / Perfetto JSON
// schema): complete events ("ph":"X") with microsecond timestamps, one
// thread per track, plus thread-name metadata events so the UI labels
// each worker lane.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the spans (nanosecond timestamps) as a
// Chrome trace JSON document. counters, when non-nil, is attached as
// process metadata so the exported file carries the run's aggregate
// numbers too.
func WriteChromeTrace(w io.Writer, spans []TSpan, counters map[string]int64) error {
	events := appendProcessEvents(nil, 1, "j2kcell encode", spans, counters)
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// OpTrace is one operation's exported timeline: its trace ID and kind
// label the process row, its spans become the row's threads.
type OpTrace struct {
	TraceID  string
	Kind     string
	Spans    []TSpan
	Counters map[string]int64
}

// WriteChromeTraceOps serializes several concurrent operations into
// one Chrome trace, one pid per operation, so the trace viewer shows
// them as separate interleaved process rows labeled by trace ID. All
// operations' span timestamps share the monotonic clock, so rows line
// up on a common timeline.
func WriteChromeTraceOps(w io.Writer, ops []OpTrace) error {
	var events []chromeEvent
	for i, op := range ops {
		name := op.TraceID
		if name == "" {
			name = "op"
		}
		if op.Kind != "" {
			name += " (" + op.Kind + ")"
		}
		events = appendProcessEvents(events, i+1, name, op.Spans, op.Counters)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// appendProcessEvents appends one process row (metadata + complete
// events) for a span set under the given pid.
func appendProcessEvents(events []chromeEvent, pid int, name string, spans []TSpan, counters map[string]int64) []chromeEvent {
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name},
	})
	if len(counters) > 0 {
		meta := map[string]any{}
		for k, v := range counters {
			meta[k] = v
		}
		events = append(events, chromeEvent{
			Name: "counters", Ph: "M", Pid: pid, Args: meta,
		})
	}
	tids := map[string]int{}
	for _, track := range Tracks(spans) {
		tid := len(tids)
		tids[track] = tid
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": track},
		})
	}
	ordered := append([]TSpan(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Start < ordered[j].Start })
	for _, s := range ordered {
		events = append(events, chromeEvent{
			Name: s.Name, Cat: "stage", Ph: "X", Pid: pid, Tid: tids[s.Track],
			Ts: float64(s.Start) / 1e3, Dur: float64(s.End-s.Start) / 1e3,
		})
	}
	return events
}

// WriteChromeTraceFile writes the Chrome trace to a file path.
func WriteChromeTraceFile(path string, spans []TSpan, counters map[string]int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, spans, counters); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
