package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Context-scoped operation recorders.
//
// PR 3's single global recorder smears every concurrent pipeline's
// spans and counters together; an operation recorder scopes one
// encode or decode: WithOperation mints a trace ID and a fresh
// Recorder, hangs it on the context the codec already threads through
// every stage (PR 5), and Finish rolls the operation's totals into
// the process-wide aggregate Registry. Concurrent operations thus get
// disjoint span sets, per-op counters, and distinct trace IDs, while
// /metrics keeps serving coherent process totals.
//
// Resolution order inside the codec is Current(ctx): the context's
// operation recorder if one is attached, else the ambient recorder
// installed by Enable (the single-operation CLI path), else nil —
// and nil keeps the disabled fast path at one branch per hook.

// opCtxKey carries the operation recorder in a context.
type opCtxKey struct{}

// Op is one in-flight observed operation: a per-operation recorder
// plus the bookkeeping to roll it into the aggregate registry exactly
// once.
type Op struct {
	rec      *Recorder
	reg      *Registry
	start    time.Time
	finished atomic.Bool
}

// WithOperation returns ctx with a fresh per-operation recorder
// attached, and the Op handle that owns it. The recorder observes
// only this operation (spans, counters, histograms, SLO latency);
// call Finish when the operation completes to roll its totals into
// the aggregate registry. kind is a free-form label ("encode",
// "load:thumbnail") carried by the trace ID display and the Chrome
// trace export.
func WithOperation(ctx context.Context, kind string) (context.Context, *Op) {
	if ctx == nil {
		ctx = context.Background()
	}
	reg := Aggregate()
	r := NewRecorder()
	r.reg = reg
	r.kind = kind
	r.trace = reg.nextTraceID()
	reg.active.Add(1)
	op := &Op{rec: r, reg: reg, start: r.epoch}
	return context.WithValue(ctx, opCtxKey{}, r), op
}

// Finish closes the operation: ends its runtime/trace task and rolls
// its counters, stage histograms, and SLO observations into the
// aggregate registry. Idempotent; safe on nil.
func (o *Op) Finish() {
	if o == nil || !o.finished.CompareAndSwap(false, true) {
		return
	}
	o.reg.active.Add(-1)
	o.rec.Close()
}

// Recorder returns the operation's recorder (valid until well after
// Finish — closing rolls totals up without clearing the recorder, so
// reports and trace exports still read it).
func (o *Op) Recorder() *Recorder {
	if o == nil {
		return nil
	}
	return o.rec
}

// TraceID returns the operation's minted trace ID.
func (o *Op) TraceID() string {
	if o == nil {
		return ""
	}
	return o.rec.trace
}

// Kind returns the operation's label.
func (o *Op) Kind() string {
	if o == nil {
		return ""
	}
	return o.rec.kind
}

// Duration returns how long the operation has been running (or ran,
// after Finish — it keeps counting until Finish is called, so read it
// after Finish for the final figure).
func (o *Op) Duration() time.Duration {
	if o == nil {
		return 0
	}
	return time.Since(o.start)
}

// FromContext returns the operation recorder attached to ctx, or nil
// when ctx carries none.
func FromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(opCtxKey{}).(*Recorder)
	return r
}

// Current resolves the recorder an operation bound to ctx should
// record into: the context's operation recorder when one is attached,
// else the ambient process recorder (Enable), else nil. This is the
// single resolution point the codec entry paths use; everything
// downstream receives the resolved *Recorder and pays only a nil
// check per hook.
func Current(ctx context.Context) *Recorder {
	if r := FromContext(ctx); r != nil {
		return r
	}
	return active.Load()
}
