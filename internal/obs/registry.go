package obs

import (
	"sync/atomic"
	"time"
)

// OpClass keys the SLO latency histograms: every encode or decode
// operation falls into one of {encode,decode} × {lossless,lossy} ×
// {untiled,tiled} × {mq,ht}. The class is what a service-level
// objective is stated against — "p99 of lossy untiled HT encodes" —
// so the registry keeps one whole-operation latency histogram per
// class rather than smearing thumbnail encodes and gigapixel decodes
// into one distribution.
type OpClass uint8

// Class bits. ClassOf composes them; String decodes them.
const (
	clsDecode OpClass = 1 << iota
	clsLossy
	clsTiled
	clsHT
	clsResilient // best-effort decode path (damage-tolerant, reports instead of failing)
)

// NumOpClasses is the size of the class space.
const NumOpClasses = 32

// ClassOf returns the operation class for the given axes.
func ClassOf(decode, lossy, tiled, ht bool) OpClass {
	var c OpClass
	if decode {
		c |= clsDecode
	}
	if lossy {
		c |= clsLossy
	}
	if tiled {
		c |= clsTiled
	}
	if ht {
		c |= clsHT
	}
	return c
}

// Resilient marks the class as a best-effort (resilient) decode — its
// own SLO family, since salvage work prices differently from a clean
// decode and its latency objective is stated separately.
func (c OpClass) Resilient() OpClass { return c | clsResilient }

func (c OpClass) String() string {
	s := "encode"
	if c&clsDecode != 0 {
		s = "decode"
	}
	if c&clsLossy != 0 {
		s += "_lossy"
	} else {
		s += "_lossless"
	}
	if c&clsTiled != 0 {
		s += "_tiled"
	} else {
		s += "_untiled"
	}
	if c&clsHT != 0 {
		s += "_ht"
	} else {
		s += "_mq"
	}
	if c&clsResilient != 0 {
		s += "_resilient"
	}
	return s
}

// Registry is the process-wide aggregate sink. Per-operation recorders
// (WithOperation) and the ambient recorder (Enable) roll their
// counters, stage histograms, and SLO observations into it when they
// close, so the registry's totals are monotone for the life of the
// process — exactly the semantics Prometheus counters and cumulative
// histograms require. The registry never sees individual spans (those
// stay in each recorder's lanes); it is the scrape-able summary that
// /metrics, /debug/vars, and the j2kload SLO table read.
type Registry struct {
	start    time.Time
	counters [numCounters]atomic.Int64
	hist     [numStages]Histogram // per-stage span durations, rolled up
	slo      [NumOpClasses]Histogram
	ops      [NumOpClasses]atomic.Int64
	opErrors atomic.Int64 // operations that finished with an error
	active   atomic.Int64 // operations currently in flight
	dropped  atomic.Int64
	seq      atomic.Uint64 // trace-ID sequence
}

// NewRegistry returns a fresh, empty registry (used by tests and the
// golden-file exposition fixtures; production code uses Aggregate).
func NewRegistry() *Registry { return &Registry{start: time.Now()} }

// aggregate is the singleton process registry. It always exists —
// existence is free, because nothing writes to it until a recorder
// closes — so callers never branch on "is the registry enabled".
var aggregate atomic.Pointer[Registry]

func init() { aggregate.Store(NewRegistry()) }

// Aggregate returns the process-wide registry.
func Aggregate() *Registry { return aggregate.Load() }

// SwapAggregate installs reg (a fresh registry if nil) as the process
// aggregate and returns the previous one. Tests use it to observe a
// bounded window; production code has no reason to call it.
func SwapAggregate(reg *Registry) *Registry {
	if reg == nil {
		reg = NewRegistry()
	}
	return aggregate.Swap(reg)
}

// nextTraceID mints a process-unique operation trace ID: the registry
// creation time (distinguishing restarts) and a monotone sequence
// number (distinguishing concurrent operations).
func (g *Registry) nextTraceID() string {
	seq := g.seq.Add(1)
	return "j2k-" + hex32(uint32(g.start.UnixNano())) + "-" + hex32(uint32(seq))
}

// hex32 renders v as 8 lowercase hex digits.
func hex32(v uint32) string {
	const digits = "0123456789abcdef"
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = digits[v&0xF]
		v >>= 4
	}
	return string(b[:])
}

// Counter reads one aggregate counter.
func (g *Registry) Counter(c Counter) int64 {
	if g == nil {
		return 0
	}
	return g.counters[c].Load()
}

// Counters returns a name → value map of every non-zero aggregate
// counter.
func (g *Registry) Counters() map[string]int64 {
	if g == nil {
		return nil
	}
	out := make(map[string]int64, numCounters)
	for c := Counter(0); c < numCounters; c++ {
		if v := g.counters[c].Load(); v != 0 {
			out[c.String()] = v
		}
	}
	return out
}

// Hist returns the aggregate duration histogram of one stage.
func (g *Registry) Hist(s Stage) *Histogram {
	if g == nil {
		return nil
	}
	return &g.hist[s]
}

// SLO returns the aggregate whole-operation latency histogram of one
// class.
func (g *Registry) SLO(c OpClass) *Histogram {
	if g == nil {
		return nil
	}
	return &g.slo[c]
}

// Ops returns the number of completed operations of one class.
func (g *Registry) Ops(c OpClass) int64 {
	if g == nil {
		return 0
	}
	return g.ops[c].Load()
}

// OpsTotal returns the number of completed operations across all
// classes.
func (g *Registry) OpsTotal() int64 {
	if g == nil {
		return 0
	}
	var n int64
	for c := range g.ops {
		n += g.ops[c].Load()
	}
	return n
}

// OpsActive returns the number of operations currently in flight.
func (g *Registry) OpsActive() int64 {
	if g == nil {
		return 0
	}
	return g.active.Load()
}

// OpErrors returns the number of operations that finished with an
// error.
func (g *Registry) OpErrors() int64 {
	if g == nil {
		return 0
	}
	return g.opErrors.Load()
}

// Dropped returns the aggregate count of spans that overflowed lane
// buffers.
func (g *Registry) Dropped() int64 {
	if g == nil {
		return 0
	}
	return g.dropped.Load()
}

// merge rolls one closing recorder's totals into the registry.
func (g *Registry) merge(r *Recorder) {
	if g == nil || r == nil {
		return
	}
	for c := range r.counters {
		if v := r.counters[c].Load(); v != 0 {
			g.counters[c].Add(v)
		}
	}
	for s := range r.hist {
		g.hist[s].AddFrom(&r.hist[s])
	}
	for c := range r.slo {
		g.slo[c].AddFrom(&r.slo[c])
		if v := r.ops[c].Load(); v != 0 {
			g.ops[c].Add(v)
		}
	}
	g.opErrors.Add(r.opErrors.Load())
	g.dropped.Add(r.dropped.Load())
}
