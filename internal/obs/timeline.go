package obs

import "sort"

// TSpan is one exported timeline span: a named interval on a named
// track. Recorder lanes export as "worker0", "worker1", …; the Cell
// simulator's trace converts its per-PE busy spans ("spe0", "ppe0")
// into the same shape, so the Chrome exporter, the busy-window math,
// and the harness timeline renderer all operate on one type.
//
// Timestamps are int64 ticks from an arbitrary epoch; the native
// encoder records nanoseconds, the simulator converts model cycles to
// nanoseconds at export. All timeline math is unit-agnostic.
type TSpan struct {
	Track string
	Name  string
	Stage Stage // StageExtern for spans not from the encode pipeline
	Start int64
	End   int64
}

// StageExtern marks spans that did not come from the native encode
// pipeline (e.g. simulator PE busy spans); reports group them by Name.
const StageExtern Stage = 0xFE

// RowName is the report-grouping key: the pipeline stage name, or the
// span's own name for external spans.
func (s TSpan) RowName() string {
	if s.Stage == StageExtern {
		return s.Name
	}
	return s.Stage.String()
}

// BusyInWindow sums the busy time of one track within [a, b) — the
// shading primitive of the harness timeline (formerly duplicated as
// cell.Trace.BusyInWindow).
func BusyInWindow(spans []TSpan, track string, a, b int64) int64 {
	var busy int64
	for _, s := range spans {
		if s.Track != track || s.End <= a || s.Start >= b {
			continue
		}
		lo, hi := s.Start, s.End
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		busy += hi - lo
	}
	return busy
}

// Tracks returns the distinct track names in first-appearance order.
func Tracks(spans []TSpan) []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range spans {
		if !seen[s.Track] {
			seen[s.Track] = true
			out = append(out, s.Track)
		}
	}
	return out
}

// Window returns the [min start, max end] extent of the spans.
func Window(spans []TSpan) (int64, int64) {
	if len(spans) == 0 {
		return 0, 0
	}
	lo, hi := spans[0].Start, spans[0].End
	for _, s := range spans[1:] {
		if s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
	}
	return lo, hi
}

// selfDurations returns each span's self time: its duration minus the
// time covered by spans nested inside it on the same track (spans on
// one goroutine nest properly, so children are fully contained). This
// is the profiler "self time" convention — a calibration span inside a
// Tier-1 job is charged to calibration, not double-counted.
func selfDurations(spans []TSpan) []int64 {
	self := make([]int64, len(spans))
	byTrack := map[string][]int{}
	for i, s := range spans {
		self[i] = s.End - s.Start
		byTrack[s.Track] = append(byTrack[s.Track], i)
	}
	for _, idx := range byTrack {
		sort.Slice(idx, func(a, b int) bool {
			si, sj := spans[idx[a]], spans[idx[b]]
			if si.Start != sj.Start {
				return si.Start < sj.Start
			}
			return si.End > sj.End // parents before children
		})
		var stack []int
		for _, i := range idx {
			s := spans[i]
			for len(stack) > 0 && spans[stack[len(stack)-1]].End <= s.Start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				self[stack[len(stack)-1]] -= s.End - s.Start
			}
			stack = append(stack, i)
		}
	}
	return self
}

// unionLen returns the total length of the union of the intervals.
func unionLen(iv [][2]int64) int64 {
	if len(iv) == 0 {
		return 0
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	var total int64
	curLo, curHi := iv[0][0], iv[0][1]
	for _, x := range iv[1:] {
		if x[0] > curHi {
			total += curHi - curLo
			curLo, curHi = x[0], x[1]
			continue
		}
		if x[1] > curHi {
			curHi = x[1]
		}
	}
	return total + curHi - curLo
}

// trackUnion merges each track's spans into disjoint busy intervals —
// nested or overlapping spans on one lane (e.g. the gain calibration
// inside a Tier-1 job) collapse to the time the lane was busy at all.
func trackUnion(spans []TSpan) map[string][][2]int64 {
	byTrack := map[string][][2]int64{}
	for _, s := range spans {
		byTrack[s.Track] = append(byTrack[s.Track], [2]int64{s.Start, s.End})
	}
	for k, iv := range byTrack {
		sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
		merged := iv[:0]
		for _, x := range iv {
			if n := len(merged); n > 0 && x[0] <= merged[n-1][1] {
				if x[1] > merged[n-1][1] {
					merged[n-1][1] = x[1]
				}
				continue
			}
			merged = append(merged, x)
		}
		byTrack[k] = merged
	}
	return byTrack
}

// serialTime returns the portion of [lo, hi) during which at most one
// lane is busy — the measured Amdahl serial term. Activity is counted
// per track (nested spans on one lane are one busy lane, not two), and
// gaps with zero active lanes count as serial: that is uninstrumented
// coordinator work (slice bookkeeping, map building) which by
// construction runs on one goroutine.
func serialTime(spans []TSpan, lo, hi int64) int64 {
	type ev struct {
		t int64
		d int // +1 open, -1 close
	}
	var evs []ev
	for _, iv := range trackUnion(spans) {
		for _, x := range iv {
			a, b := x[0], x[1]
			if a < lo {
				a = lo
			}
			if b > hi {
				b = hi
			}
			if a >= b {
				continue
			}
			evs = append(evs, ev{a, +1}, ev{b, -1})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].d > evs[j].d // open before close at the same instant
	})
	var serial int64
	active := 0
	prev := lo
	for _, e := range evs {
		if active <= 1 && e.t > prev {
			serial += e.t - prev
		}
		prev = e.t
		active += e.d
	}
	if prev < hi {
		serial += hi - prev
	}
	return serial
}
