package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureRegistry drives a fixed set of observations through the
// public recorder path (Add / Hist.Observe / OpDone / OpFailed /
// Close→merge) into a fresh registry. Everything is deterministic —
// no wall-clock durations — so the exposition it produces is stable
// byte for byte. Two recorders merge in sequence to prove roll-up
// accumulation shows through the exposition.
func fixtureRegistry() *Registry {
	reg := NewRegistry()

	r := NewRecorder()
	r.reg = reg
	r.Add(CtrQueueJobs, 12)
	r.Add(CtrT1Blocks, 5)
	r.Add(CtrDWTBytesMoved, 1<<20)
	r.Hist(StageT1).Observe(int64(900 * time.Microsecond))
	r.Hist(StageT1).Observe(int64(3 * time.Millisecond))
	r.Hist(StageRate).Observe(int64(250 * time.Microsecond))
	r.OpDone(ClassOf(false, false, false, false), 8*time.Millisecond)
	r.OpDone(ClassOf(false, false, false, false), 11*time.Millisecond)
	r.OpDone(ClassOf(true, true, false, true), 400*time.Microsecond)
	r.OpFailed()
	r.Close()

	r2 := NewRecorder()
	r2.reg = reg
	r2.Add(CtrT1Blocks, 3)
	r2.OpDone(ClassOf(false, false, false, false), 9*time.Millisecond)
	r2.Close()

	return reg
}

// TestPrometheusGolden pins the text exposition byte for byte: every
// counter family in declaration order, only-occurred operation
// classes, sparse cumulative le buckets with the mandatory +Inf, and
// the _sum/_count pairs. Regenerate with `go test ./internal/obs/
// -run TestPrometheusGolden -update` after an intentional format
// change.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom_golden.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		gotLines := strings.Split(buf.String(), "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w string
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Fatalf("exposition diverges at line %d:\n got: %q\nwant: %q", i+1, g, w)
			}
		}
		t.Fatal("exposition differs from golden (length only?)")
	}
}

// TestPrometheusParseBack closes the loop with the minimal scraper:
// write the fixture registry's exposition, parse it back, and verify
// the samples reproduce the registry's own accessors — including the
// merged totals from both recorders and cumulative-bucket invariants.
func TestPrometheusParseBack(t *testing.T) {
	reg := fixtureRegistry()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("scraper rejects our own exposition: %v", err)
	}

	find := func(name, labelKey, labelVal string) (float64, bool) {
		for _, s := range samples {
			if s.Name != name {
				continue
			}
			if labelKey != "" && s.Labels[labelKey] != labelVal {
				continue
			}
			return s.Value, true
		}
		return 0, false
	}
	mustFind := func(name, labelKey, labelVal string) float64 {
		t.Helper()
		v, ok := find(name, labelKey, labelVal)
		if !ok {
			t.Fatalf("sample %s{%s=%q} missing", name, labelKey, labelVal)
		}
		return v
	}

	encCls := ClassOf(false, false, false, false).String()
	decCls := ClassOf(true, true, false, true).String()
	if v := mustFind("j2k_t1_blocks_total", "", ""); v != 8 {
		t.Fatalf("t1_blocks_total = %v, want 8 (5+3 merged)", v)
	}
	if v := mustFind("j2k_queue_jobs_total", "", ""); v != 12 {
		t.Fatalf("queue_jobs_total = %v", v)
	}
	if v := mustFind("j2k_operations_total", "class", encCls); v != 3 {
		t.Fatalf("operations_total{%s} = %v, want 3", encCls, v)
	}
	if v := mustFind("j2k_operations_total", "class", decCls); v != 1 {
		t.Fatalf("operations_total{%s} = %v, want 1", decCls, v)
	}
	if v := mustFind("j2k_operation_errors_total", "", ""); v != 1 {
		t.Fatalf("operation_errors_total = %v", v)
	}
	if v := mustFind("j2k_operations_active", "", ""); v != 0 {
		t.Fatalf("operations_active = %v", v)
	}
	if v := mustFind("j2k_op_duration_seconds_count", "class", encCls); v != 3 {
		t.Fatalf("op_duration count{%s} = %v, want 3", encCls, v)
	}
	wantSum := (8*time.Millisecond + 11*time.Millisecond + 9*time.Millisecond).Seconds()
	if v := mustFind("j2k_op_duration_seconds_sum", "class", encCls); v < wantSum*0.999 || v > wantSum*1.001 {
		t.Fatalf("op_duration sum{%s} = %v, want ~%v", encCls, v, wantSum)
	}
	if v := mustFind("j2k_stage_duration_seconds_count", "stage", StageT1.String()); v != 2 {
		t.Fatalf("stage_duration count{t1} = %v, want 2", v)
	}

	// Histogram invariants: within each labeled series, le buckets are
	// cumulative (non-decreasing) and the +Inf bucket equals _count.
	type key struct{ name, label string }
	lastBucket := map[key]float64{}
	infBucket := map[key]float64{}
	for _, s := range samples {
		if !strings.HasSuffix(s.Name, "_bucket") {
			continue
		}
		k := key{s.Name, s.Labels["class"] + s.Labels["stage"]}
		if s.Value < lastBucket[k] {
			t.Fatalf("non-cumulative buckets in %s{%v}: %v after %v", s.Name, s.Labels, s.Value, lastBucket[k])
		}
		lastBucket[k] = s.Value
		if s.Labels["le"] == "+Inf" {
			infBucket[k] = s.Value
		}
	}
	for _, s := range samples {
		if !strings.HasSuffix(s.Name, "_count") {
			continue
		}
		base := strings.TrimSuffix(s.Name, "_count")
		k := key{base + "_bucket", s.Labels["class"] + s.Labels["stage"]}
		if inf, ok := infBucket[k]; ok && inf != s.Value {
			t.Fatalf("%s{%v}: +Inf bucket %v != count %v", s.Name, s.Labels, inf, s.Value)
		}
	}
}

// TestParsePrometheusRejectsMalformed locks the scraper's validation:
// each corpus entry is one broken exposition that must not parse.
func TestParsePrometheusRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad comment":      "# BOGUS j2k_x counter\n",
		"bad type":         "# TYPE j2k_x matrix\n",
		"no value":         "j2k_x\n",
		"bad value":        "j2k_x twelve\n",
		"bad name":         "9starts_with_digit 1\n",
		"open labels":      "j2k_x{class=\"a\" 1\n",
		"unquoted label":   "j2k_x{class=a} 1\n",
		"dangling escape":  "j2k_x{class=\"a\\\"} 1",
		"bad escape":       "j2k_x{class=\"a\\q\"} 1\n",
		"label without eq": "j2k_x{class} 1\n",
	}
	for name, in := range cases {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed %q without error", name, in)
		}
	}
}

// TestTraceIDsDistinct pins the operation trace-ID contract: every
// minted ID is unique within a process and carries the j2k- prefix
// the load harness greps for.
func TestTraceIDsDistinct(t *testing.T) {
	reg := NewRegistry()
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := reg.nextTraceID()
		if !strings.HasPrefix(id, "j2k-") {
			t.Fatalf("trace ID %q missing prefix", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q after %d mints", id, i)
		}
		seen[id] = true
	}
}
