package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanRecording(t *testing.T) {
	r := NewRecorder()
	ln := r.Acquire()
	sp := ln.Begin(StageDWTVert, 2, 7)
	time.Sleep(time.Millisecond)
	sp.End()
	ln.Release()

	spans := r.TSpans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Track != "worker0" || s.Name != "dwt-v L2" || s.Stage != StageDWTVert {
		t.Fatalf("span identity: %+v", s)
	}
	if s.End-s.Start < int64(500*time.Microsecond) {
		t.Fatalf("span too short: %+v", s)
	}
	if h := r.Hist(StageDWTVert); h.Count() != 1 {
		t.Fatalf("histogram count = %d", h.Count())
	}
}

func TestLaneReuseKeepsStableIDs(t *testing.T) {
	r := NewRecorder()
	a, b := r.Acquire(), r.Acquire()
	if a.ID() != 0 || b.ID() != 1 {
		t.Fatalf("ids %d,%d", a.ID(), b.ID())
	}
	b.Release()
	a.Release()
	// LIFO: the last released lane comes back first.
	if got := r.Acquire(); got.ID() != 0 {
		t.Fatalf("reacquired lane %d, want 0", got.ID())
	}
}

func TestDisabledPathIsAllocationFree(t *testing.T) {
	Disable()
	if got := testing.AllocsPerRun(200, func() {
		ln := Acquire()
		ln.Claim()
		sp := ln.Begin(StageT1, 0, 0)
		sp.End()
		ln.Release()
		Count(CtrT1Blocks)
		Add(CtrDWTBytesMoved, 4096)
	}); got != 0 {
		t.Fatalf("disabled obs path allocates %.1f times per op, want 0", got)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(CtrT1Blocks, 1)
	if r.Counter(CtrT1Blocks) != 0 || r.Acquire() != nil || r.TSpans() != nil {
		t.Fatal("nil recorder leaked state")
	}
	r.Close()
	if r.MetricsTable() == "" {
		t.Fatal("nil metrics table empty")
	}
}

func TestCountersAndClaims(t *testing.T) {
	r := Enable()
	defer Disable()
	Count(CtrQueueRuns)
	Add(CtrQueueJobs, 42)
	ln := Acquire()
	ln.Claim()
	ln.Claim()
	ln.Release()
	if r.Counter(CtrQueueJobs) != 42 {
		t.Fatalf("jobs = %d", r.Counter(CtrQueueJobs))
	}
	if claims := r.LaneClaims(); len(claims) != 1 || claims[0] != 2 {
		t.Fatalf("claims = %v", claims)
	}
	m := r.Counters()
	if m["queue_jobs"] != 42 || m["queue_runs"] != 1 {
		t.Fatalf("counter map: %v", m)
	}
}

func TestBusyInWindow(t *testing.T) {
	spans := []TSpan{
		{Track: "spe0", Name: "t1", Start: 100, End: 200},
		{Track: "spe0", Name: "t1", Start: 300, End: 350},
		{Track: "ppe0", Name: "rate", Start: 0, End: 1000},
	}
	if got := BusyInWindow(spans, "spe0", 0, 1000); got != 150 {
		t.Fatalf("busy = %d, want 150", got)
	}
	if got := BusyInWindow(spans, "spe0", 150, 320); got != 70 {
		t.Fatalf("clipped busy = %d, want 70", got)
	}
	if got := BusyInWindow(spans, "none", 0, 1000); got != 0 {
		t.Fatalf("missing track busy = %d", got)
	}
}

func TestReportAmdahlMath(t *testing.T) {
	// Two workers fully parallel for 100ns, then 100ns serial tail:
	// serial fraction 0.5, achieved parallelism 1.5.
	spans := []TSpan{
		{Track: "w0", Stage: StageT1, Start: 0, End: 100},
		{Track: "w1", Stage: StageT1, Start: 0, End: 100},
		{Track: "w0", Stage: StageRate, Start: 100, End: 200},
		{Track: "coord", Stage: StageEncode, Start: 0, End: 200}, // envelope
	}
	r := BuildReport(spans, 2)
	if r.Total != 200 {
		t.Fatalf("total = %v", r.Total)
	}
	if r.Serial != 100 || r.SerialFrac != 0.5 {
		t.Fatalf("serial = %v (%.2f)", r.Serial, r.SerialFrac)
	}
	if r.AchievedPar != 1.5 {
		t.Fatalf("achieved = %.2f", r.AchievedPar)
	}
	// Amdahl: 1/(0.5 + 0.5/2) = 1.333…
	if r.AmdahlBound < 1.32 || r.AmdahlBound > 1.34 {
		t.Fatalf("bound = %.3f", r.AmdahlBound)
	}
	if len(r.Stages) != 2 {
		t.Fatalf("stage rows: %+v", r.Stages)
	}
	t1row := r.Stages[0]
	if t1row.Name != "t1" || t1row.Wall != 100 || t1row.Busy != 200 || t1row.Par != 2 {
		t.Fatalf("t1 row: %+v", t1row)
	}
	if !strings.Contains(r.Table(), "Amdahl bound") {
		t.Fatal("table missing Amdahl line")
	}
}

func TestChromeTraceExport(t *testing.T) {
	spans := []TSpan{
		{Track: "worker0", Name: "mct", Start: 0, End: 1500},
		{Track: "worker1", Name: "t1", Start: 500, End: 2500},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, map[string]int64{"t1_blocks": 9}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var xEvents, threadNames int
	tids := map[float64]bool{}
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			xEvents++
			tids[e["tid"].(float64)] = true
		case "M":
			if e["name"] == "thread_name" {
				threadNames++
			}
		}
	}
	if xEvents != 2 || threadNames != 2 || len(tids) != 2 {
		t.Fatalf("events: %d X, %d thread names, %d tids", xEvents, threadNames, len(tids))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(100) // bucket 2^7
	}
	h.Observe(1 << 20)
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q != 128 {
		t.Fatalf("p50 = %d, want 128", q)
	}
	if q := h.Quantile(1.0); q != 1<<20 {
		t.Fatalf("p100 = %d, want %d", q, 1<<20)
	}
	if h.String() == "empty" {
		t.Fatal("string of non-empty histogram")
	}
}

func TestSerialTimeSweep(t *testing.T) {
	spans := []TSpan{
		{Track: "a", Stage: StageT1, Start: 0, End: 50},
		{Track: "b", Stage: StageT1, Start: 25, End: 75},
		// gap 75..90 (serial: nothing running)
		{Track: "a", Stage: StageRate, Start: 90, End: 100},
	}
	// Serial: [0,25) one active + [50,75) one active + [75,90) gap +
	// [90,100) one active = 25+25+15+10 = 75.
	if got := serialTime(spans, 0, 100); got != 75 {
		t.Fatalf("serial = %d, want 75", got)
	}
}
