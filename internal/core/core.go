// Package core is the paper's contribution: the JPEG2000 still-image
// encoder parallelized across the Cell/B.E.'s PPE and SPEs using the
// data decomposition scheme of Section 2.
//
// The pipeline (Figure 2) runs stage by stage with barriers between
// stages:
//
//	read/convert → merged level-shift + component transform → DWT
//	(vertical column groups, then horizontal rows, per level) →
//	[lossy: quantization] → Tier-1 over a work queue (PPE + SPEs) →
//	[lossy: sequential rate control on the PPE] → Tier-2 + stream I/O.
//
// All arithmetic runs as real Go code on data streamed through the
// simulated Local Stores, so the emitted codestream is byte-identical
// to the sequential reference codec; the virtual clock prices what the
// same schedule would have cost on the hardware.
package core

import (
	"fmt"

	"j2kcell/internal/cell"
	"j2kcell/internal/codec"
	"j2kcell/internal/decomp"
	"j2kcell/internal/imgmodel"
	"j2kcell/internal/sim"
	"j2kcell/internal/t1"
)

// Config selects the machine, the codec options, and the tuning knobs
// the ablation benchmarks sweep.
type Config struct {
	Cell  cell.Config
	Codec codec.Options

	// BufferDepth is the multi-buffering level for streamed stages
	// (1 = no overlap; the default 3 exploits the constant Local Store
	// footprint the decomposition scheme guarantees).
	BufferDepth int
	// ChunkWidth is the column-chunk width in words for pixel-wise
	// stages and DWT column groups. 0 picks a balanced multiple of the
	// cache line per ChunkWidthFor.
	ChunkWidth int
	// NaiveDWT disables the interleaved/merged lifting, running the
	// split and lifting steps as separate sweeps (3 passes for 5/3,
	// 6 for 9/7) — the ablation for Section 4's loop interleaving.
	NaiveDWT bool
	// StaticT1 replaces the Tier-1 work queue with a static round-robin
	// block distribution — the load-balancing ablation.
	StaticT1 bool
	// PPET1 adds the PPE threads to Tier-1 encoding (the "+1 PPE" /
	// "+2 PPE" variants of Figures 4 and 5). Off by default: in the
	// base configuration the PPE orchestrates, handles the remainder
	// chunks and the sequential stages. With zero SPEs the PPE always
	// codes Tier-1 regardless of this flag.
	PPET1 bool
	// FixedPoint97 prices the lossy DWT with JasPer's fixed-point
	// arithmetic instead of floats — the Table 1 ablation. (Costs only;
	// the emitted bytes stay float-path so outputs remain comparable.)
	FixedPoint97 bool
	// Trace records per-PE busy spans for timeline rendering
	// (harness.RenderTimeline); small constant overhead per kernel call.
	Trace bool
	// LoopParallel reproduces the Meerwald et al. OpenMP-style port the
	// paper's introduction contrasts against: only Tier-1 and the DWT
	// are parallelized ("to minimize the code modification"); the level
	// shift, component transform, quantization and stream I/O stay
	// sequential on the PPE, capping the achievable speedup.
	LoopParallel bool
}

// DefaultConfig returns a single-chip configuration with n SPEs.
func DefaultConfig(nSPE int, opt codec.Options) Config {
	return Config{Cell: cell.DefaultConfig(nSPE), Codec: opt, BufferDepth: 3}
}

func (c Config) withDefaults() Config {
	if c.BufferDepth == 0 {
		c.BufferDepth = 3
	}
	if c.Cell.PPEThreads == 0 {
		c.Cell.PPEThreads = 1
	}
	return c
}

// StageTime records one pipeline stage's span in cycles.
type StageTime struct {
	Name   string
	Cycles sim.Time
}

// Result is a completed parallel encode with its virtual-time costs.
type Result struct {
	Data   []byte
	Stats  codec.Stats
	Cycles sim.Time // makespan
	Stages []StageTime
	// DMA accounting summed over SPEs.
	DMABytes     int64
	DMALineBytes int64
	DMACmds      int64
	MemBytes     int64 // total off-chip traffic including PPE
	LSHighWater  int   // max Local Store bytes used by any SPE

	// Per-PE busy (compute) cycles, for chip-utilization analysis —
	// the property the remainder-chunk-to-PPE design targets.
	SPEBusy []sim.Time
	PPEBusy []sim.Time

	// Trace holds per-PE busy spans when Config.Trace was set.
	Trace *cell.Trace
}

// Utilization reports the fraction of PE-cycles spent computing over
// the makespan (1.0 = every PE busy the whole run).
func (r *Result) Utilization() float64 {
	if r.Cycles == 0 {
		return 0
	}
	var busy sim.Time
	n := 0
	for _, b := range r.SPEBusy {
		busy += b
		n++
	}
	for _, b := range r.PPEBusy {
		busy += b
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(busy) / (float64(n) * float64(r.Cycles))
}

// StageCycles returns the cycles of the named stage (0 if absent).
func (r *Result) StageCycles(name string) sim.Time {
	for _, s := range r.Stages {
		if s.Name == name {
			return s.Cycles
		}
	}
	return 0
}

// stage is one barrier-delimited pipeline phase. Either hook may be nil
// (the PE idles at the barrier).
type stage struct {
	name string
	spe  func(p *sim.Proc, s *cell.SPE, idx int)
	ppe  func(p *sim.Proc, pe *cell.PPE, idx int)
}

// Encode runs the parallel encoder and returns the codestream (byte
// identical to codec.Encode with the same options) plus the modeled
// execution profile.
func Encode(img *imgmodel.Image, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	opt := cfg.Codec.WithDefaults(img.W, img.H)
	cfg.Codec = opt
	if cfg.Cell.PPEThreads < 1 {
		return nil, fmt.Errorf("core: at least one PPE thread is required")
	}
	if opt.TileW > 0 || opt.TileH > 0 {
		return nil, fmt.Errorf("core: the Cell model encodes single-tile streams (the paper's configuration); use codec.EncodeTiled for tiled output")
	}
	m, err := cell.NewMachine(cfg.Cell)
	if err != nil {
		return nil, err
	}

	if cfg.Trace {
		m.Trace = cell.NewTrace()
	}
	enc := &encoder{cfg: cfg, m: m, img: img}
	if err := enc.plan(); err != nil {
		return nil, err
	}
	stages := enc.buildStages()

	nPE := len(m.SPEs) + len(m.PPEs)
	bar := &sim.Barrier{N: nPE}
	times := make([]sim.Time, len(stages))
	for i, s := range m.SPEs {
		i, s := i, s
		m.Eng.Spawn(fmt.Sprintf("spe%d", i), 0, func(p *sim.Proc) {
			for _, st := range stages {
				m.Trace.SetPhase(st.name)
				s.LS.Reset()
				if st.spe != nil {
					st.spe(p, s, i)
				}
				s.WaitAll(p)
				p.Arrive(bar)
			}
		})
	}
	for i, pe := range m.PPEs {
		i, pe := i, pe
		m.Eng.Spawn(fmt.Sprintf("ppe%d", i), 0, func(p *sim.Proc) {
			for si, st := range stages {
				m.Trace.SetPhase(st.name)
				if st.ppe != nil {
					st.ppe(p, pe, i)
				}
				p.Arrive(bar)
				if i == 0 {
					times[si] = p.Now()
				}
			}
		})
	}
	end := m.Run()

	res := &Result{Data: enc.result.Data, Stats: enc.result.Stats, Cycles: end}
	// Any trailing asynchronous write-back drains after the last
	// barrier; fold it into the final stage.
	times[len(times)-1] = end
	prev := sim.Time(0)
	for i, st := range stages {
		res.Stages = append(res.Stages, StageTime{Name: st.name, Cycles: times[i] - prev})
		prev = times[i]
	}
	for _, s := range m.SPEs {
		res.DMABytes += s.DMABytes
		res.DMALineBytes += s.DMALineBytes
		res.DMACmds += s.DMACmds
		if hw := s.LS.HighWater(); hw > res.LSHighWater {
			res.LSHighWater = hw
		}
		res.SPEBusy = append(res.SPEBusy, s.ComputeCycles)
	}
	for _, pe := range m.PPEs {
		res.PPEBusy = append(res.PPEBusy, pe.ComputeCycles)
	}
	res.MemBytes = m.Mem.TotalBytes
	for _, r := range m.Mems {
		res.MemBytes += r.TotalBytes
	}
	res.Trace = m.Trace
	return res, nil
}

// encoder carries the planned data flow shared by the stage closures.
type encoder struct {
	cfg Config
	m   *cell.Machine
	img *imgmodel.Image

	// Main-memory images of the pipeline data.
	iplanes []*decomp.Array[int32]   // integer planes (input, lossless coefficients, quantized indices)
	fplanes []*decomp.Array[float32] // float planes (lossy mid-pipeline)
	iaux    *decomp.Array[int32]     // vertical-DWT auxiliary buffer
	faux    *decomp.Array[float32]

	jobs   []codec.BlockJob
	blocks []*t1.Block

	result *codec.Result
}

func (e *encoder) plan() error {
	img, opt := e.img, e.cfg.Codec
	if img.W <= 0 || img.H <= 0 || len(img.Comps) == 0 {
		return fmt.Errorf("core: empty image")
	}
	for _, p := range img.Comps {
		if p.W != img.W || p.H != img.H {
			return fmt.Errorf("core: component geometry mismatch")
		}
	}
	ncomp := len(img.Comps)
	for c := 0; c < ncomp; c++ {
		e.iplanes = append(e.iplanes, decomp.NewArray[int32](e.m, img.W, img.H))
	}
	if !opt.Lossless {
		for c := 0; c < ncomp; c++ {
			e.fplanes = append(e.fplanes, decomp.NewArray[float32](e.m, img.W, img.H))
		}
		e.faux = decomp.NewArray[float32](e.m, img.W, (img.H+1)/2)
	} else {
		e.iaux = decomp.NewArray[int32](e.m, img.W, (img.H+1)/2)
	}
	_, e.jobs = codec.PlanBlocks(img.W, img.H, ncomp, opt)
	e.blocks = make([]*t1.Block, len(e.jobs))
	return nil
}

// chunkWidth picks the column-chunk width for a region of the given
// width.
func (e *encoder) chunkWidth(width int) int {
	if e.cfg.ChunkWidth > 0 {
		return e.cfg.ChunkWidth
	}
	return decomp.ChunkWidthFor(width, e.cfg.Cell.SPEs)
}

// rateControlOnPPE executes PCRD (inside codec.Finish) and charges its
// sequential PPE cost — the Amdahl tail that flattens lossy scaling.
func (e *encoder) rateControlOnPPE(p *sim.Proc, pe *cell.PPE) {
	opt := e.cfg.Codec
	e.result = codec.Finish(e.img, opt, e.jobs, e.blocks)
	if !opt.Lossless && opt.Rate > 0 {
		passes := 0
		for _, b := range e.blocks {
			passes += len(b.Passes)
		}
		pe.Compute(p, cell.Cycles(cell.PPECosts.RCPass, passes))
	}
}

// tier2OnPPE charges Tier-2 packet assembly and final stream I/O.
func (e *encoder) tier2OnPPE(p *sim.Proc, pe *cell.PPE) {
	res := e.result
	pe.Compute(p, cell.Cycles(cell.PPECosts.T2Byte, res.Stats.BodyBytes))
	pe.Compute(p, cell.Cycles(cell.PPECosts.IOByte, len(res.Data)))
	pe.Touch(p, int64(len(res.Data)))
}
