package core

import (
	"j2kcell/internal/cell"
	"j2kcell/internal/decomp"
	"j2kcell/internal/dwt"
	"j2kcell/internal/sim"
)

// SPE kernels for the DWT stages. Vertical filtering streams one row of
// the assigned column group per DMA transfer (the paper's tuned column
// grouping), runs the interleaved lifting steps merged with the
// splitting step (Algorithms 1→2 + Figure 3), writes low rows in place
// and high rows to a main-memory auxiliary buffer, then copies the
// buffer into the bottom half. Horizontal filtering streams whole rows.
// Every arithmetic step is the same exported dwt row primitive the
// sequential reference uses, so outputs are bit-identical.

// vertical53SPE runs the fused 5/3 vertical sweep over one column group.
func (e *encoder) vertical53SPE(p *sim.Proc, spe *cell.SPE, arr *decomp.Array[int32], ch decomp.Chunk, lh int) {
	if lh <= 1 {
		return
	}
	nl, nh := (lh+1)/2, lh/2
	in := newRowRing[int32](spe, arr, ch.X0, ch.W, 5)
	dOut := newPutRing[int32](spe, ch.W, 2)
	sOut := newPutRing[int32](spe, ch.W, 2)

	in.prefetch(p, 0)
	if lh > 1 {
		in.prefetch(p, 1)
	}
	if lh > 2 {
		in.prefetch(p, 2)
	}
	for k := 0; k < nh; k++ {
		e0 := in.get(p, 2*k)
		o := in.get(p, 2*k+1)
		e1 := e0
		if 2*k+2 < lh {
			e1 = in.get(p, 2*k+2)
		}
		for pf := 2*k + 3; pf <= 2*k+4 && pf < lh; pf++ {
			in.prefetch(p, pf)
		}
		d := dOut.acquire(p, k)
		dPrev := d
		if k > 0 {
			dPrev = dOut.peek(k - 1)
		}
		s := sOut.acquire(p, k)
		dwt.Fused53Step(d, s, e0, o, e1, dPrev)
		spe.Compute(p, cell.Cycles(cell.SPECosts.DWT53, 2*ch.W))
		sOut.put(p, k, arr, k, ch.X0)
		dOut.put(p, k, e.iaux, k, ch.X0)
	}
	if nl > nh { // odd height tail
		e0 := in.get(p, lh-1)
		s := sOut.acquire(p, nl-1)
		dwt.Fused53Tail(s, e0, dOut.peek(nh-1))
		spe.Compute(p, cell.Cycles(cell.SPECosts.DWT53, ch.W))
		sOut.put(p, nl-1, arr, nl-1, ch.X0)
	}
	spe.WaitAll(p)
	if e.cfg.NaiveDWT {
		e.extraSweeps(p, spe, arr.EA, arr.Stride, ch, lh, 2)
	}
	// Copy the high rows from the auxiliary buffer to the bottom half.
	spe.LS.Reset()
	streamCopy(p, spe, e.iaux, arr, ch.X0, ch.W, nh, nl, e.cfg.BufferDepth, 0, nil)
}

// vertical97SPE runs the fused single-loop 9/7 sweep (Kutil-style: six
// passes fused to one) over one column group.
func (e *encoder) vertical97SPE(p *sim.Proc, spe *cell.SPE, arr *decomp.Array[float32], ch decomp.Chunk, lh int) {
	if lh <= 1 {
		return
	}
	nl, nh := (lh+1)/2, lh/2
	in := newRowRing[float32](spe, arr, ch.X0, ch.W, 5)
	dd := newPutRing[float32](spe, ch.W, 4) // d1/d2 values; puts go to aux
	ee := newPutRing[float32](spe, ch.W, 3) // e1/e2 values; puts go to arr

	dwtCost := cell.SPECosts.DWT97
	if e.cfg.FixedPoint97 {
		dwtCost = cell.SPECosts.DWT97Fix
	}

	in.prefetch(p, 0)
	if lh > 1 {
		in.prefetch(p, 1)
	}
	if lh > 2 {
		in.prefetch(p, 2)
	}
	step3 := func(k int) { // d2[k] = d1[k] + γ(e1[k] + e1[k+1]); put to aux
		eNext := k + 1
		if eNext > nl-1 {
			eNext = nl - 1
		}
		d := dd.peek(k)
		dwt.Lift97(d, ee.peek(k), ee.peek(eNext), float32(dwt.Gamma97))
		dd.put(p, k, e.faux, k, ch.X0)
	}
	step4 := func(k int) { // e2[k] = (e1[k] + δ(d2[k-1]+d2[k]))/K; put to arr
		dPrev := k - 1
		if dPrev < 0 {
			dPrev = 0
		}
		s := ee.peek(k)
		dwt.Fused97Step4(s, dd.peek(dPrev), dd.peek(k))
		ee.put(p, k, arr, k, ch.X0)
	}

	for k := 0; k < nh; k++ {
		e0 := in.get(p, 2*k)
		o := in.get(p, 2*k+1)
		e1 := e0
		if 2*k+2 < lh {
			e1 = in.get(p, 2*k+2)
		}
		for pf := 2*k + 3; pf <= 2*k+4 && pf < lh; pf++ {
			in.prefetch(p, pf)
		}
		d := dd.acquire(p, k)
		dwt.Fused97Step1(d, e0, o, e1)
		dPrev := k - 1
		if dPrev < 0 {
			dPrev = 0
		}
		s := ee.acquire(p, k)
		dwt.Fused97Step2(s, e0, dd.peek(dPrev), d)
		if k > 0 {
			step3(k - 1)
		}
		if k > 1 {
			step4(k - 2)
		}
		spe.Compute(p, cell.Cycles(dwtCost, 2*ch.W))
	}
	if nl > nh {
		s := ee.acquire(p, nl-1)
		dwt.Fused97Step2Tail(s, in.get(p, lh-1), dd.peek(nh-1))
		spe.Compute(p, cell.Cycles(dwtCost, ch.W))
	}
	step3(nh - 1)
	if nh >= 2 {
		step4(nh - 2)
	}
	step4(nh - 1)
	if nl > nh {
		s := ee.peek(nl - 1)
		dwt.Fused97Step4Tail(s, dd.peek(nh-1))
		ee.put(p, nl-1, arr, nl-1, ch.X0)
	}
	spe.WaitAll(p)
	if e.cfg.NaiveDWT {
		e.extraSweeps(p, spe, arr.EA, arr.Stride, ch, lh, 5)
	}
	// Copy-back pass delivers the high rows with their K scaling.
	spe.LS.Reset()
	streamCopy(p, spe, e.faux, arr, ch.X0, ch.W, nh, nl, e.cfg.BufferDepth, 0.5,
		func(buf []float32) { dwt.Fused97ScaleHigh(buf, buf) })
}

// extraSweeps charges the DMA traffic of the un-fused variant: n
// additional full get+put sweeps over the column group (split and
// lifting as separate passes). The arithmetic already happened in the
// fused kernel, so these sweeps move the final data — byte counts and
// timing match the naive schedule while outputs stay identical.
func (e *encoder) extraSweeps(p *sim.Proc, spe *cell.SPE, ea int64, stride int, ch decomp.Chunk, lh, n int) {
	buf, lsa := cell.AllocLS[int32](spe.LS, ch.W)
	scratch := make([]int32, ch.W)
	for s := 0; s < n; s++ {
		for r := 0; r < lh; r++ {
			rowEA := ea + int64(4*(r*stride+ch.X0))
			c1 := cell.GetAsync(p, spe, buf, lsa, scratch, rowEA)
			p.WaitFor(c1)
			p.WaitFor(cell.PutAsync(p, spe, scratch, rowEA, buf, lsa))
		}
	}
}

// horizontalSPE streams rows [r0, r1) through the 1-D filter.
func horizontalSPE[T cell.Word](p *sim.Proc, spe *cell.SPE, e *encoder, arr *decomp.Array[T], r0, r1, lw int, cost float64, line func(x, tmp []T)) {
	if lw <= 1 || r0 >= r1 {
		return
	}
	w := roundUp4(lw)
	depth := e.cfg.BufferDepth
	if depth < 1 {
		depth = 1
	}
	in := newRowRing[T](spe, arr, 0, w, depth+1)
	out := newPutRing[T](spe, w, depth)
	tmp, _ := cell.AllocLS[T](spe.LS, lw)
	for r := r0; r < r0+depth && r < r1; r++ {
		in.prefetch(p, r)
	}
	for r := r0; r < r1; r++ {
		buf := in.get(p, r)
		if r+depth < r1 {
			in.prefetch(p, r+depth)
		}
		ob := out.acquire(p, r)
		copy(ob, buf)
		line(ob[:lw], tmp)
		spe.Compute(p, cell.Cycles(cost, lw))
		out.put(p, r, arr, r, 0)
	}
	spe.WaitAll(p)
}

// --- PPE fallbacks: the remainder column group and remainder rows run
// directly on the PPE with the same arithmetic. ---

// verticalPPE53 processes columns [x0, x0+w) of the fused 5/3 sweep.
func (e *encoder) verticalPPE53(p *sim.Proc, pe *cell.PPE, arr *decomp.Array[int32], x0, w, lh int) {
	if lh <= 1 || w <= 0 {
		return
	}
	nl, nh := (lh+1)/2, lh/2
	row := func(r int) []int32 { s, _ := seg(arr, r, x0, w); return s }
	auxRow := func(k int) []int32 { s, _ := seg(e.iaux, k, x0, w); return s }
	for k := 0; k < nh; k++ {
		e0 := row(2 * k)
		o := row(2*k + 1)
		e1 := e0
		if 2*k+2 < lh {
			e1 = row(2*k + 2)
		}
		dPrev := auxRow(k)
		if k > 0 {
			dPrev = auxRow(k - 1)
		}
		dwt.Fused53Step(auxRow(k), row(k), e0, o, e1, dPrev)
	}
	if nl > nh {
		dwt.Fused53Tail(row(nl-1), row(lh-1), auxRow(nh-1))
	}
	for k := 0; k < nh; k++ {
		copy(row(nl+k), auxRow(k))
	}
	pe.Compute(p, cell.Cycles(cell.PPECosts.DWT53, w*lh))
	pe.Touch(p, int64(4*w*lh*3)) // read + write + aux traffic
}

// verticalPPE97 processes columns [x0, x0+w) of the fused 9/7 sweep.
func (e *encoder) verticalPPE97(p *sim.Proc, pe *cell.PPE, arr *decomp.Array[float32], x0, w, lh int) {
	if lh <= 1 || w <= 0 {
		return
	}
	nl, nh := (lh+1)/2, lh/2
	row := func(r int) []float32 { s, _ := seg(arr, r, x0, w); return s }
	auxRow := func(k int) []float32 { s, _ := seg(e.faux, k, x0, w); return s }
	step3 := func(k int) {
		eNext := k + 1
		if eNext > nl-1 {
			eNext = nl - 1
		}
		dwt.Lift97(auxRow(k), row(k), row(eNext), float32(dwt.Gamma97))
	}
	step4 := func(k int) {
		dPrev := k - 1
		if dPrev < 0 {
			dPrev = 0
		}
		dwt.Fused97Step4(row(k), auxRow(dPrev), auxRow(k))
	}
	for k := 0; k < nh; k++ {
		e0 := row(2 * k)
		e1 := e0
		if 2*k+2 < lh {
			e1 = row(2*k + 2)
		}
		dwt.Fused97Step1(auxRow(k), e0, row(2*k+1), e1)
		dPrev := k - 1
		if dPrev < 0 {
			dPrev = 0
		}
		dwt.Fused97Step2(row(k), e0, auxRow(dPrev), auxRow(k))
		if k > 0 {
			step3(k - 1)
		}
		if k > 1 {
			step4(k - 2)
		}
	}
	if nl > nh {
		dwt.Fused97Step2Tail(row(nl-1), row(lh-1), auxRow(nh-1))
	}
	step3(nh - 1)
	if nh >= 2 {
		step4(nh - 2)
	}
	step4(nh - 1)
	if nl > nh {
		dwt.Fused97Step4Tail(row(nl-1), auxRow(nh-1))
	}
	for k := 0; k < nh; k++ {
		dwt.Fused97ScaleHigh(row(nl+k), auxRow(k))
	}
	cost := cell.PPECosts.DWT97
	if e.cfg.FixedPoint97 {
		cost = cell.PPECosts.DWT97Fix
	}
	pe.Compute(p, cell.Cycles(cost, w*lh))
	pe.Touch(p, int64(4*w*lh*3))
}

// horizontalPPE filters rows [r0, r1) directly.
func horizontalPPE[T cell.Word](p *sim.Proc, pe *cell.PPE, arr *decomp.Array[T], r0, r1, lw int, cost float64, line func(x, tmp []T)) {
	if lw <= 1 || r0 >= r1 {
		return
	}
	tmp := make([]T, lw)
	for r := r0; r < r1; r++ {
		s, _ := seg(arr, r, 0, lw)
		line(s, tmp)
	}
	pe.Compute(p, cell.Cycles(cost, lw*(r1-r0)))
	pe.Touch(p, int64(8*lw*(r1-r0)))
}
