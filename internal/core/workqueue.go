package core

import "j2kcell/internal/sim"

// Virtual-time costs of one work-queue pop. On hardware the SPE claims
// a block with an atomic DMA sequence (getllar/putllc on the queue
// line, ~hundreds of cycles to memory); the PPE uses lwarx/stwcx on a
// cached line. Contention beyond these base costs emerges from the
// mutex serialization itself.
const (
	queuePopSPECycles = 250
	queuePopPPECycles = 80
)

// workQueue hands out code block indices under a virtual mutex — the
// load-balancing mechanism of Section 3.2 (processing time per block is
// data dependent, so static distribution cannot balance).
type workQueue struct {
	mu   sim.Mutex
	next int
	n    int // number of jobs
}

// pop claims the next block index, charging the pop cost inside the
// critical section. ok is false when the queue is drained.
func (q *workQueue) pop(p *sim.Proc, cost sim.Time) (int, bool) {
	p.Lock(&q.mu)
	p.Delay(cost)
	i := q.next
	q.next++
	p.Unlock(&q.mu)
	if i >= q.n {
		return 0, false
	}
	return i, true
}
