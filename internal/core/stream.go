package core

import (
	"j2kcell/internal/cell"
	"j2kcell/internal/decomp"
	"j2kcell/internal/sim"
)

// roundUp4 pads a word count to a 16-byte DMA granule.
func roundUp4(w int) int { return (w + 3) &^ 3 }

// seg returns the live row segment [x0, x0+w) of row r and its EA.
func seg[T cell.Word](a *decomp.Array[T], r, x0, w int) ([]T, int64) {
	off := r*a.Stride + x0
	return a.Data[off : off+w], a.EA + int64(4*off)
}

// rowRing streams rows of one column range of an array through a small
// ring of Local Store buffers with asynchronous prefetch — the
// constant-footprint access pattern the decomposition scheme enables.
type rowRing[T cell.Word] struct {
	spe   *cell.SPE
	arr   *decomp.Array[T]
	x0, w int
	bufs  [][]T
	lsas  []int64
	rows  []int
	comps []*sim.Completion
}

func newRowRing[T cell.Word](spe *cell.SPE, arr *decomp.Array[T], x0, w, slots int) *rowRing[T] {
	r := &rowRing[T]{spe: spe, arr: arr, x0: x0, w: w}
	for i := 0; i < slots; i++ {
		buf, lsa := cell.AllocLS[T](spe.LS, w)
		r.bufs = append(r.bufs, buf)
		r.lsas = append(r.lsas, lsa)
		r.rows = append(r.rows, -1)
		r.comps = append(r.comps, nil)
	}
	return r
}

// prefetch starts fetching a row into its slot if not already present.
// The caller must no longer need the row previously in the slot.
func (r *rowRing[T]) prefetch(p *sim.Proc, row int) {
	slot := row % len(r.bufs)
	if r.rows[slot] == row {
		return
	}
	src, ea := seg(r.arr, row, r.x0, r.w)
	r.comps[slot] = cell.GetAsync(p, r.spe, r.bufs[slot], r.lsas[slot], src, ea)
	r.rows[slot] = row
}

// get returns the Local Store buffer holding the row, fetching and
// waiting as needed.
func (r *rowRing[T]) get(p *sim.Proc, row int) []T {
	slot := row % len(r.bufs)
	if r.rows[slot] != row {
		r.prefetch(p, row)
	}
	if c := r.comps[slot]; c != nil {
		p.WaitFor(c)
	}
	return r.bufs[slot]
}

// putRing manages output buffers whose puts must complete before reuse.
type putRing[T cell.Word] struct {
	spe   *cell.SPE
	bufs  [][]T
	lsas  []int64
	comps []*sim.Completion
}

func newPutRing[T cell.Word](spe *cell.SPE, w, slots int) *putRing[T] {
	r := &putRing[T]{spe: spe}
	for i := 0; i < slots; i++ {
		buf, lsa := cell.AllocLS[T](spe.LS, w)
		r.bufs = append(r.bufs, buf)
		r.lsas = append(r.lsas, lsa)
		r.comps = append(r.comps, nil)
	}
	return r
}

// acquire returns slot k's buffer, waiting out any in-flight put.
func (r *putRing[T]) acquire(p *sim.Proc, k int) []T {
	slot := k % len(r.bufs)
	if c := r.comps[slot]; c != nil {
		p.WaitFor(c)
		r.comps[slot] = nil
	}
	return r.bufs[slot]
}

// put writes slot k's buffer to the row segment asynchronously.
func (r *putRing[T]) put(p *sim.Proc, k int, a *decomp.Array[T], row, x0 int) {
	slot := k % len(r.bufs)
	dst, ea := seg(a, row, x0, len(r.bufs[slot]))
	r.comps[slot] = cell.PutAsync(p, r.spe, dst, ea, r.bufs[slot], r.lsas[slot])
}

// peek returns slot k's buffer without synchronization (contents remain
// valid during an outstanding put).
func (r *putRing[T]) peek(k int) []T { return r.bufs[k%len(r.bufs)] }

// streamCopy moves rows [0, n) of src columns [x0, x0+w) to rows
// [dstRow0, ...) of dst, optionally transforming each buffer — the
// auxiliary-buffer copy-back pass of the fused vertical DWT.
func streamCopy[T cell.Word](p *sim.Proc, spe *cell.SPE, src, dst *decomp.Array[T], x0, w, n, dstRow0 int, depth int, perElem float64, fn func([]T)) {
	if n <= 0 {
		return
	}
	if depth < 1 {
		depth = 1
	}
	in := newRowRing[T](spe, src, x0, w, depth+1)
	out := newPutRing[T](spe, w, depth)
	for k := 0; k < depth && k < n; k++ {
		in.prefetch(p, k)
	}
	for k := 0; k < n; k++ {
		buf := in.get(p, k)
		if k+depth < n {
			in.prefetch(p, k+depth)
		}
		ob := out.acquire(p, k)
		copy(ob, buf)
		if fn != nil {
			fn(ob)
			spe.Compute(p, cell.Cycles(perElem, w))
		}
		out.put(p, k, dst, dstRow0+k, x0)
	}
	spe.WaitAll(p)
}

// alignedFetchCost charges the DMA cost of fetching an arbitrary
// (possibly misaligned) row window by transferring its 16-byte-aligned
// superset, the way real SPE code must. Returns nothing; the data is
// used directly from main memory by the caller's computation.
func alignedFetchCost[T cell.Word](p *sim.Proc, spe *cell.SPE, a *decomp.Array[T], row, x0, w int, scratch []T, scratchLSA int64) {
	off := row*a.Stride + x0
	ea := a.EA + int64(4*off)
	ea0 := ea &^ 15
	end := (ea + int64(4*w) + 15) &^ 15
	words := int(end-ea0) / 4
	srcOff := int(ea0-a.EA) / 4
	cell.Get(p, spe, scratch[:words], scratchLSA, a.Data[srcOff:srcOff+words], ea0)
}
