package core

import (
	"testing"

	"j2kcell/internal/cell"
	"j2kcell/internal/codec"
	"j2kcell/internal/imgmodel"
	"j2kcell/internal/workload"
)

func encodeBoth(t *testing.T, w, h int, opt codec.Options, cfg Config) (*Result, *codec.Result) {
	t.Helper()
	img := workload.Dial(w, h, 7, 4)
	cfg.Codec = opt
	par, err := Encode(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := codec.Encode(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	return par, seq
}

func TestParallelMatchesSequentialLossless(t *testing.T) {
	for _, nspe := range []int{0, 1, 2, 8} {
		cfg := DefaultConfig(nspe, codec.Options{})
		par, seq := encodeBoth(t, 160, 120, codec.Options{Lossless: true}, cfg)
		if string(par.Data) != string(seq.Data) {
			t.Fatalf("nSPE=%d: parallel lossless output differs from sequential (%d vs %d bytes)",
				nspe, len(par.Data), len(seq.Data))
		}
	}
}

func TestParallelMatchesSequentialLossy(t *testing.T) {
	for _, nspe := range []int{0, 1, 3, 8} {
		cfg := DefaultConfig(nspe, codec.Options{})
		par, seq := encodeBoth(t, 160, 120, codec.Options{Lossless: false, Rate: 0.1}, cfg)
		if string(par.Data) != string(seq.Data) {
			t.Fatalf("nSPE=%d: parallel lossy output differs from sequential", nspe)
		}
	}
}

func TestParallelMatchesAcrossKnobs(t *testing.T) {
	base := codec.Options{Lossless: true}
	ref, err := codec.Encode(workload.Dial(130, 90, 7, 4), base)
	if err != nil {
		t.Fatal(err)
	}
	knobs := []Config{
		{Cell: cell.DefaultConfig(4), BufferDepth: 1},
		{Cell: cell.DefaultConfig(4), BufferDepth: 6},
		{Cell: cell.DefaultConfig(4), ChunkWidth: 32},
		{Cell: cell.DefaultConfig(4), NaiveDWT: true},
		{Cell: cell.DefaultConfig(4), StaticT1: true},
		{Cell: cell.DefaultConfig(4), PPET1: true},
		{Cell: cell.QS20Config(16, 2)},
	}
	for i, cfg := range knobs {
		cfg.Codec = base
		par, err := Encode(workload.Dial(130, 90, 7, 4), cfg)
		if err != nil {
			t.Fatalf("knob %d: %v", i, err)
		}
		if string(par.Data) != string(ref.Data) {
			t.Fatalf("knob %d changed the output bytes", i)
		}
	}
}

func TestDecodableOutput(t *testing.T) {
	img := workload.Dial(96, 96, 5, 5)
	cfg := DefaultConfig(4, codec.Options{Lossless: true})
	par, err := Encode(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.Decode(par.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("parallel output did not round trip")
	}
}

func TestScalingLossless(t *testing.T) {
	img := workload.Dial(256, 256, 9, 5)
	var prev *Result
	times := map[int]float64{}
	for _, n := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig(n, codec.Options{Lossless: true})
		res, err := Encode(img, cfg)
		if err != nil {
			t.Fatal(err)
		}
		times[n] = float64(res.Cycles)
		prev = res
	}
	_ = prev
	s2 := times[1] / times[2]
	s8 := times[1] / times[8]
	if s2 < 1.4 {
		t.Fatalf("2-SPE speedup %.2f too low", s2)
	}
	if s8 < 3.0 {
		t.Fatalf("8-SPE speedup %.2f too low", s8)
	}
	if s8 > 8.5 {
		t.Fatalf("8-SPE speedup %.2f superlinear — model broken", s8)
	}
}

func TestLossyFlattensFromRateControl(t *testing.T) {
	img := workload.Dial(256, 256, 9, 5)
	opt := codec.Options{Lossless: false, Rate: 0.1}
	t1 := mustEncode(t, img, DefaultConfig(1, opt))
	t8 := mustEncode(t, img, DefaultConfig(8, opt))
	sLossy := float64(t1.Cycles) / float64(t8.Cycles)

	lo := codec.Options{Lossless: true}
	l1 := mustEncode(t, img, DefaultConfig(1, lo))
	l8 := mustEncode(t, img, DefaultConfig(8, lo))
	sLossless := float64(l1.Cycles) / float64(l8.Cycles)

	if sLossy >= sLossless {
		t.Fatalf("lossy speedup %.2f should trail lossless %.2f (sequential rate control)", sLossy, sLossless)
	}
	if t8.StageCycles("ratecontrol") == 0 {
		t.Fatal("rate control stage unpriced")
	}
}

func mustEncode(t *testing.T, img *imgmodel.Image, cfg Config) *Result {
	t.Helper()
	res, err := Encode(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFusedDWTMovesLessData(t *testing.T) {
	img := workload.Dial(256, 256, 3, 4)
	opt := codec.Options{Lossless: true}
	fused, err := Encode(img, DefaultConfig(4, opt))
	if err != nil {
		t.Fatal(err)
	}
	cfgN := DefaultConfig(4, opt)
	cfgN.NaiveDWT = true
	naive, err := Encode(img, cfgN)
	if err != nil {
		t.Fatal(err)
	}
	if naive.DMABytes <= fused.DMABytes {
		t.Fatalf("naive DWT DMA %d should exceed fused %d", naive.DMABytes, fused.DMABytes)
	}
	if naive.Cycles <= fused.Cycles {
		t.Fatalf("naive DWT (%d cycles) should be slower than fused (%d)", naive.Cycles, fused.Cycles)
	}
}

func TestWorkQueueBeatsStaticT1(t *testing.T) {
	// The dial image has wildly uneven block complexity; dynamic
	// distribution must win.
	img := workload.Dial(256, 256, 4, 6)
	opt := codec.Options{Lossless: true}
	wq, err := Encode(img, DefaultConfig(8, opt))
	if err != nil {
		t.Fatal(err)
	}
	cfgS := DefaultConfig(8, opt)
	cfgS.StaticT1 = true
	st, err := Encode(img, cfgS)
	if err != nil {
		t.Fatal(err)
	}
	if float64(wq.StageCycles("tier1")) > 1.02*float64(st.StageCycles("tier1")) {
		t.Fatalf("work queue Tier-1 (%d) slower than static (%d)",
			wq.StageCycles("tier1"), st.StageCycles("tier1"))
	}
}

func TestLSNeverOverflows(t *testing.T) {
	img := workload.Dial(320, 240, 2, 4)
	for _, n := range []int{1, 8} {
		res, err := Encode(img, DefaultConfig(n, codec.Options{Lossless: false, Rate: 0.2}))
		if err != nil {
			t.Fatal(err)
		}
		if res.LSHighWater > cell.LSSize {
			t.Fatalf("LS high water %d exceeds capacity", res.LSHighWater)
		}
		if res.LSHighWater == 0 && n > 0 {
			t.Fatal("LS accounting missing")
		}
	}
}

func TestStageBreakdownCoversMakespan(t *testing.T) {
	img := workload.Dial(128, 128, 3, 3)
	res, err := Encode(img, DefaultConfig(4, codec.Options{Lossless: true}))
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, s := range res.Stages {
		if s.Cycles < 0 {
			t.Fatalf("negative stage time: %+v", s)
		}
		sum += int64(s.Cycles)
	}
	if sum != int64(res.Cycles) {
		t.Fatalf("stage times sum %d != makespan %d", sum, res.Cycles)
	}
}

func TestPPEOnlyConfiguration(t *testing.T) {
	img := workload.Dial(96, 96, 1, 3)
	res, err := Encode(img, DefaultConfig(0, codec.Options{Lossless: true}))
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := codec.Encode(img, codec.Options{Lossless: true})
	if string(res.Data) != string(seq.Data) {
		t.Fatal("PPE-only output differs")
	}
	if res.DMABytes != 0 {
		t.Fatal("PPE-only run should issue no SPE DMA")
	}
}

func TestLoopParallelMatchesAndCapsSpeedup(t *testing.T) {
	img := workload.Dial(256, 256, 9, 5)
	opt := codec.Options{Lossless: false, Rate: 0.1}
	seq, err := codec.Encode(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	speedup := func(loop bool) float64 {
		var times [2]float64
		for i, n := range []int{1, 8} {
			cfg := DefaultConfig(n, opt)
			cfg.LoopParallel = loop
			res, err := Encode(img, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if string(res.Data) != string(seq.Data) {
				t.Fatalf("loop=%v n=%d: output differs", loop, n)
			}
			times[i] = float64(res.Cycles)
		}
		return times[0] / times[1]
	}
	whole, loop := speedup(false), speedup(true)
	if loop >= whole {
		t.Fatalf("loop-level speedup %.2f should trail whole-pipeline %.2f", loop, whole)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	img := workload.Dial(256, 256, 3, 5)
	res, err := Encode(img, DefaultConfig(8, codec.Options{Lossless: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SPEBusy) != 8 || len(res.PPEBusy) != 1 {
		t.Fatalf("busy arrays: %d SPE, %d PPE", len(res.SPEBusy), len(res.PPEBusy))
	}
	u := res.Utilization()
	if u <= 0.2 || u > 1.0 {
		t.Fatalf("utilization %.2f implausible", u)
	}
	// The work queue keeps SPE busy-time spread within a modest band.
	min, max := res.SPEBusy[0], res.SPEBusy[0]
	for _, b := range res.SPEBusy {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if float64(max) > 2.2*float64(min) {
		t.Fatalf("SPE busy imbalance: min %d max %d", min, max)
	}
	// PPE Tier-1 participation raises utilization.
	cfg := DefaultConfig(8, codec.Options{Lossless: true})
	cfg.PPET1 = true
	res2, err := Encode(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Utilization() <= u {
		t.Fatalf("PPE Tier-1 should raise utilization: %.3f vs %.3f", res2.Utilization(), u)
	}
}

func TestNUMAOutputIdenticalAndSlower(t *testing.T) {
	img := workload.Dial(256, 256, 5, 5)
	opt := codec.Options{Lossless: true}
	uni := DefaultConfig(16, opt)
	uni.Cell = cell.QS20Config(16, 1)
	base := mustEncode(t, img, uni)

	numa := DefaultConfig(16, opt)
	numa.Cell = cell.QS20Config(16, 1)
	numa.Cell.NUMA = true
	res := mustEncode(t, img, numa)

	if string(res.Data) != string(base.Data) {
		t.Fatal("NUMA model changed the output bytes")
	}
	if res.Cycles < base.Cycles {
		t.Fatalf("NUMA run (%d) should not beat the uniform model (%d)", res.Cycles, base.Cycles)
	}
	if float64(res.Cycles) > 1.5*float64(base.Cycles) {
		t.Fatalf("NUMA penalty implausibly large: %d vs %d", res.Cycles, base.Cycles)
	}
}
