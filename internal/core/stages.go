package core

import (
	"j2kcell/internal/cell"
	"j2kcell/internal/decomp"
	"j2kcell/internal/dwt"
	"j2kcell/internal/mct"
	"j2kcell/internal/quant"
	"j2kcell/internal/sim"
	"j2kcell/internal/t1"
)

// pixelStageSPEs returns how many SPEs the pixel-wise stages may use:
// zero under the Meerwald-style LoopParallel ablation, which keeps
// everything but the DWT and Tier-1 sequential on the PPE.
func (e *encoder) pixelStageSPEs() int {
	if e.cfg.LoopParallel {
		return 0
	}
	return e.cfg.Cell.SPEs
}

// buildStages assembles the barrier-delimited pipeline of Figure 2.
func (e *encoder) buildStages() []stage {
	stages := []stage{
		e.readStage(),
		e.shiftMCTStage(),
		e.dwtStage(),
	}
	if !e.cfg.Codec.Lossless {
		stages = append(stages, e.quantStage())
	}
	stages = append(stages,
		e.tier1Stage(),
		stage{name: "ratecontrol", ppe: func(p *sim.Proc, pe *cell.PPE, idx int) {
			if idx == 0 {
				e.rateControlOnPPE(p, pe)
			}
		}},
		stage{name: "tier2+io", ppe: func(p *sim.Proc, pe *cell.PPE, idx int) {
			if idx == 0 {
				e.tier2OnPPE(p, pe)
			}
		}},
	)
	return stages
}

// readStage models reading the decoded BMP stream (sequential, PPE) and
// converting samples to 4-byte integers (parallel over column chunks) —
// the partially parallelized stage of Figure 2. The integer planes were
// staged into simulated main memory at plan time; the conversion pass
// streams them through the SPEs at the conversion cost.
func (e *encoder) readStage() stage {
	img := e.img
	chunks := decomp.Partition(img.W, e.chunkWidth(img.W), e.pixelStageSPEs())
	// Stage the raw samples now; the simulated kernels re-stream them.
	for c, pl := range img.Comps {
		arr := e.iplanes[c]
		for y := 0; y < img.H; y++ {
			copy(arr.Row(y), pl.Row(y))
		}
	}
	return stage{
		name: "read",
		spe: func(p *sim.Proc, s *cell.SPE, idx int) {
			for _, ch := range decomp.ForPE(chunks, idx) {
				for _, arr := range e.iplanes {
					decomp.StreamRows(p, s, arr, arr, ch, e.cfg.BufferDepth,
						cell.SPECosts.ReadConv, func(int, []int32) {})
					s.LS.Reset()
				}
			}
		},
		ppe: func(p *sim.Proc, pe *cell.PPE, idx int) {
			if idx != 0 {
				return
			}
			// Sequential byte-stream read of the BMP payload.
			raw := img.W * img.H * len(img.Comps)
			pe.Compute(p, cell.Cycles(cell.PPECosts.IOByte, raw))
			pe.Touch(p, int64(raw))
			for _, ch := range decomp.ForPE(chunks, decomp.PPEChunk) {
				for _, arr := range e.iplanes {
					decomp.PPERows(p, pe, arr, arr, ch, cell.PPECosts.ReadConv, func(int, []int32) {})
				}
			}
		},
	}
}

// shiftMCTStage merges the DC level shift with the inter-component
// transform into one pass over the pixels (Section 3.2), chunked with
// the decomposition scheme.
func (e *encoder) shiftMCTStage() stage {
	img, opt := e.img, e.cfg.Codec
	ncomp := len(img.Comps)
	useMCT := ncomp == 3
	chunks := decomp.Partition(img.W, e.chunkWidth(img.W), e.pixelStageSPEs())
	depth := img.Depth

	speChunk := func(p *sim.Proc, s *cell.SPE, ch decomp.Chunk) {
		s.LS.Reset()
		w := ch.W
		nbuf := e.cfg.BufferDepth
		if nbuf < 1 {
			nbuf = 1
		}
		in := make([]*rowRing[int32], ncomp)
		for c := range in {
			in[c] = newRowRing[int32](s, e.iplanes[c], ch.X0, w, nbuf+1)
		}
		if opt.Lossless {
			out := make([]*putRing[int32], ncomp)
			for c := range out {
				out[c] = newPutRing[int32](s, w, nbuf)
			}
			for y := 0; y < img.H; y++ {
				rows := make([][]int32, ncomp)
				obs := make([][]int32, ncomp)
				for c := range rows {
					rows[c] = in[c].get(p, y)
					if y+nbuf < img.H {
						in[c].prefetch(p, y+nbuf)
					}
					obs[c] = out[c].acquire(p, y)
					copy(obs[c], rows[c])
				}
				if useMCT {
					mct.ForwardRCTRow(obs[0], obs[1], obs[2], depth)
				} else {
					for c := range obs {
						mct.LevelShiftRow(obs[c], depth)
					}
				}
				s.Compute(p, cell.Cycles(cell.SPECosts.ShiftMCT, ncomp*w))
				for c := range obs {
					out[c].put(p, y, e.iplanes[c], y, ch.X0)
				}
			}
			s.WaitAll(p)
			return
		}
		out := make([]*putRing[float32], ncomp)
		for c := range out {
			out[c] = newPutRing[float32](s, w, nbuf)
		}
		off := float32(int32(1) << (depth - 1))
		for y := 0; y < img.H; y++ {
			rows := make([][]int32, ncomp)
			obs := make([][]float32, ncomp)
			for c := range rows {
				rows[c] = in[c].get(p, y)
				if y+nbuf < img.H {
					in[c].prefetch(p, y+nbuf)
				}
				obs[c] = out[c].acquire(p, y)
			}
			if useMCT {
				mct.ForwardICTRow(rows[0], rows[1], rows[2], obs[0], obs[1], obs[2], depth)
			} else {
				for c := range obs {
					for i, v := range rows[c] {
						obs[c][i] = float32(v) - off
					}
				}
			}
			s.Compute(p, cell.Cycles(cell.SPECosts.ShiftMCT, ncomp*w))
			for c := range obs {
				out[c].put(p, y, e.fplanes[c], y, ch.X0)
			}
		}
		s.WaitAll(p)
	}

	ppeChunk := func(p *sim.Proc, pe *cell.PPE, ch decomp.Chunk) {
		w := ch.W
		off := float32(int32(1) << (depth - 1))
		for y := 0; y < img.H; y++ {
			rows := make([][]int32, ncomp)
			for c := range rows {
				rows[c], _ = seg(e.iplanes[c], y, ch.X0, w)
			}
			if opt.Lossless {
				if useMCT {
					mct.ForwardRCTRow(rows[0], rows[1], rows[2], depth)
				} else {
					for c := range rows {
						mct.LevelShiftRow(rows[c], depth)
					}
				}
				continue
			}
			fr := make([][]float32, ncomp)
			for c := range fr {
				fr[c], _ = seg(e.fplanes[c], y, ch.X0, w)
			}
			if useMCT {
				mct.ForwardICTRow(rows[0], rows[1], rows[2], fr[0], fr[1], fr[2], depth)
			} else {
				for c := range fr {
					for i, v := range rows[c] {
						fr[c][i] = float32(v) - off
					}
				}
			}
		}
		pe.Compute(p, cell.Cycles(cell.PPECosts.ShiftMCT, ncomp*w*img.H))
		pe.Touch(p, int64(8*ncomp*w*img.H))
	}

	return stage{
		name: "shift+mct",
		spe: func(p *sim.Proc, s *cell.SPE, idx int) {
			for _, ch := range decomp.ForPE(chunks, idx) {
				speChunk(p, s, ch)
			}
		},
		ppe: func(p *sim.Proc, pe *cell.PPE, idx int) {
			if idx != 0 {
				return
			}
			for _, ch := range decomp.ForPE(chunks, decomp.PPEChunk) {
				ppeChunk(p, pe, ch)
			}
		},
	}
}

// dwtStage runs all decomposition levels: per level, vertical filtering
// over column groups, an internal barrier, then horizontal filtering
// over row ranges, and another barrier.
func (e *encoder) dwtStage() stage {
	img, opt := e.img, e.cfg.Codec
	nSPE := e.cfg.Cell.SPEs
	nPE := nSPE + e.cfg.Cell.PPEThreads
	bar := &sim.Barrier{N: nPE}

	type level struct {
		lw, lh    int
		chunks    []decomp.Chunk
		rowsPerPE int
	}
	var levels []level
	for l := 0; l < opt.Levels; l++ {
		lw, lh := img.W, img.H
		for i := 0; i < l; i++ {
			lw, lh = (lw+1)/2, (lh+1)/2
		}
		if lw <= 1 && lh <= 1 {
			break
		}
		lv := level{lw: lw, lh: lh}
		cw := e.chunkWidth(lw)
		if lw >= decomp.WordsPerLine {
			lv.chunks = decomp.Partition(lw, cw, nSPE)
		} else {
			lv.chunks = []decomp.Chunk{{X0: 0, W: lw, PE: decomp.PPEChunk}}
		}
		if nSPE > 0 {
			lv.rowsPerPE = lh / nSPE
		}
		levels = append(levels, lv)
	}

	speWork := func(p *sim.Proc, s *cell.SPE, idx int) {
		for _, lv := range levels {
			s.LS.Reset()
			for _, ch := range decomp.ForPE(lv.chunks, idx) {
				if opt.Lossless {
					for _, arr := range e.iplanes {
						e.vertical53SPE(p, s, arr, ch, lv.lh)
						s.LS.Reset()
					}
				} else {
					for _, arr := range e.fplanes {
						e.vertical97SPE(p, s, arr, ch, lv.lh)
						s.LS.Reset()
					}
				}
			}
			s.WaitAll(p)
			p.Arrive(bar)
			s.LS.Reset()
			r0, r1 := idx*lv.rowsPerPE, (idx+1)*lv.rowsPerPE
			if opt.Lossless {
				for _, arr := range e.iplanes {
					horizontalSPE(p, s, e, arr, r0, r1, lv.lw, cell.SPECosts.DWT53, dwt.Fwd53Line)
					s.LS.Reset()
				}
			} else {
				cost := cell.SPECosts.DWT97
				if e.cfg.FixedPoint97 {
					cost = cell.SPECosts.DWT97Fix
				}
				for _, arr := range e.fplanes {
					horizontalSPE(p, s, e, arr, r0, r1, lv.lw, cost, dwt.Fwd97Line)
					s.LS.Reset()
				}
			}
			s.WaitAll(p)
			p.Arrive(bar)
		}
	}

	ppeWork := func(p *sim.Proc, pe *cell.PPE, idx int) {
		for _, lv := range levels {
			if idx == 0 {
				for _, ch := range decomp.ForPE(lv.chunks, decomp.PPEChunk) {
					if opt.Lossless {
						for _, arr := range e.iplanes {
							e.verticalPPE53(p, pe, arr, ch.X0, ch.W, lv.lh)
						}
					} else {
						for _, arr := range e.fplanes {
							e.verticalPPE97(p, pe, arr, ch.X0, ch.W, lv.lh)
						}
					}
				}
			}
			p.Arrive(bar)
			if idx == 0 {
				r0 := nSPE * lv.rowsPerPE // remainder rows
				if opt.Lossless {
					for _, arr := range e.iplanes {
						horizontalPPE(p, pe, arr, r0, lv.lh, lv.lw, cell.PPECosts.DWT53, dwt.Fwd53Line)
					}
				} else {
					cost := cell.PPECosts.DWT97
					if e.cfg.FixedPoint97 {
						cost = cell.PPECosts.DWT97Fix
					}
					for _, arr := range e.fplanes {
						horizontalPPE(p, pe, arr, r0, lv.lh, lv.lw, cost, dwt.Fwd97Line)
					}
				}
			}
			p.Arrive(bar)
		}
	}

	return stage{name: "dwt", spe: speWork, ppe: ppeWork}
}

// quantStage quantizes the 9/7 coefficients into integer indices,
// full-row chunked; the per-column step follows the subband geometry.
func (e *encoder) quantStage() stage {
	img, opt := e.img, e.cfg.Codec
	bands := dwt.Layout(img.W, img.H, opt.Levels)
	chunks := decomp.Partition(img.W, e.chunkWidth(img.W), e.pixelStageSPEs())

	// deltaSegs returns the per-column quantizer steps intersecting
	// [x0, x0+w) on row y as (offset, length, delta) runs.
	type drun struct {
		off, n int
		delta  float32
	}
	deltaSegs := func(y, x0, w int) []drun {
		var runs []drun
		for _, b := range bands {
			if b.W == 0 || b.H == 0 || y < b.Y0 || y >= b.Y0+b.H {
				continue
			}
			lo, hi := b.X0, b.X0+b.W
			if lo < x0 {
				lo = x0
			}
			if hi > x0+w {
				hi = x0 + w
			}
			if lo >= hi {
				continue
			}
			runs = append(runs, drun{
				off:   lo - x0,
				n:     hi - lo,
				delta: float32(quant.StepFor(opt.BaseDelta, opt.Levels, b.Orient, b.Level)),
			})
		}
		return runs
	}
	quantRow := func(y, x0 int, src []float32, dst []int32) {
		for _, r := range deltaSegs(y, x0, len(src)) {
			quant.QuantizeRow(dst[r.off:r.off+r.n], src[r.off:r.off+r.n], r.delta)
		}
	}

	return stage{
		name: "quant",
		spe: func(p *sim.Proc, s *cell.SPE, idx int) {
			for c := range e.fplanes {
				for _, ch := range decomp.ForPE(chunks, idx) {
					s.LS.Reset()
					nbuf := e.cfg.BufferDepth
					if nbuf < 1 {
						nbuf = 1
					}
					in := newRowRing[float32](s, e.fplanes[c], ch.X0, ch.W, nbuf+1)
					out := newPutRing[int32](s, ch.W, nbuf)
					for y := 0; y < nbuf && y < img.H; y++ {
						in.prefetch(p, y)
					}
					for y := 0; y < img.H; y++ {
						src := in.get(p, y)
						if y+nbuf < img.H {
							in.prefetch(p, y+nbuf)
						}
						dst := out.acquire(p, y)
						quantRow(y, ch.X0, src, dst)
						s.Compute(p, cell.Cycles(cell.SPECosts.Quant, ch.W))
						out.put(p, y, e.iplanes[c], y, ch.X0)
					}
					s.WaitAll(p)
				}
			}
		},
		ppe: func(p *sim.Proc, pe *cell.PPE, idx int) {
			if idx != 0 {
				return
			}
			for c := range e.fplanes {
				for _, ch := range decomp.ForPE(chunks, decomp.PPEChunk) {
					for y := 0; y < img.H; y++ {
						src, _ := seg(e.fplanes[c], y, ch.X0, ch.W)
						dst, _ := seg(e.iplanes[c], y, ch.X0, ch.W)
						quantRow(y, ch.X0, src, dst)
					}
					pe.Compute(p, cell.Cycles(cell.PPECosts.Quant, ch.W*img.H))
					pe.Touch(p, int64(8*ch.W*img.H))
				}
			}
		},
	}
}

// tier1Stage codes the blocks over a shared work queue (PPE and SPE
// threads both encode; the PPE runs branchy Tier-1 faster, Section 5.1)
// or, in the StaticT1 ablation, a fixed round-robin distribution.
func (e *encoder) tier1Stage() stage {
	mode := e.cfg.Codec.Mode()
	q := &workQueue{n: len(e.jobs)}
	nSPE := e.cfg.Cell.SPEs

	encodeJob := func(i int) *t1.Block {
		j := e.jobs[i]
		arr := e.iplanes[j.Comp]
		return t1.Encode(arr.Data[j.Y0*arr.Stride+j.X0:], j.W, j.H, arr.Stride, j.Band.Orient, mode, j.Gain)
	}

	speJob := func(p *sim.Proc, s *cell.SPE, i int) {
		j := e.jobs[i]
		arr := e.iplanes[j.Comp]
		// Fetch the block rows (aligned supersets of arbitrary windows).
		scratch, lsa := cell.AllocLS[int32](s.LS, roundUp4(j.W)+8)
		for y := 0; y < j.H; y++ {
			alignedFetchCost(p, s, arr, j.Y0+y, j.X0, j.W, scratch, lsa)
		}
		blk := encodeJob(i)
		s.Compute(p, cell.T1Cycles(cell.SPECosts, blk.TotalScanned(), blk.TotalCoded()))
		// Write the compressed bytes back to main memory.
		if n := len(blk.Data); n > 0 {
			outWords := (n + 15) / 16 * 4
			buf, blsa := cell.AllocLS[int32](s.LS, outWords)
			dst := make([]int32, outWords)
			ea := e.m.AllocEA(int64(4*outWords), 16)
			cell.Put(p, s, dst, ea, buf, blsa)
		}
		e.blocks[i] = blk
	}

	ppeJob := func(p *sim.Proc, pe *cell.PPE, i int) {
		blk := encodeJob(i)
		pe.Compute(p, cell.T1Cycles(cell.PPECosts, blk.TotalScanned(), blk.TotalCoded()))
		pe.Touch(p, int64(4*e.jobs[i].W*e.jobs[i].H+len(blk.Data)))
		e.blocks[i] = blk
	}

	return stage{
		name: "tier1",
		spe: func(p *sim.Proc, s *cell.SPE, idx int) {
			if e.cfg.StaticT1 {
				for i := idx; i < len(e.jobs); i += maxInt(nSPE, 1) {
					s.LS.Reset()
					speJob(p, s, i)
				}
				return
			}
			for {
				i, ok := q.pop(p, queuePopSPECycles)
				if !ok {
					return
				}
				s.LS.Reset()
				speJob(p, s, i)
			}
		},
		ppe: func(p *sim.Proc, pe *cell.PPE, idx int) {
			if !e.cfg.PPET1 && nSPE > 0 {
				return
			}
			if e.cfg.StaticT1 {
				if nSPE == 0 && idx == 0 {
					for i := range e.jobs {
						ppeJob(p, pe, i)
					}
				}
				return
			}
			for {
				i, ok := q.pop(p, queuePopPPECycles)
				if !ok {
					return
				}
				ppeJob(p, pe, i)
			}
		},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
