// Package spu is an instruction-level micro-model of the SPE's
// execution pipelines, used to derive — rather than assert — the
// Table 1 conclusion that emulated 32-bit integer multiplies lose to
// single-precision floats.
//
// The SPU issues in order, up to two instructions per cycle: one to the
// even pipeline (arithmetic) and one to the odd pipeline (loads,
// stores, shuffles, branches), provided the pair is dependency-free.
// Both pipelines are fully pipelined (a unit accepts a new instruction
// every cycle); results become available after the instruction's
// latency. This captures exactly the properties the paper's Section 4
// argument rests on: per-instruction latencies, dual-issue slots, and
// dependency chains.
package spu

import "fmt"

// Unit is an execution pipeline.
type Unit int

// The two SPU pipelines.
const (
	Even Unit = iota // fixed/float arithmetic
	Odd              // load/store, shuffle, branch
)

// Op describes an instruction class.
type Op struct {
	Name    string
	Unit    Unit
	Latency int
}

// The instruction classes used by the DWT kernels, with the latencies
// of the paper's Table 1 (plus the standard values for the rest of the
// SPU ISA, from the Cell handbook).
var (
	OpA     = Op{"a", Even, 2}     // add word (Table 1)
	OpMpyh  = Op{"mpyh", Even, 7}  // 16-bit multiply high (Table 1)
	OpMpyu  = Op{"mpyu", Even, 7}  // 16-bit multiply unsigned (Table 1)
	OpFm    = Op{"fm", Even, 6}    // float multiply (Table 1)
	OpFma   = Op{"fma", Even, 6}   // fused multiply-add
	OpFa    = Op{"fa", Even, 6}    // float add
	OpShl   = Op{"shl", Even, 4}   // shift left word
	OpRotmi = Op{"rotmi", Even, 4} // rotate/shift right immediate
	OpLqd   = Op{"lqd", Odd, 6}    // quadword load from Local Store
	OpStqd  = Op{"stqd", Odd, 6}   // quadword store
	OpShufb = Op{"shufb", Odd, 4}  // shuffle bytes
)

// Instr is one instruction: an op, a destination register and source
// registers. Register -1 means "no register" (immediate or none).
type Instr struct {
	Op   Op
	Dst  int
	Srcs []int
}

// I builds an instruction.
func I(op Op, dst int, srcs ...int) Instr { return Instr{Op: op, Dst: dst, Srcs: srcs} }

// Schedule runs the program through the in-order dual-issue model and
// returns the cycle at which the last result becomes available.
func Schedule(prog []Instr) int {
	ready := map[int]int{} // register -> cycle its value is available
	cycle := 0
	end := 0
	i := 0
	for i < len(prog) {
		// Earliest cycle instruction i can issue: all sources ready.
		issueAt := func(in Instr, at int) int {
			for _, s := range in.Srcs {
				if s >= 0 && ready[s] > at {
					at = ready[s]
				}
			}
			return at
		}
		first := prog[i]
		c := issueAt(first, cycle)
		issue := func(in Instr, at int) {
			done := at + in.Op.Latency
			if in.Dst >= 0 {
				ready[in.Dst] = done
			}
			if done > end {
				end = done
			}
		}
		issue(first, c)
		i++
		// Dual issue: the next instruction may pair in the same cycle if
		// it uses the other pipeline and does not depend on `first`.
		if i < len(prog) {
			second := prog[i]
			if second.Op.Unit != first.Op.Unit && issueAt(second, c) == c && !depends(second, first) {
				issue(second, c)
				i++
			}
		}
		cycle = c + 1 // in-order: next issue no earlier than the next cycle
	}
	return end
}

func depends(b, a Instr) bool {
	for _, s := range b.Srcs {
		if s >= 0 && s == a.Dst {
			return true
		}
	}
	return false
}

// Mul32Kernel builds n emulated 32-bit vector multiplies, the SPU
// sequence for a*b when only 16-bit multipliers exist:
//
//	mpyh t0,a,b ; mpyh t1,b,a ; mpyu t2,a,b ; a t3,t0,t1 ; a d,t3,t2
//
// Instructions are emitted phase-ordered (all multiplies, then the add
// trees), the software-pipelined order an unrolled SPU loop uses, so
// steady-state throughput is visible to the in-order scheduler.
func Mul32Kernel(n int) []Instr {
	base := 100
	var mpys, add1, add2 []Instr
	for k := 0; k < n; k++ {
		a, b := 2*k, 2*k+1 // inputs assumed resident
		t0, t1, t2, t3, d := base, base+1, base+2, base+3, base+4
		base += 5
		mpys = append(mpys,
			I(OpMpyh, t0, a, b),
			I(OpMpyh, t1, b, a),
			I(OpMpyu, t2, a, b))
		add1 = append(add1, I(OpA, t3, t0, t1))
		add2 = append(add2, I(OpA, d, t3, t2))
	}
	prog := append(mpys, add1...)
	return append(prog, add2...)
}

// FloatMulKernel builds n independent float vector multiplies.
func FloatMulKernel(n int) []Instr {
	var prog []Instr
	for k := 0; k < n; k++ {
		prog = append(prog, I(OpFm, 100+k, 2*k, 2*k+1))
	}
	return prog
}

// Lift97FloatKernel models one 9/7 lifting step over n vectors:
// per vector, d += c*(e0+e1): one fa + one fma, with a load and store
// slotted on the odd pipe. Phase-ordered for steady-state throughput.
func Lift97FloatKernel(n int) []Instr {
	var loads, fas, fmas, stores []Instr
	reg := 10000
	for k := 0; k < n; k++ {
		e0, e1, d := 3*k, 3*k+1, 3*k+2
		sum, out := reg, reg+1
		reg += 2
		loads = append(loads, I(OpLqd, e1))
		fas = append(fas, I(OpFa, sum, e0, e1))
		fmas = append(fmas, I(OpFma, out, sum, d))
		stores = append(stores, I(OpStqd, -1, out))
	}
	prog := append(loads, fas...)
	prog = append(prog, fmas...)
	return append(prog, stores...)
}

// Lift97FixedKernel is the same lifting step with Q13 fixed-point
// arithmetic: the multiply becomes the 5-instruction 32-bit emulation
// plus a rounding add and shift. Phase-ordered like the float kernel.
func Lift97FixedKernel(n int) []Instr {
	phases := make([][]Instr, 10)
	reg := 10000
	for k := 0; k < n; k++ {
		e0, e1, d := 3*k, 3*k+1, 3*k+2
		sum := reg
		t0, t1, t2, t3, m := reg+1, reg+2, reg+3, reg+4, reg+5
		r, sh, out := reg+6, reg+7, reg+8
		reg += 9
		phases[0] = append(phases[0], I(OpLqd, e1))
		phases[1] = append(phases[1], I(OpA, sum, e0, e1))
		// 32-bit multiply emulation of c*(e0+e1).
		phases[2] = append(phases[2],
			I(OpMpyh, t0, sum),
			I(OpMpyh, t1, sum),
			I(OpMpyu, t2, sum))
		phases[3] = append(phases[3], I(OpA, t3, t0, t1))
		phases[4] = append(phases[4], I(OpA, m, t3, t2))
		// Rounding add, shift back, accumulate, store.
		phases[5] = append(phases[5], I(OpA, r, m))
		phases[6] = append(phases[6], I(OpRotmi, sh, r))
		phases[7] = append(phases[7], I(OpA, out, sh, d))
		phases[8] = append(phases[8], I(OpStqd, -1, out))
	}
	var prog []Instr
	for _, ph := range phases {
		prog = append(prog, ph...)
	}
	return prog
}

// CyclesPer runs a kernel generator at a steady-state size and reports
// cycles per iteration.
func CyclesPer(gen func(n int) []Instr, n int) float64 {
	// invariant: calibration sizes are compile-time constants in the
	// harness; no external input reaches this.
	if n < 1 {
		panic("spu: CyclesPer needs n >= 1")
	}
	return float64(Schedule(gen(n))) / float64(n)
}

// String renders an instruction for diagnostics.
func (in Instr) String() string {
	return fmt.Sprintf("%s r%d %v", in.Op.Name, in.Dst, in.Srcs)
}
