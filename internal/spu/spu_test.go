package spu

import (
	"testing"

	"j2kcell/internal/cell"
)

func TestSingleInstructionLatency(t *testing.T) {
	for _, c := range []struct {
		op   Op
		want int
	}{{OpA, 2}, {OpMpyh, 7}, {OpFm, 6}, {OpLqd, 6}} {
		got := Schedule([]Instr{I(c.op, 10, 0, 1)})
		if got != c.want {
			t.Errorf("%s: %d cycles, want %d", c.op.Name, got, c.want)
		}
	}
}

func TestDependencyChain(t *testing.T) {
	// a r2,r0,r1 ; a r3,r2,r1 — the second waits for the first.
	prog := []Instr{I(OpA, 2, 0, 1), I(OpA, 3, 2, 1)}
	if got := Schedule(prog); got != 4 {
		t.Fatalf("chained adds: %d cycles, want 4", got)
	}
}

func TestIndependentSameUnitPipelines(t *testing.T) {
	// Two independent adds on the even pipe: second issues next cycle.
	prog := []Instr{I(OpA, 2, 0, 1), I(OpA, 3, 0, 1)}
	if got := Schedule(prog); got != 3 {
		t.Fatalf("pipelined adds: %d cycles, want 3", got)
	}
}

func TestDualIssue(t *testing.T) {
	// An even add and an odd load pair in one cycle.
	prog := []Instr{I(OpA, 2, 0, 1), I(OpLqd, 3)}
	if got := Schedule(prog); got != 6 {
		t.Fatalf("dual issue: %d cycles, want 6 (load latency)", got)
	}
	// A dependent odd instruction cannot pair.
	prog = []Instr{I(OpA, 2, 0, 1), I(OpStqd, -1, 2)}
	if got := Schedule(prog); got != 2+6 {
		t.Fatalf("dependent pair: %d cycles, want 8", got)
	}
}

func TestMul32LatencyMatchesTable1Derivation(t *testing.T) {
	// One emulated 32-bit multiply: 7-cycle mpy chain + two dependent
	// adds = 11 cycles, the cell package's FixedMul32Latency.
	got := Schedule(Mul32Kernel(1))
	if got != cell.FixedMul32Latency {
		t.Fatalf("emulated multiply latency %d, want %d", got, cell.FixedMul32Latency)
	}
	if fl := Schedule(FloatMulKernel(1)); fl != cell.FloatMul32Latency {
		t.Fatalf("float multiply latency %d, want %d", fl, cell.FloatMul32Latency)
	}
}

func TestSteadyStateThroughput(t *testing.T) {
	// Independent float multiplies sustain ~1/cycle; the emulated
	// multiply needs ~5 even-pipe slots each.
	fm := CyclesPer(FloatMulKernel, 64)
	if fm > 1.2 {
		t.Fatalf("float multiply throughput %.2f cycles, want ~1", fm)
	}
	mul := CyclesPer(Mul32Kernel, 64)
	if mul < 4.5 || mul > 6 {
		t.Fatalf("emulated multiply throughput %.2f cycles, want ~5", mul)
	}
}

func TestLiftingKernelRatioSupportsCostModel(t *testing.T) {
	// The scheduled fixed/float ratio of the lifting inner loop must
	// agree with the calibrated cost-model ratio to ~25%: the cost
	// model's DWT97Fix/DWT97 is supposed to be this physics.
	fl := CyclesPer(Lift97FloatKernel, 128)
	fx := CyclesPer(Lift97FixedKernel, 128)
	scheduled := fx / fl
	model := cell.SPECosts.DWT97Fix / cell.SPECosts.DWT97
	if scheduled < 1.5 {
		t.Fatalf("fixed lifting (%.2f cyc) should clearly exceed float (%.2f cyc)", fx, fl)
	}
	ratio := scheduled / model
	if ratio < 0.75 || ratio > 1.35 {
		t.Fatalf("scheduled ratio %.2f vs cost-model ratio %.2f diverge (x%.2f)", scheduled, model, ratio)
	}
}

func TestCyclesPerPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	CyclesPer(FloatMulKernel, 0)
}

func TestInstrString(t *testing.T) {
	s := I(OpFm, 5, 1, 2).String()
	if s == "" {
		t.Fatal("empty render")
	}
}
