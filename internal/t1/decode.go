package t1

import (
	"fmt"

	"j2kcell/internal/dwt"
	"j2kcell/internal/mq"
	"j2kcell/internal/obs"
)

// decoder mirrors the encoder pass for pass. It shares the flag-word
// scheme and context LUTs with the encoder, so its context sequence is
// identical by construction; the column-skip fast paths fire exactly
// where the encoder emitted nothing (they are pure functions of the
// same flag state), keeping the two in lockstep on the bitstream.
type decoder struct {
	*coder
	mq        *mq.Decoder
	lastPlane []int8 // lowest plane at which each coefficient was coded
}

// Decode reconstructs a w×h code block from its Tier-1 bitstream into
// coef (row stride given). numBPS and numPasses come from the Tier-2
// packet headers; segLens gives the per-pass segment lengths for
// ModeTermAll blocks (ignored for ModeSingle). Decoding a truncated
// pass set yields the standard midpoint reconstruction of whatever
// precision each coefficient reached.
func Decode(coef []int32, w, h, stride int, orient dwt.Orient, mode Mode, numBPS, numPasses int, data []byte, segLens []int) error {
	return DecodeObs(obs.Active(), coef, w, h, stride, orient, mode, numBPS, numPasses, data, segLens)
}

// DecodeObs is Decode attributing coder-pool traffic to an explicit
// recorder (nil-safe) instead of the process ambient one.
func DecodeObs(rec *obs.Recorder, coef []int32, w, h, stride int, orient dwt.Orient, mode Mode, numBPS, numPasses int, data []byte, segLens []int) error {
	if mode.IsHT() {
		return decodeHT(rec, coef, w, h, stride, orient, numBPS, numPasses, data, segLens)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			coef[y*stride+x] = 0
		}
	}
	if numBPS == 0 || numPasses == 0 {
		return nil
	}
	c := newCoderObs(w, h, orient, rec)
	defer c.release()
	lp := getInt8(w * h)
	defer putInt8(lp)
	d := &decoder{coder: c, lastPlane: *lp}

	if mode.Base() == ModeTermAll && len(segLens) < numPasses {
		return fmt.Errorf("t1: %d passes but only %d segment lengths", numPasses, len(segLens))
	}
	if mode.Base() == ModeSingle {
		d.mq = mq.NewDecoder(data)
	}

	pass, off := 0, 0
	nextSeg := func() {
		if mode.Base() != ModeTermAll {
			return
		}
		n := segLens[pass]
		if off+n > len(data) {
			n = len(data) - off
		}
		d.mq = mq.NewDecoder(data[off : off+n])
		off += n
	}

	for p := numBPS - 1; p >= 0 && pass < numPasses; p-- {
		if p != numBPS-1 {
			if pass < numPasses {
				nextSeg()
				d.sigPass(p)
				pass++
			}
			if pass < numPasses {
				nextSeg()
				d.refPass(p)
				pass++
			}
		}
		if pass < numPasses {
			nextSeg()
			d.clnPass(p)
			if mode.SegSym() {
				// The encoder closed this cleanup pass with the 1010
				// sentinel in the UNIFORM context; anything else means the
				// MQ decoder lost sync inside a damaged segment.
				got := d.decodeBit(ctxUNI)<<3 | d.decodeBit(ctxUNI)<<2 |
					d.decodeBit(ctxUNI)<<1 | d.decodeBit(ctxUNI)
				if got != 0b1010 {
					return fmt.Errorf("t1: segmentation symbol mismatch at plane %d: got %04b", p, got)
				}
			}
			pass++
		}
	}

	// Midpoint reconstruction at each coefficient's reached precision.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			m := c.mag[i]
			if m == 0 {
				continue
			}
			if lp := d.lastPlane[i]; lp > 0 {
				m += 1 << uint(lp-1)
			}
			v := int32(m)
			if c.flags[c.fidx(x, y)]&fwNeg != 0 {
				v = -v
			}
			coef[y*stride+x] = v
		}
	}
	return nil
}

func (d *decoder) decodeBit(ctx int) int { return d.mq.Decode(&d.cx[ctx]) }

// decodeSignificance reads the sign of a newly significant coefficient,
// propagates its significance into the neighbor flag words, and sets
// its magnitude bit.
func (d *decoder) decodeSignificance(fi, mi, p int) {
	fv := d.flags[fi]
	sc := lutSC[scIndex(fv)]
	bit := d.decodeBit(ctxSC + int(sc&7))
	neg := uint8(bit)^(sc>>3) == 1
	if neg {
		d.flags[fi] |= fwNeg
	}
	d.setSig(fi, neg)
	d.mag[mi] |= 1 << uint(p)
	d.lastPlane[mi] = int8(p)
}

func (d *decoder) sigPass(p int) {
	w, h, fw := d.w, d.h, d.fw
	f := d.flags
	zc := &lutZC[d.zcTab]
	vp := visitStamp(p)
	for y0 := 0; y0 < h; y0 += 4 {
		sh := h - y0
		if sh > 4 {
			sh = 4
		}
		fi0 := (y0+1)*fw + 1
		mi0 := y0 * w
		for x := 0; x < w; x++ {
			fi := fi0 + x
			or, and := f[fi], f[fi]
			for k := 1; k < sh; k++ {
				v := f[fi+k*fw]
				or |= v
				and &= v
			}
			// Mirrors the encoder: no significant neighbor anywhere or
			// every coefficient already significant ⇒ nothing was coded.
			if or&fwSigNbr == 0 || and&fwSig != 0 {
				continue
			}
			mi := mi0 + x
			for k := 0; k < sh; k++ {
				fv := f[fi]
				if fv&fwSig == 0 {
					if c := zc[fv>>4&0xFF]; c != 0 {
						if d.decodeBit(ctxZC+int(c)) == 1 {
							d.decodeSignificance(fi, mi, p)
						}
						f[fi] = f[fi]&^fwVisitMask | vp
					}
				}
				fi += fw
				mi += w
			}
		}
	}
}

func (d *decoder) refPass(p int) {
	w, h, fw := d.w, d.h, d.fw
	f := d.flags
	vp := visitStamp(p)
	up := uint(p)
	for y0 := 0; y0 < h; y0 += 4 {
		sh := h - y0
		if sh > 4 {
			sh = 4
		}
		fi0 := (y0+1)*fw + 1
		mi0 := y0 * w
		for x := 0; x < w; x++ {
			fi := fi0 + x
			or := f[fi]
			for k := 1; k < sh; k++ {
				or |= f[fi+k*fw]
			}
			if or&fwSig == 0 {
				continue // nothing significant in the column
			}
			mi := mi0 + x
			for k := 0; k < sh; k++ {
				fv := f[fi]
				if fv&fwSig != 0 && fv&fwVisitMask != vp {
					bit := d.decodeBit(mrCtx(fv))
					d.mag[mi] |= uint32(bit) << up
					d.lastPlane[mi] = int8(p)
					f[fi] |= fwRefined
				}
				fi += fw
				mi += w
			}
		}
	}
}

func (d *decoder) clnPass(p int) {
	w, h, fw := d.w, d.h, d.fw
	f := d.flags
	zc := &lutZC[d.zcTab]
	vp := visitStamp(p)
	for y0 := 0; y0 < h; y0 += 4 {
		sh := h - y0
		if sh > 4 {
			sh = 4
		}
		fi0 := (y0+1)*fw + 1
		mi0 := y0 * w
		for x := 0; x < w; x++ {
			fi := fi0 + x
			mi := mi0 + x
			start := 0
			if sh == 4 {
				f0, f1, f2, f3 := f[fi], f[fi+fw], f[fi+2*fw], f[fi+3*fw]
				if f0&f1&f2&f3&fwSig != 0 {
					continue // all four significant: encoder coded nothing
				}
				or := f0 | f1 | f2 | f3
				if or&(fwSig|fwSigNbr) == 0 {
					if d.decodeBit(ctxRL) == 0 {
						continue
					}
					runLen := d.decodeBit(ctxUNI)<<1 | d.decodeBit(ctxUNI)
					fi += runLen * fw
					mi += runLen * w
					d.decodeSignificance(fi, mi, p)
					fi += fw
					mi += w
					start = runLen + 1
				}
			}
			for k := start; k < sh; k++ {
				fv := f[fi]
				if fv&fwSig == 0 && fv&fwVisitMask != vp {
					if d.decodeBit(ctxZC+int(zc[fv>>4&0xFF])) == 1 {
						d.decodeSignificance(fi, mi, p)
					}
				}
				fi += fw
				mi += w
			}
		}
	}
}
