package t1

import (
	"fmt"

	"j2kcell/internal/dwt"
	"j2kcell/internal/mq"
)

// decoder mirrors the encoder pass for pass.
type decoder struct {
	*coder
	mq        *mq.Decoder
	lastPlane []int8 // lowest plane at which each coefficient was coded
}

// Decode reconstructs a w×h code block from its Tier-1 bitstream into
// coef (row stride given). numBPS and numPasses come from the Tier-2
// packet headers; segLens gives the per-pass segment lengths for
// ModeTermAll blocks (ignored for ModeSingle). Decoding a truncated
// pass set yields the standard midpoint reconstruction of whatever
// precision each coefficient reached.
func Decode(coef []int32, w, h, stride int, orient dwt.Orient, mode Mode, numBPS, numPasses int, data []byte, segLens []int) error {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			coef[y*stride+x] = 0
		}
	}
	if numBPS == 0 || numPasses == 0 {
		return nil
	}
	c := newCoder(w, h, orient)
	defer c.release()
	lp := getInt8(w * h)
	defer putInt8(lp)
	d := &decoder{coder: c, lastPlane: *lp}

	if mode == ModeTermAll && len(segLens) < numPasses {
		return fmt.Errorf("t1: %d passes but only %d segment lengths", numPasses, len(segLens))
	}
	if mode == ModeSingle {
		d.mq = mq.NewDecoder(data)
	}

	pass, off := 0, 0
	nextSeg := func() {
		if mode != ModeTermAll {
			return
		}
		n := segLens[pass]
		if off+n > len(data) {
			n = len(data) - off
		}
		d.mq = mq.NewDecoder(data[off : off+n])
		off += n
	}

	for p := numBPS - 1; p >= 0 && pass < numPasses; p-- {
		if p != numBPS-1 {
			if pass < numPasses {
				nextSeg()
				d.sigPass(p)
				pass++
			}
			if pass < numPasses {
				nextSeg()
				d.refPass(p)
				pass++
			}
		}
		if pass < numPasses {
			nextSeg()
			d.clnPass(p)
			pass++
		}
		c.clearVisit()
	}

	// Midpoint reconstruction at each coefficient's reached precision.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			m := c.mag[i]
			if m == 0 {
				continue
			}
			if lp := d.lastPlane[i]; lp > 0 {
				m += 1 << uint(lp-1)
			}
			v := int32(m)
			if c.flags[c.fidx(x, y)]&fNeg != 0 {
				v = -v
			}
			coef[y*stride+x] = v
		}
	}
	return nil
}

func (d *decoder) decodeBit(ctx int) int { return d.mq.Decode(&d.cx[ctx]) }

// decodeSignificance reads the sign of a newly significant coefficient
// and sets its flags and magnitude bit.
func (d *decoder) decodeSignificance(x, y, fi, p int) {
	ctx, xor := d.scContext(fi)
	bit := d.decodeBit(ctx)
	if uint8(bit)^xor == 1 {
		d.flags[fi] |= fNeg
	}
	d.flags[fi] |= fSig
	d.mag[y*d.w+x] |= 1 << uint(p)
	d.lastPlane[y*d.w+x] = int8(p)
}

func (d *decoder) sigPass(p int) {
	for y0 := 0; y0 < d.h; y0 += 4 {
		for x := 0; x < d.w; x++ {
			ymax := y0 + 4
			if ymax > d.h {
				ymax = d.h
			}
			for y := y0; y < ymax; y++ {
				fi := d.fidx(x, y)
				if d.flags[fi]&fSig != 0 {
					continue
				}
				zc := d.zcContext(fi)
				if zc == 0 {
					continue
				}
				if d.decodeBit(ctxZC+zc) == 1 {
					d.decodeSignificance(x, y, fi, p)
				}
				d.flags[fi] |= fVisit
			}
		}
	}
}

func (d *decoder) refPass(p int) {
	for y0 := 0; y0 < d.h; y0 += 4 {
		for x := 0; x < d.w; x++ {
			ymax := y0 + 4
			if ymax > d.h {
				ymax = d.h
			}
			for y := y0; y < ymax; y++ {
				fi := d.fidx(x, y)
				if d.flags[fi]&(fSig|fVisit) != fSig {
					continue
				}
				bit := d.decodeBit(d.mrContext(fi))
				d.mag[y*d.w+x] |= uint32(bit) << uint(p)
				d.lastPlane[y*d.w+x] = int8(p)
				d.flags[fi] |= fRefined
			}
		}
	}
}

func (d *decoder) clnPass(p int) {
	for y0 := 0; y0 < d.h; y0 += 4 {
		for x := 0; x < d.w; x++ {
			fullStripe := y0+4 <= d.h
			runLen := -1
			if fullStripe {
				ok := true
				for y := y0; y < y0+4 && ok; y++ {
					fi := d.fidx(x, y)
					if d.flags[fi]&(fSig|fVisit) != 0 || d.zcContext(fi) != 0 {
						ok = false
					}
				}
				if ok {
					if d.decodeBit(ctxRL) == 0 {
						continue
					}
					runLen = d.decodeBit(ctxUNI)<<1 | d.decodeBit(ctxUNI)
					y := y0 + runLen
					d.decodeSignificance(x, y, d.fidx(x, y), p)
				}
			}
			start := y0
			if runLen >= 0 {
				start = y0 + runLen + 1
			}
			ymax := y0 + 4
			if ymax > d.h {
				ymax = d.h
			}
			for y := start; y < ymax; y++ {
				fi := d.fidx(x, y)
				if d.flags[fi]&(fSig|fVisit) != 0 {
					continue
				}
				zc := d.zcContext(fi)
				if d.decodeBit(ctxZC+zc) == 1 {
					d.decodeSignificance(x, y, fi, p)
				}
			}
		}
	}
}
