package t1

import (
	"bytes"
	"testing"
	"testing/quick"

	"j2kcell/internal/dwt"
	"j2kcell/internal/workload"
)

// --- stream primitives -------------------------------------------------

// TestHTWriterReaderRoundTrip drives random put/get sequences through
// the stuffed bit packer, including long all-ones stretches that force
// 0xFF bytes and the 7-bit stuffing path.
func TestHTWriterReaderRoundTrip(t *testing.T) {
	rng := workload.NewRNG(42)
	for trial := 0; trial < 200; trial++ {
		var w htWriter
		w.reset()
		type item struct {
			v  uint32
			nb uint
		}
		var items []item
		n := rng.Intn(200) + 1
		for i := 0; i < n; i++ {
			nb := uint(rng.Intn(32) + 1)
			var v uint32
			switch rng.Intn(3) {
			case 0:
				v = uint32(rng.Intn(1 << 16))
			case 1:
				v = 0xFFFFFFFF // force FF bytes and stuffing
			}
			v &= uint32(1)<<nb - 1
			items = append(items, item{v, nb})
			w.put(v, nb)
		}
		w.flush()
		var r htReader
		r.init(w.buf)
		for i, it := range items {
			if got := r.get(it.nb); got != it.v {
				t.Fatalf("trial %d item %d: get(%d) = %#x, want %#x", trial, i, it.nb, got, it.v)
			}
		}
		// Stuffing invariant: no 0xFF may be followed by a byte >= 0x80.
		for i := 0; i+1 < len(w.buf); i++ {
			if w.buf[i] == 0xFF && w.buf[i+1] >= 0x80 {
				t.Fatalf("trial %d: stuffing violated at byte %d: FF %02X", trial, i, w.buf[i+1])
			}
		}
	}
}

// TestHTReaderPastEnd pins the degrade-to-zeros contract for truncated
// streams.
func TestHTReaderPastEnd(t *testing.T) {
	var r htReader
	r.init([]byte{0xAB})
	r.get(8)
	for i := 0; i < 100; i++ {
		if got := r.get(17); got != 0 {
			t.Fatalf("read past end returned %#x, want 0", got)
		}
	}
}

// TestMELRoundTrip runs random event sequences through the MEL coder,
// with zero-heavy distributions so the adaptive run states climb.
func TestMELRoundTrip(t *testing.T) {
	rng := workload.NewRNG(7)
	for trial := 0; trial < 200; trial++ {
		var enc melEncoder
		enc.reset()
		n := rng.Intn(500) + 1
		bits := make([]int, n)
		denom := rng.Intn(30) + 2 // P(1) from 1/2 down to 1/31
		for i := range bits {
			if rng.Intn(denom) == 0 {
				bits[i] = 1
			}
			enc.encode(bits[i])
		}
		enc.flush()
		var dec melDecoder
		dec.init(enc.w.buf)
		for i, want := range bits {
			if got := dec.decode(); got != want {
				t.Fatalf("trial %d event %d: decoded %d, want %d", trial, i, got, want)
			}
		}
	}
}

// TestMELEncodeZerosEquivalence pins the batched fast path against the
// event-at-a-time reference: byte-identical output is what lets the
// encoder skip all-quiet quad rows without a decoder-visible effect.
func TestMELEncodeZerosEquivalence(t *testing.T) {
	rng := workload.NewRNG(13)
	for trial := 0; trial < 100; trial++ {
		var ref, fast melEncoder
		ref.reset()
		fast.reset()
		for seg := 0; seg < 20; seg++ {
			zeros := rng.Intn(100)
			for i := 0; i < zeros; i++ {
				ref.encode(0)
			}
			fast.encodeZeros(zeros)
			ref.encode(1)
			fast.encode(1)
		}
		ref.flush()
		fast.flush()
		if !bytes.Equal(ref.w.buf, fast.w.buf) {
			t.Fatalf("trial %d: encodeZeros output differs from event loop", trial)
		}
	}
}

// TestUExpRoundTrip covers the full prefix-code range.
func TestUExpRoundTrip(t *testing.T) {
	for u := 0; u <= 37; u++ {
		var w htWriter
		w.reset()
		putUExp(&w, u)
		w.flush()
		var r htReader
		r.init(w.buf)
		if got := getUExp(&r); got != u {
			t.Fatalf("u=%d decoded as %d", u, got)
		}
	}
}

// --- block round trips -------------------------------------------------

// roundTripHT encodes with the HT coder and decodes the given pass
// prefix, returning the block and the reconstruction.
func roundTripHT(t *testing.T, coef []int32, w, h int, orient dwt.Orient, mode Mode, passes int) (*Block, []int32) {
	t.Helper()
	blk := Encode(coef, w, h, w, orient, mode, 1.0)
	if passes <= 0 || passes > len(blk.Passes) {
		passes = len(blk.Passes)
	}
	segLens := make([]int, len(blk.Passes))
	for i, p := range blk.Passes {
		segLens[i] = p.SegLen
	}
	got := make([]int32, w*h)
	if err := Decode(got, w, h, w, orient, mode, blk.NumBPS, passes, blk.Data, segLens); err != nil {
		t.Fatal(err)
	}
	return blk, got
}

// TestHTLosslessRoundTrip: ModeHT must reproduce every coefficient
// exactly, across orientations, content statistics, and geometries
// (odd sizes exercise the partial-quad paths).
func TestHTLosslessRoundTrip(t *testing.T) {
	sizes := []struct{ w, h int }{
		{1, 1}, {1, 7}, {7, 1}, {3, 5}, {2, 9}, {16, 16}, {33, 17}, {64, 64}, {64, 37}, {13, 64},
	}
	for _, o := range []dwt.Orient{dwt.LL, dwt.HL, dwt.LH, dwt.HH} {
		for _, s := range sizes {
			for name, coef := range map[string][]int32{
				"dense":  randBlock(s.w, s.h, uint32(s.w*s.h)+uint32(o), 500),
				"sparse": sparseBlock(s.w, s.h, uint32(s.w+s.h*3)+uint32(o)),
			} {
				_, got := roundTripHT(t, coef, s.w, s.h, o, ModeHT, 0)
				for i := range coef {
					if got[i] != coef[i] {
						t.Fatalf("%v %s %dx%d: coef %d decoded %d, want %d",
							o, name, s.w, s.h, i, got[i], coef[i])
					}
				}
			}
		}
	}
}

// TestHTRefineRoundTrip pins the three-pass variant: decoding any pass
// prefix reconstructs every coefficient to within one quantizer step
// (the plane-1 midpoint bound), and the magnitude-2+ samples are exact
// once MagRef lands.
func TestHTRefineRoundTrip(t *testing.T) {
	for _, s := range []struct{ w, h int }{{16, 16}, {33, 17}, {64, 64}, {5, 3}} {
		coef := randBlock(s.w, s.h, uint32(s.w)*31+uint32(s.h), 400)
		blk := Encode(coef, s.w, s.h, s.w, dwt.HL, ModeHTRefine, 1.0)
		if len(blk.Passes) != 3 {
			t.Fatalf("%dx%d: ModeHTRefine produced %d passes, want 3", s.w, s.h, len(blk.Passes))
		}
		wantTypes := []PassType{PassCln, PassSig, PassRef}
		for i, p := range blk.Passes {
			if p.Type != wantTypes[i] {
				t.Fatalf("pass %d type %v, want %v", i, p.Type, wantTypes[i])
			}
		}
		for passes := 1; passes <= 3; passes++ {
			_, got := roundTripHT(t, coef, s.w, s.h, dwt.HL, ModeHTRefine, passes)
			for i := range coef {
				d := got[i] - coef[i]
				if d < 0 {
					d = -d
				}
				if d > 1 {
					t.Fatalf("%dx%d passes=%d: coef %d decoded %d, want %d (err %d > 1)",
						s.w, s.h, passes, i, got[i], coef[i], d)
				}
				if passes == 3 {
					m := coef[i]
					if m < 0 {
						m = -m
					}
					if m >= 2 && got[i] != coef[i] {
						t.Fatalf("%dx%d full decode: magnitude-%d coef %d not exact: %d", s.w, s.h, m, i, got[i])
					}
				}
			}
		}
	}
}

// TestHTRefineSinglePlaneBlock: numBPS == 1 blocks cannot run a plane-1
// cleanup; ModeHTRefine must fall back to a single plane-0 cleanup and
// stay exact.
func TestHTRefineSinglePlaneBlock(t *testing.T) {
	coef := make([]int32, 8*8)
	coef[3], coef[17], coef[40] = 1, -1, 1
	blk, got := roundTripHT(t, coef, 8, 8, dwt.HH, ModeHTRefine, 0)
	if blk.NumBPS != 1 || len(blk.Passes) != 1 {
		t.Fatalf("numBPS=%d passes=%d, want 1/1", blk.NumBPS, len(blk.Passes))
	}
	for i := range coef {
		if got[i] != coef[i] {
			t.Fatalf("coef %d decoded %d, want %d", i, got[i], coef[i])
		}
	}
}

// TestHTDeterminism: the HT coder is a pure function of its input.
func TestHTDeterminism(t *testing.T) {
	coef := randBlock(64, 64, 5, 300)
	a := Encode(coef, 64, 64, 64, dwt.LH, ModeHT, 1.0)
	for i := 0; i < 10; i++ {
		b := Encode(coef, 64, 64, 64, dwt.LH, ModeHT, 1.0)
		if !bytes.Equal(a.Data, b.Data) {
			t.Fatal("HT encode output not deterministic")
		}
	}
}

// TestHTAllZeroBlock mirrors the MQ contract for empty blocks.
func TestHTAllZeroBlock(t *testing.T) {
	coef := make([]int32, 16*16)
	blk := Encode(coef, 16, 16, 16, dwt.LL, ModeHT, 1.0)
	if blk.NumBPS != 0 || len(blk.Passes) != 0 || len(blk.Data) != 0 {
		t.Fatalf("all-zero block: numBPS=%d passes=%d data=%d", blk.NumBPS, len(blk.Passes), len(blk.Data))
	}
}

// TestHTStuffingInStreams: blocks whose MagSgn stream is dense with
// 0xFF bytes (all-ones magnitudes) still round-trip — the stuffing
// path, not just the common case.
func TestHTStuffingInStreams(t *testing.T) {
	coef := make([]int32, 32*32)
	for i := range coef {
		coef[i] = 0x7FFF // v-1 = 0x7FFE over 15 bits → long FF runs
		if i%2 == 1 {
			coef[i] = -coef[i]
		}
	}
	_, got := roundTripHT(t, coef, 32, 32, dwt.LL, ModeHT, 0)
	for i := range coef {
		if got[i] != coef[i] {
			t.Fatalf("coef %d decoded %d, want %d", i, got[i], coef[i])
		}
	}
}

// TestHTDecodeCorrupt: structurally damaged segments must error (or
// decode to garbage) without panicking.
func TestHTDecodeCorrupt(t *testing.T) {
	coef := randBlock(32, 32, 9, 200)
	blk := Encode(coef, 32, 32, 32, dwt.HL, ModeHT, 1.0)
	segLens := []int{len(blk.Data)}
	out := make([]int32, 32*32)

	// Truncations at every prefix length.
	for n := 0; n <= len(blk.Data); n++ {
		Decode(out, 32, 32, 32, dwt.HL, ModeHT, blk.NumBPS, 1, blk.Data[:n], []int{n})
	}
	// Single-byte corruption sweep.
	for i := 0; i < len(blk.Data); i++ {
		tmp := append([]byte(nil), blk.Data...)
		tmp[i] ^= 0xFF
		Decode(out, 32, 32, 32, dwt.HL, ModeHT, blk.NumBPS, 1, tmp, segLens)
	}
	// Hostile trailers: lengths exceeding the body, bad plane.
	bad := append([]byte(nil), blk.Data...)
	for i := 0; i < htTrailerLen; i++ {
		bad[len(bad)-1-i] = 0xFF
	}
	if err := Decode(out, 32, 32, 32, dwt.HL, ModeHT, blk.NumBPS, 1, bad, segLens); err == nil {
		t.Fatal("hostile trailer accepted")
	}
	// Declared pass counts beyond the HT maximum.
	if err := Decode(out, 32, 32, 32, dwt.HL, ModeHT, blk.NumBPS, 4, blk.Data, []int{1, 1, 1, 1}); err == nil {
		t.Fatal("4-pass HT block accepted")
	}
}

// TestHTPropRoundTrip is the property-based sweep across geometry,
// orientation, and both HT modes.
func TestHTPropRoundTrip(t *testing.T) {
	f := func(w8, h8 uint8, seed uint32, o8, m8 uint8) bool {
		w, h := int(w8)%40+1, int(h8)%40+1
		orient := dwt.Orient(o8 % 4)
		mode := ModeHT
		if m8%2 == 1 {
			mode = ModeHTRefine
		}
		coef := sparseBlock(w, h, seed)
		blk := Encode(coef, w, h, w, orient, mode, 1.0)
		segLens := make([]int, len(blk.Passes))
		for i, p := range blk.Passes {
			segLens[i] = p.SegLen
		}
		got := make([]int32, w*h)
		if err := Decode(got, w, h, w, orient, mode, blk.NumBPS, len(blk.Passes), blk.Data, segLens); err != nil {
			return false
		}
		for i := range coef {
			d := got[i] - coef[i]
			if d < 0 {
				d = -d
			}
			if mode == ModeHT && d != 0 {
				return false
			}
			if d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// FuzzHTRoundTrip mirrors FuzzT1RoundTrip for the HT modes.
func FuzzHTRoundTrip(f *testing.F) {
	f.Add(uint8(16), uint8(16), uint8(0), uint8(0), []byte{1, 2, 3, 4})
	f.Add(uint8(7), uint8(33), uint8(2), uint8(1), []byte{0xFF, 0xFF, 0x80, 0})
	f.Fuzz(func(t *testing.T, w8, h8, o8, m8 uint8, raw []byte) {
		w, h := int(w8)%64+1, int(h8)%64+1
		orient := dwt.Orient(o8 % 4)
		mode := ModeHT
		if m8%2 == 1 {
			mode = ModeHTRefine
		}
		coef := make([]int32, w*h)
		for i := range coef {
			if len(raw) == 0 {
				break
			}
			b := raw[i%len(raw)]
			v := int32(b) << (uint(i) % 8)
			if b&1 == 1 {
				v = -v
			}
			coef[i] = v
		}
		blk := Encode(coef, w, h, w, orient, mode, 1.0)
		segLens := make([]int, len(blk.Passes))
		for i, p := range blk.Passes {
			segLens[i] = p.SegLen
		}
		got := make([]int32, w*h)
		if err := Decode(got, w, h, w, orient, mode, blk.NumBPS, len(blk.Passes), blk.Data, segLens); err != nil {
			t.Fatalf("decode of freshly encoded block failed: %v", err)
		}
		for i := range coef {
			d := got[i] - coef[i]
			if d < 0 {
				d = -d
			}
			if mode == ModeHT && d != 0 {
				t.Fatalf("lossless HT mismatch at %d: %d != %d", i, got[i], coef[i])
			}
			if d > 1 {
				t.Fatalf("refine HT error %d at %d", d, i)
			}
		}
	})
}
