package t1

import (
	"fmt"

	"j2kcell/internal/dwt"
	"j2kcell/internal/obs"
)

// decodeHT reconstructs a block coded by encodeHT. Segment boundaries
// come from segLens (HT blocks always travel with per-pass segment
// lengths, like TERMALL MQ blocks); the cleanup segment carries its
// own MEL/VLC stream lengths and cleanup plane in the trailer, so the
// decode is self-describing for any truncated pass prefix (cleanup
// only, cleanup+SigProp, or all three). Structural damage — stream
// lengths exceeding the segment, significance bits addressing samples
// outside the block, implausible magnitude exponents, MEL/VLC
// disagreement — returns an error; bit-level damage degrades into
// wrong coefficients, never a panic.
func decodeHT(rec *obs.Recorder, coef []int32, w, h, stride int, orient dwt.Orient, numBPS, numPasses int, data []byte, segLens []int) error {
	for y := 0; y < h; y++ {
		clear(coef[y*stride : y*stride+w])
	}
	if numBPS == 0 || numPasses == 0 {
		return nil
	}
	if numPasses > 3 {
		return fmt.Errorf("t1: HT block declares %d passes, max 3", numPasses)
	}
	if len(segLens) < numPasses {
		return fmt.Errorf("t1: %d passes but only %d segment lengths", numPasses, len(segLens))
	}
	var segs [3][]byte
	off := 0
	for i := 0; i < numPasses; i++ {
		n := segLens[i]
		if n < 0 {
			n = 0
		}
		if off+n > len(data) {
			n = len(data) - off
		}
		segs[i] = data[off : off+n]
		off += n
	}

	cup := segs[0]
	if len(cup) < htTrailerLen {
		return fmt.Errorf("t1: HT cleanup segment too short (%d bytes)", len(cup))
	}
	tr := cup[len(cup)-htTrailerLen:]
	lenMEL := int(tr[0]) | int(tr[1])<<8 | int(tr[2])<<16
	lenVLC := int(tr[3]) | int(tr[4])<<8 | int(tr[5])<<16
	pCup := int(tr[6])
	if pCup > 1 {
		return fmt.Errorf("t1: HT cleanup plane %d out of range", pCup)
	}
	body := len(cup) - htTrailerLen
	if lenMEL+lenVLC > body {
		return fmt.Errorf("t1: HT stream lengths %d+%d exceed cleanup body %d", lenMEL, lenVLC, body)
	}
	var mel melDecoder
	var ms, vlc htReader
	ms.init(cup[:body-lenMEL-lenVLC])
	mel.init(cup[body-lenMEL-lenVLC : body-lenVLC])
	vlc.init(cup[body-lenVLC : body])

	c := newCoderObs(w, h, orient, rec)
	defer c.release()
	lpp := getInt8(w * h)
	defer putInt8(lpp)
	lp := *lpp
	rhoRow := getInt8((w + 1) / 2) // significance patterns of the quad row above
	defer putInt8(rhoRow)
	prevRho := *rhoRow

	// Cleanup: mirror the encoder's quad scan. The encoder's batched
	// all-quiet fast path emits byte-identical MEL events to the
	// per-quad path, so one unified loop decodes both.
	nqx := (w + 1) / 2
	nqy := (h + 1) / 2
	up := uint(pCup)
	maxU := numBPS - pCup
	if maxU > 31-pCup {
		maxU = 31 - pCup
	}
	mag, flags, fw := c.mag, c.flags, c.fw
	for qy := 0; qy < nqy; qy++ {
		y0 := qy * 2
		tall := y0+1 < h
		left := int8(0)
		for qx := 0; qx < nqx; qx++ {
			x0 := qx * 2
			var rho uint32
			if left|prevRho[qx] == 0 { // AZC quad
				if mel.decode() == 0 {
					prevRho[qx] = 0
					left = 0
					continue
				}
				rho = vlc.get(4)
				if rho == 0 {
					return fmt.Errorf("t1: HT MEL/VLC disagree on quad significance")
				}
			} else {
				rho = vlc.get(4)
			}
			if rho != 0 {
				if (!tall && rho&0xA != 0) || (x0+1 >= w && rho&0xC != 0) {
					return fmt.Errorf("t1: HT significance pattern addresses samples outside the block")
				}
				u := getUExp(&vlc) + 1 // U_q
				if u > maxU {
					return fmt.Errorf("t1: HT magnitude exponent %d exceeds %d coded planes", u, maxU)
				}
				ub := uint(u)
				mi := y0*w + x0
				fi := (y0+1)*fw + x0 + 1
				for i := 0; i < 4; i++ {
					if rho&(1<<i) == 0 {
						continue
					}
					fj, mj := fi, mi
					if i&1 != 0 {
						fj += fw
						mj += w
					}
					if i&2 != 0 {
						fj++
						mj++
					}
					neg := ms.get(1) == 1
					v := ms.get(ub) + 1
					mag[mj] = v << up
					lp[mj] = int8(pCup)
					if neg {
						flags[fj] |= fwNeg
					}
					c.setSig(fj, neg)
				}
			}
			prevRho[qx] = int8(rho)
			left = int8(rho)
		}
	}
	// Trailer consistency: an intact cleanup segment's declared stream
	// lengths cover every bit the quad scan just consumed, so any
	// overrun means the trailer lies about the segment layout.
	if ms.overrun || mel.r.overrun || vlc.overrun {
		return fmt.Errorf("t1: HT cleanup streams shorter than the coding process requires")
	}

	if numPasses >= 2 {
		if pCup != 1 {
			return fmt.Errorf("t1: HT refinement passes after a plane-0 cleanup")
		}
		// SigProp: raw significance bit for every still-insignificant
		// sample with a significant neighbor, membership evolving in the
		// same raster order as the encoder.
		var r htReader
		r.init(segs[1])
		for y := 0; y < h; y++ {
			fi := (y+1)*fw + 1
			mi := y * w
			for x := 0; x < w; x++ {
				fv := flags[fi]
				if fv&fwSig == 0 && fv&fwSigNbr != 0 {
					if r.get(1) == 1 {
						neg := r.get(1) == 1
						if neg {
							flags[fi] |= fwNeg
						}
						c.setSig(fi, neg)
						mag[mi] = 1
						lp[mi] = 0
					}
				}
				fi++
				mi++
			}
		}
		if r.overrun {
			return fmt.Errorf("t1: HT SigProp segment shorter than its membership requires")
		}
	}
	if numPasses >= 3 {
		// MagRef: raw LSB for every cleanup-significant sample (SigProp
		// arrivals have magnitude 1, excluded by mag>>1 on both sides).
		var r htReader
		r.init(segs[2])
		for i := 0; i < w*h; i++ {
			if mag[i]>>1 != 0 {
				mag[i] |= r.get(1)
				lp[i] = 0
			}
		}
		if r.overrun {
			return fmt.Errorf("t1: HT MagRef segment shorter than its membership requires")
		}
	}

	// Midpoint reconstruction at each sample's reached precision — the
	// same rule as the MQ decoder.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			m := mag[i]
			if m == 0 {
				continue
			}
			if l := lp[i]; l > 0 {
				m += 1 << uint(l-1)
			}
			v := int32(m)
			if flags[c.fidx(x, y)]&fwNeg != 0 {
				v = -v
			}
			coef[y*stride+x] = v
		}
	}
	return nil
}
