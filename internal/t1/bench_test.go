package t1

import (
	"fmt"
	"testing"

	"j2kcell/internal/dwt"
)

// benchContent generates the two canonical code-block statistics: dense
// (every coefficient non-zero, all planes busy — the Tier-1 worst case)
// and sparse (wavelet detail statistics: mostly quiet stripe columns,
// the case the skip masks target).
func benchContent(kind string, w, h int, seed uint32) []int32 {
	if kind == "dense" {
		return randBlock(w, h, seed, 400)
	}
	return sparseBlock(w, h, seed)
}

// Benchmark_T1EncodeBlock prices the Tier-1 block coder itself across
// orientation (context table), content statistics, and block geometry.
// PR 2's acceptance floor: dense 64×64 must be ≥ 1.5× the pre-PR coder.
func Benchmark_T1EncodeBlock(b *testing.B) {
	for _, o := range []dwt.Orient{dwt.LL, dwt.HL, dwt.LH, dwt.HH} {
		for _, kind := range []string{"sparse", "dense"} {
			for _, n := range []int{32, 64} {
				coef := benchContent(kind, n, n, uint32(n)+uint32(o)*17+3)
				b.Run(fmt.Sprintf("%v/%s/%dx%d", o, kind, n, n), func(b *testing.B) {
					b.SetBytes(int64(4 * n * n))
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						Encode(coef, n, n, n, o, ModeSingle, 1.0)
					}
				})
			}
		}
	}
}

// Benchmark_T1EncodeBlockTermAll prices the rate-control coding mode
// (one MQ termination per pass), the mode PCRD truncates.
func Benchmark_T1EncodeBlockTermAll(b *testing.B) {
	coef := benchContent("dense", 64, 64, 9)
	b.SetBytes(int64(4 * 64 * 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(coef, 64, 64, 64, dwt.HL, ModeTermAll, 1.0)
	}
}

// Benchmark_T1DecodeBlock prices the mirrored decoder path.
func Benchmark_T1DecodeBlock(b *testing.B) {
	coef := benchContent("dense", 64, 64, 11)
	blk := Encode(coef, 64, 64, 64, dwt.HL, ModeSingle, 1.0)
	out := make([]int32, 64*64)
	b.SetBytes(int64(4 * 64 * 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Decode(out, 64, 64, 64, dwt.HL, ModeSingle, blk.NumBPS, len(blk.Passes), blk.Data, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Benchmark_HTEncodeBlock prices the HT cleanup coder on the exact
// blocks Benchmark_T1EncodeBlock uses (same seeds, same grid), so the
// two tables divide directly. PR 7's acceptance floor: HT must be ≥ 3×
// the MQ coder on the dense blocks.
func Benchmark_HTEncodeBlock(b *testing.B) {
	for _, o := range []dwt.Orient{dwt.LL, dwt.HL, dwt.LH, dwt.HH} {
		for _, kind := range []string{"sparse", "dense"} {
			for _, n := range []int{32, 64} {
				coef := benchContent(kind, n, n, uint32(n)+uint32(o)*17+3)
				b.Run(fmt.Sprintf("%v/%s/%dx%d", o, kind, n, n), func(b *testing.B) {
					b.SetBytes(int64(4 * n * n))
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						Encode(coef, n, n, n, o, ModeHT, 1.0)
					}
				})
			}
		}
	}
}

// Benchmark_HTEncodeBlockRefine prices the three-pass HT variant
// (cleanup at plane 1 plus raw SigProp/MagRef), the mode the rate
// controller truncates; mirrors Benchmark_T1EncodeBlockTermAll.
func Benchmark_HTEncodeBlockRefine(b *testing.B) {
	coef := benchContent("dense", 64, 64, 9)
	b.SetBytes(int64(4 * 64 * 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(coef, 64, 64, 64, dwt.HL, ModeHTRefine, 1.0)
	}
}

// Benchmark_HTDecodeBlock prices the HT decoder on the same dense block
// Benchmark_T1DecodeBlock decodes.
func Benchmark_HTDecodeBlock(b *testing.B) {
	coef := benchContent("dense", 64, 64, 11)
	blk := Encode(coef, 64, 64, 64, dwt.HL, ModeHT, 1.0)
	segLens := make([]int, len(blk.Passes))
	for i, p := range blk.Passes {
		segLens[i] = p.SegLen
	}
	out := make([]int32, 64*64)
	b.SetBytes(int64(4 * 64 * 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Decode(out, 64, 64, 64, dwt.HL, ModeHT, blk.NumBPS, len(blk.Passes), blk.Data, segLens); err != nil {
			b.Fatal(err)
		}
	}
}
