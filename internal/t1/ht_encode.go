package t1

import (
	"j2kcell/internal/dwt"
	"j2kcell/internal/obs"
	"j2kcell/internal/simd"
)

// htTrailerLen is the cleanup segment's fixed suffix: the MEL and VLC
// stream lengths (3 bytes each, little-endian) and the cleanup plane.
// The published layout signals the suffix split with Scup and stores
// the VLC stream reversed; the explicit-length trailer is this
// implementation's documented deviation (DESIGN.md) — it keeps the
// segment self-describing through the same []byte + segment-length
// interface the MQ coder uses.
const htTrailerLen = 7

// htEncoder holds the pooled scratch of one HT block encode: the three
// cleanup byte streams, the MEL state, the packer reused by the two
// raw-bit refinement passes, and the quad significance history.
type htEncoder struct {
	magsgn  htWriter
	vlc     htWriter
	mel     melEncoder
	refine  htWriter // SigProp / MagRef segments, one at a time
	prevRho []uint8  // significance pattern of the quad row above
	rowOR   []uint32 // OR of the magnitudes of each 2-row quad stripe
}

// encodeHT runs the HTJ2K (Part 15) FBCOT coder on one block. In
// ModeHT everything is coded by a single cleanup pass at plane 0 — an
// exact representation of the quantized coefficients, so a reversible
// upstream chain stays lossless. In ModeHTRefine (rate-constrained
// encodes) the cleanup pass runs at plane 1 and HT SigProp + MagRef
// raw-bit passes finish plane 0, giving PCRD three truncation points
// per block. Shares the pooled coder scratch, the simd load kernels,
// and the Block/Pass contract with the MQ encoder.
func encodeHT(rec *obs.Recorder, coef []int32, w, h, stride int, orient dwt.Orient, mode Mode, gain float64) *Block {
	// invariant: block geometry comes from PlanBlocks, which never emits
	// empty blocks; encode-side only (decode sizes are clamped to the band).
	if w <= 0 || h <= 0 {
		panic("t1: empty code block")
	}
	c := newCoderObs(w, h, orient, rec)
	defer c.release()
	e := getHTEncoder()
	defer putHTEncoder(e)

	nqy := (h + 1) / 2
	if cap(e.rowOR) < nqy {
		e.rowOR = make([]uint32, nqy)
	} else {
		e.rowOR = e.rowOR[:nqy]
		clear(e.rowOR)
	}

	// Same load traversal as the MQ encoder: magnitudes plus a running
	// OR from the simd row kernels (bitLen(OR) == bitLen(max)), sign
	// flags, and the per-quad-row OR masks that drive the MEL fast path.
	gain2 := gain * gain
	orAll := uint32(0)
	dist0 := 0.0
	for y := 0; y < h; y++ {
		coefRow := coef[y*stride : y*stride+w]
		magRow := c.mag[y*w : y*w+w]
		ror := simd.AbsOrRow(magRow, coefRow)
		orAll |= ror
		e.rowOR[y>>1] |= ror
		simd.SignOrRow(c.flags[c.fidx(0, y):c.fidx(0, y)+w], coefRow, fwNeg)
		for _, m := range magRow {
			dist0 += float64(m) * float64(m) * gain2
		}
	}
	numBPS := bitLen(orAll)
	blk := &Block{W: w, H: h, Orient: orient, NumBPS: numBPS, Mode: mode, Dist0: dist0}
	if numBPS == 0 {
		return blk
	}

	refine := mode == ModeHTRefine
	pCup := 0
	if refine && numBPS >= 2 {
		pCup = 1
	}
	nSig, dd := e.cleanup(c, w, h, pCup, gain2, refine)
	if !refine {
		dd = dist0 // cleanup at plane 0 reconstructs everything exactly
	}

	e.magsgn.flush()
	e.mel.flush()
	e.vlc.flush()
	lenMEL, lenVLC := len(e.mel.w.buf), len(e.vlc.buf)
	out := make([]byte, 0, len(e.magsgn.buf)+lenMEL+lenVLC+htTrailerLen)
	out = append(out, e.magsgn.buf...)
	out = append(out, e.mel.w.buf...)
	out = append(out, e.vlc.buf...)
	out = append(out,
		byte(lenMEL), byte(lenMEL>>8), byte(lenMEL>>16),
		byte(lenVLC), byte(lenVLC>>8), byte(lenVLC>>16),
		byte(pCup))
	blk.Passes = append(blk.Passes, Pass{
		Type: PassCln, Plane: pCup, CumLen: len(out), SegLen: len(out),
		DistDelta: dd, Scanned: w * h, Coded: nSig,
	})

	if pCup == 1 {
		// HT refinement: raw-bit SigProp then MagRef at plane 0, each its
		// own byte-aligned segment (every HT pass boundary is an exact
		// truncation point, like TERMALL on the MQ side).
		e.refine.reset()
		dd, coded := e.sigProp(c, w, h, gain2)
		e.refine.flush()
		seg := len(e.refine.buf)
		out = append(out, e.refine.buf...)
		blk.Passes = append(blk.Passes, Pass{
			Type: PassSig, Plane: 0, CumLen: len(out), SegLen: seg,
			DistDelta: dd, Scanned: w * h, Coded: coded,
		})
		e.refine.reset()
		dd, coded = e.magRef(c, w, h, gain2)
		e.refine.flush()
		seg = len(e.refine.buf)
		out = append(out, e.refine.buf...)
		blk.Passes = append(blk.Passes, Pass{
			Type: PassRef, Plane: 0, CumLen: len(out), SegLen: seg,
			DistDelta: dd, Scanned: w * h, Coded: coded,
		})
	}
	blk.Data = out
	reportHTBlock(rec, blk)
	return blk
}

// reportHTBlock publishes one HT-coded block's workload counters to the
// given recorder (nil-safe).
func reportHTBlock(rec *obs.Recorder, blk *Block) {
	if rec != nil {
		rec.Add(obs.CtrT1Blocks, 1)
		rec.Add(obs.CtrHTBlocks, 1)
		rec.Add(obs.CtrHTBytes, int64(len(blk.Data)))
		rec.Add(obs.CtrT1Scanned, int64(blk.TotalScanned()))
		rec.Add(obs.CtrT1Coded, int64(blk.TotalCoded()))
	}
}

// cleanup codes the FBCOT cleanup pass at plane pCup: a 2×2 quad scan
// over 2-row stripes. A quad with an all-quiet causal neighborhood
// (left and above quads both empty — AZC) has its emptiness coded by
// the MEL run-length coder; every other quad (and every significant
// AZC quad) emits its 4-bit significance pattern into the VLC stream,
// followed by the quad's magnitude-exponent bound U_q as a prefix
// code. Each significant sample then contributes sign + (v−1) in U_q
// bits to the MagSgn stream. When track is set (ModeHTRefine) the
// pass also propagates significance into the flag words for SigProp
// and accumulates its distortion reduction.
func (e *htEncoder) cleanup(c *coder, w, h, pCup int, gain2 float64, track bool) (nSig int, dd float64) {
	e.magsgn.reset()
	e.vlc.reset()
	e.mel.reset()
	nqx := (w + 1) / 2
	nqy := (h + 1) / 2
	if cap(e.prevRho) < nqx {
		e.prevRho = make([]uint8, nqx)
	} else {
		e.prevRho = e.prevRho[:nqx]
		clear(e.prevRho)
	}
	up := uint(pCup)
	mag, flags, fw := c.mag, c.flags, c.fw
	prevZero := true // quad row above entirely empty
	for qy := 0; qy < nqy; qy++ {
		y0 := qy * 2
		if prevZero && e.rowOR[qy]>>up == 0 {
			// Whole quad row empty above an empty row: every quad is AZC
			// with event 0 — byte-identical to the per-quad path below,
			// but one batched MEL call instead of nqx quad visits.
			e.mel.encodeZeros(nqx)
			continue
		}
		tall := y0+1 < h
		left := uint8(0)
		rowZero := true
		for qx := 0; qx < nqx; qx++ {
			x0 := qx * 2
			mi := y0*w + x0
			// Sample order within the quad is column-major:
			// bit0 (x0,y0), bit1 (x0,y0+1), bit2 (x0+1,y0), bit3 (x0+1,y0+1).
			var v [4]uint32
			rho := uint8(0)
			v[0] = mag[mi] >> up
			if v[0] != 0 {
				rho |= 1
			}
			if tall {
				v[1] = mag[mi+w] >> up
				if v[1] != 0 {
					rho |= 2
				}
			}
			if x0+1 < w {
				v[2] = mag[mi+1] >> up
				if v[2] != 0 {
					rho |= 4
				}
				if tall {
					v[3] = mag[mi+w+1] >> up
					if v[3] != 0 {
						rho |= 8
					}
				}
			}
			if left|e.prevRho[qx] == 0 { // AZC quad
				if rho == 0 {
					e.mel.encode(0)
					e.prevRho[qx] = 0
					left = 0
					continue
				}
				e.mel.encode(1)
			}
			e.vlc.put(uint32(rho), 4)
			if rho != 0 {
				rowZero = false
				umax := 0
				for _, vv := range v {
					if bl := bitLen(vv); bl > umax {
						umax = bl
					}
				}
				putUExp(&e.vlc, umax-1)
				ub := uint(umax)
				fi := (y0+1)*fw + x0 + 1
				for i := 0; i < 4; i++ {
					if v[i] == 0 {
						continue
					}
					fj, mj := fi, mi
					if i&1 != 0 {
						fj += fw
						mj += w
					}
					if i&2 != 0 {
						fj++
						mj++
					}
					neg := flags[fj]&fwNeg != 0
					s := uint32(0)
					if neg {
						s = 1
					}
					e.magsgn.put(s, 1)
					e.magsgn.put(v[i]-1, ub)
					nSig++
					if track {
						// Midpoint reconstruction at pCup: exact for
						// pCup = 0; at pCup = 1 the residual error is 1
						// exactly when the dropped LSB is 0.
						m := mag[mj]
						errA := 0.0
						if pCup == 1 && m&1 == 0 {
							errA = 1
						}
						dd += (float64(m)*float64(m) - errA) * gain2
						c.setSig(fj, neg)
					}
				}
			}
			e.prevRho[qx] = rho
			left = rho
		}
		prevZero = rowZero
	}
	return nSig, dd
}

// sigProp is the HT significance propagation pass at plane 0: a raw
// bit (no arithmetic coding — T.814 codes these passes "raw") for
// every still-insignificant sample with at least one significant
// neighbor, plus a sign bit when it fires. Membership evolves during
// the scan exactly as on the decode side — both walk the same raster
// order over the same incrementally-updated flag words.
func (e *htEncoder) sigProp(c *coder, w, h int, gain2 float64) (dd float64, coded int) {
	f, mag, fw := c.flags, c.mag, c.fw
	wr := &e.refine
	for y := 0; y < h; y++ {
		fi := (y+1)*fw + 1
		mi := y * w
		for x := 0; x < w; x++ {
			fv := f[fi]
			if fv&fwSig == 0 && fv&fwSigNbr != 0 {
				// Insignificant after cleanup at plane 1 means mag <= 1,
				// so the plane-0 bit is the magnitude itself.
				bit := mag[mi]
				wr.put(bit, 1)
				coded++
				if bit != 0 {
					neg := fv&fwNeg != 0
					s := uint32(0)
					if neg {
						s = 1
					}
					wr.put(s, 1)
					coded++
					c.setSig(fi, neg)
					dd += gain2 // the sample (magnitude 1) becomes exact
				}
			}
			fi++
			mi++
		}
	}
	return dd, coded
}

// magRef is the HT magnitude refinement pass at plane 0: a raw LSB for
// every sample significant after cleanup (mag>>1 != 0 — SigProp
// arrivals have magnitude 1 and are excluded on both sides). After it,
// those samples are exact; before it, the plane-1 midpoint missed by 1
// exactly when the LSB is 0.
func (e *htEncoder) magRef(c *coder, w, h int, gain2 float64) (dd float64, coded int) {
	mag := c.mag
	wr := &e.refine
	for i := 0; i < w*h; i++ {
		m := mag[i]
		if m>>1 != 0 {
			wr.put(m&1, 1)
			coded++
			if m&1 == 0 {
				dd += gain2
			}
		}
	}
	return dd, coded
}
