package t1

import "j2kcell/internal/dwt"

// The pre-PR context modeling, kept verbatim as a reference oracle: a
// plain byte-flag array with no cached neighbor state, where every
// context is recomputed from eight scattered neighbor loads (the
// original Table D.1–D.4 implementation). The differential tests in
// luts_test.go drive this oracle and the flag-word coder through the
// same significance/refinement histories and assert every context
// decision matches.

const (
	oSig     uint8 = 1 << 0
	oVisit   uint8 = 1 << 1
	oRefined uint8 = 1 << 2
	oNeg     uint8 = 1 << 3
)

type oracleCoder struct {
	w, h   int
	orient dwt.Orient
	flags  []uint8 // (w+2) x (h+2), row-major with border
	fw     int
}

func newOracle(w, h int, orient dwt.Orient) *oracleCoder {
	return &oracleCoder{
		w: w, h: h, orient: orient,
		flags: make([]uint8, (w+2)*(h+2)),
		fw:    w + 2,
	}
}

func (c *oracleCoder) fidx(x, y int) int { return (y+1)*c.fw + (x + 1) }

// zcContext is the original zero-coding context computation (Table D.1).
func (c *oracleCoder) zcContext(fi int) int {
	f := c.flags
	h := int(f[fi-1]&oSig) + int(f[fi+1]&oSig)
	v := int(f[fi-c.fw]&oSig) + int(f[fi+c.fw]&oSig)
	d := int(f[fi-c.fw-1]&oSig) + int(f[fi-c.fw+1]&oSig) +
		int(f[fi+c.fw-1]&oSig) + int(f[fi+c.fw+1]&oSig)
	if c.orient == dwt.HL {
		h, v = v, h // HL band: swap the roles of H and V
	}
	if c.orient == dwt.HH {
		switch {
		case d >= 3:
			return 8
		case d == 2:
			if h+v >= 1 {
				return 7
			}
			return 6
		case d == 1:
			switch {
			case h+v >= 2:
				return 5
			case h+v == 1:
				return 4
			default:
				return 3
			}
		default:
			switch {
			case h+v >= 2:
				return 2
			case h+v == 1:
				return 1
			default:
				return 0
			}
		}
	}
	switch {
	case h == 2:
		return 8
	case h == 1:
		switch {
		case v >= 1:
			return 7
		case d >= 1:
			return 6
		default:
			return 5
		}
	default:
		switch {
		case v == 2:
			return 4
		case v == 1:
			return 3
		case d >= 2:
			return 2
		case d == 1:
			return 1
		default:
			return 0
		}
	}
}

// scContribution is the original clamped sign contribution of one
// neighbor.
func (c *oracleCoder) scContribution(fi int) int {
	f := c.flags[fi]
	if f&oSig == 0 {
		return 0
	}
	if f&oNeg != 0 {
		return -1
	}
	return 1
}

// scContext is the original sign-coding context computation (Table D.3).
func (c *oracleCoder) scContext(fi int) (ctx int, xor uint8) {
	h := c.scContribution(fi-1) + c.scContribution(fi+1)
	v := c.scContribution(fi-c.fw) + c.scContribution(fi+c.fw)
	clamp := func(x int) int {
		if x > 1 {
			return 1
		}
		if x < -1 {
			return -1
		}
		return x
	}
	h, v = clamp(h), clamp(v)
	switch {
	case h == 1:
		switch v {
		case 1:
			return ctxSC + 4, 0
		case 0:
			return ctxSC + 3, 0
		default:
			return ctxSC + 2, 0
		}
	case h == 0:
		switch v {
		case 1:
			return ctxSC + 1, 0
		case 0:
			return ctxSC, 0
		default:
			return ctxSC + 1, 1
		}
	default:
		switch v {
		case 1:
			return ctxSC + 2, 1
		case 0:
			return ctxSC + 3, 1
		default:
			return ctxSC + 4, 1
		}
	}
}

// mrContext is the original magnitude-refinement context (Table D.4).
func (c *oracleCoder) mrContext(fi int) int {
	f := c.flags
	if f[fi]&oRefined != 0 {
		return ctxMR + 2
	}
	any := f[fi-1] | f[fi+1] | f[fi-c.fw] | f[fi+c.fw] |
		f[fi-c.fw-1] | f[fi-c.fw+1] | f[fi+c.fw-1] | f[fi+c.fw+1]
	if any&oSig != 0 {
		return ctxMR + 1
	}
	return ctxMR
}
