package t1

import (
	"j2kcell/internal/dwt"
	"j2kcell/internal/mq"
)

// encoder drives the three coding passes over a block.
type encoder struct {
	*coder
	mq    mq.Encoder
	mode  Mode
	out   []byte  // concatenated segments
	gain2 float64 // squared synthesis gain for distortion weighting

	// Per-pass accumulators.
	scanned, coded int
	distDelta      float64
}

// Encode runs Tier-1 on a w×h code block of signed coefficients read
// from coef with the given row stride. orient selects the context
// tables, mode the termination style, and gain the subband synthesis
// L2 norm used to weight distortion. The input is not modified.
func Encode(coef []int32, w, h, stride int, orient dwt.Orient, mode Mode, gain float64) *Block {
	if w <= 0 || h <= 0 {
		panic("t1: empty code block")
	}
	c := newCoder(w, h, orient)
	defer c.release()
	maxMag := uint32(0)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := coef[y*stride+x]
			m := uint32(v)
			if v < 0 {
				m = uint32(-v)
				c.flags[c.fidx(x, y)] |= fNeg
			}
			c.mag[y*w+x] = m
			if m > maxMag {
				maxMag = m
			}
		}
	}
	numBPS := bitLen(maxMag)
	blk := &Block{W: w, H: h, Orient: orient, NumBPS: numBPS, Mode: mode}

	gain2 := gain * gain
	for _, m := range c.mag {
		blk.Dist0 += float64(m) * float64(m) * gain2
	}
	if numBPS == 0 {
		return blk
	}

	e := getEncoder()
	defer putEncoder(e)
	e.coder, e.mode, e.gain2, e.out = c, mode, gain2, nil
	e.mq.Reset()

	for p := numBPS - 1; p >= 0; p-- {
		if p != numBPS-1 {
			e.runPass(blk, PassSig, p)
			e.runPass(blk, PassRef, p)
		}
		e.runPass(blk, PassCln, p)
		c.clearVisit()
	}
	if mode == ModeSingle {
		e.out = append(e.out, e.mq.Flush()...)
		for i := range blk.Passes {
			blk.Passes[i].CumLen = len(e.out) // only the whole thing is decodable
		}
		blk.Passes[len(blk.Passes)-1].SegLen = len(e.out)
	}
	blk.Data = e.out
	return blk
}

// runPass executes one coding pass and records its statistics.
func (e *encoder) runPass(blk *Block, t PassType, plane int) {
	e.scanned, e.coded, e.distDelta = 0, 0, 0
	switch t {
	case PassSig:
		e.sigPass(plane)
	case PassRef:
		e.refPass(plane)
	case PassCln:
		e.clnPass(plane)
	}
	ps := Pass{Type: t, Plane: plane, DistDelta: e.distDelta, Scanned: e.scanned, Coded: e.coded}
	if e.mode == ModeTermAll {
		seg := e.mq.Flush()
		e.out = append(e.out, seg...)
		ps.SegLen = len(seg)
		ps.CumLen = len(e.out)
		e.mq.Reset()
		// TERMALL restarts only the MQ codeword, not the contexts.
	} else {
		ps.CumLen = e.mq.NumBytes() // provisional; fixed after final flush
	}
	blk.Passes = append(blk.Passes, ps)
}

func (e *encoder) encodeBit(d int, ctx int) {
	e.mq.Encode(d, &e.cx[ctx])
	e.coded++
}

// sigDistDelta is the weighted distortion reduction when a coefficient
// with true magnitude m becomes significant at plane p (reconstruction
// moves from 0 to the midpoint of its quantization cell).
func (e *encoder) sigDistDelta(m uint32, p int) float64 {
	rec := float64((m>>uint(p))<<uint(p)) + recHalf(p)
	before := float64(m)
	after := float64(m) - rec
	return (before*before - after*after) * e.gain2
}

// refDistDelta is the reduction from refining at plane p: precision
// improves from plane p+1 to plane p.
func (e *encoder) refDistDelta(m uint32, p int) float64 {
	recB := float64((m>>uint(p+1))<<uint(p+1)) + recHalf(p+1)
	recA := float64((m>>uint(p))<<uint(p)) + recHalf(p)
	db := float64(m) - recB
	da := float64(m) - recA
	return (db*db - da*da) * e.gain2
}

// recHalf is the midpoint offset for plane p.
func recHalf(p int) float64 {
	if p == 0 {
		return 0.5
	}
	return float64(uint32(1) << uint(p-1))
}

// codeSignificance codes the sign of a coefficient that just became
// significant and updates its flags.
func (e *encoder) codeSignificance(x, y, fi int) {
	ctx, xor := e.scContext(fi)
	sign := 0
	if e.flags[fi]&fNeg != 0 {
		sign = 1
	}
	e.encodeBit(sign^int(xor), ctx)
	e.flags[fi] |= fSig
}

// sigPass is the significance propagation pass: insignificant
// coefficients with a preferred (non-zero-context) neighborhood.
func (e *encoder) sigPass(p int) {
	for y0 := 0; y0 < e.h; y0 += 4 {
		for x := 0; x < e.w; x++ {
			ymax := y0 + 4
			if ymax > e.h {
				ymax = e.h
			}
			for y := y0; y < ymax; y++ {
				fi := e.fidx(x, y)
				e.scanned++
				if e.flags[fi]&fSig != 0 {
					continue
				}
				zc := e.zcContext(fi)
				if zc == 0 {
					continue // not in the preferred neighborhood
				}
				bit := int((e.mag[y*e.w+x] >> uint(p)) & 1)
				e.encodeBit(bit, ctxZC+zc)
				if bit == 1 {
					e.codeSignificance(x, y, fi)
					e.distDelta += e.sigDistDelta(e.mag[y*e.w+x], p)
				}
				e.flags[fi] |= fVisit
			}
		}
	}
}

// refPass is the magnitude refinement pass: coefficients significant
// before this plane.
func (e *encoder) refPass(p int) {
	for y0 := 0; y0 < e.h; y0 += 4 {
		for x := 0; x < e.w; x++ {
			ymax := y0 + 4
			if ymax > e.h {
				ymax = e.h
			}
			for y := y0; y < ymax; y++ {
				fi := e.fidx(x, y)
				e.scanned++
				if e.flags[fi]&(fSig|fVisit) != fSig {
					continue
				}
				bit := int((e.mag[y*e.w+x] >> uint(p)) & 1)
				e.encodeBit(bit, e.mrContext(fi))
				e.distDelta += e.refDistDelta(e.mag[y*e.w+x], p)
				e.flags[fi] |= fRefined
			}
		}
	}
}

// clnPass is the cleanup pass with run-length coding of all-quiet
// stripe columns.
func (e *encoder) clnPass(p int) {
	for y0 := 0; y0 < e.h; y0 += 4 {
		for x := 0; x < e.w; x++ {
			fullStripe := y0+4 <= e.h
			runLen := -1
			if fullStripe {
				// Run-length mode applies when all four coefficients
				// are insignificant, unvisited, and context-free.
				ok := true
				for y := y0; y < y0+4 && ok; y++ {
					fi := e.fidx(x, y)
					if e.flags[fi]&(fSig|fVisit) != 0 || e.zcContext(fi) != 0 {
						ok = false
					}
				}
				if ok {
					runLen = 4
					for y := y0; y < y0+4; y++ {
						if (e.mag[y*e.w+x]>>uint(p))&1 == 1 {
							runLen = y - y0
							break
						}
					}
					e.scanned += 4
					if runLen == 4 {
						e.encodeBit(0, ctxRL)
						continue
					}
					e.encodeBit(1, ctxRL)
					e.encodeBit((runLen>>1)&1, ctxUNI)
					e.encodeBit(runLen&1, ctxUNI)
					// The coefficient at y0+runLen is significant; its
					// significance bit is implied, only the sign is coded.
					y := y0 + runLen
					fi := e.fidx(x, y)
					e.codeSignificance(x, y, fi)
					e.distDelta += e.sigDistDelta(e.mag[y*e.w+x], p)
				}
			}
			start := y0
			if runLen >= 0 {
				start = y0 + runLen + 1
			}
			ymax := y0 + 4
			if ymax > e.h {
				ymax = e.h
			}
			for y := start; y < ymax; y++ {
				fi := e.fidx(x, y)
				e.scanned++
				if e.flags[fi]&(fSig|fVisit) != 0 {
					continue
				}
				zc := e.zcContext(fi)
				bit := int((e.mag[y*e.w+x] >> uint(p)) & 1)
				e.encodeBit(bit, ctxZC+zc)
				if bit == 1 {
					e.codeSignificance(x, y, fi)
					e.distDelta += e.sigDistDelta(e.mag[y*e.w+x], p)
				}
			}
		}
	}
}
