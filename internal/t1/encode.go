package t1

import (
	"j2kcell/internal/dwt"
	"j2kcell/internal/mq"
	"j2kcell/internal/obs"
	"j2kcell/internal/simd"
)

// encoder drives the three coding passes over a block.
type encoder struct {
	*coder
	mq    mq.Encoder
	mode  Mode
	out   []byte  // concatenated segments
	gain2 float64 // squared synthesis gain for distortion weighting

	// stripeOR[s*w+x] is the OR of the magnitudes of the (up to) four
	// coefficients of stripe s, column x — computed once when the block
	// is loaded. (stripeOR>>p)&1 answers "does any coefficient of this
	// stripe column carry bit p" in one load, which lets the refinement
	// pass skip columns with nothing significant yet and the cleanup
	// pass emit the run-length bit for an all-quiet column without
	// scanning its coefficients. Planes above a stripe's local numBPS
	// are thereby never scanned at all.
	stripeOR []uint32

	// ops is the deferred MQ decision buffer for the current pass: each
	// entry packs ctx<<1 | d. The passes only decide what to code — the
	// decision sequence never depends on the arithmetic coder's interval
	// state — so runPass hands the whole pass to mq.EncodeBatch at once
	// and the MQ registers stay in locals for the entire pass.
	ops []uint8

	// Per-pass accumulators.
	scanned   int
	distDelta float64
}

// Encode runs Tier-1 on a w×h code block of signed coefficients read
// from coef with the given row stride. orient selects the context
// tables, mode the termination style, and gain the subband synthesis
// L2 norm used to weight distortion. The input is not modified.
// Workload counters go to the ambient recorder; pipelines carrying an
// operation recorder use EncodeObs.
func Encode(coef []int32, w, h, stride int, orient dwt.Orient, mode Mode, gain float64) *Block {
	return EncodeObs(obs.Active(), coef, w, h, stride, orient, mode, gain)
}

// EncodeObs is Encode recording against an explicit recorder
// (nil-safe): block/scan/decision counters and coder-pool traffic are
// attributed to rec instead of the process ambient recorder.
func EncodeObs(rec *obs.Recorder, coef []int32, w, h, stride int, orient dwt.Orient, mode Mode, gain float64) *Block {
	if mode.IsHT() {
		return encodeHT(rec, coef, w, h, stride, orient, mode, gain)
	}
	// invariant: block geometry comes from PlanBlocks, which never emits
	// empty blocks; encode-side only (decode sizes are clamped to the band).
	if w <= 0 || h <= 0 {
		panic("t1: empty code block")
	}
	c := newCoderObs(w, h, orient, rec)
	defer c.release()

	e := getEncoder()
	defer putEncoder(e)
	ns := (h + 3) / 4
	if n := ns * w; cap(e.stripeOR) < n {
		e.stripeOR = make([]uint32, n)
	} else {
		e.stripeOR = e.stripeOR[:n]
		clear(e.stripeOR)
	}
	// A cleanup pass codes at most 10 bits per 4-high stripe column
	// (RL + two UNI + sign, then up to two bits for each remaining
	// coefficient), so 3·w·h bounds any pass's op count.
	if n := 3 * w * h; cap(e.ops) < n {
		e.ops = make([]uint8, 0, n)
	}

	// The load traversal runs row-kernels from the simd layer: magnitudes
	// plus a running OR (bitLen(OR) == bitLen(max), which is all numBPS
	// needs), the stripe OR masks, and the sign flags. The distortion sum
	// stays a scalar pass in magnitude index order — float accumulation
	// order is part of the codestream contract via PCRD.
	gain2 := gain * gain
	orAll := uint32(0)
	dist0 := 0.0
	for y := 0; y < h; y++ {
		coefRow := coef[y*stride : y*stride+w]
		magRow := c.mag[y*w : y*w+w]
		orAll |= simd.AbsOrRow(magRow, coefRow)
		simd.OrRow(e.stripeOR[(y/4)*w:(y/4)*w+w], magRow)
		simd.SignOrRow(c.flags[c.fidx(0, y):c.fidx(0, y)+w], coefRow, fwNeg)
		for _, m := range magRow {
			dist0 += float64(m) * float64(m) * gain2
		}
	}
	numBPS := bitLen(orAll)
	blk := &Block{W: w, H: h, Orient: orient, NumBPS: numBPS, Mode: mode, Dist0: dist0}
	if numBPS == 0 {
		return blk
	}

	e.coder, e.mode, e.gain2, e.out = c, mode, gain2, nil
	e.mq.Reset()

	for p := numBPS - 1; p >= 0; p-- {
		if p != numBPS-1 {
			e.runPass(blk, PassSig, p)
			e.runPass(blk, PassRef, p)
		}
		e.runPass(blk, PassCln, p)
	}
	if mode.Base() == ModeSingle {
		e.out = append(e.out, e.mq.Flush()...)
		for i := range blk.Passes {
			blk.Passes[i].CumLen = len(e.out) // only the whole thing is decodable
		}
		blk.Passes[len(blk.Passes)-1].SegLen = len(e.out)
	}
	blk.Data = e.out
	reportBlock(rec, e, blk)
	return blk
}

// reportBlock publishes one coded block's workload counters — blocks,
// coefficients scanned, MQ decisions, renormalization chunks — to the
// given recorder. The renorm count is drained from the pooled MQ
// encoder unconditionally so it never leaks across blocks; everything
// else is skipped when observability is disabled.
func reportBlock(rec *obs.Recorder, e *encoder, blk *Block) {
	renorms := e.mq.TakeRenorms()
	if rec != nil {
		rec.Add(obs.CtrT1Blocks, 1)
		rec.Add(obs.CtrT1Scanned, int64(blk.TotalScanned()))
		rec.Add(obs.CtrT1Coded, int64(blk.TotalCoded()))
		rec.Add(obs.CtrMQRenorms, renorms)
	}
}

// runPass executes one coding pass — collecting its decisions, then
// arithmetic-coding them in one batch — and records its statistics.
func (e *encoder) runPass(blk *Block, t PassType, plane int) {
	e.scanned, e.distDelta = 0, 0
	e.ops = e.ops[:0]
	switch t {
	case PassSig:
		e.sigPass(plane)
	case PassRef:
		e.refPass(plane)
	case PassCln:
		e.clnPass(plane)
		if e.mode.SegSym() {
			// Segmentation symbol: 1010 in the UNIFORM context closes
			// every cleanup pass so the decoder can detect MQ
			// desynchronization caused by damage earlier in the segment.
			e.ops = append(e.ops, ctxUNI<<1|1, ctxUNI<<1|0, ctxUNI<<1|1, ctxUNI<<1|0)
		}
	}
	e.mq.EncodeBatch(e.ops, e.cx[:])
	ps := Pass{Type: t, Plane: plane, DistDelta: e.distDelta, Scanned: e.scanned, Coded: len(e.ops)}
	if e.mode.Base() == ModeTermAll {
		seg := e.mq.Flush()
		e.out = append(e.out, seg...)
		ps.SegLen = len(seg)
		ps.CumLen = len(e.out)
		e.mq.Reset()
		// TERMALL restarts only the MQ codeword, not the contexts.
	} else {
		ps.CumLen = e.mq.NumBytes() // provisional; fixed after final flush
	}
	blk.Passes = append(blk.Passes, ps)
}

// sigDistDelta is the weighted distortion reduction when a coefficient
// with true magnitude m becomes significant at plane p (reconstruction
// moves from 0 to the midpoint of its quantization cell). The error
// after, m - (trunc_p(m) + half_p), is an exact integer (or -0.5 at
// p = 0) well below 2^53, so the masked subtraction reproduces the
// reference float chain bit for bit.
func (e *encoder) sigDistDelta(m uint32, p int) float64 {
	var after float64
	if p == 0 {
		after = -0.5
	} else {
		mask := (uint32(1) << uint(p)) - 1
		after = float64(int32(m&mask) - int32(1)<<uint(p-1))
	}
	before := float64(m)
	return (before*before - after*after) * e.gain2
}

// codeSignificance codes the sign of a coefficient that just became
// significant, propagates its significance into the neighbor flag
// words, and returns the distortion reduction. The caller accounts for
// the sign bit in its coded counter.
func (e *encoder) codeSignificance(ops []uint8, fi, mi, p int) ([]uint8, float64) {
	fv := e.flags[fi]
	sc := lutSC[scIndex(fv)]
	sign := uint8(0)
	if fv&fwNeg != 0 {
		sign = 1
	}
	ops = append(ops, (uint8(ctxSC)+sc&7)<<1|(sign^sc>>3))
	e.setSig(fi, fv&fwNeg != 0)
	return ops, e.sigDistDelta(e.mag[mi], p)
}

// sigPass is the significance propagation pass: insignificant
// coefficients with a preferred (non-zero-context) neighborhood. A
// stripe column whose words carry no neighbor-significance bits has
// zero-coding context 0 everywhere and is skipped in one OR.
func (e *encoder) sigPass(p int) {
	w, h, fw := e.w, e.h, e.fw
	f, mag := e.flags, e.mag
	zc := &lutZC[e.zcTab]
	vp := visitStamp(p)
	up := uint(p)
	dd := e.distDelta
	ops := e.ops
	for y0 := 0; y0 < h; y0 += 4 {
		sh := h - y0
		if sh > 4 {
			sh = 4
		}
		fi0 := (y0+1)*fw + 1
		mi0 := y0 * w
		for x := 0; x < w; x++ {
			fi := fi0 + x
			or, and := f[fi], f[fi]
			for k := 1; k < sh; k++ {
				v := f[fi+k*fw]
				or |= v
				and &= v
			}
			// Nothing to code when no coefficient has a significant
			// neighbor (all contexts zero) or when every coefficient is
			// already significant (the pass only codes insignificant ones).
			if or&fwSigNbr == 0 || and&fwSig != 0 {
				continue
			}
			mi := mi0 + x
			for k := 0; k < sh; k++ {
				fv := f[fi]
				if fv&fwSig == 0 {
					if c := zc[fv>>4&0xFF]; c != 0 {
						bit := uint8(mag[mi] >> up & 1)
						ops = append(ops, (uint8(ctxZC)+c)<<1|bit)
						if bit == 1 {
							var d float64
							ops, d = e.codeSignificance(ops, fi, mi, p)
							dd += d
						}
						f[fi] = f[fi]&^fwVisitMask | vp
					}
				}
				fi += fw
				mi += w
			}
		}
	}
	// Each column contributes its stripe height whether skipped or not.
	e.scanned += w * h
	e.distDelta = dd
	e.ops = ops
}

// refPass is the magnitude refinement pass: coefficients significant
// before this plane — exactly those whose magnitude has a bit above
// plane p, so the stripe OR masks skip entire columns (and all planes
// above a stripe's local numBPS) without touching the flag words.
func (e *encoder) refPass(p int) {
	w, h, fw := e.w, e.h, e.fw
	f, mag := e.flags, e.mag
	gain2 := e.gain2
	up := uint(p)
	// The distortion deltas compare the reconstructions before and after
	// this bit: errB = m - (trunc_{p+1}(m) + 2^p) and errA = m -
	// (trunc_p(m) + half_p). Every term is an integer (or ±0.5 at p = 0)
	// far below 2^53, so the seed's float chain computed these errors
	// exactly; one masked subtraction yields the identical float64.
	mask1 := (uint32(1) << (up + 1)) - 1
	mask0 := (uint32(1) << up) - 1
	hb1 := int32(1) << up
	hb0 := int32(mask0+1) >> 1
	dd := e.distDelta
	ops := e.ops
	for s, y0 := 0, 0; y0 < h; s, y0 = s+1, y0+4 {
		sh := h - y0
		if sh > 4 {
			sh = 4
		}
		row := s * w
		fi0 := (y0+1)*fw + 1
		mi0 := y0 * w
		for x := 0; x < w; x++ {
			if e.stripeOR[row+x]>>(up+1) == 0 {
				continue // nothing significant before this plane
			}
			fi := fi0 + x
			mi := mi0 + x
			for k := 0; k < sh; k++ {
				m := mag[mi]
				if m>>(up+1) != 0 { // significant before this plane
					fv := f[fi]
					ops = append(ops, uint8(mrCtx(fv))<<1|uint8(m>>up&1))
					db := float64(int32(m&mask1) - hb1)
					var da float64
					if up == 0 {
						da = -0.5 // trunc_0(m) = m: the error is half a step
					} else {
						da = float64(int32(m&mask0) - hb0)
					}
					dd += (db*db - da*da) * gain2
					if fv&fwRefined == 0 {
						f[fi] = fv | fwRefined
					}
				}
				fi += fw
				mi += w
			}
		}
	}
	// Each column contributes its stripe height whether skipped or not.
	e.scanned += w * h
	e.distDelta = dd
	e.ops = ops
}

// clnPass is the cleanup pass with run-length coding of all-quiet
// stripe columns. A column whose words carry no significance, no
// neighbor significance (hence no visit this plane — a visited
// coefficient always has a significant neighbor) is run-length
// eligible in one OR, and its run-length bit comes straight off the
// stripe magnitude mask without scanning the coefficients.
func (e *encoder) clnPass(p int) {
	w, h, fw := e.w, e.h, e.fw
	f, mag := e.flags, e.mag
	zc := &lutZC[e.zcTab]
	vp := visitStamp(p)
	bitp := uint32(1) << uint(p)
	up := uint(p)
	dd := e.distDelta
	ops := e.ops
	scanned := 0
	for s, y0 := 0, 0; y0 < h; s, y0 = s+1, y0+4 {
		sh := h - y0
		if sh > 4 {
			sh = 4
		}
		row := s * w
		fi0 := (y0+1)*fw + 1
		mi0 := y0 * w
		for x := 0; x < w; x++ {
			fi := fi0 + x
			mi := mi0 + x
			start := 0
			if sh == 4 {
				f0, f1, f2, f3 := f[fi], f[fi+fw], f[fi+2*fw], f[fi+3*fw]
				if f0&f1&f2&f3&fwSig != 0 {
					// All four already significant: cleanup codes nothing.
					scanned += 4
					continue
				}
				or := f0 | f1 | f2 | f3
				if or&(fwSig|fwSigNbr) == 0 {
					// Run-length mode: all four insignificant, unvisited,
					// context-free.
					scanned += 4
					if e.stripeOR[row+x]&bitp == 0 {
						ops = append(ops, ctxRL<<1|0)
						continue
					}
					runLen := 0
					for mag[mi]&bitp == 0 {
						runLen++
						fi += fw
						mi += w
					}
					ops = append(ops, ctxRL<<1|1,
						ctxUNI<<1|uint8(runLen>>1&1), ctxUNI<<1|uint8(runLen&1))
					// The coefficient at y0+runLen is significant; its
					// significance bit is implied, only the sign is coded.
					var d float64
					ops, d = e.codeSignificance(ops, fi, mi, p)
					dd += d
					fi += fw
					mi += w
					start = runLen + 1
				}
			}
			scanned += sh - start
			for k := start; k < sh; k++ {
				fv := f[fi]
				if fv&fwSig == 0 && fv&fwVisitMask != vp {
					bit := uint8(mag[mi] >> up & 1)
					ops = append(ops, (uint8(ctxZC)+zc[fv>>4&0xFF])<<1|bit)
					if bit == 1 {
						var d float64
						ops, d = e.codeSignificance(ops, fi, mi, p)
						dd += d
					}
				}
				fi += fw
				mi += w
			}
		}
	}
	e.scanned += scanned
	e.distDelta = dd
	e.ops = ops
}
