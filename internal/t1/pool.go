package t1

import "sync"

// Scratch arenas for Tier-1. A 64×64 block costs ~34 KB of coder
// scratch (bordered flag words + magnitudes), ~1 KB of stripe OR masks,
// and the MQ encoder's segment buffer; a 3072×3072×3 encode codes ~7k
// blocks, so recycling this state through sync.Pool keeps steady-state
// Tier-1 allocations limited to the returned Block itself. Pools are
// safe for the concurrent block workers of the parallel encode/decode
// pipelines.

var (
	coderPool     sync.Pool // *coder
	encoderPool   sync.Pool // *encoder
	htEncoderPool sync.Pool // *htEncoder
	int8Pool      sync.Pool // *[]int8 (decoder lastPlane scratch)
)

// release returns the coder's scratch to the pool.
func (c *coder) release() { coderPool.Put(c) }

// getEncoder returns a pooled encoder shell, retaining the MQ segment
// buffer capacity across blocks. The caller fills coder/mode/gain2.
func getEncoder() *encoder {
	e, _ := encoderPool.Get().(*encoder)
	if e == nil {
		e = &encoder{}
	}
	return e
}

// putEncoder recycles an encoder after detaching everything the caller
// keeps (the output slice) or that the coder pool owns separately.
func putEncoder(e *encoder) {
	e.coder = nil
	e.out = nil
	encoderPool.Put(e)
}

// getHTEncoder returns a pooled HT encoder shell, retaining the three
// stream buffers and quad-history capacity across blocks.
func getHTEncoder() *htEncoder {
	e, _ := htEncoderPool.Get().(*htEncoder)
	if e == nil {
		e = &htEncoder{}
	}
	return e
}

func putHTEncoder(e *htEncoder) { htEncoderPool.Put(e) }

// getInt8 returns a zeroed length-n int8 scratch slice.
func getInt8(n int) *[]int8 {
	p, _ := int8Pool.Get().(*[]int8)
	if p == nil {
		s := make([]int8, n)
		return &s
	}
	if cap(*p) < n {
		*p = make([]int8, n)
		return p
	}
	*p = (*p)[:n]
	clear(*p)
	return p
}

func putInt8(p *[]int8) { int8Pool.Put(p) }
