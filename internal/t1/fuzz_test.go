package t1

import (
	"bytes"
	"testing"

	"j2kcell/internal/dwt"
)

// FuzzT1RoundTrip encodes a fuzzer-chosen code block and asserts the
// decoder reproduces it exactly from the emitted bitstream, in both
// segmentation modes — the end-to-end check that the flag-word fast
// paths fire at the same points in encoder and decoder.
func FuzzT1RoundTrip(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(0), uint8(0), []byte{1, 2, 3, 4})
	f.Add(uint8(13), uint8(7), uint8(1), uint8(1), []byte{0xFF, 0x00, 0x80, 0x7F, 9})
	f.Add(uint8(32), uint8(32), uint8(3), uint8(0), bytes.Repeat([]byte{0, 0, 0, 200}, 32))
	f.Add(uint8(1), uint8(9), uint8(2), uint8(1), []byte{255, 255})
	f.Fuzz(func(t *testing.T, w8, h8, o8, m8 uint8, raw []byte) {
		w := int(w8)%64 + 1
		h := int(h8)%64 + 1
		orient := dwt.Orient(o8 % 4)
		mode := Mode(m8 % 2)
		coef := make([]int32, w*h)
		for i := range coef {
			if len(raw) == 0 {
				break
			}
			b := raw[i%len(raw)]
			v := int32(b) << (uint(i) % 6) // magnitudes spanning several planes
			if b&1 == 1 {
				v = -v
			}
			coef[i] = v
		}
		blk := Encode(coef, w, h, w, orient, mode, 1.0)
		segLens := make([]int, len(blk.Passes))
		for i, p := range blk.Passes {
			segLens[i] = p.SegLen
		}
		got := make([]int32, w*h)
		if err := Decode(got, w, h, w, orient, mode, blk.NumBPS, len(blk.Passes), blk.Data, segLens); err != nil {
			t.Fatalf("%dx%d %v mode %d: %v", w, h, orient, mode, err)
		}
		for i := range coef {
			if got[i] != coef[i] {
				t.Fatalf("%dx%d %v mode %d: coef %d decoded %d, want %d", w, h, orient, mode, i, got[i], coef[i])
			}
		}
	})
}
