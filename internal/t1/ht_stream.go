package t1

// HTJ2K (ITU-T T.814 / JPEG2000 Part 15) byte-stream primitives for
// the FBCOT block coder: one bit packer/unpacker with the HT stuffing
// rule, shared by the MagSgn, MEL and VLC streams and the raw-bit
// refinement passes, plus the MEL adaptive run-length coder. The quad
// scan that drives them lives in ht_encode.go / ht_decode.go; the
// deviations from the published stream layout (forward VLC with
// explicit lengths instead of the reversed-suffix arrangement) are
// documented in DESIGN.md.

// htWriter packs bits LSB-first into bytes with the HT stuffing rule:
// a byte following an emitted 0xFF carries only 7 payload bits (bit 7
// forced clear), so no stream interior ever contains 0xFF followed by
// a byte >= 0x80 — the property the standard relies on to keep
// codeword segments free of inadvertent marker codes.
type htWriter struct {
	buf  []byte
	acc  uint64 // pending bits, LSB first
	n    uint   // number of pending bits (< 8 between calls)
	last byte   // last emitted byte, for the stuffing rule
}

func (w *htWriter) reset() {
	w.buf = w.buf[:0]
	w.acc, w.n, w.last = 0, 0, 0
}

// put appends the low nb bits of v (nb <= 32).
func (w *htWriter) put(v uint32, nb uint) {
	w.acc |= uint64(v) << w.n
	w.n += nb
	for {
		if w.last == 0xFF {
			if w.n < 7 {
				return
			}
			b := byte(w.acc) & 0x7F
			w.acc >>= 7
			w.n -= 7
			w.buf = append(w.buf, b)
			w.last = b
		} else {
			if w.n < 8 {
				return
			}
			b := byte(w.acc)
			w.acc >>= 8
			w.n -= 8
			w.buf = append(w.buf, b)
			w.last = b
		}
	}
}

// flush pads the final partial byte with zero bits. The decoder reads
// exactly the bits the coding process asks for, so the padding is
// never consumed.
func (w *htWriter) flush() {
	for w.n > 0 {
		var b byte
		if w.last == 0xFF {
			b = byte(w.acc) & 0x7F
			w.acc >>= 7
			if w.n > 7 {
				w.n -= 7
			} else {
				w.n = 0
			}
		} else {
			b = byte(w.acc)
			w.acc >>= 8
			if w.n > 8 {
				w.n -= 8
			} else {
				w.n = 0
			}
		}
		w.buf = append(w.buf, b)
		w.last = b
	}
}

// htReader mirrors htWriter bit for bit. Reads past the end of the
// stream return zero bits, so a truncated or corrupt pass degrades
// into zeros instead of panicking; the overrun flag records that it
// happened, because an intact stream never needs a byte beyond its
// declared length (htWriter.flush emits every pending payload bit).
// Structural damage is caught by the quad-level consistency checks in
// ht_decode.go, which also inspect overrun.
type htReader struct {
	data    []byte
	pos     int
	acc     uint64
	n       uint
	last    byte
	overrun bool // a needed byte lay past the end of the stream
}

func (r *htReader) init(data []byte) {
	r.data, r.pos = data, 0
	r.acc, r.n, r.last = 0, 0, 0
	r.overrun = false
}

// get reads nb bits (nb <= 32).
func (r *htReader) get(nb uint) uint32 {
	for r.n < nb {
		var b byte
		if r.pos < len(r.data) {
			b = r.data[r.pos]
			r.pos++
		} else {
			r.overrun = true
		}
		if r.last == 0xFF {
			r.acc |= uint64(b&0x7F) << r.n
			r.n += 7
		} else {
			r.acc |= uint64(b) << r.n
			r.n += 8
		}
		r.last = b
	}
	v := uint32(r.acc & (1<<nb - 1))
	r.acc >>= nb
	r.n -= nb
	return v
}

// melExponent is the MEL state machine's run-length exponent table
// (T.814 Table 4): state k codes complete zero-runs of length
// 2^melExponent[k] in a single bit.
var melExponent = [13]uint{0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4, 5}

// melEncoder is the adaptive run-length coder for AZC quad
// significance: event 0 = "this all-zero-context quad stays empty",
// event 1 = "it turns significant". Long empty runs in flat regions
// collapse to one bit per 2^5 quads at the top state.
type melEncoder struct {
	w   htWriter
	k   int    // state 0..12
	run uint32 // zeros accumulated toward the current threshold
}

func (m *melEncoder) reset() {
	m.w.reset()
	m.k, m.run = 0, 0
}

func (m *melEncoder) encode(bit int) {
	if bit == 0 {
		m.run++
		if m.run == 1<<melExponent[m.k] {
			m.w.put(1, 1)
			m.run = 0
			if m.k < 12 {
				m.k++
			}
		}
		return
	}
	e := melExponent[m.k]
	m.w.put(0, 1)
	if e > 0 {
		m.w.put(m.run, e)
	}
	m.run = 0
	if m.k > 0 {
		m.k--
	}
}

// encodeZeros codes n consecutive zero events, hopping whole runs at a
// time — the fast path for all-quiet quad rows, where the encoder's
// row OR masks prove every quad is AZC and empty without visiting it.
func (m *melEncoder) encodeZeros(n int) {
	for n > 0 {
		need := int(uint32(1)<<melExponent[m.k] - m.run)
		if n < need {
			m.run += uint32(n)
			return
		}
		n -= need
		m.w.put(1, 1)
		m.run = 0
		if m.k < 12 {
			m.k++
		}
	}
}

// flush closes a pending partial run as a complete one (the decoder
// never consumes the surplus zeros) and flushes the bit packer.
func (m *melEncoder) flush() {
	if m.run > 0 {
		m.w.put(1, 1)
	}
	m.w.flush()
}

// melDecoder mirrors melEncoder event for event.
type melDecoder struct {
	r    htReader
	k    int
	runs uint32 // pending zero events
	one  bool   // a pending 1 event after the zeros drain
}

func (m *melDecoder) init(data []byte) {
	m.r.init(data)
	m.k, m.runs, m.one = 0, 0, false
}

func (m *melDecoder) decode() int {
	if m.runs > 0 {
		m.runs--
		return 0
	}
	if m.one {
		m.one = false
		return 1
	}
	if m.r.get(1) == 1 { // complete run of 2^E[k] zeros
		m.runs = 1 << melExponent[m.k]
		if m.k < 12 {
			m.k++
		}
		m.runs--
		return 0
	}
	e := melExponent[m.k] // partial run of r zeros, then a 1
	var r uint32
	if e > 0 {
		r = m.r.get(e)
	}
	if m.k > 0 {
		m.k--
	}
	if r > 0 {
		m.runs = r - 1
		m.one = true
		return 0
	}
	return 1
}

// putUExp codes u = U_q − 1, a quad's magnitude-exponent bound, with a
// short prefix code (read LSB-first): 0 → u=0; 10 → u=1;
// 110 + 2 bits → u=2..5; 111 + 5 bits → u=6..37.
func putUExp(w *htWriter, u int) {
	switch {
	case u == 0:
		w.put(0, 1)
	case u == 1:
		w.put(1, 2)
	case u <= 5:
		w.put(3, 3)
		w.put(uint32(u-2), 2)
	default:
		w.put(7, 3)
		w.put(uint32(u-6), 5)
	}
}

func getUExp(r *htReader) int {
	if r.get(1) == 0 {
		return 0
	}
	if r.get(1) == 0 {
		return 1
	}
	if r.get(1) == 0 {
		return 2 + int(r.get(2))
	}
	return 6 + int(r.get(5))
}
