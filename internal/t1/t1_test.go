package t1

import (
	"math"
	"testing"
	"testing/quick"

	"j2kcell/internal/dwt"
	"j2kcell/internal/workload"
)

func randBlock(w, h int, seed uint32, amp int32) []int32 {
	rng := workload.NewRNG(seed)
	out := make([]int32, w*h)
	for i := range out {
		out[i] = int32(rng.Intn(int(2*amp+1))) - amp
	}
	return out
}

// sparseBlock mimics wavelet detail statistics: mostly zero, a few
// large values.
func sparseBlock(w, h int, seed uint32) []int32 {
	rng := workload.NewRNG(seed)
	out := make([]int32, w*h)
	for i := range out {
		switch rng.Intn(20) {
		case 0:
			out[i] = int32(rng.Intn(2000)) - 1000
		case 1:
			out[i] = int32(rng.Intn(16)) - 8
		}
	}
	return out
}

func roundTripBlock(t *testing.T, coef []int32, w, h int, orient dwt.Orient, mode Mode) *Block {
	t.Helper()
	blk := Encode(coef, w, h, w, orient, mode, 1.0)
	got := make([]int32, w*h)
	segLens := make([]int, len(blk.Passes))
	for i, p := range blk.Passes {
		segLens[i] = p.SegLen
	}
	if err := Decode(got, w, h, w, orient, mode, blk.NumBPS, len(blk.Passes), blk.Data, segLens); err != nil {
		t.Fatal(err)
	}
	for i := range coef {
		if got[i] != coef[i] {
			t.Fatalf("%dx%d %v mode %d: coef %d decoded %d, want %d", w, h, orient, mode, i, got[i], coef[i])
		}
	}
	return blk
}

func TestRoundTripAllOrientations(t *testing.T) {
	for _, o := range []dwt.Orient{dwt.LL, dwt.HL, dwt.LH, dwt.HH} {
		for _, mode := range []Mode{ModeSingle, ModeTermAll} {
			roundTripBlock(t, randBlock(32, 32, uint32(o)+7, 500), 32, 32, o, mode)
		}
	}
}

func TestRoundTripSparse(t *testing.T) {
	for _, mode := range []Mode{ModeSingle, ModeTermAll} {
		roundTripBlock(t, sparseBlock(64, 64, 3), 64, 64, dwt.HL, mode)
	}
}

func TestRoundTripOddSizes(t *testing.T) {
	sizes := []struct{ w, h int }{
		{1, 1}, {1, 7}, {7, 1}, {3, 5}, {5, 3}, {64, 64}, {64, 37}, {13, 64}, {4, 4}, {2, 9},
	}
	for _, s := range sizes {
		roundTripBlock(t, randBlock(s.w, s.h, uint32(s.w*s.h), 300), s.w, s.h, dwt.LH, ModeSingle)
		roundTripBlock(t, randBlock(s.w, s.h, uint32(s.w+s.h), 300), s.w, s.h, dwt.HH, ModeTermAll)
	}
}

func TestPropRoundTrip(t *testing.T) {
	f := func(w8, h8 uint8, seed uint32, o8, m8 uint8) bool {
		w, h := int(w8)%40+1, int(h8)%40+1
		orient := dwt.Orient(o8 % 4)
		mode := Mode(m8 % 2)
		coef := sparseBlock(w, h, seed)
		blk := Encode(coef, w, h, w, orient, mode, 1.0)
		got := make([]int32, w*h)
		segLens := make([]int, len(blk.Passes))
		for i, p := range blk.Passes {
			segLens[i] = p.SegLen
		}
		if err := Decode(got, w, h, w, orient, mode, blk.NumBPS, len(blk.Passes), blk.Data, segLens); err != nil {
			return false
		}
		for i := range coef {
			if got[i] != coef[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAllZeroBlock(t *testing.T) {
	coef := make([]int32, 16*16)
	blk := Encode(coef, 16, 16, 16, dwt.LL, ModeSingle, 1.0)
	if blk.NumBPS != 0 || len(blk.Passes) != 0 || len(blk.Data) != 0 || blk.Dist0 != 0 {
		t.Fatalf("all-zero block: %+v", blk)
	}
	got := make([]int32, 16*16)
	if err := Decode(got, 16, 16, 16, dwt.LL, ModeSingle, 0, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 0 {
			t.Fatal("zero block decoded nonzero")
		}
	}
}

func TestSingleCoefficient(t *testing.T) {
	coef := make([]int32, 8*8)
	coef[27] = -137
	blk := roundTripBlock(t, coef, 8, 8, dwt.HH, ModeSingle)
	if blk.NumBPS != 8 {
		t.Fatalf("NumBPS %d for magnitude 137, want 8", blk.NumBPS)
	}
}

func TestPassStructure(t *testing.T) {
	coef := randBlock(32, 32, 5, 400)
	blk := Encode(coef, 32, 32, 32, dwt.LL, ModeTermAll, 1.0)
	if len(blk.Passes) != 3*blk.NumBPS-2 {
		t.Fatalf("%d passes for %d planes, want %d", len(blk.Passes), blk.NumBPS, 3*blk.NumBPS-2)
	}
	if blk.Passes[0].Type != PassCln {
		t.Fatal("first pass must be cleanup")
	}
	want := []PassType{PassSig, PassRef, PassCln}
	for i := 1; i < len(blk.Passes); i++ {
		if blk.Passes[i].Type != want[(i-1)%3] {
			t.Fatalf("pass %d type %v", i, blk.Passes[i].Type)
		}
	}
	// Cumulative lengths must be nondecreasing and end at len(Data).
	prev := 0
	for _, p := range blk.Passes {
		if p.CumLen < prev {
			t.Fatal("CumLen decreased")
		}
		prev = p.CumLen
	}
	if prev != len(blk.Data) {
		t.Fatalf("final CumLen %d != data %d", prev, len(blk.Data))
	}
}

func TestDistortionAccounting(t *testing.T) {
	coef := sparseBlock(32, 32, 9)
	blk := Encode(coef, 32, 32, 32, dwt.LH, ModeTermAll, 1.0)
	var sum float64
	for _, p := range blk.Passes {
		if p.DistDelta < -1e-9 {
			t.Fatalf("negative distortion delta %v in %v", p.DistDelta, p.Type)
		}
		sum += p.DistDelta
	}
	// Decoding everything reaches (near) zero residual distortion:
	// total deltas ≈ Dist0.
	if math.Abs(sum-blk.Dist0) > 0.35*blk.Dist0 {
		t.Fatalf("distortion deltas sum %v vs initial %v", sum, blk.Dist0)
	}
}

func TestTruncatedDecodeImprovesWithPasses(t *testing.T) {
	coef := sparseBlock(64, 64, 21)
	blk := Encode(coef, 64, 64, 64, dwt.HL, ModeTermAll, 1.0)
	segLens := make([]int, len(blk.Passes))
	for i, p := range blk.Passes {
		segLens[i] = p.SegLen
	}
	mse := func(n int) float64 {
		got := make([]int32, 64*64)
		cum := 0
		if n > 0 {
			cum = blk.Passes[n-1].CumLen
		}
		if err := Decode(got, 64, 64, 64, dwt.HL, ModeTermAll, blk.NumBPS, n, blk.Data[:cum], segLens[:n]); err != nil {
			t.Fatal(err)
		}
		var s float64
		for i := range coef {
			d := float64(got[i] - coef[i])
			s += d * d
		}
		return s
	}
	last := math.Inf(1)
	for _, n := range []int{1, len(blk.Passes) / 4, len(blk.Passes) / 2, len(blk.Passes)} {
		if n < 1 {
			n = 1
		}
		m := mse(n)
		if m > last*1.0001 {
			t.Fatalf("MSE rose from %v to %v at %d passes", last, m, n)
		}
		last = m
	}
	if last != 0 {
		t.Fatalf("full decode MSE %v, want 0", last)
	}
}

func TestScanCodedCounters(t *testing.T) {
	coef := randBlock(16, 16, 2, 100)
	blk := Encode(coef, 16, 16, 16, dwt.LL, ModeSingle, 1.0)
	if blk.TotalScanned() == 0 || blk.TotalCoded() == 0 {
		t.Fatal("counters not populated")
	}
	if blk.TotalCoded() > blk.TotalScanned()+blk.W*blk.H*blk.NumBPS {
		t.Fatal("coded decisions implausibly high")
	}
	// Every pass scans at most ~2x the block (run-length columns count
	// their stripe once for the RL decision and again for the tail).
	for _, p := range blk.Passes {
		if p.Scanned > 2*16*16 {
			t.Fatalf("pass scanned %d > 2x block size", p.Scanned)
		}
	}
}

func TestStrideIndependence(t *testing.T) {
	coef := randBlock(12, 10, 6, 200)
	// Embed in a wider stride.
	wide := make([]int32, 32*10)
	for y := 0; y < 10; y++ {
		copy(wide[y*32:], coef[y*12:(y+1)*12])
	}
	a := Encode(coef, 12, 10, 12, dwt.HH, ModeSingle, 1.0)
	b := Encode(wide, 12, 10, 32, dwt.HH, ModeSingle, 1.0)
	if string(a.Data) != string(b.Data) {
		t.Fatal("stride changed encoded bytes")
	}
	got := make([]int32, 32*10)
	segLens := []int{len(b.Data)}
	if err := Decode(got, 12, 10, 32, dwt.HH, ModeSingle, b.NumBPS, len(b.Passes), b.Data, segLens); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 10; y++ {
		for x := 0; x < 12; x++ {
			if got[y*32+x] != coef[y*12+x] {
				t.Fatal("strided decode mismatch")
			}
		}
	}
}

func TestGainScalesDistortion(t *testing.T) {
	coef := sparseBlock(16, 16, 4)
	a := Encode(coef, 16, 16, 16, dwt.LL, ModeSingle, 1.0)
	b := Encode(coef, 16, 16, 16, dwt.LL, ModeSingle, 2.0)
	if math.Abs(b.Dist0-4*a.Dist0) > 1e-6*a.Dist0 {
		t.Fatalf("Dist0 not scaled by gain²: %v vs %v", b.Dist0, a.Dist0)
	}
	if string(a.Data) != string(b.Data) {
		t.Fatal("gain must not change the bitstream")
	}
}

func TestTermAllCostsMoreBytes(t *testing.T) {
	coef := sparseBlock(64, 64, 8)
	s := Encode(coef, 64, 64, 64, dwt.LL, ModeSingle, 1.0)
	ta := Encode(coef, 64, 64, 64, dwt.LL, ModeTermAll, 1.0)
	if len(ta.Data) <= len(s.Data) {
		t.Fatalf("TERMALL (%d B) should cost more than single (%d B)", len(ta.Data), len(s.Data))
	}
	// But not catastrophically more (≤ ~4 bytes per pass overhead).
	if len(ta.Data) > len(s.Data)+4*len(ta.Passes)+16 {
		t.Fatalf("TERMALL overhead too high: %d vs %d over %d passes", len(ta.Data), len(s.Data), len(ta.Passes))
	}
}

func TestCompresssionBeatsRawForSparseData(t *testing.T) {
	coef := sparseBlock(64, 64, 12)
	blk := Encode(coef, 64, 64, 64, dwt.HL, ModeSingle, 1.0)
	raw := 64 * 64 * 2 // ~11 significant bits + sign
	if len(blk.Data) >= raw {
		t.Fatalf("encoded %d bytes >= raw %d", len(blk.Data), raw)
	}
}

func TestDecodeErrorOnMissingSegLens(t *testing.T) {
	coef := randBlock(8, 8, 1, 50)
	blk := Encode(coef, 8, 8, 8, dwt.LL, ModeTermAll, 1.0)
	got := make([]int32, 64)
	err := Decode(got, 8, 8, 8, dwt.LL, ModeTermAll, blk.NumBPS, len(blk.Passes), blk.Data, nil)
	if err == nil {
		t.Fatal("missing segment lengths accepted")
	}
}
