package t1

import (
	"testing"

	"j2kcell/internal/dwt"
	"j2kcell/internal/workload"
)

// TestLUTZeroCodingExhaustive checks every zero-coding LUT entry against
// the oracle: for each of the 256 neighbor-significance patterns, build
// the 3×3 neighborhood explicitly in the byte-flag oracle and compare
// its recomputed context with the table entry for every orientation.
func TestLUTZeroCodingExhaustive(t *testing.T) {
	for _, orient := range []dwt.Orient{dwt.LL, dwt.HL, dwt.LH, dwt.HH} {
		for idx := 0; idx < 256; idx++ {
			o := newOracle(3, 3, orient)
			// Flag-word neighbor bit order: N,S,W,E,NW,NE,SW,SE.
			nbr := [8][2]int{{1, 0}, {1, 2}, {0, 1}, {2, 1}, {0, 0}, {2, 0}, {0, 2}, {2, 2}}
			for b, xy := range nbr {
				if idx>>uint(b)&1 != 0 {
					o.flags[o.fidx(xy[0], xy[1])] |= oSig
				}
			}
			want := o.zcContext(o.fidx(1, 1))
			if got := int(lutZC[zcTabFor(orient)][idx]); got != want {
				t.Fatalf("%v pattern %08b: LUT context %d, oracle %d", orient, idx, got, want)
			}
		}
	}
}

// TestLUTSignCodingExhaustive checks every sign-coding LUT entry: all
// 256 (significance, sign) patterns of the four H/V neighbors against
// the oracle's recomputed context and XOR bit.
func TestLUTSignCodingExhaustive(t *testing.T) {
	nbr := [4][2]int{{1, 0}, {1, 2}, {0, 1}, {2, 1}} // N,S,W,E
	for idx := 0; idx < 256; idx++ {
		o := newOracle(3, 3, dwt.LL)
		for b, xy := range nbr {
			fi := o.fidx(xy[0], xy[1])
			if idx>>uint(b)&1 != 0 {
				o.flags[fi] |= oSig
			}
			if idx>>uint(b+4)&1 != 0 {
				o.flags[fi] |= oNeg
			}
		}
		wantCtx, wantXor := o.scContext(o.fidx(1, 1))
		v := lutSC[idx]
		if got, gotXor := ctxSC+int(v&7), v>>3; got != wantCtx || gotXor != wantXor {
			t.Fatalf("pattern %08b: LUT (%d,%d), oracle (%d,%d)", idx, got, gotXor, wantCtx, wantXor)
		}
	}
}

// TestFlagWordsMatchOracle drives the incremental flag-word coder and
// the recompute-everything oracle through identical randomized
// significance/refinement histories and asserts that every context the
// passes could ask for — zero coding, sign coding, magnitude
// refinement — agrees at every coefficient after every step.
func TestFlagWordsMatchOracle(t *testing.T) {
	rng := workload.NewRNG(77)
	for trial := 0; trial < 40; trial++ {
		w := rng.Intn(20) + 1
		h := rng.Intn(20) + 1
		orient := dwt.Orient(rng.Intn(4))
		c := newCoder(w, h, orient)
		o := newOracle(w, h, orient)

		check := func(step int) {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					ci, oi := c.fidx(x, y), o.fidx(x, y)
					if got, want := c.zcContext(ci), o.zcContext(oi); got != want {
						t.Fatalf("trial %d step %d (%d,%d) %v: zc LUT %d, oracle %d", trial, step, x, y, orient, got, want)
					}
					gotSC, gotXor := c.scContext(ci)
					wantSC, wantXor := o.scContext(oi)
					if gotSC != wantSC || gotXor != wantXor {
						t.Fatalf("trial %d step %d (%d,%d): sc LUT (%d,%d), oracle (%d,%d)", trial, step, x, y, gotSC, gotXor, wantSC, wantXor)
					}
					if got, want := c.mrContext(ci), o.mrContext(oi); got != want {
						t.Fatalf("trial %d step %d (%d,%d): mr LUT %d, oracle %d", trial, step, x, y, got, want)
					}
				}
			}
		}

		check(-1)
		steps := rng.Intn(2*w*h) + 1
		for s := 0; s < steps; s++ {
			x, y := rng.Intn(w), rng.Intn(h)
			ci, oi := c.fidx(x, y), o.fidx(x, y)
			switch rng.Intn(3) {
			case 0, 1: // become significant with a random sign
				if c.flags[ci]&fwSig != 0 {
					continue
				}
				neg := rng.Intn(2) == 1
				if neg {
					c.flags[ci] |= fwNeg
					o.flags[oi] |= oNeg
				}
				c.setSig(ci, neg)
				o.flags[oi] |= oSig
			case 2: // refine an already significant coefficient
				if c.flags[ci]&fwSig == 0 {
					continue
				}
				c.flags[ci] |= fwRefined
				o.flags[oi] |= oRefined
			}
			check(s)
		}
		c.release()
	}
}

// TestVisitStampNoCollision pins the stamp encoding the passes rely on:
// distinct planes produce distinct stamps for every legal plane, and
// the stamp field cannot leak into any flag bit the contexts read.
func TestVisitStampNoCollision(t *testing.T) {
	seen := map[uint32]bool{}
	for p := 0; p < 32; p++ {
		vp := visitStamp(p)
		if vp&^fwVisitMask != 0 {
			t.Fatalf("stamp for plane %d overflows the visit field: %#x", p, vp)
		}
		if vp == 0 || seen[vp] {
			t.Fatalf("stamp for plane %d not unique: %#x", p, vp)
		}
		seen[vp] = true
	}
	if fwVisitMask&(fwSig|fwRefined|fwNeg|fwSigNbr|fwNegN|fwNegS|fwNegW|fwNegE) != 0 {
		t.Fatal("visit field overlaps context-visible bits")
	}
}
