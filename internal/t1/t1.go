// Package t1 implements EBCOT Tier-1 coding (ITU-T T.800 Annex D): the
// embedded bit-plane coder that turns a code block of quantized wavelet
// coefficients into an arithmetic-coded bitstream, three coding passes
// per bit plane — significance propagation, magnitude refinement, and
// cleanup — over a stripe-oriented scan with 19 adaptive MQ contexts.
//
// The hot path is built around incrementally maintained per-coefficient
// flag words (luts.go): each coefficient's word caches the significance
// and sign of its 8 neighbors, updated once when a neighbor becomes
// significant, so the zero-coding and sign-coding contexts are single
// table lookups and entire all-quiet stripe columns are skipped from
// one OR over the column's words. The emitted bitstream is identical to
// the original eight-load context computation — the flag words and LUTs
// are a pure refactor of the Table D.1–D.4 functions, verified by the
// differential tests against the pre-LUT reference (oracle_test.go).
//
// The encoder records, for every coding pass, its cumulative byte cost
// and the weighted distortion reduction it buys; rate control (package
// rate) selects truncation points from exactly these numbers, and the
// work-queue cost model prices Tier-1 on the Cell from the scan/decision
// counters. A full decoder is provided for round-trip verification.
package t1

import (
	"fmt"

	"j2kcell/internal/dwt"
	"j2kcell/internal/mq"
	"j2kcell/internal/obs"
)

// Mode selects the codeword segmentation style.
type Mode int

// Coding modes.
const (
	// ModeSingle codes all passes into one MQ segment terminated once.
	// Minimal overhead; used for lossless encoding, where nothing is
	// truncated.
	ModeSingle Mode = iota
	// ModeTermAll terminates the MQ coder after every pass (the
	// standard's TERMALL style), making every pass boundary an exact,
	// independently decodable truncation point for rate control.
	ModeTermAll
	// ModeHT selects the HTJ2K (ITU-T T.814 / Part 15) FBCOT block
	// coder instead of the MQ coder: one cleanup pass at plane 0
	// carrying the MagSgn, MEL and VLC byte streams — an exact
	// representation of the quantized coefficients (lossless given a
	// reversible upstream chain), with no truncation points.
	ModeHT
	// ModeHTRefine is the rate-control variant of ModeHT: the cleanup
	// pass runs at plane 1 and HT SigProp + MagRef raw-bit refinement
	// passes finish plane 0, so PCRD gets three truncation points per
	// block. Every HT pass is its own byte-aligned segment.
	ModeHTRefine
)

// segSymFlag is OR-ed into a Mode to enable segmentation symbols: the
// encoder codes the four-symbol 1010 sentinel in the UNIFORM context at
// the end of every cleanup pass (T.800 D.5, the SEGSYM coding style),
// and the decoder verifies it — turning silent MQ desynchronization
// inside a damaged segment into a detected error. Orthogonal to the
// base termination style, so it composes with ModeSingle and
// ModeTermAll without new enum values.
const segSymFlag Mode = 1 << 8

// WithSegSym returns the mode with segmentation symbols enabled.
func (m Mode) WithSegSym() Mode { return m | segSymFlag }

// SegSym reports whether segmentation symbols are coded.
func (m Mode) SegSym() bool { return m&segSymFlag != 0 }

// Base strips option flags, leaving the termination-style enum value.
func (m Mode) Base() Mode { return m &^ segSymFlag }

// IsHT reports whether the mode selects the HT (Part 15) block coder
// rather than the MQ coder.
func (m Mode) IsHT() bool { b := m.Base(); return b == ModeHT || b == ModeHTRefine }

// PassType identifies one of the three coding passes.
type PassType int

// Pass types in coding order within a bit plane.
const (
	PassSig PassType = iota // significance propagation
	PassRef                 // magnitude refinement
	PassCln                 // cleanup
)

func (p PassType) String() string {
	switch p {
	case PassSig:
		return "SPP"
	case PassRef:
		return "MRP"
	case PassCln:
		return "CLP"
	}
	return fmt.Sprintf("PassType(%d)", int(p))
}

// Pass describes one coding pass of an encoded block.
type Pass struct {
	Type      PassType
	Plane     int     // bit plane index (0 = LSB)
	CumLen    int     // cumulative segment bytes through this pass
	SegLen    int     // this pass's own segment length (ModeTermAll)
	DistDelta float64 // weighted distortion reduction of this pass
	Scanned   int     // coefficients examined
	Coded     int     // MQ decisions coded
}

// Block is the Tier-1 encoding of one code block.
type Block struct {
	W, H   int
	Orient dwt.Orient
	NumBPS int // bit planes actually coded (0 if all-zero block)
	Mode   Mode
	Passes []Pass
	Data   []byte  // concatenated codeword segments
	Dist0  float64 // weighted distortion with nothing decoded
}

// TotalScanned sums the scan counter over all passes.
func (b *Block) TotalScanned() int {
	n := 0
	for _, p := range b.Passes {
		n += p.Scanned
	}
	return n
}

// TotalCoded sums the decision counter over all passes.
func (b *Block) TotalCoded() int {
	n := 0
	for _, p := range b.Passes {
		n += p.Coded
	}
	return n
}

// Context indices (T.800 Table D.1–D.4 numbering: 9 zero-coding, 5
// sign-coding, 3 magnitude-refinement, run-length, uniform).
const (
	ctxZC  = 0  // 0..8
	ctxSC  = 9  // 9..13
	ctxMR  = 14 // 14..16
	ctxRL  = 17
	ctxUNI = 18
	nctx   = 19
)

// newContexts returns the standard initial context states: everything
// at table state 0 except zero-coding context 0 (state 4), run-length
// (state 3) and uniform (state 46).
func newContexts() [nctx]mq.Context {
	var cx [nctx]mq.Context
	for i := range cx {
		cx[i] = mq.NewContext(0)
	}
	cx[ctxZC] = mq.NewContext(4)
	cx[ctxRL] = mq.NewContext(3)
	cx[ctxUNI] = mq.NewContext(46)
	return cx
}

// coder holds the shared geometry and state of an encode or decode.
type coder struct {
	w, h   int
	orient dwt.Orient
	zcTab  int      // lutZC table for orient
	flags  []uint32 // (w+2) x (h+2) flag words, row-major with border
	fw     int      // flags row stride = w+2
	mag    []uint32
	cx     [nctx]mq.Context
}

// newCoder draws scratch from the coder pool (pool.go); callers release
// it when the block is done. Flags and magnitudes are zeroed, contexts
// reset to their standard initial states. Pool counters go to the
// ambient recorder; the Obs entry points use newCoderObs.
func newCoder(w, h int, orient dwt.Orient) *coder {
	return newCoderObs(w, h, orient, obs.Active())
}

// newCoderObs is newCoder counting pool hits/misses against an explicit
// recorder (nil-safe).
func newCoderObs(w, h int, orient dwt.Orient, rec *obs.Recorder) *coder {
	c, _ := coderPool.Get().(*coder)
	if c == nil {
		rec.Add(obs.CtrPoolCoderMiss, 1)
		c = &coder{}
	} else {
		rec.Add(obs.CtrPoolCoderHit, 1)
	}
	c.w, c.h, c.orient = w, h, orient
	c.zcTab = zcTabFor(orient)
	c.fw = w + 2
	if n := (w + 2) * (h + 2); cap(c.flags) < n {
		c.flags = make([]uint32, n)
	} else {
		c.flags = c.flags[:n]
		clear(c.flags)
	}
	if n := w * h; cap(c.mag) < n {
		c.mag = make([]uint32, n)
	} else {
		c.mag = c.mag[:n]
		clear(c.mag)
	}
	c.cx = newContexts()
	return c
}

// fidx maps block coordinates to the bordered flags array.
func (c *coder) fidx(x, y int) int { return (y+1)*c.fw + (x + 1) }

// zcContext computes the zero-coding context from the cached neighbor
// significance bits of the flag word (Table D.1).
func (c *coder) zcContext(fi int) int {
	return int(lutZC[c.zcTab][c.flags[fi]>>4&0xFF])
}

// scContext computes the sign-coding context and XOR bit (Table D.3)
// from the cached neighbor significance and sign bits.
func (c *coder) scContext(fi int) (ctx int, xor uint8) {
	v := lutSC[scIndex(c.flags[fi])]
	return ctxSC + int(v&7), v >> 3
}

// mrContext computes the magnitude-refinement context (Table D.4).
func (c *coder) mrContext(fi int) int { return mrCtx(c.flags[fi]) }

// bitLen returns the position of the highest set bit + 1.
func bitLen(v uint32) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}
