// Package t1 implements EBCOT Tier-1 coding (ITU-T T.800 Annex D): the
// embedded bit-plane coder that turns a code block of quantized wavelet
// coefficients into an arithmetic-coded bitstream, three coding passes
// per bit plane — significance propagation, magnitude refinement, and
// cleanup — over a stripe-oriented scan with 19 adaptive MQ contexts.
//
// The encoder records, for every coding pass, its cumulative byte cost
// and the weighted distortion reduction it buys; rate control (package
// rate) selects truncation points from exactly these numbers, and the
// work-queue cost model prices Tier-1 on the Cell from the scan/decision
// counters. A full decoder is provided for round-trip verification.
package t1

import (
	"fmt"

	"j2kcell/internal/dwt"
	"j2kcell/internal/mq"
)

// Mode selects the codeword segmentation style.
type Mode int

// Coding modes.
const (
	// ModeSingle codes all passes into one MQ segment terminated once.
	// Minimal overhead; used for lossless encoding, where nothing is
	// truncated.
	ModeSingle Mode = iota
	// ModeTermAll terminates the MQ coder after every pass (the
	// standard's TERMALL style), making every pass boundary an exact,
	// independently decodable truncation point for rate control.
	ModeTermAll
)

// PassType identifies one of the three coding passes.
type PassType int

// Pass types in coding order within a bit plane.
const (
	PassSig PassType = iota // significance propagation
	PassRef                 // magnitude refinement
	PassCln                 // cleanup
)

func (p PassType) String() string {
	switch p {
	case PassSig:
		return "SPP"
	case PassRef:
		return "MRP"
	case PassCln:
		return "CLP"
	}
	return fmt.Sprintf("PassType(%d)", int(p))
}

// Pass describes one coding pass of an encoded block.
type Pass struct {
	Type      PassType
	Plane     int     // bit plane index (0 = LSB)
	CumLen    int     // cumulative segment bytes through this pass
	SegLen    int     // this pass's own segment length (ModeTermAll)
	DistDelta float64 // weighted distortion reduction of this pass
	Scanned   int     // coefficients examined
	Coded     int     // MQ decisions coded
}

// Block is the Tier-1 encoding of one code block.
type Block struct {
	W, H   int
	Orient dwt.Orient
	NumBPS int // bit planes actually coded (0 if all-zero block)
	Mode   Mode
	Passes []Pass
	Data   []byte  // concatenated codeword segments
	Dist0  float64 // weighted distortion with nothing decoded
}

// TotalScanned sums the scan counter over all passes.
func (b *Block) TotalScanned() int {
	n := 0
	for _, p := range b.Passes {
		n += p.Scanned
	}
	return n
}

// TotalCoded sums the decision counter over all passes.
func (b *Block) TotalCoded() int {
	n := 0
	for _, p := range b.Passes {
		n += p.Coded
	}
	return n
}

// Context indices (T.800 Table D.1–D.4 numbering: 9 zero-coding, 5
// sign-coding, 3 magnitude-refinement, run-length, uniform).
const (
	ctxZC  = 0  // 0..8
	ctxSC  = 9  // 9..13
	ctxMR  = 14 // 14..16
	ctxRL  = 17
	ctxUNI = 18
	nctx   = 19
)

// newContexts returns the standard initial context states: everything
// at table state 0 except zero-coding context 0 (state 4), run-length
// (state 3) and uniform (state 46).
func newContexts() [nctx]mq.Context {
	var cx [nctx]mq.Context
	cx[ctxZC] = mq.NewContext(4)
	cx[ctxRL] = mq.NewContext(3)
	cx[ctxUNI] = mq.NewContext(46)
	return cx
}

// Flag bits per coefficient (stored with a one-pixel border so
// neighborhood tests need no bounds checks).
const (
	fSig     uint8 = 1 << 0 // significant
	fVisit   uint8 = 1 << 1 // coded in this plane's significance pass
	fRefined uint8 = 1 << 2 // has been refined at least once
	fNeg     uint8 = 1 << 3 // sign of the coefficient (set = negative)
)

// coder holds the shared geometry and state of an encode or decode.
type coder struct {
	w, h   int
	orient dwt.Orient
	flags  []uint8 // (w+2) x (h+2), row-major with border
	fw     int     // flags row stride = w+2
	mag    []uint32
	cx     [nctx]mq.Context
}

// newCoder draws scratch from the coder pool (pool.go); callers release
// it when the block is done. Flags and magnitudes are zeroed, contexts
// reset to their standard initial states.
func newCoder(w, h int, orient dwt.Orient) *coder {
	c, _ := coderPool.Get().(*coder)
	if c == nil {
		c = &coder{}
	}
	c.w, c.h, c.orient = w, h, orient
	c.fw = w + 2
	if n := (w + 2) * (h + 2); cap(c.flags) < n {
		c.flags = make([]uint8, n)
	} else {
		c.flags = c.flags[:n]
		clear(c.flags)
	}
	if n := w * h; cap(c.mag) < n {
		c.mag = make([]uint32, n)
	} else {
		c.mag = c.mag[:n]
		clear(c.mag)
	}
	c.cx = newContexts()
	return c
}

// fidx maps block coordinates to the bordered flags array.
func (c *coder) fidx(x, y int) int { return (y+1)*c.fw + (x + 1) }

// zcContext computes the zero-coding context from the 3×3 significance
// neighborhood, per Table D.1 (orientation-dependent).
func (c *coder) zcContext(fi int) int {
	f := c.flags
	h := int(f[fi-1]&fSig) + int(f[fi+1]&fSig)
	v := int(f[fi-c.fw]&fSig) + int(f[fi+c.fw]&fSig)
	d := int(f[fi-c.fw-1]&fSig) + int(f[fi-c.fw+1]&fSig) +
		int(f[fi+c.fw-1]&fSig) + int(f[fi+c.fw+1]&fSig)
	if c.orient == dwt.HL {
		h, v = v, h // HL band: swap the roles of H and V
	}
	if c.orient == dwt.HH {
		switch {
		case d >= 3:
			return 8
		case d == 2:
			if h+v >= 1 {
				return 7
			}
			return 6
		case d == 1:
			switch {
			case h+v >= 2:
				return 5
			case h+v == 1:
				return 4
			default:
				return 3
			}
		default:
			switch {
			case h+v >= 2:
				return 2
			case h+v == 1:
				return 1
			default:
				return 0
			}
		}
	}
	switch {
	case h == 2:
		return 8
	case h == 1:
		switch {
		case v >= 1:
			return 7
		case d >= 1:
			return 6
		default:
			return 5
		}
	default:
		switch {
		case v == 2:
			return 4
		case v == 1:
			return 3
		case d >= 2:
			return 2
		case d == 1:
			return 1
		default:
			return 0
		}
	}
}

// scContribution returns the clamped sign contribution (-1, 0, +1) of
// the neighbor at flags index fi.
func (c *coder) scContribution(fi int) int {
	f := c.flags[fi]
	if f&fSig == 0 {
		return 0
	}
	if f&fNeg != 0 {
		return -1
	}
	return 1
}

// scContext computes the sign-coding context and XOR bit (Table D.3).
func (c *coder) scContext(fi int) (ctx int, xor uint8) {
	h := c.scContribution(fi-1) + c.scContribution(fi+1)
	v := c.scContribution(fi-c.fw) + c.scContribution(fi+c.fw)
	clamp := func(x int) int {
		if x > 1 {
			return 1
		}
		if x < -1 {
			return -1
		}
		return x
	}
	h, v = clamp(h), clamp(v)
	switch {
	case h == 1:
		switch v {
		case 1:
			return ctxSC + 4, 0
		case 0:
			return ctxSC + 3, 0
		default:
			return ctxSC + 2, 0
		}
	case h == 0:
		switch v {
		case 1:
			return ctxSC + 1, 0
		case 0:
			return ctxSC, 0
		default:
			return ctxSC + 1, 1
		}
	default:
		switch v {
		case 1:
			return ctxSC + 2, 1
		case 0:
			return ctxSC + 3, 1
		default:
			return ctxSC + 4, 1
		}
	}
}

// mrContext computes the magnitude-refinement context (Table D.4).
func (c *coder) mrContext(fi int) int {
	f := c.flags
	if f[fi]&fRefined != 0 {
		return ctxMR + 2
	}
	any := f[fi-1] | f[fi+1] | f[fi-c.fw] | f[fi+c.fw] |
		f[fi-c.fw-1] | f[fi-c.fw+1] | f[fi+c.fw-1] | f[fi+c.fw+1]
	if any&fSig != 0 {
		return ctxMR + 1
	}
	return ctxMR
}

// clearVisit resets the per-plane visit flags.
func (c *coder) clearVisit() {
	for i := range c.flags {
		c.flags[i] &^= fVisit
	}
}

// bitLen returns the position of the highest set bit + 1.
func bitLen(v uint32) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}
