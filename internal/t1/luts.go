package t1

import "j2kcell/internal/dwt"

// Incremental neighbor-flag words (the OpenJPEG/JasPer T1_SIG_* scheme).
//
// Each coefficient carries one uint32 that caches, alongside its own
// state, the significance of all 8 neighbors and the sign of the 4
// horizontal/vertical neighbors. The word is updated once, when a
// neighbor becomes significant (setSig), instead of being reassembled
// from eight scattered byte loads every time a context is needed; the
// zero-coding and sign-coding contexts then collapse into table lookups
// indexed by the word. Encoder and decoder share the scheme, so their
// context sequences agree bit for bit by construction.
//
// Word layout:
//
//	bits  0..3   self state: significant, refined, negative (bit 1 spare)
//	bits  4..11  neighbor significance N,S,W,E,NW,NE,SW,SE
//	bits 12..15  neighbor sign N,S,W,E (set = negative; only ever set
//	             together with the matching significance bit)
//	bits 16..21  visit stamp: 1 + the plane of the last significance-
//	             pass visit (0 = never visited)
//
// The visit stamp replaces the old per-plane fVisit bit: "visited in
// this plane" becomes a comparison against the current plane's stamp,
// so no pass ever sweeps the flags array to clear visit bits (the old
// clearVisit walked (w+2)*(h+2) bytes per bit plane).
const (
	fwSig     uint32 = 1 << 0 // coefficient is significant
	fwRefined uint32 = 1 << 2 // has been refined at least once
	fwNeg     uint32 = 1 << 3 // coefficient sign (set = negative)

	fwSigN  uint32 = 1 << 4
	fwSigS  uint32 = 1 << 5
	fwSigW  uint32 = 1 << 6
	fwSigE  uint32 = 1 << 7
	fwSigNW uint32 = 1 << 8
	fwSigNE uint32 = 1 << 9
	fwSigSW uint32 = 1 << 10
	fwSigSE uint32 = 1 << 11

	fwNegN uint32 = 1 << 12
	fwNegS uint32 = 1 << 13
	fwNegW uint32 = 1 << 14
	fwNegE uint32 = 1 << 15

	fwSigNbr = fwSigN | fwSigS | fwSigW | fwSigE |
		fwSigNW | fwSigNE | fwSigSW | fwSigSE

	fwVisitShift        = 16
	fwVisitMask  uint32 = 0x3F << fwVisitShift
)

// visitStamp is the flag-word visit field value for plane p. Planes are
// coded in strictly decreasing order, so stale stamps from earlier
// (higher) planes can never collide with the current plane's stamp.
func visitStamp(p int) uint32 { return uint32(p+1) << fwVisitShift }

// setSig marks the coefficient at flags index fi significant and pushes
// its significance (and sign, for the 4 H/V directions the sign-coding
// context reads) into the neighbor bits of the 8 surrounding words.
// The one-pixel border absorbs edge writes, so no bounds checks are
// needed and border garbage is never read: border cells are never coded.
func (c *coder) setSig(fi int, neg bool) {
	f := c.flags
	fw := c.fw
	f[fi] |= fwSig
	f[fi-fw-1] |= fwSigSE // this coefficient is its NW neighbor's SE
	f[fi-fw+1] |= fwSigSW
	f[fi+fw-1] |= fwSigNE
	f[fi+fw+1] |= fwSigNW
	if neg {
		f[fi-fw] |= fwSigS | fwNegS
		f[fi+fw] |= fwSigN | fwNegN
		f[fi-1] |= fwSigE | fwNegE
		f[fi+1] |= fwSigW | fwNegW
	} else {
		f[fi-fw] |= fwSigS
		f[fi+fw] |= fwSigN
		f[fi-1] |= fwSigE
		f[fi+1] |= fwSigW
	}
}

// Context lookup tables, built once at init from the reference context
// functions below (the pre-LUT Table D.1/D.3 logic, kept as the oracle
// for the differential tests).
//
//	lutZC[tab][(word>>4)&0xFF]   zero-coding context 0..8
//	lutSC[scIndex(word)]         sign context offset (bits 0..2) | XOR<<3
var (
	lutZC [3][256]uint8
	lutSC [256]uint8
)

// zcTabFor selects the orientation's zero-coding table: LL/LH share one
// (horizontal neighbors dominate), HL swaps the H/V roles, HH is driven
// by the diagonals.
func zcTabFor(o dwt.Orient) int {
	switch o {
	case dwt.HL:
		return 1
	case dwt.HH:
		return 2
	default:
		return 0
	}
}

// scIndex maps a flag word to the sign-coding table index: bits 0..3
// are the N,S,W,E significance bits, bits 4..7 the N,S,W,E sign bits.
func scIndex(f uint32) uint32 { return (f >> 4 & 0x0F) | (f >> 8 & 0xF0) }

// mrCtx is the magnitude-refinement context (Table D.4) straight off
// the flag word: two bit tests instead of eight neighbor loads.
func mrCtx(f uint32) int {
	if f&fwRefined != 0 {
		return ctxMR + 2
	}
	if f&fwSigNbr != 0 {
		return ctxMR + 1
	}
	return ctxMR
}

// refZC is the reference zero-coding context (Table D.1) from explicit
// horizontal/vertical/diagonal significance counts — the original
// branchy implementation the LUTs are generated from and tested
// against. h and v are the counts in the orientation's preferred roles
// (already swapped for HL).
func refZC(orient dwt.Orient, h, v, d int) int {
	if orient == dwt.HH {
		switch {
		case d >= 3:
			return 8
		case d == 2:
			if h+v >= 1 {
				return 7
			}
			return 6
		case d == 1:
			switch {
			case h+v >= 2:
				return 5
			case h+v == 1:
				return 4
			default:
				return 3
			}
		default:
			switch {
			case h+v >= 2:
				return 2
			case h+v == 1:
				return 1
			default:
				return 0
			}
		}
	}
	switch {
	case h == 2:
		return 8
	case h == 1:
		switch {
		case v >= 1:
			return 7
		case d >= 1:
			return 6
		default:
			return 5
		}
	default:
		switch {
		case v == 2:
			return 4
		case v == 1:
			return 3
		case d >= 2:
			return 2
		case d == 1:
			return 1
		default:
			return 0
		}
	}
}

// refSC is the reference sign-coding context and XOR bit (Table D.3)
// from the clamped horizontal and vertical sign contributions.
func refSC(h, v int) (ctx int, xor uint8) {
	switch {
	case h == 1:
		switch v {
		case 1:
			return ctxSC + 4, 0
		case 0:
			return ctxSC + 3, 0
		default:
			return ctxSC + 2, 0
		}
	case h == 0:
		switch v {
		case 1:
			return ctxSC + 1, 0
		case 0:
			return ctxSC, 0
		default:
			return ctxSC + 1, 1
		}
	default:
		switch v {
		case 1:
			return ctxSC + 2, 1
		case 0:
			return ctxSC + 3, 1
		default:
			return ctxSC + 4, 1
		}
	}
}

func clampPM1(x int) int {
	if x > 1 {
		return 1
	}
	if x < -1 {
		return -1
	}
	return x
}

// bit reports whether bit b of idx is set, as a 0/1 count.
func bit(idx, b int) int { return (idx >> uint(b)) & 1 }

func init() {
	// Zero-coding: enumerate the 256 neighbor-significance patterns in
	// flag-word bit order (N,S,W,E,NW,NE,SW,SE).
	for idx := 0; idx < 256; idx++ {
		hN, hS := bit(idx, 0), bit(idx, 1)
		hW, hE := bit(idx, 2), bit(idx, 3)
		d := bit(idx, 4) + bit(idx, 5) + bit(idx, 6) + bit(idx, 7)
		h := hW + hE
		v := hN + hS
		lutZC[0][idx] = uint8(refZC(dwt.LL, h, v, d))
		lutZC[1][idx] = uint8(refZC(dwt.LL, v, h, d)) // HL: swapped roles
		lutZC[2][idx] = uint8(refZC(dwt.HH, h, v, d))
	}
	// Sign-coding: bits 0..3 significance of N,S,W,E; bits 4..7 their
	// signs. A sign bit without its significance bit contributes 0,
	// exactly like the old scContribution.
	for idx := 0; idx < 256; idx++ {
		contrib := func(sigBit, negBit int) int {
			if bit(idx, sigBit) == 0 {
				return 0
			}
			if bit(idx, negBit) != 0 {
				return -1
			}
			return 1
		}
		h := clampPM1(contrib(2, 6) + contrib(3, 7)) // W + E
		v := clampPM1(contrib(0, 4) + contrib(1, 5)) // N + S
		ctx, xor := refSC(h, v)
		lutSC[idx] = uint8(ctx-ctxSC) | xor<<3
	}
}
