// Package mq implements the JPEG2000 MQ binary arithmetic coder
// (ITU-T T.800 Annex C): an adaptive, renormalization-driven coder with
// a 47-row probability state table and byte stuffing that keeps 0xFF90+
// marker codes out of the compressed data. Both the encoder and the
// decoder are provided; EBCOT Tier-1 drives them with 19 contexts.
package mq

// state is one row of the Qe table.
type state struct {
	qe         uint32
	nmps, nlps uint8
	sw         uint8
}

// qeTable is the standard 47-state probability estimation table.
var qeTable = [47]state{
	{0x5601, 1, 1, 1},
	{0x3401, 2, 6, 0},
	{0x1801, 3, 9, 0},
	{0x0AC1, 4, 12, 0},
	{0x0521, 5, 29, 0},
	{0x0221, 38, 33, 0},
	{0x5601, 7, 6, 1},
	{0x5401, 8, 14, 0},
	{0x4801, 9, 14, 0},
	{0x3801, 10, 14, 0},
	{0x3001, 11, 17, 0},
	{0x2401, 12, 18, 0},
	{0x1C01, 13, 20, 0},
	{0x1601, 29, 21, 0},
	{0x5601, 15, 14, 1},
	{0x5401, 16, 14, 0},
	{0x5101, 17, 15, 0},
	{0x4801, 18, 16, 0},
	{0x3801, 19, 17, 0},
	{0x3401, 20, 18, 0},
	{0x3001, 21, 19, 0},
	{0x2801, 22, 19, 0},
	{0x2401, 23, 20, 0},
	{0x2201, 24, 21, 0},
	{0x1C01, 25, 22, 0},
	{0x1801, 26, 23, 0},
	{0x1601, 27, 24, 0},
	{0x1401, 28, 25, 0},
	{0x1201, 29, 26, 0},
	{0x1101, 30, 27, 0},
	{0x0AC1, 31, 28, 0},
	{0x09C1, 32, 29, 0},
	{0x08A1, 33, 30, 0},
	{0x0521, 34, 31, 0},
	{0x0441, 35, 32, 0},
	{0x02A1, 36, 33, 0},
	{0x0221, 37, 34, 0},
	{0x0141, 38, 35, 0},
	{0x0111, 39, 36, 0},
	{0x0085, 40, 37, 0},
	{0x0049, 41, 38, 0},
	{0x0025, 42, 39, 0},
	{0x0015, 43, 40, 0},
	{0x0009, 44, 41, 0},
	{0x0005, 45, 42, 0},
	{0x0001, 45, 43, 0},
	{0x5601, 46, 46, 0},
}

// Context is one adaptive probability context: a table index and the
// current most-probable-symbol value.
type Context struct {
	i   uint8
	mps uint8
}

// NewContext returns a context initialized to table state i0 with MPS 0.
func NewContext(i0 uint8) Context { return Context{i: i0} }

// Encoder is the MQ arithmetic encoder. The zero value is not usable;
// call Reset first.
type Encoder struct {
	a, c uint32
	ct   int
	b    int // index of the byte register within buf; -1 before first
	buf  []byte
}

// Reset prepares the encoder for a new codeword segment, reusing the
// output buffer's storage.
func (e *Encoder) Reset() {
	e.a = 0x8000
	e.c = 0
	e.ct = 12
	e.b = -1
	e.buf = e.buf[:0]
}

// Encode codes decision d (0 or 1) in context cx.
func (e *Encoder) Encode(d int, cx *Context) {
	s := &qeTable[cx.i]
	if uint8(d) == cx.mps {
		// CODEMPS
		e.a -= s.qe
		if e.a&0x8000 == 0 {
			if e.a < s.qe {
				e.a = s.qe
			} else {
				e.c += s.qe
			}
			cx.i = s.nmps
			e.renorm()
		} else {
			e.c += s.qe
		}
		return
	}
	// CODELPS
	e.a -= s.qe
	if e.a < s.qe {
		e.c += s.qe
	} else {
		e.a = s.qe
	}
	if s.sw == 1 {
		cx.mps = 1 - cx.mps
	}
	cx.i = s.nlps
	e.renorm()
}

func (e *Encoder) renorm() {
	for {
		e.a <<= 1
		e.c <<= 1
		e.ct--
		if e.ct == 0 {
			e.byteOut()
		}
		if e.a&0x8000 != 0 {
			return
		}
	}
}

func (e *Encoder) byteOut() {
	if e.b >= 0 && e.buf[e.b] == 0xFF {
		e.stuff()
		return
	}
	if e.c < 0x8000000 {
		e.emit(byte(e.c>>19), 0x7FFFF, 8)
		return
	}
	// Propagate the carry into the byte register.
	if e.b >= 0 {
		e.buf[e.b]++
		if e.buf[e.b] == 0xFF {
			e.c &= 0x7FFFFFF
			e.stuff()
			return
		}
	}
	e.emit(byte(e.c>>19), 0x7FFFF, 8)
}

func (e *Encoder) stuff() {
	e.buf = append(e.buf, byte(e.c>>20))
	e.b = len(e.buf) - 1
	e.c &= 0xFFFFF
	e.ct = 7
}

func (e *Encoder) emit(v byte, mask uint32, ct int) {
	e.buf = append(e.buf, v)
	e.b = len(e.buf) - 1
	e.c &= mask
	e.ct = ct
}

// Flush terminates the codeword segment so any prefix of future
// encoder output is independent of it, and returns the complete
// segment bytes (valid until the next Reset).
func (e *Encoder) Flush() []byte {
	// SETBITS
	tempC := e.c + e.a - 1
	e.c |= 0xFFFF
	if e.c >= tempC {
		e.c -= 0x8000
	}
	e.c <<= uint(e.ct)
	e.byteOut()
	e.c <<= uint(e.ct)
	e.byteOut()
	// A trailing 0xFF would be a marker prefix; the standard drops it.
	if n := len(e.buf); n > 0 && e.buf[n-1] == 0xFF {
		e.buf = e.buf[:n-1]
	}
	return e.buf
}

// NumBytes reports the bytes emitted so far (before Flush), a lower
// bound on the final segment length used for rate estimation.
func (e *Encoder) NumBytes() int { return len(e.buf) }

// Decoder is the MQ arithmetic decoder. Reading past the end of the
// data (as happens when decoding a truncated segment) feeds 1-bits, as
// the standard prescribes for marker-terminated segments.
type Decoder struct {
	a, c uint32
	ct   int
	bp   int
	data []byte
}

// NewDecoder initializes a decoder over one codeword segment.
func NewDecoder(data []byte) *Decoder {
	d := &Decoder{data: data}
	d.c = uint32(d.byteAt(0)) << 16
	d.bp = 0
	d.byteIn()
	d.c <<= 7
	d.ct -= 7
	d.a = 0x8000
	return d
}

// byteAt returns data[i], or 0xFF past the end.
func (d *Decoder) byteAt(i int) byte {
	if i >= len(d.data) {
		return 0xFF
	}
	return d.data[i]
}

func (d *Decoder) byteIn() {
	if d.byteAt(d.bp) == 0xFF {
		if d.byteAt(d.bp+1) > 0x8F {
			// Marker (or synthetic end-of-data): feed 1-bits forever.
			d.c += 0xFF00
			d.ct = 8
		} else {
			d.bp++
			d.c += uint32(d.byteAt(d.bp)) << 9
			d.ct = 7
		}
	} else {
		d.bp++
		d.c += uint32(d.byteAt(d.bp)) << 8
		d.ct = 8
	}
}

// Decode returns the next decision in context cx.
func (d *Decoder) Decode(cx *Context) int {
	s := &qeTable[cx.i]
	var bit uint8
	d.a -= s.qe
	if (d.c>>16)&0xFFFF < s.qe {
		// LPS exchange path.
		if d.a < s.qe {
			bit = cx.mps
			cx.i = s.nmps
		} else {
			bit = 1 - cx.mps
			if s.sw == 1 {
				cx.mps = 1 - cx.mps
			}
			cx.i = s.nlps
		}
		d.a = s.qe
		d.renorm()
	} else {
		d.c -= s.qe << 16
		if d.a&0x8000 == 0 {
			if d.a < s.qe {
				bit = 1 - cx.mps
				if s.sw == 1 {
					cx.mps = 1 - cx.mps
				}
				cx.i = s.nlps
			} else {
				bit = cx.mps
				cx.i = s.nmps
			}
			d.renorm()
		} else {
			bit = cx.mps
		}
	}
	return int(bit)
}

func (d *Decoder) renorm() {
	for {
		if d.ct == 0 {
			d.byteIn()
		}
		d.a <<= 1
		d.c <<= 1
		d.ct--
		if d.a&0x8000 != 0 {
			return
		}
	}
}
