// Package mq implements the JPEG2000 MQ binary arithmetic coder
// (ITU-T T.800 Annex C): an adaptive, renormalization-driven coder with
// a 47-row probability state table and byte stuffing that keeps 0xFF90+
// marker codes out of the compressed data. Both the encoder and the
// decoder are provided; EBCOT Tier-1 drives them with 19 contexts.
package mq

import "math/bits"

// state is one row of the Qe table.
type state struct {
	qe         uint32
	nmps, nlps uint8
	sw         uint8
}

// qeTable is the standard 47-state probability estimation table.
var qeTable = [47]state{
	{0x5601, 1, 1, 1},
	{0x3401, 2, 6, 0},
	{0x1801, 3, 9, 0},
	{0x0AC1, 4, 12, 0},
	{0x0521, 5, 29, 0},
	{0x0221, 38, 33, 0},
	{0x5601, 7, 6, 1},
	{0x5401, 8, 14, 0},
	{0x4801, 9, 14, 0},
	{0x3801, 10, 14, 0},
	{0x3001, 11, 17, 0},
	{0x2401, 12, 18, 0},
	{0x1C01, 13, 20, 0},
	{0x1601, 29, 21, 0},
	{0x5601, 15, 14, 1},
	{0x5401, 16, 14, 0},
	{0x5101, 17, 15, 0},
	{0x4801, 18, 16, 0},
	{0x3801, 19, 17, 0},
	{0x3401, 20, 18, 0},
	{0x3001, 21, 19, 0},
	{0x2801, 22, 19, 0},
	{0x2401, 23, 20, 0},
	{0x2201, 24, 21, 0},
	{0x1C01, 25, 22, 0},
	{0x1801, 26, 23, 0},
	{0x1601, 27, 24, 0},
	{0x1401, 28, 25, 0},
	{0x1201, 29, 26, 0},
	{0x1101, 30, 27, 0},
	{0x0AC1, 31, 28, 0},
	{0x09C1, 32, 29, 0},
	{0x08A1, 33, 30, 0},
	{0x0521, 34, 31, 0},
	{0x0441, 35, 32, 0},
	{0x02A1, 36, 33, 0},
	{0x0221, 37, 34, 0},
	{0x0141, 38, 35, 0},
	{0x0111, 39, 36, 0},
	{0x0085, 40, 37, 0},
	{0x0049, 41, 38, 0},
	{0x0025, 42, 39, 0},
	{0x0015, 43, 40, 0},
	{0x0009, 44, 41, 0},
	{0x0005, 45, 42, 0},
	{0x0001, 45, 43, 0},
	{0x5601, 46, 46, 0},
}

// mpsState is one row of the MPS-folded probability table: the 47-row
// spec table expanded to 94 rows indexed by i<<1 | mps, so that a
// state transition carries the (possibly switched) MPS value with it
// and the coding loops never touch the switch flag.
type mpsState struct {
	qe         uint32
	nmps, nlps uint8
	mps        uint8
}

// qeTable94 is derived from qeTable in init: entry 2i+m is spec state
// i with current MPS m; its NLPS successor folds in the SWITCH rule.
var qeTable94 [94]mpsState

func init() {
	for i, s := range qeTable {
		for m := uint8(0); m < 2; m++ {
			lm := m
			if s.sw == 1 {
				lm = 1 - m
			}
			qeTable94[2*i+int(m)] = mpsState{
				qe:   s.qe,
				nmps: s.nmps<<1 | m,
				nlps: s.nlps<<1 | lm,
				mps:  m,
			}
		}
	}
}

// Context is one adaptive probability context: a copy of its current
// MPS-folded table row. Caching the row turns the per-decision
// dependent chain "load index, then load table row" into a single
// 8-byte load; transitions copy a row, which only happens on
// renormalization events.
type Context struct {
	s mpsState
}

// NewContext returns a context initialized to table state i0 with MPS 0.
func NewContext(i0 uint8) Context { return Context{s: qeTable94[2*i0]} }

// Encoder is the MQ arithmetic encoder. The zero value is not usable;
// call Reset first.
type Encoder struct {
	a, c uint32
	ct   int
	b    int // index of the byte register within buf; -1 before first
	buf  []byte
	// renorms counts renormalization chunks coded by EncodeBatch (one
	// per decision that leaves the no-renorm fast path). It accumulates
	// across Reset so Tier-1 can read a whole block's total; TakeRenorms
	// reads and clears it.
	renorms int64
}

// TakeRenorms returns the renormalization-chunk count accumulated since
// the last call and resets it — the observability layer's MQ workload
// counter.
func (e *Encoder) TakeRenorms() int64 {
	n := e.renorms
	e.renorms = 0
	return n
}

// Reset prepares the encoder for a new codeword segment, reusing the
// output buffer's storage.
func (e *Encoder) Reset() {
	e.a = 0x8000
	e.c = 0
	e.ct = 12
	e.b = -1
	e.buf = e.buf[:0]
}

// Encode codes decision d (0 or 1) in context cx. The common path — a
// most-probable symbol with no renormalization — returns after one
// compare and two adds; the renormalization loop is unrolled inline so
// the interval registers stay out of memory between shifts.
func (e *Encoder) Encode(d int, cx *Context) {
	s := cx.s
	qe := s.qe
	a := e.a - qe
	if uint8(d) == s.mps {
		// CODEMPS
		if a&0x8000 != 0 {
			e.a = a
			e.c += qe
			return
		}
		if a < qe {
			a = qe
		} else {
			e.c += qe
		}
		cx.s = qeTable94[s.nmps]
	} else {
		// CODELPS (the MPS switch is folded into the nlps row)
		if a < qe {
			e.c += qe
		} else {
			a = qe
		}
		cx.s = qeTable94[s.nlps]
	}
	// RENORME
	c, ct := e.c, e.ct
	for {
		a <<= 1
		c <<= 1
		ct--
		if ct == 0 {
			e.c = c
			e.byteOut()
			c, ct = e.c, e.ct
		}
		if a&0x8000 != 0 {
			break
		}
	}
	e.a, e.c, e.ct = a, c, ct
}


// EncodeBatch codes a run of packed decisions — each op is ctx<<1 | d,
// an index into cxs plus the decision bit — in order. It is exactly
// equivalent to calling Encode for each op; batching exists so the
// interval registers a, c and the shift counter stay in locals across
// the whole run instead of round-tripping through the struct per bit.
// Tier-1 can defer coding this way because its decision sequence never
// depends on the encoder's interval state.
func (e *Encoder) EncodeBatch(ops []uint8, cxs []Context) {
	a, c, ct := e.a, e.c, e.ct
	nren := int64(0)
	for _, op := range ops {
		cx := &cxs[op>>1]
		s := cx.s
		qe := s.qe
		dm := op&1 ^ s.mps // 0 ⇒ most probable symbol
		a -= qe
		// CODEMPS without renormalization — the common case for adapted
		// contexts — needs dm == 0 and bit 15 of a set. a never exceeds
		// 0xFFFF, so shifting by dm folds both tests into one branch.
		if a>>dm&0x8000 != 0 {
			c += qe
			continue
		}
		// Interval assignment (with conditional exchange) and next
		// state, arranged as single-assignment conditionals so the
		// unpredictable decision bit selects via CMOV instead of a
		// branch. exch ⇔ the sub-interval becomes qe: on the MPS path
		// when a < qe, on the LPS path when a ≥ qe.
		exch := (a < qe) == (dm == 0)
		nc := c + qe
		if exch {
			nc = c
		}
		if exch {
			a = qe
		}
		c = nc
		ni := s.nlps
		if dm == 0 {
			ni = s.nmps
		}
		cx.s = qeTable94[ni]
		// RENORME: a < 0x8000 here, so at least one shift. Shifting in
		// ct-bounded chunks keeps c within its 28-bit register between
		// byte-outs, exactly as the bit-at-a-time loop does.
		nren++
		shift := bits.LeadingZeros32(a) - 16
		for shift >= ct {
			a <<= uint(ct)
			c <<= uint(ct)
			shift -= ct
			e.c = c
			e.byteOut()
			c, ct = e.c, e.ct
		}
		a <<= uint(shift)
		c <<= uint(shift)
		ct -= shift
	}
	e.a, e.c, e.ct = a, c, ct
	e.renorms += nren
}

func (e *Encoder) byteOut() {
	if e.b >= 0 && e.buf[e.b] == 0xFF {
		e.stuff()
		return
	}
	if e.c < 0x8000000 {
		e.emit(byte(e.c>>19), 0x7FFFF, 8)
		return
	}
	// Propagate the carry into the byte register.
	if e.b >= 0 {
		e.buf[e.b]++
		if e.buf[e.b] == 0xFF {
			e.c &= 0x7FFFFFF
			e.stuff()
			return
		}
	}
	e.emit(byte(e.c>>19), 0x7FFFF, 8)
}

func (e *Encoder) stuff() {
	e.buf = append(e.buf, byte(e.c>>20))
	e.b = len(e.buf) - 1
	e.c &= 0xFFFFF
	e.ct = 7
}

func (e *Encoder) emit(v byte, mask uint32, ct int) {
	e.buf = append(e.buf, v)
	e.b = len(e.buf) - 1
	e.c &= mask
	e.ct = ct
}

// Flush terminates the codeword segment so any prefix of future
// encoder output is independent of it, and returns the complete
// segment bytes (valid until the next Reset).
func (e *Encoder) Flush() []byte {
	// SETBITS
	tempC := e.c + e.a - 1
	e.c |= 0xFFFF
	if e.c >= tempC {
		e.c -= 0x8000
	}
	e.c <<= uint(e.ct)
	e.byteOut()
	e.c <<= uint(e.ct)
	e.byteOut()
	// A trailing 0xFF would be a marker prefix; the standard drops it.
	if n := len(e.buf); n > 0 && e.buf[n-1] == 0xFF {
		e.buf = e.buf[:n-1]
	}
	return e.buf
}

// NumBytes reports the bytes emitted so far (before Flush), a lower
// bound on the final segment length used for rate estimation.
func (e *Encoder) NumBytes() int { return len(e.buf) }

// Decoder is the MQ arithmetic decoder. Reading past the end of the
// data (as happens when decoding a truncated segment) feeds 1-bits, as
// the standard prescribes for marker-terminated segments.
type Decoder struct {
	a, c uint32
	ct   int
	bp   int
	data []byte
}

// NewDecoder initializes a decoder over one codeword segment.
func NewDecoder(data []byte) *Decoder {
	d := &Decoder{data: data}
	d.c = uint32(d.byteAt(0)) << 16
	d.bp = 0
	d.byteIn()
	d.c <<= 7
	d.ct -= 7
	d.a = 0x8000
	return d
}

// byteAt returns data[i], or 0xFF past the end.
func (d *Decoder) byteAt(i int) byte {
	if i >= len(d.data) {
		return 0xFF
	}
	return d.data[i]
}

func (d *Decoder) byteIn() {
	if d.byteAt(d.bp) == 0xFF {
		if d.byteAt(d.bp+1) > 0x8F {
			// Marker (or synthetic end-of-data): feed 1-bits forever.
			d.c += 0xFF00
			d.ct = 8
		} else {
			d.bp++
			d.c += uint32(d.byteAt(d.bp)) << 9
			d.ct = 7
		}
	} else {
		d.bp++
		d.c += uint32(d.byteAt(d.bp)) << 8
		d.ct = 8
	}
}

// Decode returns the next decision in context cx. As in the encoder,
// the common no-renormalization path returns early and the
// renormalization loop is inlined to keep the interval registers live.
func (d *Decoder) Decode(cx *Context) int {
	s := cx.s
	qe := s.qe
	var bit uint8
	a := d.a - qe
	if (d.c>>16)&0xFFFF < qe {
		// LPS exchange path.
		if a < qe {
			bit = s.mps
			cx.s = qeTable94[s.nmps]
		} else {
			bit = 1 - s.mps
			cx.s = qeTable94[s.nlps]
		}
		a = qe
	} else {
		d.c -= qe << 16
		if a&0x8000 != 0 {
			d.a = a
			return int(s.mps)
		}
		if a < qe {
			bit = 1 - s.mps
			cx.s = qeTable94[s.nlps]
		} else {
			bit = s.mps
			cx.s = qeTable94[s.nmps]
		}
	}
	// RENORMD
	for {
		if d.ct == 0 {
			d.byteIn()
		}
		a <<= 1
		d.c <<= 1
		d.ct--
		if a&0x8000 != 0 {
			break
		}
	}
	d.a = a
	return int(bit)
}
