package mq

import (
	"testing"
	"testing/quick"

	"j2kcell/internal/workload"
)

// freshContexts returns n contexts at initial table state 0.
func freshContexts(n int) []Context {
	cxs := make([]Context, n)
	for i := range cxs {
		cxs[i] = NewContext(0)
	}
	return cxs
}

// roundTrip encodes the decision sequence with ctxIDs selecting among
// nctx contexts, then decodes and compares.
func roundTrip(t *testing.T, bits []int, ctxIDs []int, nctx int) {
	t.Helper()
	encCtx := freshContexts(nctx)
	var e Encoder
	e.Reset()
	for i, b := range bits {
		e.Encode(b, &encCtx[ctxIDs[i]])
	}
	data := e.Flush()

	decCtx := freshContexts(nctx)
	d := NewDecoder(data)
	for i := range bits {
		if got := d.Decode(&decCtx[ctxIDs[i]]); got != bits[i] {
			t.Fatalf("bit %d: decoded %d, want %d", i, got, bits[i])
		}
	}
}

func TestRoundTripSimplePatterns(t *testing.T) {
	patterns := [][]int{
		{0}, {1},
		{0, 0, 0, 0, 0, 0, 0, 0},
		{1, 1, 1, 1, 1, 1, 1, 1},
		{0, 1, 0, 1, 0, 1, 0, 1},
		{1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1, 1, 1, 1},
	}
	for _, p := range patterns {
		ids := make([]int, len(p))
		roundTrip(t, p, ids, 1)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	var e Encoder
	e.Reset()
	data := e.Flush()
	if len(data) > 3 {
		t.Fatalf("empty segment is %d bytes", len(data))
	}
}

func TestPropRoundTripRandom(t *testing.T) {
	f := func(seed uint32, n16 uint16, nctx8 uint8) bool {
		n := int(n16)%4000 + 1
		nctx := int(nctx8)%19 + 1
		rng := workload.NewRNG(seed)
		bits := make([]int, n)
		ids := make([]int, n)
		for i := range bits {
			bits[i] = rng.Intn(2)
			ids[i] = rng.Intn(nctx)
		}
		encCtx := freshContexts(nctx)
		var e Encoder
		e.Reset()
		for i, b := range bits {
			e.Encode(b, &encCtx[ids[i]])
		}
		data := e.Flush()
		decCtx := freshContexts(nctx)
		d := NewDecoder(data)
		for i := range bits {
			if d.Decode(&decCtx[ids[i]]) != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripSkewedSources(t *testing.T) {
	// Heavily skewed sources exercise the deep table states and carry
	// propagation.
	for _, p1 := range []int{1, 5, 50, 200, 250, 254} {
		rng := workload.NewRNG(uint32(p1))
		bits := make([]int, 20000)
		for i := range bits {
			if rng.Intn(255) < p1 {
				bits[i] = 1
			}
		}
		ids := make([]int, len(bits))
		roundTrip(t, bits, ids, 1)
	}
}

func TestCompressionOfSkewedSource(t *testing.T) {
	// An adaptive arithmetic coder must compress a 1%-ones source far
	// below 1 bit per symbol (entropy ≈ 0.08 bpс).
	rng := workload.NewRNG(99)
	const n = 100000
	var e Encoder
	e.Reset()
	ctx := NewContext(0)
	for i := 0; i < n; i++ {
		b := 0
		if rng.Intn(100) == 0 {
			b = 1
		}
		e.Encode(b, &ctx)
	}
	data := e.Flush()
	bps := float64(len(data)*8) / n
	if bps > 0.15 {
		t.Fatalf("%.3f bits/symbol for 1%% source; coder not adapting", bps)
	}
}

func TestRandomSourceNearOneBit(t *testing.T) {
	rng := workload.NewRNG(7)
	const n = 50000
	var e Encoder
	e.Reset()
	ctx := NewContext(0)
	for i := 0; i < n; i++ {
		e.Encode(rng.Intn(2), &ctx)
	}
	data := e.Flush()
	bps := float64(len(data)*8) / n
	if bps < 0.98 || bps > 1.1 {
		t.Fatalf("%.3f bits/symbol for random source, want ≈1", bps)
	}
}

func TestNoUnstuffedMarkersInOutput(t *testing.T) {
	// Byte stuffing must prevent any 0xFF followed by a byte > 0x8F.
	rng := workload.NewRNG(3)
	var e Encoder
	e.Reset()
	ctxs := freshContexts(4)
	for i := 0; i < 200000; i++ {
		e.Encode(rng.Intn(2), &ctxs[rng.Intn(4)])
	}
	data := e.Flush()
	for i := 0; i+1 < len(data); i++ {
		if data[i] == 0xFF && data[i+1] > 0x8F {
			t.Fatalf("marker code FF %02X at offset %d", data[i+1], i)
		}
	}
	if data[len(data)-1] == 0xFF {
		t.Fatal("segment ends in 0xFF")
	}
}

func TestTruncatedSegmentDoesNotCrash(t *testing.T) {
	rng := workload.NewRNG(5)
	bits := make([]int, 5000)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	var e Encoder
	e.Reset()
	ctx := NewContext(0)
	for _, b := range bits {
		e.Encode(b, &ctx)
	}
	data := e.Flush()
	for _, frac := range []int{0, 1, 2, 4} {
		n := len(data) * frac / 4
		dctx := NewContext(0)
		d := NewDecoder(data[:n])
		for range bits {
			v := d.Decode(&dctx)
			if v != 0 && v != 1 {
				t.Fatalf("invalid decision %d", v)
			}
		}
	}
}

func TestTruncatedPrefixDecodesPrefixBits(t *testing.T) {
	// The bits decodable before the truncation point must match; this
	// property is what makes rate-control truncation possible at all.
	rng := workload.NewRNG(11)
	bits := make([]int, 8000)
	for i := range bits {
		if rng.Intn(10) == 0 {
			bits[i] = 1
		}
	}
	var e Encoder
	e.Reset()
	ctx := NewContext(0)
	for _, b := range bits {
		e.Encode(b, &ctx)
	}
	data := e.Flush()
	// Decoding from a prefix of 3/4 of the segment must reproduce at
	// least half the decisions before diverging.
	dctx := NewContext(0)
	d := NewDecoder(data[:len(data)*3/4])
	correct := 0
	for i := range bits {
		if d.Decode(&dctx) == bits[i] {
			correct++
		} else {
			break
		}
	}
	if correct < len(bits)/2 {
		t.Fatalf("only %d/%d decisions survive 75%% truncation", correct, len(bits))
	}
}

func TestEncoderResetReusesBuffer(t *testing.T) {
	var e Encoder
	e.Reset()
	ctx := NewContext(0)
	for i := 0; i < 1000; i++ {
		e.Encode(i&1, &ctx)
	}
	first := append([]byte(nil), e.Flush()...)
	e.Reset()
	ctx = NewContext(0)
	for i := 0; i < 1000; i++ {
		e.Encode(i&1, &ctx)
	}
	second := e.Flush()
	if string(first) != string(second) {
		t.Fatal("encoder not deterministic across Reset")
	}
}

func TestContextInitialState(t *testing.T) {
	c := NewContext(46)
	if c.s != qeTable94[2*46] || c.s.mps != 0 {
		t.Fatalf("context init: %+v", c)
	}
}

func TestMPSFoldedTableMatchesSpec(t *testing.T) {
	// Every folded row must carry its spec row's Qe and transitions,
	// with the SWITCH rule applied to the LPS successor's MPS bit.
	for i, s := range qeTable {
		for m := uint8(0); m < 2; m++ {
			f := qeTable94[2*i+int(m)]
			if f.qe != s.qe || f.mps != m {
				t.Fatalf("state %d mps %d: row %+v", i, m, f)
			}
			if f.nmps>>1 != s.nmps || f.nmps&1 != m {
				t.Fatalf("state %d mps %d: bad MPS successor %d", i, m, f.nmps)
			}
			wantM := m
			if s.sw == 1 {
				wantM = 1 - m
			}
			if f.nlps>>1 != s.nlps || f.nlps&1 != wantM {
				t.Fatalf("state %d mps %d: bad LPS successor %d", i, m, f.nlps)
			}
		}
	}
}

func TestQeTableInvariants(t *testing.T) {
	for i, s := range qeTable {
		if s.qe == 0 || s.qe > 0x5601 {
			t.Errorf("state %d: Qe %#x out of range", i, s.qe)
		}
		if int(s.nmps) >= len(qeTable) || int(s.nlps) >= len(qeTable) {
			t.Errorf("state %d: transition out of table", i)
		}
		if s.sw == 1 && s.qe != 0x5601 {
			t.Errorf("state %d: SWITCH set on non-startup state", i)
		}
	}
	if qeTable[46].nmps != 46 || qeTable[46].nlps != 46 {
		t.Error("uniform state 46 must be absorbing")
	}
}
