package harness

import (
	"fmt"

	"j2kcell/internal/cell"
	"j2kcell/internal/codec"
	"j2kcell/internal/core"
)

// AblateDWTFusion quantifies the loop interleaving + split merging of
// Section 4: DMA traffic and DWT time, fused vs naive sweeps.
func AblateDWTFusion(p Params) *Table {
	t := &Table{
		Title: "Ablation — interleaved/merged lifting vs separate passes",
		Note:  "The fused sweep reads each row once; the naive schedule re-streams the column group per lifting pass.",
		Cols:  []string{"mode", "variant", "dwt (s)", "SPE DMA (MB)", "total (s)"},
	}
	img := p.DialImage()
	for _, mode := range []struct {
		label string
		opt   codec.Options
	}{{"lossless 5/3", losslessOpt()}, {"lossy 9/7", lossyOpt()}} {
		for _, naive := range []bool{false, true} {
			cfg := core.DefaultConfig(8, mode.opt)
			cfg.NaiveDWT = naive
			res, err := core.Encode(img, cfg)
			must(err)
			variant := "fused (1 sweep)"
			if naive {
				variant = "naive (split+lifts)"
			}
			t.AddRow(mode.label, variant,
				f3(cell.Seconds(res.StageCycles("dwt"))),
				f1(float64(res.DMABytes)/1e6),
				f3(cellSeconds(res)))
		}
	}
	return t
}

// AblateBuffering sweeps the multi-buffering depth the constant Local
// Store footprint makes affordable (Section 2).
func AblateBuffering(p Params) *Table {
	t := &Table{
		Title: "Ablation — buffering depth (latency hiding)",
		Cols:  []string{"depth", "total (s)", "dwt (s)", "LS high water (KB)"},
	}
	img := p.DialImage()
	for _, d := range []int{1, 2, 3, 4, 6} {
		cfg := core.DefaultConfig(8, losslessOpt())
		cfg.BufferDepth = d
		res, err := core.Encode(img, cfg)
		must(err)
		t.AddRow(fmt.Sprint(d), f3(cellSeconds(res)),
			f3(cell.Seconds(res.StageCycles("dwt"))),
			fmt.Sprint(res.LSHighWater/1024))
	}
	return t
}

// AblateChunkWidth sweeps the column-group width of the decomposition
// scheme (the paper tunes it to cache-line multiples).
func AblateChunkWidth(p Params) *Table {
	t := &Table{
		Title: "Ablation — column chunk width (words)",
		Cols:  []string{"chunk width", "total (s)", "dwt (s)", "DMA cmds"},
	}
	img := p.DialImage()
	for _, cw := range []int{32, 64, 128, 256, 0} {
		cfg := core.DefaultConfig(8, losslessOpt())
		cfg.ChunkWidth = cw
		res, err := core.Encode(img, cfg)
		must(err)
		label := fmt.Sprint(cw)
		if cw == 0 {
			label = "auto"
		}
		t.AddRow(label, f3(cellSeconds(res)),
			f3(cell.Seconds(res.StageCycles("dwt"))),
			fmt.Sprint(res.DMACmds))
	}
	return t
}

// AblateBlockSize compares the paper's 64x64 code blocks against the
// Muta design's 32x32 (Section 3.2).
func AblateBlockSize(p Params) *Table {
	t := &Table{
		Title: "Ablation — code block size",
		Note:  "Smaller blocks shrink Local Store needs but multiply PPE/SPE interactions and shrink MQ context runs.",
		Cols:  []string{"block", "total (s)", "tier1 (s)", "blocks", "output (KB)"},
	}
	img := p.DialImage()
	for _, cb := range []int{16, 32, 64} {
		opt := losslessOpt()
		opt.CBW, opt.CBH = cb, cb
		res, err := core.Encode(img, core.DefaultConfig(8, opt))
		must(err)
		t.AddRow(fmt.Sprintf("%dx%d", cb, cb), f3(cellSeconds(res)),
			f3(cell.Seconds(res.StageCycles("tier1"))),
			fmt.Sprint(res.Stats.Blocks),
			fmt.Sprint(len(res.Data)/1024))
	}
	return t
}

// AblateWorkQueue compares dynamic and static Tier-1 distribution
// (Section 3.2: block coding time is content dependent).
func AblateWorkQueue(p Params) *Table {
	t := &Table{
		Title: "Ablation — Tier-1 work queue vs static distribution",
		Cols:  []string{"strategy", "tier1 (s)", "total (s)"},
	}
	img := p.DialImage()
	for _, static := range []bool{false, true} {
		cfg := core.DefaultConfig(8, losslessOpt())
		cfg.StaticT1 = static
		res, err := core.Encode(img, cfg)
		must(err)
		label := "work queue"
		if static {
			label = "static round-robin"
		}
		t.AddRow(label, f3(cell.Seconds(res.StageCycles("tier1"))), f3(cellSeconds(res)))
	}
	return t
}

// AblateFixedPoint prices the lossy DWT under JasPer's fixed-point
// representation vs float on the SPE (the Table 1 consequence).
func AblateFixedPoint(p Params) *Table {
	t := &Table{
		Title: "Ablation — lossy DWT representation on the SPE (1 SPE, compute-bound)",
		Note:  "Paper Section 4: the SPE has no 32-bit integer multiply, so JasPer's fixed point loses to float. At 8 SPEs the DWT hides behind DMA; one SPE exposes the arithmetic.",
		Cols:  []string{"representation", "dwt (s)", "total (s)"},
	}
	img := p.DialImage()
	for _, fixed := range []bool{false, true} {
		cfg := core.DefaultConfig(1, lossyOpt())
		cfg.FixedPoint97 = fixed
		res, err := core.Encode(img, cfg)
		must(err)
		label := "float (ours)"
		if fixed {
			label = "fixed point (JasPer)"
		}
		t.AddRow(label, f3(cell.Seconds(res.StageCycles("dwt"))), f3(cellSeconds(res)))
	}
	return t
}

// AblateLoopParallel reproduces the Meerwald et al. comparison from the
// paper's introduction: parallelizing only Tier-1 and the DWT (their
// OpenMP loop-level port) versus the whole pipeline.
func AblateLoopParallel(p Params) *Table {
	t := &Table{
		Title: "Ablation — whole-pipeline vs loop-level parallelization (Meerwald et al.)",
		Note:  "Loop-level parallelism leaves level shift, MCT, quantization and I/O sequential, capping speedup.",
		Cols:  []string{"strategy", "SPEs", "time (s)", "speedup vs 1 SPE"},
	}
	img := p.DialImage()
	for _, loop := range []bool{false, true} {
		label := "whole pipeline (ours)"
		if loop {
			label = "Tier-1 + DWT only (Meerwald)"
		}
		var base float64
		for _, n := range []int{1, 8} {
			cfg := core.DefaultConfig(n, lossyOpt())
			cfg.LoopParallel = loop
			res, err := core.Encode(img, cfg)
			must(err)
			sec := cellSeconds(res)
			if n == 1 {
				base = sec
			}
			t.AddRow(label, fmt.Sprint(n), f3(sec), f2(base/sec))
		}
	}
	return t
}

// AblateNUMA compares the uniform-bandwidth memory approximation used
// for the paper's figures against the per-chip NUMA model on the
// dual-chip blade.
func AblateNUMA(p Params) *Table {
	t := &Table{
		Title: "Ablation — QS20 memory model (uniform vs per-chip NUMA)",
		Note:  "NUMA serves each DMA from the chip owning its lines; remote commands cross the BIF (+100 cycles).",
		Cols:  []string{"memory model", "total (s)", "dwt (s)"},
	}
	img := p.DialImage()
	for _, numa := range []bool{false, true} {
		cfg := core.DefaultConfig(16, losslessOpt())
		cfg.Cell = cellQS20()
		cfg.Cell.NUMA = numa
		res, err := core.Encode(img, cfg)
		must(err)
		label := "uniform (paper figures)"
		if numa {
			label = "per-chip NUMA"
		}
		t.AddRow(label, f3(cellSeconds(res)), f3(cell.Seconds(res.StageCycles("dwt"))))
	}
	return t
}

func cellQS20() cell.Config { return cell.QS20Config(16, 2) }

// Ablations runs every ablation.
func Ablations(p Params) []*Table {
	return []*Table{
		AblateDWTFusion(p),
		AblateBuffering(p),
		AblateChunkWidth(p),
		AblateBlockSize(p),
		AblateWorkQueue(p),
		AblateFixedPoint(p),
		AblateLoopParallel(p),
		AblateNUMA(p),
	}
}

// AllExperiments runs the full evaluation.
func AllExperiments(p Params) []*Table {
	out := []*Table{Table1(), Fig4(p), Fig5(p), Fig6(p), Fig7(p), Fig8(p), Fig9(p)}
	return append(out, Ablations(p)...)
}
