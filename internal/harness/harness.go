// Package harness regenerates the paper's evaluation: Table 1 and
// Figures 4–9, plus the ablations for the design choices DESIGN.md
// calls out. Each experiment returns a Table whose rows carry both the
// modeled numbers and the paper-reported values they should be compared
// against (shape, not absolute cycles).
package harness

import (
	"fmt"
	"strings"

	"j2kcell/internal/imgmodel"
	"j2kcell/internal/workload"
)

// must aborts report generation on an impossible error.
// invariant: every encode/simulate in this package runs the repo's own
// deterministic synthetic workloads through known-good configurations;
// an error here means the codec or model is broken, and the report
// generators have no meaningful way to continue. No external input
// reaches these calls.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// Params sizes the workloads. The paper uses a 28.3 MB 3072×3072 RGB
// BMP for Figures 4, 5 and 9, and a 1920×1080 frame for the Muta
// comparison; Scale divides both (the modeled ratios are size-stable,
// so scaled runs reproduce the same shapes in less wall time).
type Params struct {
	W, H           int
	FrameW, FrameH int
	Seed           uint32
	Grain          float64
}

// DefaultParams returns the paper's workload divided by scale (1 =
// full size).
func DefaultParams(scale int) Params {
	if scale < 1 {
		scale = 1
	}
	return Params{
		W: 3072 / scale, H: 3072 / scale,
		FrameW: 1920 / scale, FrameH: 1080 / scale,
		Seed: 42, Grain: 5,
	}
}

// DialImage renders the watch-dial workload at the main size.
func (p Params) DialImage() *imgmodel.Image {
	return workload.Dial(p.W, p.H, p.Seed, p.Grain)
}

// FrameImage renders the video-frame workload for the Muta comparison.
func (p Params) FrameImage() *imgmodel.Image {
	return workload.Dial(p.FrameW, p.FrameH, p.Seed+1, p.Grain)
}

// Table is a printable experiment result.
type Table struct {
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Cols)
	total := len(t.Cols) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func f3(v float64) string  { return fmt.Sprintf("%.4g", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }
