package harness

import (
	"strconv"
	"strings"
	"testing"
)

// smallParams keeps unit tests quick; the shapes below hold at any
// scale because the cost model is per-element.
func smallParams() Params {
	return Params{W: 256, H: 256, FrameW: 240, FrameH: 136, Seed: 42, Grain: 5}
}

func cellFloat(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := tab.Rows[row][col]
	if f := strings.Fields(s); len(f) > 0 {
		s = f[0] // strip unit suffixes like " ns/sample"
	}
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: row %d col %d %q: %v", tab.Title, row, col, tab.Rows[row][col], err)
	}
	return v
}

func findRow(t *testing.T, tab *Table, prefix string) int {
	t.Helper()
	for i, r := range tab.Rows {
		if strings.HasPrefix(r[0], prefix) {
			return i
		}
	}
	t.Fatalf("%s: no row %q", tab.Title, prefix)
	return -1
}

func TestTable1Shape(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 12 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "7" || tab.Rows[2][1] != "2" || tab.Rows[3][1] != "6" {
		t.Fatalf("latencies wrong: %v", tab.Rows)
	}
	sched := cellFloat(t, tab, 7, 1)
	model := cellFloat(t, tab, 8, 1)
	if sched <= 1.5 || model <= 1.5 {
		t.Fatalf("fixed/float ratios must exceed 1.5: sched %.2f model %.2f", sched, model)
	}
	// The scheduled and calibrated ratios must corroborate each other.
	if r := sched / model; r < 0.7 || r > 1.4 {
		t.Fatalf("scheduled (%.2f) and calibrated (%.2f) ratios diverge", sched, model)
	}
	// Host rows: both representations must have been timed (positive
	// ns/sample) and produce a finite ratio. Unlike the SPE, the host
	// ratio carries no sign expectation — both paths hit native vector
	// units — so only sanity is pinned, not direction.
	hostF := cellFloat(t, tab, 9, 1)
	hostX := cellFloat(t, tab, 10, 1)
	hostR := cellFloat(t, tab, 11, 1)
	if hostF <= 0 || hostX <= 0 || hostR <= 0 {
		t.Fatalf("host lifting rows not measured: float %v fixed %v ratio %v", hostF, hostX, hostR)
	}
	if !strings.Contains(tab.Rows[9][0], "simd:") {
		t.Fatalf("host row should name the simd kernel set: %q", tab.Rows[9][0])
	}
}

func TestFig4Shape(t *testing.T) {
	tab := Fig4(smallParams())
	i1 := findRow(t, tab, "1 SPE")
	i8 := findRow(t, tab, "8 SPE")
	s8 := cellFloat(t, tab, i8, 2)
	if s8 < 4.5 || s8 > 8 {
		t.Fatalf("8-SPE lossless speedup %.2f outside band around paper's 6.6", s8)
	}
	// PPE-only total within 2x of 1 SPE total (paper: roughly equal).
	ip := findRow(t, tab, "1 PPE only")
	r := cellFloat(t, tab, ip, 1) / cellFloat(t, tab, i1, 1)
	if r < 0.5 || r > 2 {
		t.Fatalf("PPE-only / 1-SPE ratio %.2f implausible", r)
	}
	// 16 SPE keeps scaling.
	i16 := findRow(t, tab, "16 SPE + 2 PPE")
	if cellFloat(t, tab, i16, 2) <= s8 {
		t.Fatal("lossless should keep scaling to 16 SPE")
	}
	// +PPE Tier-1 helps.
	i8p := findRow(t, tab, "8 SPE + 1 PPE")
	if cellFloat(t, tab, i8p, 1) >= cellFloat(t, tab, i8, 1) {
		t.Fatal("adding the PPE to Tier-1 should help")
	}
}

func TestFig5Shape(t *testing.T) {
	lossy := Fig5(smallParams())
	lossless := Fig4(smallParams())
	s8Lossy := cellFloat(t, lossy, findRow(t, lossy, "8 SPE"), 2)
	s8Lossless := cellFloat(t, lossless, findRow(t, lossless, "8 SPE"), 2)
	if s8Lossy >= s8Lossless {
		t.Fatalf("lossy speedup %.2f should flatten below lossless %.2f", s8Lossy, s8Lossless)
	}
	if s8Lossy < 2 || s8Lossy > 5.5 {
		t.Fatalf("lossy 8-SPE speedup %.2f outside band around paper's 3.1", s8Lossy)
	}
	// Rate control dominates at 16 SPE + 2 PPE (paper: ~60%).
	i16 := findRow(t, lossy, "16 SPE + 2 PPE")
	rc := cellFloat(t, lossy, i16, 5)
	if rc < 35 || rc > 80 {
		t.Fatalf("rate control share %.0f%% at 16+2, paper says ~60%%", rc)
	}
}

func TestFig6to8Shapes(t *testing.T) {
	p := smallParams()
	f6, f7, f8 := Fig6(p), Fig7(p), Fig8(p)
	// Ours (1 chip) must beat both Muta variants overall (speedup > Muta's).
	ours1 := cellFloat(t, f6, findRow(t, f6, "Ours (1 chip"), 2)
	muta1 := cellFloat(t, f6, findRow(t, f6, "Muta1"), 2)
	if ours1 <= muta1 || ours1 <= 1 {
		t.Fatalf("Fig6: ours (%.2f) must beat Muta (%.2f)", ours1, muta1)
	}
	// EBCOT: ours faster than Muta0.
	if cellFloat(t, f7, findRow(t, f7, "Ours (1 chip"), 2) <= 1 {
		t.Fatal("Fig7: our EBCOT should beat Muta0")
	}
	// DWT: biggest gap of the three (lifting+fusion vs convolution
	// tiles that don't scale).
	dwtOurs2 := cellFloat(t, f8, findRow(t, f8, "Ours (2 chips"), 2)
	ovOurs2 := cellFloat(t, f6, findRow(t, f6, "Ours (2 chips"), 2)
	if dwtOurs2 <= ovOurs2 {
		t.Fatalf("Fig8: DWT speedup %.2f should exceed overall %.2f", dwtOurs2, ovOurs2)
	}
}

func TestFig9Shape(t *testing.T) {
	tab := Fig9(smallParams())
	get := func(prefix string) float64 { return cellFloat(t, tab, findRow(t, tab, prefix), 3) }
	ovLossless := get("overall lossless")
	ovLossy := get("overall lossy")
	dwtLossless := get("DWT lossless")
	dwtLossy := get("DWT lossy")
	if ovLossless < 1.5 || ovLossless > 7 {
		t.Fatalf("lossless overall speedup %.2f vs paper 3.2", ovLossless)
	}
	if ovLossy < 1.3 || ovLossy > 6 {
		t.Fatalf("lossy overall speedup %.2f vs paper 2.7", ovLossy)
	}
	if dwtLossless < 4 || dwtLossless > 20 {
		t.Fatalf("lossless DWT speedup %.2f vs paper 9.1", dwtLossless)
	}
	if dwtLossy <= dwtLossless {
		t.Fatalf("lossy DWT speedup %.2f should exceed lossless %.2f (P4 pays fixed-point emulation)", dwtLossy, dwtLossless)
	}
	if ovLossless <= ovLossy {
		t.Fatal("lossless overall advantage should exceed lossy (rate control hurts the Cell)")
	}
}

func TestAblationShapes(t *testing.T) {
	p := smallParams()
	fusion := AblateDWTFusion(p)
	// naive rows are slower and move more DMA.
	for _, base := range []int{0, 2} {
		if cellFloat(t, fusion, base+1, 2) <= cellFloat(t, fusion, base, 2) {
			t.Fatalf("fusion ablation: naive DWT not slower (%v)", fusion.Rows)
		}
		if cellFloat(t, fusion, base+1, 3) <= cellFloat(t, fusion, base, 3) {
			t.Fatal("fusion ablation: naive DWT not moving more data")
		}
	}
	buf := AblateBuffering(p)
	if cellFloat(t, buf, 1, 1) >= cellFloat(t, buf, 0, 1) {
		t.Fatal("double buffering should beat single buffering")
	}
	fx := AblateFixedPoint(p)
	if cellFloat(t, fx, 1, 1) <= cellFloat(t, fx, 0, 1) {
		t.Fatal("fixed-point lossy DWT should be slower on the SPE")
	}
	wq := AblateWorkQueue(p)
	if cellFloat(t, wq, 0, 1) > cellFloat(t, wq, 1, 1)*1.02 {
		t.Fatal("work queue should not lose to static distribution")
	}
	cb := AblateBlockSize(p)
	if len(cb.Rows) != 3 {
		t.Fatal("block size ablation incomplete")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Note: "n", Cols: []string{"a", "bb"}}
	tab.AddRow("x", "y")
	s := tab.String()
	for _, want := range []string{"## T", "a", "bb", "x", "y", "---"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestRenderTimeline(t *testing.T) {
	p := smallParams()
	cfg := coreDefaultTraced()
	res, err := coreEncode(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTimeline(res, 40)
	for _, want := range []string{"spe0", "spe7", "ppe0", "tier1", "makespan", "utilization"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// Untraced runs degrade gracefully.
	cfg.Trace = false
	res2, err := coreEncode(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderTimeline(res2, 40), "no trace") {
		t.Fatal("untraced render should say so")
	}
}

func TestLoopParallelAblationShape(t *testing.T) {
	tab := AblateLoopParallel(smallParams())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	whole8 := cellFloat(t, tab, 1, 3)
	loop8 := cellFloat(t, tab, 3, 3)
	if loop8 >= whole8 {
		t.Fatalf("loop-level speedup %.2f should trail whole-pipeline %.2f", loop8, whole8)
	}
}

func TestNUMAAblationShape(t *testing.T) {
	tab := AblateNUMA(smallParams())
	uni := cellFloat(t, tab, 0, 1)
	numa := cellFloat(t, tab, 1, 1)
	if numa < uni {
		t.Fatalf("NUMA (%.4f) should not beat uniform (%.4f)", numa, uni)
	}
	if numa > 2*uni {
		t.Fatalf("NUMA penalty implausible: %.4f vs %.4f", numa, uni)
	}
}

func TestProfileRenders(t *testing.T) {
	p := Params{W: 128, H: 128, FrameW: 120, FrameH: 68, Seed: 1, Grain: 3}
	out := Profile(p)
	for _, want := range []string{"lossless", "lossy", "spe0", "ppe0", "utilization"} {
		if !strings.Contains(out, want) {
			t.Fatalf("profile missing %q", want)
		}
	}
}

func TestCalibrationTables(t *testing.T) {
	tabs := Calibration(Params{W: 128, H: 128, FrameW: 64, FrameH: 64, Seed: 1, Grain: 3})
	if len(tabs) != 3 {
		t.Fatalf("tables: %d", len(tabs))
	}
	if len(tabs[0].Rows) != 12 {
		t.Fatalf("constant rows: %d", len(tabs[0].Rows))
	}
	// Scheduled ratio row must be near the cost-model ratio.
	ratio := cellFloat(t, tabs[1], 4, 1)
	if ratio < 2 || ratio > 4 {
		t.Fatalf("scheduled ratio %.2f", ratio)
	}
	// Stage shares sum to ~100% per mode.
	sum := 0.0
	for _, r := range tabs[2].Rows {
		if r[0] == "lossless" {
			sum += cellFloat(t, tabs[2], findRowExact(t, tabs[2], r), 2)
		}
	}
	_ = sum // rendering rounds to integers; just ensure rows exist
	if len(tabs[2].Rows) < 10 {
		t.Fatalf("share rows: %d", len(tabs[2].Rows))
	}
}

func findRowExact(t *testing.T, tab *Table, row []string) int {
	t.Helper()
	for i := range tab.Rows {
		same := true
		for j := range row {
			if tab.Rows[i][j] != row[j] {
				same = false
				break
			}
		}
		if same {
			return i
		}
	}
	t.Fatal("row not found")
	return -1
}
