package harness

import (
	"fmt"
	"testing"

	"j2kcell/internal/baseline"
	"j2kcell/internal/cell"
	"j2kcell/internal/codec"
	"j2kcell/internal/core"
	"j2kcell/internal/dwt"
	"j2kcell/internal/imgmodel"
	"j2kcell/internal/simd"
	"j2kcell/internal/spu"
)

// losslessOpt and lossyOpt are the paper's two encoder configurations:
// JasPer defaults (reversible) and `-O mode=real -O rate=0.1`.
func losslessOpt() codec.Options { return codec.Options{Lossless: true} }
func lossyOpt() codec.Options    { return codec.Options{Lossless: false, Rate: 0.1} }

// cellSeconds converts a modeled cycle count to seconds at 3.2 GHz.
func cellSeconds(res *core.Result) float64 { return cell.Seconds(res.Cycles) }

// Table1 reports the SPE instruction latencies and the fixed-vs-float
// consequence of Section 4.
func Table1() *Table {
	t := &Table{
		Title: "Table 1 — SPE instruction latencies and the fixed-point penalty",
		Note:  "Paper: mpyh 7, mpyu 7, a 2, fm 6 cycles; hence JasPer's fixed-point 9/7 loses to float on the SPE.",
		Cols:  []string{"instruction", "latency (cycles)", "notes"},
	}
	t.AddRow("mpyh", fmt.Sprint(cell.LatMpyh), "two-byte integer multiply high")
	t.AddRow("mpyu", fmt.Sprint(cell.LatMpyu), "two-byte integer multiply unsigned")
	t.AddRow("a", fmt.Sprint(cell.LatA), "add word")
	t.AddRow("fm", fmt.Sprint(cell.LatFm), "single-precision float multiply")
	t.AddRow("int32 multiply (emulated)", fmt.Sprint(cell.FixedMul32Latency),
		fmt.Sprintf("%d instructions: 2xmpyh + mpyu + 2 adds (latency from the spu pipeline model)", cell.FixedMul32Instrs))
	t.AddRow("int32 multiply throughput", f2(spu.CyclesPer(spu.Mul32Kernel, 64)),
		"even-pipe cycles per vector multiply, dual-issue scheduled")
	t.AddRow("float multiply throughput", f2(spu.CyclesPer(spu.FloatMulKernel, 64)),
		"one fm per cycle when independent")
	schedRatio := spu.CyclesPer(spu.Lift97FixedKernel, 128) / spu.CyclesPer(spu.Lift97FloatKernel, 128)
	t.AddRow("9/7 lifting, fixed vs float (scheduled)", f2(schedRatio),
		"pipeline-model cycles/vector ratio of the lifting inner loop")
	t.AddRow("9/7 kernel, fixed vs float (cost model)", f2(cell.SPECosts.DWT97Fix/cell.SPECosts.DWT97),
		"calibrated cycles/sample ratio used by the encoder model")
	fNs, xNs := hostLiftNs()
	kern := simd.Kernel()
	t.AddRow(fmt.Sprintf("host 9/7 lift row, float (simd:%s)", kern),
		fmt.Sprintf("%s ns/sample", f2(fNs)), "measured on this machine via dwt.Lift97")
	t.AddRow(fmt.Sprintf("host 9/7 lift row, Q13 fixed (simd:%s)", kern),
		fmt.Sprintf("%s ns/sample", f2(xNs)), "measured on this machine via dwt.Lift97Fixed")
	t.AddRow("host 9/7 lifting, fixed vs float", f2(xNs/fNs),
		"this machine's counterpart of the SPE ratio above")
	return t
}

// hostLiftNs wall-clocks one 9/7 lifting row step on the host in both
// representations (float32 and JasPer's Q13 fixed point), through
// whatever simd kernel set is active. It is the x86 counterpart of the
// paper's Section 4 measurement: on the SPE the emulated 32-bit
// integer multiply makes fixed point lose; here both go through native
// vector units, so the ratio shows what the SPE argument looks like on
// a machine without the mpyh penalty.
func hostLiftNs() (floatNs, fixedNs float64) {
	const n = 4096
	df := make([]float32, n)
	ef0 := make([]float32, n)
	ef1 := make([]float32, n)
	dx := make([]int32, n)
	ex0 := make([]int32, n)
	ex1 := make([]int32, n)
	for i := 0; i < n; i++ {
		v := float32(i%255) - 127
		df[i], ef0[i], ef1[i] = v, v+1, v-1
		dx[i], ex0[i], ex1[i] = dwt.ToFixed(int32(i%255)-127), int32(i%511), -int32(i%257)
	}
	rf := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dwt.Lift97(df, ef0, ef1, float32(dwt.Alpha97))
		}
	})
	rx := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dwt.Lift97Fixed(dx, ex0, ex1, -12994)
		}
	})
	return float64(rf.NsPerOp()) / n, float64(rx.NsPerOp()) / n
}

// sweepConfig describes one bar of Figures 4/5.
type sweepConfig struct {
	label string
	cfg   core.Config
}

func scalingConfigs(opt codec.Options) []sweepConfig {
	mk := func(label string, nspe, chips, nppe int, ppet1 bool) sweepConfig {
		cfg := core.DefaultConfig(nspe, opt)
		cfg.Cell.Chips = chips
		cfg.Cell.PPEThreads = nppe
		cfg.PPET1 = ppet1
		return sweepConfig{label, cfg}
	}
	return []sweepConfig{
		mk("1 PPE only", 0, 1, 1, true),
		mk("1 SPE", 1, 1, 1, false),
		mk("2 SPE", 2, 1, 1, false),
		mk("4 SPE", 4, 1, 1, false),
		mk("8 SPE", 8, 1, 1, false),
		mk("8 SPE + 1 PPE", 8, 1, 1, true),
		mk("16 SPE", 16, 2, 1, false),
		mk("16 SPE + 2 PPE", 16, 2, 2, true),
	}
}

// scalingFigure runs the Figure 4/5 sweep for one coding mode.
func scalingFigure(img *imgmodel.Image, opt codec.Options, title, paperNote string) *Table {
	t := &Table{
		Title: title,
		Note:  paperNote,
		Cols:  []string{"config", "time (s)", "speedup vs 1 SPE", "tier1 (s)", "dwt (s)", "rate ctl share"},
	}
	var base float64
	for _, sc := range scalingConfigs(opt) {
		res, err := core.Encode(img, sc.cfg)
		must(err)
		total := cellSeconds(res)
		if sc.label == "1 SPE" {
			base = total
		}
		sp := "-"
		if base > 0 {
			sp = f2(base / total)
		}
		rc := float64(res.StageCycles("ratecontrol")) / float64(res.Cycles)
		t.AddRow(sc.label, f3(total), sp,
			f3(cell.Seconds(res.StageCycles("tier1"))),
			f3(cell.Seconds(res.StageCycles("dwt"))),
			pct(rc))
	}
	return t
}

// Fig4 is the lossless scaling figure.
func Fig4(p Params) *Table {
	return scalingFigure(p.DialImage(), losslessOpt(),
		fmt.Sprintf("Figure 4 — lossless encoding time and speedup (%dx%d dial)", p.W, p.H),
		"Paper: 6.6x at 8 SPE vs 1 SPE; near-linear Tier-1 scaling; extra speedup from +PPE threads; scales to 16 SPE.")
}

// Fig5 is the lossy scaling figure.
func Fig5(p Params) *Table {
	return scalingFigure(p.DialImage(), lossyOpt(),
		fmt.Sprintf("Figure 5 — lossy (rate 0.1) encoding time and speedup (%dx%d dial)", p.W, p.H),
		"Paper: 3.1x at 8 SPE vs 1 SPE; flattens — sequential rate control is ~60% of total at 16 SPE + 2 PPE.")
}

// mutaComparison computes the four bars shared by Figures 6-8.
type mutaBars struct {
	muta0, muta1   baseline.MutaResult
	ours1, ours2   *core.Result
	ours1s, ours2s float64
}

func runMutaComparison(img *imgmodel.Image) mutaBars {
	var b mutaBars
	_, m8, err := baseline.EncodeMuta(img, 8, baseline.MutaClockHz)
	must(err)
	// Muta0: two frames in flight on two chips; per-frame latency is a
	// single chip's, reported time is halved throughput-wise (the paper
	// notes the per-frame time can be up to 2x the reported number).
	b.muta0 = m8
	b.muta0.DWT /= 2
	b.muta0.EBCOT /= 2
	b.muta0.Other /= 2
	_, b.muta1, err = baseline.EncodeMuta(img, 16, baseline.MutaClockHz)
	must(err)
	cfg1 := core.DefaultConfig(8, losslessOpt())
	cfg1.PPET1 = true // the paper's design codes Tier-1 on PPE + SPEs
	b.ours1, err = core.Encode(img, cfg1)
	must(err)
	cfg2 := core.DefaultConfig(16, losslessOpt())
	cfg2.Cell = cell.QS20Config(16, 2)
	cfg2.PPET1 = true
	b.ours2, err = core.Encode(img, cfg2)
	must(err)
	b.ours1s = cellSeconds(b.ours1)
	b.ours2s = cellSeconds(b.ours2)
	return b
}

// Fig6 compares overall per-frame encoding time with Muta0/Muta1.
func Fig6(p Params) *Table {
	img := p.FrameImage()
	b := runMutaComparison(img)
	t := &Table{
		Title: fmt.Sprintf("Figure 6 — overall comparison with Muta et al. (%dx%d lossless frame)", p.FrameW, p.FrameH),
		Note:  "Paper: our 1-chip encoder beats their 2-chip encoder; numbers are speedup relative to Muta0.",
		Cols:  []string{"system", "time (s)", "speedup vs Muta0"},
	}
	ref := b.muta0.Total()
	t.AddRow("Muta0 (2 chips, 2 frames in flight)", f3(ref), f2(1))
	t.AddRow("Muta1 (2 chips, 1 frame)", f3(b.muta1.Total()), f2(ref/b.muta1.Total()))
	t.AddRow("Ours (1 chip: 8 SPE + 1 PPE)", f3(b.ours1s), f2(ref/b.ours1s))
	t.AddRow("Ours (2 chips: 16 SPE + 2 PPE)", f3(b.ours2s), f2(ref/b.ours2s))
	return t
}

// Fig7 compares the EBCOT (Tier-1 + Tier-2) portion.
func Fig7(p Params) *Table {
	img := p.FrameImage()
	b := runMutaComparison(img)
	ours1 := cell.Seconds(b.ours1.StageCycles("tier1") + b.ours1.StageCycles("tier2+io"))
	ours2 := cell.Seconds(b.ours2.StageCycles("tier1") + b.ours2.StageCycles("tier2+io"))
	t := &Table{
		Title: fmt.Sprintf("Figure 7 — EBCOT (Tier-1 + Tier-2) comparison with Muta et al. (%dx%d)", p.FrameW, p.FrameH),
		Note:  "Paper: higher EBCOT scalability from 64x64 blocks and minimized PPE/SPE interaction.",
		Cols:  []string{"system", "EBCOT time (s)", "speedup vs Muta0"},
	}
	ref := b.muta0.EBCOT
	t.AddRow("Muta0", f3(ref), f2(1))
	t.AddRow("Muta1", f3(b.muta1.EBCOT), f2(ref/b.muta1.EBCOT))
	t.AddRow("Ours (1 chip)", f3(ours1), f2(ref/ours1))
	t.AddRow("Ours (2 chips)", f3(ours2), f2(ref/ours2))
	return t
}

// Fig8 compares the DWT portion.
func Fig8(p Params) *Table {
	img := p.FrameImage()
	b := runMutaComparison(img)
	ours1 := cell.Seconds(b.ours1.StageCycles("dwt"))
	ours2 := cell.Seconds(b.ours2.StageCycles("dwt"))
	t := &Table{
		Title: fmt.Sprintf("Figure 8 — DWT comparison with Muta et al. (%dx%d)", p.FrameW, p.FrameH),
		Note:  "Paper: lifting + decomposition scheme + loop interleaving vs convolution on overlapping tiles.",
		Cols:  []string{"system", "DWT time (s)", "speedup vs Muta0"},
	}
	ref := b.muta0.DWT
	t.AddRow("Muta0", f3(ref), f2(1))
	t.AddRow("Muta1", f3(b.muta1.DWT), f2(ref/b.muta1.DWT))
	t.AddRow("Ours (1 chip)", f3(ours1), f2(ref/ours1))
	t.AddRow("Ours (2 chips)", f3(ours2), f2(ref/ours2))
	return t
}

// Fig9 compares the Cell (8 SPE + 1 PPE) against the Pentium IV model.
func Fig9(p Params) *Table {
	img := p.DialImage()
	t := &Table{
		Title: fmt.Sprintf("Figure 9 — Cell/B.E. vs Pentium IV 3.2 GHz (%dx%d dial)", p.W, p.H),
		Note:  "Paper: overall 3.2x (lossless) / 2.7x (lossy); DWT 9.1x / 15x.",
		Cols:  []string{"metric", "Pentium IV (s)", "Cell 8 SPE (s)", "speedup", "paper"},
	}
	for _, mode := range []struct {
		label string
		opt   codec.Options
		ovP   string
		dwtP  string
	}{
		{"lossless", losslessOpt(), "3.2", "9.1"},
		{"lossy rate 0.1", lossyOpt(), "2.7", "15"},
	} {
		_, p4, err := baseline.EncodePentium(img, mode.opt)
		must(err)
		res, err := core.Encode(img, core.DefaultConfig(8, mode.opt))
		must(err)
		total := cellSeconds(res)
		dwt := cell.Seconds(res.StageCycles("dwt"))
		t.AddRow("overall "+mode.label, f3(p4.Total()), f3(total), f2(p4.Total()/total), mode.ovP)
		t.AddRow("DWT "+mode.label, f3(p4.DWT), f3(dwt), f2(p4.DWT/dwt), mode.dwtP)
	}
	return t
}
