package harness

import (
	"fmt"

	"j2kcell/internal/cell"
	"j2kcell/internal/codec"
	"j2kcell/internal/core"
	"j2kcell/internal/spu"
)

// Calibration dumps the cost model with the cross-checks that anchor
// it: the spu pipeline schedules behind the DWT constants, and the
// 1-SPE stage shares the per-kernel constants are tuned to produce
// (DESIGN.md §9). Run via `cellbench -exp calib`.
func Calibration(p Params) []*Table {
	consts := &Table{
		Title: "Calibration — kernel cost constants (cycles per element)",
		Note:  "SPE constants assume 4-lane SIMD with dual-issue; PPE constants are scalar with cache behaviour folded in.",
		Cols:  []string{"kernel", "SPE", "PPE", "anchor"},
	}
	rows := []struct {
		name     string
		spe, ppe float64
		anchor   string
	}{
		{"read/convert", cell.SPECosts.ReadConv, cell.PPECosts.ReadConv, "streaming int conversion"},
		{"level shift + MCT", cell.SPECosts.ShiftMCT, cell.PPECosts.ShiftMCT, "~6 int ops/sample / 4 lanes"},
		{"DWT 5/3 (per direction/level)", cell.SPECosts.DWT53, cell.PPECosts.DWT53, "8 ops/sample / 4 lanes + shuffles"},
		{"DWT 9/7 float", cell.SPECosts.DWT97, cell.PPECosts.DWT97, "spu: lifting loop schedules at ~4 cyc/vector"},
		{"DWT 9/7 fixed (JasPer)", cell.SPECosts.DWT97Fix, cell.PPECosts.DWT97Fix, "spu: fixed lifting ~11 cyc/vector (ratio below)"},
		{"DWT convolution (Muta)", cell.SPECosts.DWTConv, cell.PPECosts.DWTConv, "9+7 taps vs ~5 lifting ops"},
		{"quantization", cell.SPECosts.Quant, cell.PPECosts.Quant, "1 mul + cmp per sample"},
		{"Tier-1 per scanned coeff", cell.SPECosts.T1Scan, cell.PPECosts.T1Scan, "branchy scan; SPE has no predictor"},
		{"Tier-1 per coded decision", cell.SPECosts.T1Visit, cell.PPECosts.T1Visit, "PPE ≈ 1.7x faster (paper §5.1)"},
		{"Tier-2 per body byte", cell.SPECosts.T2Byte, cell.PPECosts.T2Byte, "packet assembly"},
		{"rate control per pass", cell.SPECosts.RCPass, cell.PPECosts.RCPass, "JasPer λ-search re-scans all passes ~100x"},
		{"stream I/O per byte", cell.SPECosts.IOByte, cell.PPECosts.IOByte, "sequential read/write"},
	}
	for _, r := range rows {
		consts.AddRow(r.name, f2(r.spe), f2(r.ppe), r.anchor)
	}

	sched := &Table{
		Title: "Calibration — SPU pipeline cross-checks",
		Cols:  []string{"kernel (scheduled)", "cycles", "notes"},
	}
	sched.AddRow("float multiply", f2(spu.CyclesPer(spu.FloatMulKernel, 64)), "per vector, independent stream")
	sched.AddRow("int32 multiply (emulated)", f2(spu.CyclesPer(spu.Mul32Kernel, 64)), "5 even-pipe slots each")
	fl := spu.CyclesPer(spu.Lift97FloatKernel, 128)
	fx := spu.CyclesPer(spu.Lift97FixedKernel, 128)
	sched.AddRow("9/7 lifting step, float", f2(fl), "fa+fma with load/store dual-issued")
	sched.AddRow("9/7 lifting step, fixed", f2(fx), "multiply emulation dominates the even pipe")
	sched.AddRow("fixed/float ratio", f2(fx/fl),
		fmt.Sprintf("cost model uses %.2f", cell.SPECosts.DWT97Fix/cell.SPECosts.DWT97))

	shares := &Table{
		Title: fmt.Sprintf("Calibration — 1-SPE stage shares (%dx%d dial)", p.W, p.H),
		Note:  "The shares the constants are tuned to produce; compare DESIGN.md §9 and the paper's §5.1 narrative.",
		Cols:  []string{"mode", "stage", "share"},
	}
	for _, mode := range []struct {
		name string
		opt  codec.Options
	}{{"lossless", losslessOpt()}, {"lossy 0.1", lossyOpt()}} {
		res, err := core.Encode(p.DialImage(), core.DefaultConfig(1, mode.opt))
		must(err)
		for _, st := range res.Stages {
			shares.AddRow(mode.name, st.Name, pct(float64(st.Cycles)/float64(res.Cycles)))
		}
	}
	return []*Table{consts, sched, shares}
}
