package harness

import (
	"fmt"
	"io"
	"strings"

	"j2kcell/internal/cell"
	"j2kcell/internal/codec"
	"j2kcell/internal/core"
	"j2kcell/internal/obs"
	"j2kcell/internal/sim"
)

// RenderTimeline draws a text Gantt of a traced run: one lane per
// processing element, `cols` buckets across the makespan, each bucket
// shaded by the PE's busy fraction in that window, with stage
// boundaries marked underneath.
func RenderTimeline(res *core.Result, cols int) string {
	if res.Trace == nil {
		return "(no trace: set Config.Trace)\n"
	}
	if cols < 10 {
		cols = 10
	}
	shades := []rune{'·', '░', '▒', '▓', '█'}
	var b strings.Builder
	total := res.Cycles
	spans := res.Trace.TSpans()
	lane := func(pe string) {
		fmt.Fprintf(&b, "%-6s ", pe)
		for c := 0; c < cols; c++ {
			a := sim.Time(int64(total) * int64(c) / int64(cols))
			z := sim.Time(int64(total) * int64(c+1) / int64(cols))
			if z == a {
				z = a + 1
			}
			busy := float64(obs.BusyInWindow(spans, pe, int64(a), int64(z))) / float64(z-a)
			idx := int(busy * float64(len(shades)))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteRune(shades[idx])
		}
		b.WriteByte('\n')
	}
	for i := range res.SPEBusy {
		lane(fmt.Sprintf("spe%d", i))
	}
	for i := range res.PPEBusy {
		lane(fmt.Sprintf("ppe%d", i))
	}
	// Stage boundary ruler.
	ruler := make([]rune, cols)
	for i := range ruler {
		ruler[i] = ' '
	}
	acc := sim.Time(0)
	for _, st := range res.Stages[:len(res.Stages)-1] {
		acc += st.Cycles
		pos := int(int64(acc) * int64(cols) / int64(total))
		if pos >= 0 && pos < cols {
			ruler[pos] = '|'
		}
	}
	fmt.Fprintf(&b, "%-6s %s\n", "stage", string(ruler))
	var names []string
	for _, st := range res.Stages {
		names = append(names, fmt.Sprintf("%s %.0f%%", st.Name, 100*float64(st.Cycles)/float64(total)))
	}
	fmt.Fprintf(&b, "       %s\n", strings.Join(names, " | "))
	fmt.Fprintf(&b, "       makespan %.4g ms, chip utilization %.0f%%\n",
		1e3*cell.Seconds(total), 100*res.Utilization())
	return b.String()
}

// Profile runs a traced 8-SPE lossless encode and renders its timeline
// — the chip-utilization view behind the paper's "enhance the overall
// chip utilization" design argument.
func Profile(p Params) string {
	img := p.DialImage()
	var b strings.Builder
	for _, mode := range []struct {
		name string
		opt  codec.Options
	}{{"lossless", losslessOpt()}, {"lossy rate 0.1", lossyOpt()}} {
		cfg := core.DefaultConfig(8, mode.opt)
		cfg.Trace = true
		cfg.PPET1 = true
		res, err := core.Encode(img, cfg)
		must(err)
		fmt.Fprintf(&b, "## Execution profile — %s, 8 SPE + 1 PPE (%dx%d dial)\n",
			mode.name, p.W, p.H)
		b.WriteString(RenderTimeline(res, 96))
		b.WriteByte('\n')
	}
	return b.String()
}

// TracedRun executes one traced 8-SPE + PPE lossless encode of the
// dial workload — the same run Profile renders — and returns the raw
// result so callers can export its timeline (WriteSimTrace).
func TracedRun(p Params) (*core.Result, error) {
	cfg := core.DefaultConfig(8, losslessOpt())
	cfg.Trace = true
	cfg.PPET1 = true
	return core.Encode(p.DialImage(), cfg)
}

// WriteSimTrace exports a traced simulator run as Chrome trace JSON:
// one thread per modeled PE, spans named by pipeline phase, model
// cycles rescaled to wall-clock nanoseconds at the 3.2 GHz design
// frequency. Loads in chrome://tracing / Perfetto alongside native
// encoder traces.
func WriteSimTrace(w io.Writer, res *core.Result) error {
	if res.Trace == nil {
		return fmt.Errorf("harness: no trace recorded (set Config.Trace)")
	}
	counters := map[string]int64{
		"cycles":          int64(res.Cycles),
		"mem_total_bytes": res.MemBytes,
	}
	return obs.WriteChromeTrace(w, res.Trace.TSpansNS(), counters)
}

// coreDefaultTraced and coreEncode are small test seams.
func coreDefaultTraced() core.Config {
	cfg := core.DefaultConfig(8, losslessOpt())
	cfg.Trace = true
	return cfg
}

func coreEncode(p Params, cfg core.Config) (*core.Result, error) {
	return core.Encode(p.DialImage(), cfg)
}
