// Package decomp implements the paper's data decomposition scheme
// (Section 2, Figure 1) for two-dimensional arrays of 4-byte words.
//
// Every row is padded so that it starts cache-line (128-byte) aligned in
// simulated main memory. The array is then partitioned into column
// chunks: every chunk except the last has a width that is a multiple of
// the cache line; all chunks span the full height. Constant-width
// chunks are distributed to the SPEs and the arbitrary-width remainder
// chunk is processed by the PPE. An SPE traverses its chunk row by row,
// so one row of one chunk is the unit of DMA transfer and computation —
// always aligned, always a line multiple, with a Local Store footprint
// that is constant regardless of image size.
package decomp

import (
	"fmt"

	"j2kcell/internal/cell"
	"j2kcell/internal/sim"
)

// WordsPerLine is the number of 4-byte words in one 128-byte cache line.
const WordsPerLine = cell.CacheLine / 4

// Array is a height×width array of words stored row-major with a
// stride padded to a whole number of cache lines, at a line-aligned
// effective address when allocated on a Machine.
type Array[T cell.Word] struct {
	Data   []T
	W, H   int
	Stride int   // words per row including padding; multiple of 32
	EA     int64 // effective address of Data[0]; 128-byte aligned
}

// PadStride rounds a width in words up to a whole number of cache lines.
func PadStride(w int) int {
	return (w + WordsPerLine - 1) / WordsPerLine * WordsPerLine
}

// NewArray allocates a w×h array in m's simulated main memory with
// padded rows, implementing the row-padding step of the scheme.
func NewArray[T cell.Word](m *cell.Machine, w, h int) *Array[T] {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("decomp: invalid array size %dx%d", w, h))
	}
	stride := PadStride(w)
	return &Array[T]{
		Data:   make([]T, stride*h),
		W:      w,
		H:      h,
		Stride: stride,
		EA:     m.AllocEA(int64(4*stride*h), cell.CacheLine),
	}
}

// NewLocalArray allocates an array with padded rows but no simulated
// address, for use by the sequential reference codec.
func NewLocalArray[T cell.Word](w, h int) *Array[T] {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("decomp: invalid array size %dx%d", w, h))
	}
	stride := PadStride(w)
	return &Array[T]{Data: make([]T, stride*h), W: w, H: h, Stride: stride}
}

// Row returns the live row r restricted to the array's width.
func (a *Array[T]) Row(r int) []T { return a.Data[r*a.Stride : r*a.Stride+a.W] }

// PaddedRow returns the live row r including its padding words.
func (a *Array[T]) PaddedRow(r int) []T { return a.Data[r*a.Stride : (r+1)*a.Stride] }

// RowEA returns the effective address of row r — always line-aligned.
func (a *Array[T]) RowEA(r int) int64 { return a.EA + int64(4*r*a.Stride) }

// At returns the element at row r, column c.
func (a *Array[T]) At(r, c int) T { return a.Data[r*a.Stride+c] }

// Set stores v at row r, column c.
func (a *Array[T]) Set(r, c int, v T) { a.Data[r*a.Stride+c] = v }

// PPEChunk marks a chunk assigned to the PPE.
const PPEChunk = -1

// Chunk is one unit of data distribution: columns [X0, X0+W) over the
// full array height, assigned to processing element PE (an SPE index,
// or PPEChunk for the remainder chunk).
type Chunk struct {
	X0, W int
	PE    int
}

// Aligned reports whether the chunk starts and sizes on cache-line
// boundaries (true for every SPE chunk produced by Partition).
func (c Chunk) Aligned() bool {
	return c.X0%WordsPerLine == 0 && c.W%WordsPerLine == 0
}

// Partition splits a width (in words) into constant-width chunks of
// chunkW words (a multiple of the cache line) distributed round-robin
// over nSPE SPEs, plus at most one remainder chunk for the PPE. With
// nSPE == 0 the whole width goes to the PPE.
func Partition(width, chunkW, nSPE int) []Chunk {
	if width <= 0 {
		panic("decomp: Partition of non-positive width")
	}
	if nSPE == 0 {
		return []Chunk{{X0: 0, W: width, PE: PPEChunk}}
	}
	if chunkW <= 0 || chunkW%WordsPerLine != 0 {
		panic(fmt.Sprintf("decomp: chunk width %d is not a multiple of %d words", chunkW, WordsPerLine))
	}
	var chunks []Chunk
	n := width / chunkW
	for i := 0; i < n; i++ {
		chunks = append(chunks, Chunk{X0: i * chunkW, W: chunkW, PE: i % nSPE})
	}
	if rem := width - n*chunkW; rem > 0 {
		chunks = append(chunks, Chunk{X0: n * chunkW, W: rem, PE: PPEChunk})
	}
	return chunks
}

// ChunkWidthFor picks a chunk width (in words) that gives each of the
// nSPE SPEs roughly equal work while staying a multiple of the cache
// line, mirroring the paper's tuning of the column-group size. It never
// returns less than one cache line.
func ChunkWidthFor(width, nSPE int) int {
	if nSPE <= 0 {
		return PadStride(width)
	}
	per := width / nSPE
	cw := per / WordsPerLine * WordsPerLine
	if cw < WordsPerLine {
		cw = WordsPerLine
	}
	return cw
}

// ForPE returns the chunks assigned to processing element pe.
func ForPE(chunks []Chunk, pe int) []Chunk {
	var out []Chunk
	for _, c := range chunks {
		if c.PE == pe {
			out = append(out, c)
		}
	}
	return out
}

// StreamRows runs a pixel-wise kernel over every row of chunk ch of src,
// writing results to the same rows/columns of dst, as an SPE would: one
// padded-width row segment per DMA get, the kernel, then a DMA put.
// depth selects the buffering level (1 = no overlap, 2 = double
// buffering, ...); the Local Store cost is depth×2 row segments
// regardless of array size — the constant-footprint property of the
// scheme. cyclesPerElem is charged to the SPE for each processed word.
//
// src and dst must have identical geometry (in-place streaming, with
// dst == src, is allowed).
func StreamRows[T cell.Word](p *sim.Proc, spe *cell.SPE, src, dst *Array[T], ch Chunk, depth int, cyclesPerElem float64, fn func(row int, buf []T)) {
	if src.W != dst.W || src.H != dst.H || src.Stride != dst.Stride {
		panic("decomp: StreamRows geometry mismatch")
	}
	if !ch.Aligned() {
		panic("decomp: StreamRows requires an aligned chunk; the PPE handles the remainder")
	}
	if depth < 1 {
		depth = 1
	}
	w := ch.W
	in := make([][]T, depth)
	out := make([][]T, depth)
	inLSA := make([]int64, depth)
	outLSA := make([]int64, depth)
	for i := 0; i < depth; i++ {
		in[i], inLSA[i] = cell.AllocLS[T](spe.LS, w)
		out[i], outLSA[i] = cell.AllocLS[T](spe.LS, w)
	}
	gets := make([]*sim.Completion, depth)
	puts := make([]*sim.Completion, depth)

	srcSeg := func(r int) ([]T, int64) {
		off := r*src.Stride + ch.X0
		return src.Data[off : off+w], src.EA + int64(4*off)
	}
	dstSeg := func(r int) ([]T, int64) {
		off := r*dst.Stride + ch.X0
		return dst.Data[off : off+w], dst.EA + int64(4*off)
	}

	prefetch := func(r int) {
		b := r % depth
		if puts[b] != nil {
			p.WaitFor(puts[b]) // buffer still being written back
		}
		seg, ea := srcSeg(r)
		gets[b] = cell.GetAsync(p, spe, in[b], inLSA[b], seg, ea)
	}

	for r := 0; r < depth && r < src.H; r++ {
		prefetch(r)
	}
	for r := 0; r < src.H; r++ {
		b := r % depth
		p.WaitFor(gets[b])
		copy(out[b], in[b])
		fn(r, out[b])
		spe.Compute(p, cell.Cycles(cyclesPerElem, w))
		seg, ea := dstSeg(r)
		puts[b] = cell.PutAsync(p, spe, seg, ea, out[b], outLSA[b])
		if r+depth < src.H {
			prefetch(r + depth)
		}
	}
	spe.WaitAll(p)
}

// PPERows runs the same pixel-wise kernel over a (remainder) chunk on
// the PPE: direct cached access, cost charged per element, traffic
// streamed through the shared memory interface.
func PPERows[T cell.Word](p *sim.Proc, ppe *cell.PPE, src, dst *Array[T], ch Chunk, cyclesPerElem float64, fn func(row int, buf []T)) {
	if src.W != dst.W || src.H != dst.H || src.Stride != dst.Stride {
		panic("decomp: PPERows geometry mismatch")
	}
	tmp := make([]T, ch.W)
	for r := 0; r < src.H; r++ {
		off := r*src.Stride + ch.X0
		copy(tmp, src.Data[off:off+ch.W])
		fn(r, tmp)
		copy(dst.Data[r*dst.Stride+ch.X0:], tmp)
	}
	// Charge time once for the whole walk: read + write traffic and
	// per-element compute.
	ppe.Touch(p, int64(8*ch.W*src.H))
	ppe.Compute(p, cell.Cycles(cyclesPerElem, ch.W*src.H))
}
