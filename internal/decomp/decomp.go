// Package decomp implements the paper's data decomposition scheme
// (Section 2, Figure 1) for two-dimensional arrays of 4-byte words.
//
// Every row is padded so that it starts cache-line (128-byte) aligned in
// simulated main memory. The array is then partitioned into column
// chunks: every chunk except the last has a width that is a multiple of
// the cache line; all chunks span the full height. Constant-width
// chunks are distributed to the SPEs and the arbitrary-width remainder
// chunk is processed by the PPE. An SPE traverses its chunk row by row,
// so one row of one chunk is the unit of DMA transfer and computation —
// always aligned, always a line multiple, with a Local Store footprint
// that is constant regardless of image size.
package decomp

import (
	"fmt"

	"j2kcell/internal/cell"
	"j2kcell/internal/sim"
)

// Keep the machine-free WordsPerLine (geometry.go) in lock step with
// the simulated cache line: both array bounds are zero-length exactly
// when WordsPerLine == cell.CacheLine/4.
var (
	_ [WordsPerLine - cell.CacheLine/4]struct{}
	_ [cell.CacheLine/4 - WordsPerLine]struct{}
)

// Array is a height×width array of words stored row-major with a
// stride padded to a whole number of cache lines, at a line-aligned
// effective address when allocated on a Machine.
type Array[T cell.Word] struct {
	Data   []T
	W, H   int
	Stride int   // words per row including padding; multiple of 32
	EA     int64 // effective address of Data[0]; 128-byte aligned
}

// NewArray allocates a w×h array in m's simulated main memory with
// padded rows, implementing the row-padding step of the scheme.
func NewArray[T cell.Word](m *cell.Machine, w, h int) *Array[T] {
	// invariant: array geometry comes from validated image dimensions.
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("decomp: invalid array size %dx%d", w, h))
	}
	stride := PadStride(w)
	return &Array[T]{
		Data:   make([]T, stride*h),
		W:      w,
		H:      h,
		Stride: stride,
		EA:     m.AllocEA(int64(4*stride*h), cell.CacheLine),
	}
}

// NewLocalArray allocates an array with padded rows but no simulated
// address, for use by the sequential reference codec.
func NewLocalArray[T cell.Word](w, h int) *Array[T] {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("decomp: invalid array size %dx%d", w, h))
	}
	stride := PadStride(w)
	return &Array[T]{Data: make([]T, stride*h), W: w, H: h, Stride: stride}
}

// Row returns the live row r restricted to the array's width.
func (a *Array[T]) Row(r int) []T { return a.Data[r*a.Stride : r*a.Stride+a.W] }

// PaddedRow returns the live row r including its padding words.
func (a *Array[T]) PaddedRow(r int) []T { return a.Data[r*a.Stride : (r+1)*a.Stride] }

// RowEA returns the effective address of row r — always line-aligned.
func (a *Array[T]) RowEA(r int) int64 { return a.EA + int64(4*r*a.Stride) }

// At returns the element at row r, column c.
func (a *Array[T]) At(r, c int) T { return a.Data[r*a.Stride+c] }

// Set stores v at row r, column c.
func (a *Array[T]) Set(r, c int, v T) { a.Data[r*a.Stride+c] = v }

// StreamRows runs a pixel-wise kernel over every row of chunk ch of src,
// writing results to the same rows/columns of dst, as an SPE would: one
// padded-width row segment per DMA get, the kernel, then a DMA put.
// depth selects the buffering level (1 = no overlap, 2 = double
// buffering, ...); the Local Store cost is depth×2 row segments
// regardless of array size — the constant-footprint property of the
// scheme. cyclesPerElem is charged to the SPE for each processed word.
//
// src and dst must have identical geometry (in-place streaming, with
// dst == src, is allowed).
func StreamRows[T cell.Word](p *sim.Proc, spe *cell.SPE, src, dst *Array[T], ch Chunk, depth int, cyclesPerElem float64, fn func(row int, buf []T)) {
	// invariant: both arrays were allocated by NewArray from the same
	// plan; mismatches are simulation-kernel bugs.
	if src.W != dst.W || src.H != dst.H || src.Stride != dst.Stride {
		panic("decomp: StreamRows geometry mismatch")
	}
	// invariant: Partition only routes aligned chunks to SPEs.
	if !ch.Aligned() {
		panic("decomp: StreamRows requires an aligned chunk; the PPE handles the remainder")
	}
	if depth < 1 {
		depth = 1
	}
	w := ch.W
	in := make([][]T, depth)
	out := make([][]T, depth)
	inLSA := make([]int64, depth)
	outLSA := make([]int64, depth)
	for i := 0; i < depth; i++ {
		in[i], inLSA[i] = cell.AllocLS[T](spe.LS, w)
		out[i], outLSA[i] = cell.AllocLS[T](spe.LS, w)
	}
	gets := make([]*sim.Completion, depth)
	puts := make([]*sim.Completion, depth)

	srcSeg := func(r int) ([]T, int64) {
		off := r*src.Stride + ch.X0
		return src.Data[off : off+w], src.EA + int64(4*off)
	}
	dstSeg := func(r int) ([]T, int64) {
		off := r*dst.Stride + ch.X0
		return dst.Data[off : off+w], dst.EA + int64(4*off)
	}

	prefetch := func(r int) {
		b := r % depth
		if puts[b] != nil {
			p.WaitFor(puts[b]) // buffer still being written back
		}
		seg, ea := srcSeg(r)
		gets[b] = cell.GetAsync(p, spe, in[b], inLSA[b], seg, ea)
	}

	for r := 0; r < depth && r < src.H; r++ {
		prefetch(r)
	}
	for r := 0; r < src.H; r++ {
		b := r % depth
		p.WaitFor(gets[b])
		copy(out[b], in[b])
		fn(r, out[b])
		spe.Compute(p, cell.Cycles(cyclesPerElem, w))
		seg, ea := dstSeg(r)
		puts[b] = cell.PutAsync(p, spe, seg, ea, out[b], outLSA[b])
		if r+depth < src.H {
			prefetch(r + depth)
		}
	}
	spe.WaitAll(p)
}

// PPERows runs the same pixel-wise kernel over a (remainder) chunk on
// the PPE: direct cached access, cost charged per element, traffic
// streamed through the shared memory interface.
func PPERows[T cell.Word](p *sim.Proc, ppe *cell.PPE, src, dst *Array[T], ch Chunk, cyclesPerElem float64, fn func(row int, buf []T)) {
	// invariant: same shared-plan geometry contract as StreamRows.
	if src.W != dst.W || src.H != dst.H || src.Stride != dst.Stride {
		panic("decomp: PPERows geometry mismatch")
	}
	tmp := make([]T, ch.W)
	for r := 0; r < src.H; r++ {
		off := r*src.Stride + ch.X0
		copy(tmp, src.Data[off:off+ch.W])
		fn(r, tmp)
		copy(dst.Data[r*dst.Stride+ch.X0:], tmp)
	}
	// Charge time once for the whole walk: read + write traffic and
	// per-element compute.
	ppe.Touch(p, int64(8*ch.W*src.H))
	ppe.Compute(p, cell.Cycles(cyclesPerElem, ch.W*src.H))
}
