package decomp

import "fmt"

// This file holds the pure geometry of the paper's decomposition scheme
// (Section 2): row padding and constant-width column chunking. It has no
// dependency on the simulated machine, so the native Go encoder
// (internal/codec) shares the exact same chunk geometry the SPE kernels
// stream — the cache-line column groups of §3.2 — without touching the
// simulator. decomp.go layers the simulated-memory Array and the DMA row
// streamer on top.

// WordsPerLine is the number of 4-byte words in one 128-byte cache line.
// (decomp.go statically asserts this equals cell.CacheLine/4.)
const WordsPerLine = 32

// PadStride rounds a width in words up to a whole number of cache lines.
func PadStride(w int) int {
	return (w + WordsPerLine - 1) / WordsPerLine * WordsPerLine
}

// PPEChunk marks a chunk assigned to the PPE.
const PPEChunk = -1

// Chunk is one unit of data distribution: columns [X0, X0+W) over the
// full array height, assigned to processing element PE (an SPE index,
// or PPEChunk for the remainder chunk).
type Chunk struct {
	X0, W int
	PE    int
}

// Aligned reports whether the chunk starts and sizes on cache-line
// boundaries (true for every SPE chunk produced by Partition).
func (c Chunk) Aligned() bool {
	return c.X0%WordsPerLine == 0 && c.W%WordsPerLine == 0
}

// Partition splits a width (in words) into constant-width chunks of
// chunkW words (a multiple of the cache line) distributed round-robin
// over nSPE SPEs, plus at most one remainder chunk for the PPE. With
// nSPE == 0 the whole width goes to the PPE.
func Partition(width, chunkW, nSPE int) []Chunk {
	// invariant: width is a validated image/level dimension (>= 1).
	if width <= 0 {
		panic("decomp: Partition of non-positive width")
	}
	if nSPE == 0 {
		return []Chunk{{X0: 0, W: width, PE: PPEChunk}}
	}
	// invariant: chunk widths are produced by ChunkWidthFor, which only
	// emits cache-line multiples.
	if chunkW <= 0 || chunkW%WordsPerLine != 0 {
		panic(fmt.Sprintf("decomp: chunk width %d is not a multiple of %d words", chunkW, WordsPerLine))
	}
	var chunks []Chunk
	n := width / chunkW
	for i := 0; i < n; i++ {
		chunks = append(chunks, Chunk{X0: i * chunkW, W: chunkW, PE: i % nSPE})
	}
	if rem := width - n*chunkW; rem > 0 {
		chunks = append(chunks, Chunk{X0: n * chunkW, W: rem, PE: PPEChunk})
	}
	return chunks
}

// ChunkWidthFor picks a chunk width (in words) that gives each of the
// nSPE SPEs roughly equal work while staying a multiple of the cache
// line, mirroring the paper's tuning of the column-group size. It never
// returns less than one cache line.
func ChunkWidthFor(width, nSPE int) int {
	if nSPE <= 0 {
		return PadStride(width)
	}
	per := width / nSPE
	cw := per / WordsPerLine * WordsPerLine
	if cw < WordsPerLine {
		cw = WordsPerLine
	}
	return cw
}

// ForPE returns the chunks assigned to processing element pe.
func ForPE(chunks []Chunk, pe int) []Chunk {
	var out []Chunk
	for _, c := range chunks {
		if c.PE == pe {
			out = append(out, c)
		}
	}
	return out
}
