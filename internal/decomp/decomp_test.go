package decomp

import (
	"testing"
	"testing/quick"

	"j2kcell/internal/cell"
	"j2kcell/internal/sim"
)

func TestPadStride(t *testing.T) {
	cases := []struct{ w, want int }{
		{1, 32}, {31, 32}, {32, 32}, {33, 64}, {100, 128}, {3072, 3072},
	}
	for _, c := range cases {
		if got := PadStride(c.w); got != c.want {
			t.Errorf("PadStride(%d)=%d, want %d", c.w, got, c.want)
		}
	}
}

func TestArrayRowsAreLineAligned(t *testing.T) {
	m := cell.MustMachine(cell.DefaultConfig(1))
	a := NewArray[int32](m, 100, 7)
	for r := 0; r < a.H; r++ {
		if a.RowEA(r)%cell.CacheLine != 0 {
			t.Fatalf("row %d EA %#x not line aligned", r, a.RowEA(r))
		}
	}
	if a.Stride != 128 {
		t.Fatalf("stride %d, want 128 words for width 100", a.Stride)
	}
	if len(a.Row(3)) != 100 || len(a.PaddedRow(3)) != 128 {
		t.Fatal("row slicing wrong")
	}
	a.Set(3, 99, 42)
	if a.At(3, 99) != 42 || a.Row(3)[99] != 42 {
		t.Fatal("At/Set/Row disagree")
	}
}

func TestNewArrayPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero-size array")
		}
	}()
	NewLocalArray[int32](0, 5)
}

func TestPartitionBasic(t *testing.T) {
	chunks := Partition(3072, 128, 8)
	if len(chunks) != 24 {
		t.Fatalf("got %d chunks, want 24", len(chunks))
	}
	covered := 0
	for i, c := range chunks {
		if !c.Aligned() {
			t.Errorf("chunk %d not aligned: %+v", i, c)
		}
		if c.PE != i%8 {
			t.Errorf("chunk %d assigned to %d, want round-robin %d", i, c.PE, i%8)
		}
		covered += c.W
	}
	if covered != 3072 {
		t.Fatalf("chunks cover %d words, want 3072", covered)
	}
}

func TestPartitionRemainderGoesToPPE(t *testing.T) {
	chunks := Partition(1000, 128, 4)
	last := chunks[len(chunks)-1]
	if last.PE != PPEChunk {
		t.Fatalf("remainder chunk PE=%d, want PPE", last.PE)
	}
	if last.W != 1000-7*128 {
		t.Fatalf("remainder width %d", last.W)
	}
	for _, c := range chunks[:len(chunks)-1] {
		if c.PE == PPEChunk {
			t.Fatal("non-remainder chunk assigned to PPE")
		}
		if c.W != 128 {
			t.Fatalf("constant-width violated: %d", c.W)
		}
	}
}

func TestPartitionNoSPEs(t *testing.T) {
	chunks := Partition(500, 128, 0)
	if len(chunks) != 1 || chunks[0].PE != PPEChunk || chunks[0].W != 500 {
		t.Fatalf("nSPE=0 partition: %+v", chunks)
	}
}

func TestPartitionPanicsOnBadChunkWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-line-multiple chunk width")
		}
	}()
	Partition(1000, 100, 4)
}

func TestChunkWidthFor(t *testing.T) {
	if w := ChunkWidthFor(3072, 8); w != 384 {
		t.Errorf("ChunkWidthFor(3072,8)=%d, want 384", w)
	}
	if w := ChunkWidthFor(100, 8); w != 32 {
		t.Errorf("tiny width must still give one line: got %d", w)
	}
	if w := ChunkWidthFor(100, 0); w != PadStride(100) {
		t.Errorf("no SPEs: got %d", w)
	}
}

func TestForPE(t *testing.T) {
	chunks := Partition(1024, 128, 3)
	seen := 0
	for pe := 0; pe < 3; pe++ {
		for _, c := range ForPE(chunks, pe) {
			if c.PE != pe {
				t.Fatal("ForPE returned foreign chunk")
			}
			seen++
		}
	}
	seen += len(ForPE(chunks, PPEChunk))
	if seen != len(chunks) {
		t.Fatalf("ForPE lost chunks: %d of %d", seen, len(chunks))
	}
}

// Property: Partition covers [0, width) exactly once, in order, with
// every chunk except possibly the last line-aligned.
func TestPropPartitionCoverage(t *testing.T) {
	f := func(w16 uint16, cw8, n8 uint8) bool {
		width := int(w16)%8000 + 1
		chunkW := (int(cw8)%16 + 1) * WordsPerLine
		nSPE := int(n8 % 17)
		chunks := Partition(width, chunkW, nSPE)
		x := 0
		for i, c := range chunks {
			if c.X0 != x || c.W <= 0 {
				return false
			}
			if i < len(chunks)-1 && !c.Aligned() {
				return false
			}
			if nSPE > 0 && c.PE != PPEChunk && (c.PE < 0 || c.PE >= nSPE) {
				return false
			}
			x += c.W
		}
		return x == width
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func streamTestMachine(w, h int) (*cell.Machine, *Array[int32], *Array[int32]) {
	m := cell.MustMachine(cell.DefaultConfig(2))
	src := NewArray[int32](m, w, h)
	dst := NewArray[int32](m, w, h)
	for i := range src.Data {
		src.Data[i] = int32(i%251) - 125
	}
	return m, src, dst
}

func TestStreamRowsMatchesSequential(t *testing.T) {
	const w, h = 300, 17
	for _, depth := range []int{1, 2, 4} {
		m, src, dst := streamTestMachine(w, h)
		kernel := func(v int32) int32 { return 2*v + 1 }
		chunks := Partition(w, 128, len(m.SPEs))
		for i, spe := range m.SPEs {
			spe, mine := spe, ForPE(chunks, i)
			m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
				for _, ch := range mine {
					StreamRows(p, spe, src, dst, ch, depth, 1.0, func(row int, buf []int32) {
						for j := range buf {
							buf[j] = kernel(buf[j])
						}
					})
				}
			})
		}
		// PPE takes the remainder.
		ppe := m.PPEs[0]
		m.Eng.Spawn("ppe", 0, func(p *sim.Proc) {
			for _, ch := range ForPE(chunks, PPEChunk) {
				PPERows(p, ppe, src, dst, ch, 1.0, func(row int, buf []int32) {
					for j := range buf {
						buf[j] = kernel(buf[j])
					}
				})
			}
		})
		m.Run()
		for r := 0; r < h; r++ {
			for c := 0; c < w; c++ {
				if got, want := dst.At(r, c), kernel(src.At(r, c)); got != want {
					t.Fatalf("depth %d: dst[%d][%d]=%d, want %d", depth, r, c, got, want)
				}
			}
		}
	}
}

func TestStreamRowsConstantLSFootprint(t *testing.T) {
	// Local Store usage must not depend on image height — only on chunk
	// width and buffering depth.
	use := func(h int) int {
		m, src, dst := streamTestMachine(256, h)
		spe := m.SPEs[0]
		ch := Chunk{X0: 0, W: 128, PE: 0}
		m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
			StreamRows(p, spe, src, dst, ch, 2, 1.0, func(int, []int32) {})
		})
		m.Run()
		return spe.LS.HighWater()
	}
	if a, b := use(4), use(64); a != b {
		t.Fatalf("LS footprint varies with height: %d vs %d", a, b)
	}
}

func TestStreamRowsDMAIsAlwaysAligned(t *testing.T) {
	// Every DMA issued by StreamRows is line-aligned with line-multiple
	// size, so payload bytes == line bytes (no overfetch).
	m, src, dst := streamTestMachine(640, 9)
	spe := m.SPEs[0]
	m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
		StreamRows(p, spe, src, dst, Chunk{X0: 128, W: 256, PE: 0}, 3, 0.5, func(int, []int32) {})
	})
	m.Run()
	if spe.DMALineBytes != spe.DMABytes {
		t.Fatalf("overfetch: payload %d, lines %d", spe.DMABytes, spe.DMALineBytes)
	}
	if spe.DMABytes != int64(2*9*256*4) { // get+put per row
		t.Fatalf("moved %d bytes, want %d", spe.DMABytes, 2*9*256*4)
	}
}

func TestStreamRowsDeeperBufferingIsNotSlower(t *testing.T) {
	run := func(depth int) sim.Time {
		m, src, dst := streamTestMachine(2048, 64)
		spe := m.SPEs[0]
		m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
			StreamRows(p, spe, src, dst, Chunk{X0: 0, W: 2048, PE: 0}, depth, 1.0, func(int, []int32) {})
		})
		return m.Run()
	}
	t1, t2 := run(1), run(2)
	if t2 >= t1 {
		t.Fatalf("double buffering not faster: depth1=%d depth2=%d", t1, t2)
	}
}

func TestStreamRowsRejectsMisalignedChunk(t *testing.T) {
	m, src, dst := streamTestMachine(300, 4)
	spe := m.SPEs[0]
	m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("misaligned chunk accepted")
			}
		}()
		StreamRows(p, spe, src, dst, Chunk{X0: 0, W: 300, PE: 0}, 1, 1.0, func(int, []int32) {})
	})
	m.Run()
}

func TestStreamRowsInPlace(t *testing.T) {
	m, src, _ := streamTestMachine(256, 8)
	want := make([]int32, len(src.Data))
	for i, v := range src.Data {
		want[i] = v
	}
	spe := m.SPEs[0]
	m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
		StreamRows(p, spe, src, src, Chunk{X0: 0, W: 256, PE: 0}, 2, 1.0, func(row int, buf []int32) {
			for j := range buf {
				buf[j] = -buf[j]
			}
		})
	})
	m.Run()
	for r := 0; r < 8; r++ {
		for c := 0; c < 256; c++ {
			if src.At(r, c) != -want[r*src.Stride+c] {
				t.Fatalf("in-place stream wrong at %d,%d", r, c)
			}
		}
	}
}

func TestPPERowsGeometryMismatchPanics(t *testing.T) {
	m := cell.MustMachine(cell.DefaultConfig(0))
	a := NewArray[int32](m, 64, 4)
	b := NewArray[int32](m, 64, 5)
	m.Eng.Spawn("ppe", 0, func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("mismatched geometry accepted")
			}
		}()
		PPERows(p, m.PPEs[0], a, b, Chunk{X0: 0, W: 64, PE: PPEChunk}, 1, func(int, []int32) {})
	})
	m.Run()
}

func TestStreamRowsDepthNormalized(t *testing.T) {
	m, src, dst := streamTestMachine(128, 3)
	spe := m.SPEs[0]
	m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
		StreamRows(p, spe, src, dst, Chunk{X0: 0, W: 128, PE: 0}, 0, 1.0, func(int, []int32) {})
	})
	m.Run() // depth 0 must behave as depth 1, not panic
	for r := 0; r < 3; r++ {
		for c := 0; c < 128; c++ {
			if dst.At(r, c) != src.At(r, c) {
				t.Fatal("identity stream failed")
			}
		}
	}
}
