//go:build !amd64 || noasm

package simd

// detect on platforms without assembly kernels (or with the noasm tag)
// installs the scalar oracle as the only set. J2K_NOSIMD is a no-op
// here — scalar is already everything there is.
func detect() {
	available = []*kernels{&scalarSet}
	active.Store(&scalarSet)
}
