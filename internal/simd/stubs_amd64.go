//go:build amd64 && !noasm

package simd

// Assembly kernels (kern_amd64.s). Each processes a whole-vector
// prefix of the row — 8 elements per step for AVX2, 4 for SSE2 — and
// returns how many elements it handled; the caller finishes the tail
// with the scalar loop. All loads and stores are unaligned forms, so
// slices may start at any offset.

//go:noescape
func addMulF32AVX2(dst, a, b, c []float32, k float32) (n int)

//go:noescape
func addMulF32SSE2(dst, a, b, c []float32, k float32) (n int)

//go:noescape
func addMulScaleF32AVX2(s, b, c []float32, k, scale float32) (n int)

//go:noescape
func addMulScaleF32SSE2(s, b, c []float32, k, scale float32) (n int)

//go:noescape
func mulConstF32AVX2(dst, src []float32, k float32) (n int)

//go:noescape
func mulConstF32SSE2(dst, src []float32, k float32) (n int)

//go:noescape
func quantF32AVX2(dst []int32, src []float32, inv float32) (n int)

//go:noescape
func quantF32SSE2(dst []int32, src []float32, inv float32) (n int)

//go:noescape
func dequantF32AVX2(dst []float32, src []int32, delta float32) (n int)

//go:noescape
func dequantF32SSE2(dst []float32, src []int32, delta float32) (n int)

//go:noescape
func ictFwdAVX2(r, g, b []int32, y, cb, cr []float32, p *ICTParams) (n int)

//go:noescape
func ictFwdSSE2(r, g, b []int32, y, cb, cr []float32, p *ICTParams) (n int)

//go:noescape
func ictInvAVX2(y, cb, cr []float32, r, g, b []int32, p *ICTInvParams) (n int)

//go:noescape
func ictInvSSE2(y, cb, cr []float32, r, g, b []int32, p *ICTInvParams) (n int)

//go:noescape
func roundAddF32AVX2(dst []int32, src []float32, off float32) (n int)

//go:noescape
func roundAddF32SSE2(dst []int32, src []float32, off float32) (n int)

//go:noescape
func addShr1I32AVX2(dst, a, b, c []int32) (n int)

//go:noescape
func addShr1I32SSE2(dst, a, b, c []int32) (n int)

//go:noescape
func subShr1I32AVX2(dst, a, b, c []int32) (n int)

//go:noescape
func subShr1I32SSE2(dst, a, b, c []int32) (n int)

//go:noescape
func addShr2I32AVX2(dst, a, b, c []int32) (n int)

//go:noescape
func addShr2I32SSE2(dst, a, b, c []int32) (n int)

//go:noescape
func subShr2I32AVX2(dst, a, b, c []int32) (n int)

//go:noescape
func subShr2I32SSE2(dst, a, b, c []int32) (n int)

//go:noescape
func addConstI32AVX2(dst []int32, k int32) (n int)

//go:noescape
func addConstI32SSE2(dst []int32, k int32) (n int)

//go:noescape
func rctFwdAVX2(r, g, b []int32, off int32) (n int)

//go:noescape
func rctFwdSSE2(r, g, b []int32, off int32) (n int)

//go:noescape
func rctInvAVX2(y, cb, cr []int32, off int32) (n int)

//go:noescape
func rctInvSSE2(y, cb, cr []int32, off int32) (n int)

//go:noescape
func clampI32AVX2(dst []int32, max int32) (n int)

//go:noescape
func clampI32SSE2(dst []int32, max int32) (n int)

//go:noescape
func il2I32AVX2(dst, even, odd []int32) (n int)

//go:noescape
func il2I32SSE2(dst, even, odd []int32) (n int)

//go:noescape
func il2F32AVX2(dst, even, odd []float32) (n int)

//go:noescape
func il2F32SSE2(dst, even, odd []float32) (n int)

//go:noescape
func fixAddMulAVX2(d, b, c []int32, k int32) (n int)

//go:noescape
func fixAddMulSSE2(d, b, c []int32, k int32) (n int)

//go:noescape
func fixScaleAVX2(dst []int32, k int32) (n int)

//go:noescape
func fixScaleSSE2(dst []int32, k int32) (n int)

//go:noescape
func absOrAVX2(mag []uint32, coef []int32) (n int, or uint32)

//go:noescape
func absOrSSE2(mag []uint32, coef []int32) (n int, or uint32)

//go:noescape
func orU32AVX2(dst, src []uint32) (n int)

//go:noescape
func orU32SSE2(dst, src []uint32) (n int)

//go:noescape
func signOrAVX2(flags []uint32, coef []int32, bit uint32) (n int)

//go:noescape
func signOrSSE2(flags []uint32, coef []int32, bit uint32) (n int)
