package simd

import (
	"math/rand"
	"testing"
)

// Per-kernel microbenchmarks, one sub-benchmark per selectable kernel
// set, so a single run prices scalar vs SSE2 vs AVX2 on the same
// machine (the PR's ≥1.5x acceptance bar reads straight off these).
// Row length 1024 ≈ the 9/7 row width of a 1024-wide tile component,
// long enough that dispatch overhead is in the noise.

const benchRow = 1024

// perSet runs fn once per available kernel set with that set active.
func perSet(b *testing.B, fn func(b *testing.B)) {
	prev := Kernel()
	defer Use(prev)
	for _, name := range Available() {
		if err := Use(name); err != nil {
			b.Fatal(err)
		}
		b.Run(name, fn)
	}
}

func benchF32(n int) []float32 {
	rng := rand.New(rand.NewSource(42))
	s := make([]float32, n)
	for i := range s {
		s[i] = (rng.Float32() - 0.5) * 512
	}
	return s
}

func benchI32(n int) []int32 {
	rng := rand.New(rand.NewSource(43))
	s := make([]int32, n)
	for i := range s {
		s[i] = rng.Int31n(65536) - 32768
	}
	return s
}

func Benchmark_Kernel_AddMulRow(b *testing.B) {
	d, a, c, e := benchF32(benchRow), benchF32(benchRow), benchF32(benchRow), benchF32(benchRow)
	perSet(b, func(b *testing.B) {
		b.SetBytes(benchRow * 4)
		for i := 0; i < b.N; i++ {
			AddMulRow(d, a, c, e, -1.586134342)
		}
	})
}

func Benchmark_Kernel_AddMulScaleRow(b *testing.B) {
	s, c, e := benchF32(benchRow), benchF32(benchRow), benchF32(benchRow)
	perSet(b, func(b *testing.B) {
		b.SetBytes(benchRow * 4)
		for i := 0; i < b.N; i++ {
			AddMulScaleRow(s, c, e, 0.443506852, 0.812893066)
		}
	})
}

func Benchmark_Kernel_MulConstRow(b *testing.B) {
	d, s := benchF32(benchRow), benchF32(benchRow)
	perSet(b, func(b *testing.B) {
		b.SetBytes(benchRow * 4)
		for i := 0; i < b.N; i++ {
			MulConstRow(d, s, 1.230174105)
		}
	})
}

func Benchmark_Kernel_QuantizeRow(b *testing.B) {
	d, s := make([]int32, benchRow), benchF32(benchRow)
	perSet(b, func(b *testing.B) {
		b.SetBytes(benchRow * 4)
		for i := 0; i < b.N; i++ {
			QuantizeRow(d, s, 512)
		}
	})
}

func Benchmark_Kernel_ForwardICTRow(b *testing.B) {
	r, g, bl := benchI32(benchRow), benchI32(benchRow), benchI32(benchRow)
	y, cb, cr := make([]float32, benchRow), make([]float32, benchRow), make([]float32, benchRow)
	p := &ICTParams{
		Off: 128,
		YR:  0.299, YG: 0.587, YB: 0.114,
		CbR: -0.168736, CbG: -0.331264, CbB: 0.5,
		CrR: 0.5, CrG: -0.418688, CrB: -0.081312,
	}
	perSet(b, func(b *testing.B) {
		b.SetBytes(benchRow * 3 * 4)
		for i := 0; i < b.N; i++ {
			ForwardICTRow(r, g, bl, y, cb, cr, p)
		}
	})
}

func Benchmark_Kernel_SubShr1Row(b *testing.B) {
	d, a, c, e := benchI32(benchRow), benchI32(benchRow), benchI32(benchRow), benchI32(benchRow)
	perSet(b, func(b *testing.B) {
		b.SetBytes(benchRow * 4)
		for i := 0; i < b.N; i++ {
			SubShr1Row(d, a, c, e)
		}
	})
}

func Benchmark_Kernel_AddShr2Row(b *testing.B) {
	d, a, c, e := benchI32(benchRow), benchI32(benchRow), benchI32(benchRow), benchI32(benchRow)
	perSet(b, func(b *testing.B) {
		b.SetBytes(benchRow * 4)
		for i := 0; i < b.N; i++ {
			AddShr2Row(d, a, c, e)
		}
	})
}

func Benchmark_Kernel_ForwardRCTRow(b *testing.B) {
	r, g, bl := benchI32(benchRow), benchI32(benchRow), benchI32(benchRow)
	perSet(b, func(b *testing.B) {
		b.SetBytes(benchRow * 3 * 4)
		for i := 0; i < b.N; i++ {
			ForwardRCTRow(r, g, bl, 128)
		}
	})
}

func Benchmark_Kernel_FixAddMulRow(b *testing.B) {
	d, c, e := benchI32(benchRow), benchI32(benchRow), benchI32(benchRow)
	perSet(b, func(b *testing.B) {
		b.SetBytes(benchRow * 4)
		for i := 0; i < b.N; i++ {
			FixAddMulRow(d, c, e, -12994)
		}
	})
}

func Benchmark_Kernel_FixScaleRow(b *testing.B) {
	d := benchI32(benchRow)
	perSet(b, func(b *testing.B) {
		b.SetBytes(benchRow * 4)
		for i := 0; i < b.N; i++ {
			FixScaleRow(d, 7233)
		}
	})
}

func Benchmark_Kernel_AbsOrRow(b *testing.B) {
	m, c := make([]uint32, benchRow), benchI32(benchRow)
	perSet(b, func(b *testing.B) {
		b.SetBytes(benchRow * 4)
		var or uint32
		for i := 0; i < b.N; i++ {
			or |= AbsOrRow(m, c)
		}
		_ = or
	})
}

func Benchmark_Kernel_SignOrRow(b *testing.B) {
	f, c := make([]uint32, benchRow), benchI32(benchRow)
	perSet(b, func(b *testing.B) {
		b.SetBytes(benchRow * 4)
		for i := 0; i < b.N; i++ {
			SignOrRow(f, c, 1<<6)
		}
	})
}
