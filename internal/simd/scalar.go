package simd

// Pure-Go reference loops: the oracle every vector kernel must match
// bit for bit, and the fallback for tails, the noasm build, and
// J2K_NOSIMD. These bodies are the original hot loops of the dwt, mct,
// quant, and t1 packages, moved here verbatim so the dispatch wrappers
// can finish rows the vector kernels leave unprocessed.

func scalarAddMulF32(dst, a, b, c []float32, k float32) {
	for i := range dst {
		dst[i] = a[i] + k*(b[i]+c[i])
	}
}

func scalarAddMulScaleF32(s, b, c []float32, k, scale float32) {
	for i := range s {
		s[i] = (s[i] + k*(b[i]+c[i])) * scale
	}
}

func scalarMulConstF32(dst, src []float32, k float32) {
	for i := range dst {
		dst[i] = src[i] * k
	}
}

func scalarQuantF32(dst []int32, src []float32, inv float32) {
	for i, v := range src {
		if v >= 0 {
			dst[i] = int32(v * inv)
		} else {
			dst[i] = -int32(-v * inv)
		}
	}
}

func scalarDequantF32(dst []float32, src []int32, delta float32) {
	for i, q := range src {
		switch {
		case q > 0:
			dst[i] = (float32(q) + 0.5) * delta
		case q < 0:
			dst[i] = (float32(q) - 0.5) * delta
		default:
			dst[i] = 0
		}
	}
}

// roundHalfAway rounds to the nearest integer with halves away from
// zero, identical to the decoder's original inline expression (and to
// the vector abs→+0.5→truncate→restore-sign sequence).
func roundHalfAway(v float32) int32 {
	if v >= 0 {
		return int32(v + 0.5)
	}
	return -int32(-v + 0.5)
}

func scalarRoundAddF32(dst []int32, src []float32, off float32) {
	for i, s := range src {
		dst[i] = roundHalfAway(s + off)
	}
}

func scalarICTFwd(r, g, b []int32, y, cb, cr []float32, p *ICTParams) {
	for i := range r {
		rr, gg, bb := float32(r[i])-p.Off, float32(g[i])-p.Off, float32(b[i])-p.Off
		y[i] = p.YR*rr + p.YG*gg + p.YB*bb
		cb[i] = p.CbR*rr + p.CbG*gg + p.CbB*bb
		cr[i] = p.CrR*rr + p.CrG*gg + p.CrB*bb
	}
}

func scalarICTInv(y, cb, cr []float32, r, g, b []int32, p *ICTInvParams) {
	for i := range y {
		yy, ub, vr := y[i], cb[i], cr[i]
		rf := yy + p.RCr*vr + p.Off
		gf := yy - p.GCb*ub - p.GCr*vr + p.Off
		bf := yy + p.BCb*ub + p.Off
		r[i] = roundHalfAway(rf)
		g[i] = roundHalfAway(gf)
		b[i] = roundHalfAway(bf)
	}
}

func scalarAddShr1I32(dst, a, b, c []int32) {
	for i := range dst {
		dst[i] = a[i] + ((b[i] + c[i]) >> 1)
	}
}

func scalarSubShr1I32(dst, a, b, c []int32) {
	for i := range dst {
		dst[i] = a[i] - ((b[i] + c[i]) >> 1)
	}
}

func scalarAddShr2I32(dst, a, b, c []int32) {
	for i := range dst {
		dst[i] = a[i] + ((b[i] + c[i] + 2) >> 2)
	}
}

func scalarSubShr2I32(dst, a, b, c []int32) {
	for i := range dst {
		dst[i] = a[i] - ((b[i] + c[i] + 2) >> 2)
	}
}

func scalarAddConstI32(dst []int32, k int32) {
	for i := range dst {
		dst[i] += k
	}
}

func scalarRCTFwd(r, g, b []int32, off int32) {
	for i := range r {
		rr, gg, bb := r[i]-off, g[i]-off, b[i]-off
		y := (rr + 2*gg + bb) >> 2
		cb := bb - gg
		cr := rr - gg
		r[i], g[i], b[i] = y, cb, cr
	}
}

func scalarRCTInv(y, cb, cr []int32, off int32) {
	for i := range y {
		g := y[i] - ((cb[i] + cr[i]) >> 2)
		r := cr[i] + g
		b := cb[i] + g
		y[i], cb[i], cr[i] = r+off, g+off, b+off
	}
}

func scalarClampI32(dst []int32, max int32) {
	for i, v := range dst {
		if v < 0 {
			dst[i] = 0
		} else if v > max {
			dst[i] = max
		}
	}
}

func scalarInterleave2I32(dst, even, odd []int32) {
	for i := range odd {
		dst[2*i] = even[i]
		dst[2*i+1] = odd[i]
	}
}

func scalarInterleave2F32(dst, even, odd []float32) {
	for i := range odd {
		dst[2*i] = even[i]
		dst[2*i+1] = odd[i]
	}
}

// fixMul13 is JasPer's Q13 multiply with rounding, identical to
// dwt.fixMul.
func fixMul13(a, b int32) int32 {
	return int32((int64(a)*int64(b) + (1 << (FixShift - 1))) >> FixShift)
}

func scalarFixAddMul(d, b, c []int32, k int32) {
	for i := range d {
		d[i] += fixMul13(k, b[i]+c[i])
	}
}

func scalarFixScale(dst []int32, k int32) {
	for i := range dst {
		dst[i] = fixMul13(dst[i], k)
	}
}

func scalarAbsOr(mag []uint32, coef []int32) uint32 {
	var or uint32
	for i := range mag {
		v := coef[i]
		m := uint32(v)
		if v < 0 {
			m = uint32(-v)
		}
		mag[i] = m
		or |= m
	}
	return or
}

func scalarOrU32(dst, src []uint32) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

func scalarSignOr(flags []uint32, coef []int32, bit uint32) {
	for i := range flags {
		if coef[i] < 0 {
			flags[i] |= bit
		}
	}
}
