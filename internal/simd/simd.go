// Package simd is the ISA-aware kernel layer of the encoder: the hot
// elementwise row kernels of the pipeline (9/7 and 5/3 lifting steps,
// Q13 fixed-point lifting, the merged level-shift + color transforms,
// dead-zone quantization, and the Tier-1 stripe-mask build) behind a
// dispatch table selected once at init from the CPU's vector features.
//
// This is the Go analogue of the paper's Section 4 argument: kernel
// cost is ISA-specific (the SPE's vector float multiply is one fast
// instruction while JasPer's Q13 integer multiply must be emulated), so
// the encoder prices each kernel against the actual vector hardware.
// On amd64 the package ships hand-written AVX2 and SSE2 assembly; every
// kernel keeps the original pure-Go loop as oracle and fallback, and
// every assembly path is bit-identical to it:
//
//   - Float kernels use only per-element add/mul (no FMA), so each
//     operation rounds exactly like the scalar IEEE float32 chain.
//   - Integer kernels use the same wrapping two's-complement adds and
//     arithmetic shifts as the Go loops.
//   - Float→int conversion uses packed truncation (CVTTPS2DQ), which
//     matches gc's scalar CVTTSS2SL on amd64, including the 0x80000000
//     out-of-range result.
//
// Dispatch: init probes CPUID (AVX2 needs OS-enabled YMM state; SSE2 is
// amd64 baseline) and installs the widest kernel set. The `noasm` build
// tag compiles the package with no assembly at all, and the J2K_NOSIMD
// environment variable (set to anything but "0") forces the scalar set
// at startup without rebuilding. Use/Kernel/Available exist so tests
// and tools can pin or report the active set.
//
// Convention: an assembly kernel processes a whole-vector prefix of the
// row and returns how many elements it handled; the exported wrapper
// finishes the tail with the scalar loop. Rows need no alignment or
// length restrictions (unaligned slice offsets and lengths 0 and 1 are
// all valid), and in-place calls may alias only at identical indices
// (dst == a style), which every call site in this codebase satisfies.
package simd

import (
	"fmt"
	"sync/atomic"
)

// FixShift is the Q13 fixed-point fraction width of the fixed kernels;
// it must equal dwt.FixShift (pinned by a test there).
const FixShift = 13

// kernels is one dispatchable implementation set. A nil entry means
// "no vector form; use the scalar loop".
type kernels struct {
	name string

	addMulF32      func(dst, a, b, c []float32, k float32) int
	addMulScaleF32 func(s, b, c []float32, k, scale float32) int
	mulConstF32    func(dst, src []float32, k float32) int
	quantF32       func(dst []int32, src []float32, inv float32) int
	dequantF32     func(dst []float32, src []int32, delta float32) int
	ictFwd         func(r, g, b []int32, y, cb, cr []float32, p *ICTParams) int
	ictInv         func(y, cb, cr []float32, r, g, b []int32, p *ICTInvParams) int
	roundAddF32    func(dst []int32, src []float32, off float32) int

	addShr1I32  func(dst, a, b, c []int32) int
	subShr1I32  func(dst, a, b, c []int32) int
	addShr2I32  func(dst, a, b, c []int32) int
	subShr2I32  func(dst, a, b, c []int32) int
	addConstI32 func(dst []int32, k int32) int
	rctFwd      func(r, g, b []int32, off int32) int
	rctInv      func(y, cb, cr []int32, off int32) int
	clampI32    func(dst []int32, max int32) int
	fixAddMul   func(d, b, c []int32, k int32) int
	fixScale    func(dst []int32, k int32) int
	il2I32      func(dst, even, odd []int32) int
	il2F32      func(dst, even, odd []float32) int

	absOr  func(mag []uint32, coef []int32) (int, uint32)
	orU32  func(dst, src []uint32) int
	signOr func(flags []uint32, coef []int32, bit uint32) int
}

// scalarSet has every vector entry nil: the pure-Go oracle.
var scalarSet = kernels{name: "scalar"}

// active is the installed kernel set. Reads are one atomic load (a
// plain MOV on amd64); writes happen at init and from Use, which is a
// test/startup hook and must not race with in-flight encodes.
var active atomic.Pointer[kernels]

// available lists the selectable kernel sets, narrowest first
// ("scalar" always; then "sse2", "avx2" as detected). detect()
// (per-platform) fills it and installs the widest allowed set.
var available []*kernels

func init() { detect() }

// Kernel reports the name of the active kernel set: "avx2", "sse2" or
// "scalar".
func Kernel() string { return active.Load().name }

// Available lists the kernel set names selectable on this machine.
func Available() []string {
	out := make([]string, len(available))
	for i, k := range available {
		out[i] = k.name
	}
	return out
}

// Use installs the named kernel set. It exists for tests and tools
// (differential runs, the determinism matrix); do not call it while an
// encode is in flight.
func Use(name string) error {
	for _, k := range available {
		if k.name == name {
			active.Store(k)
			return nil
		}
	}
	return fmt.Errorf("simd: kernel set %q not available (have %v)", name, Available())
}

// --- float32 kernels ---

// AddMulRow computes dst[i] = a[i] + k*(b[i]+c[i]) — the shape of the
// 9/7 lifting steps (dst may equal a for the in-place d += k*(e0+e1)
// form). All slices must be at least len(dst) long.
func AddMulRow(dst, a, b, c []float32, k float32) {
	i := 0
	n := len(dst)
	if f := active.Load().addMulF32; f != nil && len(a) >= n && len(b) >= n && len(c) >= n {
		i = f(dst, a, b, c, k)
	}
	scalarAddMulF32(dst[i:], a[i:], b[i:], c[i:], k)
}

// AddMulScaleRow computes s[i] = (s[i] + k*(b[i]+c[i])) * scale — the
// final 9/7 lifting step with the 1/K scaling folded in.
func AddMulScaleRow(s, b, c []float32, k, scale float32) {
	i := 0
	n := len(s)
	if f := active.Load().addMulScaleF32; f != nil && len(b) >= n && len(c) >= n {
		i = f(s, b, c, k, scale)
	}
	scalarAddMulScaleF32(s[i:], b[i:], c[i:], k, scale)
}

// MulConstRow computes dst[i] = src[i] * k (dst may equal src).
func MulConstRow(dst, src []float32, k float32) {
	i := 0
	if f := active.Load().mulConstF32; f != nil && len(src) >= len(dst) {
		i = f(dst, src, k)
	}
	scalarMulConstF32(dst[i:], src[i:], k)
}

// QuantizeRow converts one row of 9/7 coefficients to sign-magnitude
// integers, dst[i] = trunc(src[i] * inv), truncation toward zero.
// len(dst) must be at least len(src).
func QuantizeRow(dst []int32, src []float32, inv float32) {
	i := 0
	if f := active.Load().quantF32; f != nil && len(dst) >= len(src) {
		i = f(dst, src, inv)
	}
	scalarQuantF32(dst[i:], src[i:], inv)
}

// DequantRow is the inverse of QuantizeRow: midpoint reconstruction
// dst[i] = (src[i] ± 0.5) * delta with the sign of src[i], and exactly
// 0 where src[i] is 0. len(dst) must be at least len(src).
func DequantRow(dst []float32, src []int32, delta float32) {
	i := 0
	if f := active.Load().dequantF32; f != nil && len(dst) >= len(src) {
		i = f(dst, src, delta)
	}
	scalarDequantF32(dst[i:], src[i:], delta)
}

// RoundAddRow computes dst[i] = round(src[i] + off) with halves rounded
// away from zero — the inverse level shift of a float component decoded
// without the color transform. len(dst) must be at least len(src).
func RoundAddRow(dst []int32, src []float32, off float32) {
	i := 0
	if f := active.Load().roundAddF32; f != nil && len(dst) >= len(src) {
		i = f(dst, src, off)
	}
	scalarRoundAddF32(dst[i:], src[i:], off)
}

// ICTParams carries the level-shift offset and the nine ICT matrix
// weights for ForwardICTRow, in the order the kernel reads them.
type ICTParams struct {
	Off           float32
	YR, YG, YB    float32
	CbR, CbG, CbB float32
	CrR, CrG, CrB float32
}

// ForwardICTRow applies the merged level shift + irreversible color
// transform: integer (R,G,B) rows in, float (Y,Cb,Cr) rows out.
func ForwardICTRow(r, g, b []int32, y, cb, cr []float32, p *ICTParams) {
	i := 0
	n := len(r)
	if f := active.Load().ictFwd; f != nil &&
		len(g) >= n && len(b) >= n && len(y) >= n && len(cb) >= n && len(cr) >= n {
		i = f(r, g, b, y, cb, cr, p)
	}
	scalarICTFwd(r[i:], g[i:], b[i:], y[i:], cb[i:], cr[i:], p)
}

// ICTInvParams carries the level-shift offset and the four inverse ICT
// weights (applied with the signs of the scalar expressions: R adds
// RCr·Cr, G subtracts GCb·Cb and GCr·Cr, B adds BCb·Cb).
type ICTInvParams struct {
	Off      float32
	RCr      float32
	GCb, GCr float32
	BCb      float32
}

// InverseICTRow applies the merged inverse irreversible color transform
// + level unshift: float (Y,Cb,Cr) rows in, rounded integer (R,G,B)
// rows out, halves rounded away from zero.
func InverseICTRow(y, cb, cr []float32, r, g, b []int32, p *ICTInvParams) {
	i := 0
	n := len(y)
	if f := active.Load().ictInv; f != nil &&
		len(cb) >= n && len(cr) >= n && len(r) >= n && len(g) >= n && len(b) >= n {
		i = f(y, cb, cr, r, g, b, p)
	}
	scalarICTInv(y[i:], cb[i:], cr[i:], r[i:], g[i:], b[i:], p)
}

// --- int32 kernels ---

// AddShr1Row computes dst[i] = a[i] + ((b[i]+c[i])>>1) (5/3 un-lifting
// step shape; dst may equal a).
func AddShr1Row(dst, a, b, c []int32) {
	i := 0
	n := len(dst)
	if f := active.Load().addShr1I32; f != nil && len(a) >= n && len(b) >= n && len(c) >= n {
		i = f(dst, a, b, c)
	}
	scalarAddShr1I32(dst[i:], a[i:], b[i:], c[i:])
}

// SubShr1Row computes dst[i] = a[i] - ((b[i]+c[i])>>1) (the 5/3 high
// lifting step; dst may equal a).
func SubShr1Row(dst, a, b, c []int32) {
	i := 0
	n := len(dst)
	if f := active.Load().subShr1I32; f != nil && len(a) >= n && len(b) >= n && len(c) >= n {
		i = f(dst, a, b, c)
	}
	scalarSubShr1I32(dst[i:], a[i:], b[i:], c[i:])
}

// AddShr2Row computes dst[i] = a[i] + ((b[i]+c[i]+2)>>2) (the 5/3 low
// lifting step; dst may equal a).
func AddShr2Row(dst, a, b, c []int32) {
	i := 0
	n := len(dst)
	if f := active.Load().addShr2I32; f != nil && len(a) >= n && len(b) >= n && len(c) >= n {
		i = f(dst, a, b, c)
	}
	scalarAddShr2I32(dst[i:], a[i:], b[i:], c[i:])
}

// SubShr2Row computes dst[i] = a[i] - ((b[i]+c[i]+2)>>2) (5/3 low
// un-lifting; dst may equal a).
func SubShr2Row(dst, a, b, c []int32) {
	i := 0
	n := len(dst)
	if f := active.Load().subShr2I32; f != nil && len(a) >= n && len(b) >= n && len(c) >= n {
		i = f(dst, a, b, c)
	}
	scalarSubShr2I32(dst[i:], a[i:], b[i:], c[i:])
}

// AddConstRow computes dst[i] += k (the DC level shift with k = ±2^(d-1)).
func AddConstRow(dst []int32, k int32) {
	i := 0
	if f := active.Load().addConstI32; f != nil {
		i = f(dst, k)
	}
	scalarAddConstI32(dst[i:], k)
}

// ForwardRCTRow applies the merged level shift + reversible color
// transform in place over (R,G,B) rows.
func ForwardRCTRow(r, g, b []int32, off int32) {
	i := 0
	n := len(r)
	if f := active.Load().rctFwd; f != nil && len(g) >= n && len(b) >= n {
		i = f(r, g, b, off)
	}
	scalarRCTFwd(r[i:], g[i:], b[i:], off)
}

// InverseRCTRow applies the merged inverse reversible color transform +
// level unshift in place over (Y,Cb,Cr) rows, leaving (R,G,B).
func InverseRCTRow(y, cb, cr []int32, off int32) {
	i := 0
	n := len(y)
	if f := active.Load().rctInv; f != nil && len(cb) >= n && len(cr) >= n {
		i = f(y, cb, cr, off)
	}
	scalarRCTInv(y[i:], cb[i:], cr[i:], off)
}

// ClampRow clamps dst[i] into [0, max] in place — the final sample
// range clamp after the inverse color transform.
func ClampRow(dst []int32, max int32) {
	i := 0
	if f := active.Load().clampI32; f != nil {
		i = f(dst, max)
	}
	scalarClampI32(dst[i:], max)
}

// Interleave2Row merges deinterleaved low/high halves back into an
// interleaved row: dst[2i] = even[i], dst[2i+1] = odd[i] for
// i < len(odd) — the recombination step of the inverse lifting lines.
// len(even) must be at least len(odd) and len(dst) at least
// 2*len(odd); an odd-length row's final lone even sample is the
// caller's to place.
func Interleave2Row(dst, even, odd []int32) {
	i := 0
	n := len(odd)
	if f := active.Load().il2I32; f != nil && len(even) >= n && len(dst) >= 2*n {
		i = f(dst, even, odd)
	}
	scalarInterleave2I32(dst[2*i:], even[i:], odd[i:])
}

// Interleave2FRow is Interleave2Row for float32 rows.
func Interleave2FRow(dst, even, odd []float32) {
	i := 0
	n := len(odd)
	if f := active.Load().il2F32; f != nil && len(even) >= n && len(dst) >= 2*n {
		i = f(dst, even, odd)
	}
	scalarInterleave2F32(dst[2*i:], even[i:], odd[i:])
}

// FixAddMulRow computes d[i] += fixmul(k, b[i]+c[i]) in Q13 — the
// JasPer-style fixed-point 9/7 lifting step. The vector forms require
// |b[i]+c[i]| (after int32 wrap) ≤ 2^30, which every Q13 pipeline value
// satisfies; beyond that the 32-bit decomposition of the 64-bit product
// would overflow where the scalar loop does not.
func FixAddMulRow(d, b, c []int32, k int32) {
	i := 0
	n := len(d)
	if f := active.Load().fixAddMul; f != nil && len(b) >= n && len(c) >= n {
		i = f(d, b, c, k)
	}
	scalarFixAddMul(d[i:], b[i:], c[i:], k)
}

// FixScaleRow computes dst[i] = fixmul(dst[i], k) in Q13, with the same
// |dst[i]| ≤ 2^30 domain as FixAddMulRow.
func FixScaleRow(dst []int32, k int32) {
	i := 0
	if f := active.Load().fixScale; f != nil {
		i = f(dst, k)
	}
	scalarFixScale(dst[i:], k)
}

// --- Tier-1 stripe-mask kernels ---

// AbsOrRow writes mag[i] = |coef[i]| (two's-complement magnitude, so
// math.MinInt32 maps to 0x80000000 like the scalar loop) and returns
// the OR of all magnitudes written. len(coef) must be at least
// len(mag).
func AbsOrRow(mag []uint32, coef []int32) uint32 {
	i := 0
	var or uint32
	if f := active.Load().absOr; f != nil && len(coef) >= len(mag) {
		i, or = f(mag, coef)
	}
	return or | scalarAbsOr(mag[i:], coef[i:])
}

// OrRow computes dst[i] |= src[i] — folding a magnitude row into the
// Tier-1 stripe-column OR masks.
func OrRow(dst, src []uint32) {
	i := 0
	if f := active.Load().orU32; f != nil && len(src) >= len(dst) {
		i = f(dst, src)
	}
	scalarOrU32(dst[i:], src[i:])
}

// SignOrRow computes flags[i] |= bit for every i with coef[i] < 0 —
// seeding the Tier-1 sign flags from a coefficient row. len(coef) must
// be at least len(flags).
func SignOrRow(flags []uint32, coef []int32, bit uint32) {
	i := 0
	if f := active.Load().signOr; f != nil && len(coef) >= len(flags) {
		i = f(flags, coef, bit)
	}
	scalarSignOr(flags[i:], coef[i:], bit)
}
