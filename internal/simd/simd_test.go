package simd

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Differential tests: every vector kernel set must match the scalar
// oracle bit for bit on every length (including 0, 1, and odd tails)
// and at unaligned slice offsets. Lengths cross the 4- and 8-lane
// boundaries so both the vector body and the scalar tail are exercised.

var testLengths = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 100, 257, 1024}

// vectorSets returns every non-scalar kernel set available on this
// host. Empty on noasm builds or non-amd64 — the tests then pass
// trivially, which is correct: there is nothing to differ.
func vectorSets() []*kernels {
	var out []*kernels
	for _, ks := range available {
		if ks != &scalarSet {
			out = append(out, ks)
		}
	}
	return out
}

func randF32(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		switch rng.Intn(10) {
		case 0:
			s[i] = 0
		case 1:
			s[i] = float32(math.Inf(1))
		default:
			s[i] = (rng.Float32() - 0.5) * 4096
		}
	}
	return s
}

func randI32(rng *rand.Rand, n int, max int32) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(rng.Int63n(int64(max)*2+1) - int64(max))
	}
	return s
}

// off slices a buffer at a deliberately unaligned element offset so
// vector loads hit addresses that are not 16- or 32-byte aligned.
func offF32(s []float32) []float32 { return append(make([]float32, 3), s...)[3:] }
func offI32(s []int32) []int32     { return append(make([]int32, 3), s...)[3:] }
func offU32(s []uint32) []uint32   { return append(make([]uint32, 3), s...)[3:] }

func eqF32(t *testing.T, name string, got, want []float32) {
	t.Helper()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: [%d] = %x (%v), want %x (%v)", name, i,
				math.Float32bits(got[i]), got[i], math.Float32bits(want[i]), want[i])
		}
	}
}

func eqI32(t *testing.T, name string, got, want []int32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
}

func eqU32(t *testing.T, name string, got, want []uint32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %#x, want %#x", name, i, got[i], want[i])
		}
	}
}

func TestAddMulF32(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			a, b, c := randF32(rng, n), randF32(rng, n), randF32(rng, n)
			want := make([]float32, n)
			scalarAddMulF32(want, a, b, c, float32(-1.586134342))
			got := offF32(make([]float32, n))
			if m := ks.addMulF32(got, a, b, c, float32(-1.586134342)); m >= 0 {
				scalarAddMulF32(got[m:], a[m:], b[m:], c[m:], float32(-1.586134342))
			}
			eqF32(t, fmt.Sprintf("%s/n=%d", ks.name, n), got, want)
		}
	}
}

func TestAddMulF32Aliased(t *testing.T) {
	// The dwt call sites alias dst with a and b with c (the lifting
	// tail steps); verify the kernels tolerate full aliasing.
	rng := rand.New(rand.NewSource(2))
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			d0, e0 := randF32(rng, n), randF32(rng, n)
			want := append([]float32(nil), d0...)
			scalarAddMulF32(want, want, e0, e0, 0.25)
			got := append([]float32(nil), d0...)
			m := ks.addMulF32(got, got, e0, e0, 0.25)
			scalarAddMulF32(got[m:], got[m:], e0[m:], e0[m:], 0.25)
			eqF32(t, fmt.Sprintf("%s/n=%d", ks.name, n), got, want)
		}
	}
}

func TestAddMulScaleF32(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			s0, b, c := randF32(rng, n), randF32(rng, n), randF32(rng, n)
			want := append([]float32(nil), s0...)
			scalarAddMulScaleF32(want, b, c, 0.4435068522, 1.2301741)
			got := offF32(append([]float32(nil), s0...))
			m := ks.addMulScaleF32(got, b, c, 0.4435068522, 1.2301741)
			scalarAddMulScaleF32(got[m:], b[m:], c[m:], 0.4435068522, 1.2301741)
			eqF32(t, fmt.Sprintf("%s/n=%d", ks.name, n), got, want)
		}
	}
}

func TestMulConstF32(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			src := randF32(rng, n)
			want := make([]float32, n)
			scalarMulConstF32(want, src, 0.8128930655)
			got := offF32(make([]float32, n))
			m := ks.mulConstF32(got, src, 0.8128930655)
			scalarMulConstF32(got[m:], src[m:], 0.8128930655)
			eqF32(t, fmt.Sprintf("%s/n=%d", ks.name, n), got, want)
		}
	}
}

func TestQuantF32(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			src := randF32(rng, n)
			if n > 2 {
				src[0] = float32(math.Inf(1))  // overflow lane
				src[1] = float32(math.Inf(-1)) // negative overflow
				src[2] = float32(math.NaN())
			}
			want := make([]int32, n)
			scalarQuantF32(want, src, 1.0/0.0009765625)
			got := offI32(make([]int32, n))
			m := ks.quantF32(got, src, 1.0/0.0009765625)
			scalarQuantF32(got[m:], src[m:], 1.0/0.0009765625)
			eqI32(t, fmt.Sprintf("%s/n=%d", ks.name, n), got, want)
		}
	}
}

func TestICTFwd(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := &ICTParams{
		Off: 128,
		YR:  0.299, YG: 0.587, YB: 0.114,
		CbR: -0.168736, CbG: -0.331264, CbB: 0.5,
		CrR: 0.5, CrG: -0.418688, CrB: -0.081312,
	}
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			r, g, b := randI32(rng, n, 255), randI32(rng, n, 255), randI32(rng, n, 255)
			wy, wcb, wcr := make([]float32, n), make([]float32, n), make([]float32, n)
			scalarICTFwd(r, g, b, wy, wcb, wcr, p)
			gy, gcb, gcr := offF32(make([]float32, n)), offF32(make([]float32, n)), offF32(make([]float32, n))
			m := ks.ictFwd(r, g, b, gy, gcb, gcr, p)
			scalarICTFwd(r[m:], g[m:], b[m:], gy[m:], gcb[m:], gcr[m:], p)
			eqF32(t, fmt.Sprintf("%s/y/n=%d", ks.name, n), gy, wy)
			eqF32(t, fmt.Sprintf("%s/cb/n=%d", ks.name, n), gcb, wcb)
			eqF32(t, fmt.Sprintf("%s/cr/n=%d", ks.name, n), gcr, wcr)
		}
	}
}

func TestShr12Kernels(t *testing.T) {
	type kcase struct {
		name   string
		scalar func(dst, a, b, c []int32)
		vec    func(ks *kernels) func(dst, a, b, c []int32) int
	}
	cases := []kcase{
		{"addShr1", scalarAddShr1I32, func(ks *kernels) func(dst, a, b, c []int32) int { return ks.addShr1I32 }},
		{"subShr1", scalarSubShr1I32, func(ks *kernels) func(dst, a, b, c []int32) int { return ks.subShr1I32 }},
		{"addShr2", scalarAddShr2I32, func(ks *kernels) func(dst, a, b, c []int32) int { return ks.addShr2I32 }},
		{"subShr2", scalarSubShr2I32, func(ks *kernels) func(dst, a, b, c []int32) int { return ks.subShr2I32 }},
	}
	rng := rand.New(rand.NewSource(7))
	for _, tc := range cases {
		for _, ks := range vectorSets() {
			for _, n := range testLengths {
				// Include values near the int32 extremes to pin wrap
				// behavior, matching Go's signed overflow semantics.
				a, b, c := randI32(rng, n, 1<<20), randI32(rng, n, 1<<20), randI32(rng, n, 1<<20)
				if n > 1 {
					b[0], c[0] = math.MaxInt32, math.MaxInt32
					b[1], c[1] = math.MinInt32, math.MinInt32
				}
				want := make([]int32, n)
				tc.scalar(want, a, b, c)
				got := offI32(make([]int32, n))
				m := tc.vec(ks)(got, a, b, c)
				tc.scalar(got[m:], a[m:], b[m:], c[m:])
				eqI32(t, fmt.Sprintf("%s/%s/n=%d", tc.name, ks.name, n), got, want)
			}
		}
	}
}

func TestAddConstI32(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			base := randI32(rng, n, 1<<24)
			want := append([]int32(nil), base...)
			scalarAddConstI32(want, -128)
			got := offI32(append([]int32(nil), base...))
			m := ks.addConstI32(got, -128)
			scalarAddConstI32(got[m:], -128)
			eqI32(t, fmt.Sprintf("%s/n=%d", ks.name, n), got, want)
		}
	}
}

func TestRCTFwd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			r0, g0, b0 := randI32(rng, n, 255), randI32(rng, n, 255), randI32(rng, n, 255)
			wr, wg, wb := append([]int32(nil), r0...), append([]int32(nil), g0...), append([]int32(nil), b0...)
			scalarRCTFwd(wr, wg, wb, 128)
			gr, gg, gb := offI32(append([]int32(nil), r0...)), offI32(append([]int32(nil), g0...)), offI32(append([]int32(nil), b0...))
			m := ks.rctFwd(gr, gg, gb, 128)
			scalarRCTFwd(gr[m:], gg[m:], gb[m:], 128)
			eqI32(t, fmt.Sprintf("%s/r/n=%d", ks.name, n), gr, wr)
			eqI32(t, fmt.Sprintf("%s/g/n=%d", ks.name, n), gg, wg)
			eqI32(t, fmt.Sprintf("%s/b/n=%d", ks.name, n), gb, wb)
		}
	}
}

// fixKs are the Q13 lifting/scaling constants actually used by the
// fixed-point 9/7 path, plus sign variants. All satisfy |k| < 2^18,
// the precondition of the vector fixMul decomposition.
var fixKs = []int32{-12994, -434, 7233, 3633, 13318, 5038, 8192, -8192, 1, -1}

func TestFixAddMul(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, ks := range vectorSets() {
		for _, k := range fixKs {
			for _, n := range testLengths {
				d0 := randI32(rng, n, 1<<26)
				b, c := randI32(rng, n, 1<<26), randI32(rng, n, 1<<26)
				want := append([]int32(nil), d0...)
				scalarFixAddMul(want, b, c, k)
				got := offI32(append([]int32(nil), d0...))
				m := ks.fixAddMul(got, b, c, k)
				scalarFixAddMul(got[m:], b[m:], c[m:], k)
				eqI32(t, fmt.Sprintf("%s/k=%d/n=%d", ks.name, k, n), got, want)
			}
		}
	}
}

func TestFixScale(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, ks := range vectorSets() {
		for _, k := range fixKs {
			for _, n := range testLengths {
				d0 := randI32(rng, n, 1<<28)
				want := append([]int32(nil), d0...)
				scalarFixScale(want, k)
				got := offI32(append([]int32(nil), d0...))
				m := ks.fixScale(got, k)
				scalarFixScale(got[m:], k)
				eqI32(t, fmt.Sprintf("%s/k=%d/n=%d", ks.name, k, n), got, want)
			}
		}
	}
}

func TestAbsOr(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			coef := randI32(rng, n, 1<<30)
			if n > 0 {
				coef[0] = math.MinInt32 // |MinInt32| wraps to 0x80000000, same both ways
			}
			want := make([]uint32, n)
			wantOr := scalarAbsOr(want, coef)
			got := offU32(make([]uint32, n))
			m, or := ks.absOr(got, coef)
			or |= scalarAbsOr(got[m:], coef[m:])
			eqU32(t, fmt.Sprintf("%s/n=%d", ks.name, n), got, want)
			if or != wantOr {
				t.Fatalf("%s/n=%d: or = %#x, want %#x", ks.name, n, or, wantOr)
			}
		}
	}
}

func TestOrU32(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			d0 := make([]uint32, n)
			src := make([]uint32, n)
			for i := range d0 {
				d0[i], src[i] = rng.Uint32(), rng.Uint32()
			}
			want := append([]uint32(nil), d0...)
			scalarOrU32(want, src)
			got := offU32(append([]uint32(nil), d0...))
			m := ks.orU32(got, src)
			scalarOrU32(got[m:], src[m:])
			eqU32(t, fmt.Sprintf("%s/n=%d", ks.name, n), got, want)
		}
	}
}

func TestSignOr(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const bit = 1 << 6
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			coef := randI32(rng, n, 1<<30)
			f0 := make([]uint32, n)
			for i := range f0 {
				f0[i] = rng.Uint32() &^ uint32(bit)
			}
			want := append([]uint32(nil), f0...)
			scalarSignOr(want, coef, bit)
			got := offU32(append([]uint32(nil), f0...))
			m := ks.signOr(got, coef, bit)
			scalarSignOr(got[m:], coef[m:], bit)
			eqU32(t, fmt.Sprintf("%s/n=%d", ks.name, n), got, want)
		}
	}
}

// TestExportedWrappersUseActive pins that the exported row functions
// agree with the scalar oracle under every selectable kernel set,
// driving the same dispatch path production code uses.
func TestExportedWrappersUseActive(t *testing.T) {
	prev := Kernel()
	defer Use(prev)
	rng := rand.New(rand.NewSource(15))
	for _, name := range Available() {
		if err := Use(name); err != nil {
			t.Fatal(err)
		}
		n := 53 // odd: vector body + tail
		a, b, c := randF32(rng, n), randF32(rng, n), randF32(rng, n)
		want := make([]float32, n)
		scalarAddMulF32(want, a, b, c, 0.25)
		got := make([]float32, n)
		AddMulRow(got, a, b, c, 0.25)
		eqF32(t, "AddMulRow/"+name, got, want)

		d := randI32(rng, n, 1<<26)
		wantI := append([]int32(nil), d...)
		scalarFixScale(wantI, -12994)
		gotI := append([]int32(nil), d...)
		FixScaleRow(gotI, -12994)
		eqI32(t, "FixScaleRow/"+name, gotI, wantI)
	}
}

func TestUseRejectsUnknown(t *testing.T) {
	if err := Use("altivec"); err == nil {
		t.Fatal("Use(altivec) should fail")
	}
}

func TestKernelReportsName(t *testing.T) {
	names := Available()
	if len(names) == 0 {
		t.Fatal("no kernel sets available")
	}
	if names[0] != "scalar" {
		t.Fatalf("first available set = %q, want scalar", names[0])
	}
	cur := Kernel()
	found := false
	for _, n := range names {
		if n == cur {
			found = true
		}
	}
	if !found {
		t.Fatalf("active kernel %q not in available set %v", cur, names)
	}
}

func TestDequantF32(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	const delta = 0.0009765625
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			src := randI32(rng, n, 1<<20)
			if n > 2 {
				src[0] = 0 // the dead-zone lane must come out exactly 0
				src[1] = math.MaxInt32
				src[2] = math.MinInt32
			}
			want := make([]float32, n)
			scalarDequantF32(want, src, delta)
			got := offF32(make([]float32, n))
			m := ks.dequantF32(got, src, delta)
			scalarDequantF32(got[m:], src[m:], delta)
			eqF32(t, fmt.Sprintf("%s/n=%d", ks.name, n), got, want)
		}
	}
}

func TestICTInv(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := &ICTInvParams{
		Off: 128,
		RCr: 1.402,
		GCb: 0.344136, GCr: 0.714136,
		BCb: 1.772,
	}
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			y, cb, cr := randF32(rng, n), randF32(rng, n), randF32(rng, n)
			if n > 1 {
				y[0] = float32(math.NaN()) // truncation overflow lane
				y[1] = float32(math.Inf(-1))
			}
			wr, wg, wb := make([]int32, n), make([]int32, n), make([]int32, n)
			scalarICTInv(y, cb, cr, wr, wg, wb, p)
			gr, gg, gb := offI32(make([]int32, n)), offI32(make([]int32, n)), offI32(make([]int32, n))
			m := ks.ictInv(y, cb, cr, gr, gg, gb, p)
			scalarICTInv(y[m:], cb[m:], cr[m:], gr[m:], gg[m:], gb[m:], p)
			eqI32(t, fmt.Sprintf("%s/r/n=%d", ks.name, n), gr, wr)
			eqI32(t, fmt.Sprintf("%s/g/n=%d", ks.name, n), gg, wg)
			eqI32(t, fmt.Sprintf("%s/b/n=%d", ks.name, n), gb, wb)
		}
	}
}

func TestRoundAddF32(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			src := randF32(rng, n)
			if n > 2 {
				src[0] = float32(math.Inf(1))
				src[1] = float32(math.Inf(-1))
				src[2] = float32(math.NaN())
			}
			want := make([]int32, n)
			scalarRoundAddF32(want, src, 128)
			got := offI32(make([]int32, n))
			m := ks.roundAddF32(got, src, 128)
			scalarRoundAddF32(got[m:], src[m:], 128)
			eqI32(t, fmt.Sprintf("%s/n=%d", ks.name, n), got, want)
		}
	}
}

func TestRCTInv(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			y0, cb0, cr0 := randI32(rng, n, 1<<12), randI32(rng, n, 1<<12), randI32(rng, n, 1<<12)
			wy, wcb, wcr := append([]int32(nil), y0...), append([]int32(nil), cb0...), append([]int32(nil), cr0...)
			scalarRCTInv(wy, wcb, wcr, 128)
			gy, gcb, gcr := offI32(append([]int32(nil), y0...)), offI32(append([]int32(nil), cb0...)), offI32(append([]int32(nil), cr0...))
			m := ks.rctInv(gy, gcb, gcr, 128)
			scalarRCTInv(gy[m:], gcb[m:], gcr[m:], 128)
			eqI32(t, fmt.Sprintf("%s/r/n=%d", ks.name, n), gy, wy)
			eqI32(t, fmt.Sprintf("%s/g/n=%d", ks.name, n), gcb, wcb)
			eqI32(t, fmt.Sprintf("%s/b/n=%d", ks.name, n), gcr, wcr)
		}
	}
}

func TestClampI32(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, max := range []int32{255, 4095, 65535} {
		for _, ks := range vectorSets() {
			for _, n := range testLengths {
				d0 := randI32(rng, n, 1<<17)
				if n > 1 {
					d0[0] = math.MinInt32
					d0[1] = math.MaxInt32
				}
				want := append([]int32(nil), d0...)
				scalarClampI32(want, max)
				got := offI32(append([]int32(nil), d0...))
				m := ks.clampI32(got, max)
				scalarClampI32(got[m:], max)
				eqI32(t, fmt.Sprintf("%s/max=%d/n=%d", ks.name, max, n), got, want)
			}
		}
	}
}

func TestInterleave2(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, ks := range vectorSets() {
		for _, n := range testLengths {
			// n is the pair count; even gets one extra element so the
			// odd-total-length layout of the lifting lines is covered.
			even, odd := randI32(rng, n+1, 1<<30), randI32(rng, n, 1<<30)
			want := make([]int32, 2*n)
			scalarInterleave2I32(want, even, odd)
			got := offI32(make([]int32, 2*n))
			m := ks.il2I32(got, even, odd)
			scalarInterleave2I32(got[2*m:], even[m:], odd[m:])
			eqI32(t, fmt.Sprintf("%s/i32/n=%d", ks.name, n), got, want)

			ef, of := randF32(rng, n+1), randF32(rng, n)
			wantF := make([]float32, 2*n)
			scalarInterleave2F32(wantF, ef, of)
			gotF := offF32(make([]float32, 2*n))
			mf := ks.il2F32(gotF, ef, of)
			scalarInterleave2F32(gotF[2*mf:], ef[mf:], of[mf:])
			eqF32(t, fmt.Sprintf("%s/f32/n=%d", ks.name, n), gotF, wantF)
		}
	}
}
