package simd

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
)

// Fuzz harnesses: feed arbitrary bytes as row contents and check every
// available vector kernel set against the scalar oracle bit for bit.
// The byte stream is split into float32/int32 lanes, so the fuzzer can
// reach NaNs, infinities, denormals, and both int32 extremes.

func bytesToF32(data []byte) []float32 {
	out := make([]float32, len(data)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:]))
	}
	return out
}

func bytesToI32(data []byte) []int32 {
	out := make([]int32, len(data)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(data[i*4:]))
	}
	return out
}

func FuzzAddMulF32(f *testing.F) {
	f.Add([]byte("seed-row-data-for-fuzzing-0123456789abcdef"), float32(-1.586134342))
	f.Add(make([]byte, 97), float32(0.25))
	f.Fuzz(func(t *testing.T, data []byte, k float32) {
		row := bytesToF32(data)
		n := len(row) / 4
		a, b, c := row[:n], row[n:2*n], row[2*n:3*n]
		want := make([]float32, n)
		scalarAddMulF32(want, a, b, c, k)
		for _, ks := range vectorSets() {
			got := offF32(make([]float32, n))
			m := ks.addMulF32(got, a, b, c, k)
			scalarAddMulF32(got[m:], a[m:], b[m:], c[m:], k)
			eqF32(t, fmt.Sprintf("%s/n=%d", ks.name, n), got, want)
		}
	})
}

func FuzzQuantF32(f *testing.F) {
	f.Add([]byte("quantizer-fuzz-seed-row-payload!!"), float32(1024))
	f.Fuzz(func(t *testing.T, data []byte, inv float32) {
		src := bytesToF32(data)
		want := make([]int32, len(src))
		scalarQuantF32(want, src, inv)
		for _, ks := range vectorSets() {
			got := offI32(make([]int32, len(src)))
			m := ks.quantF32(got, src, inv)
			scalarQuantF32(got[m:], src[m:], inv)
			eqI32(t, fmt.Sprintf("%s/n=%d", ks.name, len(src)), got, want)
		}
	})
}

func FuzzFixAddMul(f *testing.F) {
	f.Add([]byte("fixed-point-fuzz-seed-payload-97!"), int32(-12994))
	f.Fuzz(func(t *testing.T, data []byte, k int32) {
		// Clamp k to the documented precondition of the vector
		// decomposition; the lifting constants are all far smaller.
		k %= 1 << 17
		row := bytesToI32(data)
		n := len(row) / 3
		d0, b, c := row[:n], row[n:2*n], row[2*n:3*n]
		want := append([]int32(nil), d0...)
		scalarFixAddMul(want, b, c, k)
		for _, ks := range vectorSets() {
			got := offI32(append([]int32(nil), d0...))
			m := ks.fixAddMul(got, b, c, k)
			scalarFixAddMul(got[m:], b[m:], c[m:], k)
			eqI32(t, fmt.Sprintf("%s/k=%d/n=%d", ks.name, k, n), got, want)
		}
	})
}

func FuzzLift53Rows(f *testing.F) {
	f.Add([]byte("reversible-lifting-row-fuzz-seed"))
	f.Fuzz(func(t *testing.T, data []byte) {
		row := bytesToI32(data)
		n := len(row) / 3
		a, b, c := row[:n], row[n:2*n], row[2*n:3*n]
		type kc struct {
			name   string
			scalar func(dst, a, b, c []int32)
			vec    func(ks *kernels) func(dst, a, b, c []int32) int
		}
		for _, tc := range []kc{
			{"addShr1", scalarAddShr1I32, func(ks *kernels) func(dst, a, b, c []int32) int { return ks.addShr1I32 }},
			{"subShr1", scalarSubShr1I32, func(ks *kernels) func(dst, a, b, c []int32) int { return ks.subShr1I32 }},
			{"addShr2", scalarAddShr2I32, func(ks *kernels) func(dst, a, b, c []int32) int { return ks.addShr2I32 }},
			{"subShr2", scalarSubShr2I32, func(ks *kernels) func(dst, a, b, c []int32) int { return ks.subShr2I32 }},
		} {
			want := make([]int32, n)
			tc.scalar(want, a, b, c)
			for _, ks := range vectorSets() {
				got := offI32(make([]int32, n))
				m := tc.vec(ks)(got, a, b, c)
				tc.scalar(got[m:], a[m:], b[m:], c[m:])
				eqI32(t, fmt.Sprintf("%s/%s/n=%d", tc.name, ks.name, n), got, want)
			}
		}
	})
}

func FuzzT1Masks(f *testing.F) {
	f.Add([]byte("tier1-stripe-mask-fuzz-seed-data"), uint32(1<<6))
	f.Fuzz(func(t *testing.T, data []byte, bit uint32) {
		coef := bytesToI32(data)
		n := len(coef)
		wantMag := make([]uint32, n)
		wantOr := scalarAbsOr(wantMag, coef)
		wantFlags := make([]uint32, n)
		scalarSignOr(wantFlags, coef, bit)
		for _, ks := range vectorSets() {
			gotMag := offU32(make([]uint32, n))
			m, or := ks.absOr(gotMag, coef)
			or |= scalarAbsOr(gotMag[m:], coef[m:])
			eqU32(t, fmt.Sprintf("absOr/%s/n=%d", ks.name, n), gotMag, wantMag)
			if or != wantOr {
				t.Fatalf("absOr/%s/n=%d: or = %#x, want %#x", ks.name, n, or, wantOr)
			}
			gotFlags := offU32(make([]uint32, n))
			m = ks.signOr(gotFlags, coef, bit)
			scalarSignOr(gotFlags[m:], coef[m:], bit)
			eqU32(t, fmt.Sprintf("signOr/%s/n=%d", ks.name, n), gotFlags, wantFlags)
		}
	})
}
