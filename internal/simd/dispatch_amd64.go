//go:build amd64 && !noasm

package simd

import "os"

// cpuid and xgetbv0 are implemented in cpuid_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// hasAVX2 reports AVX2 usability: the CPU must advertise AVX and AVX2,
// and the OS must have enabled XMM+YMM state saving (OSXSAVE + XCR0
// bits 1 and 2) — the same gate golang.org/x/sys/cpu applies.
func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if xcr0, _ := xgetbv0(); xcr0&6 != 6 { // XMM and YMM state enabled
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

var sse2Set = kernels{
	name:           "sse2",
	addMulF32:      addMulF32SSE2,
	addMulScaleF32: addMulScaleF32SSE2,
	mulConstF32:    mulConstF32SSE2,
	quantF32:       quantF32SSE2,
	dequantF32:     dequantF32SSE2,
	ictFwd:         ictFwdSSE2,
	ictInv:         ictInvSSE2,
	roundAddF32:    roundAddF32SSE2,
	addShr1I32:     addShr1I32SSE2,
	subShr1I32:     subShr1I32SSE2,
	addShr2I32:     addShr2I32SSE2,
	subShr2I32:     subShr2I32SSE2,
	addConstI32:    addConstI32SSE2,
	rctFwd:         rctFwdSSE2,
	rctInv:         rctInvSSE2,
	clampI32:       clampI32SSE2,
	fixAddMul:      fixAddMulSSE2,
	fixScale:       fixScaleSSE2,
	il2I32:         il2I32SSE2,
	il2F32:         il2F32SSE2,
	absOr:          absOrSSE2,
	orU32:          orU32SSE2,
	signOr:         signOrSSE2,
}

var avx2Set = kernels{
	name:           "avx2",
	addMulF32:      addMulF32AVX2,
	addMulScaleF32: addMulScaleF32AVX2,
	mulConstF32:    mulConstF32AVX2,
	quantF32:       quantF32AVX2,
	dequantF32:     dequantF32AVX2,
	ictFwd:         ictFwdAVX2,
	ictInv:         ictInvAVX2,
	roundAddF32:    roundAddF32AVX2,
	addShr1I32:     addShr1I32AVX2,
	subShr1I32:     subShr1I32AVX2,
	addShr2I32:     addShr2I32AVX2,
	subShr2I32:     subShr2I32AVX2,
	addConstI32:    addConstI32AVX2,
	rctFwd:         rctFwdAVX2,
	rctInv:         rctInvAVX2,
	clampI32:       clampI32AVX2,
	fixAddMul:      fixAddMulAVX2,
	fixScale:       fixScaleAVX2,
	il2I32:         il2I32AVX2,
	il2F32:         il2F32AVX2,
	absOr:          absOrAVX2,
	orU32:          orU32AVX2,
	signOr:         signOrAVX2,
}

// detect probes the CPU once, builds the available-set list (narrowest
// first) and installs the widest set — unless J2K_NOSIMD kills the
// vector paths, in which case the sets stay selectable via Use but the
// scalar oracle runs.
func detect() {
	available = []*kernels{&scalarSet, &sse2Set} // SSE2 is amd64 baseline
	best := &sse2Set
	if hasAVX2() {
		available = append(available, &avx2Set)
		best = &avx2Set
	}
	if v := os.Getenv("J2K_NOSIMD"); v != "" && v != "0" {
		best = &scalarSet
	}
	active.Store(best)
}
