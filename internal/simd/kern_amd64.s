//go:build amd64 && !noasm

#include "textflag.h"

// Vector kernels for the hot elementwise loops of the encoder.
//
// Conventions (see DESIGN.md §7):
//   - Every kernel processes the longest whole-vector prefix of the row
//     (n &^ 7 elements for AVX2, n &^ 3 for SSE2) and returns that count
//     in n; the Go wrapper runs the scalar oracle over the tail.
//   - All memory accesses use unaligned loads/stores (VMOVUPS / VMOVDQU /
//     MOVUPS / MOVOU), so callers may pass slices at any offset.
//   - Float kernels use only packed add/sub/mul — never FMA — so every
//     lane performs the same sequence of IEEE-754 float32 roundings as
//     the Go scalar loop and results are bit-identical.
//   - SSE2 arithmetic never takes a memory operand (m128 forms require
//     16-byte alignment); operands are loaded with MOVUPS/MOVOU first.
//   - AVX2 kernels end with VZEROUPPER to avoid SSE/AVX transition
//     stalls in the surrounding Go code.

// ---------------------------------------------------------------------
// addMulF32: dst[i] = a[i] + k*(b[i]+c[i])
// ---------------------------------------------------------------------

// func addMulF32AVX2(dst, a, b, c []float32, k float32) (n int)
TEXT ·addMulF32AVX2(SB), NOSPLIT, $0-112
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	VBROADCASTSS k+96(FP), Y0
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVUPS (R8)(CX*4), Y1
	VADDPS  (R9)(CX*4), Y1, Y1
	VMULPS  Y0, Y1, Y1
	VADDPS  (SI)(CX*4), Y1, Y1
	VMOVUPS Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+104(FP)
	RET

// func addMulF32SSE2(dst, a, b, c []float32, k float32) (n int)
TEXT ·addMulF32SSE2(SB), NOSPLIT, $0-112
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	MOVSS  k+96(FP), X0
	SHUFPS $0x00, X0, X0
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVUPS (R8)(CX*4), X1
	MOVUPS (R9)(CX*4), X2
	ADDPS  X2, X1
	MULPS  X0, X1
	MOVUPS (SI)(CX*4), X3
	ADDPS  X3, X1
	MOVUPS X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+104(FP)
	RET

// ---------------------------------------------------------------------
// addMulScaleF32: s[i] = (s[i] + k*(b[i]+c[i])) * scale
// ---------------------------------------------------------------------

// func addMulScaleF32AVX2(s, b, c []float32, k, scale float32) (n int)
TEXT ·addMulScaleF32AVX2(SB), NOSPLIT, $0-88
	MOVQ s_base+0(FP), DI
	MOVQ s_len+8(FP), DX
	MOVQ b_base+24(FP), R8
	MOVQ c_base+48(FP), R9
	VBROADCASTSS k+72(FP), Y0
	VBROADCASTSS scale+76(FP), Y2
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVUPS (R8)(CX*4), Y1
	VADDPS  (R9)(CX*4), Y1, Y1
	VMULPS  Y0, Y1, Y1
	VADDPS  (DI)(CX*4), Y1, Y1
	VMULPS  Y2, Y1, Y1
	VMOVUPS Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+80(FP)
	RET

// func addMulScaleF32SSE2(s, b, c []float32, k, scale float32) (n int)
TEXT ·addMulScaleF32SSE2(SB), NOSPLIT, $0-88
	MOVQ s_base+0(FP), DI
	MOVQ s_len+8(FP), DX
	MOVQ b_base+24(FP), R8
	MOVQ c_base+48(FP), R9
	MOVSS  k+72(FP), X0
	SHUFPS $0x00, X0, X0
	MOVSS  scale+76(FP), X4
	SHUFPS $0x00, X4, X4
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVUPS (R8)(CX*4), X1
	MOVUPS (R9)(CX*4), X2
	ADDPS  X2, X1
	MULPS  X0, X1
	MOVUPS (DI)(CX*4), X3
	ADDPS  X3, X1
	MULPS  X4, X1
	MOVUPS X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+80(FP)
	RET

// ---------------------------------------------------------------------
// mulConstF32: dst[i] = src[i] * k
// ---------------------------------------------------------------------

// func mulConstF32AVX2(dst, src []float32, k float32) (n int)
TEXT ·mulConstF32AVX2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ src_base+24(FP), SI
	VBROADCASTSS k+48(FP), Y0
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVUPS (SI)(CX*4), Y1
	VMULPS  Y0, Y1, Y1
	VMOVUPS Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+56(FP)
	RET

// func mulConstF32SSE2(dst, src []float32, k float32) (n int)
TEXT ·mulConstF32SSE2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ src_base+24(FP), SI
	MOVSS  k+48(FP), X0
	SHUFPS $0x00, X0, X0
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVUPS (SI)(CX*4), X1
	MULPS  X0, X1
	MOVUPS X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+56(FP)
	RET

// ---------------------------------------------------------------------
// quantF32: dst[i] = trunc(src[i] * inv)  (dead-zone quantizer core;
// CVTTPS2DQ truncates toward zero and yields 0x80000000 on overflow
// and NaN, exactly like gc's scalar CVTTSS2SL on both branches of the
// sign split in the Go loop)
// ---------------------------------------------------------------------

// func quantF32AVX2(dst []int32, src []float32, inv float32) (n int)
TEXT ·quantF32AVX2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), DX
	VBROADCASTSS inv+48(FP), Y0
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVUPS    (SI)(CX*4), Y1
	VMULPS     Y0, Y1, Y1
	VCVTTPS2DQ Y1, Y1
	VMOVDQU    Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+56(FP)
	RET

// func quantF32SSE2(dst []int32, src []float32, inv float32) (n int)
TEXT ·quantF32SSE2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), DX
	MOVSS  inv+48(FP), X0
	SHUFPS $0x00, X0, X0
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVUPS    (SI)(CX*4), X1
	MULPS     X0, X1
	CVTTPS2PL X1, X1
	MOVOU     X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+56(FP)
	RET

// ---------------------------------------------------------------------
// ictFwd: irreversible color transform.
//   rr = float32(r[i]) - off (likewise gg, bb)
//   y  = (YR*rr + YG*gg) + YB*bb   (left-assoc, same rounding order
//   cb = (CbR*rr + CbG*gg) + CbB*bb as the scalar loop)
//   cr = (CrR*rr + CrG*gg) + CrB*bb
// ICTParams field offsets: Off=0 YR=4 YG=8 YB=12 CbR=16 CbG=20 CbB=24
// CrR=28 CrG=32 CrB=36.
// ---------------------------------------------------------------------

// func ictFwdAVX2(r, g, b []int32, y, cb, cr []float32, p *ICTParams) (n int)
TEXT ·ictFwdAVX2(SB), NOSPLIT, $0-160
	MOVQ r_base+0(FP), SI
	MOVQ r_len+8(FP), DX
	MOVQ g_base+24(FP), R8
	MOVQ b_base+48(FP), R9
	MOVQ y_base+72(FP), R10
	MOVQ cb_base+96(FP), R11
	MOVQ cr_base+120(FP), R12
	MOVQ p+144(FP), BX
	VBROADCASTSS 0(BX), Y15  // off
	VBROADCASTSS 4(BX), Y6   // YR
	VBROADCASTSS 8(BX), Y7   // YG
	VBROADCASTSS 12(BX), Y8  // YB
	VBROADCASTSS 16(BX), Y9  // CbR
	VBROADCASTSS 20(BX), Y10 // CbG
	VBROADCASTSS 24(BX), Y11 // CbB
	VBROADCASTSS 28(BX), Y12 // CrR
	VBROADCASTSS 32(BX), Y13 // CrG
	VBROADCASTSS 36(BX), Y14 // CrB
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VCVTDQ2PS (SI)(CX*4), Y0
	VSUBPS    Y15, Y0, Y0    // rr
	VCVTDQ2PS (R8)(CX*4), Y1
	VSUBPS    Y15, Y1, Y1    // gg
	VCVTDQ2PS (R9)(CX*4), Y2
	VSUBPS    Y15, Y2, Y2    // bb

	VMULPS Y0, Y6, Y3        // YR*rr
	VMULPS Y1, Y7, Y4        // YG*gg
	VADDPS Y4, Y3, Y3
	VMULPS Y2, Y8, Y4        // YB*bb
	VADDPS Y4, Y3, Y3
	VMOVUPS Y3, (R10)(CX*4)

	VMULPS Y0, Y9, Y3
	VMULPS Y1, Y10, Y4
	VADDPS Y4, Y3, Y3
	VMULPS Y2, Y11, Y4
	VADDPS Y4, Y3, Y3
	VMOVUPS Y3, (R11)(CX*4)

	VMULPS Y0, Y12, Y3
	VMULPS Y1, Y13, Y4
	VADDPS Y4, Y3, Y3
	VMULPS Y2, Y14, Y4
	VADDPS Y4, Y3, Y3
	VMOVUPS Y3, (R12)(CX*4)

	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+152(FP)
	RET

// func ictFwdSSE2(r, g, b []int32, y, cb, cr []float32, p *ICTParams) (n int)
TEXT ·ictFwdSSE2(SB), NOSPLIT, $0-160
	MOVQ r_base+0(FP), SI
	MOVQ r_len+8(FP), DX
	MOVQ g_base+24(FP), R8
	MOVQ b_base+48(FP), R9
	MOVQ y_base+72(FP), R10
	MOVQ cb_base+96(FP), R11
	MOVQ cr_base+120(FP), R12
	MOVQ p+144(FP), BX
	MOVSS  0(BX), X5
	SHUFPS $0x00, X5, X5     // off
	MOVSS  4(BX), X6
	SHUFPS $0x00, X6, X6     // YR
	MOVSS  8(BX), X7
	SHUFPS $0x00, X7, X7     // YG
	MOVSS  12(BX), X8
	SHUFPS $0x00, X8, X8     // YB
	MOVSS  16(BX), X9
	SHUFPS $0x00, X9, X9     // CbR
	MOVSS  20(BX), X10
	SHUFPS $0x00, X10, X10   // CbG
	MOVSS  24(BX), X11
	SHUFPS $0x00, X11, X11   // CbB
	MOVSS  28(BX), X12
	SHUFPS $0x00, X12, X12   // CrR
	MOVSS  32(BX), X13
	SHUFPS $0x00, X13, X13   // CrG
	MOVSS  36(BX), X14
	SHUFPS $0x00, X14, X14   // CrB
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU    (SI)(CX*4), X0
	CVTPL2PS X0, X0
	SUBPS    X5, X0          // rr
	MOVOU    (R8)(CX*4), X1
	CVTPL2PS X1, X1
	SUBPS    X5, X1          // gg
	MOVOU    (R9)(CX*4), X2
	CVTPL2PS X2, X2
	SUBPS    X5, X2          // bb

	MOVAPS X6, X3
	MULPS  X0, X3
	MOVAPS X7, X4
	MULPS  X1, X4
	ADDPS  X4, X3
	MOVAPS X8, X4
	MULPS  X2, X4
	ADDPS  X4, X3
	MOVUPS X3, (R10)(CX*4)

	MOVAPS X9, X3
	MULPS  X0, X3
	MOVAPS X10, X4
	MULPS  X1, X4
	ADDPS  X4, X3
	MOVAPS X11, X4
	MULPS  X2, X4
	ADDPS  X4, X3
	MOVUPS X3, (R11)(CX*4)

	MOVAPS X12, X3
	MULPS  X0, X3
	MOVAPS X13, X4
	MULPS  X1, X4
	ADDPS  X4, X3
	MOVAPS X14, X4
	MULPS  X2, X4
	ADDPS  X4, X3
	MOVUPS X3, (R12)(CX*4)

	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+152(FP)
	RET

// ---------------------------------------------------------------------
// 5/3 integer lifting rows. Two's-complement wrap and arithmetic shift
// match the Go scalar loops on every input.
//   addShr1: dst[i] = a[i] + ((b[i]+c[i]) >> 1)
//   subShr1: dst[i] = a[i] - ((b[i]+c[i]) >> 1)
//   addShr2: dst[i] = a[i] + ((b[i]+c[i]+2) >> 2)
//   subShr2: dst[i] = a[i] - ((b[i]+c[i]+2) >> 2)
// ---------------------------------------------------------------------

// func addShr1I32AVX2(dst, a, b, c []int32) (n int)
TEXT ·addShr1I32AVX2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (R8)(CX*4), Y1
	VPADDD  (R9)(CX*4), Y1, Y1
	VPSRAD  $1, Y1, Y1
	VPADDD  (SI)(CX*4), Y1, Y1
	VMOVDQU Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+96(FP)
	RET

// func addShr1I32SSE2(dst, a, b, c []int32) (n int)
TEXT ·addShr1I32SSE2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (R8)(CX*4), X1
	MOVOU (R9)(CX*4), X2
	PADDL X2, X1
	PSRAL $1, X1
	MOVOU (SI)(CX*4), X3
	PADDL X3, X1
	MOVOU X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+96(FP)
	RET

// func subShr1I32AVX2(dst, a, b, c []int32) (n int)
TEXT ·subShr1I32AVX2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (R8)(CX*4), Y1
	VPADDD  (R9)(CX*4), Y1, Y1
	VPSRAD  $1, Y1, Y1
	VMOVDQU (SI)(CX*4), Y2
	VPSUBD  Y1, Y2, Y2
	VMOVDQU Y2, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+96(FP)
	RET

// func subShr1I32SSE2(dst, a, b, c []int32) (n int)
TEXT ·subShr1I32SSE2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (R8)(CX*4), X1
	MOVOU (R9)(CX*4), X2
	PADDL X2, X1
	PSRAL $1, X1
	MOVOU (SI)(CX*4), X3
	PSUBL X1, X3
	MOVOU X3, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+96(FP)
	RET

// func addShr2I32AVX2(dst, a, b, c []int32) (n int)
TEXT ·addShr2I32AVX2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	VPCMPEQD Y7, Y7, Y7
	VPSRLD   $31, Y7, Y7
	VPADDD   Y7, Y7, Y7      // 2 in every lane
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (R8)(CX*4), Y1
	VPADDD  (R9)(CX*4), Y1, Y1
	VPADDD  Y7, Y1, Y1
	VPSRAD  $2, Y1, Y1
	VPADDD  (SI)(CX*4), Y1, Y1
	VMOVDQU Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+96(FP)
	RET

// func addShr2I32SSE2(dst, a, b, c []int32) (n int)
TEXT ·addShr2I32SSE2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	PCMPEQL X7, X7
	PSRLL   $31, X7
	PADDL   X7, X7           // 2 in every lane
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (R8)(CX*4), X1
	MOVOU (R9)(CX*4), X2
	PADDL X2, X1
	PADDL X7, X1
	PSRAL $2, X1
	MOVOU (SI)(CX*4), X3
	PADDL X3, X1
	MOVOU X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+96(FP)
	RET

// func subShr2I32AVX2(dst, a, b, c []int32) (n int)
TEXT ·subShr2I32AVX2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	VPCMPEQD Y7, Y7, Y7
	VPSRLD   $31, Y7, Y7
	VPADDD   Y7, Y7, Y7      // 2 in every lane
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (R8)(CX*4), Y1
	VPADDD  (R9)(CX*4), Y1, Y1
	VPADDD  Y7, Y1, Y1
	VPSRAD  $2, Y1, Y1
	VMOVDQU (SI)(CX*4), Y2
	VPSUBD  Y1, Y2, Y2
	VMOVDQU Y2, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+96(FP)
	RET

// func subShr2I32SSE2(dst, a, b, c []int32) (n int)
TEXT ·subShr2I32SSE2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	PCMPEQL X7, X7
	PSRLL   $31, X7
	PADDL   X7, X7           // 2 in every lane
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (R8)(CX*4), X1
	MOVOU (R9)(CX*4), X2
	PADDL X2, X1
	PADDL X7, X1
	PSRAL $2, X1
	MOVOU (SI)(CX*4), X3
	PSUBL X1, X3
	MOVOU X3, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+96(FP)
	RET

// ---------------------------------------------------------------------
// addConstI32: dst[i] += k  (DC level shift)
// ---------------------------------------------------------------------

// func addConstI32AVX2(dst []int32, k int32) (n int)
TEXT ·addConstI32AVX2(SB), NOSPLIT, $0-40
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVL k+24(FP), AX
	MOVQ AX, X0
	VPBROADCASTD X0, Y0
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (DI)(CX*4), Y1
	VPADDD  Y0, Y1, Y1
	VMOVDQU Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+32(FP)
	RET

// func addConstI32SSE2(dst []int32, k int32) (n int)
TEXT ·addConstI32SSE2(SB), NOSPLIT, $0-40
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVL   k+24(FP), AX
	MOVQ   AX, X0
	PSHUFL $0x00, X0, X0
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (DI)(CX*4), X1
	PADDL X0, X1
	MOVOU X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+32(FP)
	RET

// ---------------------------------------------------------------------
// rctFwd: reversible color transform, in place.
//   rr,gg,bb = r-off, g-off, b-off
//   r = (rr + 2*gg + bb) >> 2;  g = bb - gg;  b = rr - gg
// ---------------------------------------------------------------------

// func rctFwdAVX2(r, g, b []int32, off int32) (n int)
TEXT ·rctFwdAVX2(SB), NOSPLIT, $0-88
	MOVQ r_base+0(FP), SI
	MOVQ r_len+8(FP), DX
	MOVQ g_base+24(FP), R8
	MOVQ b_base+48(FP), R9
	MOVL off+72(FP), AX
	MOVQ AX, X7
	VPBROADCASTD X7, Y7
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (SI)(CX*4), Y0
	VPSUBD  Y7, Y0, Y0       // rr
	VMOVDQU (R8)(CX*4), Y1
	VPSUBD  Y7, Y1, Y1       // gg
	VMOVDQU (R9)(CX*4), Y2
	VPSUBD  Y7, Y2, Y2       // bb
	VPADDD  Y1, Y1, Y3       // 2*gg
	VPADDD  Y0, Y3, Y3
	VPADDD  Y2, Y3, Y3
	VPSRAD  $2, Y3, Y3       // y
	VPSUBD  Y1, Y2, Y4       // cb
	VPSUBD  Y1, Y0, Y5       // cr
	VMOVDQU Y3, (SI)(CX*4)
	VMOVDQU Y4, (R8)(CX*4)
	VMOVDQU Y5, (R9)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+80(FP)
	RET

// func rctFwdSSE2(r, g, b []int32, off int32) (n int)
TEXT ·rctFwdSSE2(SB), NOSPLIT, $0-88
	MOVQ r_base+0(FP), SI
	MOVQ r_len+8(FP), DX
	MOVQ g_base+24(FP), R8
	MOVQ b_base+48(FP), R9
	MOVL   off+72(FP), AX
	MOVQ   AX, X7
	PSHUFL $0x00, X7, X7
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (SI)(CX*4), X0
	PSUBL X7, X0             // rr
	MOVOU (R8)(CX*4), X1
	PSUBL X7, X1             // gg
	MOVOU (R9)(CX*4), X2
	PSUBL X7, X2             // bb
	MOVOU X1, X3
	PADDL X1, X3             // 2*gg
	PADDL X0, X3
	PADDL X2, X3
	PSRAL $2, X3             // y
	MOVOU X2, X4
	PSUBL X1, X4             // cb
	MOVOU X0, X5
	PSUBL X1, X5             // cr
	MOVOU X3, (SI)(CX*4)
	MOVOU X4, (R8)(CX*4)
	MOVOU X5, (R9)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+80(FP)
	RET

// ---------------------------------------------------------------------
// Q13 fixed-point lifting. fixMul(k, s) = (k*s + 4096) >> 13 computed
// as k*(s>>13) + ((k*(s&8191) + 4096) >> 13): exact because
// k*s = k*sHi*8192 + k*sLo and the first term is a multiple of 8192,
// and k*sLo fits int32 for the lifting constants (|k| < 2^18). The
// final sum wraps mod 2^32 exactly like the scalar int32 truncation.
//   fixAddMul: d[i] += fixMul(k, b[i]+c[i])
//   fixScale:  dst[i] = fixMul(dst[i], k)
// ---------------------------------------------------------------------

// func fixAddMulAVX2(d, b, c []int32, k int32) (n int)
TEXT ·fixAddMulAVX2(SB), NOSPLIT, $0-88
	MOVQ d_base+0(FP), DI
	MOVQ d_len+8(FP), DX
	MOVQ b_base+24(FP), R8
	MOVQ c_base+48(FP), R9
	MOVL k+72(FP), AX
	MOVQ AX, X12
	VPBROADCASTD X12, Y12
	VPCMPEQD Y13, Y13, Y13
	VPSRLD   $19, Y13, Y13   // 8191 = (1<<13)-1
	VPCMPEQD Y14, Y14, Y14
	VPSRLD   $31, Y14, Y14
	VPSLLD   $12, Y14, Y14   // 4096 = 1<<12
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (R8)(CX*4), Y1
	VPADDD  (R9)(CX*4), Y1, Y1 // s = b + c
	VPSRAD  $13, Y1, Y2        // sHi
	VPAND   Y13, Y1, Y3        // sLo
	VPMULLD Y12, Y2, Y2        // k*sHi (mod 2^32)
	VPMULLD Y12, Y3, Y3        // k*sLo (exact)
	VPADDD  Y14, Y3, Y3
	VPSRAD  $13, Y3, Y3
	VPADDD  Y3, Y2, Y2
	VPADDD  (DI)(CX*4), Y2, Y2
	VMOVDQU Y2, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+80(FP)
	RET

// func fixAddMulSSE2(d, b, c []int32, k int32) (n int)
// SSE2 has no packed 32-bit mullo; emulate with PMULULQ (pmuludq) on
// even/odd lanes and repack the low dwords — low 32 bits of an
// unsigned product equal the signed mullo.
TEXT ·fixAddMulSSE2(SB), NOSPLIT, $0-88
	MOVQ d_base+0(FP), DI
	MOVQ d_len+8(FP), DX
	MOVQ b_base+24(FP), R8
	MOVQ c_base+48(FP), R9
	MOVL   k+72(FP), AX
	MOVQ   AX, X12
	PSHUFL $0x00, X12, X12
	PCMPEQL X13, X13
	PSRLL   $19, X13         // 8191
	PCMPEQL X14, X14
	PSRLL   $31, X14
	PSLLL   $12, X14         // 4096
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (R8)(CX*4), X1
	MOVOU (R9)(CX*4), X0
	PADDL X0, X1             // s
	MOVOU X1, X4
	PSRAL $13, X4            // sHi
	PAND  X13, X1            // sLo

	MOVOU   X4, X2           // mullo(sHi, k)
	PSRLQ   $32, X2
	PMULULQ X12, X4
	PMULULQ X12, X2
	PSHUFL  $0x08, X4, X4
	PSHUFL  $0x08, X2, X2
	PUNPCKLLQ X2, X4         // X4 = k*sHi

	MOVOU   X1, X2           // mullo(sLo, k)
	PSRLQ   $32, X2
	PMULULQ X12, X1
	PMULULQ X12, X2
	PSHUFL  $0x08, X1, X1
	PSHUFL  $0x08, X2, X2
	PUNPCKLLQ X2, X1         // X1 = k*sLo

	PADDL X14, X1
	PSRAL $13, X1
	PADDL X1, X4
	MOVOU (DI)(CX*4), X0
	PADDL X4, X0
	MOVOU X0, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+80(FP)
	RET

// func fixScaleAVX2(dst []int32, k int32) (n int)
TEXT ·fixScaleAVX2(SB), NOSPLIT, $0-40
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVL k+24(FP), AX
	MOVQ AX, X12
	VPBROADCASTD X12, Y12
	VPCMPEQD Y13, Y13, Y13
	VPSRLD   $19, Y13, Y13   // 8191
	VPCMPEQD Y14, Y14, Y14
	VPSRLD   $31, Y14, Y14
	VPSLLD   $12, Y14, Y14   // 4096
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (DI)(CX*4), Y1   // s
	VPSRAD  $13, Y1, Y2      // sHi
	VPAND   Y13, Y1, Y3      // sLo
	VPMULLD Y12, Y2, Y2
	VPMULLD Y12, Y3, Y3
	VPADDD  Y14, Y3, Y3
	VPSRAD  $13, Y3, Y3
	VPADDD  Y3, Y2, Y2
	VMOVDQU Y2, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+32(FP)
	RET

// func fixScaleSSE2(dst []int32, k int32) (n int)
TEXT ·fixScaleSSE2(SB), NOSPLIT, $0-40
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVL   k+24(FP), AX
	MOVQ   AX, X12
	PSHUFL $0x00, X12, X12
	PCMPEQL X13, X13
	PSRLL   $19, X13         // 8191
	PCMPEQL X14, X14
	PSRLL   $31, X14
	PSLLL   $12, X14         // 4096
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (DI)(CX*4), X1     // s
	MOVOU X1, X4
	PSRAL $13, X4            // sHi
	PAND  X13, X1            // sLo

	MOVOU   X4, X2
	PSRLQ   $32, X2
	PMULULQ X12, X4
	PMULULQ X12, X2
	PSHUFL  $0x08, X4, X4
	PSHUFL  $0x08, X2, X2
	PUNPCKLLQ X2, X4         // k*sHi

	MOVOU   X1, X2
	PSRLQ   $32, X2
	PMULULQ X12, X1
	PMULULQ X12, X2
	PSHUFL  $0x08, X1, X1
	PSHUFL  $0x08, X2, X2
	PUNPCKLLQ X2, X1         // k*sLo

	PADDL X14, X1
	PSRAL $13, X1
	PADDL X1, X4
	MOVOU X4, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+32(FP)
	RET

// ---------------------------------------------------------------------
// absOr: mag[i] = |coef[i]|, returning the running OR of all written
// magnitudes (bitLen(OR) == bitLen(max), which is all Tier-1 needs).
// ---------------------------------------------------------------------

// func absOrAVX2(mag []uint32, coef []int32) (n int, or uint32)
TEXT ·absOrAVX2(SB), NOSPLIT, $0-60
	MOVQ mag_base+0(FP), DI
	MOVQ mag_len+8(FP), DX
	MOVQ coef_base+24(FP), SI
	VPXOR X0, X0, X0
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VPABSD  (SI)(CX*4), Y1
	VMOVDQU Y1, (DI)(CX*4)
	VPOR    Y1, Y0, Y0
	ADDQ $8, CX
	JMP  loop
done:
	VEXTRACTI128 $1, Y0, X1
	VPOR    X1, X0, X0
	VPSHUFD $0x4E, X0, X1
	VPOR    X1, X0, X0
	VPSHUFD $0xB1, X0, X1
	VPOR    X1, X0, X0
	MOVQ X0, BX
	MOVL BX, or+56(FP)
	MOVQ AX, n+48(FP)
	VZEROUPPER
	RET

// func absOrSSE2(mag []uint32, coef []int32) (n int, or uint32)
TEXT ·absOrSSE2(SB), NOSPLIT, $0-60
	MOVQ mag_base+0(FP), DI
	MOVQ mag_len+8(FP), DX
	MOVQ coef_base+24(FP), SI
	PXOR X0, X0
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (SI)(CX*4), X1
	MOVOU X1, X2
	PSRAL $31, X2            // sign mask
	PXOR  X2, X1
	PSUBL X2, X1             // |coef|
	MOVOU X1, (DI)(CX*4)
	POR   X1, X0
	ADDQ $4, CX
	JMP  loop
done:
	PSHUFL $0x4E, X0, X1
	POR    X1, X0
	PSHUFL $0xB1, X0, X1
	POR    X1, X0
	MOVQ X0, BX
	MOVL BX, or+56(FP)
	MOVQ AX, n+48(FP)
	RET

// ---------------------------------------------------------------------
// orU32: dst[i] |= src[i]  (stripe OR accumulation)
// ---------------------------------------------------------------------

// func orU32AVX2(dst, src []uint32) (n int)
TEXT ·orU32AVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ src_base+24(FP), SI
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (SI)(CX*4), Y1
	VPOR    (DI)(CX*4), Y1, Y1
	VMOVDQU Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+48(FP)
	RET

// func orU32SSE2(dst, src []uint32) (n int)
TEXT ·orU32SSE2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ src_base+24(FP), SI
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (SI)(CX*4), X1
	MOVOU (DI)(CX*4), X2
	POR   X2, X1
	MOVOU X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+48(FP)
	RET

// ---------------------------------------------------------------------
// signOr: flags[i] |= bit where coef[i] < 0
// ---------------------------------------------------------------------

// func signOrAVX2(flags []uint32, coef []int32, bit uint32) (n int)
TEXT ·signOrAVX2(SB), NOSPLIT, $0-64
	MOVQ flags_base+0(FP), DI
	MOVQ flags_len+8(FP), DX
	MOVQ coef_base+24(FP), SI
	MOVL bit+48(FP), AX
	MOVQ AX, X2
	VPBROADCASTD X2, Y2
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (SI)(CX*4), Y1
	VPSRAD  $31, Y1, Y1      // all-ones where negative
	VPAND   Y2, Y1, Y1
	VPOR    (DI)(CX*4), Y1, Y1
	VMOVDQU Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+56(FP)
	RET

// func signOrSSE2(flags []uint32, coef []int32, bit uint32) (n int)
TEXT ·signOrSSE2(SB), NOSPLIT, $0-64
	MOVQ flags_base+0(FP), DI
	MOVQ flags_len+8(FP), DX
	MOVQ coef_base+24(FP), SI
	MOVL   bit+48(FP), AX
	MOVQ   AX, X2
	PSHUFL $0x00, X2, X2
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (SI)(CX*4), X1
	PSRAL $31, X1
	PAND  X2, X1
	MOVOU (DI)(CX*4), X3
	POR   X3, X1
	MOVOU X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+56(FP)
	RET

// ---------------------------------------------------------------------
// dequantF32: dst[i] = (float32(q) ± 0.5) * delta with q's sign, and 0
// where q == 0. The bias is built as 0.5 OR'd with q's sign bit, so the
// negative branch computes f + (-0.5) — bitwise identical to the scalar
// f - 0.5. CVTDQ2PS rounds int32→float32 to nearest even, matching gc's
// scalar CVTSI2SS.
// ---------------------------------------------------------------------

// func dequantF32AVX2(dst []float32, src []int32, delta float32) (n int)
TEXT ·dequantF32AVX2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), DX
	VBROADCASTSS delta+48(FP), Y0
	MOVL $0x3F000000, AX     // 0.5f
	MOVQ AX, X1
	VPBROADCASTD X1, Y8
	MOVL $0x80000000, AX     // sign bit
	MOVQ AX, X1
	VPBROADCASTD X1, Y9
	VPXOR Y10, Y10, Y10      // zero
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU   (SI)(CX*4), Y1 // q
	VCVTDQ2PS Y1, Y2         // float32(q)
	VPAND     Y9, Y1, Y3     // sign bit of q
	VPOR      Y8, Y3, Y3     // ±0.5
	VADDPS    Y3, Y2, Y2
	VMULPS    Y0, Y2, Y2     // * delta
	VPCMPEQD  Y10, Y1, Y4    // all-ones where q == 0
	VPANDN    Y2, Y4, Y2     // force 0 there
	VMOVUPS   Y2, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+56(FP)
	RET

// func dequantF32SSE2(dst []float32, src []int32, delta float32) (n int)
TEXT ·dequantF32SSE2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), DX
	MOVSS  delta+48(FP), X0
	SHUFPS $0x00, X0, X0
	MOVL   $0x3F000000, AX   // 0.5f
	MOVQ   AX, X8
	PSHUFL $0x00, X8, X8
	MOVL   $0x80000000, AX   // sign bit
	MOVQ   AX, X9
	PSHUFL $0x00, X9, X9
	PXOR   X10, X10          // zero
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU    (SI)(CX*4), X1  // q
	MOVOU    X1, X2
	CVTPL2PS X2, X2          // float32(q)
	MOVOU    X1, X3
	PAND     X9, X3          // sign bit
	POR      X8, X3          // ±0.5
	ADDPS    X3, X2
	MULPS    X0, X2          // * delta
	MOVOU    X1, X4
	PCMPEQL  X10, X4         // all-ones where q == 0
	PANDN    X2, X4          // force 0 there
	MOVUPS   X4, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+56(FP)
	RET

// ---------------------------------------------------------------------
// rctInv: inverse reversible color transform + level unshift, in place.
//   g = y - ((cb+cr)>>2);  r = cr+g;  b = cb+g
//   y,cb,cr = r+off, g+off, b+off
// ---------------------------------------------------------------------

// func rctInvAVX2(y, cb, cr []int32, off int32) (n int)
TEXT ·rctInvAVX2(SB), NOSPLIT, $0-88
	MOVQ y_base+0(FP), SI
	MOVQ y_len+8(FP), DX
	MOVQ cb_base+24(FP), R8
	MOVQ cr_base+48(FP), R9
	MOVL off+72(FP), AX
	MOVQ AX, X7
	VPBROADCASTD X7, Y7
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (R8)(CX*4), Y1   // cb
	VMOVDQU (R9)(CX*4), Y2   // cr
	VPADDD  Y2, Y1, Y3
	VPSRAD  $2, Y3, Y3       // (cb+cr)>>2
	VMOVDQU (SI)(CX*4), Y0   // y
	VPSUBD  Y3, Y0, Y0       // g
	VPADDD  Y0, Y2, Y4       // r
	VPADDD  Y0, Y1, Y5       // b
	VPADDD  Y7, Y4, Y4
	VPADDD  Y7, Y0, Y0
	VPADDD  Y7, Y5, Y5
	VMOVDQU Y4, (SI)(CX*4)
	VMOVDQU Y0, (R8)(CX*4)
	VMOVDQU Y5, (R9)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+80(FP)
	RET

// func rctInvSSE2(y, cb, cr []int32, off int32) (n int)
TEXT ·rctInvSSE2(SB), NOSPLIT, $0-88
	MOVQ y_base+0(FP), SI
	MOVQ y_len+8(FP), DX
	MOVQ cb_base+24(FP), R8
	MOVQ cr_base+48(FP), R9
	MOVL   off+72(FP), AX
	MOVQ   AX, X7
	PSHUFL $0x00, X7, X7
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (R8)(CX*4), X1     // cb
	MOVOU (R9)(CX*4), X2     // cr
	MOVOU X1, X3
	PADDL X2, X3
	PSRAL $2, X3             // (cb+cr)>>2
	MOVOU (SI)(CX*4), X0     // y
	PSUBL X3, X0             // g
	MOVOU X2, X4
	PADDL X0, X4             // r
	MOVOU X1, X5
	PADDL X0, X5             // b
	PADDL X7, X4
	PADDL X7, X0
	PADDL X7, X5
	MOVOU X4, (SI)(CX*4)
	MOVOU X0, (R8)(CX*4)
	MOVOU X5, (R9)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+80(FP)
	RET

// ---------------------------------------------------------------------
// ictInv: inverse irreversible color transform + level unshift with
// round-half-away-from-zero:
//   r = round((yy + RCr*cr) + off)
//   g = round(((yy - GCb*cb) - GCr*cr) + off)
//   b = round((yy + BCb*cb) + off)
// round(v) = sign-restore(trunc(|v| + 0.5)): |v| via an AND mask, the
// sign as a PSRAD $31 all-ones mask, negation as (x XOR m) - m. This
// reproduces the scalar roundHalfAway on every lane, including the
// 0x80000000 overflow/NaN result of the truncating conversion.
// ICTInvParams field offsets: Off=0 RCr=4 GCb=8 GCr=12 BCb=16.
// ---------------------------------------------------------------------

// func ictInvAVX2(y, cb, cr []float32, r, g, b []int32, p *ICTInvParams) (n int)
TEXT ·ictInvAVX2(SB), NOSPLIT, $0-160
	MOVQ y_base+0(FP), SI
	MOVQ y_len+8(FP), DX
	MOVQ cb_base+24(FP), R8
	MOVQ cr_base+48(FP), R9
	MOVQ r_base+72(FP), R10
	MOVQ g_base+96(FP), R11
	MOVQ b_base+120(FP), R12
	MOVQ p+144(FP), BX
	VBROADCASTSS 0(BX), Y15  // off
	VBROADCASTSS 4(BX), Y11  // RCr
	VBROADCASTSS 8(BX), Y12  // GCb
	VBROADCASTSS 12(BX), Y13 // GCr
	VBROADCASTSS 16(BX), Y14 // BCb
	MOVL $0x3F000000, AX     // 0.5f
	MOVQ AX, X8
	VPBROADCASTD X8, Y8
	MOVL $0x7FFFFFFF, AX     // abs mask
	MOVQ AX, X9
	VPBROADCASTD X9, Y9
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVUPS (SI)(CX*4), Y0   // yy
	VMOVUPS (R8)(CX*4), Y1   // cb
	VMOVUPS (R9)(CX*4), Y2   // cr

	VMULPS Y2, Y11, Y3       // RCr*cr
	VADDPS Y3, Y0, Y3
	VADDPS Y15, Y3, Y3       // rf
	VPSRAD $31, Y3, Y4
	VPAND  Y9, Y3, Y3
	VADDPS Y8, Y3, Y3
	VCVTTPS2DQ Y3, Y3
	VPXOR  Y4, Y3, Y3
	VPSUBD Y4, Y3, Y3
	VMOVDQU Y3, (R10)(CX*4)

	VMULPS Y1, Y12, Y3       // GCb*cb
	VSUBPS Y3, Y0, Y3        // yy - GCb*cb
	VMULPS Y2, Y13, Y5       // GCr*cr
	VSUBPS Y5, Y3, Y3
	VADDPS Y15, Y3, Y3       // gf
	VPSRAD $31, Y3, Y4
	VPAND  Y9, Y3, Y3
	VADDPS Y8, Y3, Y3
	VCVTTPS2DQ Y3, Y3
	VPXOR  Y4, Y3, Y3
	VPSUBD Y4, Y3, Y3
	VMOVDQU Y3, (R11)(CX*4)

	VMULPS Y1, Y14, Y3       // BCb*cb
	VADDPS Y3, Y0, Y3
	VADDPS Y15, Y3, Y3       // bf
	VPSRAD $31, Y3, Y4
	VPAND  Y9, Y3, Y3
	VADDPS Y8, Y3, Y3
	VCVTTPS2DQ Y3, Y3
	VPXOR  Y4, Y3, Y3
	VPSUBD Y4, Y3, Y3
	VMOVDQU Y3, (R12)(CX*4)

	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+152(FP)
	RET

// func ictInvSSE2(y, cb, cr []float32, r, g, b []int32, p *ICTInvParams) (n int)
TEXT ·ictInvSSE2(SB), NOSPLIT, $0-160
	MOVQ y_base+0(FP), SI
	MOVQ y_len+8(FP), DX
	MOVQ cb_base+24(FP), R8
	MOVQ cr_base+48(FP), R9
	MOVQ r_base+72(FP), R10
	MOVQ g_base+96(FP), R11
	MOVQ b_base+120(FP), R12
	MOVQ p+144(FP), BX
	MOVSS  0(BX), X5
	SHUFPS $0x00, X5, X5     // off
	MOVSS  4(BX), X6
	SHUFPS $0x00, X6, X6     // RCr
	MOVSS  8(BX), X7
	SHUFPS $0x00, X7, X7     // GCb
	MOVSS  12(BX), X8
	SHUFPS $0x00, X8, X8     // GCr
	MOVSS  16(BX), X9
	SHUFPS $0x00, X9, X9     // BCb
	MOVL   $0x3F000000, AX   // 0.5f
	MOVQ   AX, X10
	PSHUFL $0x00, X10, X10
	MOVL   $0x7FFFFFFF, AX   // abs mask
	MOVQ   AX, X11
	PSHUFL $0x00, X11, X11
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVUPS (SI)(CX*4), X0    // yy
	MOVUPS (R8)(CX*4), X1    // cb
	MOVUPS (R9)(CX*4), X2    // cr

	MOVAPS X6, X3
	MULPS  X2, X3            // RCr*cr
	ADDPS  X0, X3
	ADDPS  X5, X3            // rf
	MOVAPS X3, X4
	PSRAL  $31, X4
	PAND   X11, X3
	ADDPS  X10, X3
	CVTTPS2PL X3, X3
	PXOR   X4, X3
	PSUBL  X4, X3
	MOVOU  X3, (R10)(CX*4)

	MOVAPS X7, X3
	MULPS  X1, X3            // GCb*cb
	MOVAPS X0, X12
	SUBPS  X3, X12           // yy - GCb*cb
	MOVAPS X8, X3
	MULPS  X2, X3            // GCr*cr
	SUBPS  X3, X12
	ADDPS  X5, X12           // gf
	MOVAPS X12, X4
	PSRAL  $31, X4
	PAND   X11, X12
	ADDPS  X10, X12
	CVTTPS2PL X12, X12
	PXOR   X4, X12
	PSUBL  X4, X12
	MOVOU  X12, (R11)(CX*4)

	MOVAPS X9, X3
	MULPS  X1, X3            // BCb*cb
	ADDPS  X0, X3
	ADDPS  X5, X3            // bf
	MOVAPS X3, X4
	PSRAL  $31, X4
	PAND   X11, X3
	ADDPS  X10, X3
	CVTTPS2PL X3, X3
	PXOR   X4, X3
	PSUBL  X4, X3
	MOVOU  X3, (R12)(CX*4)

	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+152(FP)
	RET

// ---------------------------------------------------------------------
// roundAddF32: dst[i] = roundHalfAway(src[i] + off) — the inverse level
// shift of a float component decoded without the color transform. Same
// rounding sequence as ictInv.
// ---------------------------------------------------------------------

// func roundAddF32AVX2(dst []int32, src []float32, off float32) (n int)
TEXT ·roundAddF32AVX2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), DX
	VBROADCASTSS off+48(FP), Y0
	MOVL $0x3F000000, AX     // 0.5f
	MOVQ AX, X8
	VPBROADCASTD X8, Y8
	MOVL $0x7FFFFFFF, AX     // abs mask
	MOVQ AX, X9
	VPBROADCASTD X9, Y9
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVUPS (SI)(CX*4), Y1
	VADDPS  Y0, Y1, Y1       // v = src + off
	VPSRAD  $31, Y1, Y4
	VPAND   Y9, Y1, Y1
	VADDPS  Y8, Y1, Y1
	VCVTTPS2DQ Y1, Y1
	VPXOR   Y4, Y1, Y1
	VPSUBD  Y4, Y1, Y1
	VMOVDQU Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+56(FP)
	RET

// func roundAddF32SSE2(dst []int32, src []float32, off float32) (n int)
TEXT ·roundAddF32SSE2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), DX
	MOVSS  off+48(FP), X0
	SHUFPS $0x00, X0, X0
	MOVL   $0x3F000000, AX   // 0.5f
	MOVQ   AX, X8
	PSHUFL $0x00, X8, X8
	MOVL   $0x7FFFFFFF, AX   // abs mask
	MOVQ   AX, X9
	PSHUFL $0x00, X9, X9
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVUPS (SI)(CX*4), X1
	ADDPS  X0, X1            // v = src + off
	MOVAPS X1, X4
	PSRAL  $31, X4
	PAND   X9, X1
	ADDPS  X8, X1
	CVTTPS2PL X1, X1
	PXOR   X4, X1
	PSUBL  X4, X1
	MOVOU  X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+56(FP)
	RET

// ---------------------------------------------------------------------
// clampI32: dst[i] = min(max(dst[i], 0), max), in place.
// ---------------------------------------------------------------------

// func clampI32AVX2(dst []int32, max int32) (n int)
TEXT ·clampI32AVX2(SB), NOSPLIT, $0-40
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVL max+24(FP), AX
	MOVQ AX, X1
	VPBROADCASTD X1, Y1
	VPXOR Y2, Y2, Y2
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (DI)(CX*4), Y0
	VPMAXSD Y2, Y0, Y0
	VPMINSD Y1, Y0, Y0
	VMOVDQU Y0, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+32(FP)
	RET

// func clampI32SSE2(dst []int32, max int32) (n int)
// SSE2 has no packed signed 32-bit min/max; build them from PCMPGTL
// select masks.
TEXT ·clampI32SSE2(SB), NOSPLIT, $0-40
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVL   max+24(FP), AX
	MOVQ   AX, X1
	PSHUFL $0x00, X1, X1
	PXOR   X2, X2
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU   (DI)(CX*4), X0
	MOVOU   X2, X3
	PCMPGTL X0, X3           // all-ones where 0 > v
	PANDN   X0, X3           // v, or 0 where negative
	MOVOU   X3, X4
	PCMPGTL X1, X4           // all-ones where v > max
	MOVOU   X4, X5
	PAND    X1, X5           // max where over
	PANDN   X3, X4           // v where not over
	POR     X5, X4
	MOVOU   X4, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+32(FP)
	RET

// ---------------------------------------------------------------------
// il2: dst[2i] = even[i], dst[2i+1] = odd[i] for i < len(odd) — the
// interleave step of the inverse lifting lines. Pure data movement, so
// the float variants jump to the int bodies (identical frame layout).
// ---------------------------------------------------------------------

// func il2I32AVX2(dst, even, odd []int32) (n int)
TEXT ·il2I32AVX2(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ even_base+24(FP), SI
	MOVQ odd_base+48(FP), R8
	MOVQ odd_len+56(FP), DX
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (SI)(CX*4), Y0   // e0..e7
	VMOVDQU (R8)(CX*4), Y1   // o0..o7
	VPUNPCKLDQ Y1, Y0, Y2    // e0,o0,e1,o1 | e4,o4,e5,o5
	VPUNPCKHDQ Y1, Y0, Y3    // e2,o2,e3,o3 | e6,o6,e7,o7
	VPERM2I128 $0x20, Y3, Y2, Y4
	VPERM2I128 $0x31, Y3, Y2, Y5
	MOVQ CX, BX
	SHLQ $1, BX
	VMOVDQU Y4, (DI)(BX*4)
	VMOVDQU Y5, 32(DI)(BX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+72(FP)
	RET

// func il2I32SSE2(dst, even, odd []int32) (n int)
TEXT ·il2I32SSE2(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ even_base+24(FP), SI
	MOVQ odd_base+48(FP), R8
	MOVQ odd_len+56(FP), DX
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (SI)(CX*4), X0     // e0..e3
	MOVOU (R8)(CX*4), X1     // o0..o3
	MOVOU X0, X2
	PUNPCKLLQ X1, X2         // e0,o0,e1,o1
	PUNPCKHLQ X1, X0         // e2,o2,e3,o3
	MOVQ CX, BX
	SHLQ $1, BX
	MOVOU X2, (DI)(BX*4)
	MOVOU X0, 16(DI)(BX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+72(FP)
	RET

// func il2F32AVX2(dst, even, odd []float32) (n int)
TEXT ·il2F32AVX2(SB), NOSPLIT, $0-80
	JMP ·il2I32AVX2(SB)

// func il2F32SSE2(dst, even, odd []float32) (n int)
TEXT ·il2F32SSE2(SB), NOSPLIT, $0-80
	JMP ·il2I32SSE2(SB)
