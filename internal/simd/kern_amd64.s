//go:build amd64 && !noasm

#include "textflag.h"

// Vector kernels for the hot elementwise loops of the encoder.
//
// Conventions (see DESIGN.md §7):
//   - Every kernel processes the longest whole-vector prefix of the row
//     (n &^ 7 elements for AVX2, n &^ 3 for SSE2) and returns that count
//     in n; the Go wrapper runs the scalar oracle over the tail.
//   - All memory accesses use unaligned loads/stores (VMOVUPS / VMOVDQU /
//     MOVUPS / MOVOU), so callers may pass slices at any offset.
//   - Float kernels use only packed add/sub/mul — never FMA — so every
//     lane performs the same sequence of IEEE-754 float32 roundings as
//     the Go scalar loop and results are bit-identical.
//   - SSE2 arithmetic never takes a memory operand (m128 forms require
//     16-byte alignment); operands are loaded with MOVUPS/MOVOU first.
//   - AVX2 kernels end with VZEROUPPER to avoid SSE/AVX transition
//     stalls in the surrounding Go code.

// ---------------------------------------------------------------------
// addMulF32: dst[i] = a[i] + k*(b[i]+c[i])
// ---------------------------------------------------------------------

// func addMulF32AVX2(dst, a, b, c []float32, k float32) (n int)
TEXT ·addMulF32AVX2(SB), NOSPLIT, $0-112
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	VBROADCASTSS k+96(FP), Y0
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVUPS (R8)(CX*4), Y1
	VADDPS  (R9)(CX*4), Y1, Y1
	VMULPS  Y0, Y1, Y1
	VADDPS  (SI)(CX*4), Y1, Y1
	VMOVUPS Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+104(FP)
	RET

// func addMulF32SSE2(dst, a, b, c []float32, k float32) (n int)
TEXT ·addMulF32SSE2(SB), NOSPLIT, $0-112
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	MOVSS  k+96(FP), X0
	SHUFPS $0x00, X0, X0
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVUPS (R8)(CX*4), X1
	MOVUPS (R9)(CX*4), X2
	ADDPS  X2, X1
	MULPS  X0, X1
	MOVUPS (SI)(CX*4), X3
	ADDPS  X3, X1
	MOVUPS X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+104(FP)
	RET

// ---------------------------------------------------------------------
// addMulScaleF32: s[i] = (s[i] + k*(b[i]+c[i])) * scale
// ---------------------------------------------------------------------

// func addMulScaleF32AVX2(s, b, c []float32, k, scale float32) (n int)
TEXT ·addMulScaleF32AVX2(SB), NOSPLIT, $0-88
	MOVQ s_base+0(FP), DI
	MOVQ s_len+8(FP), DX
	MOVQ b_base+24(FP), R8
	MOVQ c_base+48(FP), R9
	VBROADCASTSS k+72(FP), Y0
	VBROADCASTSS scale+76(FP), Y2
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVUPS (R8)(CX*4), Y1
	VADDPS  (R9)(CX*4), Y1, Y1
	VMULPS  Y0, Y1, Y1
	VADDPS  (DI)(CX*4), Y1, Y1
	VMULPS  Y2, Y1, Y1
	VMOVUPS Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+80(FP)
	RET

// func addMulScaleF32SSE2(s, b, c []float32, k, scale float32) (n int)
TEXT ·addMulScaleF32SSE2(SB), NOSPLIT, $0-88
	MOVQ s_base+0(FP), DI
	MOVQ s_len+8(FP), DX
	MOVQ b_base+24(FP), R8
	MOVQ c_base+48(FP), R9
	MOVSS  k+72(FP), X0
	SHUFPS $0x00, X0, X0
	MOVSS  scale+76(FP), X4
	SHUFPS $0x00, X4, X4
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVUPS (R8)(CX*4), X1
	MOVUPS (R9)(CX*4), X2
	ADDPS  X2, X1
	MULPS  X0, X1
	MOVUPS (DI)(CX*4), X3
	ADDPS  X3, X1
	MULPS  X4, X1
	MOVUPS X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+80(FP)
	RET

// ---------------------------------------------------------------------
// mulConstF32: dst[i] = src[i] * k
// ---------------------------------------------------------------------

// func mulConstF32AVX2(dst, src []float32, k float32) (n int)
TEXT ·mulConstF32AVX2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ src_base+24(FP), SI
	VBROADCASTSS k+48(FP), Y0
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVUPS (SI)(CX*4), Y1
	VMULPS  Y0, Y1, Y1
	VMOVUPS Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+56(FP)
	RET

// func mulConstF32SSE2(dst, src []float32, k float32) (n int)
TEXT ·mulConstF32SSE2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ src_base+24(FP), SI
	MOVSS  k+48(FP), X0
	SHUFPS $0x00, X0, X0
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVUPS (SI)(CX*4), X1
	MULPS  X0, X1
	MOVUPS X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+56(FP)
	RET

// ---------------------------------------------------------------------
// quantF32: dst[i] = trunc(src[i] * inv)  (dead-zone quantizer core;
// CVTTPS2DQ truncates toward zero and yields 0x80000000 on overflow
// and NaN, exactly like gc's scalar CVTTSS2SL on both branches of the
// sign split in the Go loop)
// ---------------------------------------------------------------------

// func quantF32AVX2(dst []int32, src []float32, inv float32) (n int)
TEXT ·quantF32AVX2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), DX
	VBROADCASTSS inv+48(FP), Y0
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVUPS    (SI)(CX*4), Y1
	VMULPS     Y0, Y1, Y1
	VCVTTPS2DQ Y1, Y1
	VMOVDQU    Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+56(FP)
	RET

// func quantF32SSE2(dst []int32, src []float32, inv float32) (n int)
TEXT ·quantF32SSE2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), DX
	MOVSS  inv+48(FP), X0
	SHUFPS $0x00, X0, X0
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVUPS    (SI)(CX*4), X1
	MULPS     X0, X1
	CVTTPS2PL X1, X1
	MOVOU     X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+56(FP)
	RET

// ---------------------------------------------------------------------
// ictFwd: irreversible color transform.
//   rr = float32(r[i]) - off (likewise gg, bb)
//   y  = (YR*rr + YG*gg) + YB*bb   (left-assoc, same rounding order
//   cb = (CbR*rr + CbG*gg) + CbB*bb as the scalar loop)
//   cr = (CrR*rr + CrG*gg) + CrB*bb
// ICTParams field offsets: Off=0 YR=4 YG=8 YB=12 CbR=16 CbG=20 CbB=24
// CrR=28 CrG=32 CrB=36.
// ---------------------------------------------------------------------

// func ictFwdAVX2(r, g, b []int32, y, cb, cr []float32, p *ICTParams) (n int)
TEXT ·ictFwdAVX2(SB), NOSPLIT, $0-160
	MOVQ r_base+0(FP), SI
	MOVQ r_len+8(FP), DX
	MOVQ g_base+24(FP), R8
	MOVQ b_base+48(FP), R9
	MOVQ y_base+72(FP), R10
	MOVQ cb_base+96(FP), R11
	MOVQ cr_base+120(FP), R12
	MOVQ p+144(FP), BX
	VBROADCASTSS 0(BX), Y15  // off
	VBROADCASTSS 4(BX), Y6   // YR
	VBROADCASTSS 8(BX), Y7   // YG
	VBROADCASTSS 12(BX), Y8  // YB
	VBROADCASTSS 16(BX), Y9  // CbR
	VBROADCASTSS 20(BX), Y10 // CbG
	VBROADCASTSS 24(BX), Y11 // CbB
	VBROADCASTSS 28(BX), Y12 // CrR
	VBROADCASTSS 32(BX), Y13 // CrG
	VBROADCASTSS 36(BX), Y14 // CrB
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VCVTDQ2PS (SI)(CX*4), Y0
	VSUBPS    Y15, Y0, Y0    // rr
	VCVTDQ2PS (R8)(CX*4), Y1
	VSUBPS    Y15, Y1, Y1    // gg
	VCVTDQ2PS (R9)(CX*4), Y2
	VSUBPS    Y15, Y2, Y2    // bb

	VMULPS Y0, Y6, Y3        // YR*rr
	VMULPS Y1, Y7, Y4        // YG*gg
	VADDPS Y4, Y3, Y3
	VMULPS Y2, Y8, Y4        // YB*bb
	VADDPS Y4, Y3, Y3
	VMOVUPS Y3, (R10)(CX*4)

	VMULPS Y0, Y9, Y3
	VMULPS Y1, Y10, Y4
	VADDPS Y4, Y3, Y3
	VMULPS Y2, Y11, Y4
	VADDPS Y4, Y3, Y3
	VMOVUPS Y3, (R11)(CX*4)

	VMULPS Y0, Y12, Y3
	VMULPS Y1, Y13, Y4
	VADDPS Y4, Y3, Y3
	VMULPS Y2, Y14, Y4
	VADDPS Y4, Y3, Y3
	VMOVUPS Y3, (R12)(CX*4)

	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+152(FP)
	RET

// func ictFwdSSE2(r, g, b []int32, y, cb, cr []float32, p *ICTParams) (n int)
TEXT ·ictFwdSSE2(SB), NOSPLIT, $0-160
	MOVQ r_base+0(FP), SI
	MOVQ r_len+8(FP), DX
	MOVQ g_base+24(FP), R8
	MOVQ b_base+48(FP), R9
	MOVQ y_base+72(FP), R10
	MOVQ cb_base+96(FP), R11
	MOVQ cr_base+120(FP), R12
	MOVQ p+144(FP), BX
	MOVSS  0(BX), X5
	SHUFPS $0x00, X5, X5     // off
	MOVSS  4(BX), X6
	SHUFPS $0x00, X6, X6     // YR
	MOVSS  8(BX), X7
	SHUFPS $0x00, X7, X7     // YG
	MOVSS  12(BX), X8
	SHUFPS $0x00, X8, X8     // YB
	MOVSS  16(BX), X9
	SHUFPS $0x00, X9, X9     // CbR
	MOVSS  20(BX), X10
	SHUFPS $0x00, X10, X10   // CbG
	MOVSS  24(BX), X11
	SHUFPS $0x00, X11, X11   // CbB
	MOVSS  28(BX), X12
	SHUFPS $0x00, X12, X12   // CrR
	MOVSS  32(BX), X13
	SHUFPS $0x00, X13, X13   // CrG
	MOVSS  36(BX), X14
	SHUFPS $0x00, X14, X14   // CrB
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU    (SI)(CX*4), X0
	CVTPL2PS X0, X0
	SUBPS    X5, X0          // rr
	MOVOU    (R8)(CX*4), X1
	CVTPL2PS X1, X1
	SUBPS    X5, X1          // gg
	MOVOU    (R9)(CX*4), X2
	CVTPL2PS X2, X2
	SUBPS    X5, X2          // bb

	MOVAPS X6, X3
	MULPS  X0, X3
	MOVAPS X7, X4
	MULPS  X1, X4
	ADDPS  X4, X3
	MOVAPS X8, X4
	MULPS  X2, X4
	ADDPS  X4, X3
	MOVUPS X3, (R10)(CX*4)

	MOVAPS X9, X3
	MULPS  X0, X3
	MOVAPS X10, X4
	MULPS  X1, X4
	ADDPS  X4, X3
	MOVAPS X11, X4
	MULPS  X2, X4
	ADDPS  X4, X3
	MOVUPS X3, (R11)(CX*4)

	MOVAPS X12, X3
	MULPS  X0, X3
	MOVAPS X13, X4
	MULPS  X1, X4
	ADDPS  X4, X3
	MOVAPS X14, X4
	MULPS  X2, X4
	ADDPS  X4, X3
	MOVUPS X3, (R12)(CX*4)

	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+152(FP)
	RET

// ---------------------------------------------------------------------
// 5/3 integer lifting rows. Two's-complement wrap and arithmetic shift
// match the Go scalar loops on every input.
//   addShr1: dst[i] = a[i] + ((b[i]+c[i]) >> 1)
//   subShr1: dst[i] = a[i] - ((b[i]+c[i]) >> 1)
//   addShr2: dst[i] = a[i] + ((b[i]+c[i]+2) >> 2)
//   subShr2: dst[i] = a[i] - ((b[i]+c[i]+2) >> 2)
// ---------------------------------------------------------------------

// func addShr1I32AVX2(dst, a, b, c []int32) (n int)
TEXT ·addShr1I32AVX2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (R8)(CX*4), Y1
	VPADDD  (R9)(CX*4), Y1, Y1
	VPSRAD  $1, Y1, Y1
	VPADDD  (SI)(CX*4), Y1, Y1
	VMOVDQU Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+96(FP)
	RET

// func addShr1I32SSE2(dst, a, b, c []int32) (n int)
TEXT ·addShr1I32SSE2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (R8)(CX*4), X1
	MOVOU (R9)(CX*4), X2
	PADDL X2, X1
	PSRAL $1, X1
	MOVOU (SI)(CX*4), X3
	PADDL X3, X1
	MOVOU X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+96(FP)
	RET

// func subShr1I32AVX2(dst, a, b, c []int32) (n int)
TEXT ·subShr1I32AVX2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (R8)(CX*4), Y1
	VPADDD  (R9)(CX*4), Y1, Y1
	VPSRAD  $1, Y1, Y1
	VMOVDQU (SI)(CX*4), Y2
	VPSUBD  Y1, Y2, Y2
	VMOVDQU Y2, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+96(FP)
	RET

// func subShr1I32SSE2(dst, a, b, c []int32) (n int)
TEXT ·subShr1I32SSE2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (R8)(CX*4), X1
	MOVOU (R9)(CX*4), X2
	PADDL X2, X1
	PSRAL $1, X1
	MOVOU (SI)(CX*4), X3
	PSUBL X1, X3
	MOVOU X3, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+96(FP)
	RET

// func addShr2I32AVX2(dst, a, b, c []int32) (n int)
TEXT ·addShr2I32AVX2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	VPCMPEQD Y7, Y7, Y7
	VPSRLD   $31, Y7, Y7
	VPADDD   Y7, Y7, Y7      // 2 in every lane
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (R8)(CX*4), Y1
	VPADDD  (R9)(CX*4), Y1, Y1
	VPADDD  Y7, Y1, Y1
	VPSRAD  $2, Y1, Y1
	VPADDD  (SI)(CX*4), Y1, Y1
	VMOVDQU Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+96(FP)
	RET

// func addShr2I32SSE2(dst, a, b, c []int32) (n int)
TEXT ·addShr2I32SSE2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	PCMPEQL X7, X7
	PSRLL   $31, X7
	PADDL   X7, X7           // 2 in every lane
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (R8)(CX*4), X1
	MOVOU (R9)(CX*4), X2
	PADDL X2, X1
	PADDL X7, X1
	PSRAL $2, X1
	MOVOU (SI)(CX*4), X3
	PADDL X3, X1
	MOVOU X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+96(FP)
	RET

// func subShr2I32AVX2(dst, a, b, c []int32) (n int)
TEXT ·subShr2I32AVX2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	VPCMPEQD Y7, Y7, Y7
	VPSRLD   $31, Y7, Y7
	VPADDD   Y7, Y7, Y7      // 2 in every lane
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (R8)(CX*4), Y1
	VPADDD  (R9)(CX*4), Y1, Y1
	VPADDD  Y7, Y1, Y1
	VPSRAD  $2, Y1, Y1
	VMOVDQU (SI)(CX*4), Y2
	VPSUBD  Y1, Y2, Y2
	VMOVDQU Y2, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+96(FP)
	RET

// func subShr2I32SSE2(dst, a, b, c []int32) (n int)
TEXT ·subShr2I32SSE2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ c_base+72(FP), R9
	PCMPEQL X7, X7
	PSRLL   $31, X7
	PADDL   X7, X7           // 2 in every lane
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (R8)(CX*4), X1
	MOVOU (R9)(CX*4), X2
	PADDL X2, X1
	PADDL X7, X1
	PSRAL $2, X1
	MOVOU (SI)(CX*4), X3
	PSUBL X1, X3
	MOVOU X3, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+96(FP)
	RET

// ---------------------------------------------------------------------
// addConstI32: dst[i] += k  (DC level shift)
// ---------------------------------------------------------------------

// func addConstI32AVX2(dst []int32, k int32) (n int)
TEXT ·addConstI32AVX2(SB), NOSPLIT, $0-40
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVL k+24(FP), AX
	MOVQ AX, X0
	VPBROADCASTD X0, Y0
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (DI)(CX*4), Y1
	VPADDD  Y0, Y1, Y1
	VMOVDQU Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+32(FP)
	RET

// func addConstI32SSE2(dst []int32, k int32) (n int)
TEXT ·addConstI32SSE2(SB), NOSPLIT, $0-40
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVL   k+24(FP), AX
	MOVQ   AX, X0
	PSHUFL $0x00, X0, X0
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (DI)(CX*4), X1
	PADDL X0, X1
	MOVOU X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+32(FP)
	RET

// ---------------------------------------------------------------------
// rctFwd: reversible color transform, in place.
//   rr,gg,bb = r-off, g-off, b-off
//   r = (rr + 2*gg + bb) >> 2;  g = bb - gg;  b = rr - gg
// ---------------------------------------------------------------------

// func rctFwdAVX2(r, g, b []int32, off int32) (n int)
TEXT ·rctFwdAVX2(SB), NOSPLIT, $0-88
	MOVQ r_base+0(FP), SI
	MOVQ r_len+8(FP), DX
	MOVQ g_base+24(FP), R8
	MOVQ b_base+48(FP), R9
	MOVL off+72(FP), AX
	MOVQ AX, X7
	VPBROADCASTD X7, Y7
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (SI)(CX*4), Y0
	VPSUBD  Y7, Y0, Y0       // rr
	VMOVDQU (R8)(CX*4), Y1
	VPSUBD  Y7, Y1, Y1       // gg
	VMOVDQU (R9)(CX*4), Y2
	VPSUBD  Y7, Y2, Y2       // bb
	VPADDD  Y1, Y1, Y3       // 2*gg
	VPADDD  Y0, Y3, Y3
	VPADDD  Y2, Y3, Y3
	VPSRAD  $2, Y3, Y3       // y
	VPSUBD  Y1, Y2, Y4       // cb
	VPSUBD  Y1, Y0, Y5       // cr
	VMOVDQU Y3, (SI)(CX*4)
	VMOVDQU Y4, (R8)(CX*4)
	VMOVDQU Y5, (R9)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+80(FP)
	RET

// func rctFwdSSE2(r, g, b []int32, off int32) (n int)
TEXT ·rctFwdSSE2(SB), NOSPLIT, $0-88
	MOVQ r_base+0(FP), SI
	MOVQ r_len+8(FP), DX
	MOVQ g_base+24(FP), R8
	MOVQ b_base+48(FP), R9
	MOVL   off+72(FP), AX
	MOVQ   AX, X7
	PSHUFL $0x00, X7, X7
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (SI)(CX*4), X0
	PSUBL X7, X0             // rr
	MOVOU (R8)(CX*4), X1
	PSUBL X7, X1             // gg
	MOVOU (R9)(CX*4), X2
	PSUBL X7, X2             // bb
	MOVOU X1, X3
	PADDL X1, X3             // 2*gg
	PADDL X0, X3
	PADDL X2, X3
	PSRAL $2, X3             // y
	MOVOU X2, X4
	PSUBL X1, X4             // cb
	MOVOU X0, X5
	PSUBL X1, X5             // cr
	MOVOU X3, (SI)(CX*4)
	MOVOU X4, (R8)(CX*4)
	MOVOU X5, (R9)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+80(FP)
	RET

// ---------------------------------------------------------------------
// Q13 fixed-point lifting. fixMul(k, s) = (k*s + 4096) >> 13 computed
// as k*(s>>13) + ((k*(s&8191) + 4096) >> 13): exact because
// k*s = k*sHi*8192 + k*sLo and the first term is a multiple of 8192,
// and k*sLo fits int32 for the lifting constants (|k| < 2^18). The
// final sum wraps mod 2^32 exactly like the scalar int32 truncation.
//   fixAddMul: d[i] += fixMul(k, b[i]+c[i])
//   fixScale:  dst[i] = fixMul(dst[i], k)
// ---------------------------------------------------------------------

// func fixAddMulAVX2(d, b, c []int32, k int32) (n int)
TEXT ·fixAddMulAVX2(SB), NOSPLIT, $0-88
	MOVQ d_base+0(FP), DI
	MOVQ d_len+8(FP), DX
	MOVQ b_base+24(FP), R8
	MOVQ c_base+48(FP), R9
	MOVL k+72(FP), AX
	MOVQ AX, X12
	VPBROADCASTD X12, Y12
	VPCMPEQD Y13, Y13, Y13
	VPSRLD   $19, Y13, Y13   // 8191 = (1<<13)-1
	VPCMPEQD Y14, Y14, Y14
	VPSRLD   $31, Y14, Y14
	VPSLLD   $12, Y14, Y14   // 4096 = 1<<12
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (R8)(CX*4), Y1
	VPADDD  (R9)(CX*4), Y1, Y1 // s = b + c
	VPSRAD  $13, Y1, Y2        // sHi
	VPAND   Y13, Y1, Y3        // sLo
	VPMULLD Y12, Y2, Y2        // k*sHi (mod 2^32)
	VPMULLD Y12, Y3, Y3        // k*sLo (exact)
	VPADDD  Y14, Y3, Y3
	VPSRAD  $13, Y3, Y3
	VPADDD  Y3, Y2, Y2
	VPADDD  (DI)(CX*4), Y2, Y2
	VMOVDQU Y2, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+80(FP)
	RET

// func fixAddMulSSE2(d, b, c []int32, k int32) (n int)
// SSE2 has no packed 32-bit mullo; emulate with PMULULQ (pmuludq) on
// even/odd lanes and repack the low dwords — low 32 bits of an
// unsigned product equal the signed mullo.
TEXT ·fixAddMulSSE2(SB), NOSPLIT, $0-88
	MOVQ d_base+0(FP), DI
	MOVQ d_len+8(FP), DX
	MOVQ b_base+24(FP), R8
	MOVQ c_base+48(FP), R9
	MOVL   k+72(FP), AX
	MOVQ   AX, X12
	PSHUFL $0x00, X12, X12
	PCMPEQL X13, X13
	PSRLL   $19, X13         // 8191
	PCMPEQL X14, X14
	PSRLL   $31, X14
	PSLLL   $12, X14         // 4096
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (R8)(CX*4), X1
	MOVOU (R9)(CX*4), X0
	PADDL X0, X1             // s
	MOVOU X1, X4
	PSRAL $13, X4            // sHi
	PAND  X13, X1            // sLo

	MOVOU   X4, X2           // mullo(sHi, k)
	PSRLQ   $32, X2
	PMULULQ X12, X4
	PMULULQ X12, X2
	PSHUFL  $0x08, X4, X4
	PSHUFL  $0x08, X2, X2
	PUNPCKLLQ X2, X4         // X4 = k*sHi

	MOVOU   X1, X2           // mullo(sLo, k)
	PSRLQ   $32, X2
	PMULULQ X12, X1
	PMULULQ X12, X2
	PSHUFL  $0x08, X1, X1
	PSHUFL  $0x08, X2, X2
	PUNPCKLLQ X2, X1         // X1 = k*sLo

	PADDL X14, X1
	PSRAL $13, X1
	PADDL X1, X4
	MOVOU (DI)(CX*4), X0
	PADDL X4, X0
	MOVOU X0, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+80(FP)
	RET

// func fixScaleAVX2(dst []int32, k int32) (n int)
TEXT ·fixScaleAVX2(SB), NOSPLIT, $0-40
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVL k+24(FP), AX
	MOVQ AX, X12
	VPBROADCASTD X12, Y12
	VPCMPEQD Y13, Y13, Y13
	VPSRLD   $19, Y13, Y13   // 8191
	VPCMPEQD Y14, Y14, Y14
	VPSRLD   $31, Y14, Y14
	VPSLLD   $12, Y14, Y14   // 4096
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (DI)(CX*4), Y1   // s
	VPSRAD  $13, Y1, Y2      // sHi
	VPAND   Y13, Y1, Y3      // sLo
	VPMULLD Y12, Y2, Y2
	VPMULLD Y12, Y3, Y3
	VPADDD  Y14, Y3, Y3
	VPSRAD  $13, Y3, Y3
	VPADDD  Y3, Y2, Y2
	VMOVDQU Y2, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+32(FP)
	RET

// func fixScaleSSE2(dst []int32, k int32) (n int)
TEXT ·fixScaleSSE2(SB), NOSPLIT, $0-40
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVL   k+24(FP), AX
	MOVQ   AX, X12
	PSHUFL $0x00, X12, X12
	PCMPEQL X13, X13
	PSRLL   $19, X13         // 8191
	PCMPEQL X14, X14
	PSRLL   $31, X14
	PSLLL   $12, X14         // 4096
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (DI)(CX*4), X1     // s
	MOVOU X1, X4
	PSRAL $13, X4            // sHi
	PAND  X13, X1            // sLo

	MOVOU   X4, X2
	PSRLQ   $32, X2
	PMULULQ X12, X4
	PMULULQ X12, X2
	PSHUFL  $0x08, X4, X4
	PSHUFL  $0x08, X2, X2
	PUNPCKLLQ X2, X4         // k*sHi

	MOVOU   X1, X2
	PSRLQ   $32, X2
	PMULULQ X12, X1
	PMULULQ X12, X2
	PSHUFL  $0x08, X1, X1
	PSHUFL  $0x08, X2, X2
	PUNPCKLLQ X2, X1         // k*sLo

	PADDL X14, X1
	PSRAL $13, X1
	PADDL X1, X4
	MOVOU X4, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+32(FP)
	RET

// ---------------------------------------------------------------------
// absOr: mag[i] = |coef[i]|, returning the running OR of all written
// magnitudes (bitLen(OR) == bitLen(max), which is all Tier-1 needs).
// ---------------------------------------------------------------------

// func absOrAVX2(mag []uint32, coef []int32) (n int, or uint32)
TEXT ·absOrAVX2(SB), NOSPLIT, $0-60
	MOVQ mag_base+0(FP), DI
	MOVQ mag_len+8(FP), DX
	MOVQ coef_base+24(FP), SI
	VPXOR X0, X0, X0
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VPABSD  (SI)(CX*4), Y1
	VMOVDQU Y1, (DI)(CX*4)
	VPOR    Y1, Y0, Y0
	ADDQ $8, CX
	JMP  loop
done:
	VEXTRACTI128 $1, Y0, X1
	VPOR    X1, X0, X0
	VPSHUFD $0x4E, X0, X1
	VPOR    X1, X0, X0
	VPSHUFD $0xB1, X0, X1
	VPOR    X1, X0, X0
	MOVQ X0, BX
	MOVL BX, or+56(FP)
	MOVQ AX, n+48(FP)
	VZEROUPPER
	RET

// func absOrSSE2(mag []uint32, coef []int32) (n int, or uint32)
TEXT ·absOrSSE2(SB), NOSPLIT, $0-60
	MOVQ mag_base+0(FP), DI
	MOVQ mag_len+8(FP), DX
	MOVQ coef_base+24(FP), SI
	PXOR X0, X0
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (SI)(CX*4), X1
	MOVOU X1, X2
	PSRAL $31, X2            // sign mask
	PXOR  X2, X1
	PSUBL X2, X1             // |coef|
	MOVOU X1, (DI)(CX*4)
	POR   X1, X0
	ADDQ $4, CX
	JMP  loop
done:
	PSHUFL $0x4E, X0, X1
	POR    X1, X0
	PSHUFL $0xB1, X0, X1
	POR    X1, X0
	MOVQ X0, BX
	MOVL BX, or+56(FP)
	MOVQ AX, n+48(FP)
	RET

// ---------------------------------------------------------------------
// orU32: dst[i] |= src[i]  (stripe OR accumulation)
// ---------------------------------------------------------------------

// func orU32AVX2(dst, src []uint32) (n int)
TEXT ·orU32AVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ src_base+24(FP), SI
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (SI)(CX*4), Y1
	VPOR    (DI)(CX*4), Y1, Y1
	VMOVDQU Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+48(FP)
	RET

// func orU32SSE2(dst, src []uint32) (n int)
TEXT ·orU32SSE2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ src_base+24(FP), SI
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (SI)(CX*4), X1
	MOVOU (DI)(CX*4), X2
	POR   X2, X1
	MOVOU X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+48(FP)
	RET

// ---------------------------------------------------------------------
// signOr: flags[i] |= bit where coef[i] < 0
// ---------------------------------------------------------------------

// func signOrAVX2(flags []uint32, coef []int32, bit uint32) (n int)
TEXT ·signOrAVX2(SB), NOSPLIT, $0-64
	MOVQ flags_base+0(FP), DI
	MOVQ flags_len+8(FP), DX
	MOVQ coef_base+24(FP), SI
	MOVL bit+48(FP), AX
	MOVQ AX, X2
	VPBROADCASTD X2, Y2
	MOVQ DX, AX
	ANDQ $-8, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	VMOVDQU (SI)(CX*4), Y1
	VPSRAD  $31, Y1, Y1      // all-ones where negative
	VPAND   Y2, Y1, Y1
	VPOR    (DI)(CX*4), Y1, Y1
	VMOVDQU Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  loop
done:
	VZEROUPPER
	MOVQ AX, n+56(FP)
	RET

// func signOrSSE2(flags []uint32, coef []int32, bit uint32) (n int)
TEXT ·signOrSSE2(SB), NOSPLIT, $0-64
	MOVQ flags_base+0(FP), DI
	MOVQ flags_len+8(FP), DX
	MOVQ coef_base+24(FP), SI
	MOVL   bit+48(FP), AX
	MOVQ   AX, X2
	PSHUFL $0x00, X2, X2
	MOVQ DX, AX
	ANDQ $-4, AX
	XORQ CX, CX
loop:
	CMPQ CX, AX
	JGE  done
	MOVOU (SI)(CX*4), X1
	PSRAL $31, X1
	PAND  X2, X1
	MOVOU (DI)(CX*4), X3
	POR   X3, X1
	MOVOU X1, (DI)(CX*4)
	ADDQ $4, CX
	JMP  loop
done:
	MOVQ AX, n+56(FP)
	RET
