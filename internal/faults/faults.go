// Package faults is a deterministic fault-injection harness for the
// codec's worker stages. Tests arm exactly one fault — "panic (or
// error) at the Nth entry to the named stage" — and the pipeline's
// containment layer must convert it into a clean, typed failure of the
// whole encode or decode: no escaped panic, no hang, no leaked
// goroutine, pools still consistent.
//
// The harness is disabled by default; the only cost on the hot path is
// one atomic pointer load per stage job (Hit). Arming is global, so
// tests that inject faults must not run in parallel with each other —
// the containment matrix serializes on Arm/Disarm.
package faults

import (
	"fmt"
	"sync/atomic"
)

// Mode selects what the armed fault does when it fires.
type Mode int

// Fault modes.
const (
	// Panic makes the Nth entry panic; the pipeline's recover wrapper
	// must convert it into a *codec.FaultError.
	Panic Mode = iota
	// Error makes Hit return an *InjectedError from the Nth entry; the
	// stage must fail the encode/decode with it, without panicking.
	Error
)

// InjectedError is the typed error produced by an armed Error fault.
type InjectedError struct {
	Stage string // stage name the fault was armed on
	N     int64  // the entry index (1-based) at which it fired
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected error at %s entry %d", e.Stage, e.N)
}

// Contained carries a panic recovered by a worker goroutine across a
// re-raise on its coordinator: the stage it escaped from, the original
// panic value, and the worker's stack at recovery. Containment layers
// that must not swallow panics (e.g. the PCRD fan-out, which has no
// error return) wrap the recovered value in a Contained and re-panic
// it on the coordinator goroutine; the API-level recover unwraps it
// into the typed fault error without losing the original stack.
type Contained struct {
	Stage string
	Value any
	Stack []byte
}

func (c *Contained) String() string {
	return fmt.Sprintf("panic in stage %s: %v", c.Stage, c.Value)
}

// plan is one armed fault.
type plan struct {
	stage string
	n     int64
	mode  Mode
	count atomic.Int64
	fired atomic.Int64
}

var active atomic.Pointer[plan]

// Arm schedules one fault: the nth entry (1-based) to the named stage
// panics (Panic) or errors (Error). Arming replaces any previous plan
// and resets its entry counter. n < 1 is clamped to 1.
func Arm(stage string, n int, mode Mode) {
	if n < 1 {
		n = 1
	}
	p := &plan{stage: stage, n: int64(n), mode: mode}
	active.Store(p)
}

// Rand is the subset of workload.RNG the harness needs, kept as an
// interface so faults stays dependency-free.
type Rand interface{ Intn(n int) int }

// ArmRandom arms a fault at a deterministic pseudo-random entry in
// [1, maxN], drawn from rng (seed it to reproduce a run). It returns
// the chosen N.
func ArmRandom(stage string, rng Rand, maxN int, mode Mode) int {
	if maxN < 1 {
		maxN = 1
	}
	n := rng.Intn(maxN) + 1
	Arm(stage, n, mode)
	return n
}

// Disarm removes the active plan.
func Disarm() { active.Store(nil) }

// Fired reports how many times the active plan has fired (0 when
// disarmed or not yet reached).
func Fired() int64 {
	p := active.Load()
	if p == nil {
		return 0
	}
	return p.fired.Load()
}

// Hit records one entry into the named stage. When a fault is armed on
// this stage and this is its Nth entry, Hit panics (Panic mode) or
// returns an *InjectedError (Error mode); otherwise it returns nil.
// Disabled cost: one atomic load and a branch.
func Hit(stage string) error {
	p := active.Load()
	if p == nil || p.stage != stage {
		return nil
	}
	if p.count.Add(1) != p.n {
		return nil
	}
	p.fired.Add(1)
	if p.mode == Panic {
		panic(fmt.Sprintf("faults: injected panic at %s entry %d", stage, p.n))
	}
	return &InjectedError{Stage: stage, N: p.n}
}
