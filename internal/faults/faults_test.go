package faults

import (
	"errors"
	"testing"
)

type fakeRNG struct{ vals []int }

func (r *fakeRNG) Intn(n int) int {
	v := r.vals[0] % n
	r.vals = r.vals[1:]
	return v
}

func TestDisarmedHitIsFree(t *testing.T) {
	Disarm()
	for i := 0; i < 100; i++ {
		if err := Hit("t1"); err != nil {
			t.Fatalf("disarmed Hit returned %v", err)
		}
	}
}

func TestErrorFiresExactlyOnceAtN(t *testing.T) {
	Arm("t1", 3, Error)
	defer Disarm()
	for i := 1; i <= 10; i++ {
		err := Hit("t1")
		if (err != nil) != (i == 3) {
			t.Fatalf("entry %d: err=%v", i, err)
		}
		if err != nil {
			var ie *InjectedError
			if !errors.As(err, &ie) || ie.Stage != "t1" || ie.N != 3 {
				t.Fatalf("wrong typed error: %#v", err)
			}
		}
	}
	if Fired() != 1 {
		t.Fatalf("fired %d times, want 1", Fired())
	}
}

func TestOtherStagesUnaffected(t *testing.T) {
	Arm("dwt-v", 1, Error)
	defer Disarm()
	if err := Hit("t1"); err != nil {
		t.Fatalf("wrong stage fired: %v", err)
	}
	if err := Hit("dwt-v"); err == nil {
		t.Fatal("armed stage did not fire")
	}
}

func TestPanicMode(t *testing.T) {
	Arm("mct", 1, Panic)
	defer Disarm()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Panic mode did not panic")
		}
	}()
	Hit("mct")
}

func TestArmRandomIsDeterministic(t *testing.T) {
	n1 := ArmRandom("t1", &fakeRNG{vals: []int{7}}, 20, Error)
	n2 := ArmRandom("t1", &fakeRNG{vals: []int{7}}, 20, Error)
	Disarm()
	if n1 != n2 || n1 != 8 {
		t.Fatalf("ArmRandom not deterministic: %d vs %d", n1, n2)
	}
}
