package rate

import (
	"math"
	"testing"
	"testing/quick"

	"j2kcell/internal/workload"
)

// diminishing builds a typical R-D ladder: each pass costs more bytes
// and buys geometrically less distortion.
func diminishing(n int, seed uint32) BlockRD {
	rng := workload.NewRNG(seed)
	b := BlockRD{}
	r, d := 0, 0.0
	gain := 1000.0
	for i := 0; i < n; i++ {
		r += rng.Intn(40) + 5
		d += gain * (0.5 + rng.Float()*0.5)
		gain *= 0.55
		b.Rates = append(b.Rates, r)
		b.Dists = append(b.Dists, d)
	}
	return b
}

func TestHullSlopesStrictlyDecrease(t *testing.T) {
	for seed := uint32(1); seed < 30; seed++ {
		h := hull(diminishing(20, seed))
		if len(h) == 0 {
			t.Fatal("empty hull for non-trivial ladder")
		}
		for i := 1; i < len(h); i++ {
			if h[i].Slope >= h[i-1].Slope {
				t.Fatalf("seed %d: hull slopes not decreasing: %v then %v", seed, h[i-1].Slope, h[i].Slope)
			}
			if h[i].Pass <= h[i-1].Pass {
				t.Fatalf("hull passes not increasing")
			}
		}
	}
}

func TestHullDropsDominatedPoints(t *testing.T) {
	// Pass 2 is a terrible deal (1 byte of extra distortion for many
	// bytes); the hull must skip it in favor of pass 3.
	b := BlockRD{
		Rates: []int{10, 100, 110},
		Dists: []float64{1000, 1001, 2000},
	}
	h := hull(b)
	for _, p := range h {
		if p.Pass == 2 {
			t.Fatalf("dominated pass on hull: %+v", h)
		}
	}
}

func TestHullZeroBytePass(t *testing.T) {
	b := BlockRD{
		Rates: []int{10, 10, 20},
		Dists: []float64{100, 150, 160},
	}
	h := hull(b)
	// The free pass 2 must replace pass 1 as a hull point.
	if h[0].Pass != 2 {
		t.Fatalf("free pass not merged: %+v", h)
	}
}

func TestAllocateFitsBudget(t *testing.T) {
	var blocks []BlockRD
	for i := 0; i < 50; i++ {
		blocks = append(blocks, diminishing(15, uint32(i+1)))
	}
	for _, budget := range []int{0, 100, 1000, 5000, 1 << 20} {
		sel := Allocate(blocks, budget)
		got := TotalBytes(blocks, sel)
		if got > budget {
			t.Fatalf("budget %d exceeded: %d", budget, got)
		}
		if budget >= 1<<20 {
			for i, k := range sel {
				if k != len(blocks[i].Rates) {
					t.Fatal("ample budget must keep everything")
				}
			}
		}
	}
}

func TestAllocateMonotoneInBudget(t *testing.T) {
	var blocks []BlockRD
	for i := 0; i < 30; i++ {
		blocks = append(blocks, diminishing(12, uint32(i+7)))
	}
	dist0 := make([]float64, len(blocks))
	for i, b := range blocks {
		dist0[i] = b.Dists[len(b.Dists)-1] * 1.1
	}
	lastD := math.Inf(1)
	lastB := -1
	for _, budget := range []int{200, 500, 1000, 2000, 4000, 8000} {
		sel := Allocate(blocks, budget)
		bytes := TotalBytes(blocks, sel)
		d := TotalDistortion(blocks, dist0, sel)
		if bytes < lastB {
			t.Fatalf("bytes decreased with larger budget: %d after %d", bytes, lastB)
		}
		if d > lastD+1e-9 {
			t.Fatalf("distortion increased with larger budget: %v after %v", d, lastD)
		}
		lastD, lastB = d, bytes
	}
}

func TestAllocateNearOptimalVsExhaustive(t *testing.T) {
	// For a tiny instance, compare against brute force over hull points.
	blocks := []BlockRD{diminishing(4, 1), diminishing(4, 2), diminishing(4, 3)}
	dist0 := []float64{5000, 5000, 5000}
	budget := 150
	sel := Allocate(blocks, budget)
	got := TotalDistortion(blocks, dist0, sel)

	// Brute force over all pass combinations that fit.
	best := math.Inf(1)
	for a := 0; a <= 4; a++ {
		for b := 0; b <= 4; b++ {
			for c := 0; c <= 4; c++ {
				s := []int{a, b, c}
				if TotalBytes(blocks, s) <= budget {
					if d := TotalDistortion(blocks, dist0, s); d < best {
						best = d
					}
				}
			}
		}
	}
	// λ-based allocation is optimal among hull points; allow a small
	// gap vs unconstrained brute force.
	if got > best*1.15+1e-9 {
		t.Fatalf("allocation distortion %v, brute-force best %v", got, best)
	}
}

func TestPropAllocateNeverExceedsBudget(t *testing.T) {
	f := func(seed uint32, nb uint8, budget16 uint16) bool {
		rng := workload.NewRNG(seed)
		n := int(nb)%20 + 1
		blocks := make([]BlockRD, n)
		for i := range blocks {
			blocks[i] = diminishing(rng.Intn(10)+1, rng.Uint32())
		}
		budget := int(budget16)
		sel := Allocate(blocks, budget)
		if TotalBytes(blocks, sel) > budget {
			return false
		}
		for i, k := range sel {
			if k < 0 || k > len(blocks[i].Rates) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndDegenerateBlocks(t *testing.T) {
	blocks := []BlockRD{
		{}, // all-zero block: no passes
		{Rates: []int{5}, Dists: []float64{10}},
	}
	sel := Allocate(blocks, 100)
	if sel[0] != 0 || sel[1] != 1 {
		t.Fatalf("degenerate allocation: %v", sel)
	}
	if PassesConsidered(blocks) != 1 {
		t.Fatal("PassesConsidered wrong")
	}
}

func TestLagrangianDecreasingInLambdaSelection(t *testing.T) {
	blocks := []BlockRD{diminishing(8, 4)}
	dist0 := []float64{blocks[0].Dists[7] * 1.2}
	full := Allocate(blocks, 1<<20)
	if got := Lagrangian(blocks, dist0, full, 0); got <= 0 {
		t.Fatalf("Lagrangian %v", got)
	}
}

func TestAllocateParallelMatchesSequential(t *testing.T) {
	// The selection must be byte-for-byte identical at every worker
	// count, whether hulls are computed inside the call or were cached
	// beforehand (as the Tier-1 block jobs do).
	mk := func() []BlockRD {
		blocks := make([]BlockRD, 257)
		for i := range blocks {
			blocks[i] = diminishing(3+i%25, uint32(900+i))
		}
		return blocks
	}
	base := mk()
	budget := 0
	for _, b := range base {
		budget += b.Rates[len(b.Rates)-1]
	}
	budget /= 7
	want := Allocate(mk(), budget)
	for _, w := range []int{0, 2, 3, 8, 33, 1000} {
		got := AllocateParallel(mk(), budget, w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: block %d selects %d passes, sequential %d", w, i, got[i], want[i])
			}
		}
		pre := mk()
		for i := range pre {
			pre[i].ComputeHull()
		}
		got = AllocateParallel(pre, budget, w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d precomputed hulls: block %d selects %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}
