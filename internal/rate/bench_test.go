package rate

import (
	"fmt"
	"testing"
)

// benchBlocks builds a PCRD workload shaped like a real lossy encode:
// one R-D ladder per code block, ~3k blocks at the paper's 3072×3072
// scale divided by 8, each with a TERMALL ladder of ~20 passes.
func benchBlocks(n int) []BlockRD {
	blocks := make([]BlockRD, n)
	for i := range blocks {
		blocks[i] = diminishing(20, uint32(i+1))
	}
	return blocks
}

// Benchmark_RateControl prices the PCRD truncation search — the
// sequential tail of the lossy pipeline (the paper's ~60% Amdahl term
// at 16 SPE) — at 1 worker and at pool widths matching the encoder.
func Benchmark_RateControl(b *testing.B) {
	blocks := benchBlocks(3000)
	budget := 0
	for _, blk := range blocks {
		budget += blk.Rates[len(blk.Rates)-1]
	}
	budget /= 10 // a constraining budget so the λ bisection runs fully
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchAllocate(blocks, budget, w)
			}
		})
	}
}

// Benchmark_RateControlHulls prices hull construction alone — the part
// PR 2 moves into the parallel Tier-1 block jobs.
func Benchmark_RateControlHulls(b *testing.B) {
	blocks := benchBlocks(3000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range blocks {
			benchHull(&blocks[j])
		}
	}
}
