// Package rate implements post-compression rate-distortion
// optimization (PCRD-opt, Taubman's EBCOT Tier-1.5): given every code
// block's per-pass cumulative byte costs and distortion reductions, it
// chooses a truncation point for each block so total bytes meet a
// budget with minimal total distortion. The paper runs this stage
// sequentially on the PPE; at 16 SPE + 2 PPE it is ~60% of lossy
// encoding time, the Amdahl term that flattens Figure 5. This port
// breaks that term two ways: hull construction is embarrassingly
// parallel per block (and can ride inside the Tier-1 block jobs, see
// BlockRD.ComputeHull), and the λ bisection's per-block truncation
// scan fans out across workers with deterministic integer reduction.
package rate

import (
	"runtime/debug"
	"sort"
	"sync"

	"j2kcell/internal/faults"
	"j2kcell/internal/obs"
)

// BlockRD is the rate-distortion ladder of one code block: cumulative
// bytes and cumulative distortion reduction after each coding pass.
// Hull caches the block's convex hull; nil means not yet computed.
// Filling it via ComputeHull inside the (already parallel) Tier-1
// block job moves the hull sweep off the sequential rate-control tail.
type BlockRD struct {
	Rates []int
	Dists []float64
	Hull  []HullPoint
}

// HullPoint is a truncation point surviving the convex-hull sweep.
type HullPoint struct {
	Pass  int // number of passes kept (1-based)
	Slope float64
}

// ComputeHull computes and caches the block's convex hull. The result
// is always non-nil, so allocation can tell "computed, empty" from
// "not yet computed". Counts against the ambient recorder; the
// parallel pipelines use ComputeHullObs with their operation recorder.
func (b *BlockRD) ComputeHull() {
	b.ComputeHullObs(obs.Active())
}

// ComputeHullObs is ComputeHull counting against an explicit recorder
// (nil-safe), so per-operation recorders attribute hull work to the
// operation that ran it.
func (b *BlockRD) ComputeHullObs(rec *obs.Recorder) {
	b.Hull = hull(*b)
	rec.Add(obs.CtrHulls, 1)
}

// hull computes the strictly-decreasing-slope convex hull of a block's
// R-D ladder (slope = ΔD/ΔR from the previous hull point), the set of
// truncation points PCRD may legally choose.
func hull(b BlockRD) []HullPoint {
	at := func(i int) (int, float64) {
		if i < 0 {
			return 0, 0
		}
		return b.Rates[i], b.Dists[i]
	}
	var stack []int // 0-based pass indices on the hull
	for i := range b.Rates {
		r, d := at(i)
		for len(stack) > 0 {
			pr, pd := 0, 0.0
			if len(stack) >= 2 {
				pr, pd = at(stack[len(stack)-2])
			}
			tr, td := at(stack[len(stack)-1])
			if r <= tr {
				// No new bytes: keep the later pass only if it buys
				// strictly more distortion reduction for free.
				if d > td {
					stack[len(stack)-1] = i
				}
				r, d = -1, 0 // consumed
				break
			}
			sTop := (td - pd) / float64(tr-pr)
			sNew := (d - pd) / float64(r-pr)
			if sNew >= sTop {
				stack = stack[:len(stack)-1] // top is dominated
				continue
			}
			break
		}
		if r < 0 {
			continue
		}
		pr, pd := 0, 0.0
		if len(stack) > 0 {
			pr, pd = at(stack[len(stack)-1])
		}
		if r > pr && d > pd {
			stack = append(stack, i)
		}
	}
	pts := make([]HullPoint, 0, len(stack))
	pr, pd := 0, 0.0
	for _, i := range stack {
		r, d := at(i)
		pts = append(pts, HullPoint{Pass: i + 1, Slope: (d - pd) / float64(r-pr)})
		pr, pd = r, d
	}
	return pts
}

// parallelBlocks splits [0,n) into one contiguous chunk per worker and
// runs fn(w, lo, hi) on each concurrently; a single worker (or a tiny
// n) runs inline with no goroutines.
//
// A panic inside a worker chunk (or an injected "rate" fault) never
// escapes a bare goroutine: the first one is captured as a
// *faults.Contained — keeping the original stack — and re-raised on
// the coordinator after every worker has finished, so the WaitGroup
// always completes and the caller's recover (the codec API envelope)
// sees a fully-located fault.
func parallelBlocks(n, workers int, fn func(w, lo, hi int)) {
	chunk := func(w, lo, hi int) {
		defer func() {
			// Tag the panic with its stage before it leaves the chunk,
			// so the inline path (no worker goroutine, no recover below)
			// still reaches the API envelope fully located.
			if r := recover(); r != nil {
				if c, ok := r.(*faults.Contained); ok {
					panic(c)
				}
				panic(&faults.Contained{Stage: "rate", Value: r, Stack: debug.Stack()})
			}
		}()
		if err := faults.Hit("rate"); err != nil {
			panic(&faults.Contained{Stage: "rate", Value: err, Stack: debug.Stack()})
		}
		fn(w, lo, hi)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		chunk(0, 0, n)
		return
	}
	var mu sync.Mutex
	var fault *faults.Contained
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					c, ok := r.(*faults.Contained)
					if !ok {
						c = &faults.Contained{Stage: "rate", Value: r, Stack: debug.Stack()}
					}
					mu.Lock()
					if fault == nil {
						fault = c
					}
					mu.Unlock()
				}
			}()
			chunk(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	if fault != nil {
		panic(fault)
	}
}

// Allocate returns, for each block, the number of passes to keep so
// that the summed truncated rates fit the byte budget with minimal
// distortion. A non-positive budget keeps nothing; a budget beyond the
// total keeps everything.
func Allocate(blocks []BlockRD, budget int) []int {
	return AllocateParallel(blocks, budget, 1)
}

// AllocateParallel is Allocate with the per-block work — hull
// construction for blocks whose Hull is nil, and the truncation scan
// inside each λ probe — fanned out over the given number of workers.
// The result is identical for every worker count: block selections are
// written to disjoint indices and byte totals are integer sums reduced
// in chunk order.
func AllocateParallel(blocks []BlockRD, budget, workers int) []int {
	return AllocateParallelObs(obs.Active(), blocks, budget, workers)
}

// AllocateParallelObs is AllocateParallel counting its hull builds and
// λ probes against an explicit recorder (nil-safe), so a per-operation
// recorder sees its own rate-control work rather than the process
// ambient one.
func AllocateParallelObs(rec *obs.Recorder, blocks []BlockRD, budget, workers int) []int {
	if workers < 1 {
		workers = 1
	}
	parallelBlocks(len(blocks), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if blocks[i].Hull == nil {
				blocks[i].ComputeHullObs(rec)
			}
		}
	})

	total := 0
	var slopes []float64
	for i := range blocks {
		if n := len(blocks[i].Rates); n > 0 {
			total += blocks[i].Rates[n-1]
		}
		for _, p := range blocks[i].Hull {
			slopes = append(slopes, p.Slope)
		}
	}
	out := make([]int, len(blocks))
	if budget <= 0 {
		return out
	}
	if total <= budget {
		for i := range blocks {
			out[i] = len(blocks[i].Rates)
		}
		return out
	}

	// pick selects per-block passes for a slope threshold λ: keep every
	// hull point with slope >= λ.
	pick := func(lambda float64) ([]int, int) {
		rec.Add(obs.CtrRateProbes, 1)
		sel := make([]int, len(blocks))
		partial := make([]int, workers)
		parallelBlocks(len(blocks), workers, func(w, lo, hi int) {
			bytes := 0
			for i := lo; i < hi; i++ {
				keep := 0
				for _, p := range blocks[i].Hull {
					if p.Slope >= lambda {
						keep = p.Pass
					} else {
						break
					}
				}
				sel[i] = keep
				if keep > 0 {
					bytes += blocks[i].Rates[keep-1]
				}
			}
			partial[w] = bytes
		})
		bytes := 0
		for _, b := range partial {
			bytes += b
		}
		return sel, bytes
	}

	// Binary search over the distinct slopes (descending) for the
	// smallest λ that fits, i.e. the most data we can keep.
	sort.Sort(sort.Reverse(sort.Float64Slice(slopes)))
	lo, hi := 0, len(slopes)-1 // index into sorted slopes
	best := out
	bestBytes := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		sel, bytes := pick(slopes[mid])
		if bytes <= budget {
			if bytes > bestBytes {
				best, bestBytes = sel, bytes
			}
			lo = mid + 1 // try a smaller slope (keep more)
		} else {
			hi = mid - 1
		}
	}
	if bestBytes < 0 {
		// Even the steepest single point overflows; keep nothing.
		return out
	}
	return best
}

// TotalBytes sums the selected truncation rates.
func TotalBytes(blocks []BlockRD, sel []int) int {
	n := 0
	for i, k := range sel {
		if k > 0 {
			n += blocks[i].Rates[k-1]
		}
	}
	return n
}

// TotalDistortion sums the residual distortion (initial minus recovered)
// for a selection, given each block's initial distortion.
func TotalDistortion(blocks []BlockRD, dist0 []float64, sel []int) float64 {
	var d float64
	for i, k := range sel {
		d += dist0[i]
		if k > 0 {
			d -= blocks[i].Dists[k-1]
		}
	}
	if d < 0 {
		return 0
	}
	return d
}

// PassesConsidered reports the total number of R-D points examined —
// the workload driver for the sequential PPE rate-control stage in the
// Cell cost model.
func PassesConsidered(blocks []BlockRD) int {
	n := 0
	for _, b := range blocks {
		n += len(b.Rates)
	}
	return n
}

// Lagrangian returns D + λR for diagnostics and tests.
func Lagrangian(blocks []BlockRD, dist0 []float64, sel []int, lambda float64) float64 {
	return TotalDistortion(blocks, dist0, sel) + lambda*float64(TotalBytes(blocks, sel))
}
