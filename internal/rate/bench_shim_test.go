package rate

// Shims binding the rate-control benchmarks to the allocation API.
// Hulls are cleared first so the benchmark prices the full stage —
// hull sweep plus λ search — as the pre-refactor Allocate did.

func benchAllocate(blocks []BlockRD, budget, workers int) []int {
	for i := range blocks {
		blocks[i].Hull = nil
	}
	return AllocateParallel(blocks, budget, workers)
}

func benchHull(b *BlockRD) {
	b.Hull = nil // price a fresh sweep, not the cache
	b.ComputeHull()
}
