// Package cli holds the plumbing shared by the j2k* commands: the
// exit-code convention that lets scripts distinguish the codec's
// failure classes, and flag helpers for timeouts and decoder limits.
package cli

import (
	"context"
	"errors"
	"time"

	"j2kcell"
)

// Exit codes of the j2k* commands. Scripts can branch on the class of
// failure without parsing stderr.
const (
	ExitOK      = 0 // success
	ExitError   = 1 // I/O and other untyped failures
	ExitUsage   = 2 // bad flags or arguments
	ExitFormat  = 3 // malformed, truncated, or limit-exceeding codestream
	ExitFault   = 4 // contained codec fault (a bug, not bad input)
	ExitTimeout = 5 // -timeout exceeded or operation cancelled
	ExitPartial = 6 // best-effort decode succeeded but the stream was damaged
)

// ExitCode maps an error to the shared exit-code convention.
func ExitCode(err error) int {
	if err == nil {
		return ExitOK
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return ExitTimeout
	}
	var fault *j2kcell.FaultError
	if errors.As(err, &fault) {
		return ExitFault
	}
	var format *j2kcell.FormatError
	if errors.As(err, &format) {
		return ExitFormat
	}
	return ExitError
}

// Context returns a context honoring a -timeout flag value (<= 0 means
// no timeout). The CancelFunc is always non-nil.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), timeout)
}

// Limits builds decoder limits from the -max-pixels and -max-dim flag
// values, starting from the library defaults (<= 0 keeps the default
// for that axis).
func Limits(maxPixels int64, maxDim int) *j2kcell.Limits {
	lim := j2kcell.DefaultLimits()
	if maxPixels > 0 {
		lim.MaxPixels = maxPixels
	}
	if maxDim > 0 {
		lim.MaxWidth, lim.MaxHeight = maxDim, maxDim
	}
	return &lim
}
