package cli

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"j2kcell/internal/obs"
)

// Shared observability HTTP endpoint of the j2k* commands. One mux
// serves the three debug surfaces DESIGN.md §6 documents:
//
//	/metrics      — the process-wide aggregate registry in Prometheus
//	                text exposition format (counters, per-class
//	                operation totals, stage and SLO latency histograms)
//	/debug/vars   — the same aggregate snapshot as expvar JSON
//	/debug/pprof/ — net/http/pprof profiles
//
// The commands build this mux explicitly instead of touching
// http.DefaultServeMux, so importing a library that registers default
// handlers can never widen what the flag exposes.

// MetricsHandler serves the aggregate observability registry in
// Prometheus text exposition format (version 0.0.4).
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.Aggregate().WritePrometheus(w); err != nil {
			// Headers are already out; nothing useful to do but log-free
			// best effort — the scraper sees a truncated body and retries.
			_ = err
		}
	})
}

// ObsMux returns the shared observability mux.
func ObsMux() *http.ServeMux {
	obs.PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeObs binds the shared observability mux on addr (":0" picks a
// free port) and serves it on a background goroutine for the life of
// the process. It returns the bound address, so callers can print a
// scrape URL — or scrape themselves (j2kload -selfcheck).
func ServeObs(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metrics listener: %w", err)
	}
	srv := &http.Server{Handler: ObsMux()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
