package cli

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"j2kcell/internal/obs"
)

// TestObsMuxMetrics scrapes the shared mux the way Prometheus would:
// over HTTP, checking the exposition content type and that the body
// parses with the library's own minimal scraper.
func TestObsMuxMetrics(t *testing.T) {
	srv := httptest.NewServer(ObsMux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q, want text exposition 0.0.4", ct)
	}
	samples, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	var active, counters int
	for _, s := range samples {
		if s.Name == "j2k_operations_active" {
			active++
		}
		if strings.HasSuffix(s.Name, "_total") {
			counters++
		}
	}
	if active != 1 {
		t.Fatalf("j2k_operations_active appears %d times, want 1", active)
	}
	if counters == 0 {
		t.Fatal("no counter families exported")
	}
}

// TestObsMuxExpvar checks /debug/vars returns JSON that includes the
// j2kcell aggregate snapshot PublishExpvar registers.
func TestObsMuxExpvar(t *testing.T) {
	srv := httptest.NewServer(ObsMux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	snap, ok := doc["j2kcell"]
	if !ok {
		t.Fatal("/debug/vars missing j2kcell snapshot")
	}
	var fields map[string]any
	if err := json.Unmarshal(snap, &fields); err != nil {
		t.Fatalf("j2kcell snapshot not an object: %v", err)
	}
	for _, k := range []string{"counters", "ops_total", "ops_active", "op_errors"} {
		if _, ok := fields[k]; !ok {
			t.Fatalf("snapshot missing %q: %v", k, fields)
		}
	}
}

// TestServeObsBindsEphemeralPort: ":0" must bind a real port and
// return the resolved address — j2kload -selfcheck depends on it.
func TestServeObsBindsEphemeralPort(t *testing.T) {
	addr, err := ServeObs("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(addr, ":0") {
		t.Fatalf("ServeObs returned unresolved address %q", addr)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("served /metrics status %s", resp.Status)
	}
}
