package codestream

import (
	"encoding/binary"
	"fmt"
)

// SalvageInfo records what the tolerant tile-part parser had to do to
// recover bodies from a damaged codestream.
type SalvageInfo struct {
	Tiles     int   // tiles in the grid the main header declares
	Resyncs   int   // SOT resyncs performed after framing damage
	Truncated bool  // the stream ended inside a tile-part or before EOC
	BodyBytes int64 // total salvaged packet-body bytes
}

// GridTiles returns the tile count implied by the header's SIZ grid.
func GridTiles(h *Header) int {
	if h.TileW <= 0 || h.TileH <= 0 {
		return 1
	}
	return ((h.W + h.TileW - 1) / h.TileW) * ((h.H + h.TileH - 1) / h.TileH)
}

// DecodeTilesSalvage is the best-effort counterpart of
// DecodeTilesLimits. The main header (SOC/SIZ/COD/QCD) is still parsed
// strictly — without it there is no geometry to decode into — but the
// tile-part framing is forgiving: unknown-but-well-formed marker
// segments are skipped, a damaged SOT/SOD wrapper triggers a forward
// scan for the next plausible SOT, truncated tile-parts are clamped to
// the bytes present, and a missing EOC ends the stream instead of
// failing it. Bodies are returned indexed by Isot over the full SIZ
// tile grid; a nil body means that tile never arrived. The error is
// non-nil only when the main header itself is unusable.
func DecodeTilesSalvage(data []byte, lim Limits) (*Header, [][]byte, *SalvageInfo, error) {
	rd := &reader{data: data}
	if m, err := rd.marker(); err != nil || m != SOC {
		return nil, nil, nil, fmt.Errorf("codestream: missing SOC (got %#x, err %v)", m, err)
	}
	h := &Header{}
	seenSIZ, seenCOD, seenQCD := false, false, false

	// Main header: strict until the first SOT (or EOC), except that
	// well-formed marker segments we do not understand are skipped —
	// resilience must not fail on a stream that merely carries an
	// optional segment the strict parser would reject.
	for !seenSIZ || !seenCOD || !seenQCD {
		m, err := rd.marker()
		if err != nil {
			return nil, nil, nil, err
		}
		switch m {
		case SIZ:
			p, err := rd.segment()
			if err != nil {
				return nil, nil, nil, err
			}
			if err := parseSIZ(p, h, lim); err != nil {
				return nil, nil, nil, err
			}
			seenSIZ = true
		case COD:
			p, err := rd.segment()
			if err != nil {
				return nil, nil, nil, err
			}
			if err := parseCOD(p, h, lim); err != nil {
				return nil, nil, nil, err
			}
			seenCOD = true
		case QCD:
			p, err := rd.segment()
			if err != nil {
				return nil, nil, nil, err
			}
			if !seenSIZ || !seenCOD {
				return nil, nil, nil, fmt.Errorf("codestream: QCD before SIZ/COD")
			}
			if err := parseQCD(p, h); err != nil {
				return nil, nil, nil, err
			}
			seenQCD = true
		case SOT, EOC:
			return nil, nil, nil, fmt.Errorf("codestream: tile data before complete main header")
		default:
			if _, err := rd.segment(); err != nil {
				return nil, nil, nil, err
			}
		}
	}

	ntiles := GridTiles(h)
	info := &SalvageInfo{Tiles: ntiles}
	bodies := make([][]byte, ntiles)

	sawEOC := false
	for !sawEOC && rd.pos < len(data) {
		at := rd.pos
		m, err := rd.marker()
		ok := err == nil
		switch {
		case ok && m == EOC:
			sawEOC = true
		case ok && m == SOT:
			p, serr := rd.segment()
			if serr != nil || len(p) < 8 {
				ok = false
				break
			}
			isot := int(binary.BigEndian.Uint16(p[0:]))
			psot := int(binary.BigEndian.Uint32(p[2:]))
			if isot >= ntiles {
				ok = false
				break
			}
			if m, merr := rd.marker(); merr != nil || m != SOD {
				ok = false
				break
			}
			bodyLen := psot - 12 - 2
			if bodyLen < 0 {
				ok = false
				break
			}
			if rd.pos+bodyLen > len(data) {
				bodyLen = len(data) - rd.pos
				info.Truncated = true
			}
			if bodies[isot] == nil {
				bodies[isot] = data[rd.pos : rd.pos+bodyLen]
				info.BodyBytes += int64(bodyLen)
			}
			rd.pos += bodyLen
		default:
			// A marker segment we don't know: skip it if well formed,
			// otherwise fall through to resync.
			if ok {
				if _, serr := rd.segment(); serr != nil {
					ok = false
				}
			}
		}
		if !ok {
			// Resync: scan forward from just past the failure point for
			// the next plausible SOT (Lsot == 10 and an in-range Isot) or
			// the EOC trailer, whichever comes first.
			next := findSOT(data, at+1, ntiles)
			if next < 0 {
				info.Truncated = true
				break
			}
			rd.pos = next
			info.Resyncs++
		}
	}
	if !sawEOC && !info.Truncated {
		info.Truncated = true
	}
	return h, bodies, info, nil
}

// findSOT scans for the next byte position carrying a plausible SOT
// marker segment: FF 90, Lsot == 10, Isot inside the tile grid — or an
// EOC trailer at the very end of the stream. Validating the fixed Lsot
// and the Isot range keeps a stray FF 90 inside packet-body bytes from
// hijacking the resync (the two following length bytes would have to
// read 00 0A and the tile index would have to be in range as well).
func findSOT(data []byte, from int, ntiles int) int {
	if from < 0 {
		from = 0
	}
	for i := from; i+2 <= len(data); i++ {
		if data[i] != 0xFF {
			continue
		}
		if data[i+1] == 0xD9 && i+2 == len(data) {
			return i // EOC trailer
		}
		if data[i+1] != 0x90 {
			continue
		}
		if i+6 > len(data) {
			continue
		}
		if data[i+2] != 0x00 || data[i+3] != 0x0A {
			continue
		}
		if isot := int(data[i+4])<<8 | int(data[i+5]); isot >= ntiles {
			continue
		}
		return i
	}
	return -1
}
