package codestream

import (
	"strings"
	"testing"
)

func sampleHeader() *Header {
	return &Header{
		W: 640, H: 480, NComp: 3, Depth: 8,
		Levels: 5, CBW: 64, CBH: 64,
		Lossless: false, UseMCT: true, TermAll: true, BaseDelta: 0.5,
		Mb: func() [][]int {
			mb := make([][]int, 3)
			for c := range mb {
				mb[c] = make([]int, 16)
				for b := range mb[c] {
					mb[c][b] = b%13 + 1
				}
			}
			return mb
		}(),
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := sampleHeader()
	body := []byte{1, 2, 3, 4, 5, 6, 7}
	data := Encode(h, body)
	got, gotBody, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != h.W || got.H != h.H || got.NComp != h.NComp || got.Depth != h.Depth {
		t.Fatalf("geometry: %+v", got)
	}
	if got.Levels != h.Levels || got.CBW != h.CBW || got.CBH != h.CBH {
		t.Fatalf("coding params: %+v", got)
	}
	if got.Lossless != h.Lossless || got.UseMCT != h.UseMCT || got.TermAll != h.TermAll {
		t.Fatalf("flags: %+v", got)
	}
	if got.BaseDelta != h.BaseDelta {
		t.Fatalf("delta %v", got.BaseDelta)
	}
	for c := range h.Mb {
		for b := range h.Mb[c] {
			if got.Mb[c][b] != h.Mb[c][b] {
				t.Fatalf("Mb[%d][%d]=%d want %d", c, b, got.Mb[c][b], h.Mb[c][b])
			}
		}
	}
	if string(gotBody) != string(body) {
		t.Fatal("body mismatch")
	}
}

func TestLosslessFlagRoundTrip(t *testing.T) {
	h := sampleHeader()
	h.Lossless, h.TermAll = true, false
	got, _, err := Decode(Encode(h, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Lossless || got.TermAll {
		t.Fatalf("flags: %+v", got)
	}
}

func TestStartsWithSOCEndsWithEOC(t *testing.T) {
	data := Encode(sampleHeader(), []byte{9})
	if data[0] != 0xFF || data[1] != 0x4F {
		t.Fatal("missing SOC")
	}
	if data[len(data)-2] != 0xFF || data[len(data)-1] != 0xD9 {
		t.Fatal("missing EOC")
	}
}

func TestDecodeErrors(t *testing.T) {
	h := sampleHeader()
	good := Encode(h, []byte{1, 2, 3})
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte{0, 1, 2, 3}},
		{"truncated mid-header", good[:10]},
		{"truncated body", good[:len(good)-6]},
		{"missing EOC", good[:len(good)-2]},
	}
	for _, c := range cases {
		if _, _, err := Decode(c.data); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDecodeRejectsUnknownMarker(t *testing.T) {
	good := Encode(sampleHeader(), []byte{1})
	bad := append([]byte(nil), good...)
	bad[2], bad[3] = 0xFF, 0x99 // overwrite SIZ marker
	_, _, err := Decode(bad)
	if err == nil || !strings.Contains(err.Error(), "unexpected marker") {
		t.Fatalf("err=%v", err)
	}
}

func TestEmptyBody(t *testing.T) {
	h := sampleHeader()
	got, body, err := Decode(Encode(h, nil))
	if err != nil || len(body) != 0 || got == nil {
		t.Fatalf("empty body: %v", err)
	}
}

func TestMultiTileRoundTrip(t *testing.T) {
	h := sampleHeader()
	h.TileW, h.TileH = 320, 240
	bodies := [][]byte{{1, 2, 3}, {4, 5}, {6}, {}}
	data := EncodeTiles(h, bodies)
	got, gotBodies, err := DecodeTiles(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TileW != 320 || got.TileH != 240 {
		t.Fatalf("tile dims %dx%d", got.TileW, got.TileH)
	}
	if len(gotBodies) != 4 {
		t.Fatalf("%d tile bodies", len(gotBodies))
	}
	for i := range bodies {
		if string(gotBodies[i]) != string(bodies[i]) {
			t.Fatalf("tile %d body mismatch", i)
		}
	}
}

func TestRejectsBadCodingParams(t *testing.T) {
	good := Encode(sampleHeader(), []byte{1})
	// COD payload starts after SOC(2) + SIZ seg; find COD by marker scan.
	mutate := func(find func(data []byte) int, v byte) []byte {
		d := append([]byte(nil), good...)
		if i := find(d); i >= 0 {
			d[i] = v
		}
		return d
	}
	codOff := func(d []byte) int {
		for i := 0; i+1 < len(d); i++ {
			if d[i] == 0xFF && d[i+1] == 0x52 {
				return i + 4 // marker + length
			}
		}
		return -1
	}
	// Progression byte out of range.
	if _, _, err := Decode(mutate(func(d []byte) int { return codOff(d) + 1 }, 9)); err == nil {
		t.Error("bad progression accepted")
	}
	// Levels out of range.
	if _, _, err := Decode(mutate(func(d []byte) int { return codOff(d) + 5 }, 77)); err == nil {
		t.Error("bad level count accepted")
	}
	// Code block exponent out of range.
	if _, _, err := Decode(mutate(func(d []byte) int { return codOff(d) + 6 }, 30)); err == nil {
		t.Error("bad cb exponent accepted")
	}
}

func TestRejectsTilePartsOutOfOrder(t *testing.T) {
	h := sampleHeader()
	h.TileW, h.TileH = 320, 480
	data := EncodeTiles(h, [][]byte{{1}, {2}})
	// Flip the second SOT's Isot to 0.
	count := 0
	for i := 0; i+1 < len(data); i++ {
		if data[i] == 0xFF && data[i+1] == 0x90 {
			count++
			if count == 2 {
				data[i+5] = 0 // Isot low byte
				break
			}
		}
	}
	if _, _, err := DecodeTiles(data); err == nil {
		t.Fatal("out-of-order tile parts accepted")
	}
}

func TestRejectsQCDBeforeSIZ(t *testing.T) {
	// Hand-build SOC then QCD.
	data := []byte{0xFF, 0x4F, 0xFF, 0x5C, 0x00, 0x03, 0x20}
	if _, _, err := Decode(data); err == nil {
		t.Fatal("QCD before SIZ accepted")
	}
}
