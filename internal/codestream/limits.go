package codestream

import "fmt"

// Limits bounds what a decoder will accept from an untrusted
// codestream's main header, enforced while parsing SIZ/COD — before
// any coefficient plane, precinct grid, or tile table is allocated —
// so a decompression bomb (a tiny stream declaring a gigapixel image)
// is rejected with a cheap typed error instead of an OOM or a stall.
//
// A zero or negative field means "no limit for this axis"; the zero
// Limits value disables header limiting entirely. DefaultLimits
// returns the bounds the library applies when the caller supplies
// none.
type Limits struct {
	MaxWidth      int   // image width in samples
	MaxHeight     int   // image height in samples
	MaxComponents int   // component count (SIZ Csiz)
	MaxLevels     int   // DWT decomposition levels (COD)
	MaxTiles      int   // tiles in the grid implied by SIZ
	MaxPixels     int64 // total sample budget: W × H × components
}

// DefaultLimits are the bounds applied when the caller passes none:
// generous enough for every workload in this repository (the paper's
// 3072×3072×3 dial is ~28 M samples) while refusing gigapixel-scale
// headers long before allocation.
func DefaultLimits() Limits {
	return Limits{
		MaxWidth:      1 << 26,
		MaxHeight:     1 << 26,
		MaxComponents: 256,
		MaxLevels:     32,
		MaxTiles:      1 << 16,
		MaxPixels:     1 << 28, // 268 M samples ≈ 1 GiB of int32 planes
	}
}

// checkSIZ validates the geometry fields parsed from SIZ.
func (l Limits) checkSIZ(h *Header) error {
	if l.MaxWidth > 0 && h.W > l.MaxWidth {
		return fmt.Errorf("codestream: width %d exceeds limit %d", h.W, l.MaxWidth)
	}
	if l.MaxHeight > 0 && h.H > l.MaxHeight {
		return fmt.Errorf("codestream: height %d exceeds limit %d", h.H, l.MaxHeight)
	}
	if l.MaxComponents > 0 && h.NComp > l.MaxComponents {
		return fmt.Errorf("codestream: %d components exceed limit %d", h.NComp, l.MaxComponents)
	}
	if l.MaxPixels > 0 {
		if total := int64(h.W) * int64(h.H) * int64(h.NComp); total > l.MaxPixels {
			return fmt.Errorf("codestream: %d samples (%dx%dx%d) exceed pixel budget %d",
				total, h.W, h.H, h.NComp, l.MaxPixels)
		}
	}
	if l.MaxTiles > 0 {
		tiles := ((h.W + h.TileW - 1) / h.TileW) * ((h.H + h.TileH - 1) / h.TileH)
		if tiles > l.MaxTiles {
			return fmt.Errorf("codestream: %d tiles exceed limit %d", tiles, l.MaxTiles)
		}
	}
	return nil
}

// checkCOD validates the coding-style fields parsed from COD.
func (l Limits) checkCOD(h *Header) error {
	if l.MaxLevels > 0 && h.Levels > l.MaxLevels {
		return fmt.Errorf("codestream: %d decomposition levels exceed limit %d", h.Levels, l.MaxLevels)
	}
	return nil
}
