// Package codestream reads and writes the JPEG2000 codestream framing:
// SOC/SIZ/COD/QCD main header marker segments, the SOT/SOD tile
// wrapper, and the EOC trailer (ITU-T T.800 Annex A). The marker
// structure follows the standard; the QCD payload is extended to carry
// the per-component, per-band M_b plane counts and the base quantizer
// step this codec derives from measured synthesis gains (documented
// divergence: a standard decoder would recompute these from exponent/
// mantissa fields, which would tie us to the standard's hard-coded gain
// tables instead of the measured ones).
package codestream

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Marker codes.
const (
	SOC = 0xFF4F
	SIZ = 0xFF51
	COD = 0xFF52
	QCD = 0xFF5C
	SOT = 0xFF90
	SOP = 0xFF91 // start of packet (resilience)
	SOD = 0xFF93
	EOC = 0xFFD9
)

// Header carries everything a decoder needs before the packet data.
type Header struct {
	W, H         int
	NComp        int
	Depth        int
	Levels       int
	CBW          int // code block width
	CBH          int
	TileW, TileH int  // tile dimensions (0 = one tile covering the image)
	SOPMarkers   bool // packets are prefixed with SOP resync markers
	Layers       int  // quality layers (>= 1)
	Progression  int  // 0 = LRCP, 1 = RLCP
	Lossless     bool
	UseMCT       bool
	TermAll      bool
	SegSym       bool // cleanup passes end with the 1010 segmentation symbol
	HT           bool // blocks coded with the high-throughput (Part 15) coder
	BaseDelta    float64
	Mb           [][]int // [component][band] coded bit planes
}

func put16(b []byte, v int) { binary.BigEndian.PutUint16(b, uint16(v)) }
func put32(b []byte, v int) { binary.BigEndian.PutUint32(b, uint32(v)) }

func appendMarker(out []byte, code int) []byte {
	return append(out, byte(code>>8), byte(code))
}

// appendSegment appends marker + 2-byte length (covering the length
// field itself plus payload) + payload.
func appendSegment(out []byte, code int, payload []byte) []byte {
	out = appendMarker(out, code)
	var l [2]byte
	put16(l[:], len(payload)+2)
	return append(append(out, l[:]...), payload...)
}

// log2int returns log2 for exact powers of two.
func log2int(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Encode wraps a single tile's packet body in a complete codestream.
func Encode(h *Header, body []byte) []byte {
	return EncodeTiles(h, [][]byte{body})
}

// EncodeTiles wraps one packet body per tile, emitting one SOT/SOD
// tile-part per tile in index order.
func EncodeTiles(h *Header, bodies [][]byte) []byte {
	out := appendMarker(nil, SOC)

	// SIZ.
	siz := make([]byte, 36+3*h.NComp)
	rsiz := 0
	if h.HT {
		rsiz = 0x4000 // Part 15 capability: HT code blocks present
	}
	put16(siz[0:], rsiz)
	put32(siz[2:], h.W)
	put32(siz[6:], h.H)
	put32(siz[10:], 0) // XOsiz
	put32(siz[14:], 0)
	tw, th := h.TileW, h.TileH
	if tw <= 0 || tw > h.W {
		tw = h.W
	}
	if th <= 0 || th > h.H {
		th = h.H
	}
	put32(siz[18:], tw)
	put32(siz[22:], th)
	put32(siz[26:], 0)
	put32(siz[30:], 0)
	put16(siz[34:], h.NComp)
	for c := 0; c < h.NComp; c++ {
		siz[36+3*c] = byte(h.Depth - 1) // Ssiz: unsigned, depth
		siz[37+3*c] = 1                 // XRsiz
		siz[38+3*c] = 1                 // YRsiz
	}
	out = appendSegment(out, SIZ, siz)

	// COD.
	cod := make([]byte, 12)
	cod[0] = 0 // Scod: default precincts
	if h.SOPMarkers {
		cod[0] |= 0x02 // SOP marker segments used
		cod[0] |= 0x04 // EPH markers used (emitted together)
	}
	cod[1] = byte(h.Progression)
	layers := h.Layers
	if layers < 1 {
		layers = 1
	}
	put16(cod[2:], layers)
	if h.UseMCT {
		cod[4] = 1
	}
	cod[5] = byte(h.Levels)
	cod[6] = byte(log2int(h.CBW) - 2)
	cod[7] = byte(log2int(h.CBH) - 2)
	if h.TermAll {
		cod[8] = 0x04 // code block style: terminate each pass
	}
	if h.SegSym {
		cod[8] |= 0x20 // code block style: segmentation symbols
	}
	if h.HT {
		cod[8] |= 0x40 // code block style: HT code blocks (HTDECLARED)
	}
	if h.Lossless {
		cod[9] = 1 // 5/3 reversible
	}
	// cod[10:12] spare (precinct defaults).
	out = appendSegment(out, COD, cod)

	// QCD (extended payload; see package comment).
	nb := 3*h.Levels + 1
	qcd := make([]byte, 1+8+h.NComp*nb)
	if h.Lossless {
		qcd[0] = 0x20 // no quantization
	} else {
		qcd[0] = 0x22 // scalar expounded
	}
	binary.BigEndian.PutUint64(qcd[1:], math.Float64bits(h.BaseDelta))
	for c := 0; c < h.NComp; c++ {
		for b := 0; b < nb; b++ {
			qcd[9+c*nb+b] = byte(h.Mb[c][b])
		}
	}
	out = appendSegment(out, QCD, qcd)

	// One SOT/SOD tile-part per tile.
	for i, body := range bodies {
		sot := make([]byte, 8)
		put16(sot[0:], i)              // Isot
		put32(sot[2:], 12+2+len(body)) // Psot: SOT segment + SOD + body
		sot[6] = 0                     // TPsot
		sot[7] = 1                     // TNsot
		out = appendSegment(out, SOT, sot)
		out = appendMarker(out, SOD)
		out = append(out, body...)
	}
	out = appendMarker(out, EOC)
	return out
}

// Decode parses a codestream, returning the header and the first
// tile's packet body (convenience for single-tile streams).
func Decode(data []byte) (*Header, []byte, error) {
	h, bodies, err := DecodeTiles(data)
	if err != nil {
		return nil, nil, err
	}
	return h, bodies[0], nil
}

// DecodeTiles parses a codestream, returning the header and every
// tile's packet body in tile-index order, under DefaultLimits.
func DecodeTiles(data []byte) (*Header, [][]byte, error) {
	return DecodeTilesLimits(data, DefaultLimits())
}

// DecodeTilesLimits is DecodeTiles with caller-supplied header limits,
// enforced as each marker segment is parsed — a hostile SIZ or COD is
// rejected before the header tables it implies are allocated.
func DecodeTilesLimits(data []byte, lim Limits) (*Header, [][]byte, error) {
	rd := &reader{data: data}
	if m, err := rd.marker(); err != nil || m != SOC {
		return nil, nil, fmt.Errorf("codestream: missing SOC (got %#x, err %v)", m, err)
	}
	h := &Header{}
	var bodies [][]byte
	seenSIZ, seenCOD, seenQCD := false, false, false
	for {
		m, err := rd.marker()
		if err != nil {
			return nil, nil, err
		}
		switch m {
		case SIZ:
			p, err := rd.segment()
			if err != nil {
				return nil, nil, err
			}
			if err := parseSIZ(p, h, lim); err != nil {
				return nil, nil, err
			}
			seenSIZ = true
		case COD:
			p, err := rd.segment()
			if err != nil {
				return nil, nil, err
			}
			if err := parseCOD(p, h, lim); err != nil {
				return nil, nil, err
			}
			seenCOD = true
		case QCD:
			p, err := rd.segment()
			if err != nil {
				return nil, nil, err
			}
			if !seenSIZ || !seenCOD {
				return nil, nil, fmt.Errorf("codestream: QCD before SIZ/COD")
			}
			if err := parseQCD(p, h); err != nil {
				return nil, nil, err
			}
			seenQCD = true
		case SOT:
			p, err := rd.segment()
			if err != nil {
				return nil, nil, err
			}
			if len(p) < 8 {
				return nil, nil, fmt.Errorf("codestream: SOT too short")
			}
			psot := int(binary.BigEndian.Uint32(p[2:]))
			if int(binary.BigEndian.Uint16(p[0:])) != len(bodies) {
				return nil, nil, fmt.Errorf("codestream: tile parts out of order")
			}
			if m, err := rd.marker(); err != nil || m != SOD {
				return nil, nil, fmt.Errorf("codestream: missing SOD")
			}
			bodyLen := psot - 12 - 2
			if bodyLen < 0 || rd.pos+bodyLen > len(data) {
				return nil, nil, fmt.Errorf("codestream: tile length %d out of range", psot)
			}
			bodies = append(bodies, data[rd.pos:rd.pos+bodyLen])
			rd.pos += bodyLen
		case EOC:
			if !seenSIZ || !seenCOD || !seenQCD || len(bodies) == 0 {
				return nil, nil, fmt.Errorf("codestream: EOC before required segments")
			}
			return h, bodies, nil
		default:
			return nil, nil, fmt.Errorf("codestream: unexpected marker %#x", m)
		}
	}
}

// parseSIZ validates and loads the geometry fields of a SIZ payload.
func parseSIZ(p []byte, h *Header, lim Limits) error {
	if len(p) < 38 {
		return fmt.Errorf("codestream: SIZ too short")
	}
	h.W = int(binary.BigEndian.Uint32(p[2:]))
	h.H = int(binary.BigEndian.Uint32(p[6:]))
	h.NComp = int(binary.BigEndian.Uint16(p[34:]))
	if h.NComp <= 0 || len(p) < 36+3*h.NComp {
		return fmt.Errorf("codestream: bad SIZ component count")
	}
	if h.W <= 0 || h.H <= 0 || h.W > 1<<26 || h.H > 1<<26 {
		return fmt.Errorf("codestream: implausible image size %dx%d", h.W, h.H)
	}
	h.TileW = int(binary.BigEndian.Uint32(p[18:]))
	h.TileH = int(binary.BigEndian.Uint32(p[22:]))
	if h.TileW <= 0 || h.TileH <= 0 || h.TileW > h.W || h.TileH > h.H {
		return fmt.Errorf("codestream: bad tile size %dx%d", h.TileW, h.TileH)
	}
	h.Depth = int(p[36]) + 1
	if h.Depth < 1 || h.Depth > 16 {
		return fmt.Errorf("codestream: unsupported depth %d", h.Depth)
	}
	return lim.checkSIZ(h)
}

// parseCOD validates and loads the coding-style fields of a COD payload.
func parseCOD(p []byte, h *Header, lim Limits) error {
	if len(p) < 10 {
		return fmt.Errorf("codestream: COD too short")
	}
	h.SOPMarkers = p[0]&0x02 != 0
	h.Progression = int(p[1])
	if h.Progression > 1 {
		return fmt.Errorf("codestream: unsupported progression order %d", h.Progression)
	}
	h.Layers = int(binary.BigEndian.Uint16(p[2:]))
	if h.Layers < 1 || h.Layers > 1024 {
		return fmt.Errorf("codestream: implausible layer count %d", h.Layers)
	}
	h.UseMCT = p[4] == 1
	h.Levels = int(p[5])
	if h.Levels > 32 {
		return fmt.Errorf("codestream: %d decomposition levels out of range", h.Levels)
	}
	if p[6] > 10 || p[7] > 10 {
		return fmt.Errorf("codestream: code block exponent out of range")
	}
	h.CBW = 1 << (int(p[6]) + 2)
	h.CBH = 1 << (int(p[7]) + 2)
	h.TermAll = p[8]&0x04 != 0
	h.SegSym = p[8]&0x20 != 0
	h.HT = p[8]&0x40 != 0
	h.Lossless = p[9] == 1
	return lim.checkCOD(h)
}

// parseQCD validates and loads the quantization fields of a QCD
// payload (requires SIZ and COD already parsed for the table shape).
func parseQCD(p []byte, h *Header) error {
	nb := 3*h.Levels + 1
	if len(p) < 9+h.NComp*nb {
		return fmt.Errorf("codestream: QCD too short")
	}
	h.BaseDelta = math.Float64frombits(binary.BigEndian.Uint64(p[1:]))
	h.Mb = make([][]int, h.NComp)
	for c := 0; c < h.NComp; c++ {
		h.Mb[c] = make([]int, nb)
		for b := 0; b < nb; b++ {
			h.Mb[c][b] = int(p[9+c*nb+b])
		}
	}
	return nil
}

type reader struct {
	data []byte
	pos  int
}

func (r *reader) marker() (int, error) {
	if r.pos+2 > len(r.data) {
		return 0, fmt.Errorf("codestream: truncated at %d", r.pos)
	}
	m := int(r.data[r.pos])<<8 | int(r.data[r.pos+1])
	r.pos += 2
	if m>>8 != 0xFF {
		return 0, fmt.Errorf("codestream: expected marker at %d, got %#x", r.pos-2, m)
	}
	return m, nil
}

func (r *reader) segment() ([]byte, error) {
	if r.pos+2 > len(r.data) {
		return nil, fmt.Errorf("codestream: truncated length at %d", r.pos)
	}
	l := int(binary.BigEndian.Uint16(r.data[r.pos:]))
	if l < 2 || r.pos+l > len(r.data) {
		return nil, fmt.Errorf("codestream: bad segment length %d at %d", l, r.pos)
	}
	p := r.data[r.pos+2 : r.pos+l]
	r.pos += l
	return p, nil
}
