// Package pnm reads and writes binary PGM (P5, grayscale) and PPM
// (P6, RGB) images — the other raster formats JasPer commonly
// transcodes to JPEG2000. 8-bit and 16-bit sample depths are supported.
package pnm

import (
	"bufio"
	"fmt"
	"io"

	"j2kcell/internal/imgmodel"
)

// Decode reads a binary PGM or PPM image.
func Decode(r io.Reader) (*imgmodel.Image, error) {
	br := bufio.NewReader(r)
	magic, err := token(br)
	if err != nil {
		return nil, fmt.Errorf("pnm: reading magic: %w", err)
	}
	var ncomp int
	switch magic {
	case "P5":
		ncomp = 1
	case "P6":
		ncomp = 3
	default:
		return nil, fmt.Errorf("pnm: unsupported magic %q (want P5 or P6)", magic)
	}
	w, err := intToken(br)
	if err != nil {
		return nil, fmt.Errorf("pnm: width: %w", err)
	}
	h, err := intToken(br)
	if err != nil {
		return nil, fmt.Errorf("pnm: height: %w", err)
	}
	maxv, err := intToken(br)
	if err != nil {
		return nil, fmt.Errorf("pnm: maxval: %w", err)
	}
	if w <= 0 || h <= 0 || w > 1<<20 || h > 1<<20 {
		return nil, fmt.Errorf("pnm: invalid dimensions %dx%d", w, h)
	}
	depth := 8
	if maxv > 255 {
		depth = 16
	}
	if maxv <= 0 || maxv > 65535 {
		return nil, fmt.Errorf("pnm: invalid maxval %d", maxv)
	}
	img := imgmodel.NewImage(w, h, ncomp, depth)
	bytesPerSample := depth / 8
	row := make([]byte, w*ncomp*bytesPerSample)
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(br, row); err != nil {
			return nil, fmt.Errorf("pnm: row %d: %w", y, err)
		}
		for x := 0; x < w; x++ {
			for c := 0; c < ncomp; c++ {
				o := (x*ncomp + c) * bytesPerSample
				v := int32(row[o])
				if bytesPerSample == 2 {
					v = v<<8 | int32(row[o+1]) // big-endian per the spec
				}
				img.Comps[c].Set(y, x, v)
			}
		}
	}
	return img, nil
}

// Encode writes img as binary PGM (1 component) or PPM (3 components).
func Encode(w io.Writer, img *imgmodel.Image) error {
	var magic string
	switch len(img.Comps) {
	case 1:
		magic = "P5"
	case 3:
		magic = "P6"
	default:
		return fmt.Errorf("pnm: %d components unsupported (want 1 or 3)", len(img.Comps))
	}
	maxv := int32(1)<<img.Depth - 1
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\n%d %d\n%d\n", magic, img.W, img.H, maxv)
	bytesPerSample := 1
	if img.Depth > 8 {
		bytesPerSample = 2
	}
	ncomp := len(img.Comps)
	row := make([]byte, img.W*ncomp*bytesPerSample)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			for c := 0; c < ncomp; c++ {
				v := img.Comps[c].At(y, x)
				if v < 0 {
					v = 0
				}
				if v > maxv {
					v = maxv
				}
				o := (x*ncomp + c) * bytesPerSample
				if bytesPerSample == 2 {
					row[o] = byte(v >> 8)
					row[o+1] = byte(v)
				} else {
					row[o] = byte(v)
				}
			}
		}
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// token reads the next whitespace-delimited token, skipping '#'
// comments per the PNM specification.
func token(br *bufio.Reader) (string, error) {
	var out []byte
	inComment := false
	for {
		b, err := br.ReadByte()
		if err != nil {
			if len(out) > 0 && err == io.EOF {
				return string(out), nil
			}
			return "", err
		}
		switch {
		case inComment:
			if b == '\n' {
				inComment = false
			}
		case b == '#':
			inComment = true
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(out) > 0 {
				return string(out), nil
			}
		default:
			out = append(out, b)
		}
	}
}

func intToken(br *bufio.Reader) (int, error) {
	s, err := token(br)
	if err != nil {
		return 0, err
	}
	v := 0
	for _, ch := range s {
		if ch < '0' || ch > '9' {
			return 0, fmt.Errorf("pnm: non-numeric token %q", s)
		}
		v = v*10 + int(ch-'0')
		if v > 1<<30 {
			return 0, fmt.Errorf("pnm: value overflow in %q", s)
		}
	}
	return v, nil
}
