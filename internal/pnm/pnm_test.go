package pnm

import (
	"bytes"
	"strings"
	"testing"

	"j2kcell/internal/imgmodel"
	"j2kcell/internal/workload"
)

func TestPPMRoundTrip(t *testing.T) {
	img := workload.Dial(37, 23, 2, 4)
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("PPM round trip not lossless")
	}
}

func TestPGMRoundTrip(t *testing.T) {
	img := imgmodel.NewImage(20, 10, 1, 8)
	rng := workload.NewRNG(3)
	for y := 0; y < 10; y++ {
		row := img.Comps[0].Row(y)
		for x := range row {
			row[x] = int32(rng.Intn(256))
		}
	}
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P5\n") {
		t.Fatalf("header: %q", buf.String()[:10])
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("PGM round trip failed")
	}
}

func TestSixteenBitRoundTrip(t *testing.T) {
	img := imgmodel.NewImage(8, 4, 3, 16)
	rng := workload.NewRNG(9)
	for _, p := range img.Comps {
		for y := 0; y < 4; y++ {
			row := p.Row(y)
			for x := range row {
				row[x] = int32(rng.Intn(65536))
			}
		}
	}
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Depth != 16 || !img.Equal(got) {
		t.Fatal("16-bit round trip failed")
	}
}

func TestDecodeComments(t *testing.T) {
	data := "P5 # magic\n# a comment line\n2 2 # dims\n255\n\x01\x02\x03\x04"
	img, err := Decode(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 2 || img.H != 2 || img.Comps[0].At(1, 1) != 4 {
		t.Fatalf("parsed %dx%d, last=%d", img.W, img.H, img.Comps[0].At(1, 1))
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",
		"P4\n2 2\n255\n",            // bitmap unsupported
		"P6\n-3 2\n255\n",           // non-numeric (minus)
		"P5\n2 2\n0\n",              // bad maxval
		"P5\n2 2\n255\n\x01",        // truncated pixels
		"P5\n999999999999 2\n255\n", // overflow
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestEncodeRejectsTwoComponents(t *testing.T) {
	img := imgmodel.NewImage(2, 2, 2, 8)
	if err := Encode(&bytes.Buffer{}, img); err == nil {
		t.Fatal("2-component image accepted")
	}
}

func TestEncodeClamps(t *testing.T) {
	img := imgmodel.NewImage(2, 1, 1, 8)
	img.Comps[0].Set(0, 0, -5)
	img.Comps[0].Set(0, 1, 300)
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Comps[0].At(0, 0) != 0 || got.Comps[0].At(0, 1) != 255 {
		t.Fatal("clamping failed")
	}
}
