package workload

import "testing"

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(0).Uint32() == 0 {
		t.Fatal("zero seed produced zero state")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float(); f < 0 || f >= 1 {
			t.Fatalf("Float out of range: %v", f)
		}
	}
}

func TestDialDeterministic(t *testing.T) {
	a := Dial(64, 64, 42, 5)
	b := Dial(64, 64, 42, 5)
	if !a.Equal(b) {
		t.Fatal("Dial not deterministic")
	}
	c := Dial(64, 64, 43, 5)
	if a.Equal(c) {
		t.Fatal("different seeds gave identical images")
	}
}

func TestDialGeometry(t *testing.T) {
	img := Dial(100, 60, 1, 0)
	if img.W != 100 || img.H != 60 || len(img.Comps) != 3 || img.Depth != 8 {
		t.Fatalf("geometry: %dx%d, %d comps", img.W, img.H, len(img.Comps))
	}
	for _, p := range img.Comps {
		for y := 0; y < p.H; y++ {
			for _, v := range p.Row(y) {
				if v < 0 || v > 255 {
					t.Fatalf("sample %d out of 8-bit range", v)
				}
			}
		}
	}
}

func TestEntropyOrdering(t *testing.T) {
	// The dial must look statistically like a natural image: more
	// complex than a gradient, simpler than noise.
	const w, h = 256, 256
	eg := Entropy(Gradient(w, h))
	ed := Entropy(Dial(w, h, 42, 5))
	en := Entropy(Noise(w, h, 42))
	if !(eg < ed && ed < en) {
		t.Fatalf("entropy ordering violated: gradient=%.2f dial=%.2f noise=%.2f", eg, ed, en)
	}
	if en < 7.9 {
		t.Fatalf("noise difference entropy %.2f, want >7.9 bits", en)
	}
	if eg > 3 {
		t.Fatalf("gradient difference entropy %.2f, want small", eg)
	}
}

func TestDialHasEdges(t *testing.T) {
	// Tick marks must produce strong horizontal gradients somewhere.
	img := Dial(256, 256, 1, 0)
	p := img.Comps[0]
	maxGrad := int32(0)
	for y := 0; y < p.H; y++ {
		row := p.Row(y)
		for x := 1; x < len(row); x++ {
			g := row[x] - row[x-1]
			if g < 0 {
				g = -g
			}
			if g > maxGrad {
				maxGrad = g
			}
		}
	}
	if maxGrad < 80 {
		t.Fatalf("max gradient %d; dial lacks edges", maxGrad)
	}
}

func TestPaperSizedWorkloadBytes(t *testing.T) {
	// The paper's test file is a 28.3 MB BMP ≈ 3072×3072×3 bytes.
	const w, h = 3072, 3072
	if mb := float64(w*h*3) / 1e6; mb < 27 || mb > 30 {
		t.Fatalf("paper-sized workload is %.1f MB, want ≈28.3", mb)
	}
}
