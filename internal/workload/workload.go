// Package workload generates the deterministic synthetic test images
// used in place of the paper's (unavailable) 28.3 MB waltham_dial.bmp.
// The dial generator produces natural-image statistics: smooth radial
// gradients (low-frequency energy), sharp tick marks and numerals
// (edges that keep Tier-1 significance passes busy), specular
// highlights, and film grain (high-frequency noise that controls how
// compressible the image is).
package workload

import (
	"math"

	"j2kcell/internal/imgmodel"
)

// RNG is a tiny deterministic xorshift32 generator, so workloads are
// bit-identical across platforms and Go releases.
type RNG struct{ s uint32 }

// NewRNG seeds a generator; a zero seed is replaced by a fixed constant.
func NewRNG(seed uint32) *RNG {
	if seed == 0 {
		seed = 0x9e3779b9
	}
	return &RNG{s: seed}
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *RNG) Uint32() uint32 {
	x := r.s
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	r.s = x
	return x
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int { return int(r.Uint32() % uint32(n)) }

// Float returns a value in [0, 1).
func (r *RNG) Float() float64 { return float64(r.Uint32()) / (1 << 32) }

// Dial renders a w×h RGB watch-dial image with grain amplitude
// grain (0 disables noise; 6 approximates consumer-camera ISO noise).
func Dial(w, h int, seed uint32, grain float64) *imgmodel.Image {
	img := imgmodel.NewImage(w, h, 3, 8)
	rng := NewRNG(seed)
	cx, cy := float64(w)/2, float64(h)/2
	rad := math.Min(cx, cy) * 0.95
	for y := 0; y < h; y++ {
		rr := img.Comps[0].Row(y)
		gg := img.Comps[1].Row(y)
		bb := img.Comps[2].Row(y)
		for x := 0; x < w; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			d := math.Hypot(dx, dy)
			ang := math.Atan2(dy, dx)

			// Brushed-metal background: radial gradient + subtle rings.
			base := 205 - 60*d/rad + 8*math.Sin(d*0.18)
			r8, g8, b8 := base, base*0.98, base*0.92

			if d < rad {
				// Dial face: cream with a vignette.
				face := 235 - 35*(d/rad)*(d/rad)
				r8, g8, b8 = face, face*0.97, face*0.88
				// Minute ticks: 60 thin dark wedges near the rim.
				tick := math.Mod(ang/(2*math.Pi)*60+60, 1)
				if d > rad*0.86 && d < rad*0.94 && (tick < 0.04 || tick > 0.96) {
					r8, g8, b8 = 30, 26, 24
				}
				// Hour markers: 12 thick wedges.
				hr := math.Mod(ang/(2*math.Pi)*12+12, 1)
				if d > rad*0.78 && d < rad*0.95 && (hr < 0.015 || hr > 0.985) {
					r8, g8, b8 = 15, 13, 12
				}
				// Hands.
				if wedge(ang, -math.Pi/3, 0.02) && d < rad*0.55 {
					r8, g8, b8 = 20, 18, 40
				}
				if wedge(ang, math.Pi/1.9, 0.015) && d < rad*0.75 {
					r8, g8, b8 = 20, 18, 40
				}
				// Specular highlight.
				hx, hy := dx+rad*0.4, dy+rad*0.4
				hd := math.Hypot(hx, hy)
				if hd < rad*0.5 {
					k := 40 * (1 - hd/(rad*0.5))
					r8, g8, b8 = r8+k, g8+k, b8+k
				}
			}
			if grain > 0 {
				n := (rng.Float() - 0.5) * 2 * grain
				r8 += n
				g8 += n * 0.9
				b8 += n * 1.1
			}
			rr[x] = clamp8(r8)
			gg[x] = clamp8(g8)
			bb[x] = clamp8(b8)
		}
	}
	return img
}

func wedge(ang, at, width float64) bool {
	d := math.Abs(math.Mod(ang-at+3*math.Pi, 2*math.Pi) - math.Pi)
	return d < width*math.Pi
}

func clamp8(v float64) int32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return int32(v + 0.5)
}

// Gradient renders a smooth diagonal ramp — the most compressible
// workload, exercising run-length-dominated Tier-1 cleanup passes.
func Gradient(w, h int) *imgmodel.Image {
	img := imgmodel.NewImage(w, h, 3, 8)
	for y := 0; y < h; y++ {
		for ci, p := range img.Comps {
			row := p.Row(y)
			for x := 0; x < w; x++ {
				row[x] = int32((x + y*(ci+1)) * 255 / (w + h*(ci+1)))
			}
		}
	}
	return img
}

// Noise renders uniform random samples — the least compressible
// workload, the upper bound on Tier-1 work per sample.
func Noise(w, h int, seed uint32) *imgmodel.Image {
	img := imgmodel.NewImage(w, h, 3, 8)
	rng := NewRNG(seed)
	for _, p := range img.Comps {
		for y := 0; y < h; y++ {
			row := p.Row(y)
			for x := range row {
				row[x] = int32(rng.Intn(256))
			}
		}
	}
	return img
}

// Entropy returns the entropy (bits/sample) of the horizontal
// first-difference signal — a standard proxy for how much work a
// wavelet coder faces. Tests use it to check that Dial sits between
// Gradient and Noise, i.e. behaves like a natural image.
func Entropy(img *imgmodel.Image) float64 {
	var hist [512]int64
	var n int64
	for _, p := range img.Comps {
		for y := 0; y < p.H; y++ {
			row := p.Row(y)
			for x := 1; x < len(row); x++ {
				hist[(row[x]-row[x-1])+256]++
				n++
			}
		}
	}
	var e float64
	for _, c := range hist {
		if c == 0 {
			continue
		}
		q := float64(c) / float64(n)
		e -= q * math.Log2(q)
	}
	return e
}
