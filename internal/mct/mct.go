// Package mct implements the JPEG2000 multi-component transforms: the
// DC level shift, the reversible color transform (RCT, lossless path)
// and the irreversible color transform (ICT, lossy path). The paper
// merges the level shift with the component transform into one pass to
// halve data movement (Section 3.2); the row kernels here are those
// merged forms, usable both by the sequential codec and, row at a time,
// by the SPE kernels.
package mct

import "j2kcell/internal/simd"

// LevelShiftRow subtracts 2^(depth-1) from every sample (forward shift
// for unsigned input).
func LevelShiftRow(row []int32, depth int) {
	off := int32(1) << (depth - 1)
	simd.AddConstRow(row, -off)
}

// UnshiftRow adds 2^(depth-1) back to every sample.
func UnshiftRow(row []int32, depth int) {
	off := int32(1) << (depth - 1)
	simd.AddConstRow(row, off)
}

// ForwardRCTRow applies the merged level shift + reversible color
// transform in place: (R,G,B) rows become (Y, Cb, Cr) with
//
//	Y  = floor((R' + 2G' + B') / 4),  Cb = B' - G',  Cr = R' - G'
//
// where X' = X - 2^(depth-1).
func ForwardRCTRow(r, g, b []int32, depth int) {
	off := int32(1) << (depth - 1)
	simd.ForwardRCTRow(r, g, b, off)
}

// InverseRCTRow undoes ForwardRCTRow in place, including the level
// unshift. It is exactly lossless for any int32 inputs that do not
// overflow.
func InverseRCTRow(y, cb, cr []int32, depth int) {
	off := int32(1) << (depth - 1)
	simd.InverseRCTRow(y, cb, cr, off)
}

// ICT coefficients from ITU-T T.800 (identical to the ITU-R BT.601
// luma/chroma weights).
const (
	ictYR, ictYG, ictYB = 0.299, 0.587, 0.114
	ictCbR              = -0.168736
	ictCbG              = -0.331264
	ictCbB              = 0.5
	ictCrR              = 0.5
	ictCrG              = -0.418688
	ictCrB              = -0.081312
)

// ForwardICTRow applies the merged level shift + irreversible color
// transform, reading integer (R,G,B) rows and writing float (Y,Cb,Cr).
func ForwardICTRow(r, g, b []int32, y, cb, cr []float32, depth int) {
	p := simd.ICTParams{
		Off: float32(int32(1) << (depth - 1)),
		YR:  ictYR, YG: ictYG, YB: ictYB,
		CbR: ictCbR, CbG: ictCbG, CbB: ictCbB,
		CrR: ictCrR, CrG: ictCrG, CrB: ictCrB,
	}
	simd.ForwardICTRow(r, g, b, y, cb, cr, &p)
}

// InverseICTRow undoes ForwardICTRow, rounding to the nearest integer
// (halves away from zero) and re-applying the level shift.
func InverseICTRow(y, cb, cr []float32, r, g, b []int32, depth int) {
	p := simd.ICTInvParams{
		Off: float32(int32(1) << (depth - 1)),
		RCr: 1.402,
		GCb: 0.344136, GCr: 0.714136,
		BCb: 1.772,
	}
	simd.InverseICTRow(y, cb, cr, r, g, b, &p)
}

// RoundShiftRow is the single-component inverse of the level shift on
// the float path: dst[i] = round(src[i] + 2^(depth-1)), halves away
// from zero.
func RoundShiftRow(src []float32, dst []int32, depth int) {
	off := float32(int32(1) << (depth - 1))
	simd.RoundAddRow(dst, src, off)
}

// ClampRow clamps a reconstructed row into [0, 2^depth - 1] in place.
func ClampRow(row []int32, depth int) {
	simd.ClampRow(row, int32(1)<<depth-1)
}
