package mct

// Row-stripe entry points for the stage-based native pipeline. The
// component transforms are strictly per-pixel, so row ranges are
// independent: disjoint stripes may run concurrently and any stripe
// split is bit-identical to the full-plane sweep. Planes are passed as
// backing slices with their row strides so these work on imgmodel
// planes and on decomp arrays alike.

// ForwardRCTRows applies the merged level shift + reversible color
// transform in place to rows [y0, y1) of three equal-stride planes.
func ForwardRCTRows(r, g, b []int32, w, stride, y0, y1, depth int) {
	for y := y0; y < y1; y++ {
		off := y * stride
		ForwardRCTRow(r[off:off+w], g[off:off+w], b[off:off+w], depth)
	}
}

// LevelShiftRows applies the forward DC level shift in place to rows
// [y0, y1) of a plane.
func LevelShiftRows(p []int32, w, stride, y0, y1, depth int) {
	for y := y0; y < y1; y++ {
		off := y * stride
		LevelShiftRow(p[off:off+w], depth)
	}
}

// ForwardICTRows applies the merged level shift + irreversible color
// transform to rows [y0, y1), reading integer planes (stride sstride)
// and writing float planes (stride dstride).
func ForwardICTRows(r, g, b []int32, y, cb, cr []float32, w, sstride, dstride, y0, y1, depth int) {
	for row := y0; row < y1; row++ {
		so, do := row*sstride, row*dstride
		ForwardICTRow(r[so:so+w], g[so:so+w], b[so:so+w],
			y[do:do+w], cb[do:do+w], cr[do:do+w], depth)
	}
}

// ShiftToFloatRows applies the level shift while widening to float for
// rows [y0, y1) — the single-component entry to the irreversible path.
func ShiftToFloatRows(src []int32, dst []float32, w, sstride, dstride, y0, y1, depth int) {
	off := float32(int32(1) << (depth - 1))
	for row := y0; row < y1; row++ {
		s := src[row*sstride : row*sstride+w]
		d := dst[row*dstride : row*dstride+w]
		for i := range s {
			d[i] = float32(s[i]) - off
		}
	}
}

// InverseRCTRows undoes the reversible color transform (including the
// level unshift) in place on rows [y0, y1) of three equal-stride
// planes.
func InverseRCTRows(y, cb, cr []int32, w, stride, y0, y1, depth int) {
	for row := y0; row < y1; row++ {
		off := row * stride
		InverseRCTRow(y[off:off+w], cb[off:off+w], cr[off:off+w], depth)
	}
}

// UnshiftRows re-applies the DC level shift in place to rows [y0, y1)
// of a plane.
func UnshiftRows(p []int32, w, stride, y0, y1, depth int) {
	for y := y0; y < y1; y++ {
		off := y * stride
		UnshiftRow(p[off:off+w], depth)
	}
}

// InverseICTRows undoes the irreversible color transform for rows
// [y0, y1), reading float planes (stride sstride) and writing rounded
// integer planes (stride dstride).
func InverseICTRows(y, cb, cr []float32, r, g, b []int32, w, sstride, dstride, y0, y1, depth int) {
	for row := y0; row < y1; row++ {
		so, do := row*sstride, row*dstride
		InverseICTRow(y[so:so+w], cb[so:so+w], cr[so:so+w],
			r[do:do+w], g[do:do+w], b[do:do+w], depth)
	}
}

// RoundShiftRows is the single-component inverse of ShiftToFloatRows:
// unshift while rounding back to integers for rows [y0, y1).
func RoundShiftRows(src []float32, dst []int32, w, sstride, dstride, y0, y1, depth int) {
	for row := y0; row < y1; row++ {
		RoundShiftRow(src[row*sstride:row*sstride+w], dst[row*dstride:row*dstride+w], depth)
	}
}

// ClampRows clamps rows [y0, y1) of a reconstructed plane into
// [0, 2^depth - 1] in place.
func ClampRows(p []int32, w, stride, y0, y1, depth int) {
	for y := y0; y < y1; y++ {
		off := y * stride
		ClampRow(p[off:off+w], depth)
	}
}
