package mct

import (
	"testing"
	"testing/quick"
)

func TestLevelShiftRoundTrip(t *testing.T) {
	row := []int32{0, 1, 127, 128, 255}
	want := append([]int32(nil), row...)
	LevelShiftRow(row, 8)
	if row[0] != -128 || row[4] != 127 {
		t.Fatalf("shifted row %v", row)
	}
	UnshiftRow(row, 8)
	for i := range row {
		if row[i] != want[i] {
			t.Fatalf("round trip failed: %v", row)
		}
	}
}

func TestRCTKnownValues(t *testing.T) {
	// Gray pixels: Y = value - 128, Cb = Cr = 0.
	r := []int32{128, 0, 255}
	g := []int32{128, 0, 255}
	b := []int32{128, 0, 255}
	ForwardRCTRow(r, g, b, 8)
	wantY := []int32{0, -128, 127}
	for i := range r {
		if r[i] != wantY[i] || g[i] != 0 || b[i] != 0 {
			t.Fatalf("gray pixel %d: Y=%d Cb=%d Cr=%d", i, r[i], g[i], b[i])
		}
	}
}

func TestRCTLossless(t *testing.T) {
	f := func(pix [][3]uint8) bool {
		if len(pix) == 0 {
			return true
		}
		r := make([]int32, len(pix))
		g := make([]int32, len(pix))
		b := make([]int32, len(pix))
		for i, p := range pix {
			r[i], g[i], b[i] = int32(p[0]), int32(p[1]), int32(p[2])
		}
		wr := append([]int32(nil), r...)
		wg := append([]int32(nil), g...)
		wb := append([]int32(nil), b...)
		ForwardRCTRow(r, g, b, 8)
		InverseRCTRow(r, g, b, 8)
		for i := range pix {
			if r[i] != wr[i] || g[i] != wg[i] || b[i] != wb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRCTDynamicRange(t *testing.T) {
	// Chroma of the RCT must stay within depth+1 bits.
	extremes := [][3]int32{{0, 255, 0}, {255, 0, 255}, {0, 0, 255}, {255, 255, 0}}
	for _, e := range extremes {
		r, g, b := []int32{e[0]}, []int32{e[1]}, []int32{e[2]}
		ForwardRCTRow(r, g, b, 8)
		for _, v := range []int32{g[0], b[0]} {
			if v < -256 || v > 255 {
				t.Fatalf("chroma %d out of 9-bit range for %v", v, e)
			}
		}
		if r[0] < -128 || r[0] > 127 {
			t.Fatalf("luma %d out of range for %v", r[0], e)
		}
	}
}

func TestICTGrayHasZeroChroma(t *testing.T) {
	r := []int32{200}
	g := []int32{200}
	b := []int32{200}
	y, cb, cr := make([]float32, 1), make([]float32, 1), make([]float32, 1)
	ForwardICTRow(r, g, b, y, cb, cr, 8)
	if y[0] != 72 { // 200-128, weights sum to 1
		t.Errorf("gray luma %v, want 72", y[0])
	}
	if abs32(cb[0]) > 1e-4 || abs32(cr[0]) > 1e-4 {
		t.Errorf("gray chroma not ~0: %v %v", cb[0], cr[0])
	}
}

func TestICTNearLossless(t *testing.T) {
	f := func(pix [][3]uint8) bool {
		if len(pix) == 0 {
			return true
		}
		r := make([]int32, len(pix))
		g := make([]int32, len(pix))
		b := make([]int32, len(pix))
		for i, p := range pix {
			r[i], g[i], b[i] = int32(p[0]), int32(p[1]), int32(p[2])
		}
		y := make([]float32, len(pix))
		cb := make([]float32, len(pix))
		cr := make([]float32, len(pix))
		ForwardICTRow(r, g, b, y, cb, cr, 8)
		or := make([]int32, len(pix))
		og := make([]int32, len(pix))
		ob := make([]int32, len(pix))
		InverseICTRow(y, cb, cr, or, og, ob, 8)
		for i, p := range pix {
			if d := or[i] - int32(p[0]); d < -1 || d > 1 {
				return false
			}
			if d := og[i] - int32(p[1]); d < -1 || d > 1 {
				return false
			}
			if d := ob[i] - int32(p[2]); d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestICTWeightsSumToOne(t *testing.T) {
	if s := ictYR + ictYG + ictYB; abs64(s-1) > 1e-9 {
		t.Errorf("luma weights sum %v", s)
	}
	if s := ictCbR + ictCbG + ictCbB; abs64(s) > 1e-6 {
		t.Errorf("Cb weights sum %v", s)
	}
	if s := ictCrR + ictCrG + ictCrB; abs64(s) > 1e-6 {
		t.Errorf("Cr weights sum %v", s)
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
