// Package cell models the Sony–Toshiba–IBM Cell Broadband Engine in
// virtual time on top of the sim engine.
//
// The model captures the architectural properties the paper's
// optimizations depend on:
//
//   - one PPE and eight SPEs per chip at 3.2 GHz (an IBM QS20 blade has
//     two chips: 16 SPEs, 2 PPE threads usable for Tier-1);
//   - each SPE owns a 256 KB Local Store; all main-memory traffic goes
//     through explicit MFC DMA commands with strict alignment and size
//     rules and a 16-entry command queue;
//   - off-chip XDR memory bandwidth of 25.6 GB/s per chip (8 bytes per
//     cycle at 3.2 GHz), shared by all processing elements — the
//     resource the paper's loop interleaving exists to conserve;
//   - DMA transfers are most efficient when cache-line (128 B) aligned
//     with a size that is a multiple of the line: memory always moves
//     whole lines, so a misaligned transfer pays for the extra lines it
//     straddles.
//
// Computation executes as ordinary Go code for bit-exact results, while
// the time it would have taken on the SPE or PPE is charged through the
// cost model (costmodel.go).
package cell

import (
	"fmt"

	"j2kcell/internal/sim"
)

// Architectural constants of the Cell/B.E.
const (
	CacheLine   = 128       // bytes; PPE cache line and optimal DMA granule
	LSSize      = 256 << 10 // bytes of SPE Local Store
	MFCQueueLen = 16        // outstanding DMA commands per SPE
	MaxDMABytes = 16 << 10  // largest single MFC transfer
	ClockHz     = 3.2e9     // chip clock
	ChipMemBW   = 25.6e9    // bytes/s of XDR memory per chip
	BytesPerCyc = ChipMemBW / ClockHz
	SPEsPerChip = 8
	PPEsPerChip = 1
)

// Config selects the machine being simulated.
type Config struct {
	Chips      int // 1 = single Cell/B.E., 2 = IBM QS20 blade
	SPEs       int // SPE threads in use (<= 8*Chips)
	PPEThreads int // PPE threads participating in compute (<= Chips)

	// DMALatency is the cycles between a DMA leaving the memory
	// interface and its completion being visible to the SPE (command
	// issue to coherence). ~300 cycles is representative for main
	// memory on the Cell (Kistler et al., IEEE Micro 2006).
	DMALatency sim.Time
	// DMAIssue is the SPE-side cost of writing the MFC command
	// registers and tag bookkeeping for one command.
	DMAIssue sim.Time
	// NUMA models each chip's XDR memory as a separate resource with
	// cache lines interleaved across chips; accesses to the remote
	// chip's memory cross the inter-chip BIF link and pay RemoteExtra
	// additional latency. Off (the default) aggregates bandwidth, the
	// approximation used for the paper's figures.
	NUMA bool
	// RemoteExtra is the added latency for a remote-chip line (cycles).
	RemoteExtra sim.Time
}

// DefaultConfig returns a single-chip machine with n SPEs and one PPE.
func DefaultConfig(nSPE int) Config {
	chips := 1
	if nSPE > SPEsPerChip {
		chips = (nSPE + SPEsPerChip - 1) / SPEsPerChip
	}
	return Config{
		Chips:      chips,
		SPEs:       nSPE,
		PPEThreads: 1,
		DMALatency: 300,
		DMAIssue:   16,
	}
}

// QS20Config returns the dual-chip blade used in the paper's Section 5.
func QS20Config(nSPE, nPPE int) Config {
	c := DefaultConfig(nSPE)
	c.Chips = 2
	c.PPEThreads = nPPE
	return c
}

func (c Config) validate() error {
	if c.Chips < 1 || c.Chips > 4 {
		return fmt.Errorf("cell: %d chips unsupported", c.Chips)
	}
	if c.SPEs < 0 || c.SPEs > c.Chips*SPEsPerChip {
		return fmt.Errorf("cell: %d SPEs exceed %d chips", c.SPEs, c.Chips)
	}
	if c.PPEThreads < 0 || c.PPEThreads > c.Chips*2 {
		return fmt.Errorf("cell: %d PPE threads exceed %d chips", c.PPEThreads, c.Chips)
	}
	return nil
}

// Machine is one simulated Cell system: engine, memory, PPE and SPEs.
type Machine struct {
	Cfg  Config
	Eng  *sim.Engine
	Mem  *sim.Resource   // aggregated off-chip memory interface (non-NUMA)
	Mems []*sim.Resource // per-chip memories (NUMA mode)
	SPEs []*SPE
	PPEs []*PPE

	// Trace, when non-nil, records per-PE busy spans for timeline
	// rendering. Attach before Run.
	Trace *Trace

	eaBrk int64 // main-memory effective-address bump allocator
}

// NewMachine builds a machine for cfg with a fresh simulation engine.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		Cfg: cfg,
		Eng: sim.NewEngine(),
		Mem: &sim.Resource{
			Name:          "xdr",
			BytesPerCycle: BytesPerCyc * float64(cfg.Chips),
			Latency:       cfg.DMALatency,
		},
		eaBrk: 0x10000, // leave low addresses unused, like a real process
	}
	if cfg.NUMA {
		if cfg.RemoteExtra == 0 {
			cfg.RemoteExtra = 100 // BIF hop + remote controller queueing
			m.Cfg = cfg
		}
		for i := 0; i < cfg.Chips; i++ {
			m.Mems = append(m.Mems, &sim.Resource{
				Name:          fmt.Sprintf("xdr%d", i),
				BytesPerCycle: BytesPerCyc,
				Latency:       cfg.DMALatency,
			})
		}
	}
	for i := 0; i < cfg.SPEs; i++ {
		m.SPEs = append(m.SPEs, &SPE{ID: i, M: m, LS: NewLocalStore()})
	}
	for i := 0; i < cfg.PPEThreads; i++ {
		m.PPEs = append(m.PPEs, &PPE{ID: i, M: m})
	}
	return m, nil
}

// MustMachine is NewMachine for known-good configs (tests, benchmarks).
func MustMachine(cfg Config) *Machine {
	m, err := NewMachine(cfg)
	// invariant: Must-style helper for hard-coded configs; external
	// configuration goes through NewMachine's error return instead.
	if err != nil {
		panic(err)
	}
	return m
}

// AllocEA reserves bytes of main-memory address space aligned to align
// and returns the effective address. The simulator only tracks
// addresses; backing storage lives in ordinary Go slices.
func (m *Machine) AllocEA(bytes int64, align int64) int64 {
	if align <= 0 {
		align = 1
	}
	ea := (m.eaBrk + align - 1) &^ (align - 1)
	m.eaBrk = ea + bytes
	return ea
}

// Run executes the simulation to completion and returns the final time.
func (m *Machine) Run() sim.Time { return m.Eng.Run() }

// Seconds converts a virtual cycle count to wall seconds at chip clock.
func Seconds(t sim.Time) float64 { return float64(t) / ClockHz }

// PPE is one PowerPC Processing Element thread. The PPE accesses main
// memory through its cache hierarchy: the model charges compute cycles
// directly and streams the kernel's memory footprint through the shared
// memory interface without per-access blocking (hardware prefetch).
type PPE struct {
	ID int
	M  *Machine

	ComputeCycles sim.Time // accounting
	BytesTouched  int64
}

// Compute charges c cycles of PPE execution time.
func (pe *PPE) Compute(p *sim.Proc, c sim.Time) {
	pe.ComputeCycles += c
	pe.M.Trace.add(fmt.Sprintf("ppe%d", pe.ID), p.Now(), p.Now()+c)
	p.Delay(c)
}

// Touch accounts for the PPE kernel streaming n bytes through the
// memory interface. The traffic occupies bandwidth (contending with SPE
// DMA) but the PPE does not stall on it: with hardware prefetch the
// model folds average miss latency into the kernels' per-element costs.
func (pe *PPE) Touch(p *sim.Proc, n int64) {
	if n <= 0 {
		return
	}
	pe.BytesTouched += n
	lines := (n + CacheLine - 1) / CacheLine
	if pe.M.Mems != nil {
		// NUMA: line-interleaved pages spread a streaming walk evenly.
		per := lines * CacheLine / int64(len(pe.M.Mems))
		for _, r := range pe.M.Mems {
			p.TransferAsync(r, per)
		}
		return
	}
	p.TransferAsync(pe.M.Mem, lines*CacheLine)
}

// LocalStore tracks allocation of the 256 KB SPE Local Store. Buffers
// are handed out by a 16-byte-aligned bump allocator; exceeding the
// capacity is a hard error, exactly as running out of Local Store is on
// hardware. Backing data lives in Go slices of 4-byte words, matching
// the codec's data types after the initial conversion stage.
type LocalStore struct {
	used     int
	highUsed int
}

// NewLocalStore returns an empty Local Store.
func NewLocalStore() *LocalStore { return &LocalStore{} }

// alloc reserves n bytes, 16-byte aligned, and returns the LS address.
func (ls *LocalStore) alloc(n int) int64 {
	off := (ls.used + 15) &^ 15
	// invariant: buffer budgets are sized by the decomposition planner to
	// fit the 256 KB LS; overflow means the planner's math is wrong — the
	// same hard fault real SPE code would take.
	if off+n > LSSize {
		panic(fmt.Sprintf("cell: Local Store overflow: %d used, %d requested (capacity %d)", off, n, LSSize))
	}
	ls.used = off + n
	if ls.used > ls.highUsed {
		ls.highUsed = ls.used
	}
	return int64(off)
}

// AllocI32 reserves an n-word int32 buffer and returns it with its LSA.
func (ls *LocalStore) AllocI32(n int) ([]int32, int64) {
	lsa := ls.alloc(4 * n)
	return make([]int32, n), lsa
}

// AllocF32 reserves an n-word float32 buffer and returns it with its LSA.
func (ls *LocalStore) AllocF32(n int) ([]float32, int64) {
	lsa := ls.alloc(4 * n)
	return make([]float32, n), lsa
}

// Used reports the bytes currently allocated.
func (ls *LocalStore) Used() int { return ls.used }

// HighWater reports the maximum bytes ever allocated.
func (ls *LocalStore) HighWater() int { return ls.highUsed }

// Reset frees all buffers (stage boundaries re-partition the LS).
func (ls *LocalStore) Reset() { ls.used = 0 }

// SPE is one Synergistic Processing Element with its Local Store and
// Memory Flow Controller command queue.
type SPE struct {
	ID int
	M  *Machine
	LS *LocalStore

	pending []*sim.Completion // outstanding MFC commands, oldest first

	ComputeCycles sim.Time
	DMABytes      int64 // payload bytes requested
	DMALineBytes  int64 // bytes actually moved (whole cache lines)
	DMACmds       int64
}

// Chip returns the chip index this SPE belongs to.
func (s *SPE) Chip() int { return s.ID / SPEsPerChip }

// Compute charges c cycles of SPE execution time.
func (s *SPE) Compute(p *sim.Proc, c sim.Time) {
	s.ComputeCycles += c
	s.M.Trace.add(fmt.Sprintf("spe%d", s.ID), p.Now(), p.Now()+c)
	p.Delay(c)
}
