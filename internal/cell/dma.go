package cell

import (
	"fmt"

	"j2kcell/internal/sim"
)

// Word is the set of 4-byte element types the codec stores in main
// memory and Local Store after the initial conversion stage.
type Word interface {
	~int32 | ~uint32 | ~float32
}

// AllocLS reserves an n-word buffer of any 4-byte word type in the
// Local Store and returns it with its LS address (generic counterpart
// of LocalStore.AllocI32/AllocF32).
func AllocLS[T Word](ls *LocalStore, n int) ([]T, int64) {
	lsa := ls.alloc(4 * n)
	return make([]T, n), lsa
}

// checkAlign enforces the MFC transfer rules described in the paper's
// Section 2: 1, 2, 4 and 8-byte transfers require natural alignment of
// both the effective address and the Local Store address; anything
// larger must be a multiple of 16 bytes with 16-byte-aligned addresses;
// and one command moves at most 16 KB.
func checkAlign(ea, lsa int64, bytes int64) error {
	switch bytes {
	case 0:
		return nil
	case 1, 2, 4, 8:
		if ea%bytes != 0 || lsa%bytes != 0 {
			return fmt.Errorf("cell: %d-byte DMA requires %d-byte alignment (ea=%#x lsa=%#x)", bytes, bytes, ea, lsa)
		}
		return nil
	default:
		if bytes%16 != 0 {
			return fmt.Errorf("cell: DMA size %d is not 1/2/4/8 or a multiple of 16", bytes)
		}
		if ea%16 != 0 || lsa%16 != 0 {
			return fmt.Errorf("cell: DMA of %d bytes requires 16-byte alignment (ea=%#x lsa=%#x)", bytes, ea, lsa)
		}
		if bytes > MaxDMABytes {
			return fmt.Errorf("cell: DMA size %d exceeds the %d-byte MFC limit", bytes, MaxDMABytes)
		}
		return nil
	}
}

// linesSpanned counts the 128-byte cache lines a transfer touches in
// main memory. Memory moves whole lines, so a transfer that is not
// line-aligned or not a line multiple pays for the lines it straddles —
// this is the mechanism that makes the paper's decomposition scheme
// "most efficient" and the Muta tile overlap wasteful.
func linesSpanned(ea, bytes int64) int64 {
	if bytes == 0 {
		return 0
	}
	first := ea / CacheLine
	last := (ea + bytes - 1) / CacheLine
	return last - first + 1
}

// issue reserves an MFC queue slot, blocking on the oldest outstanding
// command when all 16 are in flight, then charges the issue cost.
func (s *SPE) issue(p *sim.Proc) {
	// Drop completed commands from the head.
	for len(s.pending) > 0 && s.pending[0].Done() {
		s.pending = s.pending[1:]
	}
	if len(s.pending) >= MFCQueueLen {
		p.WaitFor(s.pending[0])
		s.pending = s.pending[1:]
	}
	s.Compute(p, s.M.Cfg.DMAIssue)
}

// dma schedules one validated MFC command of `bytes` payload at ea/lsa
// and returns its completion. deliver (may be nil) runs at completion —
// Get uses it to copy data into the Local Store buffer at arrival time
// so that a kernel reading a buffer before waiting on its tag sees
// stale data, just as on hardware.
func (s *SPE) dma(p *sim.Proc, ea, lsa, bytes int64, deliver func()) *sim.Completion {
	// invariant: DMA addresses come from the library's own allocators
	// (AllocEA, LocalStore.alloc), which align everything; a misaligned
	// command is a kernel-code bug the model surfaces like hardware would.
	if err := checkAlign(ea, lsa, bytes); err != nil {
		panic(err)
	}
	s.issue(p)
	lineBytes := linesSpanned(ea, bytes) * CacheLine
	s.DMABytes += bytes
	s.DMALineBytes += lineBytes
	s.DMACmds++
	var c *sim.Completion
	if s.M.Mems != nil {
		// NUMA: a command is served by the chip owning its first line
		// (pages are line-interleaved, so a streaming workload spreads
		// evenly); a remote command crosses the BIF and pays extra
		// latency on top of the home memory's pipeline.
		chips := int64(len(s.M.Mems))
		home := int((ea / CacheLine) % chips)
		c = p.TransferAsync(s.M.Mems[home], lineBytes)
		if home != s.Chip() {
			eng := p.Engine()
			remote := &sim.Completion{}
			extra := s.M.Cfg.RemoteExtra
			eng.WhenDone(c, func() { eng.CompleteAt(remote, eng.Now()+extra) })
			c = remote
		}
	} else {
		c = p.TransferAsync(s.M.Mem, lineBytes)
	}
	if deliver != nil {
		p.Engine().WhenDone(c, deliver)
	}
	s.pending = append(s.pending, c)
	return c
}

// GetAsync starts a DMA from main memory (src, starting at effective
// address srcEA) into the Local Store buffer dst (at address dstLSA).
// The data lands in dst when the command completes; wait on the returned
// completion before reading. Transfers larger than the 16 KB MFC limit
// are split into multiple commands, as real SPE code must do; the
// returned completion is the last command's.
func GetAsync[T Word](p *sim.Proc, s *SPE, dst []T, dstLSA int64, src []T, srcEA int64) *sim.Completion {
	// invariant: both slices are carved from geometry computed by the
	// decomposition planner; a mismatch is a kernel bug, not input.
	if len(dst) != len(src) {
		panic(fmt.Sprintf("cell: GetAsync length mismatch: dst %d, src %d", len(dst), len(src)))
	}
	total := int64(len(src)) * 4
	var c *sim.Completion
	for off := int64(0); off < total || c == nil; {
		n := total - off
		if n > MaxDMABytes {
			n = MaxDMABytes
		}
		d := dst[off/4 : (off+n)/4]
		sc := src[off/4 : (off+n)/4]
		c = s.dma(p, srcEA+off, dstLSA+off, n, func() { copy(d, sc) })
		off += n
		if total == 0 {
			break
		}
	}
	return c
}

// PutAsync starts a DMA from the Local Store buffer src (at srcLSA) to
// main memory dst (at dstEA). The model captures the source buffer's
// contents at issue time; well-formed SPE code must not overwrite a
// buffer with an outstanding put anyway, and the double-buffered kernels
// in this library wait on the tag before reuse.
func PutAsync[T Word](p *sim.Proc, s *SPE, dst []T, dstEA int64, src []T, srcLSA int64) *sim.Completion {
	// invariant: same planner-derived geometry contract as GetAsync.
	if len(dst) != len(src) {
		panic(fmt.Sprintf("cell: PutAsync length mismatch: dst %d, src %d", len(dst), len(src)))
	}
	copy(dst, src)
	total := int64(len(src)) * 4
	var c *sim.Completion
	for off := int64(0); off < total || c == nil; {
		n := total - off
		if n > MaxDMABytes {
			n = MaxDMABytes
		}
		c = s.dma(p, dstEA+off, srcLSA+off, n, nil)
		off += n
		if total == 0 {
			break
		}
	}
	return c
}

// Get is a blocking GetAsync.
func Get[T Word](p *sim.Proc, s *SPE, dst []T, dstLSA int64, src []T, srcEA int64) {
	p.WaitFor(GetAsync(p, s, dst, dstLSA, src, srcEA))
}

// Put is a blocking PutAsync.
func Put[T Word](p *sim.Proc, s *SPE, dst []T, dstEA int64, src []T, srcLSA int64) {
	p.WaitFor(PutAsync(p, s, dst, dstEA, src, srcLSA))
}

// WaitAll drains every outstanding MFC command (mfc_write_tag_mask +
// mfc_read_tag_status_all over all tags).
func (s *SPE) WaitAll(p *sim.Proc) {
	for _, c := range s.pending {
		p.WaitFor(c)
	}
	s.pending = s.pending[:0]
}
