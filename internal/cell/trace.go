package cell

import "j2kcell/internal/sim"

// Span is one contiguous busy interval of a processing element.
type Span struct {
	PE    string
	Phase string
	Start sim.Time
	End   sim.Time
}

// Trace records per-PE busy spans when attached to a Machine —
// the raw material for utilization timelines (harness.RenderTimeline).
type Trace struct {
	Spans []Span
	phase string
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// SetPhase labels subsequently recorded spans (the pipeline stage).
func (t *Trace) SetPhase(name string) {
	if t != nil {
		t.phase = name
	}
}

// Phase returns the current label.
func (t *Trace) Phase() string { return t.phase }

func (t *Trace) add(pe string, start, end sim.Time) {
	if t == nil || end <= start {
		return
	}
	// Merge with the previous span when contiguous and same phase — the
	// common case for tight kernel loops, keeping traces compact.
	if n := len(t.Spans); n > 0 {
		last := &t.Spans[n-1]
		if last.PE == pe && last.Phase == t.phase && last.End == start {
			last.End = end
			return
		}
	}
	t.Spans = append(t.Spans, Span{PE: pe, Phase: t.phase, Start: start, End: end})
}

// BusyInWindow sums the busy time of pe within [a, b).
func (t *Trace) BusyInWindow(pe string, a, b sim.Time) sim.Time {
	var busy sim.Time
	for _, s := range t.Spans {
		if s.PE != pe || s.End <= a || s.Start >= b {
			continue
		}
		lo, hi := s.Start, s.End
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		busy += hi - lo
	}
	return busy
}
