package cell

import (
	"j2kcell/internal/obs"
	"j2kcell/internal/sim"
)

// Span is one contiguous busy interval of a processing element.
type Span struct {
	PE    string
	Phase string
	Start sim.Time
	End   sim.Time
}

// Trace records per-PE busy spans when attached to a Machine —
// the raw material for utilization timelines (harness.RenderTimeline).
type Trace struct {
	Spans []Span
	phase string
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// SetPhase labels subsequently recorded spans (the pipeline stage).
func (t *Trace) SetPhase(name string) {
	if t != nil {
		t.phase = name
	}
}

// Phase returns the current label.
func (t *Trace) Phase() string { return t.phase }

func (t *Trace) add(pe string, start, end sim.Time) {
	if t == nil || end <= start {
		return
	}
	// Merge with the previous span when contiguous and same phase — the
	// common case for tight kernel loops, keeping traces compact.
	if n := len(t.Spans); n > 0 {
		last := &t.Spans[n-1]
		if last.PE == pe && last.Phase == t.phase && last.End == start {
			last.End = end
			return
		}
	}
	t.Spans = append(t.Spans, Span{PE: pe, Phase: t.phase, Start: start, End: end})
}

// TSpans converts the trace to the shared timeline span type: one
// track per PE, spans named by phase, timestamps in model cycles.
// Busy-window math (obs.BusyInWindow) and the harness renderer are
// unit-agnostic; scale by 1e9/ClockHz for wall-clock exports
// (see TSpansNS).
func (t *Trace) TSpans() []obs.TSpan {
	if t == nil {
		return nil
	}
	out := make([]obs.TSpan, len(t.Spans))
	for i, s := range t.Spans {
		out[i] = obs.TSpan{
			Track: s.PE, Name: s.Phase, Stage: obs.StageExtern,
			Start: int64(s.Start), End: int64(s.End),
		}
	}
	return out
}

// TSpansNS converts the trace with cycle timestamps rescaled to
// modeled nanoseconds — the unit the Chrome exporter expects.
func (t *Trace) TSpansNS() []obs.TSpan {
	out := t.TSpans()
	for i := range out {
		out[i].Start = int64(Seconds(sim.Time(out[i].Start)) * 1e9)
		out[i].End = int64(Seconds(sim.Time(out[i].End)) * 1e9)
	}
	return out
}
