package cell

import "j2kcell/internal/sim"

// SPE instruction latencies from Table 1 of the paper, plus the even-
// pipeline shift latency needed to price the fixed-point emulation.
const (
	LatMpyh = 7 // two-byte integer multiply high
	LatMpyu = 7 // two-byte integer multiply unsigned
	LatA    = 2 // add word
	LatFm   = 6 // single-precision floating-point multiply
	LatShl  = 4 // shift left word (even pipeline, like rotate)
)

// VectorLanes is the SPE SIMD width for 4-byte elements (128-bit regs).
const VectorLanes = 4

// FixedMul32Instrs is the instruction count to emulate a 32-bit integer
// multiply on the SPE, which has only 16-bit multipliers: the classic
// sequence is mpyh(a,b) + mpyh(b,a) + mpyu(a,b) summed with two adds.
const FixedMul32Instrs = 5

// FixedMul32Latency is the dependent-chain latency of that emulation
// as the in-order SPU actually schedules it (internal/spu derives the
// same number): the second mpyh issues one even-pipe cycle after the
// first (completing at 1+7), then the two dependent adds chain.
const FixedMul32Latency = 1 + LatMpyh + 2*LatA // 12 cycles; see spu.Mul32Kernel

// FloatMul32Latency is one fm instruction.
const FloatMul32Latency = LatFm // 6 cycles

// Per-kernel cost constants, in cycles per processed element, for the
// SPE (vectorized over 4 lanes) and the PPE (scalar, with average cache
// behaviour folded in). The derivations assume the SPE dual-issues one
// arithmetic and one load/store/shuffle per cycle when software-
// pipelined, so a kernel with k arithmetic ops per element costs about
// k/4 cycles per element plus shuffle overhead for any lane
// rearrangement; PPE constants reflect scalar issue without SIMD (the
// baseline JasPer code is scalar) plus L2 miss stalls on the
// column-major walks the paper highlights. The absolute values are
// calibrated (see EXPERIMENTS.md) so that the stage shares and the
// PPE:SPE per-kernel ratios reproduce the relationships reported in the
// paper's Section 5: Tier-1 runs faster on the PPE than on one SPE,
// one SPE beats the PPE "by far" on the DWT, and at one SPE the overall
// lossless time roughly equals the PPE-only time.
type KernelCosts struct {
	ReadConv float64 // stream type conversion to 4-byte int
	ShiftMCT float64 // merged level shift + inter-component transform
	DWT53    float64 // one 5/3 lifting direction, per sample per level
	DWT97    float64 // one 9/7 float lifting direction, per sample per level
	DWT97Fix float64 // 9/7 with JasPer fixed-point arithmetic
	DWTConv  float64 // convolution-based 9/7 (Muta baseline), per tap-heavy sample
	Quant    float64 // deadzone scalar quantization
	T1Scan   float64 // Tier-1, per coefficient examined in a pass
	T1Visit  float64 // Tier-1, per MQ decision actually coded
	T2Byte   float64 // Tier-2 packet assembly, per emitted byte
	RCPass   float64 // rate control, per pass over the whole PCRD search (JasPer re-scans every pass per lambda iteration; ~100 iterations folded in)
	IOByte   float64 // stream I/O, per byte
}

// SPECosts prices kernels on one SPE.
//
//   - ShiftMCT: RCT needs ~6 int ops/sample vectorized: 6/4 = 1.5.
//   - DWT53: 2 lifting steps × (2 adds + shift + add) ≈ 8 ops/sample,
//     8/4 = 2 plus odd/even shuffles ≈ 2.6.
//   - DWT97: 4 lifting steps × 1 fma + scaling ≈ 5 fma/sample, 5/4 ≈
//     1.25, but the 6-cycle fm latency forces deeper pipelining and
//     shuffle overhead ≈ 3.2.
//   - DWT97Fix: every multiply becomes a 5-instruction emulation
//     (FixedMul32Instrs), ≈ 2.6× the float cost — the Table 1 argument.
//   - T1Visit: scalar, branch-heavy; the SPE has no branch predictor
//     (18-cycle stall per miss) so a visit averages ~tens of cycles.
var SPECosts = KernelCosts{
	ReadConv: 1.0,
	ShiftMCT: 1.5,
	DWT53:    2.6,
	DWT97:    3.2,
	DWT97Fix: 8.3,
	DWTConv:  6.0,
	Quant:    1.4,
	T1Scan:   3.0,
	T1Visit:  26.0,
	T2Byte:   12.0,
	RCPass:   0, // rate control never runs on SPEs in our scheme
	IOByte:   1.0,
}

// PPECosts prices kernels on one PPE thread. Scalar code, decent branch
// prediction (Tier-1 clearly faster than the branch-stalled SPE), but no
// SIMD and painful strided access for the vertical DWT.
var PPECosts = KernelCosts{
	ReadConv: 3.0,
	ShiftMCT: 6.0,
	DWT53:    20.0,
	DWT97:    30.0,
	DWT97Fix: 38.0,
	DWTConv:  48.0,
	Quant:    7.0,
	T1Scan:   1.8,
	T1Visit:  15.0,
	T2Byte:   6.0,
	RCPass:   5000.0,
	IOByte:   0.8,
}

// Cycles converts a per-element cost and element count to sim time.
func Cycles(perElem float64, elems int) sim.Time {
	return sim.Time(perElem * float64(elems))
}

// T1Cycles prices a Tier-1 block encode from its scan and decision
// counters under a processing element's costs.
func T1Cycles(c KernelCosts, scanned, coded int) sim.Time {
	return sim.Time(c.T1Scan*float64(scanned) + c.T1Visit*float64(coded))
}
