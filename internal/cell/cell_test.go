package cell

import (
	"strings"
	"testing"
	"testing/quick"

	"j2kcell/internal/obs"
	"j2kcell/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{DefaultConfig(1), true},
		{DefaultConfig(8), true},
		{DefaultConfig(16), true}, // auto-promotes to 2 chips
		{QS20Config(16, 2), true},
		{Config{Chips: 1, SPEs: 9, PPEThreads: 1}, false},
		{Config{Chips: 0, SPEs: 1}, false},
		{Config{Chips: 1, SPEs: 1, PPEThreads: 5}, false},
		{Config{Chips: 1, SPEs: -1}, false},
	}
	for _, c := range cases {
		_, err := NewMachine(c.cfg)
		if (err == nil) != c.ok {
			t.Errorf("cfg %+v: err=%v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestMachineTopology(t *testing.T) {
	m := MustMachine(QS20Config(16, 2))
	if len(m.SPEs) != 16 || len(m.PPEs) != 2 {
		t.Fatalf("got %d SPEs, %d PPEs", len(m.SPEs), len(m.PPEs))
	}
	if m.Mem.BytesPerCycle != 16 { // 2 chips × 8 B/cycle
		t.Fatalf("QS20 bandwidth %v B/cycle, want 16", m.Mem.BytesPerCycle)
	}
}

func TestAllocEAAlignment(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	a := m.AllocEA(100, 128)
	b := m.AllocEA(100, 128)
	if a%128 != 0 || b%128 != 0 {
		t.Fatalf("EAs not 128-aligned: %#x %#x", a, b)
	}
	if b < a+100 {
		t.Fatalf("overlapping allocations: %#x then %#x", a, b)
	}
}

func TestLocalStoreBudget(t *testing.T) {
	ls := NewLocalStore()
	buf, lsa := ls.AllocI32(1024)
	if len(buf) != 1024 || lsa%16 != 0 {
		t.Fatalf("alloc: len=%d lsa=%d", len(buf), lsa)
	}
	_, lsa2 := ls.AllocF32(8)
	if lsa2 < lsa+4096 || lsa2%16 != 0 {
		t.Fatalf("second alloc overlaps or misaligned: %d", lsa2)
	}
	if ls.Used() == 0 || ls.HighWater() < ls.Used() {
		t.Fatal("accounting broken")
	}
	ls.Reset()
	if ls.Used() != 0 {
		t.Fatal("Reset did not free")
	}
	if ls.HighWater() == 0 {
		t.Fatal("Reset cleared high-water mark")
	}
}

func TestLocalStoreOverflowPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "Local Store overflow") {
			t.Errorf("want overflow panic, got %v", r)
		}
	}()
	ls := NewLocalStore()
	ls.AllocI32(LSSize / 4) // fills it exactly
	ls.AllocI32(1)
}

func TestCheckAlignRules(t *testing.T) {
	cases := []struct {
		ea, lsa, n int64
		ok         bool
	}{
		{0, 0, 0, true},
		{3, 3, 1, true},
		{2, 2, 2, true},
		{2, 4, 2, true},
		{3, 2, 2, false}, // ea misaligned for 2-byte
		{4, 4, 4, true},
		{4, 2, 4, false}, // lsa misaligned
		{8, 8, 8, true},
		{16, 16, 16, true},
		{16, 16, 48, true},
		{16, 16, 12, false}, // not 1/2/4/8 nor multiple of 16
		{8, 16, 16, false},  // ea not 16-aligned
		{16, 8, 32, false},  // lsa not 16-aligned
		{0, 0, MaxDMABytes, true},
		{0, 0, MaxDMABytes + 16, false}, // over MFC limit
	}
	for _, c := range cases {
		err := checkAlign(c.ea, c.lsa, c.n)
		if (err == nil) != c.ok {
			t.Errorf("checkAlign(%d,%d,%d) err=%v, want ok=%v", c.ea, c.lsa, c.n, err, c.ok)
		}
	}
}

func TestLinesSpanned(t *testing.T) {
	cases := []struct {
		ea, n, want int64
	}{
		{0, 128, 1},
		{0, 129, 2},
		{64, 128, 2}, // straddles a line boundary
		{0, 0, 0},
		{128, 256, 2},
		{127, 2, 2},
	}
	for _, c := range cases {
		if got := linesSpanned(c.ea, c.n); got != c.want {
			t.Errorf("linesSpanned(%d,%d)=%d, want %d", c.ea, c.n, got, c.want)
		}
	}
}

// An aligned get must move exactly its payload; a 64-byte-offset get of
// the same size must move one extra line. This is the quantitative core
// of the paper's data decomposition argument.
func TestAlignedDMAMovesFewerLines(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	spe := m.SPEs[0]
	src := make([]int32, 64) // 256 bytes
	dst, lsa := spe.LS.AllocI32(64)
	ea := m.AllocEA(4*64+128, 128)
	m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
		Get(p, spe, dst, lsa, src, ea)    // aligned: 2 lines
		Get(p, spe, dst, lsa, src, ea+64) // misaligned: 3 lines
	})
	m.Run()
	if spe.DMALineBytes != 2*128+3*128 {
		t.Fatalf("line bytes %d, want %d", spe.DMALineBytes, 5*128)
	}
	if spe.DMABytes != 512 {
		t.Fatalf("payload bytes %d, want 512", spe.DMABytes)
	}
}

func TestGetDeliversDataAtCompletion(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	spe := m.SPEs[0]
	src := make([]int32, 32)
	for i := range src {
		src[i] = int32(i * 3)
	}
	dst, lsa := spe.LS.AllocI32(32)
	ea := m.AllocEA(128, 128)
	m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
		c := GetAsync(p, spe, dst, lsa, src, ea)
		if dst[5] != 0 {
			t.Error("data visible before DMA completion")
		}
		p.WaitFor(c)
		for i := range src {
			if dst[i] != src[i] {
				t.Fatalf("dst[%d]=%d, want %d", i, dst[i], src[i])
			}
		}
	})
	m.Run()
}

func TestPutWritesBack(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	spe := m.SPEs[0]
	dstMain := make([]float32, 32)
	src, lsa := spe.LS.AllocF32(32)
	for i := range src {
		src[i] = float32(i) * 0.5
	}
	ea := m.AllocEA(128, 128)
	m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
		Put(p, spe, dstMain, ea, src, lsa)
	})
	m.Run()
	for i := range src {
		if dstMain[i] != src[i] {
			t.Fatalf("dstMain[%d]=%v, want %v", i, dstMain[i], src[i])
		}
	}
}

func TestLargeDMASplitsIntoMFCCommands(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	spe := m.SPEs[0]
	n := (MaxDMABytes/4)*2 + 1024/4 // 2 full commands + 1 KB remainder
	src := make([]int32, n)
	for i := range src {
		src[i] = int32(i)
	}
	dst, lsa := spe.LS.AllocI32(n)
	ea := m.AllocEA(int64(4*n), 128)
	m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
		Get(p, spe, dst, lsa, src, ea)
	})
	m.Run()
	if spe.DMACmds != 3 {
		t.Fatalf("DMA commands %d, want 3", spe.DMACmds)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("split transfer corrupted data at %d", i)
		}
	}
}

func TestMFCQueueDepthEnforced(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	spe := m.SPEs[0]
	src := make([]int32, 32)
	dst, lsa := spe.LS.AllocI32(32)
	ea := m.AllocEA(128, 128)
	m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
		for i := 0; i < MFCQueueLen+4; i++ {
			GetAsync(p, spe, dst, lsa, src, ea)
		}
		if len(spe.pending) > MFCQueueLen {
			t.Errorf("pending %d commands, queue depth is %d", len(spe.pending), MFCQueueLen)
		}
		spe.WaitAll(p)
		if len(spe.pending) != 0 {
			t.Error("WaitAll left pending commands")
		}
	})
	m.Run()
}

func TestMisalignedDMAPanics(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	spe := m.SPEs[0]
	src := make([]int32, 3) // 12 bytes: invalid size
	dst, lsa := spe.LS.AllocI32(3)
	ea := m.AllocEA(128, 128)
	m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("12-byte DMA did not panic")
			}
		}()
		Get(p, spe, dst, lsa, src, ea)
	})
	m.Run()
}

func TestDoubleBufferingOverlapsDMAWithCompute(t *testing.T) {
	// With double buffering, total time for k (get, compute, put) units
	// must be < serial sum when compute ≈ transfer time.
	run := func(buffered bool) sim.Time {
		m := MustMachine(DefaultConfig(1))
		spe := m.SPEs[0]
		const rows, width = 32, 256
		src := make([]int32, rows*width)
		dstM := make([]int32, rows*width)
		ea := m.AllocEA(4*rows*width, 128)
		ea2 := m.AllocEA(4*rows*width, 128)
		m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
			if !buffered {
				buf, lsa := spe.LS.AllocI32(width)
				for r := 0; r < rows; r++ {
					Get(p, spe, buf, lsa, src[r*width:(r+1)*width], ea+int64(4*r*width))
					spe.Compute(p, 128) // roughly the transfer's busy time
					Put(p, spe, dstM[r*width:(r+1)*width], ea2+int64(4*r*width), buf, lsa)
				}
				return
			}
			var bufs [2][]int32
			var lsas [2]int64
			bufs[0], lsas[0] = spe.LS.AllocI32(width)
			bufs[1], lsas[1] = spe.LS.AllocI32(width)
			var gets [2]*sim.Completion
			var puts [2]*sim.Completion
			gets[0] = GetAsync(p, spe, bufs[0], lsas[0], src[:width], ea)
			for r := 0; r < rows; r++ {
				b := r % 2
				if r+1 < rows {
					nb := (r + 1) % 2
					if puts[nb] != nil {
						p.WaitFor(puts[nb])
					}
					gets[nb] = GetAsync(p, spe, bufs[nb], lsas[nb], src[(r+1)*width:(r+2)*width], ea+int64(4*(r+1)*width))
				}
				p.WaitFor(gets[b])
				spe.Compute(p, 128)
				puts[b] = PutAsync(p, spe, dstM[r*width:(r+1)*width], ea2+int64(4*r*width), bufs[b], lsas[b])
			}
			spe.WaitAll(p)
		})
		return m.Run()
	}
	serial, buffered := run(false), run(true)
	if buffered >= serial {
		t.Fatalf("double buffering did not help: serial=%d buffered=%d", serial, buffered)
	}
	if float64(buffered) > 0.8*float64(serial) {
		t.Fatalf("double buffering hid too little latency: serial=%d buffered=%d", serial, buffered)
	}
}

// Property: DMA line bytes always >= payload bytes, and equal when the
// transfer is line-aligned with line-multiple size.
func TestPropLineAccounting(t *testing.T) {
	f := func(words16 uint8, lineOff uint8) bool {
		n := (int(words16)%64 + 1) * 4 // multiple of 4 words = 16 bytes
		off := int64(lineOff%2) * 64   // 0 or 64: aligned or straddling
		m := MustMachine(DefaultConfig(1))
		spe := m.SPEs[0]
		src := make([]int32, n)
		dst, lsa := spe.LS.AllocI32(n)
		ea := m.AllocEA(int64(4*n)+256, 128) + off
		m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
			Get(p, spe, dst, lsa, src, ea)
		})
		m.Run()
		if spe.DMALineBytes < spe.DMABytes {
			return false
		}
		if off == 0 && n*4%128 == 0 && spe.DMALineBytes != spe.DMABytes {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Constants(t *testing.T) {
	// The quantitative claim of Section 4: fixed-point 32-bit multiply
	// emulation is slower than single-precision float multiply.
	if LatMpyh != 7 || LatMpyu != 7 || LatA != 2 || LatFm != 6 {
		t.Fatal("Table 1 latencies changed")
	}
	if FixedMul32Latency <= FloatMul32Latency {
		t.Fatal("fixed-point multiply should be slower than float on the SPE")
	}
	if SPECosts.DWT97Fix <= SPECosts.DWT97 {
		t.Fatal("fixed-point 9/7 kernel must cost more than float on the SPE")
	}
}

func TestCostModelRelationships(t *testing.T) {
	// Structural relationships the paper reports (Section 5.1):
	if PPECosts.T1Visit >= SPECosts.T1Visit {
		t.Error("Tier-1 must be faster on the PPE than on one SPE")
	}
	if PPECosts.DWT53 < 4*SPECosts.DWT53 || PPECosts.DWT97 < 4*SPECosts.DWT97 {
		t.Error("one SPE must beat the PPE 'by far' on the DWT")
	}
	if SPECosts.RCPass != 0 {
		t.Error("rate control is sequential on the PPE in our scheme")
	}
}

func TestPPETouchContendsForBandwidth(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	ppe := m.PPEs[0]
	m.Eng.Spawn("ppe", 0, func(p *sim.Proc) {
		ppe.Touch(p, 1<<20)
		ppe.Compute(p, 10)
		ppe.Touch(p, 0) // no-op
	})
	m.Run()
	if m.Mem.TotalBytes != 1<<20 {
		t.Fatalf("memory traffic %d, want %d", m.Mem.TotalBytes, 1<<20)
	}
	if ppe.BytesTouched != 1<<20 || ppe.ComputeCycles != 10 {
		t.Fatal("PPE accounting broken")
	}
}

func TestSeconds(t *testing.T) {
	if s := Seconds(sim.Time(ClockHz)); s != 1.0 {
		t.Fatalf("Seconds(1s of cycles)=%v", s)
	}
}

func TestTraceRecordsSpans(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	m.Trace = NewTrace()
	m.Trace.SetPhase("alpha")
	spe := m.SPEs[0]
	ppe := m.PPEs[0]
	m.Eng.Spawn("spe", 0, func(p *sim.Proc) {
		spe.Compute(p, 100)
		spe.Compute(p, 50) // contiguous, same phase: merges
		p.Delay(10)
		m.Trace.SetPhase("beta")
		spe.Compute(p, 25)
	})
	m.Eng.Spawn("ppe", 0, func(p *sim.Proc) {
		p.Delay(200)
		ppe.Compute(p, 30)
	})
	m.Run()
	if len(m.Trace.Spans) != 3 {
		t.Fatalf("spans: %+v", m.Trace.Spans)
	}
	s0 := m.Trace.Spans[0]
	if s0.PE != "spe0" || s0.Phase != "alpha" || s0.Start != 0 || s0.End != 150 {
		t.Fatalf("merged span: %+v", s0)
	}
	spans := m.Trace.TSpans()
	if got := obs.BusyInWindow(spans, "spe0", 0, 1000); got != 175 {
		t.Fatalf("busy %d, want 175", got)
	}
	if got := obs.BusyInWindow(spans, "spe0", 100, 160); got != 50 {
		t.Fatalf("windowed busy %d, want 50", got)
	}
	if got := obs.BusyInWindow(spans, "ppe0", 0, 1000); got != 30 {
		t.Fatalf("ppe busy %d", got)
	}
}

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	tr.SetPhase("x") // must not panic
	tr.add("spe0", 0, 10)
}

func TestNUMARouting(t *testing.T) {
	cfg := QS20Config(16, 2)
	cfg.NUMA = true
	m := MustMachine(cfg)
	if len(m.Mems) != 2 {
		t.Fatalf("NUMA memories: %d", len(m.Mems))
	}
	if m.Cfg.RemoteExtra == 0 {
		t.Fatal("RemoteExtra not defaulted")
	}
	spe0 := m.SPEs[0] // chip 0
	spe8 := m.SPEs[8] // chip 1
	if spe0.Chip() != 0 || spe8.Chip() != 1 {
		t.Fatalf("chips: %d %d", spe0.Chip(), spe8.Chip())
	}
	src := make([]int32, 32) // one line
	d0, l0 := spe0.LS.AllocI32(32)
	d8, l8 := spe8.LS.AllocI32(32)
	ea := m.AllocEA(256, 256) // line 0 of some even line index: home chip = (ea/128)%2
	home := int((ea / 128) % 2)
	var t0, t8 sim.Time
	m.Eng.Spawn("a", 0, func(p *sim.Proc) {
		c := cell0Get(p, spe0, d0, l0, src, ea)
		p.WaitFor(c)
		t0 = p.Now()
	})
	m.Eng.Spawn("b", 0, func(p *sim.Proc) {
		c := cell0Get(p, spe8, d8, l8, src, ea)
		p.WaitFor(c)
		t8 = p.Now()
	})
	m.Run()
	local, remote := t0, t8
	if home == 1 {
		local, remote = t8, t0
	}
	if remote <= local {
		t.Fatalf("remote access (%d) should be slower than local (%d)", remote, local)
	}
	if m.Mems[home].TotalBytes == 0 {
		t.Fatal("home memory saw no traffic")
	}
	if m.Mems[1-home].TotalBytes != 0 {
		t.Fatal("other memory saw traffic for a single line")
	}
}

// cell0Get avoids generic instantiation noise in the test body.
func cell0Get(p *sim.Proc, s *SPE, dst []int32, lsa int64, src []int32, ea int64) *sim.Completion {
	return GetAsync(p, s, dst, lsa, src, ea)
}

func TestNUMAEncodeStillByteIdentical(t *testing.T) {
	// Handled at core level; here just check the machine builds and a
	// simple streamed transfer conserves bytes across both memories.
	cfg := QS20Config(16, 1)
	cfg.NUMA = true
	m := MustMachine(cfg)
	spe := m.SPEs[3]
	n := 256 // words: 1 KB; the command is served by its first line's home chip
	src := make([]int32, n)
	dst, lsa := spe.LS.AllocI32(n)
	ea := m.AllocEA(int64(4*n), 128)
	m.Eng.Spawn("p", 0, func(p *sim.Proc) {
		Get(p, spe, dst, lsa, src, ea)
	})
	m.Run()
	var tot int64
	for _, r := range m.Mems {
		tot += r.TotalBytes
	}
	if tot != int64(4*n) {
		t.Fatalf("NUMA memories moved %d bytes, want %d", tot, 4*n)
	}
}
