package bmp

import (
	"bytes"
	"strings"
	"testing"

	"j2kcell/internal/imgmodel"
	"j2kcell/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	img := workload.Dial(37, 23, 1, 4) // odd width exercises row padding
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("BMP round trip not lossless")
	}
}

func TestRowPaddingMultipleOfFour(t *testing.T) {
	for w := 1; w <= 8; w++ {
		img := imgmodel.NewImage(w, 2, 3, 8)
		var buf bytes.Buffer
		if err := Encode(&buf, img); err != nil {
			t.Fatal(err)
		}
		rowBytes := (w*3 + 3) &^ 3
		want := 14 + 40 + rowBytes*2
		if buf.Len() != want {
			t.Fatalf("w=%d: size %d, want %d", w, buf.Len(), want)
		}
		if _, err := Decode(&buf); err != nil {
			t.Fatalf("w=%d: decode: %v", w, err)
		}
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	_, err := Decode(strings.NewReader("XXnotabmpfileatall_____________"))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err=%v", err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	img := workload.Gradient(10, 10)
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, n := range []int{0, 5, 14, 30, 54, len(data) - 7} {
		if _, err := Decode(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
}

func TestDecodeRejectsCompressed(t *testing.T) {
	img := workload.Gradient(4, 4)
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[30] = 1 // BI_RLE8
	if _, err := Decode(bytes.NewReader(data)); err == nil {
		t.Fatal("compressed BMP accepted")
	}
}

func TestEncodeClampsOutOfRange(t *testing.T) {
	img := imgmodel.NewImage(2, 1, 3, 8)
	img.Comps[0].Set(0, 0, -50)
	img.Comps[0].Set(0, 1, 999)
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Comps[0].At(0, 0) != 0 || got.Comps[0].At(0, 1) != 255 {
		t.Fatalf("clamping failed: %d %d", got.Comps[0].At(0, 0), got.Comps[0].At(0, 1))
	}
}

func TestEncodeRejectsNonRGB(t *testing.T) {
	img := imgmodel.NewImage(2, 2, 1, 8)
	if err := Encode(&bytes.Buffer{}, img); err == nil {
		t.Fatal("1-component image accepted")
	}
}

func TestDecodeTopDownBMP(t *testing.T) {
	img := workload.Gradient(6, 4)
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip the height field to negative (top-down) and reverse rows.
	h := int32(-4)
	data[22] = byte(h)
	data[23] = byte(h >> 8)
	data[24] = byte(h >> 16)
	data[25] = byte(h >> 24)
	rowBytes := (6*3 + 3) &^ 3
	pix := data[54:]
	for i := 0; i < 2; i++ {
		a := pix[i*rowBytes : (i+1)*rowBytes]
		b := pix[(3-i)*rowBytes : (4-i)*rowBytes]
		for j := range a {
			a[j], b[j] = b[j], a[j]
		}
	}
	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("top-down BMP decoded incorrectly")
	}
}

func TestDecodeWithPixelDataGap(t *testing.T) {
	img := workload.Gradient(3, 2)
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Insert an 8-byte gap between headers and pixels, fixing the offset.
	withGap := append(append([]byte(nil), data[:54]...), make([]byte, 8)...)
	withGap = append(withGap, data[54:]...)
	withGap[10] = 54 + 8
	got, err := Decode(bytes.NewReader(withGap))
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("gap-skipping decode failed")
	}
}

func TestDecodeRejectsOffsetInsideHeaders(t *testing.T) {
	img := workload.Gradient(3, 2)
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[10] = 10 // pixel offset inside the headers
	if _, err := Decode(bytes.NewReader(data)); err == nil {
		t.Fatal("bogus pixel offset accepted")
	}
}
