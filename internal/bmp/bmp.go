// Package bmp reads and writes uncompressed 24-bit Windows BMP files,
// the input format of the paper's workload (JasPer transcoding a BMP to
// JPEG2000).
package bmp

import (
	"encoding/binary"
	"fmt"
	"io"

	"j2kcell/internal/imgmodel"
)

const (
	fileHeaderSize = 14
	infoHeaderSize = 40
)

// Decode reads a 24-bit or 32-bit uncompressed BMP into an RGB image.
func Decode(r io.Reader) (*imgmodel.Image, error) {
	var fh [fileHeaderSize]byte
	if _, err := io.ReadFull(r, fh[:]); err != nil {
		return nil, fmt.Errorf("bmp: reading file header: %w", err)
	}
	if fh[0] != 'B' || fh[1] != 'M' {
		return nil, fmt.Errorf("bmp: bad magic %q", fh[:2])
	}
	dataOff := binary.LittleEndian.Uint32(fh[10:14])

	var ih [infoHeaderSize]byte
	if _, err := io.ReadFull(r, ih[:]); err != nil {
		return nil, fmt.Errorf("bmp: reading info header: %w", err)
	}
	hdrSize := binary.LittleEndian.Uint32(ih[0:4])
	if hdrSize < infoHeaderSize {
		return nil, fmt.Errorf("bmp: unsupported header size %d", hdrSize)
	}
	w := int(int32(binary.LittleEndian.Uint32(ih[4:8])))
	h := int(int32(binary.LittleEndian.Uint32(ih[8:12])))
	bpp := int(binary.LittleEndian.Uint16(ih[14:16]))
	comp := binary.LittleEndian.Uint32(ih[16:20])
	if comp != 0 {
		return nil, fmt.Errorf("bmp: compression %d unsupported", comp)
	}
	if bpp != 24 && bpp != 32 {
		return nil, fmt.Errorf("bmp: %d bpp unsupported (want 24 or 32)", bpp)
	}
	topDown := false
	if h < 0 {
		topDown, h = true, -h
	}
	if w <= 0 || h == 0 {
		return nil, fmt.Errorf("bmp: invalid dimensions %dx%d", w, h)
	}
	// Skip any gap between headers and pixel data.
	if skip := int64(dataOff) - int64(fileHeaderSize) - int64(hdrSize); skip > 0 {
		if _, err := io.CopyN(io.Discard, r, skip); err != nil {
			return nil, fmt.Errorf("bmp: skipping to pixel data: %w", err)
		}
	} else if skip < 0 {
		return nil, fmt.Errorf("bmp: pixel data offset %d inside headers", dataOff)
	}

	img := imgmodel.NewImage(w, h, 3, 8)
	bytesPP := bpp / 8
	rowBytes := (w*bytesPP + 3) &^ 3
	row := make([]byte, rowBytes)
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(r, row); err != nil {
			return nil, fmt.Errorf("bmp: reading row %d: %w", y, err)
		}
		dy := h - 1 - y
		if topDown {
			dy = y
		}
		rr := img.Comps[0].Row(dy)
		gg := img.Comps[1].Row(dy)
		bb := img.Comps[2].Row(dy)
		for x := 0; x < w; x++ {
			o := x * bytesPP
			bb[x] = int32(row[o])
			gg[x] = int32(row[o+1])
			rr[x] = int32(row[o+2])
		}
	}
	return img, nil
}

// Encode writes img as a bottom-up 24-bit BMP. The image must have 3
// components of 8-bit depth.
func Encode(w io.Writer, img *imgmodel.Image) error {
	if len(img.Comps) != 3 {
		return fmt.Errorf("bmp: need 3 components, have %d", len(img.Comps))
	}
	rowBytes := (img.W*3 + 3) &^ 3
	pixBytes := rowBytes * img.H
	total := fileHeaderSize + infoHeaderSize + pixBytes

	var fh [fileHeaderSize]byte
	fh[0], fh[1] = 'B', 'M'
	binary.LittleEndian.PutUint32(fh[2:6], uint32(total))
	binary.LittleEndian.PutUint32(fh[10:14], fileHeaderSize+infoHeaderSize)
	if _, err := w.Write(fh[:]); err != nil {
		return err
	}

	var ih [infoHeaderSize]byte
	binary.LittleEndian.PutUint32(ih[0:4], infoHeaderSize)
	binary.LittleEndian.PutUint32(ih[4:8], uint32(img.W))
	binary.LittleEndian.PutUint32(ih[8:12], uint32(img.H))
	binary.LittleEndian.PutUint16(ih[12:14], 1)
	binary.LittleEndian.PutUint16(ih[14:16], 24)
	binary.LittleEndian.PutUint32(ih[20:24], uint32(pixBytes))
	if _, err := w.Write(ih[:]); err != nil {
		return err
	}

	row := make([]byte, rowBytes)
	clamp := func(v int32) byte {
		if v < 0 {
			return 0
		}
		if v > 255 {
			return 255
		}
		return byte(v)
	}
	for y := img.H - 1; y >= 0; y-- {
		rr := img.Comps[0].Row(y)
		gg := img.Comps[1].Row(y)
		bb := img.Comps[2].Row(y)
		for x := 0; x < img.W; x++ {
			row[x*3] = clamp(bb[x])
			row[x*3+1] = clamp(gg[x])
			row[x*3+2] = clamp(rr[x])
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}
