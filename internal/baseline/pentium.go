// Package baseline models the two systems the paper compares against:
// JasPer running on an Intel Pentium IV 3.2 GHz (Figure 9) and the
// Muta et al. Motion-JPEG2000 encoder for the Cell/B.E. (Figures 6–8).
//
// Neither comparator can be run directly (one is a dead desktop CPU,
// the other closed source), so both are calibrated analytic models
// driven by the real workload counters of this repository's codec: the
// actual Tier-1 scan/decision counts, actual pass counts, and the exact
// DWT geometry. The Pentium model prices the same sequential pipeline
// with out-of-order-core constants; the Muta model prices their
// published design choices (convolution DWT on overlapping 128×128
// tiles, 32×32 code blocks, Tier-1 on SPEs only, Tier-2 on the PPE).
package baseline

import (
	"j2kcell/internal/cell"
	"j2kcell/internal/codec"
	"j2kcell/internal/imgmodel"
)

// PentiumClockHz matches the paper's comparison machine.
const PentiumClockHz = 3.2e9

// PentiumCosts prices kernels on the Pentium IV (3.2 GHz, 2 MB L2):
// scalar code (the paper notes JasPer has no SSE vectorization), but an
// out-of-order core with a good branch predictor, so Tier-1 runs faster
// than on either Cell core while the DWT loops, lacking SIMD, sit
// between the PPE and one SPE. The lossy path keeps JasPer's
// fixed-point representation, exactly the configuration Figure 9
// benchmarks ("the Pentium IV processor emulates the floating point
// operations with fixed point instructions").
var PentiumCosts = cell.KernelCosts{
	ReadConv: 2.0,
	ShiftMCT: 4.0,
	DWT53:    12.0,
	DWT97:    13.0,
	DWT97Fix: 19.0,
	DWTConv:  30.0,
	Quant:    5.0,
	T1Scan:   1.2,
	T1Visit:  11.0,
	T2Byte:   5.0,
	RCPass:   3500.0,
	IOByte:   0.6,
}

// StageSeconds is a per-stage time breakdown in seconds.
type StageSeconds struct {
	Read    float64
	Shift   float64
	DWT     float64
	Quant   float64
	Tier1   float64
	RateCtl float64
	Tier2IO float64
}

// Total sums the stages.
func (s StageSeconds) Total() float64 {
	return s.Read + s.Shift + s.DWT + s.Quant + s.Tier1 + s.RateCtl + s.Tier2IO
}

// DWTSamplePasses counts sample×direction work over all decomposition
// levels of a w×h plane set.
func DWTSamplePasses(w, h, ncomp, levels int) int {
	total := 0
	lw, lh := w, h
	for l := 0; l < levels; l++ {
		if lw <= 1 && lh <= 1 {
			break
		}
		total += lw * lh * 2
		lw, lh = (lw+1)/2, (lh+1)/2
	}
	return total * ncomp
}

// PricePipeline prices the sequential JasPer pipeline on a machine with
// the given kernel costs, driven by a completed encode's statistics.
func PricePipeline(res *codec.Result, opt codec.Options, costs cell.KernelCosts, clockHz float64) StageSeconds {
	st := res.Stats
	opt = opt.WithDefaults(st.W, st.H)
	samples := st.Samples
	dwtWork := DWTSamplePasses(st.W, st.H, st.NComp, opt.Levels)

	var out StageSeconds
	sec := func(cycles float64) float64 { return cycles / clockHz }
	out.Read = sec(costs.IOByte*float64(samples) + costs.ReadConv*float64(samples))
	out.Shift = sec(costs.ShiftMCT * float64(samples))
	if opt.Lossless {
		out.DWT = sec(costs.DWT53 * float64(dwtWork))
	} else {
		out.DWT = sec(costs.DWT97Fix * float64(dwtWork)) // JasPer fixed-point path
		out.Quant = sec(costs.Quant * float64(samples))
		if opt.Rate > 0 {
			out.RateCtl = sec(costs.RCPass * float64(st.TotalPasses))
		}
	}
	out.Tier1 = sec(costs.T1Scan*float64(st.T1Scanned) + costs.T1Visit*float64(st.T1Coded))
	out.Tier2IO = sec(costs.T2Byte*float64(st.BodyBytes) + costs.IOByte*float64(st.HeaderBytes+st.BodyBytes))
	return out
}

// EncodePentium runs the real codec for the data and prices it on the
// Pentium IV model.
func EncodePentium(img *imgmodel.Image, opt codec.Options) (*codec.Result, StageSeconds, error) {
	res, err := codec.Encode(img, opt)
	if err != nil {
		return nil, StageSeconds{}, err
	}
	return res, PricePipeline(res, opt, PentiumCosts, PentiumClockHz), nil
}
