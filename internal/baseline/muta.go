package baseline

import (
	"j2kcell/internal/cell"
	"j2kcell/internal/codec"
	"j2kcell/internal/imgmodel"
)

// MutaClockHz is the 2.4 GHz Cell/B.E. revision Muta et al. measured on
// (the paper's Section 5.2 lists this among the comparison caveats).
const MutaClockHz = 2.4e9

// Design constants of the Muta et al. encoder, from the paper's
// description: convolution-based DWT over 128×128 tiles whose 16-pixel
// overlap leaves a net 112×112, violating the cache-line alignment of
// the most efficient DMA; 32×32 code blocks (halving Local Store
// pressure but quadrupling PPE↔SPE interactions); Tier-1 on SPE threads
// only while the PPE runs Tier-2 overlapped; lossless only.
const (
	mutaTile    = 128
	mutaNetTile = 112
	// mutaBlockOverhead is the per-code-block cost of the PPE
	// distributing work and the SPE synchronizing on it — the
	// interaction the paper blames for their lower scalability.
	mutaBlockOverheadCycles = 15000.0
	// mutaT1Factor scales their Tier-1 kernel relative to ours,
	// calibrated so the modeled bars match the relative heights the
	// paper reports in Figures 6-7 (their kernel predates the
	// stripe-skipping optimizations and pays 32x32 context restarts).
	mutaT1Factor = 2.0
)

// MutaResult is the modeled per-frame profile of the Muta encoder.
type MutaResult struct {
	DWT    float64 // seconds
	EBCOT  float64 // Tier-1 + Tier-2, overlapped
	Other  float64 // PPE-side shift/MCT/IO (not offloaded in their design)
	DMAGB  float64 // DWT DMA traffic in GB (for the ablation tables)
	Blocks int
}

// Total is the per-frame encode time in seconds.
func (m MutaResult) Total() float64 { return m.DWT + m.EBCOT + m.Other }

// MutaModel prices the Muta design for one frame on nSPE SPEs at the
// given clock. The Tier-1 workload counters come from a real encode of
// the frame with the design's 32×32 code blocks, so content-dependent
// load is honest; the structural handicaps are modeled:
//
//   - the tile overlap multiplies DWT compute and traffic by
//     (128/112)² ≈ 1.31, and the overlapped region's misalignment costs
//     an extra cache line per tile row (~25% more traffic);
//   - the convolution kernel costs DWTConv per sample-direction instead
//     of the lifting cost;
//   - their DWT "does not scale beyond a single SPE": modeled as one
//     SPE doing the filtering while others idle (the published curves
//     show essentially flat DWT time beyond one SPE);
//   - Tier-1 runs on SPEs only, with a per-block PPE interaction cost;
//     Tier-2 runs on the PPE overlapped with Tier-1.
func MutaModel(res *codec.Result, opt codec.Options, nSPE int, clockHz float64) MutaResult {
	st := res.Stats
	opt = opt.WithDefaults(st.W, st.H)
	sec := func(cycles float64) float64 { return cycles / clockHz }

	overlap := float64(mutaTile*mutaTile) / float64(mutaNetTile*mutaNetTile)
	misalign := 1.25
	dwtWork := float64(DWTSamplePasses(st.W, st.H, st.NComp, opt.Levels))
	dwtCompute := cell.SPECosts.DWTConv * dwtWork * overlap
	dwtBytes := dwtWork * 4 * 2 * overlap * misalign // read+write per pass
	dwtBandwidthCycles := dwtBytes / cell.BytesPerCyc
	// Single effective SPE for the DWT; bandwidth is not the limiter at
	// one SPE, so compute dominates.
	dwt := dwtCompute
	if dwtBandwidthCycles > dwt {
		dwt = dwtBandwidthCycles
	}

	t1Cycles := mutaT1Factor * (cell.SPECosts.T1Scan*float64(st.T1Scanned) + cell.SPECosts.T1Visit*float64(st.T1Coded))
	t1Cycles += mutaBlockOverheadCycles * float64(st.Blocks)
	if nSPE < 1 {
		nSPE = 1
	}
	t1 := t1Cycles / float64(nSPE)
	t2 := cell.PPECosts.T2Byte * float64(st.BodyBytes) // PPE, overlapped
	ebcot := t1
	if t2 > ebcot {
		ebcot = t2
	}

	other := cell.PPECosts.ShiftMCT*float64(st.Samples) +
		cell.PPECosts.ReadConv*float64(st.Samples) +
		cell.PPECosts.IOByte*float64(st.Samples+st.BodyBytes+st.HeaderBytes)

	return MutaResult{
		DWT:    sec(dwt),
		EBCOT:  sec(ebcot),
		Other:  sec(other),
		DMAGB:  dwtBytes / 1e9,
		Blocks: st.Blocks,
	}
}

// EncodeMuta encodes the frame with the Muta design parameters (32×32
// blocks, lossless) and prices it for the given SPE count and clock.
func EncodeMuta(img *imgmodel.Image, nSPE int, clockHz float64) (*codec.Result, MutaResult, error) {
	opt := codec.Options{Lossless: true, CBW: 32, CBH: 32}
	res, err := codec.Encode(img, opt)
	if err != nil {
		return nil, MutaResult{}, err
	}
	return res, MutaModel(res, opt, nSPE, clockHz), nil
}
