package baseline

import (
	"testing"

	"j2kcell/internal/codec"
	"j2kcell/internal/core"
	"j2kcell/internal/workload"
)

func TestDWTSamplePasses(t *testing.T) {
	// One level of a 16x16 plane: 16*16*2 per component.
	if got := DWTSamplePasses(16, 16, 1, 1); got != 512 {
		t.Fatalf("got %d, want 512", got)
	}
	// Levels beyond MaxLevels add nothing.
	a := DWTSamplePasses(8, 8, 1, 3)
	b := DWTSamplePasses(8, 8, 1, 30)
	if a != b {
		t.Fatalf("level clamp broken: %d vs %d", a, b)
	}
	// Geometric series: total < 2*2*w*h per component.
	if got := DWTSamplePasses(256, 256, 3, 5); got >= 4*256*256*3 {
		t.Fatalf("DWT work %d implausible", got)
	}
}

func TestPentiumStageShapes(t *testing.T) {
	img := workload.Dial(256, 256, 3, 5)
	_, lossless, err := EncodePentium(img, codec.Options{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	if lossless.Tier1 <= 0 || lossless.DWT <= 0 || lossless.Total() <= 0 {
		t.Fatalf("stages unpriced: %+v", lossless)
	}
	if lossless.Quant != 0 || lossless.RateCtl != 0 {
		t.Fatal("lossless path must not price quant/rate control")
	}
	if lossless.Tier1 < lossless.DWT {
		t.Fatal("Tier-1 must dominate the DWT on the Pentium")
	}

	_, lossy, err := EncodePentium(img, codec.Options{Rate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Quant <= 0 || lossy.RateCtl <= 0 {
		t.Fatalf("lossy stages missing: %+v", lossy)
	}
	// Fixed-point 9/7 on the Pentium is pricier than the 5/3.
	if lossy.DWT <= lossless.DWT {
		t.Fatal("lossy fixed-point DWT should cost more than 5/3")
	}
}

func TestPentiumSlowerThanEightSPEs(t *testing.T) {
	// Figure 9's headline: the Cell outperforms the Pentium overall.
	img := workload.Dial(384, 384, 5, 5)
	opt := codec.Options{Lossless: true}
	_, p4, err := EncodePentium(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(img, core.DefaultConfig(8, opt))
	if err != nil {
		t.Fatal(err)
	}
	cellSec := float64(res.Cycles) / 3.2e9
	ratio := p4.Total() / cellSec
	if ratio < 1.5 || ratio > 8 {
		t.Fatalf("Cell/P4 lossless ratio %.2f outside plausible band (paper: 3.2)", ratio)
	}
}

func TestPentiumFasterThanOneSPEOnTier1(t *testing.T) {
	img := workload.Dial(256, 256, 2, 5)
	opt := codec.Options{Lossless: true}
	_, p4, err := EncodePentium(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(img, core.DefaultConfig(1, opt))
	if err != nil {
		t.Fatal(err)
	}
	cellT1 := float64(res.StageCycles("tier1")) / 3.2e9
	if p4.Tier1 >= cellT1 {
		t.Fatalf("P4 Tier-1 %.4fs should beat one SPE %.4fs", p4.Tier1, cellT1)
	}
}

func TestMutaModelStructure(t *testing.T) {
	img := workload.Dial(320, 180, 3, 5)
	res, m8, err := EncodeMuta(img, 8, MutaClockHz)
	if err != nil {
		t.Fatal(err)
	}
	if m8.Total() <= 0 || m8.DWT <= 0 || m8.EBCOT <= 0 || m8.DMAGB <= 0 {
		t.Fatalf("muta model unpriced: %+v", m8)
	}
	// 32×32 blocks: block count must be roughly 4x the 64×64 count.
	opt := codec.Options{Lossless: true}
	res64, err := codec.Encode(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Blocks < 2*res64.Stats.Blocks {
		t.Fatalf("32x32 blocks %d vs 64x64 %d", res.Stats.Blocks, res64.Stats.Blocks)
	}
}

func TestMutaDWTDoesNotScale(t *testing.T) {
	img := workload.Dial(320, 180, 3, 5)
	_, m1, err := EncodeMuta(img, 1, MutaClockHz)
	if err != nil {
		t.Fatal(err)
	}
	_, m8, err := EncodeMuta(img, 8, MutaClockHz)
	if err != nil {
		t.Fatal(err)
	}
	if m8.DWT != m1.DWT {
		t.Fatalf("Muta DWT should be SPE-count independent: %v vs %v", m1.DWT, m8.DWT)
	}
	if m8.EBCOT >= m1.EBCOT {
		t.Fatal("Muta EBCOT must still scale with SPEs")
	}
}

func TestOursBeatsMutaOverall(t *testing.T) {
	// Figure 6's headline: our single-chip encoder beats their
	// dual-chip encoder.
	img := workload.Dial(480, 270, 3, 5) // 1/16-scale 1080p frame
	_, muta16, err := EncodeMuta(img, 16, MutaClockHz)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := core.Encode(img, core.DefaultConfig(8, codec.Options{Lossless: true}))
	if err != nil {
		t.Fatal(err)
	}
	oursSec := float64(ours.Cycles) / 3.2e9
	if oursSec >= muta16.Total() {
		t.Fatalf("ours (1 chip, %.4fs) should beat Muta1 (2 chips, %.4fs)", oursSec, muta16.Total())
	}
}
