// Package quant implements the scalar deadzone quantizer of the
// JPEG2000 irreversible path. Step sizes are derived per subband from
// the synthesis basis norms: Δ_b = Δ0 / g_b, so that one quantizer LSB
// contributes the same image-domain error in every band and the
// Tier-1 distortion weights stay uniform. (The reversible 5/3 path
// uses no quantization; its "ranging" is the identity.)
package quant

import (
	"j2kcell/internal/dwt"
	"j2kcell/internal/simd"
)

// DefaultBaseDelta is Δ0: half an 8-bit gray level of image-domain
// error per quantizer LSB.
const DefaultBaseDelta = 0.5

// StepFor returns the quantizer step for a subband.
func StepFor(baseDelta float64, levels int, o dwt.Orient, level int) float64 {
	return baseDelta / dwt.BandGain(dwt.W97, levels, o, level)
}

// QuantizeRow converts one row of 9/7 coefficients to sign-magnitude
// integers: q = sign(v) * floor(|v| / Δ).
// The branchy sign split of the scalar form is equivalent to one
// truncation toward zero, which is what the vector kernel performs.
func QuantizeRow(dst []int32, src []float32, delta float32) {
	simd.QuantizeRow(dst, src, 1/delta)
}

// QuantizeBlock quantizes a w×h region with independent source and
// destination strides — the fused quantization step of a Tier-1 block
// job in the stage pipeline, where each block quantizes its own
// coefficients into scratch just before entropy coding. Elementwise
// identical to quantizing the whole plane row by row.
func QuantizeBlock(dst []int32, dstStride int, src []float32, srcStride, w, h int, delta float32) {
	for y := 0; y < h; y++ {
		QuantizeRow(dst[y*dstStride:y*dstStride+w], src[y*srcStride:y*srcStride+w], delta)
	}
}

// DequantizeRow reconstructs coefficients with the standard r=0.5
// midpoint: v = sign(q) * (|q| + 0.5) * Δ for q != 0. Tier-1 decoding
// of truncated blocks already folds in the midpoint of the missing
// planes, so here the 0.5 accounts only for the sub-LSB remainder.
// The branchy sign split of the scalar form equals one unconditional
// add of a sign-carrying 0.5 bias, which is what the vector kernel
// performs.
func DequantizeRow(dst []float32, src []int32, delta float32) {
	simd.DequantRow(dst, src, delta)
}

// MaxBitplanes bounds the number of magnitude bit planes a band's
// quantizer indices can occupy for samples of the given bit depth
// (post level shift), used as M_b when signaling zero bit planes.
func MaxBitplanes(depth int, baseDelta float64, levels int, o dwt.Orient, level int) int {
	amp := float64(int32(1) << (depth - 1)) // |v| bound after level shift
	// Chroma transforms and filter overshoot can roughly double it.
	amp *= 2.5
	q := amp / StepFor(baseDelta, levels, o, level)
	n := 0
	for v := int64(q); v > 0; v >>= 1 {
		n++
	}
	return n + 1 // one guard bit
}
