package quant

import (
	"math"
	"testing"
	"testing/quick"

	"j2kcell/internal/dwt"
)

func TestQuantizeKnownValues(t *testing.T) {
	src := []float32{0, 0.49, 0.5, 1.49, -0.49, -0.5, -3.2}
	dst := make([]int32, len(src))
	QuantizeRow(dst, src, 0.5)
	want := []int32{0, 0, 1, 2, 0, -1, -6}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("q(%v)=%d, want %d", src[i], dst[i], want[i])
		}
	}
}

func TestDequantizeMidpoint(t *testing.T) {
	src := []int32{0, 1, -1, 10}
	dst := make([]float32, len(src))
	DequantizeRow(dst, src, 2.0)
	want := []float32{0, 3, -3, 21}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dq(%d)=%v, want %v", src[i], dst[i], want[i])
		}
	}
}

func TestPropQuantErrorBounded(t *testing.T) {
	f := func(raw int16, d8 uint8) bool {
		delta := float32(d8%50+1) / 10
		v := float32(raw) / 16
		var q [1]int32
		QuantizeRow(q[:], []float32{v}, delta)
		var r [1]float32
		DequantizeRow(r[:], q[:], delta)
		// Midpoint reconstruction error is at most Δ/2 — except in the
		// deadzone, whose bin is 2Δ wide, where it can reach Δ. A small
		// slack covers float32 rounding at cell boundaries.
		bound := float64(delta) / 2
		if q[0] == 0 {
			bound = float64(delta)
		}
		return math.Abs(float64(r[0]-v)) <= bound+math.Abs(float64(v))*1e-5+1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantSignSymmetry(t *testing.T) {
	f := func(raw int16, d8 uint8) bool {
		delta := float32(d8%50+1) / 10
		v := float32(raw) / 8
		var qp, qn [1]int32
		QuantizeRow(qp[:], []float32{v}, delta)
		QuantizeRow(qn[:], []float32{-v}, delta)
		return qp[0] == -qn[0] // deadzone is symmetric around 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStepForTracksGain(t *testing.T) {
	// Deeper (higher-gain) bands must get finer steps.
	s1 := StepFor(DefaultBaseDelta, 5, dwt.HL, 1)
	s5 := StepFor(DefaultBaseDelta, 5, dwt.HL, 5)
	if s5 >= s1 {
		t.Fatalf("step not finer at deeper level: L1=%v L5=%v", s1, s5)
	}
	// And HH bands get coarser steps than HL at the same level.
	if StepFor(DefaultBaseDelta, 5, dwt.HH, 1) <= StepFor(DefaultBaseDelta, 5, dwt.HL, 1) {
		t.Fatal("HH step should be coarser than HL")
	}
}

func TestMaxBitplanesCoversRealCoefficients(t *testing.T) {
	for _, lv := range []int{1, 3, 5} {
		for _, o := range []dwt.Orient{dwt.LL, dwt.HL, dwt.LH, dwt.HH} {
			level := lv
			if o != dwt.LL {
				level = 1
			}
			mb := MaxBitplanes(8, DefaultBaseDelta, lv, o, level)
			if mb < 8 || mb > 24 {
				t.Errorf("MaxBitplanes(%v,l%d)=%d outside sane range", o, level, mb)
			}
		}
	}
}
