package t2

import (
	"testing"
	"testing/quick"

	"j2kcell/internal/workload"
)

func TestBitIORoundTrip(t *testing.T) {
	f := func(bits []bool) bool {
		var w BitWriter
		for _, b := range bits {
			v := 0
			if b {
				v = 1
			}
			w.WriteBit(v)
		}
		w.Align()
		r := NewBitReader(w.Bytes())
		for _, b := range bits {
			got, err := r.ReadBit()
			if err != nil {
				return false
			}
			want := 0
			if b {
				want = 1
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBitIOStuffing(t *testing.T) {
	// Sixteen 1-bits force a 0xFF byte; the writer must stuff the next
	// byte's MSB and the reader must undo it.
	var w BitWriter
	for i := 0; i < 30; i++ {
		w.WriteBit(1)
	}
	w.Align()
	data := w.Bytes()
	for i := 0; i+1 < len(data); i++ {
		if data[i] == 0xFF && data[i+1] >= 0x90 {
			t.Fatalf("unstuffed marker in header: % X", data)
		}
	}
	r := NewBitReader(data)
	for i := 0; i < 30; i++ {
		b, err := r.ReadBit()
		if err != nil || b != 1 {
			t.Fatalf("bit %d: %d err %v", i, b, err)
		}
	}
}

func TestBitIOAlignAfterFF(t *testing.T) {
	var w BitWriter
	w.WriteBits(0xFF, 8) // exactly one 0xFF byte
	w.Align()            // must append the stuffed zero byte
	if len(w.Bytes()) != 2 || w.Bytes()[1] != 0 {
		t.Fatalf("align after FF: % X", w.Bytes())
	}
	r := NewBitReader(w.Bytes())
	if v, _ := r.ReadBits(8); v != 0xFF {
		t.Fatalf("read back %#x", v)
	}
	r.Align()
	if r.Pos() != 2 {
		t.Fatalf("reader pos %d after align, want 2", r.Pos())
	}
}

func TestBitWriterBitsValues(t *testing.T) {
	var w BitWriter
	w.WriteBits(0b1011, 4)
	w.WriteBits(0b0110, 4)
	w.Align()
	if w.Bytes()[0] != 0xB6 {
		t.Fatalf("got %#x, want 0xB6", w.Bytes()[0])
	}
}

func TestTagTreeRoundTrip(t *testing.T) {
	f := func(seed uint32, w8, h8 uint8) bool {
		rng := workload.NewRNG(seed)
		tw, th := int(w8)%7+1, int(h8)%7+1
		vals := make([]int32, tw*th)
		for i := range vals {
			vals[i] = int32(rng.Intn(12))
		}
		enc := NewTagTree(tw, th)
		enc.Reset(0)
		for y := 0; y < th; y++ {
			for x := 0; x < tw; x++ {
				enc.SetValue(x, y, vals[y*tw+x])
			}
		}
		enc.Finish()
		var bw BitWriter
		for y := 0; y < th; y++ {
			for x := 0; x < tw; x++ {
				enc.Encode(&bw, x, y, vals[y*tw+x]+1)
			}
		}
		bw.Align()
		dec := NewTagTree(tw, th)
		dec.Reset(tagUnknown)
		br := NewBitReader(bw.Bytes())
		for y := 0; y < th; y++ {
			for x := 0; x < tw; x++ {
				got, err := dec.DecodeValue(br, x, y)
				if err != nil || got != vals[y*tw+x] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTagTreeSharedPrefixEfficiency(t *testing.T) {
	// All-equal values: the quad tree should code them in far fewer
	// bits than independent unary codes.
	const n = 8
	tt := NewTagTree(n, n)
	tt.Reset(0)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			tt.SetValue(x, y, 7)
		}
	}
	tt.Finish()
	var bw BitWriter
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			tt.Encode(&bw, x, y, 8)
		}
	}
	bw.Align()
	if got := len(bw.Bytes()); got > 20 {
		t.Fatalf("tag tree used %d bytes for 64 equal values", got)
	}
}

func TestNumPassesCode(t *testing.T) {
	for n := 1; n <= 164; n++ {
		var w BitWriter
		writeNumPasses(&w, n)
		w.Align()
		r := NewBitReader(w.Bytes())
		got, err := readNumPasses(r)
		if err != nil || got != n {
			t.Fatalf("numpasses %d decoded as %d (err %v)", n, got, err)
		}
	}
}

func TestNumPassesPanicsOver164(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 165 passes")
		}
	}()
	var w BitWriter
	writeNumPasses(&w, 165)
}

// buildPrecinct makes a random precinct with nblocks contributions.
func buildPrecinct(rng *workload.RNG, w, h int, style SegStyle) *Precinct {
	p := NewPrecinct(w, h)
	for i := range p.Blocks {
		if rng.Intn(4) == 0 {
			continue // not included
		}
		np := rng.Intn(20) + 1
		b := &BlockContrib{NumPasses: np, ZeroBP: rng.Intn(8)}
		total := 0
		if style == SegTermAll {
			for j := 0; j < np; j++ {
				l := rng.Intn(60) + 1
				b.Segments = append(b.Segments, Segment{Passes: 1, Len: l})
				total += l
			}
		} else {
			l := rng.Intn(900) + 1
			b.Segments = []Segment{{Passes: np, Len: l}}
			total = l
		}
		b.Data = make([]byte, total)
		for j := range b.Data {
			b.Data[j] = byte(rng.Intn(256))
		}
		p.Blocks[i] = b
		p.FirstIncl[i] = 0
		p.ZeroBPs[i] = int32(b.ZeroBP)
	}
	return p
}

func TestPacketRoundTrip(t *testing.T) {
	for _, style := range []SegStyle{SegSingle, SegTermAll} {
		rng := workload.NewRNG(42 + uint32(style))
		encP := []*Precinct{
			buildPrecinct(rng, 3, 2, style),
			buildPrecinct(rng, 1, 4, style),
			buildPrecinct(rng, 2, 2, style),
		}
		pkt := EncodePacket(encP, 0)

		decP := []*Precinct{NewPrecinct(3, 2), NewPrecinct(1, 4), NewPrecinct(2, 2)}
		n, err := DecodePacket(pkt, decP, 0, style)
		if err != nil {
			t.Fatalf("style %d: %v", style, err)
		}
		if n != len(pkt) {
			t.Fatalf("style %d: consumed %d of %d", style, n, len(pkt))
		}
		for pi, p := range encP {
			for i, eb := range p.Blocks {
				db := decP[pi].Blocks[i]
				if eb == nil {
					if db != nil && db.NumPasses != 0 {
						t.Fatalf("style %d: phantom block %d.%d", style, pi, i)
					}
					continue
				}
				if db.NumPasses != eb.NumPasses || db.ZeroBP != eb.ZeroBP {
					t.Fatalf("style %d blk %d.%d: got passes=%d zbp=%d want %d/%d",
						style, pi, i, db.NumPasses, db.ZeroBP, eb.NumPasses, eb.ZeroBP)
				}
				if len(db.Segments) != len(eb.Segments) {
					t.Fatalf("segment count mismatch")
				}
				for j := range db.Segments {
					if db.Segments[j].Len != eb.Segments[j].Len {
						t.Fatalf("segment %d length %d want %d", j, db.Segments[j].Len, eb.Segments[j].Len)
					}
				}
				if string(db.Data) != string(eb.Data) {
					t.Fatalf("style %d blk %d.%d: body bytes differ", style, pi, i)
				}
			}
		}
	}
}

func TestEmptyPacket(t *testing.T) {
	p := NewPrecinct(2, 2)
	pkt := EncodePacket([]*Precinct{p}, 0)
	if len(pkt) != 1 || pkt[0] != 0 {
		t.Fatalf("empty packet: % X", pkt)
	}
	dp := NewPrecinct(2, 2)
	n, err := DecodePacket(pkt, []*Precinct{dp}, 0, SegSingle)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	for _, b := range dp.Blocks {
		if b != nil && b.NumPasses != 0 {
			t.Fatal("empty packet produced inclusions")
		}
	}
}

func TestEmptyBandPrecinct(t *testing.T) {
	// Zero-area bands appear at deep decomposition levels.
	p := NewPrecinct(0, 0)
	rng := workload.NewRNG(1)
	q := buildPrecinct(rng, 2, 1, SegSingle)
	pkt := EncodePacket([]*Precinct{p, q}, 0)
	dp, dq := NewPrecinct(0, 0), NewPrecinct(2, 1)
	if _, err := DecodePacket(pkt, []*Precinct{dp, dq}, 0, SegSingle); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncatedPacketErrors(t *testing.T) {
	rng := workload.NewRNG(9)
	p := buildPrecinct(rng, 2, 2, SegSingle)
	pkt := EncodePacket([]*Precinct{p}, 0)
	dp := NewPrecinct(2, 2)
	if _, err := DecodePacket(pkt[:len(pkt)/2], []*Precinct{dp}, 0, SegSingle); err == nil {
		t.Fatal("truncated packet accepted")
	}
}

func TestPropPacketRoundTrip(t *testing.T) {
	f := func(seed uint32, style8 uint8) bool {
		style := SegStyle(style8 % 2)
		rng := workload.NewRNG(seed)
		w, h := rng.Intn(4)+1, rng.Intn(4)+1
		enc := buildPrecinct(rng, w, h, style)
		pkt := EncodePacket([]*Precinct{enc}, 0)
		dec := NewPrecinct(w, h)
		n, err := DecodePacket(pkt, []*Precinct{dec}, 0, style)
		if err != nil || n != len(pkt) {
			return false
		}
		for i, eb := range enc.Blocks {
			db := dec.Blocks[i]
			if eb == nil {
				if db != nil && db.NumPasses != 0 {
					return false
				}
				continue
			}
			if db.NumPasses != eb.NumPasses || db.ZeroBP != eb.ZeroBP || string(db.Data) != string(eb.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiLayerPacketRoundTrip(t *testing.T) {
	// Three blocks: included at layers 0, 1, and never.
	const layers = 3
	enc := NewPrecinct(3, 1)
	layerContribs := make([][]*BlockContrib, layers)
	mk := func(passes int, seed byte) *BlockContrib {
		b := &BlockContrib{NumPasses: passes}
		total := 0
		for j := 0; j < passes; j++ {
			b.Segments = append(b.Segments, Segment{Passes: 1, Len: 5 + j})
			total += 5 + j
		}
		b.Data = make([]byte, total)
		for i := range b.Data {
			b.Data[i] = seed + byte(i)
		}
		return b
	}
	enc.FirstIncl[0] = 0
	enc.ZeroBPs[0] = 2
	enc.FirstIncl[1] = 1
	enc.ZeroBPs[1] = 4
	layerContribs[0] = []*BlockContrib{mk(2, 10), nil, nil}
	layerContribs[1] = []*BlockContrib{mk(3, 20), mk(1, 30), nil}
	layerContribs[2] = []*BlockContrib{nil, mk(2, 40), nil}

	var pkts [][]byte
	for l := 0; l < layers; l++ {
		copy(enc.Blocks, layerContribs[l])
		pkts = append(pkts, EncodePacket([]*Precinct{enc}, l))
	}

	dec := NewPrecinct(3, 1)
	gotPasses := [3]int{}
	var gotZBP [3]int
	var gotData [3][]byte
	for l := 0; l < layers; l++ {
		n, err := DecodePacket(pkts[l], []*Precinct{dec}, l, SegTermAll)
		if err != nil {
			t.Fatalf("layer %d: %v", l, err)
		}
		if n != len(pkts[l]) {
			t.Fatalf("layer %d: consumed %d of %d", l, n, len(pkts[l]))
		}
		for i, b := range dec.Blocks {
			if b == nil || b.NumPasses == 0 {
				continue
			}
			if gotPasses[i] == 0 {
				gotZBP[i] = b.ZeroBP
			}
			gotPasses[i] += b.NumPasses
			gotData[i] = append(gotData[i], b.Data...)
		}
	}
	if gotPasses[0] != 5 || gotPasses[1] != 3 || gotPasses[2] != 0 {
		t.Fatalf("accumulated passes %v", gotPasses)
	}
	if gotZBP[0] != 2 || gotZBP[1] != 4 {
		t.Fatalf("zero bitplanes %v", gotZBP)
	}
	want0 := append(append([]byte{}, layerContribs[0][0].Data...), layerContribs[1][0].Data...)
	if string(gotData[0]) != string(want0) {
		t.Fatal("block 0 data mismatch across layers")
	}
	want1 := append(append([]byte{}, layerContribs[1][1].Data...), layerContribs[2][1].Data...)
	if string(gotData[1]) != string(want1) {
		t.Fatal("block 1 data mismatch across layers")
	}
}

func TestEPHPacketRoundTrip(t *testing.T) {
	rng := workload.NewRNG(55)
	enc := buildPrecinct(rng, 2, 2, SegTermAll)
	pkt := EncodePacketEPH([]*Precinct{enc}, 0, true)
	dec := NewPrecinct(2, 2)
	n, err := DecodePacketEPH(pkt, []*Precinct{dec}, 0, SegTermAll, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(pkt) {
		t.Fatalf("consumed %d of %d", n, len(pkt))
	}
	// A stream without EPH must be rejected by an EPH-expecting decoder.
	plain := EncodePacket([]*Precinct{buildPrecinct(workload.NewRNG(55), 2, 2, SegTermAll)}, 0)
	if _, err := DecodePacketEPH(plain, []*Precinct{NewPrecinct(2, 2)}, 0, SegTermAll, true); err == nil {
		t.Fatal("missing EPH accepted")
	}
	// Empty packets carry EPH too.
	empty := EncodePacketEPH([]*Precinct{NewPrecinct(1, 1)}, 0, true)
	if len(empty) != 3 {
		t.Fatalf("empty EPH packet: % X", empty)
	}
	if _, err := DecodePacketEPH(empty, []*Precinct{NewPrecinct(1, 1)}, 0, SegTermAll, true); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyPacketClearsStaleContribs pins the layered-decode contract:
// an empty packet at layer l must leave every block reporting zero
// contributions, even when layer l-1 filled the same precinct's Blocks.
// Before the fix, the empty-packet early return skipped the reset and a
// caller accumulating per-layer contributions double-counted layer
// l-1's passes and bytes.
func TestEmptyPacketClearsStaleContribs(t *testing.T) {
	rng := workload.NewRNG(99)
	encP := []*Precinct{buildPrecinct(rng, 2, 2, SegTermAll)}
	pkt0 := EncodePacket(encP, 0)
	// Layer 1: no block contributes anything further.
	for _, b := range encP[0].Blocks {
		if b != nil {
			b.NumPasses = 0
		}
	}
	pkt1 := EncodePacket(encP, 1)

	dp := []*Precinct{NewPrecinct(2, 2)}
	if _, err := DecodePacket(pkt0, dp, 0, SegTermAll); err != nil {
		t.Fatal(err)
	}
	saw := 0
	for _, b := range dp[0].Blocks {
		if b != nil && b.NumPasses > 0 {
			saw++
		}
	}
	if saw == 0 {
		t.Fatal("layer 0 packet carried no contributions; test needs a busier precinct")
	}
	if _, err := DecodePacket(pkt1, dp, 1, SegTermAll); err != nil {
		t.Fatal(err)
	}
	for i, b := range dp[0].Blocks {
		if b != nil && (b.NumPasses != 0 || len(b.Data) != 0) {
			t.Fatalf("block %d: stale layer-0 contribution (passes=%d, %d bytes) survived an empty layer-1 packet",
				i, b.NumPasses, len(b.Data))
		}
	}
}
