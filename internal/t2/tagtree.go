package t2

// TagTree is the quad-tree code of T.800 Annex B.10.2, used in packet
// headers to code code-block inclusion and the number of missing
// (all-zero) most significant bit planes. Each leaf corresponds to one
// code block; internal nodes hold the minimum of their children, and
// the coder emits only the increments needed at each threshold.
type TagTree struct {
	w, h   int
	nodes  []tagNode
	leaf0  int // index of the first leaf in nodes
	levels int
}

type tagNode struct {
	parent int // -1 at root
	value  int32
	low    int32
	known  bool
}

// NewTagTree builds a tree over a w×h grid of leaves.
func NewTagTree(w, h int) *TagTree {
	// invariant: only reachable through NewPrecinct, which skips tree
	// construction entirely for empty (w or h zero) precincts.
	if w <= 0 || h <= 0 {
		panic("t2: empty tag tree")
	}
	t := &TagTree{w: w, h: h}
	// Build level sizes from leaves up to the 1x1 root.
	type lvl struct{ w, h, base int }
	var lv []lvl
	lw, lh, base := w, h, 0
	for {
		lv = append(lv, lvl{lw, lh, base})
		base += lw * lh
		if lw == 1 && lh == 1 {
			break
		}
		lw, lh = (lw+1)/2, (lh+1)/2
	}
	t.levels = len(lv)
	t.nodes = make([]tagNode, base)
	t.leaf0 = 0
	for li := 0; li < len(lv); li++ {
		cur := lv[li]
		for y := 0; y < cur.h; y++ {
			for x := 0; x < cur.w; x++ {
				idx := cur.base + y*cur.w + x
				if li == len(lv)-1 {
					t.nodes[idx].parent = -1
				} else {
					up := lv[li+1]
					t.nodes[idx].parent = up.base + (y/2)*up.w + (x / 2)
				}
			}
		}
	}
	return t
}

// Reset clears coding state and sets every leaf value to v.
func (t *TagTree) Reset(v int32) {
	for i := range t.nodes {
		t.nodes[i].value = v
		t.nodes[i].low = 0
		t.nodes[i].known = false
	}
}

// SetValue assigns the value of leaf (x, y). Internal nodes are updated
// lazily by Finish.
func (t *TagTree) SetValue(x, y int, v int32) {
	t.nodes[y*t.w+x].value = v
}

// Finish propagates leaf values up: each internal node becomes the
// minimum of its children. Call once after all SetValue calls.
func (t *TagTree) Finish() {
	// Zero out internals first (they may hold Reset values).
	for i := t.w * t.h; i < len(t.nodes); i++ {
		t.nodes[i].value = 1 << 30
	}
	for i := 0; i < t.w*t.h; i++ {
		v := t.nodes[i].value
		for p := t.nodes[i].parent; p != -1; p = t.nodes[p].parent {
			if v < t.nodes[p].value {
				t.nodes[p].value = v
			} else {
				break
			}
		}
	}
}

// path returns the node indices from root down to leaf (x, y).
func (t *TagTree) path(x, y int) []int {
	var rev []int
	i := y*t.w + x
	for i != -1 {
		rev = append(rev, i)
		i = t.nodes[i].parent
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// Encode emits the bits that let a decoder determine whether the leaf's
// value is < threshold (and, cumulatively over growing thresholds, the
// exact value).
func (t *TagTree) Encode(w *BitWriter, x, y int, threshold int32) {
	low := int32(0)
	for _, ni := range t.path(x, y) {
		n := &t.nodes[ni]
		if low > n.low {
			n.low = low
		} else {
			low = n.low
		}
		for low < threshold {
			if low >= n.value {
				if !n.known {
					w.WriteBit(1)
					n.known = true
				}
				break
			}
			w.WriteBit(0)
			low++
		}
		n.low = low
	}
}

// Decode consumes bits until it can report whether the leaf's value is
// < threshold.
func (t *TagTree) Decode(r *BitReader, x, y int, threshold int32) (bool, error) {
	low := int32(0)
	var leaf *tagNode
	for _, ni := range t.path(x, y) {
		n := &t.nodes[ni]
		if low > n.low {
			n.low = low
		} else {
			low = n.low
		}
		for low < threshold && low < n.value {
			bit, err := r.ReadBit()
			if err != nil {
				return false, err
			}
			if bit == 1 {
				n.value = low
				n.known = true
				break
			}
			low++
		}
		n.low = low
		leaf = n
	}
	return leaf.value < threshold, nil
}

// DecodeValue reads the exact leaf value by raising the threshold until
// the comparison resolves.
func (t *TagTree) DecodeValue(r *BitReader, x, y int) (int32, error) {
	th := int32(1)
	for {
		less, err := t.Decode(r, x, y, th)
		if err != nil {
			return 0, err
		}
		if less {
			return th - 1, nil
		}
		th++
	}
}
