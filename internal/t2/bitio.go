package t2

import "fmt"

// BitWriter writes packet-header bits MSB-first with JPEG2000 bit
// stuffing: after emitting a 0xFF byte, only seven bits go into the
// next byte (its MSB is forced to 0), so no 0xFF90+ marker can appear
// inside a header.
type BitWriter struct {
	buf  []byte
	acc  uint32
	nacc int // bits accumulated in acc
	last byte
}

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(b int) {
	limit := 8
	if w.last == 0xFF {
		limit = 7
	}
	w.acc = w.acc<<1 | uint32(b&1)
	w.nacc++
	if w.nacc == limit {
		w.flushByte(limit)
	}
}

func (w *BitWriter) flushByte(limit int) {
	v := byte(w.acc)
	if limit == 7 {
		v &= 0x7F
	}
	w.buf = append(w.buf, v)
	w.last = v
	w.acc, w.nacc = 0, 0
}

// WriteBits appends the low n bits of v, MSB first.
func (w *BitWriter) WriteBits(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(int(v>>uint(i)) & 1)
	}
}

// Align pads with zero bits to the next byte boundary (and resolves a
// trailing 0xFF with a stuffed zero byte, per the standard).
func (w *BitWriter) Align() {
	if w.nacc > 0 {
		limit := 8
		if w.last == 0xFF {
			limit = 7
		}
		w.acc <<= uint(limit - w.nacc)
		w.nacc = limit
		w.flushByte(limit)
	}
	if w.last == 0xFF {
		w.buf = append(w.buf, 0)
		w.last = 0
	}
}

// Bytes returns the written bytes (valid until further writes).
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitReader mirrors BitWriter over a byte slice.
type BitReader struct {
	data []byte
	pos  int
	acc  byte
	nacc int
	last byte
}

// NewBitReader reads bits from data.
func NewBitReader(data []byte) *BitReader { return &BitReader{data: data} }

// ReadBit returns the next bit, or an error at end of data.
func (r *BitReader) ReadBit() (int, error) {
	if r.nacc == 0 {
		if r.pos >= len(r.data) {
			return 0, fmt.Errorf("t2: bit reader exhausted at byte %d", r.pos)
		}
		raw := r.data[r.pos]
		r.pos++
		if r.last == 0xFF {
			r.nacc = 7 // stuffed byte: MSB was forced to zero
			r.acc = raw << 1
		} else {
			r.nacc = 8
			r.acc = raw
		}
		r.last = raw
	}
	bit := int(r.acc>>7) & 1
	r.acc <<= 1
	r.nacc--
	return bit, nil
}

// ReadBits reads n bits MSB-first.
func (r *BitReader) ReadBits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint32(b)
	}
	return v, nil
}

// Align skips to the next byte boundary, consuming the stuffed byte
// after a 0xFF exactly as Align on the writer produced it.
func (r *BitReader) Align() {
	r.acc, r.nacc = 0, 0
	if r.last == 0xFF {
		if r.pos < len(r.data) {
			r.pos++
		}
		r.last = 0
	}
}

// Pos returns the current byte offset (after Align).
func (r *BitReader) Pos() int { return r.pos }
