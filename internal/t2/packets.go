// Package t2 implements EBCOT Tier-2 (T.800 Annex B): tag trees,
// packet headers, and packet assembly. One packet carries one layer of
// one resolution of one component (whole-band precincts), ordered LRCP.
// Multiple quality layers are supported: first inclusion is coded
// through the inclusion tag tree against the layer index, later
// contributions with a single raw bit, and the per-block Lblock state
// persists across layers.
package t2

import "fmt"

// Segment is one terminated codeword segment of a block's contribution:
// Passes coding passes whose bytes span Len.
type Segment struct {
	Passes, Len int
}

// BlockContrib is one code block's contribution to one packet (layer).
// NumPasses == 0 means the block contributes nothing in this layer.
type BlockContrib struct {
	NumPasses int
	ZeroBP    int       // missing MSB planes, signaled on first inclusion
	Segments  []Segment // ModeTermAll: one per pass; ModeSingle: one total
	Data      []byte    // encoder in, decoder out (slice of packet body)
}

// Precinct is the per-band coding state: the block grid with its
// inclusion and zero-bitplane tag trees, per-block Lblock registers,
// and inclusion state — all persistent across the layers of one encode
// or decode.
type Precinct struct {
	W, H   int
	Blocks []*BlockContrib // this layer's contributions (raster order)
	// FirstIncl must be set by the encoder before the first packet:
	// the layer at which each block first contributes (NeverIncluded
	// for blocks with no contribution in any layer). Decoders leave it
	// untouched.
	FirstIncl []int32
	// ZeroBPs must likewise be set by the encoder for every block that
	// is included in any layer: the missing-MSB count signaled at first
	// inclusion.
	ZeroBPs []int32

	incl     *TagTree
	zbp      *TagTree
	lblock   []int32
	included []bool
	prepared bool
}

// NeverIncluded marks a block that appears in no layer.
const NeverIncluded = int32(1) << 28

// NewPrecinct creates the coding state for a w×h grid of blocks.
// w or h may be zero for empty bands.
func NewPrecinct(w, h int) *Precinct {
	p := &Precinct{W: w, H: h}
	if w > 0 && h > 0 {
		p.Blocks = make([]*BlockContrib, w*h)
		p.FirstIncl = make([]int32, w*h)
		p.ZeroBPs = make([]int32, w*h)
		for i := range p.FirstIncl {
			p.FirstIncl[i] = NeverIncluded
		}
		p.incl = NewTagTree(w, h)
		p.zbp = NewTagTree(w, h)
		p.lblock = make([]int32, w*h)
		p.included = make([]bool, w*h)
		for i := range p.lblock {
			p.lblock[i] = 3
		}
	}
	return p
}

const tagUnknown = 1 << 29

// prepareEncode loads the tag trees once, before the first layer.
func (p *Precinct) prepareEncode() {
	if p.incl == nil || p.prepared {
		return
	}
	p.prepared = true
	p.incl.Reset(0)
	p.zbp.Reset(0)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			i := y*p.W + x
			p.incl.SetValue(x, y, p.FirstIncl[i])
			if p.FirstIncl[i] != NeverIncluded {
				p.zbp.SetValue(x, y, p.ZeroBPs[i])
			} else {
				p.zbp.SetValue(x, y, tagUnknown)
			}
		}
	}
	p.incl.Finish()
	p.zbp.Finish()
}

func (p *Precinct) prepareDecode() {
	if p.incl == nil || p.prepared {
		return
	}
	p.prepared = true
	p.incl.Reset(tagUnknown)
	p.zbp.Reset(tagUnknown)
}

// floorLog2 returns floor(log2(n)) for n >= 1.
func floorLog2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

func bitLen(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// writeNumPasses emits the Table B.4 variable-length code (1..164).
func writeNumPasses(w *BitWriter, n int) {
	switch {
	case n == 1:
		w.WriteBit(0)
	case n == 2:
		w.WriteBits(0b10, 2)
	case n <= 5:
		w.WriteBits(0b11, 2)
		w.WriteBits(uint32(n-3), 2)
	case n <= 36:
		w.WriteBits(0b11, 2)
		w.WriteBits(3, 2)
		w.WriteBits(uint32(n-6), 5)
	case n <= 164:
		w.WriteBits(0b11, 2)
		w.WriteBits(3, 2)
		w.WriteBits(31, 5)
		w.WriteBits(uint32(n-37), 7)
	default:
		// invariant: encode-side only — Tier-1 produces at most 3*NumBPS-2
		// passes and NumBPS <= 56 is bounded by 32-bit coefficients, well
		// under the 164-pass ceiling of the packet-header code.
		panic(fmt.Sprintf("t2: %d passes exceed the 164 the header can code", n))
	}
}

func readNumPasses(r *BitReader) (int, error) {
	b, err := r.ReadBit()
	if err != nil {
		return 0, err
	}
	if b == 0 {
		return 1, nil
	}
	if b, err = r.ReadBit(); err != nil {
		return 0, err
	}
	if b == 0 {
		return 2, nil
	}
	v, err := r.ReadBits(2)
	if err != nil {
		return 0, err
	}
	if v < 3 {
		return 3 + int(v), nil
	}
	if v, err = r.ReadBits(5); err != nil {
		return 0, err
	}
	if v < 31 {
		return 6 + int(v), nil
	}
	if v, err = r.ReadBits(7); err != nil {
		return 0, err
	}
	return 37 + int(v), nil
}

// writeLengths emits the Lblock commas and segment lengths.
func writeLengths(w *BitWriter, lb *int32, segs []Segment) {
	for {
		ok := true
		for _, s := range segs {
			if bitLen(s.Len) > int(*lb)+floorLog2(s.Passes) {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		w.WriteBit(1)
		*lb++
	}
	w.WriteBit(0)
	for _, s := range segs {
		w.WriteBits(uint32(s.Len), int(*lb)+floorLog2(s.Passes))
	}
}

// EncodePacket writes the packet for one resolution at the given layer:
// the header coding every band's block grid, then the concatenated
// block bodies. Precinct state (tag trees, Lblock, inclusion) persists
// across calls with increasing layer.
func EncodePacket(precincts []*Precinct, layer int) []byte {
	return EncodePacketEPH(precincts, layer, false)
}

// EncodePacketEPH is EncodePacket with an optional EPH (end of packet
// header, FF92) marker between the header and the body — the
// error-resilience aid that lets a decoder confirm the header/body
// boundary.
func EncodePacketEPH(precincts []*Precinct, layer int, eph bool) []byte {
	var w BitWriter
	nonEmpty := false
	for _, p := range precincts {
		for _, b := range p.Blocks {
			if b != nil && b.NumPasses > 0 {
				nonEmpty = true
			}
		}
	}
	if !nonEmpty {
		w.WriteBit(0)
		w.Align()
		out := w.Bytes()
		if eph {
			out = append(out, 0xFF, 0x92)
		}
		return out
	}
	w.WriteBit(1)
	for _, p := range precincts {
		p.prepareEncode()
		for y := 0; y < p.H; y++ {
			for x := 0; x < p.W; x++ {
				i := y*p.W + x
				b := p.Blocks[i]
				contributes := b != nil && b.NumPasses > 0
				if p.included[i] {
					// Previously included: one raw bit.
					bit := 0
					if contributes {
						bit = 1
					}
					w.WriteBit(bit)
				} else {
					p.incl.Encode(&w, x, y, int32(layer)+1)
					if !contributes {
						continue
					}
					// First inclusion: signal missing bit planes.
					p.zbp.Encode(&w, x, y, p.ZeroBPs[i]+1)
					p.included[i] = true
				}
				if !contributes {
					continue
				}
				writeNumPasses(&w, b.NumPasses)
				writeLengths(&w, &p.lblock[i], b.Segments)
			}
		}
	}
	w.Align()
	out := w.Bytes()
	if eph {
		out = append(out, 0xFF, 0x92)
	}
	for _, p := range precincts {
		for _, b := range p.Blocks {
			if b != nil && b.NumPasses > 0 {
				out = append(out, b.Data...)
			}
		}
	}
	return out
}

// SegStyle tells the decoder how passes map to terminated segments.
type SegStyle int

// Segment styles (mirror t1.Mode).
const (
	SegSingle  SegStyle = iota // one segment holding all passes
	SegTermAll                 // one segment per pass
)

// DecodePacket parses one packet at the given layer from data, filling
// each precinct's block contributions for this layer (NumPasses,
// ZeroBP, Segments, Data sub-slices). It returns the bytes consumed.
// Precinct state must persist across layers.
func DecodePacket(data []byte, precincts []*Precinct, layer int, style SegStyle) (int, error) {
	return DecodePacketEPH(data, precincts, layer, style, false)
}

// DecodePacketEPH is DecodePacket for streams carrying EPH markers: the
// FF92 after the header is verified and consumed, catching header
// corruption before any body bytes are attributed.
func DecodePacketEPH(data []byte, precincts []*Precinct, layer int, style SegStyle, eph bool) (int, error) {
	r := NewBitReader(data)
	ne, err := r.ReadBit()
	if err != nil {
		return 0, err
	}
	if ne == 0 {
		// An empty packet still defines this layer's contributions:
		// none. Clear any contribution state left from the previous
		// layer, or a caller iterating Blocks after each packet would
		// double-count the stale entries.
		for _, p := range precincts {
			for _, b := range p.Blocks {
				if b != nil {
					b.NumPasses = 0
					b.Segments = b.Segments[:0]
					b.Data = nil
				}
			}
		}
		r.Align()
		n := r.Pos()
		if eph {
			if n+2 > len(data) || data[n] != 0xFF || data[n+1] != 0x92 {
				return 0, fmt.Errorf("t2: missing EPH after empty packet header")
			}
			n += 2
		}
		return n, nil
	}
	var order []*BlockContrib
	for _, p := range precincts {
		p.prepareDecode()
		for y := 0; y < p.H; y++ {
			for x := 0; x < p.W; x++ {
				i := y*p.W + x
				b := p.Blocks[i]
				if b == nil {
					b = &BlockContrib{}
					p.Blocks[i] = b
				}
				b.NumPasses = 0
				b.Segments = b.Segments[:0]
				b.Data = nil
				if p.included[i] {
					bit, err := r.ReadBit()
					if err != nil {
						return 0, err
					}
					if bit == 0 {
						continue
					}
				} else {
					incl, err := p.incl.Decode(r, x, y, int32(layer)+1)
					if err != nil {
						return 0, err
					}
					if !incl {
						continue
					}
					zbp, err := p.zbp.DecodeValue(r, x, y)
					if err != nil {
						return 0, err
					}
					b.ZeroBP = int(zbp)
					p.included[i] = true
				}
				if b.NumPasses, err = readNumPasses(r); err != nil {
					return 0, err
				}
				lb := &p.lblock[i]
				for {
					bit, err := r.ReadBit()
					if err != nil {
						return 0, err
					}
					if bit == 0 {
						break
					}
					*lb++
				}
				segs := []Segment{{Passes: b.NumPasses}}
				if style == SegTermAll {
					segs = segs[:0]
					for j := 0; j < b.NumPasses; j++ {
						segs = append(segs, Segment{Passes: 1})
					}
				}
				for j := range segs {
					v, err := r.ReadBits(int(*lb) + floorLog2(segs[j].Passes))
					if err != nil {
						return 0, err
					}
					segs[j].Len = int(v)
				}
				b.Segments = segs
				order = append(order, b)
			}
		}
	}
	r.Align()
	off := r.Pos()
	if eph {
		if off+2 > len(data) || data[off] != 0xFF || data[off+1] != 0x92 {
			return 0, fmt.Errorf("t2: missing EPH after packet header")
		}
		off += 2
	}
	for _, b := range order {
		n := 0
		for _, s := range b.Segments {
			n += s.Len
		}
		if off+n > len(data) {
			return 0, fmt.Errorf("t2: packet body truncated: need %d bytes at %d of %d", n, off, len(data))
		}
		b.Data = data[off : off+n]
		off += n
	}
	return off, nil
}
