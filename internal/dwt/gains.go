package dwt

import (
	"math"
	"sync"

	"j2kcell/internal/obs"
)

// Subband synthesis L2 gains. Rate control weighs the distortion
// contribution of a coefficient error by the L2 norm of that
// coefficient's synthesis basis vector; quantization step sizes divide
// by the same norms. Rather than hard-coding the usual tables, the
// norms are measured numerically: place a unit coefficient in the
// middle of a subband of a sufficiently large plane, run a linearized
// float64 inverse transform (the 5/3 without its floor rounding, and
// the 9/7 as-is), and take the L2 norm of the reconstruction.

// Filter selects the wavelet for gain computation.
type Filter int

// Supported filters.
const (
	W53 Filter = iota
	W97
)

type gainKey struct {
	f      Filter
	levels int
}

var (
	gainMu    sync.Mutex
	gainCache = map[gainKey]map[Orient][]float64{}
)

// WarmGains precomputes the gain table for one filter/level pair. The
// parallel encoders call it from the coordinator before launching
// workers: the lazy first touch otherwise lands inside one worker's
// Tier-1 span and serializes every other worker on gainMu for the
// hundreds of ms the numeric measurement takes.
func WarmGains(f Filter, levels int) { BandGain(f, levels, LL, levels) }

// WarmGainsObs is WarmGains recording a possible calibration span on an
// explicit recorder (nil-safe), so a per-operation recorder attributes
// the one-time measurement to the operation that triggered it.
func WarmGainsObs(f Filter, levels int, rec *obs.Recorder) {
	bandGainObs(f, levels, LL, levels, rec)
}

// BandGain returns the synthesis L2 norm for a subband of the given
// orientation at the given level under `levels` total decompositions.
// For orientation LL only level == levels is meaningful.
func BandGain(f Filter, levels int, o Orient, level int) float64 {
	return bandGainObs(f, levels, o, level, obs.Active())
}

func bandGainObs(f Filter, levels int, o Orient, level int, rec *obs.Recorder) float64 {
	gainMu.Lock()
	defer gainMu.Unlock()
	key := gainKey{f, levels}
	g, ok := gainCache[key]
	if !ok {
		// Cache miss: the numeric norm measurement runs 16 inverse
		// transforms over a (32<<levels)² plane — hundreds of ms of
		// one-time serial work, worth its own span so first-encode
		// reports attribute it instead of showing anonymous serial time.
		ln := rec.Acquire()
		sp := ln.Begin(obs.StageCalib, int32(levels), int32(f))
		g = computeGains(f, levels)
		sp.End()
		ln.Release()
		gainCache[key] = g
	}
	return g[o][level]
}

// Measurement strategy bounds. The plane measurement costs O(4^levels)
// time and memory — gigabytes past level 9, while the COD field admits
// up to 32 — so deep tables switch to the separable construction: the
// 2-D synthesis basis of one coefficient is the outer product of two
// 1-D bases, its L2 norm the product of two 1-D norms, each measurable
// on a single line in O(2^level). Past gain1DLevels even the line is
// too long; the per-level growth ratio has converged by then, so the
// tail extrapolates geometrically. Only hostile or foreign streams
// carry that many levels.
const (
	gain2DLevels = 6  // plane measurement: bit-identical to the original tables
	gain1DLevels = 16 // direct line measurement; geometric extrapolation beyond
)

func computeGains(f Filter, levels int) map[Orient][]float64 {
	if levels <= gain2DLevels {
		return computeGains2D(f, levels)
	}
	return computeGainsSep(f, levels)
}

// computeGainsSep builds the table from separable 1-D synthesis norms:
// gain(HL,l) = gH(l)·gL(l), gain(HH,l) = gH(l)², gain(LL) = gL(levels)².
func computeGainsSep(f Filter, levels int) map[Orient][]float64 {
	out := map[Orient][]float64{
		LL: make([]float64, levels+1),
		HL: make([]float64, levels+1),
		LH: make([]float64, levels+1),
		HH: make([]float64, levels+1),
	}
	ml := levels
	if ml > gain1DLevels {
		ml = gain1DLevels
	}
	data := make([]float64, 32<<uint(ml))
	lineNorm := func(buf []float64, pos, lv int) float64 {
		for i := range buf {
			buf[i] = 0
		}
		buf[pos] = 1
		inverseLinear(f, buf, len(buf), 1, len(buf), lv)
		var ss float64
		for _, v := range buf {
			ss += v * v
		}
		return math.Sqrt(ss)
	}
	gL := make([]float64, levels+1)
	gH := make([]float64, levels+1)
	gL[0] = 1
	for l := 1; l <= ml; l++ {
		// A level-l basis needs only a 32<<l line: after l inverse
		// steps its low band is [0,32) and high band [32,64), and the
		// ~8·2^l-sample support sits interior with the same margin the
		// plane measurement gives its deepest band.
		buf := data[:32<<uint(l)]
		gL[l] = lineNorm(buf, 16, l)
		gH[l] = lineNorm(buf, 48, l)
	}
	for l := ml + 1; l <= levels; l++ {
		gL[l] = gL[l-1] * (gL[ml] / gL[ml-1])
		gH[l] = gH[l-1] * (gH[ml] / gH[ml-1])
	}
	for l := 1; l <= levels; l++ {
		out[HL][l] = gH[l] * gL[l]
		out[LH][l] = gL[l] * gH[l]
		out[HH][l] = gH[l] * gH[l]
	}
	out[LL][levels] = gL[levels] * gL[levels]
	return out
}

// computeGains2D measures norms on a plane just large enough that the
// deepest band still has an interior coefficient.
func computeGains2D(f Filter, levels int) map[Orient][]float64 {
	n := 32 << levels
	out := map[Orient][]float64{
		LL: make([]float64, levels+1),
		HL: make([]float64, levels+1),
		LH: make([]float64, levels+1),
		HH: make([]float64, levels+1),
	}
	data := make([]float64, n*n)
	measure := func(x0, y0, w, h int) float64 {
		for i := range data {
			data[i] = 0
		}
		data[(y0+h/2)*n+(x0+w/2)] = 1
		inverseLinear(f, data, n, n, n, levels)
		var ss float64
		for _, v := range data {
			ss += v * v
		}
		return math.Sqrt(ss)
	}
	for _, b := range Layout(n, n, levels) {
		out[b.Orient][b.Level] = measure(b.X0, b.Y0, b.W, b.H)
	}
	return out
}

// inverseLinear runs a float64 inverse transform without integer
// rounding — the linear system whose basis norms we want.
func inverseLinear(f Filter, data []float64, w, h, stride, levels int) {
	maxd := w
	if h > maxd {
		maxd = h
	}
	tmp := make([]float64, maxd)
	col := make([]float64, maxd)
	for l := levels - 1; l >= 0; l-- {
		lw, lh := levelDim(w, l), levelDim(h, l)
		if lw <= 1 && lh <= 1 {
			continue
		}
		if lw > 1 {
			for r := 0; r < lh; r++ {
				invLine64(f, data[r*stride:r*stride+lw], tmp)
			}
		}
		if lh > 1 {
			for c := 0; c < lw; c++ {
				for r := 0; r < lh; r++ {
					col[r] = data[r*stride+c]
				}
				invLine64(f, col[:lh], tmp)
				for r := 0; r < lh; r++ {
					data[r*stride+c] = col[r]
				}
			}
		}
	}
}

// invLine64 is the 1-D inverse in float64: exact lifting inverses with
// the 5/3 floors replaced by their linear counterparts.
func invLine64(f Filter, x []float64, tmp []float64) {
	n := len(x)
	if n <= 1 {
		return
	}
	nl, nh := (n+1)/2, n/2
	low, high := tmp[:nl], tmp[nl:n]
	copy(low, x[:nl])
	copy(high, x[nl:n])
	cd := func(k int) float64 {
		if k < 0 {
			k = 0
		}
		if k > nh-1 {
			k = nh - 1
		}
		return high[k]
	}
	ce := func(k int) float64 {
		if k > nl-1 {
			k = nl - 1
		}
		return low[k]
	}
	switch f {
	case W53:
		for k := 0; k < nl; k++ {
			low[k] -= (cd(k-1) + cd(k)) / 4
		}
		for k := 0; k < nh; k++ {
			high[k] += (ce(k) + ce(k+1)) / 2
		}
	case W97:
		for k := range low {
			low[k] *= K97
		}
		for k := range high {
			high[k] *= InvK97
		}
		for k := 0; k < nl; k++ {
			low[k] -= Delta97 * (cd(k-1) + cd(k))
		}
		for k := 0; k < nh; k++ {
			high[k] -= Gamma97 * (ce(k) + ce(k+1))
		}
		for k := 0; k < nl; k++ {
			low[k] -= Beta97 * (cd(k-1) + cd(k))
		}
		for k := 0; k < nh; k++ {
			high[k] -= Alpha97 * (ce(k) + ce(k+1))
		}
	}
	for k := 0; k < nl; k++ {
		x[2*k] = low[k]
	}
	for k := 0; k < nh; k++ {
		x[2*k+1] = high[k]
	}
}
