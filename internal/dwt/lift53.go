package dwt

import "j2kcell/internal/simd"

// Row-vector lifting primitives for the reversible 5/3 transform. Each
// treats whole rows as the "samples" of the lifting recurrence; the SPE
// kernels in internal/core reuse these on Local Store buffers so the
// parallel encoder is arithmetic-identical to this reference. The row
// bodies dispatch through the simd kernel layer; the vector forms use
// the same wrapping adds and arithmetic shifts, so they are exact.

// Lift53High applies d[i] -= (e0[i] + e1[i]) >> 1 (first lifting step).
func Lift53High(d, e0, e1 []int32) {
	simd.SubShr1Row(d, d, e0, e1)
}

// Lift53Low applies s[i] += (d0[i] + d1[i] + 2) >> 2 (second step).
func Lift53Low(s, d0, d1 []int32) {
	simd.AddShr2Row(s, s, d0, d1)
}

// Unlift53Low reverses Lift53Low.
func Unlift53Low(s, d0, d1 []int32) {
	simd.SubShr2Row(s, s, d0, d1)
}

// Unlift53High reverses Lift53High.
func Unlift53High(d, e0, e1 []int32) {
	simd.AddShr1Row(d, d, e0, e1)
}

// Fused53Step computes one step of the merged split+interleaved-lifting
// sweep (the body of the paper's Algorithm 2 with the splitting step
// folded in): given interleaved rows e0 = x[2k], o = x[2k+1], e1 =
// x[2k+2] (already boundary-clamped) and the previous high row dPrev
// (= d for k == 0), it writes d[i] = o[i] - ((e0[i]+e1[i])>>1) into d
// and s[i] = e0[i] + ((dPrev[i]+d[i]+2)>>2) into s. s may alias e0.
// The SPE kernels stream exactly this step, so the parallel encoder is
// arithmetic-identical to the sequential one.
func Fused53Step(d, s, e0, o, e1, dPrev []int32) {
	simd.SubShr1Row(d, o, e0, e1)
	simd.AddShr2Row(s, e0, dPrev, d)
}

// Vertical53Naive performs vertical 5/3 analysis on the w×h region the
// obvious way: an explicit splitting pass that deinterleaves even and
// odd rows (via the aux buffer), then the two lifting passes of the
// paper's Algorithm 1. Three full sweeps over the data — the form whose
// DMA traffic the fused variant cuts to one sweep.
// aux must hold at least ((h+1)/2)*w words.
func Vertical53Naive(data []int32, w, h, stride int, aux []int32) {
	if h <= 1 {
		return
	}
	nl, nh := (h+1)/2, h/2
	row := func(i int) []int32 { return data[i*stride : i*stride+w] }
	auxRow := func(k int) []int32 { return aux[k*w : (k+1)*w] }

	// Splitting pass: odd rows to aux, even rows compacted to the top,
	// aux copied to the bottom half.
	for k := 0; k < nh; k++ {
		copy(auxRow(k), row(2*k+1))
	}
	for k := 1; k < nl; k++ {
		copy(row(k), row(2*k))
	}
	for k := 0; k < nh; k++ {
		copy(row(nl+k), auxRow(k))
	}
	// First lifting pass (Algorithm 1, step 1).
	for k := 0; k < nh; k++ {
		e1 := k + 1
		if e1 > nl-1 {
			e1 = nl - 1
		}
		Lift53High(row(nl+k), row(k), row(e1))
	}
	// Second lifting pass (Algorithm 1, step 2).
	for k := 0; k < nl; k++ {
		d0, d1 := k-1, k
		if d0 < 0 {
			d0 = 0
		}
		if d1 > nh-1 {
			d1 = nh - 1
		}
		Lift53Low(row(k), row(nl+d0), row(nl+d1))
	}
}

// Vertical53Fused performs the same vertical analysis in a single sweep
// over the data: the splitting step is merged into the interleaved
// lifting loop (Algorithm 2 + Figure 3). High-pass rows are written to
// the auxiliary buffer first — updating them in place would overwrite
// interleaved input rows before they are read — and copied into the
// bottom half afterwards, so the extra traffic is only half the data.
// Bit-identical to Vertical53Naive.
func Vertical53Fused(data []int32, w, h, stride int, aux []int32) {
	if h <= 1 {
		return
	}
	nl, nh := (h+1)/2, h/2
	row := func(i int) []int32 { return data[i*stride : i*stride+w] }
	auxRow := func(k int) []int32 { return aux[k*w : (k+1)*w] }

	for k := 0; k < nh; k++ {
		e0 := row(2 * k)
		o := row(2*k + 1)
		e1 := e0 // mirror x[h] -> x[h-2] when 2k+2 == h
		if 2*k+2 < h {
			e1 = row(2*k + 2)
		}
		dPrev := auxRow(k) // d[-1] clamps to d[0]
		if k > 0 {
			dPrev = auxRow(k - 1)
		}
		Fused53Step(auxRow(k), row(k), e0, o, e1, dPrev)
	}
	if nl > nh { // odd height: final low row, d clamps to d[nh-1]
		Fused53Tail(row(nl-1), row(h-1), auxRow(nh-1))
	}
	for k := 0; k < nh; k++ {
		copy(row(nl+k), auxRow(k))
	}
}

// Fused53Tail computes the final low row of an odd-height sweep:
// s[i] = e0[i] + ((2*d[i]+2)>>2), the d index clamped to the last high
// row. s may alias e0.
// Routing through the shared kernel with d0 = d1 = d is exact:
// d+d+2 == 2*d+2 under two's-complement wrap.
func Fused53Tail(s, e0, d []int32) {
	simd.AddShr2Row(s, e0, d, d)
}

// inverseVertical53 exactly reverses the vertical analysis: un-lift the
// low rows, un-lift the high rows, then re-interleave via aux.
func inverseVertical53(data []int32, w, h, stride int, aux []int32) {
	if h <= 1 {
		return
	}
	nl, nh := (h+1)/2, h/2
	row := func(i int) []int32 { return data[i*stride : i*stride+w] }
	auxRow := func(k int) []int32 { return aux[k*w : (k+1)*w] }

	for k := 0; k < nl; k++ {
		d0, d1 := k-1, k
		if d0 < 0 {
			d0 = 0
		}
		if d1 > nh-1 {
			d1 = nh - 1
		}
		Unlift53Low(row(k), row(nl+d0), row(nl+d1))
	}
	for k := 0; k < nh; k++ {
		e1 := k + 1
		if e1 > nl-1 {
			e1 = nl - 1
		}
		Unlift53High(row(nl+k), row(k), row(e1))
	}
	// Interleave back: evens spread out from the top (descending so no
	// overwrite), odds restored from aux.
	for k := 0; k < nh; k++ {
		copy(auxRow(k), row(nl+k))
	}
	for k := nl - 1; k >= 1; k-- {
		copy(row(2*k), row(k))
	}
	for k := 0; k < nh; k++ {
		copy(row(2*k+1), auxRow(k))
	}
}

// Fwd53Line performs 1-D 5/3 analysis on x (any length), writing the
// deinterleaved result (lows then highs) back through scratch tmp,
// which must be at least len(x) long. This is the horizontal filter
// applied to one image row.
func Fwd53Line(x []int32, tmp []int32) {
	n := len(x)
	if n <= 1 {
		return
	}
	nl, nh := (n+1)/2, n/2
	low, high := tmp[:nl], tmp[nl:n]
	for k := 0; k < nh; k++ {
		e2 := 2*k + 2
		if e2 > n-1 {
			e2 = n - 2 // mirror
		}
		high[k] = x[2*k+1] - ((x[2*k] + x[e2]) >> 1)
	}
	for k := 0; k < nl; k++ {
		d0, d1 := k-1, k
		if d0 < 0 {
			d0 = 0
		}
		if d1 > nh-1 {
			d1 = nh - 1
		}
		low[k] = x[2*k] + ((high[d0] + high[d1] + 2) >> 2)
	}
	copy(x, tmp[:n])
}

// Inv53Line reverses Fwd53Line. The two un-lifting recurrences run as
// row-kernel sweeps along the line — the boundary-clamped first and
// last samples are the only scalar steps — and the final interleave is
// a vector shuffle. Bit-identical to the plain loop form: the kernels
// perform the same wrapping adds and arithmetic shifts elementwise.
func Inv53Line(x []int32, tmp []int32) {
	n := len(x)
	if n <= 1 {
		return
	}
	nl, nh := (n+1)/2, n/2
	low, high := x[:nl], x[nl:n]
	even, odd := tmp[:nl], tmp[nl:n]

	// even[k] = low[k] - ((high[k-1] + high[k] + 2) >> 2), indices
	// clamped to [0, nh-1].
	even[0] = low[0] - ((high[0] + high[0] + 2) >> 2)
	m := nl
	if nh < nl { // odd length: last low row clamps d1 to nh-1
		m = nh
	}
	simd.SubShr2Row(even[1:m], low[1:m], high[:m-1], high[1:m])
	if nh < nl {
		even[nl-1] = low[nl-1] - ((high[nh-1] + high[nh-1] + 2) >> 2)
	}
	// odd[k] = high[k] + ((even[k] + even[k+1]) >> 1), the k+1 clamped
	// to nl-1 (which only happens for the last sample of even lengths).
	if nl > nh { // odd length: even has one extra entry, no clamp
		simd.AddShr1Row(odd, high, even[:nh], even[1:nh+1])
	} else {
		simd.AddShr1Row(odd[:nh-1], high[:nh-1], even[:nh-1], even[1:nh])
		odd[nh-1] = high[nh-1] + ((even[nh-1] + even[nh-1]) >> 1)
	}
	simd.Interleave2Row(x, even, odd)
	if nl > nh {
		x[n-1] = even[nl-1]
	}
}

// horizontal53 runs the 1-D 5/3 filter (or its inverse) over every row
// of the region.
func horizontal53(data []int32, w, h, stride int, inverse bool) {
	if w <= 1 {
		return
	}
	tmp := make([]int32, w)
	for r := 0; r < h; r++ {
		row := data[r*stride : r*stride+w]
		if inverse {
			Inv53Line(row, tmp)
		} else {
			Fwd53Line(row, tmp)
		}
	}
}
