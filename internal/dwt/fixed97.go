package dwt

import "j2kcell/internal/simd"

// JasPer-style fixed-point 9/7 transform. JasPer represents the lossy
// pipeline's real numbers as 32-bit fixed point (Q13) on the assumption
// that integer multiplies beat floats; Section 4 of the paper shows the
// assumption fails on the SPE, whose 32-bit integer multiply must be
// emulated from 16-bit halves (Table 1) while float multiplies are
// single fast instructions. This variant exists so the benchmarks can
// price both representations on both machines.

// FixShift is the number of fractional bits (JasPer's jpc fix format).
const FixShift = 13

// ToFixed converts an integer sample to Q13.
func ToFixed(v int32) int32 { return v << FixShift }

// FromFixed rounds a Q13 value to the nearest integer.
func FromFixed(v int32) int32 {
	return (v + (1 << (FixShift - 1))) >> FixShift
}

// fixMul multiplies two Q13 values with rounding.
func fixMul(a, b int32) int32 {
	return int32((int64(a)*int64(b) + (1 << (FixShift - 1))) >> FixShift)
}

// Lifting constants in Q13.
var (
	fixAlpha = toFix(Alpha97)
	fixBeta  = toFix(Beta97)
	fixGamma = toFix(Gamma97)
	fixDelta = toFix(Delta97)
	fixK     = toFix(K97)
	fixInvK  = toFix(InvK97)
)

func toFix(v float64) int32 { return int32(v * (1 << FixShift)) }

// Lift97Fixed applies d[i] += c*(e0[i]+e1[i]) in Q13, dispatched
// through the simd kernel layer (the vector forms decompose the 64-bit
// product exactly, see simd.FixAddMulRow).
func Lift97Fixed(d, e0, e1 []int32, c int32) {
	simd.FixAddMulRow(d, e0, e1, c)
}

// fwd97FixedLine is the Q13 counterpart of Fwd97Line.
func fwd97FixedLine(x []int32, tmp []int32) {
	n := len(x)
	if n <= 1 {
		return
	}
	nl, nh := (n+1)/2, n/2
	low, high := tmp[:nl], tmp[nl:n]
	for k := 0; k < nh; k++ {
		e2 := 2*k + 2
		if e2 > n-1 {
			e2 = n - 2
		}
		high[k] = x[2*k+1] + fixMul(fixAlpha, x[2*k]+x[e2])
	}
	cd := func(k int) int32 {
		if k < 0 {
			k = 0
		}
		if k > nh-1 {
			k = nh - 1
		}
		return high[k]
	}
	for k := 0; k < nl; k++ {
		low[k] = x[2*k] + fixMul(fixBeta, cd(k-1)+cd(k))
	}
	ce := func(k int) int32 {
		if k > nl-1 {
			k = nl - 1
		}
		return low[k]
	}
	for k := 0; k < nh; k++ {
		high[k] += fixMul(fixGamma, ce(k)+ce(k+1))
	}
	for k := 0; k < nl; k++ {
		low[k] = fixMul(low[k]+fixMul(fixDelta, cd(k-1)+cd(k)), fixInvK)
	}
	simd.FixScaleRow(high, fixK)
	copy(x, tmp[:n])
}

// inv97FixedLine reverses fwd97FixedLine to fixed-point rounding error.
func inv97FixedLine(x []int32, tmp []int32) {
	n := len(x)
	if n <= 1 {
		return
	}
	nl, nh := (n+1)/2, n/2
	low, high := tmp[:nl], tmp[nl:n]
	copy(low, x[:nl])
	copy(high, x[nl:n])
	simd.FixScaleRow(low, fixK)
	simd.FixScaleRow(high, fixInvK)
	cd := func(k int) int32 {
		if k < 0 {
			k = 0
		}
		if k > nh-1 {
			k = nh - 1
		}
		return high[k]
	}
	for k := 0; k < nl; k++ {
		low[k] -= fixMul(fixDelta, cd(k-1)+cd(k))
	}
	ce := func(k int) int32 {
		if k > nl-1 {
			k = nl - 1
		}
		return low[k]
	}
	for k := 0; k < nh; k++ {
		high[k] -= fixMul(fixGamma, ce(k)+ce(k+1))
	}
	for k := 0; k < nl; k++ {
		low[k] -= fixMul(fixBeta, cd(k-1)+cd(k))
	}
	for k := 0; k < nh; k++ {
		high[k] -= fixMul(fixAlpha, ce(k)+ce(k+1))
	}
	for k := 0; k < nl; k++ {
		x[2*k] = low[k]
	}
	for k := 0; k < nh; k++ {
		x[2*k+1] = high[k]
	}
}

// vertical97Fixed applies the Q13 vertical analysis (or inverse) using
// the naive split+lift structure; the fixed path exists for the
// representation benchmarks, not the DMA ablations.
func vertical97Fixed(data []int32, w, h, stride int, aux []int32, inverse bool) {
	if h <= 1 {
		return
	}
	nl, nh := (h+1)/2, h/2
	row := func(i int) []int32 { return data[i*stride : i*stride+w] }
	auxRow := func(k int) []int32 { return aux[k*w : (k+1)*w] }
	clampD := func(k int) []int32 {
		if k < 0 {
			k = 0
		}
		if k > nh-1 {
			k = nh - 1
		}
		return row(nl + k)
	}
	clampE := func(k int) []int32 {
		if k > nl-1 {
			k = nl - 1
		}
		return row(k)
	}
	scaleRow := func(r []int32, c int32) {
		simd.FixScaleRow(r, c)
	}
	if !inverse {
		for k := 0; k < nh; k++ {
			copy(auxRow(k), row(2*k+1))
		}
		for k := 1; k < nl; k++ {
			copy(row(k), row(2*k))
		}
		for k := 0; k < nh; k++ {
			copy(row(nl+k), auxRow(k))
		}
		for k := 0; k < nh; k++ {
			Lift97Fixed(row(nl+k), row(k), clampE(k+1), fixAlpha)
		}
		for k := 0; k < nl; k++ {
			Lift97Fixed(row(k), clampD(k-1), clampD(k), fixBeta)
		}
		for k := 0; k < nh; k++ {
			Lift97Fixed(row(nl+k), row(k), clampE(k+1), fixGamma)
		}
		for k := 0; k < nl; k++ {
			Lift97Fixed(row(k), clampD(k-1), clampD(k), fixDelta)
		}
		for k := 0; k < nl; k++ {
			scaleRow(row(k), fixInvK)
		}
		for k := 0; k < nh; k++ {
			scaleRow(row(nl+k), fixK)
		}
		return
	}
	for k := 0; k < nl; k++ {
		scaleRow(row(k), fixK)
	}
	for k := 0; k < nh; k++ {
		scaleRow(row(nl+k), fixInvK)
	}
	for k := 0; k < nl; k++ {
		Lift97Fixed(row(k), clampD(k-1), clampD(k), -fixDelta)
	}
	for k := 0; k < nh; k++ {
		Lift97Fixed(row(nl+k), row(k), clampE(k+1), -fixGamma)
	}
	for k := 0; k < nl; k++ {
		Lift97Fixed(row(k), clampD(k-1), clampD(k), -fixBeta)
	}
	for k := 0; k < nh; k++ {
		Lift97Fixed(row(nl+k), row(k), clampE(k+1), -fixAlpha)
	}
	for k := 0; k < nh; k++ {
		copy(auxRow(k), row(nl+k))
	}
	for k := nl - 1; k >= 1; k-- {
		copy(row(2*k), row(k))
	}
	for k := 0; k < nh; k++ {
		copy(row(2*k+1), auxRow(k))
	}
}

// Forward97Fixed applies `levels` Q13 9/7 decompositions in place; the
// input plane must already hold Q13 values (see ToFixed).
func Forward97Fixed(data []int32, w, h, stride, levels int) {
	aux := make([]int32, ((h+1)/2)*w)
	tmp := make([]int32, w)
	for l := 0; l < levels; l++ {
		lw, lh := levelDim(w, l), levelDim(h, l)
		if lw <= 1 && lh <= 1 {
			break
		}
		vertical97Fixed(data, lw, lh, stride, aux, false)
		if lw > 1 {
			for r := 0; r < lh; r++ {
				fwd97FixedLine(data[r*stride:r*stride+lw], tmp)
			}
		}
	}
}

// Inverse97Fixed reverses Forward97Fixed (to Q13 rounding error).
func Inverse97Fixed(data []int32, w, h, stride, levels int) {
	aux := make([]int32, ((h+1)/2)*w)
	tmp := make([]int32, w)
	for l := levels - 1; l >= 0; l-- {
		lw, lh := levelDim(w, l), levelDim(h, l)
		if lw <= 1 && lh <= 1 {
			continue
		}
		if lw > 1 {
			for r := 0; r < lh; r++ {
				inv97FixedLine(data[r*stride:r*stride+lw], tmp)
			}
		}
		vertical97Fixed(data, lw, lh, stride, aux, true)
	}
}
