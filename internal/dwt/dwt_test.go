package dwt

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"j2kcell/internal/simd"
	"j2kcell/internal/workload"
)

// randPlane fills a w×h int32 region (stride == w for simplicity).
func randPlane(w, h int, seed uint32, amp int32) []int32 {
	rng := workload.NewRNG(seed)
	data := make([]int32, w*h)
	for i := range data {
		data[i] = int32(rng.Intn(int(2*amp+1))) - amp
	}
	return data
}

func toF32(x []int32) []float32 {
	f := make([]float32, len(x))
	for i, v := range x {
		f[i] = float32(v)
	}
	return f
}

func TestLayoutGeometry(t *testing.T) {
	bands := Layout(17, 9, 2)
	if len(bands) != 7 {
		t.Fatalf("band count %d, want 7", len(bands))
	}
	// Level dims: l1 = 9x5, l2 = 5x3.
	ll := bands[0]
	if ll.Orient != LL || ll.W != 5 || ll.H != 3 {
		t.Fatalf("LL band %+v", ll)
	}
	// Bands must tile the plane exactly.
	covered := make([]bool, 17*9)
	for _, b := range bands {
		for y := b.Y0; y < b.Y0+b.H; y++ {
			for x := b.X0; x < b.X0+b.W; x++ {
				if covered[y*17+x] {
					t.Fatalf("band %+v overlaps at %d,%d", b, x, y)
				}
				covered[y*17+x] = true
			}
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("position %d not covered by any band", i)
		}
	}
}

func TestLayoutOrdering(t *testing.T) {
	bands := Layout(64, 64, 3)
	if bands[0].Orient != LL || bands[0].Level != 3 {
		t.Fatal("first band must be the deepest LL")
	}
	wantOrient := []Orient{HL, LH, HH}
	for i := 1; i < len(bands); i++ {
		if bands[i].Orient != wantOrient[(i-1)%3] {
			t.Fatalf("band %d orient %v", i, bands[i].Orient)
		}
	}
	if bands[1].Level != 3 || bands[len(bands)-1].Level != 1 {
		t.Fatal("levels must run coarse to fine")
	}
}

func TestMaxLevels(t *testing.T) {
	cases := []struct{ w, h, want int }{
		{1, 1, 0}, {2, 1, 1}, {64, 64, 6}, {3072, 3072, 12}, {5, 3, 3},
	}
	for _, c := range cases {
		if got := MaxLevels(c.w, c.h); got != c.want {
			t.Errorf("MaxLevels(%d,%d)=%d, want %d", c.w, c.h, got, c.want)
		}
	}
}

func TestForward53Inverse53RoundTrip(t *testing.T) {
	sizes := []struct{ w, h, lv int }{
		{8, 8, 1}, {8, 8, 3}, {17, 9, 2}, {1, 7, 2}, {7, 1, 2},
		{2, 2, 1}, {3, 3, 2}, {64, 48, 5}, {33, 65, 4},
	}
	for _, s := range sizes {
		orig := randPlane(s.w, s.h, uint32(s.w*31+s.h), 300)
		data := append([]int32(nil), orig...)
		Forward53(data, s.w, s.h, s.w, s.lv)
		Inverse53(data, s.w, s.h, s.w, s.lv)
		for i := range orig {
			if data[i] != orig[i] {
				t.Fatalf("%dx%d lv%d: 5/3 not reversible at %d: %d != %d", s.w, s.h, s.lv, i, data[i], orig[i])
			}
		}
	}
}

func TestPropForward53Reversible(t *testing.T) {
	f := func(w8, h8 uint8, lv8 uint8, seed uint32) bool {
		w, h := int(w8)%50+1, int(h8)%50+1
		lv := int(lv8) % 6
		orig := randPlane(w, h, seed, 1000)
		data := append([]int32(nil), orig...)
		Forward53(data, w, h, w, lv)
		Inverse53(data, w, h, w, lv)
		for i := range orig {
			if data[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVertical53FusedMatchesNaive(t *testing.T) {
	for _, h := range []int{2, 3, 4, 5, 8, 17, 64} {
		const w = 13
		a := randPlane(w, h, uint32(h), 500)
		b := append([]int32(nil), a...)
		aux := make([]int32, ((h+1)/2)*w)
		Vertical53Naive(a, w, h, w, aux)
		aux2 := make([]int32, ((h+1)/2)*w)
		Vertical53Fused(b, w, h, w, aux2)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("h=%d: fused differs from naive at %d: %d vs %d", h, i, b[i], a[i])
			}
		}
	}
}

func TestVertical97FusedMatchesNaive(t *testing.T) {
	for _, h := range []int{2, 3, 4, 5, 6, 7, 8, 17, 64} {
		const w = 13
		src := randPlane(w, h, uint32(h*7), 500)
		a, b := toF32(src), toF32(src)
		aux := make([]float32, ((h+1)/2)*w)
		Vertical97Naive(a, w, h, w, aux)
		aux2 := make([]float32, ((h+1)/2)*w)
		Vertical97Fused(b, w, h, w, aux2)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("h=%d: fused 9/7 differs from naive at %d: %v vs %v (must be bit-identical)", h, i, b[i], a[i])
			}
		}
	}
}

func TestForward97RoundTrip(t *testing.T) {
	sizes := []struct{ w, h, lv int }{
		{8, 8, 1}, {17, 9, 2}, {64, 48, 5}, {33, 65, 4}, {2, 2, 1}, {3, 5, 2},
	}
	for _, s := range sizes {
		src := randPlane(s.w, s.h, uint32(s.w+s.h*13), 300)
		data := toF32(src)
		Forward97(data, s.w, s.h, s.w, s.lv)
		Inverse97(data, s.w, s.h, s.w, s.lv)
		for i := range src {
			if d := float64(data[i]) - float64(src[i]); math.Abs(d) > 1e-2 {
				t.Fatalf("%dx%d lv%d: 9/7 reconstruction error %v at %d", s.w, s.h, s.lv, d, i)
			}
		}
	}
}

func TestDWT53EnergyCompaction(t *testing.T) {
	// A natural image must concentrate energy in the LL band.
	img := workload.Dial(64, 64, 9, 3)
	p := img.Comps[0]
	data := make([]int32, 64*64)
	for r := 0; r < 64; r++ {
		copy(data[r*64:], p.Row(r))
		for c := 0; c < 64; c++ {
			data[r*64+c] -= 128
		}
	}
	Forward53(data, 64, 64, 64, 3)
	// With the unit-DC-gain normalization, a coefficient's contribution
	// to image energy is its value scaled by the synthesis basis norm.
	var llE, totE float64
	for _, b := range Layout(64, 64, 3) {
		g := BandGain(W53, 3, b.Orient, b.Level)
		var e float64
		for y := b.Y0; y < b.Y0+b.H; y++ {
			for x := b.X0; x < b.X0+b.W; x++ {
				v := float64(data[y*64+x]) * g
				e += v * v
			}
		}
		if b.Orient == LL {
			llE = e
		}
		totE += e
	}
	if llE/totE < 0.5 {
		t.Fatalf("LL holds only %.1f%% of weighted energy; transform or layout broken", 100*llE/totE)
	}
}

func TestDWT97DCandNyquistGains(t *testing.T) {
	// Constant input: all energy in LL with unit gain.
	const n = 32
	data := make([]float32, n*n)
	for i := range data {
		data[i] = 100
	}
	Forward97(data, n, n, n, 1)
	if math.Abs(float64(data[0])-100) > 1e-3 {
		t.Fatalf("LL DC gain: got %v, want 100", data[0])
	}
	for _, b := range Layout(n, n, 1)[1:] {
		for y := b.Y0; y < b.Y0+b.H; y++ {
			for x := b.X0; x < b.X0+b.W; x++ {
				if v := data[y*n+x]; math.Abs(float64(v)) > 1e-3 {
					t.Fatalf("%v band leaked DC: %v", b.Orient, v)
				}
			}
		}
	}
}

func TestFixed97ApproximatesFloat(t *testing.T) {
	const w, h, lv = 32, 24, 3
	src := randPlane(w, h, 77, 120)
	ffix := make([]int32, len(src))
	for i, v := range src {
		ffix[i] = ToFixed(v)
	}
	fl := toF32(src)
	Forward97Fixed(ffix, w, h, w, lv)
	Forward97(fl, w, h, w, lv)
	for i := range src {
		got := float64(ffix[i]) / (1 << FixShift)
		if math.Abs(got-float64(fl[i])) > 0.15 {
			t.Fatalf("fixed/float diverge at %d: %v vs %v", i, got, fl[i])
		}
	}
}

func TestFixed97RoundTrip(t *testing.T) {
	const w, h, lv = 33, 17, 2
	src := randPlane(w, h, 5, 120)
	data := make([]int32, len(src))
	for i, v := range src {
		data[i] = ToFixed(v)
	}
	Forward97Fixed(data, w, h, w, lv)
	Inverse97Fixed(data, w, h, w, lv)
	for i := range src {
		if got := FromFixed(data[i]); got < src[i]-1 || got > src[i]+1 {
			t.Fatalf("fixed 9/7 round trip error at %d: %d vs %d", i, got, src[i])
		}
	}
}

func TestConvTapsAre97(t *testing.T) {
	low, high := ConvTaps()
	// Symmetry.
	for m := 0; m < 4; m++ {
		if low[m] != low[8-m] {
			t.Fatalf("low taps asymmetric: %v", low)
		}
	}
	for m := 0; m < 3; m++ {
		if high[m] != high[6-m] {
			t.Fatalf("high taps asymmetric: %v", high)
		}
	}
	// DC gain 1 on low, 0 on high; Nyquist 0 on low, 2 on high.
	var dcL, dcH, nyL, nyH float64
	for m, v := range low {
		dcL += float64(v)
		if m%2 == 0 {
			nyL += float64(v)
		} else {
			nyL -= float64(v)
		}
	}
	for m, v := range high {
		dcH += float64(v)
		if m%2 == 0 {
			nyH -= float64(v) // odd-centered filter
		} else {
			nyH += float64(v)
		}
	}
	if math.Abs(dcL-1) > 1e-4 || math.Abs(dcH) > 1e-4 {
		t.Fatalf("DC gains: low %v high %v", dcL, dcH)
	}
	if math.Abs(nyL) > 1e-4 || math.Abs(math.Abs(nyH)-2) > 1e-3 {
		t.Fatalf("Nyquist gains: low %v high %v", nyL, nyH)
	}
}

func TestConvMatchesLiftingInterior(t *testing.T) {
	const n = 64
	src := randPlane(n, 1, 3, 200)
	a, b := toF32(src), toF32(src)
	tmp := make([]float32, n)
	Fwd97Line(a, tmp)
	Fwd97ConvLine(b, tmp)
	for i := 0; i < n; i++ {
		if math.Abs(float64(a[i]-b[i])) > 2e-2 {
			t.Fatalf("conv vs lifting at %d: %v vs %v", i, b[i], a[i])
		}
	}
}

func TestForward97ConvEnergyCompaction(t *testing.T) {
	const n = 64
	img := workload.Dial(n, n, 2, 2)
	data := make([]float32, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			data[r*n+c] = float32(img.Comps[1].At(r, c) - 128)
		}
	}
	Forward97Conv(data, n, n, n, 3)
	var llE, totE float64
	for _, b := range Layout(n, n, 3) {
		g := BandGain(W97, 3, b.Orient, b.Level)
		for y := b.Y0; y < b.Y0+b.H; y++ {
			for x := b.X0; x < b.X0+b.W; x++ {
				v := float64(data[y*n+x]) * g
				if b.Orient == LL {
					llE += v * v
				}
				totE += v * v
			}
		}
	}
	if llE/totE < 0.5 {
		t.Fatalf("conv DWT energy compaction broken: %.1f%%", 100*llE/totE)
	}
}

func TestBandGainsSane(t *testing.T) {
	for _, f := range []Filter{W53, W97} {
		for lv := 1; lv <= 3; lv++ {
			llg := BandGain(f, lv, LL, lv)
			if llg < 1 {
				t.Errorf("filter %d lv %d: LL gain %v < 1", f, lv, llg)
			}
			// Gains grow with level (coarser coefficients matter more),
			// and HH < HL ≈ LH at a given level.
			for l := 1; l <= lv; l++ {
				hl, lh, hh := BandGain(f, lv, HL, l), BandGain(f, lv, LH, l), BandGain(f, lv, HH, l)
				if math.Abs(hl-lh) > 1e-9 {
					t.Errorf("HL/LH asymmetric: %v vs %v", hl, lh)
				}
				if hh >= hl {
					t.Errorf("HH gain %v not below HL %v", hh, hl)
				}
				if l > 1 && BandGain(f, lv, HL, l) <= BandGain(f, lv, HL, l-1) {
					t.Errorf("gain not increasing with level")
				}
			}
		}
	}
	// 9/7 level-1 gains match the well-known table values (≈ within
	// boundary effects): LL1≈1 is not applicable; HL1 ≈ 1.0, HH1 ≈ 0.7.
	hl := BandGain(W97, 1, HL, 1)
	if hl < 0.8 || hl > 1.3 {
		t.Errorf("HL1 9/7 gain %v outside sanity range", hl)
	}
}

// TestGainsSeparableMatchesPlane pins the deep-table fallback: the
// separable 1-D construction must reproduce the plane measurement
// (they compute the same norms; only roundoff may differ).
func TestGainsSeparableMatchesPlane(t *testing.T) {
	for _, f := range []Filter{W53, W97} {
		for _, lv := range []int{1, 3, 5} {
			plane := computeGains2D(f, lv)
			sep := computeGainsSep(f, lv)
			for _, o := range []Orient{LL, HL, LH, HH} {
				for l := 0; l <= lv; l++ {
					a, b := plane[o][l], sep[o][l]
					if a == 0 && b == 0 {
						continue
					}
					if math.Abs(a-b) > 1e-9*math.Abs(a) {
						t.Errorf("filter %d lv %d band %v/%d: plane %v vs separable %v", f, lv, o, l, a, b)
					}
				}
			}
		}
	}
}

// TestDeepGainTablesAreCheap pins the robustness property that made the
// fallback necessary: a hostile COD segment may claim up to 32
// decomposition levels, and building that table must stay millisecond-
// scale and finite (the plane measurement would need a multi-gigabyte
// allocation by level 10).
func TestDeepGainTablesAreCheap(t *testing.T) {
	start := time.Now()
	for _, f := range []Filter{W53, W97} {
		for _, lv := range []int{7, 10, 20, 32} {
			for l := 1; l <= lv; l++ {
				for _, o := range []Orient{HL, LH, HH} {
					g := BandGain(f, lv, o, l)
					if !(g > 0) || math.IsInf(g, 0) {
						t.Fatalf("filter %d lv %d band %v/%d: bad gain %v", f, lv, o, l, g)
					}
				}
			}
			if g := BandGain(f, lv, LL, lv); !(g > 0) || math.IsInf(g, 0) {
				t.Fatalf("filter %d lv %d LL: bad gain %v", f, lv, g)
			}
		}
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("deep gain tables took %v — fallback not engaged", el)
	}
}

func TestForward53IsDeterministic(t *testing.T) {
	a := randPlane(40, 30, 4, 100)
	b := append([]int32(nil), a...)
	Forward53(a, 40, 30, 40, 3)
	Forward53(b, 40, 30, 40, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic transform")
		}
	}
}

func TestStrideLargerThanWidth(t *testing.T) {
	// Padding words must never be touched.
	const w, h, stride = 20, 12, 32
	data := make([]int32, stride*h)
	rng := workload.NewRNG(8)
	for r := 0; r < h; r++ {
		for c := 0; c < stride; c++ {
			if c < w {
				data[r*stride+c] = int32(rng.Intn(200)) - 100
			} else {
				data[r*stride+c] = -99999 // sentinel in padding
			}
		}
	}
	orig := append([]int32(nil), data...)
	Forward53(data, w, h, stride, 3)
	for r := 0; r < h; r++ {
		for c := w; c < stride; c++ {
			if data[r*stride+c] != -99999 {
				t.Fatalf("padding clobbered at %d,%d", r, c)
			}
		}
	}
	Inverse53(data, w, h, stride, 3)
	for i := range data {
		if data[i] != orig[i] {
			t.Fatal("strided round trip failed")
		}
	}
}

func TestInverseLevelsPartial(t *testing.T) {
	// Inverting only the coarse levels must leave the top-left region
	// equal to what a forward transform of the downscaled... more
	// precisely: InverseLevels(levels, stop) after Forward(levels) must
	// equal Forward(stop) of the original.
	const w, h, levels, stop = 48, 40, 4, 2
	orig := randPlane(w, h, 77, 300)
	a := append([]int32(nil), orig...)
	Forward53(a, w, h, w, levels)
	InverseLevels53(a, w, h, w, levels, stop)
	b := append([]int32(nil), orig...)
	Forward53(b, w, h, w, stop)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("partial inverse mismatch at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Float analogue, to rounding error.
	fa := toF32(orig)
	Forward97(fa, w, h, w, levels)
	InverseLevels97(fa, w, h, w, levels, stop)
	fb := toF32(orig)
	Forward97(fb, w, h, w, stop)
	for i := range fa {
		if d := float64(fa[i] - fb[i]); d > 1e-2 || d < -1e-2 {
			t.Fatalf("97 partial inverse mismatch at %d: %v vs %v", i, fa[i], fb[i])
		}
	}
}

func TestInverseLevelsStopZeroEqualsInverse(t *testing.T) {
	orig := randPlane(20, 20, 5, 200)
	a := append([]int32(nil), orig...)
	Forward53(a, 20, 20, 20, 3)
	InverseLevels53(a, 20, 20, 20, 3, 0)
	for i := range a {
		if a[i] != orig[i] {
			t.Fatal("stop=0 did not fully invert")
		}
	}
}

// TestFixShiftMatchesSIMD pins the Q13 format shared with the simd
// kernel layer: simd.FixAddMulRow decomposes the 64-bit fixMul product
// assuming exactly this many fractional bits, so the two constants
// must never drift apart.
func TestFixShiftMatchesSIMD(t *testing.T) {
	if FixShift != simd.FixShift {
		t.Fatalf("dwt.FixShift = %d, simd.FixShift = %d", FixShift, simd.FixShift)
	}
}
