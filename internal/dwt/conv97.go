package dwt

import "sync"

// Convolution-based 9/7 analysis, the structure used by the Muta et al.
// encoder the paper compares against (their DWT partitions the image
// into overlapping 128×128 tiles and filters by direct convolution).
// The filter taps are derived numerically from the lifting
// implementation, so in the interior the two agree to rounding error;
// the derivation doubles as a cross-check that the lifting
// factorization really implements a 9/7 filter bank.

var (
	convOnce sync.Once
	convLow  [9]float32 // analysis low-pass taps, offsets -4..+4
	convHigh [7]float32 // analysis high-pass taps, offsets -3..+3
)

// deriveConvTaps recovers the filter taps by pushing unit impulses
// through the 1-D lifting analysis on a long line and reading off the
// coefficients' dependence on input position.
func deriveConvTaps() {
	const n = 64
	tmp := make([]float32, n)
	x := make([]float32, n)
	// low[k] = sum_m h[m] x[2k+m]: probe output low[n/4] (position 2k = n/2).
	k := n / 4
	for m := -4; m <= 4; m++ {
		for i := range x {
			x[i] = 0
		}
		x[2*k+m] = 1
		Fwd97Line(x, tmp)
		convLow[m+4] = x[k]
	}
	// high[j] = sum_m g[m] x[2j+1+m]: probe high[n/4] (position n/2+1).
	nl := n / 2
	j := n / 4
	for m := -3; m <= 3; m++ {
		for i := range x {
			x[i] = 0
		}
		x[2*j+1+m] = 1
		Fwd97Line(x, tmp)
		convHigh[m+3] = x[nl+j]
	}
}

// ConvTaps returns the derived analysis filter taps (low, high).
func ConvTaps() ([9]float32, [7]float32) {
	convOnce.Do(deriveConvTaps)
	return convLow, convHigh
}

// mirror reflects an index into [0, n) with whole-sample symmetry.
func mirror(i, n int) int {
	for i < 0 || i >= n {
		if i < 0 {
			i = -i
		}
		if i >= n {
			i = 2*(n-1) - i
		}
	}
	return i
}

// Fwd97ConvLine performs 1-D 9/7 analysis by direct convolution,
// writing the deinterleaved result through tmp.
func Fwd97ConvLine(x []float32, tmp []float32) {
	n := len(x)
	if n <= 1 {
		return
	}
	convOnce.Do(deriveConvTaps)
	nl, nh := (n+1)/2, n/2
	low, high := tmp[:nl], tmp[nl:n]
	for k := 0; k < nl; k++ {
		var s float32
		for m := -4; m <= 4; m++ {
			s += convLow[m+4] * x[mirror(2*k+m, n)]
		}
		low[k] = s
	}
	for k := 0; k < nh; k++ {
		var s float32
		for m := -3; m <= 3; m++ {
			s += convHigh[m+3] * x[mirror(2*k+1+m, n)]
		}
		high[k] = s
	}
	copy(x, tmp[:n])
}

// Forward97Conv applies `levels` decompositions using direct
// convolution in both directions (columns are filtered through a
// transposed scratch line, reproducing the column-walk the lifting
// row formulation avoids).
func Forward97Conv(data []float32, w, h, stride, levels int) {
	maxd := w
	if h > maxd {
		maxd = h
	}
	col := make([]float32, maxd)
	tmp := make([]float32, maxd)
	for l := 0; l < levels; l++ {
		lw, lh := levelDim(w, l), levelDim(h, l)
		if lw <= 1 && lh <= 1 {
			break
		}
		if lh > 1 {
			for c := 0; c < lw; c++ {
				for r := 0; r < lh; r++ {
					col[r] = data[r*stride+c]
				}
				Fwd97ConvLine(col[:lh], tmp)
				for r := 0; r < lh; r++ {
					data[r*stride+c] = col[r]
				}
			}
		}
		if lw > 1 {
			for r := 0; r < lh; r++ {
				Fwd97ConvLine(data[r*stride:r*stride+lw], tmp)
			}
		}
	}
}
