// Package dwt implements the JPEG2000 discrete wavelet transforms:
// the reversible 5/3 integer lifting transform (lossless path), the
// irreversible 9/7 floating-point lifting transform (lossy path), a
// JasPer-style fixed-point 9/7 variant, and a convolution-based 9/7
// baseline (used by the Muta et al. comparison encoder).
//
// Vertical filtering is formulated row-wise, exactly as in the paper's
// Algorithms 1 and 2: a "sample" in the lifting recurrence is an entire
// image row, so the column-major walk that ruins cache behaviour never
// happens. Each vertical transform exists in two bit-identical
// variants: the naive three-pass form (split, lift, lift — Algorithm 1
// plus an explicit splitting pass) and the fused single-pass form that
// interleaves the lifting steps and merges the split into them using a
// half-height auxiliary buffer (Algorithm 2 + Figure 3; six passes
// fused to one in the 9/7 case, following Kutil's single-loop scheme).
// The fused forms are what the SPE kernels stream, cutting DMA traffic
// by 3x (5/3) and 6x (9/7).
//
// Boundary handling is whole-sample symmetric extension per ITU-T
// T.800, which for the supports used here reduces to clamping the
// intermediate-array indices to [0, len-1].
package dwt

import "fmt"

// Orientation of a subband.
type Orient int

// Subband orientations.
const (
	LL Orient = iota // low horizontal, low vertical
	HL               // high horizontal, low vertical
	LH               // low horizontal, high vertical
	HH               // high both
)

// String returns the conventional subband name.
func (o Orient) String() string {
	switch o {
	case LL:
		return "LL"
	case HL:
		return "HL"
	case LH:
		return "LH"
	case HH:
		return "HH"
	}
	return fmt.Sprintf("Orient(%d)", int(o))
}

// Band describes one subband's placement inside the deinterleaved
// transform plane. Level is the decomposition level (1 = finest).
type Band struct {
	Level  int
	Orient Orient
	X0, Y0 int
	W, H   int
}

// levelDim halves a dimension l times, rounding up (tile origin 0).
func levelDim(n, l int) int {
	for ; l > 0; l-- {
		n = (n + 1) / 2
	}
	return n
}

// Layout returns the subbands of a w×h plane after `levels`
// decompositions, ordered from the coarsest resolution outwards:
// LL_levels, then for l = levels..1: HL_l, LH_l, HH_l. This is the
// packet order for an LRCP progression. Empty bands (zero area) are
// included with W or H zero so callers can skip them explicitly.
func Layout(w, h, levels int) []Band {
	// invariant: levels comes from Options defaults or a COD field already
	// range-checked (0..32) by the codestream parser.
	if levels < 0 {
		panic("dwt: negative levels")
	}
	bands := []Band{{Level: levels, Orient: LL, W: levelDim(w, levels), H: levelDim(h, levels)}}
	for l := levels; l >= 1; l-- {
		lw, lh := levelDim(w, l), levelDim(h, l)     // low sizes at this level
		pw, ph := levelDim(w, l-1), levelDim(h, l-1) // parent sizes
		hw, hh := pw-lw, ph-lh                       // high sizes
		bands = append(bands,
			Band{Level: l, Orient: HL, X0: lw, Y0: 0, W: hw, H: lh},
			Band{Level: l, Orient: LH, X0: 0, Y0: lh, W: lw, H: hh},
			Band{Level: l, Orient: HH, X0: lw, Y0: lh, W: hw, H: hh},
		)
	}
	return bands
}

// MaxLevels returns the deepest useful decomposition for a w×h plane:
// transforming stops paying off once both dimensions reach 1.
func MaxLevels(w, h int) int {
	l := 0
	for w > 1 || h > 1 {
		w, h = (w+1)/2, (h+1)/2
		l++
	}
	return l
}

// Forward53 applies `levels` reversible 5/3 decompositions in place to
// the w×h region of data (row stride given), producing the standard
// deinterleaved layout with LL at the top-left. Vertical filtering
// runs first, matching the paper's pipeline.
func Forward53(data []int32, w, h, stride, levels int) {
	aux := make([]int32, ((h+1)/2)*w)
	for l := 0; l < levels; l++ {
		lw, lh := levelDim(w, l), levelDim(h, l)
		if lw <= 1 && lh <= 1 {
			break
		}
		Vertical53Fused(data, lw, lh, stride, aux)
		horizontal53(data, lw, lh, stride, false)
	}
}

// Inverse53 exactly reverses Forward53.
func Inverse53(data []int32, w, h, stride, levels int) {
	InverseLevels53(data, w, h, stride, levels, 0)
}

// InverseLevels53 undoes only the coarsest decomposition levels,
// levels-1 down to stop. With stop > 0 the finest `stop` levels stay
// transformed, so the top-left levelDim(w, stop) × levelDim(h, stop)
// region afterwards holds the image at reduced resolution — the basis
// of resolution-progressive decoding.
func InverseLevels53(data []int32, w, h, stride, levels, stop int) {
	aux := make([]int32, ((h+1)/2)*w)
	for l := levels - 1; l >= stop; l-- {
		lw, lh := levelDim(w, l), levelDim(h, l)
		if lw <= 1 && lh <= 1 {
			continue
		}
		horizontal53(data, lw, lh, stride, true)
		inverseVertical53(data, lw, lh, stride, aux)
	}
}

// Forward97 applies `levels` irreversible 9/7 decompositions in place.
func Forward97(data []float32, w, h, stride, levels int) {
	aux := make([]float32, ((h+1)/2)*w)
	for l := 0; l < levels; l++ {
		lw, lh := levelDim(w, l), levelDim(h, l)
		if lw <= 1 && lh <= 1 {
			break
		}
		Vertical97Fused(data, lw, lh, stride, aux)
		horizontal97(data, lw, lh, stride, false)
	}
}

// Inverse97 reverses Forward97 (to floating-point rounding).
func Inverse97(data []float32, w, h, stride, levels int) {
	InverseLevels97(data, w, h, stride, levels, 0)
}

// InverseLevels97 is the irreversible analogue of InverseLevels53.
func InverseLevels97(data []float32, w, h, stride, levels, stop int) {
	aux := make([]float32, ((h+1)/2)*w)
	for l := levels - 1; l >= stop; l-- {
		lw, lh := levelDim(w, l), levelDim(h, l)
		if lw <= 1 && lh <= 1 {
			continue
		}
		horizontal97(data, lw, lh, stride, true)
		inverseVertical97(data, lw, lh, stride, aux)
	}
}
