package dwt

// Stripe-safe entry points for the stage-based native pipeline
// (internal/codec.Pipeline). The vertical lifting recurrences never mix
// columns — every operation is a row-vector op applied elementwise — so
// a vertical analysis restricted to a column group [x0, x0+cw) is
// bit-identical to the same columns of a full-width sweep. That is the
// paper's §3.2 decomposition: cache-line column groups are the vertical
// parallel unit, rows are the horizontal one. The horizontal filter
// never mixes rows, so row ranges are likewise independent.

// LevelDims returns the low-pass region size after l decompositions of
// a w×h plane (the region the level-(l+1) transform operates on).
func LevelDims(w, h, l int) (int, int) { return levelDim(w, l), levelDim(h, l) }

// AuxLen returns the auxiliary buffer length (in words) the fused
// vertical analyses need for a cw-wide, lh-high region: half the rows.
func AuxLen(cw, lh int) int { return ((lh + 1) / 2) * cw }

// Vertical53Stripe runs the fused vertical 5/3 analysis over the column
// group [x0, x0+cw) of an lh-high region. aux needs AuxLen(cw, lh)
// words; its prior contents are irrelevant (write-before-read).
// Bit-identical to the corresponding columns of Vertical53Fused.
func Vertical53Stripe(data []int32, x0, cw, lh, stride int, aux []int32) {
	Vertical53Fused(data[x0:], cw, lh, stride, aux)
}

// Vertical97Stripe is the irreversible analogue of Vertical53Stripe.
func Vertical97Stripe(data []float32, x0, cw, lh, stride int, aux []float32) {
	Vertical97Fused(data[x0:], cw, lh, stride, aux)
}

// Horizontal53Rows applies the 1-D 5/3 analysis to rows [y0, y1) of the
// lw-wide region. tmp needs lw words. Rows are independent, so disjoint
// row ranges may run concurrently.
func Horizontal53Rows(data []int32, lw, stride, y0, y1 int, tmp []int32) {
	if lw <= 1 {
		return
	}
	for r := y0; r < y1; r++ {
		Fwd53Line(data[r*stride:r*stride+lw], tmp)
	}
}

// Horizontal97Rows is the irreversible analogue of Horizontal53Rows.
func Horizontal97Rows(data []float32, lw, stride, y0, y1 int, tmp []float32) {
	if lw <= 1 {
		return
	}
	for r := y0; r < y1; r++ {
		Fwd97Line(data[r*stride:r*stride+lw], tmp)
	}
}

// InvVertical53Stripe runs the vertical 5/3 synthesis over the column
// group [x0, x0+cw) of an lh-high region. aux needs AuxLen(cw, lh)
// words. Like its forward counterpart, the recurrence never mixes
// columns, so disjoint column groups may run concurrently and the
// result is bit-identical to the corresponding columns of a full-width
// inverse sweep.
func InvVertical53Stripe(data []int32, x0, cw, lh, stride int, aux []int32) {
	inverseVertical53(data[x0:], cw, lh, stride, aux)
}

// InvVertical97Stripe is the irreversible analogue of
// InvVertical53Stripe.
func InvVertical97Stripe(data []float32, x0, cw, lh, stride int, aux []float32) {
	inverseVertical97(data[x0:], cw, lh, stride, aux)
}

// InvHorizontal53Rows applies the 1-D 5/3 synthesis to rows [y0, y1) of
// the lw-wide region. tmp needs lw words.
func InvHorizontal53Rows(data []int32, lw, stride, y0, y1 int, tmp []int32) {
	if lw <= 1 {
		return
	}
	for r := y0; r < y1; r++ {
		Inv53Line(data[r*stride:r*stride+lw], tmp)
	}
}

// InvHorizontal97Rows is the irreversible analogue of
// InvHorizontal53Rows.
func InvHorizontal97Rows(data []float32, lw, stride, y0, y1 int, tmp []float32) {
	if lw <= 1 {
		return
	}
	for r := y0; r < y1; r++ {
		Inv97Line(data[r*stride:r*stride+lw], tmp)
	}
}
