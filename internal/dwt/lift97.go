package dwt

import "j2kcell/internal/simd"

// Irreversible 9/7 lifting (Cohen–Daubechies–Feauveau) per ITU-T T.800:
// four lifting steps and a scaling step. With the constants below a
// constant signal lands entirely in the (unit-gain) low band and a
// Nyquist signal entirely in the high band with gain 2, matching the
// 5/3 normalization so Tier-1 treats both filters uniformly.
const (
	Alpha97 = -1.586134342059924
	Beta97  = -0.052980118572961
	Gamma97 = 0.882911075530934
	Delta97 = 0.443506852043971
	K97     = 1.230174104914001
	InvK97  = 1 / K97
)

// Lift97 applies d[i] += c * (e0[i] + e1[i]) — one lifting step over
// row vectors. Dispatched through the simd kernel layer; the vector
// forms perform the identical add/mul/add rounding chain (no FMA), so
// results are bit-identical to the scalar loop.
func Lift97(d, e0, e1 []float32, c float32) {
	simd.AddMulRow(d, d, e0, e1, c)
}

// Scale97 multiplies a row by k.
func Scale97(r []float32, k float32) {
	simd.MulConstRow(r, r, k)
}

// Vertical97Naive performs vertical 9/7 analysis as six sweeps over the
// region: split, four lifting passes, scaling — the unfused structure
// whose DMA cost motivates the paper's (and Kutil's) loop fusion.
// aux must hold ((h+1)/2)*w words.
func Vertical97Naive(data []float32, w, h, stride int, aux []float32) {
	if h <= 1 {
		return
	}
	nl, nh := (h+1)/2, h/2
	row := func(i int) []float32 { return data[i*stride : i*stride+w] }
	auxRow := func(k int) []float32 { return aux[k*w : (k+1)*w] }

	// Split.
	for k := 0; k < nh; k++ {
		copy(auxRow(k), row(2*k+1))
	}
	for k := 1; k < nl; k++ {
		copy(row(k), row(2*k))
	}
	for k := 0; k < nh; k++ {
		copy(row(nl+k), auxRow(k))
	}
	clampE := func(k int) []float32 {
		if k > nl-1 {
			k = nl - 1
		}
		return row(k)
	}
	clampD := func(k int) []float32 {
		if k < 0 {
			k = 0
		}
		if k > nh-1 {
			k = nh - 1
		}
		return row(nl + k)
	}
	// Four lifting passes.
	for k := 0; k < nh; k++ {
		Lift97(row(nl+k), row(k), clampE(k+1), float32(Alpha97))
	}
	for k := 0; k < nl; k++ {
		Lift97(row(k), clampD(k-1), clampD(k), float32(Beta97))
	}
	for k := 0; k < nh; k++ {
		Lift97(row(nl+k), row(k), clampE(k+1), float32(Gamma97))
	}
	for k := 0; k < nl; k++ {
		Lift97(row(k), clampD(k-1), clampD(k), float32(Delta97))
	}
	// Scaling pass.
	for k := 0; k < nl; k++ {
		Scale97(row(k), float32(InvK97))
	}
	for k := 0; k < nh; k++ {
		Scale97(row(nl+k), float32(K97))
	}
}

// Vertical97Fused performs the same analysis in a single sweep,
// pipelining the four lifting steps (Kutil's single-loop scheme) with
// the split merged in and the scaling folded into the final writes:
// six passes over the data become one, plus half-size aux traffic for
// the high rows. Bit-identical to Vertical97Naive because every row
// sees the same operations in the same order.
func Vertical97Fused(data []float32, w, h, stride int, aux []float32) {
	if h <= 1 {
		return
	}
	nl, nh := (h+1)/2, h/2
	row := func(i int) []float32 { return data[i*stride : i*stride+w] }
	auxRow := func(k int) []float32 { return aux[k*w : (k+1)*w] }

	// Stage values live where their final homes are: d1/d2 rows in aux,
	// e1/e2 rows at the top of the plane. Input rows x[i] are consumed
	// strictly before their slots are overwritten (writes at step k
	// touch row k-1 and aux; reads reach rows 2k..2k+2).
	step1 := func(k int) {
		e1 := row(2 * k)
		if 2*k+2 < h {
			e1 = row(2*k + 2)
		}
		Fused97Step1(auxRow(k), row(2*k), row(2*k+1), e1)
	}
	step2 := func(k int) {
		d0 := k - 1
		if d0 < 0 {
			d0 = 0
		}
		Fused97Step2(row(k), row(2*k), auxRow(d0), auxRow(k))
	}
	step3 := func(k int) {
		e1i := k + 1
		if e1i > nl-1 {
			e1i = nl - 1
		}
		Lift97(auxRow(k), row(k), row(e1i), float32(Gamma97))
	}
	step4 := func(k int) {
		d0 := k - 1
		if d0 < 0 {
			d0 = 0
		}
		Fused97Step4(row(k), auxRow(d0), auxRow(k))
	}

	for k := 0; k < nh; k++ {
		step1(k)
		step2(k)
		if k > 0 {
			step3(k - 1)
		}
		if k > 1 {
			step4(k - 2)
		}
	}
	if nl > nh {
		Fused97Step2Tail(row(nl-1), row(h-1), auxRow(nh-1))
	}
	step3(nh - 1)
	if nh >= 2 {
		step4(nh - 2)
	}
	step4(nh - 1)
	if nl > nh {
		Fused97Step4Tail(row(nl-1), auxRow(nh-1))
	}
	// Deliver high rows with their scaling.
	for k := 0; k < nh; k++ {
		Fused97ScaleHigh(row(nl+k), auxRow(k))
	}
}

// The exported Fused97Step* functions are the row operations of the
// single-loop 9/7 sweep; the SPE kernels in internal/core stream these
// exact expressions over Local Store buffers, which is what keeps the
// parallel encoder bit-identical to Vertical97Fused.

// Fused97Step1 computes d1 = o + α(e0 + e1).
func Fused97Step1(d, e0, o, e1 []float32) {
	simd.AddMulRow(d, o, e0, e1, float32(Alpha97))
}

// Fused97Step2 computes e1 = e0 + β(dPrev + dCur). s may alias e0.
func Fused97Step2(s, e0, dPrev, dCur []float32) {
	simd.AddMulRow(s, e0, dPrev, dCur, float32(Beta97))
}

// Fused97Step2Tail computes the odd-height tail e1 = e0 + 2β·d.
// β*(d+d) and (2β)*d round the same real product once, so routing the
// tail through the shared kernel with b = c = d is bit-identical.
func Fused97Step2Tail(s, e0, d []float32) {
	simd.AddMulRow(s, e0, d, d, float32(Beta97))
}

// Fused97Step4 computes e2 = (e1 + δ(dPrev + dCur)) / K in place.
func Fused97Step4(s, dPrev, dCur []float32) {
	simd.AddMulScaleRow(s, dPrev, dCur, float32(Delta97), float32(InvK97))
}

// Fused97Step4Tail computes the odd-height tail e2 = (e1 + 2δ·d) / K.
func Fused97Step4Tail(s, d []float32) {
	simd.AddMulScaleRow(s, d, d, float32(Delta97), float32(InvK97))
}

// Fused97ScaleHigh delivers a high row with its K scaling: out = d·K.
func Fused97ScaleHigh(out, d []float32) {
	simd.MulConstRow(out, d, float32(K97))
}

// inverseVertical97 reverses the vertical 9/7 analysis.
func inverseVertical97(data []float32, w, h, stride int, aux []float32) {
	if h <= 1 {
		return
	}
	nl, nh := (h+1)/2, h/2
	row := func(i int) []float32 { return data[i*stride : i*stride+w] }
	auxRow := func(k int) []float32 { return aux[k*w : (k+1)*w] }

	clampE := func(k int) []float32 {
		if k > nl-1 {
			k = nl - 1
		}
		return row(k)
	}
	clampD := func(k int) []float32 {
		if k < 0 {
			k = 0
		}
		if k > nh-1 {
			k = nh - 1
		}
		return row(nl + k)
	}
	for k := 0; k < nl; k++ {
		Scale97(row(k), float32(K97))
	}
	for k := 0; k < nh; k++ {
		Scale97(row(nl+k), float32(InvK97))
	}
	for k := 0; k < nl; k++ {
		Lift97(row(k), clampD(k-1), clampD(k), -float32(Delta97))
	}
	for k := 0; k < nh; k++ {
		Lift97(row(nl+k), row(k), clampE(k+1), -float32(Gamma97))
	}
	for k := 0; k < nl; k++ {
		Lift97(row(k), clampD(k-1), clampD(k), -float32(Beta97))
	}
	for k := 0; k < nh; k++ {
		Lift97(row(nl+k), row(k), clampE(k+1), -float32(Alpha97))
	}
	// Interleave back.
	for k := 0; k < nh; k++ {
		copy(auxRow(k), row(nl+k))
	}
	for k := nl - 1; k >= 1; k-- {
		copy(row(2*k), row(k))
	}
	for k := 0; k < nh; k++ {
		copy(row(2*k+1), auxRow(k))
	}
}

// Fwd97Line performs 1-D 9/7 analysis on x, deinterleaving through tmp
// (len(tmp) >= len(x)).
func Fwd97Line(x []float32, tmp []float32) {
	n := len(x)
	if n <= 1 {
		return
	}
	nl, nh := (n+1)/2, n/2
	low, high := tmp[:nl], tmp[nl:n]
	for k := 0; k < nh; k++ {
		e2 := 2*k + 2
		if e2 > n-1 {
			e2 = n - 2
		}
		high[k] = x[2*k+1] + float32(Alpha97)*(x[2*k]+x[e2])
	}
	cd := func(k int) float32 {
		if k < 0 {
			k = 0
		}
		if k > nh-1 {
			k = nh - 1
		}
		return high[k]
	}
	for k := 0; k < nl; k++ {
		low[k] = x[2*k] + float32(Beta97)*(cd(k-1)+cd(k))
	}
	ce := func(k int) float32 {
		if k > nl-1 {
			k = nl - 1
		}
		return low[k]
	}
	for k := 0; k < nh; k++ {
		high[k] += float32(Gamma97) * (ce(k) + ce(k+1))
	}
	for k := 0; k < nl; k++ {
		low[k] = (low[k] + float32(Delta97)*(cd(k-1)+cd(k))) * float32(InvK97)
	}
	for k := 0; k < nh; k++ {
		high[k] *= float32(K97)
	}
	copy(x, tmp[:n])
}

// Inv97Line reverses Fwd97Line. The four un-lifting recurrences run as
// row-kernel sweeps along the line; a - c*(s) and a + (-c)*(s) are the
// same IEEE value (negation is a sign flip, the product rounds once
// either way), so routing through AddMulRow with negated constants is
// bit-identical to the subtracting loop form. Only the boundary-clamped
// first and last samples are scalar.
func Inv97Line(x []float32, tmp []float32) {
	n := len(x)
	if n <= 1 {
		return
	}
	nl, nh := (n+1)/2, n/2
	low, high := tmp[:nl], tmp[nl:n]
	simd.MulConstRow(low, x[:nl], float32(K97))
	simd.MulConstRow(high, x[nl:n], float32(InvK97))

	// lowLift: low[k] += c*(high[k-1] + high[k]), indices clamped to
	// [0, nh-1] — the k = 0 head always clamps, and for odd lengths the
	// k = nl-1 tail does too.
	m := nl
	if nh < nl {
		m = nh
	}
	lowLift := func(c float32) {
		low[0] += c * (high[0] + high[0])
		simd.AddMulRow(low[1:m], low[1:m], high[:m-1], high[1:m], c)
		if nh < nl {
			low[nl-1] += c * (high[nh-1] + high[nh-1])
		}
	}
	// highLift: high[k] += c*(low[k] + low[k+1]), the k+1 clamped to
	// nl-1 (only reached for the last sample of even lengths).
	highLift := func(c float32) {
		if nl > nh {
			simd.AddMulRow(high, high, low[:nh], low[1:nh+1], c)
		} else {
			simd.AddMulRow(high[:nh-1], high[:nh-1], low[:nh-1], low[1:nh], c)
			high[nh-1] += c * (low[nh-1] + low[nh-1])
		}
	}

	lowLift(-float32(Delta97))
	highLift(-float32(Gamma97))
	lowLift(-float32(Beta97))
	highLift(-float32(Alpha97))

	simd.Interleave2FRow(x, low, high)
	if nl > nh {
		x[n-1] = low[nl-1]
	}
}

// horizontal97 runs the 1-D 9/7 filter (or its inverse) over every row.
func horizontal97(data []float32, w, h, stride int, inverse bool) {
	if w <= 1 {
		return
	}
	tmp := make([]float32, w)
	for r := 0; r < h; r++ {
		row := data[r*stride : r*stride+w]
		if inverse {
			Inv97Line(row, tmp)
		} else {
			Fwd97Line(row, tmp)
		}
	}
}
