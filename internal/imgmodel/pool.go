package imgmodel

import (
	"sync"

	"j2kcell/internal/obs"
)

// Plane arenas for the encode pipeline: transform planes are large
// (W×H words) and live only from the component transform until Tier-1
// has consumed them, so recycling them through sync.Pool makes
// steady-state encode allocations near-constant in the number of
// encodes. Pooled planes are NOT zeroed — callers must overwrite every
// sample they later read (the pipeline stages do: MCT writes every row,
// and the subbands tile the plane). Use NewPlane/NewFPlane when zeroed
// contents are required.

var (
	planePool  sync.Pool // *Plane
	fplanePool sync.Pool // *FPlane
)

// GetPlane returns a w×h integer plane from the pool (or a fresh one),
// with unspecified contents inside and outside the live region. Pool
// hit/miss counts go to the ambient recorder; pipelines that carry an
// operation recorder use GetPlaneObs.
func GetPlane(w, h int) *Plane { return GetPlaneObs(w, h, obs.Active()) }

// GetPlaneObs is GetPlane counting against an explicit recorder
// (nil-safe).
func GetPlaneObs(w, h int, rec *obs.Recorder) *Plane {
	p, _ := planePool.Get().(*Plane)
	if p == nil {
		rec.Add(obs.CtrPoolPlaneMiss, 1)
		return NewPlane(w, h)
	}
	rec.Add(obs.CtrPoolPlaneHit, 1)
	s := padStride(w)
	if n := s * h; cap(p.Data) < n {
		p.Data = make([]int32, n)
	} else {
		p.Data = p.Data[:n]
	}
	p.W, p.H, p.Stride = w, h, s
	return p
}

// PutPlane recycles a plane obtained from GetPlane (or anywhere else —
// the pool adopts its backing array). The caller must not retain any
// reference into p.Data.
func PutPlane(p *Plane) {
	if p != nil {
		planePool.Put(p)
	}
}

// GetFPlane is the float analogue of GetPlane.
func GetFPlane(w, h int) *FPlane { return GetFPlaneObs(w, h, obs.Active()) }

// GetFPlaneObs is the float analogue of GetPlaneObs.
func GetFPlaneObs(w, h int, rec *obs.Recorder) *FPlane {
	p, _ := fplanePool.Get().(*FPlane)
	if p == nil {
		rec.Add(obs.CtrPoolPlaneMiss, 1)
		return NewFPlane(w, h)
	}
	rec.Add(obs.CtrPoolPlaneHit, 1)
	s := padStride(w)
	if n := s * h; cap(p.Data) < n {
		p.Data = make([]float32, n)
	} else {
		p.Data = p.Data[:n]
	}
	p.W, p.H, p.Stride = w, h, s
	return p
}

// PutFPlane recycles a float plane. The caller must not retain any
// reference into p.Data.
func PutFPlane(p *FPlane) {
	if p != nil {
		fplanePool.Put(p)
	}
}
