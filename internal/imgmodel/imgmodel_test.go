package imgmodel

import (
	"math"
	"testing"
)

func TestPlaneStridePadded(t *testing.T) {
	p := NewPlane(33, 2)
	if p.Stride != 64 {
		t.Fatalf("stride %d, want 64", p.Stride)
	}
	if len(p.Row(1)) != 33 {
		t.Fatalf("row length %d", len(p.Row(1)))
	}
}

func TestPlaneAtSetCloneEqual(t *testing.T) {
	p := NewPlane(10, 5)
	p.Set(4, 9, -7)
	if p.At(4, 9) != -7 {
		t.Fatal("At/Set broken")
	}
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q.Set(0, 0, 1)
	if p.Equal(q) {
		t.Fatal("Equal missed a difference")
	}
	if p.Equal(NewPlane(10, 4)) {
		t.Fatal("Equal ignored geometry")
	}
}

func TestEqualIgnoresPadding(t *testing.T) {
	p, q := NewPlane(10, 2), NewPlane(10, 2)
	p.Data[20] = 99 // padding word of row 0 (stride is 32)
	if !p.Equal(q) {
		t.Fatal("Equal compared padding")
	}
}

func TestNewPlanePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPlane(-1, 3)
}

func TestFPlane(t *testing.T) {
	p := NewFPlane(40, 3)
	if p.Stride != 64 {
		t.Fatalf("stride %d", p.Stride)
	}
	p.Set(2, 39, 1.5)
	if p.At(2, 39) != 1.5 || p.Row(2)[39] != 1.5 {
		t.Fatal("FPlane accessors broken")
	}
}

func TestImageCloneEqual(t *testing.T) {
	a := NewImage(8, 8, 3, 8)
	a.Comps[2].Set(3, 3, 77)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone unequal")
	}
	b.Comps[2].Set(3, 3, 78)
	if a.Equal(b) {
		t.Fatal("Equal missed change")
	}
}

func TestPSNR(t *testing.T) {
	a := NewImage(4, 4, 1, 8)
	b := a.Clone()
	if !math.IsInf(a.PSNR(b), 1) {
		t.Fatal("identical images must have +Inf PSNR")
	}
	// Uniform error of 1 LSB: MSE=1, PSNR = 20*log10(255) ≈ 48.13 dB.
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			b.Comps[0].Set(r, c, 1)
		}
	}
	got := a.PSNR(b)
	if math.Abs(got-48.1308) > 0.01 {
		t.Fatalf("PSNR %.4f, want 48.1308", got)
	}
}

func TestSubImageInsertRoundTrip(t *testing.T) {
	img := NewImage(20, 15, 3, 8)
	for c, p := range img.Comps {
		for y := 0; y < 15; y++ {
			for x := 0; x < 20; x++ {
				p.Set(y, x, int32(c*100+y*20+x))
			}
		}
	}
	sub := img.SubImage(5, 3, 8, 6)
	if sub.W != 8 || sub.H != 6 || sub.Comps[1].At(0, 0) != 100+3*20+5 {
		t.Fatalf("SubImage wrong: %d", sub.Comps[1].At(0, 0))
	}
	blank := NewImage(20, 15, 3, 8)
	blank.Insert(sub, 5, 3)
	for c := range img.Comps {
		for y := 3; y < 9; y++ {
			for x := 5; x < 13; x++ {
				if blank.Comps[c].At(y, x) != img.Comps[c].At(y, x) {
					t.Fatal("Insert misplaced data")
				}
			}
		}
	}
	if blank.Comps[0].At(0, 0) != 0 {
		t.Fatal("Insert touched outside the rectangle")
	}
}
