// Package imgmodel defines the planar image representation shared by
// the JPEG2000 codec stages: whole-sample components stored as 4-byte
// integers (or floats mid-pipeline in the irreversible path) with rows
// padded to cache-line multiples, matching the paper's row-padding
// convention so planes can be handed to the Cell model zero-copy.
package imgmodel

import (
	"fmt"
	"math"
)

// StrideAlign is the row padding granule in 4-byte words (one 128-byte
// cache line).
const StrideAlign = 32

// padStride rounds w up to a multiple of StrideAlign.
func padStride(w int) int { return (w + StrideAlign - 1) / StrideAlign * StrideAlign }

// Plane is one image component: H rows of W int32 samples with a padded
// Stride.
type Plane struct {
	Data   []int32
	W, H   int
	Stride int
}

// NewPlane allocates a zeroed W×H plane with padded rows.
func NewPlane(w, h int) *Plane {
	// invariant: callers derive w,h from geometry already validated at the
	// API boundary (validateImage, codestream SIZ checks); 0 here is a bug.
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgmodel: invalid plane size %dx%d", w, h))
	}
	s := padStride(w)
	return &Plane{Data: make([]int32, s*h), W: w, H: h, Stride: s}
}

// Row returns row r restricted to the plane width.
func (p *Plane) Row(r int) []int32 { return p.Data[r*p.Stride : r*p.Stride+p.W] }

// At returns the sample at row r, column c.
func (p *Plane) At(r, c int) int32 { return p.Data[r*p.Stride+c] }

// Set stores v at row r, column c.
func (p *Plane) Set(r, c int, v int32) { p.Data[r*p.Stride+c] = v }

// Clone returns a deep copy of the plane.
func (p *Plane) Clone() *Plane {
	q := &Plane{Data: make([]int32, len(p.Data)), W: p.W, H: p.H, Stride: p.Stride}
	copy(q.Data, p.Data)
	return q
}

// Equal reports whether two planes have identical geometry and samples
// (padding words are ignored).
func (p *Plane) Equal(q *Plane) bool {
	if p.W != q.W || p.H != q.H {
		return false
	}
	for r := 0; r < p.H; r++ {
		pr, qr := p.Row(r), q.Row(r)
		for c := range pr {
			if pr[c] != qr[c] {
				return false
			}
		}
	}
	return true
}

// FPlane is a float32 component used mid-pipeline in the irreversible
// (lossy) path between the ICT and quantization.
type FPlane struct {
	Data   []float32
	W, H   int
	Stride int
}

// NewFPlane allocates a zeroed W×H float plane with padded rows.
func NewFPlane(w, h int) *FPlane {
	// invariant: same validated-geometry contract as NewPlane.
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgmodel: invalid plane size %dx%d", w, h))
	}
	s := padStride(w)
	return &FPlane{Data: make([]float32, s*h), W: w, H: h, Stride: s}
}

// Row returns row r restricted to the plane width.
func (p *FPlane) Row(r int) []float32 { return p.Data[r*p.Stride : r*p.Stride+p.W] }

// At returns the sample at row r, column c.
func (p *FPlane) At(r, c int) float32 { return p.Data[r*p.Stride+c] }

// Set stores v at row r, column c.
func (p *FPlane) Set(r, c int, v float32) { p.Data[r*p.Stride+c] = v }

// Image is a planar image: all components have full resolution (no
// chroma subsampling, as in the paper's RGB BMP workload).
type Image struct {
	W, H  int
	Depth int // bits per sample, e.g. 8
	Comps []*Plane
}

// NewImage allocates an image with n zeroed components.
func NewImage(w, h, n, depth int) *Image {
	img := &Image{W: w, H: h, Depth: depth}
	for i := 0; i < n; i++ {
		img.Comps = append(img.Comps, NewPlane(w, h))
	}
	return img
}

// Clone returns a deep copy of the image.
func (img *Image) Clone() *Image {
	out := &Image{W: img.W, H: img.H, Depth: img.Depth}
	for _, c := range img.Comps {
		out.Comps = append(out.Comps, c.Clone())
	}
	return out
}

// Equal reports whether two images are sample-identical.
func (img *Image) Equal(o *Image) bool {
	if img.W != o.W || img.H != o.H || img.Depth != o.Depth || len(img.Comps) != len(o.Comps) {
		return false
	}
	for i := range img.Comps {
		if !img.Comps[i].Equal(o.Comps[i]) {
			return false
		}
	}
	return true
}

// PSNR computes the peak signal-to-noise ratio in dB between img and a
// reconstruction, over all components. Identical images return +Inf.
func (img *Image) PSNR(rec *Image) float64 {
	// invariant: PSNR is a test/benchmark metric between images the caller
	// constructed with matching geometry; never fed decoder output directly.
	if img.W != rec.W || img.H != rec.H || len(img.Comps) != len(rec.Comps) {
		panic("imgmodel: PSNR geometry mismatch")
	}
	var se float64
	n := 0
	for i := range img.Comps {
		a, b := img.Comps[i], rec.Comps[i]
		for r := 0; r < a.H; r++ {
			ra, rb := a.Row(r), b.Row(r)
			for c := range ra {
				d := float64(ra[c] - rb[c])
				se += d * d
				n++
			}
		}
	}
	if se == 0 {
		return math.Inf(1)
	}
	peak := float64(int(1)<<img.Depth - 1)
	mse := se / float64(n)
	return 10 * math.Log10(peak*peak/mse)
}

// SubImage copies the rectangle (x0, y0, w, h) into a new image —
// used to carve tiles for independent coding.
func (img *Image) SubImage(x0, y0, w, h int) *Image {
	out := NewImage(w, h, len(img.Comps), img.Depth)
	for c, p := range img.Comps {
		for y := 0; y < h; y++ {
			copy(out.Comps[c].Row(y), p.Row(y0 + y)[x0:x0+w])
		}
	}
	return out
}

// Insert copies src into img at (x0, y0).
func (img *Image) Insert(src *Image, x0, y0 int) {
	for c, p := range src.Comps {
		for y := 0; y < p.H; y++ {
			copy(img.Comps[c].Row(y0 + y)[x0:], p.Row(y))
		}
	}
}
