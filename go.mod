module j2kcell

go 1.22
