// Benchmarks regenerating the paper's evaluation. Every table and
// figure has a benchmark that runs the corresponding experiment and
// reports the modeled quantities as custom metrics (model-ms, speedup);
// wall-clock numbers additionally characterize this library as a native
// Go codec. J2K_BENCH_SCALE divides the paper's 3072x3072 workload
// (default 8 → 384x384); the modeled ratios are size-stable, so small
// scales reproduce the same shapes.
package j2kcell

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"j2kcell/internal/baseline"
	"j2kcell/internal/cell"
	"j2kcell/internal/codec"
	"j2kcell/internal/core"
	"j2kcell/internal/dwt"
	"j2kcell/internal/mq"
	"j2kcell/internal/spu"
	"j2kcell/internal/t1"
	"j2kcell/internal/workload"
)

func benchScale() int {
	if s := os.Getenv("J2K_BENCH_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			return v
		}
	}
	return 8
}

func benchDial() *Image {
	n := 3072 / benchScale()
	return workload.Dial(n, n, 42, 5)
}

func benchFrame() *Image {
	s := benchScale()
	return workload.Dial(1920/s, 1080/s, 43, 5)
}

// simulate runs one modeled encode and reports its metrics.
func simulate(b *testing.B, img *Image, cfg core.Config) *core.Result {
	b.Helper()
	var res *core.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.Encode(img, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1e3*cell.Seconds(res.Cycles), "model-ms")
	b.ReportMetric(float64(res.DMABytes)/1e6, "dma-MB")
	return res
}

// BenchmarkTable1_InstrLatency reproduces Table 1's consequence: the
// fixed-point 9/7 is slower than float on the SPE. Wall time measures
// this library's two implementations; the model ratio is the metric.
func BenchmarkTable1_InstrLatency(b *testing.B) {
	const n = 512
	src := make([]int32, n*n)
	rng := workload.NewRNG(1)
	for i := range src {
		src[i] = int32(rng.Intn(256)) - 128
	}
	b.Run("float97", func(b *testing.B) {
		data := make([]float32, n*n)
		for i := 0; i < b.N; i++ {
			for j, v := range src {
				data[j] = float32(v)
			}
			dwt.Forward97(data, n, n, n, 5)
		}
		b.ReportMetric(cell.SPECosts.DWT97, "spe-cycles/sample")
	})
	b.Run("fixed97", func(b *testing.B) {
		data := make([]int32, n*n)
		for i := 0; i < b.N; i++ {
			for j, v := range src {
				data[j] = dwt.ToFixed(v)
			}
			dwt.Forward97Fixed(data, n, n, n, 5)
		}
		b.ReportMetric(cell.SPECosts.DWT97Fix, "spe-cycles/sample")
		b.ReportMetric(cell.SPECosts.DWT97Fix/cell.SPECosts.DWT97, "fixed/float")
	})
}

// BenchmarkFig4_LosslessScaling sweeps SPE counts for Figure 4.
func BenchmarkFig4_LosslessScaling(b *testing.B) {
	img := benchDial()
	opt := codec.Options{Lossless: true}
	base := 0.0
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("spe-%d", n), func(b *testing.B) {
			cfg := core.DefaultConfig(n, opt)
			res := simulate(b, img, cfg)
			sec := cell.Seconds(res.Cycles)
			if n == 1 {
				base = sec
			}
			if base > 0 {
				b.ReportMetric(base/sec, "speedup-vs-1spe")
			}
		})
	}
	b.Run("ppe-only", func(b *testing.B) {
		cfg := core.DefaultConfig(0, opt)
		cfg.PPET1 = true
		simulate(b, img, cfg)
	})
}

// BenchmarkFig5_LossyScaling sweeps SPE counts for Figure 5 and reports
// the rate-control share that flattens the curve.
func BenchmarkFig5_LossyScaling(b *testing.B) {
	img := benchDial()
	opt := codec.Options{Lossless: false, Rate: 0.1}
	base := 0.0
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("spe-%d", n), func(b *testing.B) {
			cfg := core.DefaultConfig(n, opt)
			if n == 16 {
				cfg.Cell = cell.QS20Config(16, 2)
				cfg.PPET1 = true
			}
			res := simulate(b, img, cfg)
			sec := cell.Seconds(res.Cycles)
			if n == 1 {
				base = sec
			}
			if base > 0 {
				b.ReportMetric(base/sec, "speedup-vs-1spe")
			}
			b.ReportMetric(100*float64(res.StageCycles("ratecontrol"))/float64(res.Cycles), "ratectl-%")
		})
	}
}

// BenchmarkFig6_OverallVsMuta compares per-frame encode time with the
// Muta et al. models.
func BenchmarkFig6_OverallVsMuta(b *testing.B) {
	img := benchFrame()
	var muta0 float64
	b.Run("muta0-2chips", func(b *testing.B) {
		var m baseline.MutaResult
		for i := 0; i < b.N; i++ {
			_, m8, err := baseline.EncodeMuta(img, 8, baseline.MutaClockHz)
			if err != nil {
				b.Fatal(err)
			}
			m = m8
		}
		muta0 = m.Total() / 2
		b.ReportMetric(1e3*muta0, "model-ms")
	})
	b.Run("ours-1chip", func(b *testing.B) {
		cfg := core.DefaultConfig(8, codec.Options{Lossless: true})
		cfg.PPET1 = true
		res := simulate(b, img, cfg)
		if muta0 > 0 {
			b.ReportMetric(muta0/cell.Seconds(res.Cycles), "speedup-vs-muta0")
		}
	})
	b.Run("ours-2chips", func(b *testing.B) {
		cfg := core.DefaultConfig(16, codec.Options{Lossless: true})
		cfg.Cell = cell.QS20Config(16, 2)
		cfg.PPET1 = true
		res := simulate(b, img, cfg)
		if muta0 > 0 {
			b.ReportMetric(muta0/cell.Seconds(res.Cycles), "speedup-vs-muta0")
		}
	})
}

// BenchmarkFig7_EBCOTVsMuta isolates the EBCOT comparison.
func BenchmarkFig7_EBCOTVsMuta(b *testing.B) {
	img := benchFrame()
	_, m8, err := baseline.EncodeMuta(img, 8, baseline.MutaClockHz)
	if err != nil {
		b.Fatal(err)
	}
	muta0 := m8.EBCOT / 2
	cfg := core.DefaultConfig(8, codec.Options{Lossless: true})
	cfg.PPET1 = true
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res, err = core.Encode(img, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	ours := cell.Seconds(res.StageCycles("tier1") + res.StageCycles("tier2+io"))
	b.ReportMetric(1e3*ours, "model-ms")
	b.ReportMetric(muta0/ours, "speedup-vs-muta0")
}

// BenchmarkFig8_DWTVsMuta isolates the DWT comparison.
func BenchmarkFig8_DWTVsMuta(b *testing.B) {
	img := benchFrame()
	_, m8, err := baseline.EncodeMuta(img, 8, baseline.MutaClockHz)
	if err != nil {
		b.Fatal(err)
	}
	muta0 := m8.DWT / 2
	cfg := core.DefaultConfig(8, codec.Options{Lossless: true})
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res, err = core.Encode(img, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	ours := cell.Seconds(res.StageCycles("dwt"))
	b.ReportMetric(1e3*ours, "model-ms")
	b.ReportMetric(muta0/ours, "speedup-vs-muta0")
}

// BenchmarkFig9_VsPentium compares the Cell against the Pentium IV
// model for both coding modes, overall and DWT-only.
func BenchmarkFig9_VsPentium(b *testing.B) {
	img := benchDial()
	for _, mode := range []struct {
		name string
		opt  codec.Options
	}{
		{"lossless", codec.Options{Lossless: true}},
		{"lossy", codec.Options{Lossless: false, Rate: 0.1}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var p4 baseline.StageSeconds
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				_, p4, err = baseline.EncodePentium(img, mode.opt)
				if err != nil {
					b.Fatal(err)
				}
				res, err = core.Encode(img, core.DefaultConfig(8, mode.opt))
				if err != nil {
					b.Fatal(err)
				}
			}
			cellSec := cell.Seconds(res.Cycles)
			b.ReportMetric(p4.Total()/cellSec, "overall-speedup")
			b.ReportMetric(p4.DWT/cell.Seconds(res.StageCycles("dwt")), "dwt-speedup")
		})
	}
}

// Benchmark_AblationFusedDWT quantifies the loop interleaving.
func Benchmark_AblationFusedDWT(b *testing.B) {
	img := benchDial()
	for _, naive := range []bool{false, true} {
		name := "fused"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig(8, codec.Options{Lossless: true})
			cfg.NaiveDWT = naive
			res := simulate(b, img, cfg)
			b.ReportMetric(1e3*cell.Seconds(res.StageCycles("dwt")), "dwt-model-ms")
		})
	}
}

// Benchmark_AblationBuffering sweeps multi-buffering depth.
func Benchmark_AblationBuffering(b *testing.B) {
	img := benchDial()
	for _, d := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("depth-%d", d), func(b *testing.B) {
			cfg := core.DefaultConfig(8, codec.Options{Lossless: true})
			cfg.BufferDepth = d
			simulate(b, img, cfg)
		})
	}
}

// Benchmark_AblationWorkQueue compares Tier-1 distribution strategies.
func Benchmark_AblationWorkQueue(b *testing.B) {
	img := benchDial()
	for _, static := range []bool{false, true} {
		name := "workqueue"
		if static {
			name = "static"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig(8, codec.Options{Lossless: true})
			cfg.StaticT1 = static
			res := simulate(b, img, cfg)
			b.ReportMetric(1e3*cell.Seconds(res.StageCycles("tier1")), "tier1-model-ms")
		})
	}
}

// Benchmark_AblationBlockSize compares 32x32 (Muta) vs 64x64 blocks.
func Benchmark_AblationBlockSize(b *testing.B) {
	img := benchDial()
	for _, cb := range []int{32, 64} {
		b.Run(fmt.Sprintf("cb-%d", cb), func(b *testing.B) {
			opt := codec.Options{Lossless: true, CBW: cb, CBH: cb}
			simulate(b, img, core.DefaultConfig(8, opt))
		})
	}
}

// --- Native wall-clock benchmarks of the library itself. ---

func BenchmarkEncodeLossless(b *testing.B) {
	img := benchDial()
	b.SetBytes(int64(img.W * img.H * 3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Encode(img, Options{Lossless: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeLossyRate01(b *testing.B) {
	img := benchDial()
	b.SetBytes(int64(img.W * img.H * 3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Encode(img, Options{Rate: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeParallelLossless(b *testing.B) {
	img := benchDial()
	b.SetBytes(int64(img.W * img.H * 3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := EncodeParallel(img, Options{Lossless: true}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeParallelWorkers sweeps the worker pool width of the
// whole-pipeline native encoder — the wall-clock analogue of the
// paper's SPE-count scaling figures.
func BenchmarkEncodeParallelWorkers(b *testing.B) {
	img := benchDial()
	for _, mode := range []struct {
		name string
		opt  Options
	}{
		{"lossless", Options{Lossless: true}},
		{"lossy", Options{Rate: 0.1}},
	} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers-%d", mode.name, w), func(b *testing.B) {
				b.SetBytes(int64(img.W * img.H * 3))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := EncodeParallel(img, mode.opt, w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDecodeParallelWorkers sweeps the worker pool width of the
// decoder across coding modes and tilings — the decode-side analogue
// of BenchmarkEncodeParallelWorkers. Throughput is reported in output
// pixel bytes, so lossless and lossy rows are directly comparable.
func BenchmarkDecodeParallelWorkers(b *testing.B) {
	img := benchDial()
	for _, mode := range []struct {
		name string
		opt  Options
	}{
		{"lossless", Options{Lossless: true}},
		{"lossy", Options{Rate: 0.1}},
		{"lossless-tiled", Options{Lossless: true, TileW: 128, TileH: 128}},
		{"lossy-tiled", Options{Rate: 0.1, TileW: 128, TileH: 128}},
	} {
		data, _, err := Encode(img, mode.opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers-%d", mode.name, w), func(b *testing.B) {
				b.SetBytes(int64(img.W * img.H * 3))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := DecodeParallel(data, w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMixedConcurrency prices the shared scheduler against
// per-call worker pools under concurrent mixed load: at concurrency c,
// each iteration runs c operations at once — a rotation of lossless
// encode, lossy encode, and decode, each asking for 4 workers. The
// shared rows multiplex every operation onto the process-default
// scheduler (O(GOMAXPROCS + c) goroutines); the percall rows spawn
// per-operation pools (O(c×workers)). The goroutine high-water mark is
// reported as a metric so the bound is visible in the JSON artifact.
func BenchmarkMixedConcurrency(b *testing.B) {
	img := benchDial()
	lossless := Options{Lossless: true}
	lossy := Options{Rate: 0.1}
	data, _, err := Encode(img, lossless)
	if err != nil {
		b.Fatal(err)
	}
	const opWorkers = 4
	for _, mode := range []struct {
		name string
		ctx  context.Context
	}{
		{"shared", context.Background()},
		{"percall", WithPerCallPool(context.Background())},
	} {
		for _, c := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/c-%d", mode.name, c), func(b *testing.B) {
				b.SetBytes(int64(c * img.W * img.H * 3))
				b.ReportAllocs()
				var hwm atomic.Int64
				stop := make(chan struct{})
				var sampler sync.WaitGroup
				sampler.Add(1)
				go func() {
					defer sampler.Done()
					for {
						select {
						case <-stop:
							return
						default:
							if g := int64(runtime.NumGoroutine()); g > hwm.Load() {
								hwm.Store(g)
							}
							time.Sleep(200 * time.Microsecond)
						}
					}
				}()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for k := 0; k < c; k++ {
						wg.Add(1)
						go func(k int) {
							defer wg.Done()
							var err error
							switch k % 3 {
							case 0:
								_, _, err = EncodeParallelContext(mode.ctx, img, lossless, opWorkers)
							case 1:
								_, _, err = EncodeParallelContext(mode.ctx, img, lossy, opWorkers)
							default:
								_, err = DecodeWithContext(mode.ctx, data, DecodeOptions{Workers: opWorkers})
							}
							if err != nil {
								b.Error(err)
							}
						}(k)
					}
					wg.Wait()
				}
				b.StopTimer()
				close(stop)
				sampler.Wait()
				b.ReportMetric(float64(hwm.Load()), "goroutine-hwm")
			})
		}
	}
}

func BenchmarkDecodeLossless(b *testing.B) {
	img := benchDial()
	data, _, err := Encode(img, Options{Lossless: true})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeResilient prices the best-effort decode path against
// the strict decoder on the same resilience-enabled stream: "plain" is
// the strict DecodeWith, "resilient" the total salvage path on an
// undamaged stream (the overhead of tolerant tile-part parsing plus
// damage accounting), and "resilient-damaged" the same stream with a
// corrupted byte mid-body (detection, concealment, and SOP resync on
// top).
func BenchmarkDecodeResilient(b *testing.B) {
	img := benchDial()
	data, _, err := Encode(img, Options{Lossless: true, Resilience: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plain", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := Decode(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("resilient", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			_, rep := DecodeResilient(data, DecodeOptions{})
			if rep.Damaged() {
				b.Fatal("undamaged stream reported damage")
			}
		}
	})
	damaged := append([]byte(nil), data...)
	damaged[2*len(damaged)/3] ^= 0x55
	b.Run("resilient-damaged", func(b *testing.B) {
		b.SetBytes(int64(len(damaged)))
		for i := 0; i < b.N; i++ {
			img, rep := DecodeResilient(damaged, DecodeOptions{})
			if img == nil || rep == nil {
				b.Fatal("best-effort decode not total")
			}
		}
	})
}

func BenchmarkDWT53Forward(b *testing.B) {
	const n = 1024
	data := make([]int32, n*n)
	rng := workload.NewRNG(2)
	for i := range data {
		data[i] = int32(rng.Intn(512)) - 256
	}
	b.SetBytes(int64(4 * n * n))
	for i := 0; i < b.N; i++ {
		dwt.Forward53(data, n, n, n, 5)
		dwt.Inverse53(data, n, n, n, 5)
	}
}

func BenchmarkTier1Block(b *testing.B) {
	rng := workload.NewRNG(3)
	coef := make([]int32, 64*64)
	for i := range coef {
		if rng.Intn(4) == 0 {
			coef[i] = int32(rng.Intn(512)) - 256
		}
	}
	b.SetBytes(int64(4 * len(coef)))
	for i := 0; i < b.N; i++ {
		t1.Encode(coef, 64, 64, 64, dwt.HL, t1.ModeSingle, 1.0)
	}
}

func BenchmarkMQCoder(b *testing.B) {
	rng := workload.NewRNG(4)
	bits := make([]int, 1<<16)
	for i := range bits {
		if rng.Intn(8) == 0 {
			bits[i] = 1
		}
	}
	b.SetBytes(int64(len(bits)) / 8)
	var e mq.Encoder
	for i := 0; i < b.N; i++ {
		e.Reset()
		cx := mq.NewContext(0)
		for _, bit := range bits {
			e.Encode(bit, &cx)
		}
		e.Flush()
	}
}

// Benchmark_AblationNUMA compares the uniform and per-chip memory
// models on the dual-chip blade.
func Benchmark_AblationNUMA(b *testing.B) {
	img := benchDial()
	for _, numa := range []bool{false, true} {
		name := "uniform"
		if numa {
			name = "numa"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig(16, codec.Options{Lossless: true})
			cfg.Cell = cell.QS20Config(16, 2)
			cfg.Cell.NUMA = numa
			simulate(b, img, cfg)
		})
	}
}

// Benchmark_AblationLoopParallel compares whole-pipeline vs
// Meerwald-style loop-level parallelization at 8 SPEs.
func Benchmark_AblationLoopParallel(b *testing.B) {
	img := benchDial()
	for _, loop := range []bool{false, true} {
		name := "whole-pipeline"
		if loop {
			name = "loop-level"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig(8, codec.Options{Lossless: false, Rate: 0.1})
			cfg.LoopParallel = loop
			simulate(b, img, cfg)
		})
	}
}

// BenchmarkEncodeMultiLayer prices the three-layer encode.
func BenchmarkEncodeMultiLayer(b *testing.B) {
	img := benchDial()
	b.SetBytes(int64(img.W * img.H * 3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Encode(img, Options{LayerRates: []float64{0.02, 0.1, 0.4}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeTiled prices the tiled encode (tiles in parallel).
func BenchmarkEncodeTiled(b *testing.B) {
	img := benchDial()
	b.SetBytes(int64(img.W * img.H * 3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := EncodeParallel(img, Options{Lossless: true, TileW: 128, TileH: 128}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegionDecode prices window decoding vs a full decode.
func BenchmarkRegionDecode(b *testing.B) {
	img := benchDial()
	data, _, err := Encode(img, Options{Lossless: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Decode(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("window-64x64", func(b *testing.B) {
		r := codec.Rect{X0: img.W / 2, Y0: img.H / 2, W: 64, H: 64}
		for i := 0; i < b.N; i++ {
			if _, err := DecodeWith(data, DecodeOptions{Region: r}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSPUSchedule prices the pipeline micro-model itself.
func BenchmarkSPUSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spu.Schedule(spu.Lift97FixedKernel(256))
	}
}
