GO ?= go

.PHONY: build test race vet bench bench-json check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel determinism matrix (parallel_test.go) only proves
# anything when run with the race detector enabled.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# J2K_BENCH_SCALE=8 divides the paper's 3072x3072 workload; lower it
# for full-size runs.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# bench-json reruns the hot-path benchmarks (Tier-1, rate control,
# end-to-end encode) and merges them with the committed pre-PR baseline
# into one JSON artifact with per-benchmark speedup ratios.
BENCH_JSON ?= BENCH_pr2.json
BENCH_BASELINE ?= bench/baseline_pr1.txt
bench-json:
	$(GO) test -run '^$$' -bench 'Benchmark_T1|Benchmark_RateControl' -benchmem ./internal/t1/ ./internal/rate/ > bench/current.txt
	$(GO) test -run '^$$' -bench 'BenchmarkEncode' -benchmem . >> bench/current.txt
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON) baseline=$(BENCH_BASELINE) current=bench/current.txt

check: build vet test race
