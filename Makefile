GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel determinism matrix (parallel_test.go) only proves
# anything when run with the race detector enabled.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# J2K_BENCH_SCALE=8 divides the paper's 3072x3072 workload; lower it
# for full-size runs.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

check: build vet test race
