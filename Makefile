GO ?= go

.PHONY: build test race vet bench bench-json trace fuzz check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel determinism matrix (parallel_test.go) only proves
# anything when run with the race detector enabled.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# J2K_BENCH_SCALE=8 divides the paper's 3072x3072 workload; lower it
# for full-size runs.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# bench-json reruns the hot-path benchmarks (simd kernels, Tier-1,
# rate control, fixed-vs-float lifting, end-to-end encode AND decode)
# and merges them with the committed pre-PR baseline into one JSON
# artifact with per-benchmark speedup ratios. The Benchmark_Kernel_*
# runs carry scalar/sse2/avx2 sub-benchmarks, so the SIMD speedup is
# visible inside the current run even where the baseline has no
# counterpart; BenchmarkDecodeParallelWorkers sweeps the decode
# pipeline's worker counts over {lossless, lossy} × {untiled, tiled};
# the Benchmark_HT* sweep prices the Part 15 high-throughput block
# coder on the same blocks as Benchmark_T1EncodeBlock, so the MQ→HT
# speedup ratio reads directly off the merged artifact;
# BenchmarkMixedConcurrency sweeps concurrent mixed load at c=1/4/8
# over shared-scheduler vs per-call pools and reports the goroutine
# high-water mark per row; BenchmarkDecodeResilient prices the
# best-effort salvage path against the strict decoder on the same
# resilient stream, undamaged and damaged.
BENCH_JSON ?= BENCH_pr10.json
BENCH_BASELINE ?= bench/baseline_pr9.txt
bench-json:
	$(GO) test -run '^$$' -bench 'Benchmark_Kernel' -benchmem ./internal/simd/ > bench/current.txt
	$(GO) test -run '^$$' -bench 'Benchmark_T1|Benchmark_HT|Benchmark_RateControl' -benchmem ./internal/t1/ ./internal/rate/ >> bench/current.txt
	$(GO) test -run '^$$' -bench 'BenchmarkEncode|BenchmarkDecode|BenchmarkTable1|BenchmarkMixed' -benchmem . >> bench/current.txt
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON) baseline=$(BENCH_BASELINE) current=bench/current.txt

# fuzz runs each decoder fuzz target for FUZZTIME (the CI robustness
# job uses 30s each; raise it for longer local campaigns). The -fuzz
# patterns are anchored because the package has multiple targets.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/codec/ -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/codec/ -run '^$$' -fuzz '^FuzzDecodeHeaders$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/codec/ -run '^$$' -fuzz '^FuzzDecodeResilient$$' -fuzztime=$(FUZZTIME)

# trace produces sample Chrome traces (open in chrome://tracing or
# ui.perfetto.dev): the native encoder with one track per worker, and
# the simulated Cell with one track per modeled PE.
trace:
	mkdir -p examples
	$(GO) run ./cmd/j2kenc -dial 512 -workers 4 -out examples/dial.j2c -trace examples/trace-native.json -report
	$(GO) run ./cmd/cellbench -scale 8 -trace examples/trace-sim.json

check: build vet test race
